(* Differential testing: every corpus query through both evaluators.

   The object-at-a-time reference interpreter (Naive) and the flattened
   set-at-a-time pipeline (Eval) must agree on every query in the
   shared static-analysis corpus — and they must keep agreeing when
   the optimiser stages are ablated, since those are the knobs the
   benchmark harness turns. *)

module Corpus = Mirror_core.Corpus
module Eval = Mirror_core.Eval
module Naive = Mirror_core.Naive
module Parser = Mirror_core.Parser
module Value = Mirror_core.Value

let variants =
  [
    ("default", fun st e -> Eval.query st e);
    ("no-optimize", fun st e -> Eval.query ~optimize:false st e);
    ("no-cse", fun st e -> Eval.query ~cse:false st e);
    ("checked", fun st e -> Eval.query ~check:true st e);
  ]

let run_query st src =
  let expr =
    match Parser.parse_expr src with
    | Ok e -> e
    | Error msg -> Alcotest.failf "corpus query failed to parse: %s\n  %s" msg src
  in
  let expected =
    try Naive.eval st expr
    with Failure msg -> Alcotest.failf "Naive.eval raised %S on %s" msg src
  in
  List.iter
    (fun (label, run) ->
      match run st expr with
      | Error msg -> Alcotest.failf "Eval.query (%s) failed on %s: %s" label src msg
      | Ok (r : Eval.report) ->
        if not (Value.equal expected r.Eval.value) then
          Alcotest.failf "evaluators disagree (%s) on %s\n  naive:     %s\n  flattened: %s"
            label src
            (Value.to_string expected)
            (Value.to_string r.Eval.value))
    variants

let test_corpus () =
  let st = Corpus.storage () in
  let n = List.length Corpus.queries in
  Alcotest.(check bool) "corpus has a real battery" true (n >= 40);
  List.iter (run_query st) Corpus.queries

let () =
  Alcotest.run "differential"
    [
      ( "naive-vs-flattened",
        [ Alcotest.test_case "all corpus queries, 4 pipeline variants" `Quick test_corpus ] );
    ]
