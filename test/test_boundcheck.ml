(* Boundcheck: static resource-bound analysis over MIL plans.

   Covers the per-constructor selectivity rules (estimates clamped
   into the sound cardinality interval), string payload tracking,
   degradation to an unbounded envelope on foreigns without a declared
   cost rule, the liveness simulation on diamond DAGs (reclaim peak
   strictly below memo residency), the session admission gate
   (accept / refuse / fail-closed on unbounded plans) and the
   mirror-lint/v2 JSON report over the example corpus. *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Catalog = Mirror_bat.Catalog
module Mil = Mirror_bat.Mil
module Milprop = Mirror_bat.Milprop
module Milcheck = Mirror_bat.Milcheck
module Boundcheck = Mirror_bat.Boundcheck
module Jsonx = Mirror_util.Jsonx
module Corpus = Mirror_core.Corpus
module Lintreport = Mirror_core.Lintreport

let oid i = Atom.Oid i

let fixture () =
  let cat = Catalog.create () in
  let put name hty tty pairs = Catalog.put cat name (Bat.of_pairs hty tty pairs) in
  put "ints" Atom.TOid Atom.TInt (List.init 16 (fun i -> (oid i, Atom.Int ((i * 7) mod 23))));
  put "bools" Atom.TOid Atom.TBool (List.init 13 (fun i -> (oid i, Atom.Bool (i mod 3 = 0))));
  put "strs" Atom.TOid Atom.TStr
    [ (oid 0, Atom.Str "a"); (oid 1, Atom.Str "bc"); (oid 2, Atom.Str "a") ];
  cat

let analyze_one ?foreign ?foreign_bound cat plan =
  let env = Boundcheck.env_of_catalog ?foreign ?foreign_bound cat in
  Boundcheck.analyze env [ plan ]

let cost_of bounds plan =
  match Mil.Tbl.find_opt bounds.Boundcheck.per_node plan with
  | Some c -> c
  | None -> Alcotest.failf "no cost computed for %s" (Mil.op_name plan)

let check_consistent bounds =
  Mil.Tbl.iter
    (fun plan (c : Boundcheck.cost) ->
      if c.Boundcheck.est < c.Boundcheck.rows.Milprop.lo then
        Alcotest.failf "%s: est %d below lo %d" (Mil.op_name plan) c.Boundcheck.est
          c.Boundcheck.rows.Milprop.lo;
      match c.Boundcheck.rows.Milprop.hi with
      | Some hi when c.Boundcheck.est > hi ->
        Alcotest.failf "%s: est %d above hi %d" (Mil.op_name plan) c.Boundcheck.est hi
      | _ -> ())
    bounds.Boundcheck.per_node

(* {1 Selectivity rules} *)

let test_selectivity () =
  let cat = fixture () in
  let ints = Mil.Get "ints" in
  let est plan = (cost_of (analyze_one cat plan) plan).Boundcheck.est in
  Alcotest.(check int) "Get is exact" 16 (est ints);
  Alcotest.(check int) "equality keeps ~1/10" 1 (est (Mil.SelectCmp (ints, Bat.Eq, Atom.Int 7)));
  Alcotest.(check int) "range cmp keeps ~1/3" 5 (est (Mil.SelectCmp (ints, Bat.Lt, Atom.Int 7)));
  Alcotest.(check int) "bool select keeps ~1/2" 6 (est (Mil.SelectBool (Mil.Get "bools")));
  Alcotest.(check int) "unique halves" 8 (est (Mil.Unique ints));
  let all = Mil.AggrAll (Bat.Count, ints) in
  let b = analyze_one cat all in
  let c = cost_of b all in
  Alcotest.(check int) "aggr-all is one row" 1 c.Boundcheck.est;
  Alcotest.(check (pair int (option int)))
    "aggr-all interval is exact" (1, Some 1)
    (c.Boundcheck.rows.Milprop.lo, c.Boundcheck.rows.Milprop.hi);
  (* estimates never escape the sound interval, and the layer says so *)
  let big =
    Mil.Join (Mil.SelectCmp (ints, Bat.Ge, Atom.Int 3), Mil.Reverse (Mil.Unique ints))
  in
  let bounds = analyze_one cat big in
  check_consistent bounds;
  Alcotest.(check int) "no bound-layer errors" 0
    (List.length (Milcheck.errors bounds.Boundcheck.diags))

let test_string_payload () =
  let cat = fixture () in
  let strs = Mil.Get "strs" in
  let c = cost_of (analyze_one cat strs) strs in
  Alcotest.(check (option int)) "head cells are fixed slots" (Some 8)
    c.Boundcheck.head.Boundcheck.rb_max;
  (* longest payload is "bc": 8-byte slot + 2 bytes *)
  Alcotest.(check (option int)) "string cell bound tracks the longest payload" (Some 10)
    c.Boundcheck.tail.Boundcheck.rb_max;
  (* a fresh-tail op over strings keeps the bound finite *)
  let marked = Mil.Mark (strs, 100) in
  let cm = cost_of (analyze_one cat marked) marked in
  Alcotest.(check (option int)) "mark resets the tail to a fixed slot" (Some 8)
    cm.Boundcheck.tail.Boundcheck.rb_max

(* {1 Foreigns: declared rule vs unbounded degradation} *)

let probe_sig =
  {
    Milprop.fs_arity = 1;
    fs_meta_min = 0;
    fs_result = { Milprop.unknown with hty = Some Atom.TOid; tty = Some Atom.TInt };
  }

let probe_foreign = function "t_probe" -> Some probe_sig | _ -> None

let probe_plan = Mil.Foreign { name = "t_probe"; args = [ Mil.Get "ints" ]; meta = [] }

let test_foreign_unbounded () =
  let cat = fixture () in
  let bounds = analyze_one ~foreign:probe_foreign cat probe_plan in
  Alcotest.(check int) "no errors: degradation is a warning" 0
    (List.length (Milcheck.errors bounds.Boundcheck.diags));
  Alcotest.(check bool) "warning emitted for the undeclared bound" true
    (List.exists
       (fun d -> d.Milcheck.severity = Milcheck.Warning)
       bounds.Boundcheck.diags);
  Alcotest.(check (option int)) "resident upper bound degrades to unbounded" None
    bounds.Boundcheck.resident.Boundcheck.fp_hi

let test_foreign_declared () =
  let cat = fixture () in
  let rule args =
    match args with
    | [ (a : Boundcheck.cost) ] -> Boundcheck.cost_rows ~est:a.Boundcheck.est a.Boundcheck.rows
    | _ -> Boundcheck.cost_rows Milprop.any_card
  in
  let bounds =
    analyze_one ~foreign:probe_foreign
      ~foreign_bound:(function "t_probe" -> Some rule | _ -> None)
      cat probe_plan
  in
  Alcotest.(check bool) "declared rule keeps the plan bounded" true
    (bounds.Boundcheck.resident.Boundcheck.fp_hi <> None);
  Alcotest.(check bool) "no warnings either" true
    (List.for_all (fun d -> d.Milcheck.severity <> Milcheck.Warning) bounds.Boundcheck.diags)

(* {1 Liveness: diamonds and chains} *)

let test_diamond_liveness () =
  let cat = fixture () in
  let base = Mil.Get "ints" in
  let x = Mil.CalcConst (Bat.Add, base, Atom.Int 1) in
  let y = Mil.CalcConst (Bat.Mul, base, Atom.Int 2) in
  let top = Mil.Calc2 (Bat.Add, x, y) in
  let bounds = analyze_one cat top in
  let r = bounds.Boundcheck.resident and q = bounds.Boundcheck.reclaim in
  (* four distinct 16-row nodes, 16 bytes per row *)
  Alcotest.(check int) "memo residency sums every distinct node" 1024 r.Boundcheck.fp_est;
  Alcotest.(check bool) "reclaim peak strictly below residency" true
    (q.Boundcheck.fp_est < r.Boundcheck.fp_est);
  Alcotest.(check bool) "reclaim still holds at least producer+consumer" true
    (q.Boundcheck.fp_est >= 512);
  (match (q.Boundcheck.fp_hi, r.Boundcheck.fp_hi) with
  | Some qh, Some rh -> Alcotest.(check bool) "hi bounds ordered" true (qh <= rh)
  | _ -> Alcotest.fail "kernel-only diamond must be bounded");
  (* sharing: analyzing the diamond is cheaper than two independent copies *)
  let solo = cost_of bounds base in
  Alcotest.(check int) "shared base counted once" 16 solo.Boundcheck.est

(* {1 Admission gate} *)

let test_admission () =
  let cat = fixture () in
  let plan = Mil.SelectCmp (Mil.Get "ints", Bat.Ge, Atom.Int 0) in
  (* no budget: everything admitted *)
  let s = Mil.session cat in
  ignore (Mil.exec s plan);
  (* generous budget: admitted *)
  let s = Mil.session ~max_bytes:1_000_000 cat in
  Alcotest.(check int) "admitted under a generous budget" 16 (Bat.count (Mil.exec s plan));
  (* starved budget: refused with the structured diagnostic *)
  let s = Mil.session ~max_bytes:8 cat in
  (match Mil.exec s plan with
  | _ -> Alcotest.fail "admitted a plan over budget"
  | exception Mil.Admission_refused { peak_bytes; budget; _ } ->
    Alcotest.(check int) "diagnostic carries the budget" 8 budget;
    (match peak_bytes with
    | Some p -> Alcotest.(check bool) "peak really exceeds the budget" true (p > 8)
    | None -> Alcotest.fail "kernel-only plan should have a finite peak"));
  (* fail-closed: a foreign the oracle knows nothing about is refused
     even under a generous budget *)
  let foreign ~name:_ ~args ~meta:_ = List.hd args in
  let s = Mil.session ~foreign ~max_bytes:1_000_000 cat in
  match Mil.exec s probe_plan with
  | _ -> Alcotest.fail "admitted an unanalyzable foreign plan"
  | exception Mil.Admission_refused { peak_bytes; _ } ->
    Alcotest.(check (option int)) "refused as unbounded" None peak_bytes

(* {1 mirror-lint/v2 over the example corpus} *)

let test_lint_v2_roundtrip () =
  Mirror_core.Bootstrap.ensure ();
  let st = Corpus.storage () in
  let report = Lintreport.sweep st Corpus.queries in
  Alcotest.(check int) "corpus passes all four layers" 0 report.Lintreport.failures;
  let doc =
    match Jsonx.parse (Jsonx.to_string (Lintreport.to_json report)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  in
  Alcotest.(check (option string))
    "schema tag" (Some "mirror-lint/v2")
    (Option.bind (Jsonx.member "schema" doc) Jsonx.to_str);
  let layers =
    match Option.bind (Jsonx.member "layers" doc) Jsonx.to_list with
    | Some ls -> ls
    | None -> Alcotest.fail "v2 report lacks the layers array"
  in
  Alcotest.(check (list (option string)))
    "per-layer names"
    [ Some "moa"; Some "mil"; Some "eff"; Some "bound" ]
    (List.map (fun l -> Option.bind (Jsonx.member "name" l) Jsonx.to_str) layers);
  List.iter
    (fun l ->
      match Option.bind (Jsonx.member "schema" l) Jsonx.to_str with
      | Some s when String.length s > 0 -> ()
      | _ -> Alcotest.fail "layer entry lacks a schema tag")
    layers;
  let queries =
    match Option.bind (Jsonx.member "queries" doc) Jsonx.to_list with
    | Some qs -> qs
    | None -> Alcotest.fail "missing queries array"
  in
  Alcotest.(check int) "one entry per query" (List.length Corpus.queries)
    (List.length queries);
  List.iter
    (fun q ->
      (* the v1 fields survive unchanged... *)
      List.iter
        (fun field ->
          if Jsonx.member field q = None then Alcotest.failf "query entry lacks %S" field)
        [ "src"; "failed"; "error"; "nodes"; "partitions"; "shared_columns"; "diagnostics" ];
      (* ...and the bound summary is additive on top *)
      (match Option.bind (Jsonx.member "est_bytes" q) Jsonx.to_int with
      | Some b when b > 0 -> ()
      | _ -> Alcotest.fail "query entry lacks a positive est_bytes");
      (match Jsonx.member "peak_bytes" q with
      | Some _ -> ()
      | None -> Alcotest.fail "query entry lacks peak_bytes");
      match Option.bind (Jsonx.member "reclaim_bytes" q) Jsonx.to_int with
      | Some b when b >= 0 -> ()
      | _ -> Alcotest.fail "query entry lacks reclaim_bytes")
    queries

(* corpus-wide soundness spot check: est never exceeds the peak bound *)
let test_corpus_envelopes () =
  Mirror_core.Bootstrap.ensure ();
  let st = Corpus.storage () in
  let report = Lintreport.sweep st Corpus.queries in
  List.iter
    (fun (q : Lintreport.query) ->
      match q.Lintreport.peak_bytes with
      | Some peak ->
        if q.Lintreport.est_bytes > peak then
          Alcotest.failf "%s: est %d above peak %d" q.Lintreport.src q.Lintreport.est_bytes
            peak;
        if q.Lintreport.reclaim_bytes > peak then
          Alcotest.failf "%s: reclaim est %d above peak %d" q.Lintreport.src
            q.Lintreport.reclaim_bytes peak
      | None -> Alcotest.failf "%s: corpus query left unbounded" q.Lintreport.src)
    report.Lintreport.queries

let () =
  Alcotest.run "boundcheck"
    [
      ( "costs",
        [
          Alcotest.test_case "selectivity rules" `Quick test_selectivity;
          Alcotest.test_case "string payload tracking" `Quick test_string_payload;
        ] );
      ( "foreigns",
        [
          Alcotest.test_case "undeclared bound degrades to unbounded" `Quick
            test_foreign_unbounded;
          Alcotest.test_case "declared rule keeps the envelope" `Quick test_foreign_declared;
        ] );
      ( "liveness",
        [ Alcotest.test_case "diamond DAG reclaim peak" `Quick test_diamond_liveness ] );
      ("admission", [ Alcotest.test_case "accept, refuse, fail-closed" `Quick test_admission ]);
      ( "report",
        [
          Alcotest.test_case "mirror-lint/v2 round-trip" `Quick test_lint_v2_roundtrip;
          Alcotest.test_case "corpus envelopes are consistent" `Quick test_corpus_envelopes;
        ] );
    ]
