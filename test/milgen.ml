(* Seeded random MIL plan generation, shared by the fuzz and parallel
   test suites.

   A deterministic generator grows a pool of well-typed random plans
   over a small fixture catalog: each step wraps randomly chosen pool
   members in a randomly chosen operator whose typing precondition they
   satisfy.

   Deliberately excluded operators: Div/Pow (division by a randomly
   zero constant; Pow widens to float with rounding concerns),
   Log/Exp/Sqrt (NaN results break bit-for-bit comparison), AggrAll
   Min/Max/Avg (raise on empty input by contract), GroupRank (needs an
   aligned link/key pair the pool does not track) and Foreign (the
   fixture has no extension registry). *)

module Prng = Mirror_util.Prng
module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Catalog = Mirror_bat.Catalog
module Mil = Mirror_bat.Mil

type entry = { plan : Mil.t; hty : Atom.ty; tty : Atom.ty }

let words = [| "alpha"; "bravo"; "carol"; "delta"; "echo"; "fox" |]

let fixture () =
  let c = Catalog.create () in
  let dense_int name n f =
    Catalog.put c name
      (Bat.of_pairs Atom.TOid Atom.TInt (List.init n (fun i -> (Atom.Oid i, Atom.Int (f i)))))
  in
  dense_int "ints" 16 (fun i -> (i * 7) mod 23);
  dense_int "ints2" 11 (fun i -> 40 - (i * 3));
  Catalog.put c "flts"
    (Bat.of_pairs Atom.TOid Atom.TFlt
       (List.init 14 (fun i -> (Atom.Oid i, Atom.Flt (Float.of_int (i * i) /. 4.0)))));
  Catalog.put c "strs"
    (Bat.of_pairs Atom.TOid Atom.TStr
       (List.init 10 (fun i -> (Atom.Oid i, Atom.Str words.(i mod Array.length words)))));
  Catalog.put c "bools"
    (Bat.of_pairs Atom.TOid Atom.TBool
       (List.init 13 (fun i -> (Atom.Oid i, Atom.Bool (i mod 3 = 0)))));
  Catalog.put c "link"
    (Bat.of_pairs Atom.TOid Atom.TOid
       (List.init 16 (fun i -> (Atom.Oid i, Atom.Oid (i mod 5)))));
  Catalog.put c "empty" (Bat.of_pairs Atom.TOid Atom.TInt []);
  c

let fixture_names = [ "ints"; "ints2"; "flts"; "strs"; "bools"; "link"; "empty" ]

let seed_pool catalog names =
  List.map
    (fun name ->
      let b = Catalog.get catalog name in
      { plan = Mil.Get name; hty = Bat.hty b; tty = Bat.tty b })
    names

let is_num ty = ty = Atom.TInt || ty = Atom.TFlt

let const_of g ty =
  match ty with
  | Atom.TInt -> Atom.Int (Prng.int g 60 - 30)
  | Atom.TFlt -> Atom.Flt (Float.of_int (Prng.int g 80 - 40) /. 4.0)
  | Atom.TStr -> Atom.Str (Prng.choose g words)
  | Atom.TBool -> Atom.Bool (Prng.bool g)
  | Atom.TOid -> Atom.Oid (Prng.int g 16)

(* Candidate constructors.  Each takes the prng and the pool and
   returns Some (plan, head type, tail type), or None when no pool
   entry satisfies its precondition. *)

let pick g pool pred =
  match List.filter pred pool with
  | [] -> None
  | matching -> Some (List.nth matching (Prng.int g (List.length matching)))

let any _ = true

let generators :
    (string * (Prng.t -> entry list -> (Mil.t * Atom.ty * Atom.ty) option)) array =
  [|
    ( "lit",
      fun g _ ->
        let tty = Prng.choose g [| Atom.TInt; Atom.TFlt; Atom.TStr; Atom.TBool |] in
        let n = Prng.int g 6 in
        let pairs = List.init n (fun i -> (Atom.Oid i, const_of g tty)) in
        Some (Mil.Lit { hty = Atom.TOid; tty; pairs }, Atom.TOid, tty) );
    ( "reverse",
      fun g pool ->
        Option.map (fun e -> (Mil.Reverse e.plan, e.tty, e.hty)) (pick g pool any) );
    ( "mirror",
      fun g pool ->
        Option.map (fun e -> (Mil.Mirror e.plan, e.hty, e.hty)) (pick g pool any) );
    ( "mark",
      fun g pool ->
        Option.map
          (fun e -> (Mil.Mark (e.plan, Prng.int g 100), e.hty, Atom.TOid))
          (pick g pool any) );
    ( "number_head",
      fun g pool ->
        Option.map
          (fun e -> (Mil.NumberHead (e.plan, Prng.int g 100), Atom.TOid, e.hty))
          (pick g pool any) );
    ( "number_tail",
      fun g pool ->
        Option.map
          (fun e -> (Mil.NumberTail (e.plan, Prng.int g 100), Atom.TOid, e.tty))
          (pick g pool any) );
    ( "project",
      fun g pool ->
        Option.map
          (fun e ->
            let ty = Prng.choose g [| Atom.TInt; Atom.TFlt; Atom.TStr; Atom.TBool |] in
            (Mil.Project (e.plan, const_of g ty), e.hty, ty))
          (pick g pool any) );
    ( "calc1",
      fun g pool ->
        Option.map
          (fun e ->
            if e.tty = Atom.TBool then (Mil.Calc1 (Bat.Not, e.plan), e.hty, Atom.TBool)
            else
              match Prng.int g 3 with
              | 0 -> (Mil.Calc1 (Bat.Neg, e.plan), e.hty, e.tty)
              | 1 -> (Mil.Calc1 (Bat.Abs, e.plan), e.hty, e.tty)
              | _ -> (Mil.Calc1 (Bat.ToFlt, e.plan), e.hty, Atom.TFlt))
          (pick g pool (fun e -> is_num e.tty || e.tty = Atom.TBool)) );
    ( "calc_const",
      fun g pool ->
        Option.map
          (fun e ->
            let op = Prng.choose g Bat.[| Add; Sub; Mul; MinOp; MaxOp |] in
            let c = const_of g e.tty in
            if Prng.bool g then (Mil.CalcConst (op, e.plan, c), e.hty, e.tty)
            else (Mil.ConstCalc (op, c, e.plan), e.hty, e.tty))
          (pick g pool (fun e -> is_num e.tty)) );
    ( "calc_cmp",
      fun g pool ->
        Option.map
          (fun e ->
            let c = Prng.choose g Bat.[| Eq; Ne; Lt; Le; Gt; Ge |] in
            (Mil.CalcConst (Bat.CmpOp c, e.plan, const_of g e.tty), e.hty, Atom.TBool))
          (pick g pool (fun e -> e.tty <> Atom.TBool)) );
    ( "calc2",
      fun g pool ->
        Option.map
          (fun e ->
            if e.tty = Atom.TBool then
              let op = if Prng.bool g then Bat.And else Bat.Or in
              (Mil.Calc2 (op, e.plan, e.plan), e.hty, Atom.TBool)
            else
              let op = Prng.choose g Bat.[| Add; Sub; Mul; MinOp; MaxOp |] in
              (Mil.Calc2 (op, e.plan, e.plan), e.hty, e.tty))
          (pick g pool (fun e -> is_num e.tty || e.tty = Atom.TBool)) );
    ( "select_cmp",
      fun g pool ->
        Option.map
          (fun e ->
            let c = Prng.choose g Bat.[| Eq; Ne; Lt; Le; Gt; Ge |] in
            (Mil.SelectCmp (e.plan, c, const_of g e.tty), e.hty, e.tty))
          (pick g pool any) );
    ( "select_range",
      fun g pool ->
        Option.map
          (fun e ->
            let lo, hi =
              match e.tty with
              | Atom.TInt ->
                let a = Prng.int g 40 - 20 in
                (Atom.Int a, Atom.Int (a + Prng.int g 30))
              | Atom.TFlt ->
                let a = Float.of_int (Prng.int g 40 - 20) /. 2.0 in
                (Atom.Flt a, Atom.Flt (a +. Float.of_int (Prng.int g 20)))
              | Atom.TOid ->
                let a = Prng.int g 10 in
                (Atom.Oid a, Atom.Oid (a + Prng.int g 10))
              | Atom.TStr -> (Atom.Str "a", Atom.Str "z")
              | Atom.TBool -> (Atom.Bool false, Atom.Bool true)
            in
            (Mil.SelectRange (e.plan, lo, hi), e.hty, e.tty))
          (pick g pool any) );
    ( "select_bool",
      fun g pool ->
        Option.map
          (fun e -> (Mil.SelectBool e.plan, e.hty, e.tty))
          (pick g pool (fun e -> e.tty = Atom.TBool)) );
    ( "join",
      fun g pool ->
        Option.bind (pick g pool any) (fun l ->
            Option.map
              (fun r -> (Mil.Join (l.plan, r.plan), l.hty, r.tty))
              (pick g pool (fun r -> r.hty = l.tty))) );
    ( "leftouterjoin",
      fun g pool ->
        Option.bind (pick g pool any) (fun l ->
            Option.map
              (fun r ->
                (Mil.LeftOuterJoin (l.plan, r.plan, const_of g r.tty), l.hty, r.tty))
              (pick g pool (fun r -> r.hty = l.tty))) );
    ( "semijoin",
      fun g pool ->
        Option.bind (pick g pool any) (fun l ->
            Option.map
              (fun r ->
                let node =
                  if Prng.bool g then Mil.Semijoin (l.plan, r.plan)
                  else Mil.Antijoin (l.plan, r.plan)
                in
                (node, l.hty, l.tty))
              (pick g pool (fun r -> r.hty = l.hty))) );
    ( "union_diff",
      fun g pool ->
        Option.bind (pick g pool any) (fun l ->
            Option.map
              (fun r ->
                let node =
                  match Prng.int g 5 with
                  | 0 -> Mil.Kunion (l.plan, r.plan)
                  | 1 -> Mil.PairUnion (l.plan, r.plan)
                  | 2 -> Mil.PairDiff (l.plan, r.plan)
                  | 3 -> Mil.PairInter (l.plan, r.plan)
                  | _ -> Mil.Append (l.plan, r.plan)
                in
                (node, l.hty, l.tty))
              (pick g pool (fun r -> r.hty = l.hty && r.tty = l.tty))) );
    ( "unique",
      fun g pool ->
        Option.map
          (fun e ->
            let node = if Prng.bool g then Mil.Unique e.plan else Mil.UniqueHead e.plan in
            (node, e.hty, e.tty))
          (pick g pool any) );
    ( "group_aggr",
      fun g pool ->
        Option.map
          (fun e ->
            match Prng.int g 4 with
            | 0 -> (Mil.GroupAggr (Bat.Count, e.plan), e.hty, Atom.TInt)
            | 1 -> (Mil.GroupAggr (Bat.Avg, e.plan), e.hty, Atom.TFlt)
            | 2 -> (Mil.GroupAggr (Bat.Min, e.plan), e.hty, e.tty)
            | _ -> (Mil.GroupAggr (Bat.Sum, e.plan), e.hty, e.tty))
          (pick g pool (fun e -> is_num e.tty)) );
    ( "aggr_all",
      fun g pool ->
        if Prng.bool g then
          Option.map
            (fun e -> (Mil.AggrAll (Bat.Count, e.plan), Atom.TOid, Atom.TInt))
            (pick g pool any)
        else
          Option.map
            (fun e -> (Mil.AggrAll (Bat.Sum, e.plan), Atom.TOid, e.tty))
            (pick g pool (fun e -> is_num e.tty)) );
    ( "sort_tail",
      fun g pool ->
        Option.map
          (fun e -> (Mil.SortTail (e.plan, Prng.bool g), e.hty, e.tty))
          (pick g pool any) );
    ( "slice",
      fun g pool ->
        Option.map
          (fun e -> (Mil.Slice (e.plan, Prng.int g 5, Prng.int g 20), e.hty, e.tty))
          (pick g pool any) );
    ( "topn",
      fun g pool ->
        Option.map
          (fun e -> (Mil.TopN (e.plan, 1 + Prng.int g 10, Prng.bool g), e.hty, e.tty))
          (pick g pool any) );
  |]

let generate g pool =
  let rec attempt k =
    if k = 0 then
      (* always possible: reverse a random entry *)
      let e = List.nth pool (Prng.int g (List.length pool)) in
      (Mil.Reverse e.plan, e.tty, e.hty)
    else
      let _, gen = Prng.choose g generators in
      match gen g pool with Some c -> c | None -> attempt (k - 1)
  in
  attempt 8
