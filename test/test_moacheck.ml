(* Unit tests for the Moa-level analyzer and its companions:

   - envelope precision on queries with statically known answers;
   - structured (path/op-carrying) diagnostics on ill-shaped
     expressions;
   - the logical lint smells (unsatisfiable/constant selections,
     getBL over empty queries);
   - translation validation catching a deliberately broken test-only
     flattening rule, both directly and through Flatten/Plancheck;
   - the daemon topic-graph lint. *)

module Atom = Mirror_bat.Atom
module Mil = Mirror_bat.Mil
module Milprop = Mirror_bat.Milprop
module Shape = Mirror_core.Shape
module Types = Mirror_core.Types
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Parser = Mirror_core.Parser
module Corpus = Mirror_core.Corpus
module Flatten = Mirror_core.Flatten
module Plancheck = Mirror_core.Plancheck
module Extension = Mirror_core.Extension
module Typecheck = Mirror_core.Typecheck
module Moaprop = Mirror_core.Moaprop
module Moacheck = Mirror_core.Moacheck
module Daemon = Mirror_daemon.Daemon
module Daemonlint = Mirror_daemon.Daemonlint
module Standard = Mirror_daemon.Standard

let storage = lazy (Corpus.storage ())
let menv () = Moacheck.env_of_storage (Lazy.force storage)

let parse src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error m -> Alcotest.failf "parse %S: %s" src m

let infer_ok e =
  match Moacheck.verify (menv ()) e with
  | Ok prop -> prop
  | Error ds ->
    Alcotest.failf "analyzer rejected %s: %s" (Expr.to_string e)
      (String.concat "; " (List.map Moaprop.diag_to_string ds))

(* {1 Envelope precision} *)

let test_envelopes () =
  (* count over the 4-row corpus extent is exact *)
  (match infer_ok (parse "count(R)") with
  | Moaprop.Atomic { ty = Atom.TInt; lo = Some 4.0; hi = Some 4.0; _ } -> ()
  | p -> Alcotest.failf "count(R): expected int[4..4], got %s" (Moaprop.to_string p));
  (* a ranges over [-1..2], so the comparison folds to a constant *)
  (match infer_ok (parse "exists(select[THIS.a > 100](R))") with
  | Moaprop.Atomic { ty = Atom.TBool; bconst = Some false; _ } -> ()
  | p -> Alcotest.failf "exists(empty): expected const false, got %s" (Moaprop.to_string p));
  (* a statically true predicate keeps the cardinality exact *)
  (match Moaprop.card_of (infer_ok (parse "select[THIS.a < 100](R)")) with
  | Some { Milprop.lo = 4; hi = Some 4 } -> ()
  | c ->
    Alcotest.failf "select(true): expected |4..4|, got %s"
      (match c with
      | Some c -> Format.asprintf "%a" Moaprop.pp_card c
      | None -> "no card"));
  (* map preserves cardinality *)
  (match Moaprop.card_of (infer_ok (parse "map[THIS.a](R)")) with
  | Some { Milprop.lo = 4; hi = Some 4 } -> ()
  | _ -> Alcotest.fail "map: expected |4..4|");
  (* the distinct idiom union(x, x) cannot grow x *)
  let m = parse "map[THIS.a](R)" in
  match Moaprop.card_of (infer_ok (Expr.Union (m, m))) with
  | Some { Milprop.lo; hi = Some 4 } when lo >= 1 -> ()
  | _ -> Alcotest.fail "union(x, x): expected |1..4|"

(* {1 Structured diagnostics} *)

let typecheck_err e =
  match Typecheck.infer (Mirror_core.Storage.typecheck_env (Lazy.force storage)) e with
  | Ok ty ->
    Alcotest.failf "expected a type error for %s, got %s" (Expr.to_string e)
      (Types.to_string ty)
  | Error d -> d

let test_diagnostics () =
  let d = typecheck_err (Expr.Extent "nope") in
  Alcotest.(check string) "unknown extent op" "extent" d.Moaprop.op;
  Alcotest.(check bool) "unknown extent severity" true (d.Moaprop.severity = Moaprop.Error);
  let d = typecheck_err (Expr.Var "x") in
  Alcotest.(check string) "unbound var op" "var" d.Moaprop.op;
  let d = typecheck_err (Expr.Field (Expr.lit_int 1, "a")) in
  Alcotest.(check string) "field of non-tuple op" "field" d.Moaprop.op;
  let d =
    typecheck_err (Expr.Select { v = "x"; pred = Expr.lit_int 3; src = Expr.Extent "R" })
  in
  Alcotest.(check bool) "non-bool pred is an error" true (d.Moaprop.severity = Moaprop.Error);
  let d = typecheck_err (Expr.Aggr (Mirror_bat.Bat.Count, Expr.lit_int 1)) in
  Alcotest.(check bool) "aggregate over atom is an error" true
    (d.Moaprop.severity = Moaprop.Error);
  (* the deep path locates the offending node *)
  let d = typecheck_err (parse "count(map[THIS.a + nope](R))") in
  Alcotest.(check string) "nested unknown extent op" "extent" d.Moaprop.op;
  Alcotest.(check bool)
    (Printf.sprintf "path %S descends through the map body" d.Moaprop.path)
    true
    (String.length d.Moaprop.path > String.length "extent");
  (* Moacheck degrades to the same diagnostics without raising *)
  match Moacheck.verify (menv ()) (Expr.Extent "nope") with
  | Ok p -> Alcotest.failf "verify accepted an unknown extent: %s" (Moaprop.to_string p)
  | Error (d :: _) ->
    Alcotest.(check bool) "verify reports an Error diag" true
      (d.Moaprop.severity = Moaprop.Error)
  | Error [] -> Alcotest.fail "verify returned an empty diagnostic list"

(* {1 Logical lint smells} *)

let has_diag ds sub =
  List.exists
    (fun (d : Moaprop.diag) ->
      let msg = d.Moaprop.message in
      let n = String.length sub in
      let rec scan i = i + n <= String.length msg && (String.sub msg i n = sub || scan (i + 1)) in
      scan 0)
    ds

let test_lint () =
  let lint e = Moacheck.lint (menv ()) e in
  let unsat =
    Expr.Select
      { v = "x";
        pred = Expr.Binop (Mirror_bat.Bat.CmpOp Mirror_bat.Bat.Lt, Expr.lit_int 1, Expr.lit_int 0);
        src = Expr.Extent "R" }
  in
  Alcotest.(check bool) "unsatisfiable selection flagged" true
    (has_diag (lint unsat) "unsatisfiable");
  let tauto =
    Expr.Select
      { v = "x";
        pred = Expr.Binop (Mirror_bat.Bat.CmpOp Mirror_bat.Bat.Lt, Expr.lit_int 0, Expr.lit_int 1);
        src = Expr.Extent "R" }
  in
  Alcotest.(check bool) "constantly true selection flagged" true
    (has_diag (lint tauto) "statically true");
  let empty_query =
    Expr.Map
      { v = "x";
        body =
          Expr.getbl
            (Expr.Field (Expr.Var "x", "c"))
            (Expr.Lit (Value.VSet [], Types.Set (Types.Atomic Atom.TStr)));
        src = Expr.Extent "R" }
  in
  Alcotest.(check bool) "getBL with empty query flagged" true
    (has_diag (lint empty_query) "empty");
  (* a clean corpus query produces no lint output at all *)
  Alcotest.(check int) "clean query lints clean" 0
    (List.length (lint (parse "select[THIS.a > 0](R)")))

(* {1 Translation validation: a deliberately broken flattening rule}

   BRK owns one operator, [brk_two], whose logical contract (reference
   semantics and envelope) is "a set of exactly two ints" — but whose
   flattening rule emits a three-element bundle.  The analyzer accepts
   the expression (the logical side is consistent); only translation
   validation can see the physical side disagree. *)

module Brk : Extension.S = struct
  let name = "BRK"
  let arity = 0
  let check_type _ = Ok ()
  let ops = [ "brk_two" ]

  let op_type ~op:_ ~args =
    match args with
    | [ Types.Set (Types.Atomic Atom.TInt) ] -> Ok (Types.Set (Types.Atomic Atom.TInt))
    | _ -> Error "brk_two expects a SET<int>"

  let op_eval _ ~op:_ ~args:_ = Value.VSet [ Value.Atom (Atom.Int 9); Value.Atom (Atom.Int 9) ]

  let op_flatten (env : Extension.flat_env) ~op:_ ~arg_tys:_ ~raw:_ ~args:_ =
    (* three elements where the contract says two *)
    let base = env.Extension.fresh 3 in
    let link =
      Mil.Lit
        { hty = Atom.TOid;
          tty = Atom.TOid;
          pairs = List.init 3 (fun i -> (Atom.Oid (base + i), Atom.Oid 0)) }
    in
    let elem =
      Mil.Lit
        { hty = Atom.TOid;
          tty = Atom.TInt;
          pairs = List.init 3 (fun i -> (Atom.Oid (base + i), Atom.Int 9)) }
    in
    Shape.Set { link; elem = Shape.Atomic elem }

  let op_envelope ~op:_ ~args:_ ~ty:_ ~top:_ =
    Moaprop.Set { card = Milprop.exactly 2; elem = Moaprop.atomic Atom.TInt }

  let materialize _ ~recurse:_ ~path:_ ~ty_args:_ ~dom:_ = failwith "BRK is not storable"
  let filter_flat ~recurse:_ ~meta:_ ~bats:_ ~subs:_ ~survivors:_ = failwith "BRK bundles"
  let rebase_flat _ ~recurse:_ ~meta:_ ~bats:_ ~subs:_ ~m:_ = failwith "BRK bundles"
  let reify ~lookup:_ ~recurse:_ ~meta:_ ~bats:_ ~subs:_ ~ctx:_ = failwith "BRK bundles"
  let restore _ ~recurse:_ ~path:_ ~ty_args:_ = failwith "BRK is not storable"
  let foreign_ops = []
  let foreign_sigs = []
  let foreign_effects = []
  let foreign_bounds = []

  let prop_flat ~ctx ~prop:_ ~meta:_ ~nbats ~nsubs =
    (List.init nbats (fun _ -> None), List.init nsubs (fun _ -> (Moaprop.Unknown, ctx)))

  let bind_value ~path:_ ~recurse:_ ~ty_args:_ v = v
end

let brk_expr () =
  Extension.register (module Brk);
  Expr.ExtOp
    { op = "brk_two";
      args =
        [ Expr.Lit
            ( Value.VSet [ Value.Atom (Atom.Int 1); Value.Atom (Atom.Int 2) ],
              Types.Set (Types.Atomic Atom.TInt) )
        ] }

let test_broken_rule () =
  let st = Lazy.force storage in
  let e = brk_expr () in
  (* the logical side is fine on its own *)
  ignore (infer_ok e);
  (* validation sees the physical bundle disagree *)
  let shape = Flatten.compile st e in
  (match Moacheck.validate st e shape with
  | Ok () -> Alcotest.fail "validate certified a broken flattening rule"
  | Error ds ->
    Alcotest.(check bool) "mismatch names the flattening" true
      (has_diag ds "flattening broke the envelope"));
  (* the checked compile path refuses outright *)
  (match Flatten.compile ~check:true st e with
  | exception Flatten.Ill_formed _ -> ()
  | _ -> Alcotest.fail "compile ~check:true accepted a broken flattening rule");
  (* and so does full vetting *)
  match Plancheck.vet st e with
  | Ok () -> Alcotest.fail "vet certified a broken flattening rule"
  | Error _ -> ()

(* {1 Daemon topic-graph lint} *)

let quiet = fun _ _ -> []

let pipeline_roots = [ "image.new"; "annotation.new"; "collection.complete"; "query.formulate" ]
let pipeline_sinks = [ "features.ready"; "annotation.indexed"; "clustering.done"; "thesaurus.ready" ]

let test_daemonlint () =
  (* the shipped daemon set is clean under the orchestrator's topics *)
  let ds = Daemonlint.lint ~roots:pipeline_roots ~sinks:pipeline_sinks (Standard.all ()) in
  Alcotest.(check int) "standard set lints clean" 0 (List.length ds);
  (* an orphan subscription is an error *)
  let orphan = Daemon.make ~name:"x" ~topics:[ "nowhere" ] quiet in
  let ds = Daemonlint.lint ~roots:[] [ orphan ] in
  Alcotest.(check bool) "orphan subscription flagged" true
    (List.exists
       (fun (d : Daemonlint.diag) -> d.Daemonlint.severity = Daemonlint.Error)
       (Daemonlint.errors ds));
  (* a publication nothing consumes dead-letters: warning, not error *)
  let noisy = Daemon.make ~name:"a" ~topics:[ "in" ] ~publishes:[ "out" ] quiet in
  let ds = Daemonlint.lint ~roots:[ "in" ] [ noisy ] in
  Alcotest.(check int) "dead-letter set has no errors" 0 (List.length (Daemonlint.errors ds));
  Alcotest.(check bool) "dead-letter publication flagged" true
    (List.exists (fun (d : Daemonlint.diag) -> d.Daemonlint.severity = Daemonlint.Warning) ds);
  (* a daemon fed only by a dead daemon can never fire *)
  let dead = Daemon.make ~name:"a" ~topics:[ "in" ] ~publishes:[ "mid" ] quiet in
  let downstream = Daemon.make ~name:"b" ~topics:[ "mid" ] quiet in
  let ds = Daemonlint.lint ~roots:[] [ dead; downstream ] in
  Alcotest.(check bool) "unreachable daemon flagged" true
    (List.exists
       (fun (d : Daemonlint.diag) ->
         d.Daemonlint.severity = Daemonlint.Error && d.Daemonlint.subject = "b")
       ds)

let () =
  Alcotest.run "moacheck"
    [
      ( "analyzer",
        [
          Alcotest.test_case "envelope precision" `Quick test_envelopes;
          Alcotest.test_case "structured diagnostics" `Quick test_diagnostics;
          Alcotest.test_case "logical lint smells" `Quick test_lint;
        ] );
      ( "validation",
        [ Alcotest.test_case "broken flattening rule is caught" `Quick test_broken_rule ] );
      ( "daemons",
        [ Alcotest.test_case "topic-graph lint" `Quick test_daemonlint ] );
    ]
