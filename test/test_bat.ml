(* Tests for the binary-relational kernel (mirror_bat). *)

module Atom = Mirror_bat.Atom
module Column = Mirror_bat.Column
module Bat = Mirror_bat.Bat
module Catalog = Mirror_bat.Catalog
module Mil = Mirror_bat.Mil

let oid i = Atom.Oid i
let int i = Atom.Int i
let flt f = Atom.Flt f
let str s = Atom.Str s

let bat_oi pairs = Bat.of_pairs Atom.TOid Atom.TInt (List.map (fun (h, t) -> (oid h, int t)) pairs)
let bat_oo pairs = Bat.of_pairs Atom.TOid Atom.TOid (List.map (fun (h, t) -> (oid h, oid t)) pairs)
let bat_os pairs = Bat.of_pairs Atom.TOid Atom.TStr (List.map (fun (h, t) -> (oid h, str t)) pairs)

let pairs_testable =
  Alcotest.testable
    (fun ppf b -> Bat.pp ppf b)
    (fun a b -> Bat.equal a b)

let check_bat name expected actual = Alcotest.check pairs_testable name expected actual

let atom_testable = Alcotest.testable Atom.pp Atom.equal

(* {1 Atom} *)

let test_atom_order_and_equal () =
  Alcotest.(check bool) "int eq" true (Atom.equal (int 3) (int 3));
  Alcotest.(check bool) "cross-type neq" false (Atom.equal (int 3) (oid 3));
  Alcotest.(check bool) "compare lt" true (Atom.compare (int 1) (int 2) < 0);
  Alcotest.(check bool) "str order" true (Atom.compare (str "a") (str "b") < 0);
  Alcotest.(check bool) "hash consistent" true (Atom.hash (str "x") = Atom.hash (str "x"))

let test_atom_round_trip () =
  List.iter
    (fun a ->
      let s = Atom.to_string a in
      match Atom.parse (Atom.type_of a) s with
      | Ok b -> Alcotest.check atom_testable ("round-trip " ^ s) a b
      | Error e -> Alcotest.fail e)
    [ int 42; int (-7); flt 3.25; str "hi\tthere"; str ""; Atom.Bool true; oid 9 ]

let test_atom_accessors () =
  Alcotest.(check int) "as_int" 5 (Atom.as_int (int 5));
  Alcotest.(check (float 0.0)) "as_float widens" 5.0 (Atom.as_float (int 5));
  Alcotest.check_raises "as_int of str" (Invalid_argument "Atom: expected int, got str")
    (fun () -> ignore (Atom.as_int (str "x")))

(* {1 Column} *)

let test_column_basics () =
  let c = Column.of_atoms Atom.TInt [ int 1; int 2; int 3 ] in
  Alcotest.(check int) "length" 3 (Column.length c);
  Alcotest.check atom_testable "get" (int 2) (Column.get c 1);
  Alcotest.(check bool) "ty" true (Column.ty c = Atom.TInt)

let test_column_type_check () =
  Alcotest.check_raises "bad atom"
    (Invalid_argument "Column: cell type str does not match column type int") (fun () ->
      ignore (Column.of_atoms Atom.TInt [ str "x" ]))

let test_column_gather () =
  let c = Column.of_atoms Atom.TStr [ str "a"; str "b"; str "c" ] in
  let g = Column.gather c [| 2; 0; 2 |] in
  Alcotest.(check (list string))
    "gather" [ "c"; "a"; "c" ]
    (List.map Atom.as_string (Column.to_atoms g))

let test_column_dense () =
  let c = Column.dense 5 3 in
  Alcotest.(check (list int)) "dense" [ 5; 6; 7 ] (List.map Atom.as_oid (Column.to_atoms c))

let test_column_builder () =
  let b = Column.Builder.create Atom.TFlt in
  for i = 1 to 100 do
    Column.Builder.add_float b (Float.of_int i)
  done;
  let c = Column.Builder.finish b in
  Alcotest.(check int) "length" 100 (Column.length c);
  Alcotest.check atom_testable "last" (flt 100.0) (Column.get c 99)

(* {1 Bat unary operators} *)

let test_make_length_check () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Bat.make: column length mismatch")
    (fun () ->
      ignore (Bat.make (Column.dense 0 2) (Column.of_atoms Atom.TInt [ int 1 ])))

let test_reverse_mirror () =
  let b = bat_oi [ (0, 10); (1, 11) ] in
  check_bat "reverse twice" b (Bat.reverse (Bat.reverse b));
  let m = Bat.mirror b in
  Bat.iter (fun h t -> Alcotest.check atom_testable "mirror" h t) m

let test_mark_number () =
  let b = bat_os [ (7, "x"); (9, "y") ] in
  let marked = Bat.mark b 100 in
  Alcotest.(check (list int)) "mark tails" [ 100; 101 ]
    (List.map (fun (_, t) -> Atom.as_oid t) (Bat.to_pairs marked));
  let nh = Bat.number_head b 50 in
  Alcotest.(check (list int)) "number_head heads" [ 50; 51 ]
    (List.map (fun (h, _) -> Atom.as_oid h) (Bat.to_pairs nh));
  Alcotest.(check (list int)) "number_head tails are old heads" [ 7; 9 ]
    (List.map (fun (_, t) -> Atom.as_oid t) (Bat.to_pairs nh));
  let nt = Bat.number_tail b 50 in
  Alcotest.(check (list string)) "number_tail tails" [ "x"; "y" ]
    (List.map (fun (_, t) -> Atom.as_string t) (Bat.to_pairs nt))

let test_project () =
  let b = bat_oi [ (0, 1); (1, 2) ] in
  let p = Bat.project b (str "k") in
  Alcotest.(check (list string)) "const tails" [ "k"; "k" ]
    (List.map (fun (_, t) -> Atom.as_string t) (Bat.to_pairs p))

let test_calc () =
  let b = bat_oi [ (0, 2); (1, 3) ] in
  check_bat "tail + 10" (bat_oi [ (0, 12); (1, 13) ]) (Bat.calc_const Bat.Add b (int 10));
  check_bat "20 - tail" (bat_oi [ (0, 18); (1, 17) ]) (Bat.const_calc Bat.Sub (int 20) b);
  let f = Bat.calc1 Bat.ToFlt b in
  Alcotest.(check bool) "toflt type" true (Bat.tty f = Atom.TFlt);
  let neg = Bat.calc1 Bat.Neg b in
  check_bat "neg" (bat_oi [ (0, -2); (1, -3) ]) neg

let test_calc_promotion () =
  let b = bat_oi [ (0, 2) ] in
  let r = Bat.calc_const Bat.Mul b (flt 1.5) in
  Alcotest.check atom_testable "int*flt promotes" (flt 3.0) (Bat.tail_at r 0)

let test_calc2 () =
  let l = bat_oi [ (0, 1); (1, 2); (2, 3) ] in
  let r = bat_oi [ (1, 10); (0, 20) ] in
  (* head-aligned: @2 has no partner and is dropped *)
  check_bat "aligned add" (bat_oi [ (0, 21); (1, 12) ]) (Bat.calc2 Bat.Add l r)

let test_calc2_pos () =
  let l = bat_oi [ (0, 1); (1, 2) ] in
  let r = bat_oi [ (9, 10); (9, 20) ] in
  check_bat "positional" (bat_oi [ (0, 11); (1, 22) ]) (Bat.calc2_pos Bat.Add l r)

let test_slice_sort_topn () =
  let b = bat_oi [ (0, 5); (1, 1); (2, 9); (3, 3) ] in
  check_bat "slice" (bat_oi [ (1, 1); (2, 9) ]) (Bat.slice b 1 2);
  check_bat "slice clamps" (bat_oi [ (3, 3) ]) (Bat.slice b 3 99);
  check_bat "sort asc" (bat_oi [ (1, 1); (3, 3); (0, 5); (2, 9) ]) (Bat.sort_tail b);
  check_bat "sort desc" (bat_oi [ (2, 9); (0, 5); (3, 3); (1, 1) ]) (Bat.sort_tail ~desc:true b);
  check_bat "top2" (bat_oi [ (2, 9); (0, 5) ]) (Bat.topn b 2)

let test_sort_stability () =
  let b = bat_oi [ (0, 1); (1, 1); (2, 0) ] in
  check_bat "stable ties" (bat_oi [ (2, 0); (0, 1); (1, 1) ]) (Bat.sort_tail b)

let test_unique () =
  let b = bat_oi [ (0, 1); (0, 1); (0, 2); (1, 1) ] in
  check_bat "unique pairs" (bat_oi [ (0, 1); (0, 2); (1, 1) ]) (Bat.unique b);
  check_bat "unique head" (bat_oi [ (0, 1); (1, 1) ]) (Bat.unique_head b)

(* {1 Selections} *)

let test_selections () =
  let b = bat_oi [ (0, 5); (1, 7); (2, 5); (3, 2) ] in
  check_bat "eq" (bat_oi [ (0, 5); (2, 5) ]) (Bat.select_cmp b Bat.Eq (int 5));
  check_bat "ne" (bat_oi [ (1, 7); (3, 2) ]) (Bat.select_cmp b Bat.Ne (int 5));
  check_bat "lt" (bat_oi [ (3, 2) ]) (Bat.select_cmp b Bat.Lt (int 5));
  check_bat "ge" (bat_oi [ (0, 5); (1, 7); (2, 5) ]) (Bat.select_cmp b Bat.Ge (int 5));
  check_bat "range" (bat_oi [ (0, 5); (2, 5); (3, 2) ]) (Bat.select_range b (int 2) (int 5))

let test_select_bool () =
  let b =
    Bat.of_pairs Atom.TOid Atom.TBool
      [ (oid 0, Atom.Bool true); (oid 1, Atom.Bool false); (oid 2, Atom.Bool true) ]
  in
  let r = Bat.select_bool b in
  Alcotest.(check (list int)) "true rows" [ 0; 2 ]
    (List.map (fun (h, _) -> Atom.as_oid h) (Bat.to_pairs r))

let test_filter () =
  let b = bat_oi [ (0, 1); (1, 2); (2, 3) ] in
  check_bat "generic filter" (bat_oi [ (1, 2) ])
    (Bat.filter (fun _ t -> Atom.as_int t mod 2 = 0) b)

(* {1 Binary operators} *)

let test_join_basic () =
  let l = bat_oo [ (0, 10); (1, 11); (2, 12) ] in
  let r = bat_os [ (11, "b"); (10, "a") ] in
  check_bat "join" (bat_os [ (0, "a"); (1, "b") ]) (Bat.join l r)

let test_join_multimatch () =
  let l = bat_oo [ (0, 10) ] in
  let r = bat_os [ (10, "x"); (10, "y") ] in
  check_bat "fanout" (bat_os [ (0, "x"); (0, "y") ]) (Bat.join l r)

let test_join_generic_strings () =
  let l = Bat.of_pairs Atom.TOid Atom.TStr [ (oid 0, str "k1"); (oid 1, str "k2") ] in
  let r = Bat.of_pairs Atom.TStr Atom.TInt [ (str "k2", int 22); (str "k1", int 11) ] in
  check_bat "string join" (bat_oi [ (0, 11); (1, 22) ]) (Bat.join l r)

let test_join_type_check () =
  let l = bat_oi [ (0, 1) ] in
  let r = bat_os [ (1, "x") ] in
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Bat.join: tail type int does not match head type oid") (fun () ->
      ignore (Bat.join l r))

let test_leftouterjoin () =
  let l = bat_oo [ (0, 10); (1, 99) ] in
  let r = bat_oi [ (10, 7) ] in
  check_bat "outer" (bat_oi [ (0, 7); (1, 0) ]) (Bat.leftouterjoin l r (int 0))

let test_semijoin_antijoin () =
  let l = bat_oi [ (0, 1); (1, 2); (2, 3) ] in
  let r = bat_oo [ (0, 0); (2, 0) ] in
  check_bat "semijoin" (bat_oi [ (0, 1); (2, 3) ]) (Bat.semijoin l r);
  check_bat "antijoin" (bat_oi [ (1, 2) ]) (Bat.antijoin l r);
  check_bat "kdiff alias" (Bat.antijoin l r) (Bat.kdiff l r);
  check_bat "kintersect alias" (Bat.semijoin l r) (Bat.kintersect l r)

let test_kunion () =
  let l = bat_oi [ (0, 1); (1, 2) ] in
  let r = bat_oi [ (1, 99); (2, 3) ] in
  check_bat "left precedence" (bat_oi [ (0, 1); (1, 2); (2, 3) ]) (Bat.kunion l r)

let test_pair_ops () =
  let l = bat_oi [ (0, 1); (0, 2); (1, 1) ] in
  let r = bat_oi [ (0, 2); (1, 1); (5, 5) ] in
  check_bat "pair_diff" (bat_oi [ (0, 1) ]) (Bat.pair_diff l r);
  check_bat "pair_inter" (bat_oi [ (0, 2); (1, 1) ]) (Bat.pair_inter l r);
  check_bat "pair_union"
    (bat_oi [ (0, 1); (0, 2); (1, 1); (5, 5) ])
    (Bat.pair_union l r)

let test_append () =
  let l = bat_oi [ (0, 1) ] and r = bat_oi [ (1, 2) ] in
  check_bat "append" (bat_oi [ (0, 1); (1, 2) ]) (Bat.append l r);
  Alcotest.check_raises "type mismatch" (Invalid_argument "Bat.append: type mismatch")
    (fun () -> ignore (Bat.append l (bat_os [ (0, "x") ])))

(* {1 Grouping and aggregation} *)

let test_group_aggr () =
  let b = bat_oi [ (0, 1); (1, 10); (0, 2); (1, 20); (0, 3) ] in
  check_bat "group sum" (bat_oi [ (0, 6); (1, 30) ]) (Bat.group_aggr Bat.Sum b);
  check_bat "group count" (bat_oi [ (0, 3); (1, 2) ]) (Bat.group_aggr Bat.Count b);
  check_bat "group min" (bat_oi [ (0, 1); (1, 10) ]) (Bat.group_aggr Bat.Min b);
  check_bat "group max" (bat_oi [ (0, 3); (1, 20) ]) (Bat.group_aggr Bat.Max b);
  let avg = Bat.group_aggr Bat.Avg b in
  Alcotest.check atom_testable "group avg" (flt 2.0) (Bat.tail_at avg 0)

let test_aggr_all () =
  let b = bat_oi [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.check atom_testable "sum" (int 6) (Bat.aggr_all Bat.Sum b);
  Alcotest.check atom_testable "count" (int 3) (Bat.aggr_all Bat.Count b);
  Alcotest.check atom_testable "min" (int 1) (Bat.aggr_all Bat.Min b);
  Alcotest.check atom_testable "avg" (flt 2.0) (Bat.aggr_all Bat.Avg b);
  let e = Bat.empty Atom.TOid Atom.TInt in
  Alcotest.check atom_testable "empty sum neutral" (int 0) (Bat.aggr_all Bat.Sum e);
  Alcotest.check atom_testable "empty count" (int 0) (Bat.aggr_all Bat.Count e);
  Alcotest.check_raises "empty min raises"
    (Invalid_argument "Bat.aggr_all: empty input for min/max/avg") (fun () ->
      ignore (Bat.aggr_all Bat.Min e))

let test_float_group_sum () =
  let b =
    Bat.of_pairs Atom.TOid Atom.TFlt [ (oid 0, flt 0.5); (oid 0, flt 0.25); (oid 1, flt 1.0) ]
  in
  let r = Bat.group_aggr Bat.Sum b in
  Alcotest.check atom_testable "float sum" (flt 0.75) (Bat.tail_at r 0)

let test_group_rank () =
  (* elements 10,11,12 in group 0 with keys 5.0, 9.0, 1.0; element 13 in group 1 *)
  let link = bat_oo [ (10, 0); (11, 0); (12, 0); (13, 1) ] in
  let key =
    Bat.of_pairs Atom.TOid Atom.TFlt
      [ (oid 10, flt 5.0); (oid 11, flt 9.0); (oid 12, flt 1.0); (oid 13, flt 2.0) ]
  in
  let r = Bat.group_rank ~desc:true ~link key in
  let rank_of e =
    let pairs = Bat.to_pairs r in
    List.assoc (oid e) (List.map (fun (h, t) -> (h, Atom.as_int t)) pairs)
  in
  Alcotest.(check int) "best in group" 0 (rank_of 11);
  Alcotest.(check int) "middle" 1 (rank_of 10);
  Alcotest.(check int) "worst" 2 (rank_of 12);
  Alcotest.(check int) "other group restarts" 0 (rank_of 13)

let test_histogram () =
  let b = bat_os [ (0, "a"); (1, "b"); (2, "a") ] in
  let h = Bat.histogram b in
  Alcotest.(check int) "distinct values" 2 (Bat.count h);
  let count_of v =
    List.assoc (str v) (List.map (fun (h, t) -> (h, Atom.as_int t)) (Bat.to_pairs h))
  in
  Alcotest.(check int) "a twice" 2 (count_of "a");
  Alcotest.(check int) "b once" 1 (count_of "b")

(* {1 Catalog} *)

let test_catalog_basics () =
  let c = Catalog.create () in
  Catalog.put c "x" (bat_oi [ (0, 1) ]);
  Alcotest.(check bool) "mem" true (Catalog.mem c "x");
  Alcotest.(check int) "cardinality" 1 (Catalog.cardinality c);
  check_bat "get" (bat_oi [ (0, 1) ]) (Catalog.get c "x");
  Catalog.remove c "x";
  Alcotest.(check bool) "removed" false (Catalog.mem c "x")

let test_catalog_round_trip () =
  let c = Catalog.create () in
  Catalog.put c "weird name %\t" (bat_os [ (0, "hello\tworld"); (1, "") ]);
  Catalog.put c "nums" (bat_oi [ (0, -5); (1, 7) ]);
  Catalog.put c "floats"
    (Bat.of_pairs Atom.TOid Atom.TFlt [ (oid 0, flt 1.5); (oid 1, flt (-0.25)) ]);
  let path = Filename.temp_file "mirror" ".cat" in
  Catalog.save_file c path;
  (match Catalog.load_file path with
  | Error e -> Alcotest.fail e
  | Ok c2 ->
    Alcotest.(check (list string)) "names" (Catalog.names c) (Catalog.names c2);
    List.iter
      (fun n -> check_bat ("entry " ^ n) (Catalog.get c n) (Catalog.get c2 n))
      (Catalog.names c));
  Sys.remove path

(* {1 Mil executor} *)

let mil_fixture () =
  let c = Catalog.create () in
  Catalog.put c "link" (bat_oo [ (10, 0); (11, 0); (12, 1) ]);
  Catalog.put c "vals" (bat_oi [ (10, 5); (11, 7); (12, 9) ]);
  c

let test_mil_basic_exec () =
  let c = mil_fixture () in
  let s = Mil.session c in
  let r = Mil.exec s (Mil.Join (Mil.Reverse (Mil.Get "link"), Mil.Get "vals")) in
  check_bat "join via plan" (bat_oi [ (0, 5); (0, 7); (1, 9) ]) r

let test_mil_group_sum_plan () =
  let c = mil_fixture () in
  let s = Mil.session c in
  let plan = Mil.GroupAggr (Bat.Sum, Mil.Join (Mil.Reverse (Mil.Get "link"), Mil.Get "vals")) in
  check_bat "grouped sum" (bat_oi [ (0, 12); (1, 9) ]) (Mil.exec s plan)

let test_mil_memoisation () =
  let c = mil_fixture () in
  let s = Mil.session c in
  let sub = Mil.Join (Mil.Reverse (Mil.Get "link"), Mil.Get "vals") in
  let p1 = Mil.GroupAggr (Bat.Sum, sub) in
  let p2 = Mil.GroupAggr (Bat.Count, sub) in
  ignore (Mil.exec s p1);
  let before = (Mil.stats s).Mil.evaluated in
  ignore (Mil.exec s p2);
  let after = (Mil.stats s).Mil.evaluated in
  (* Only the new GroupAggr node should evaluate; sub-plan is memoised. *)
  Alcotest.(check int) "one new node" 1 (after - before);
  Alcotest.(check bool) "memo hits recorded" true ((Mil.stats s).Mil.memo_hits > 0)

let test_mil_no_cse () =
  let c = mil_fixture () in
  let s = Mil.session ~cse:false c in
  let sub = Mil.Reverse (Mil.Get "link") in
  ignore (Mil.exec s sub);
  ignore (Mil.exec s sub);
  Alcotest.(check int) "re-evaluated" 4 (Mil.stats s).Mil.evaluated

let test_mil_lit_and_aggr_all () =
  let c = Catalog.create () in
  let s = Mil.session c in
  let lit = Mil.Lit { hty = Atom.TOid; tty = Atom.TInt; pairs = [ (oid 0, int 4); (oid 1, int 6) ] } in
  let r = Mil.exec s (Mil.AggrAll (Bat.Sum, lit)) in
  check_bat "aggr_all" (bat_oi [ (0, 10) ]) r

let test_mil_foreign () =
  let c = Catalog.create () in
  let foreign ~name ~args ~meta =
    Alcotest.(check string) "op name" "double" name;
    Alcotest.(check (list string)) "meta" [ "m" ] meta;
    match args with
    | [ b ] -> Bat.calc_const Bat.Mul b (int 2)
    | _ -> Alcotest.fail "bad arity"
  in
  let s = Mil.session ~foreign c in
  let lit = Mil.Lit { hty = Atom.TOid; tty = Atom.TInt; pairs = [ (oid 0, int 21) ] } in
  let r = Mil.exec s (Mil.Foreign { name = "double"; args = [ lit ]; meta = [ "m" ] }) in
  check_bat "foreign result" (bat_oi [ (0, 42) ]) r

let test_mil_unknown_foreign () =
  let s = Mil.session (Catalog.create ()) in
  Alcotest.check_raises "unknown foreign" (Failure "Mil: unknown foreign operator \"nope\"")
    (fun () ->
      ignore (Mil.exec s (Mil.Foreign { name = "nope"; args = []; meta = [] })))

let test_mil_size_and_pp () =
  let p = Mil.GroupAggr (Bat.Sum, Mil.Join (Mil.Reverse (Mil.Get "a"), Mil.Get "b")) in
  Alcotest.(check int) "size" 5 (Mil.size p);
  Alcotest.(check bool) "pp mentions join" true
    (String.length (Mil.to_string p) > 0
    &&
    let s = Mil.to_string p in
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains s "join")

(* {1 Fast-path coverage: dense ("void") heads, merge scans, typed loops} *)

let test_join_dense_head () =
  (* right head is dense ascending -> positional path *)
  let l = bat_oo [ (0, 102); (1, 100); (2, 999) ] in
  let r = Bat.make (Column.dense 100 3) (Column.of_atoms Atom.TStr [ str "a"; str "b"; str "c" ]) in
  check_bat "dense join" (bat_os [ (0, "c"); (1, "a") ]) (Bat.join l r)

let test_join_merge_sorted () =
  (* both sides sorted, right not dense -> merge join *)
  let l = bat_oo [ (0, 10); (1, 12); (2, 12); (3, 15) ] in
  let r = Bat.of_pairs Atom.TOid Atom.TInt [ (oid 10, int 1); (oid 12, int 2); (oid 14, int 3) ] in
  check_bat "merge join" (bat_oi [ (0, 1); (1, 2); (2, 2) ]) (Bat.join l r)

let test_join_fastpaths_match_generic () =
  (* same logical input through the hash path (shuffled) and the merge
     path (sorted) must agree as multisets *)
  let pairs = [ (5, 3); (1, 9); (3, 3); (2, 7); (4, 9) ] in
  let sorted = List.sort compare pairs in
  let l_sorted = bat_oo (List.map (fun (h, t) -> (h, t)) sorted) in
  let l_shuffled = bat_oo pairs in
  let r = bat_oi [ (3, 33); (9, 99) ] in
  Alcotest.(check bool) "same rows" true
    (Bat.equal_as_set (Bat.join l_sorted r) (Bat.join l_shuffled r))

let test_semijoin_dense_and_merge () =
  let l = bat_oi [ (10, 1); (11, 2); (12, 3); (30, 4) ] in
  let dense_r = Bat.make (Column.dense 11 2) (Column.dense 0 2) in
  check_bat "dense membership" (bat_oi [ (11, 2); (12, 3) ]) (Bat.semijoin l dense_r);
  let sparse_sorted_r = bat_oo [ (10, 0); (30, 0) ] in
  check_bat "merge membership" (bat_oi [ (10, 1); (30, 4) ]) (Bat.semijoin l sparse_sorted_r);
  check_bat "merge anti" (bat_oi [ (11, 2); (12, 3) ]) (Bat.antijoin l sparse_sorted_r)

let test_calc2_aligned_vs_indexed () =
  (* aligned heads take the positional typed loop *)
  let l = bat_oi [ (0, 1); (1, 2); (2, 3) ] in
  let r = bat_oi [ (0, 10); (1, 20); (2, 30) ] in
  check_bat "aligned" (bat_oi [ (0, 11); (1, 22); (2, 33) ]) (Bat.calc2 Bat.Add l r);
  (* permuted heads fall back to the index path with identical results *)
  let r_perm = bat_oi [ (2, 30); (0, 10); (1, 20) ] in
  check_bat "permuted" (bat_oi [ (0, 11); (1, 22); (2, 33) ]) (Bat.calc2 Bat.Add l r_perm)

let test_calc2_float_aligned () =
  let l = Bat.of_pairs Atom.TOid Atom.TFlt [ (oid 0, flt 1.5); (oid 1, flt 2.5) ] in
  let r = Bat.of_pairs Atom.TOid Atom.TFlt [ (oid 0, flt 0.5); (oid 1, flt 0.25) ] in
  let out = Bat.calc2 Bat.Mul l r in
  Alcotest.check atom_testable "float mul" (flt 0.75) (Bat.tail_at out 0);
  let cmp = Bat.calc2 (Bat.CmpOp Bat.Gt) l r in
  Alcotest.check atom_testable "float cmp" (Atom.Bool true) (Bat.tail_at cmp 0)

let test_group_aggr_windowed_slots () =
  (* heads within a small window use the flat slot table *)
  let b = bat_oi [ (1000, 1); (1001, 2); (1000, 3); (1002, 4) ] in
  check_bat "window sum" (bat_oi [ (1000, 4); (1001, 2); (1002, 4) ]) (Bat.group_aggr Bat.Sum b);
  (* widely-spread heads use the hash table; same semantics *)
  let spread = bat_oi [ (0, 1); (1_000_000, 2); (0, 3) ] in
  check_bat "hash sum" (bat_oi [ (0, 4); (1_000_000, 2) ]) (Bat.group_aggr Bat.Sum spread)

let test_group_aggr_float_sum_typed () =
  let b =
    Bat.of_pairs Atom.TOid Atom.TFlt
      [ (oid 7, flt 0.5); (oid 7, flt 1.5); (oid 8, flt 2.0) ]
  in
  let r = Bat.group_aggr Bat.Sum b in
  Alcotest.check atom_testable "typed float sum" (flt 2.0) (Bat.tail_at r 0);
  Alcotest.check atom_testable "second group" (flt 2.0) (Bat.tail_at r 1);
  let avg = Bat.group_aggr Bat.Avg b in
  Alcotest.check atom_testable "typed avg" (flt 1.0) (Bat.tail_at avg 0)

let test_select_cmp_typed_paths () =
  let f = Bat.of_pairs Atom.TOid Atom.TFlt [ (oid 0, flt 1.0); (oid 1, flt 2.0) ] in
  Alcotest.(check int) "float le" 1 (Bat.count (Bat.select_cmp f Bat.Le (flt 1.5)));
  let s = bat_os [ (0, "apple"); (1, "pear") ] in
  Alcotest.(check int) "string lt" 1 (Bat.count (Bat.select_cmp s Bat.Lt (str "b")));
  let o = bat_oo [ (0, 5); (1, 9) ] in
  Alcotest.(check int) "oid ge" 1 (Bat.count (Bat.select_cmp o Bat.Ge (oid 9)))

let test_mil_profiling () =
  let c = mil_fixture () in
  let tr = Mirror_util.Trace.create () in
  let s = Mil.session ~trace:tr c in
  let plan =
    Mil.GroupAggr (Bat.Sum, Mil.Join (Mil.Reverse (Mil.Get "link"), Mil.Get "vals"))
  in
  let result = Mil.exec s plan in
  let prof = Mil.profile s in
  Alcotest.(check bool) "profile recorded" true (List.length prof >= 3);
  List.iter
    (fun (_, t, n) ->
      Alcotest.(check bool) "non-negative time" true (t >= 0.0);
      Alcotest.(check bool) "positive count" true (n > 0))
    prof;
  (* the trace mirrors the plan: one root span, rows = result size *)
  (match Mirror_util.Trace.root tr with
  | None -> Alcotest.fail "no root span"
  | Some sp ->
    Alcotest.(check string) "root span is the root operator" (Mil.op_name plan)
      sp.Mirror_util.Trace.name;
    Alcotest.(check (option int))
      "root span rows" (Some (Bat.count result)) sp.Mirror_util.Trace.rows);
  (* untraced sessions report nothing *)
  let s2 = Mil.session c in
  ignore (Mil.exec s2 (Mil.Get "link"));
  Alcotest.(check int) "no profile by default" 0 (List.length (Mil.profile s2))

let test_nan_ordering_total () =
  let b =
    Bat.of_pairs Atom.TOid Atom.TFlt
      [ (oid 0, flt Float.nan); (oid 1, flt 1.0); (oid 2, flt Float.neg_infinity) ]
  in
  (* sorting with NaN must be deterministic, not crash or loop *)
  let sorted = Bat.sort_tail b in
  Alcotest.(check int) "all rows kept" 3 (Bat.count sorted);
  let twice = Bat.sort_tail (Bat.sort_tail b) in
  check_bat "idempotent under NaN" sorted twice;
  (* grouping by float tails via reverse also survives *)
  Alcotest.(check bool) "histogram total" true (Bat.count (Bat.histogram b) >= 2)

(* {1 Milopt} *)

module Milopt = Mirror_bat.Milopt

let test_milopt_rules () =
  let g = Mil.Get "x" in
  Alcotest.(check bool) "reverse/reverse" true (Milopt.rewrite (Mil.Reverse (Mil.Reverse g)) = g);
  Alcotest.(check bool) "mirror idempotent" true
    (Milopt.rewrite (Mil.Mirror (Mil.Mirror g)) = Mil.Mirror g);
  Alcotest.(check bool) "reverse of mirror" true
    (Milopt.rewrite (Mil.Reverse (Mil.Mirror g)) = Mil.Mirror g);
  let s = Mil.SelectBool (Mil.Get "p") in
  Alcotest.(check bool) "semijoin idempotent" true
    (Milopt.rewrite (Mil.Semijoin (Mil.Semijoin (g, s), s)) = Mil.Semijoin (g, s));
  Alcotest.(check bool) "slice of sort is topn" true
    (Milopt.rewrite (Mil.Slice (Mil.SortTail (g, true), 0, 5)) = Mil.TopN (g, 5, true));
  Alcotest.(check bool) "semijoin self" true (Milopt.rewrite (Mil.Semijoin (g, g)) = g);
  Alcotest.(check bool) "kunion self" true (Milopt.rewrite (Mil.Kunion (g, g)) = g);
  Alcotest.(check bool) "unique idempotent" true
    (Milopt.rewrite (Mil.Unique (Mil.Unique g)) = Mil.Unique g);
  (* rewrites nest: the inner double reverse disappears first *)
  let deep = Mil.GroupAggr (Bat.Sum, Mil.Reverse (Mil.Reverse (Mil.Reverse g))) in
  Alcotest.(check bool) "nested" true (Milopt.rewrite deep = Mil.GroupAggr (Bat.Sum, Mil.Reverse g))

let test_milopt_preserves_results () =
  let c = mil_fixture () in
  let plans =
    [
      Mil.Reverse (Mil.Reverse (Mil.Get "vals"));
      Mil.GroupAggr (Bat.Sum, Mil.Reverse (Mil.Reverse (Mil.Join (Mil.Reverse (Mil.Get "link"), Mil.Get "vals"))));
      Mil.Slice (Mil.SortTail (Mil.Get "vals", true), 0, 2);
    ]
  in
  List.iter
    (fun p ->
      let s1 = Mil.session c and s2 = Mil.session c in
      let before = Mil.exec s1 p in
      let after = Mil.exec s2 (Milopt.rewrite p) in
      check_bat "rewrite preserves result" before after)
    plans

(* {1 QCheck properties} *)

let gen_small_bat =
  QCheck.make
    ~print:(fun pairs ->
      String.concat ";" (List.map (fun (h, t) -> Printf.sprintf "(%d,%d)" h t) pairs))
    QCheck.Gen.(list_size (int_range 0 30) (pair (int_range 0 9) (int_range (-20) 20)))

let to_bat pairs = bat_oi pairs

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse is an involution" ~count:200 gen_small_bat (fun pairs ->
      let b = to_bat pairs in
      Bat.equal b (Bat.reverse (Bat.reverse b)))

let prop_join_mirror_identity =
  QCheck.Test.make ~name:"join with mirror is identity" ~count:200 gen_small_bat
    (fun pairs ->
      (* join l (mirror (reverse l)) re-derives l's pairs (per row, as a multiset) *)
      let b = to_bat pairs in
      let m = Bat.mirror (Bat.reverse b) in
      (* mirror may contain duplicate heads; use unique to get the identity map *)
      let m = Bat.unique m in
      Bat.equal_as_set b (Bat.join b m))

let prop_semijoin_subset =
  QCheck.Test.make ~name:"semijoin yields a sub-multiset" ~count:200
    (QCheck.pair gen_small_bat gen_small_bat) (fun (p1, p2) ->
      let l = to_bat p1 and r = to_bat p2 in
      let s = Bat.semijoin l r in
      Bat.count (Bat.pair_diff s l) = 0)

let prop_semi_anti_partition =
  QCheck.Test.make ~name:"semijoin + antijoin partition the input" ~count:200
    (QCheck.pair gen_small_bat gen_small_bat) (fun (p1, p2) ->
      let l = to_bat p1 and r = to_bat p2 in
      Bat.count (Bat.semijoin l r) + Bat.count (Bat.antijoin l r) = Bat.count l)

let prop_group_sum_total =
  QCheck.Test.make ~name:"group sums add up to global sum" ~count:200 gen_small_bat
    (fun pairs ->
      let b = to_bat pairs in
      let grouped = Bat.group_aggr Bat.Sum b in
      Atom.equal (Bat.aggr_all Bat.Sum b) (Bat.aggr_all Bat.Sum grouped))

let prop_sort_is_permutation =
  QCheck.Test.make ~name:"sort_tail permutes rows" ~count:200 gen_small_bat (fun pairs ->
      let b = to_bat pairs in
      Bat.equal_as_set b (Bat.sort_tail b))

let prop_sort_sorted =
  QCheck.Test.make ~name:"sort_tail is ordered" ~count:200 gen_small_bat (fun pairs ->
      let b = Bat.sort_tail (to_bat pairs) in
      let ok = ref true in
      for i = 1 to Bat.count b - 1 do
        if Atom.compare (Bat.tail_at b (i - 1)) (Bat.tail_at b i) > 0 then ok := false
      done;
      !ok)

let prop_kunion_heads =
  QCheck.Test.make ~name:"kunion covers both head sets" ~count:200
    (QCheck.pair gen_small_bat gen_small_bat) (fun (p1, p2) ->
      let l = to_bat p1 and r = to_bat p2 in
      let u = Bat.kunion l r in
      Bat.count (Bat.antijoin l u) = 0 && Bat.count (Bat.antijoin r u) = 0)

let prop_unique_idempotent =
  QCheck.Test.make ~name:"unique is idempotent" ~count:200 gen_small_bat (fun pairs ->
      let b = to_bat pairs in
      Bat.equal (Bat.unique b) (Bat.unique (Bat.unique b)))

let prop_select_partition =
  QCheck.Test.make ~name:"select eq + ne partition rows" ~count:200
    (QCheck.pair gen_small_bat (QCheck.int_range (-20) 20)) (fun (pairs, v) ->
      let b = to_bat pairs in
      Bat.count (Bat.select_cmp b Bat.Eq (int v)) + Bat.count (Bat.select_cmp b Bat.Ne (int v))
      = Bat.count b)

(* reference implementations to pin the kernel's fast paths *)
let ref_join l r =
  List.concat_map
    (fun (lh, lt) ->
      List.filter_map (fun (rh, rt) -> if Atom.equal lt rh then Some (lh, rt) else None)
        (Bat.to_pairs r))
    (Bat.to_pairs l)

let prop_join_matches_reference =
  QCheck.Test.make ~name:"join agrees with the nested-loop reference" ~count:200
    (QCheck.pair gen_small_bat gen_small_bat) (fun (p1, p2) ->
      (* l : oid->oid (via abs), r : oid->int *)
      let l =
        Bat.of_pairs Atom.TOid Atom.TOid
          (List.map (fun (h, t) -> (oid h, oid (abs t))) p1)
      in
      let r = to_bat p2 in
      let expected = ref_join l r in
      let actual = Bat.to_pairs (Bat.join l r) in
      let sort =
        List.sort (fun (h1, t1) (h2, t2) ->
            let c = Atom.compare h1 h2 in
            if c <> 0 then c else Atom.compare t1 t2)
      in
      sort expected = sort actual)

let ref_group_sum b =
  let acc = Hashtbl.create 16 in
  let order = ref [] in
  Bat.iter
    (fun h t ->
      let k = Atom.as_oid h in
      if not (Hashtbl.mem acc k) then order := k :: !order;
      Hashtbl.replace acc k (Atom.as_int t + Option.value ~default:0 (Hashtbl.find_opt acc k)))
    b;
  List.rev_map (fun k -> (oid k, int (Hashtbl.find acc k))) !order

let prop_group_sum_matches_reference =
  QCheck.Test.make ~name:"group_aggr sum agrees with reference" ~count:200 gen_small_bat
    (fun pairs ->
      let b = to_bat pairs in
      Bat.to_pairs (Bat.group_aggr Bat.Sum b) = ref_group_sum b)

let prop_semijoin_order_independent =
  QCheck.Test.make ~name:"semijoin result independent of right order" ~count:200
    (QCheck.pair gen_small_bat gen_small_bat) (fun (p1, p2) ->
      let l = to_bat p1 in
      let r1 = to_bat p2 in
      let r2 = to_bat (List.rev p2) in
      Bat.equal (Bat.semijoin l r1) (Bat.semijoin l r2))

let prop_mark_dense =
  QCheck.Test.make ~name:"mark produces dense oids" ~count:200 gen_small_bat (fun pairs ->
      let b = Bat.mark (to_bat pairs) 1000 in
      let ok = ref true in
      for i = 0 to Bat.count b - 1 do
        if Atom.as_oid (Bat.tail_at b i) <> 1000 + i then ok := false
      done;
      !ok)

(* {1 Allocation lint}

   The typed kernels must not box per cell: a boxed [Column.get] loop
   over n int rows costs >= 2n minor-heap words (one [Atom.Int] block
   per cell), while the monomorphic loops allocate only their result
   arrays — which at 100k elements exceed Max_young_wosize and go
   straight to the major heap.  So a minor-words delta well under n is
   a structural proof the fast path ran; n/8 leaves room for growable
   buffers' small doubling steps. *)

let test_alloc_lint () =
  let n = 100_000 in
  let b =
    Bat.make
      (Column.O (Array.init n (fun i -> i)))
      (Column.I (Array.init n (fun i -> (i * 7) mod 1000)))
  in
  let grp =
    Bat.make
      (Column.O (Array.init n (fun i -> i mod 64)))
      (Column.I (Array.init n (fun i -> (i * 13) mod 1000)))
  in
  List.iter
    (fun (label, f) ->
      f ();
      (* warmed up: measure one clean run *)
      let w0 = Gc.minor_words () in
      f ();
      let dw = Gc.minor_words () -. w0 in
      if dw > Float.of_int (n / 8) then
        Alcotest.failf "%s allocated %.0f minor words over %d rows (per-cell boxing?)"
          label dw n)
    [
      ("select_cmp int", fun () -> ignore (Bat.select_cmp b Bat.Lt (Atom.Int 500)));
      ( "select_range int",
        fun () -> ignore (Bat.select_range b (Atom.Int 100) (Atom.Int 700)) );
      ("calc_const add", fun () -> ignore (Bat.calc_const Bat.Add b (Atom.Int 3)));
      ("calc1 neg", fun () -> ignore (Bat.calc1 Bat.Neg b));
      ("group_aggr sum int", fun () -> ignore (Bat.group_aggr Bat.Sum grp));
      ("aggr_all sum int", fun () -> ignore (Bat.aggr_all Bat.Sum b));
    ]

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mirror_bat"
    [
      ( "atom",
        [
          Alcotest.test_case "order and equality" `Quick test_atom_order_and_equal;
          Alcotest.test_case "print/parse round-trip" `Quick test_atom_round_trip;
          Alcotest.test_case "accessors" `Quick test_atom_accessors;
        ] );
      ( "column",
        [
          Alcotest.test_case "basics" `Quick test_column_basics;
          Alcotest.test_case "type checking" `Quick test_column_type_check;
          Alcotest.test_case "gather" `Quick test_column_gather;
          Alcotest.test_case "dense" `Quick test_column_dense;
          Alcotest.test_case "builder growth" `Quick test_column_builder;
        ] );
      ( "bat-unary",
        [
          Alcotest.test_case "make checks lengths" `Quick test_make_length_check;
          Alcotest.test_case "reverse/mirror" `Quick test_reverse_mirror;
          Alcotest.test_case "mark/number" `Quick test_mark_number;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "calc" `Quick test_calc;
          Alcotest.test_case "numeric promotion" `Quick test_calc_promotion;
          Alcotest.test_case "calc2 head-aligned" `Quick test_calc2;
          Alcotest.test_case "calc2 positional" `Quick test_calc2_pos;
          Alcotest.test_case "slice/sort/topn" `Quick test_slice_sort_topn;
          Alcotest.test_case "sort stability" `Quick test_sort_stability;
          Alcotest.test_case "unique" `Quick test_unique;
        ] );
      ( "bat-select",
        [
          Alcotest.test_case "comparisons" `Quick test_selections;
          Alcotest.test_case "boolean select" `Quick test_select_bool;
          Alcotest.test_case "generic filter" `Quick test_filter;
        ] );
      ( "bat-binary",
        [
          Alcotest.test_case "join" `Quick test_join_basic;
          Alcotest.test_case "join fan-out" `Quick test_join_multimatch;
          Alcotest.test_case "join on strings" `Quick test_join_generic_strings;
          Alcotest.test_case "join type check" `Quick test_join_type_check;
          Alcotest.test_case "left outer join" `Quick test_leftouterjoin;
          Alcotest.test_case "semijoin/antijoin" `Quick test_semijoin_antijoin;
          Alcotest.test_case "kunion" `Quick test_kunion;
          Alcotest.test_case "pair ops" `Quick test_pair_ops;
          Alcotest.test_case "append" `Quick test_append;
        ] );
      ( "bat-group",
        [
          Alcotest.test_case "group aggregates" `Quick test_group_aggr;
          Alcotest.test_case "aggr_all" `Quick test_aggr_all;
          Alcotest.test_case "float group sum" `Quick test_float_group_sum;
          Alcotest.test_case "group_rank" `Quick test_group_rank;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "basics" `Quick test_catalog_basics;
          Alcotest.test_case "dump/load round-trip" `Quick test_catalog_round_trip;
        ] );
      ( "mil",
        [
          Alcotest.test_case "basic execution" `Quick test_mil_basic_exec;
          Alcotest.test_case "grouped sum plan" `Quick test_mil_group_sum_plan;
          Alcotest.test_case "memoisation (CSE)" `Quick test_mil_memoisation;
          Alcotest.test_case "cse off re-evaluates" `Quick test_mil_no_cse;
          Alcotest.test_case "literal + aggr_all" `Quick test_mil_lit_and_aggr_all;
          Alcotest.test_case "foreign dispatch" `Quick test_mil_foreign;
          Alcotest.test_case "unknown foreign fails" `Quick test_mil_unknown_foreign;
          Alcotest.test_case "size and pp" `Quick test_mil_size_and_pp;
        ] );
      ( "fast-paths",
        [
          Alcotest.test_case "dense-head join" `Quick test_join_dense_head;
          Alcotest.test_case "merge join on sorted oids" `Quick test_join_merge_sorted;
          Alcotest.test_case "hash vs merge agree" `Quick test_join_fastpaths_match_generic;
          Alcotest.test_case "semijoin dense + merge" `Quick test_semijoin_dense_and_merge;
          Alcotest.test_case "calc2 aligned vs indexed" `Quick test_calc2_aligned_vs_indexed;
          Alcotest.test_case "calc2 typed float" `Quick test_calc2_float_aligned;
          Alcotest.test_case "group_aggr windowed slots" `Quick test_group_aggr_windowed_slots;
          Alcotest.test_case "group_aggr typed float" `Quick test_group_aggr_float_sum_typed;
          Alcotest.test_case "select_cmp typed paths" `Quick test_select_cmp_typed_paths;
          Alcotest.test_case "mil profiling" `Quick test_mil_profiling;
          Alcotest.test_case "NaN ordering is total" `Quick test_nan_ordering_total;
          Alcotest.test_case "milopt rules" `Quick test_milopt_rules;
          Alcotest.test_case "milopt preserves results" `Quick test_milopt_preserves_results;
          Alcotest.test_case "no per-cell boxing (minor words)" `Quick test_alloc_lint;
        ] );
      ( "properties",
        qc
          [
            prop_reverse_involution;
            prop_join_mirror_identity;
            prop_semijoin_subset;
            prop_semi_anti_partition;
            prop_group_sum_total;
            prop_sort_is_permutation;
            prop_sort_sorted;
            prop_kunion_heads;
            prop_unique_idempotent;
            prop_select_partition;
            prop_mark_dense;
            prop_join_matches_reference;
            prop_group_sum_matches_reference;
            prop_semijoin_order_independent;
          ] );
    ]
