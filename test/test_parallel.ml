(* The parallel-kernel correctness battery.

   The morsel scheduler's contract is that parallel execution is
   invisible: for any plan the Effcheck verdict licenses, running under
   a domain pool of any size with any morsel size produces a result
   [Bat.equal] (order- and bit-sensitive) to the sequential kernel's.
   This suite attacks that contract from four sides:

   - differential fuzzing: seeded random MIL plans (the shared
     {!Milgen} generator) executed sequentially and under pools of 1, 2
     and 4 domains with randomized morsel sizes — 120 plans per domain
     count in the default test run, 500 when MIRROR_PARALLEL_FULL is
     set (the @bench-smoke alias);
   - the unsafe-operator ladder: a deliberately misbehaving foreign
     operator (undeclared in-place write) must be flagged by Effcheck,
     refused by the scheduler (its dispatch sees no current pool), and
     caught by the runtime effect sanitizer when its declaration lies;
   - merge-order units: each parallel aggregate merged across every
     domain count and pathological morsel size must equal the
     sequential fold, including float min/max with NaN and signed
     zeros, and the mixed int/float Calc2 regression from PR 3;
   - morsel edge cases: empty input, single row, morsel size larger
     than the BAT. *)

module Prng = Mirror_util.Prng
module Trace = Mirror_util.Trace
module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Column = Mirror_bat.Column
module Catalog = Mirror_bat.Catalog
module Mil = Mirror_bat.Mil
module Effcheck = Mirror_bat.Effcheck
module Parkernel = Mirror_bat.Parkernel

let full = Sys.getenv_opt "MIRROR_PARALLEL_FULL" <> None
let plans_to_generate = if full then 500 else 120
let domain_counts = [ 1; 2; 4 ]
let morsel_sizes = [| 1; 3; 16; 64; 1000 |]

let failf plan fmt =
  Printf.ksprintf
    (fun msg -> Alcotest.failf "%s\nplan:\n%s" msg (Mil.to_string plan))
    fmt

(* {1 Differential fuzz: parallel == sequential, bit for bit} *)

let test_differential () =
  Parkernel.set_min_rows 0;
  let catalog = Milgen.fixture () in
  let eenv = Effcheck.env () in
  let pools = List.map (fun d -> (d, Parkernel.create d)) domain_counts in
  let g = Prng.create 20260809 in
  let pool = ref (Milgen.seed_pool catalog Milgen.fixture_names) in
  let par_execs = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.set_morsel_size 16_384;
      List.iter (fun (_, p) -> Parkernel.shutdown p) pools)
    (fun () ->
      for _ = 1 to plans_to_generate do
        let plan, hty, tty = Milgen.generate g !pool in
        let expected = Mil.exec (Mil.session catalog) plan in
        let safe = (Effcheck.analyze eenv [ plan ]).Effcheck.safe in
        if not (safe plan) then
          failf plan "Effcheck refused a kernel-only plan as parallel-unsafe";
        List.iter
          (fun (d, p) ->
            Parkernel.set_morsel_size (Prng.choose g morsel_sizes);
            let s = Mil.session ~par:{ Mil.pool = p; safe; morsel = (fun _ -> None) } catalog in
            let got = Mil.exec s plan in
            if not (Bat.equal expected got) then
              failf plan "parallel result differs at %d domains (morsel %d)" d
                (Parkernel.morsel_size ());
            par_execs := !par_execs + (Mil.stats s).Mil.par_ops)
          pools;
        if Bat.count expected <= 1000 then
          pool := { Milgen.plan; hty; tty } :: !pool
      done;
      Alcotest.(check bool)
        (Printf.sprintf "the pools actually ran operators in parallel (%d par ops)"
           !par_execs)
        true (!par_execs > 0))

(* {1 The unsafe-operator ladder}

   A test-only foreign operator that mutates its input column in place
   and returns the very same BAT — the two sins (undeclared write,
   undeclared aliasing) the effect layer exists to catch. *)

let clobber_name = "test.clobber"

let clobber_dispatch saw_pool ~name ~args ~meta:_ =
  match (name, args) with
  | n, [ b ] when n = clobber_name ->
    saw_pool := Parkernel.current () <> None;
    (match Bat.tail b with
    | Column.I a when Array.length a > 0 -> a.(0) <- a.(0) + 1
    | _ -> ());
    b
  | _ -> Alcotest.failf "unexpected foreign %s" name

let test_effcheck_flags_unsafe () =
  let plan = Mil.Foreign { name = clobber_name; args = [ Mil.Get "ints" ]; meta = [] } in
  let v = Effcheck.analyze (Effcheck.env ()) [ plan ] in
  Alcotest.(check bool) "undeclared foreign raises a hazard" true (v.Effcheck.hazards <> []);
  Alcotest.(check bool) "verdict refuses the node" false (v.Effcheck.safe plan);
  (* the taint spreads over the whole partition: the argument scan the
     clobber can reach is refused too *)
  Alcotest.(check bool) "argument node shares the unsafe partition" false
    (v.Effcheck.safe (Mil.Get "ints"))

let test_scheduler_refuses_unsafe () =
  Parkernel.set_min_rows 0;
  let catalog = Milgen.fixture () in
  let pool = Parkernel.create 2 in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.shutdown pool)
    (fun () ->
      let plan = Mil.Foreign { name = clobber_name; args = [ Mil.Get "ints" ]; meta = [] } in
      let saw_pool = ref true in
      (* undeclared: the verdict marks the node unsafe, so the executor
         must dispatch it outside the pool scope *)
      let safe = (Effcheck.analyze (Effcheck.env ()) [ plan ]).Effcheck.safe in
      let s =
        Mil.session ~foreign:(clobber_dispatch saw_pool) ~par:{ Mil.pool; safe; morsel = (fun _ -> None) } catalog
      in
      ignore (Mil.exec s plan);
      Alcotest.(check bool) "unsafe foreign ran without a pool" false !saw_pool;
      Alcotest.(check int) "no operator went parallel" 0 (Mil.stats s).Mil.par_ops;
      (* the same operator with a (false) pure declaration is licensed:
         the scheduler exposes the pool to its dispatch *)
      let eenv =
        Effcheck.env
          ~foreign:(fun n -> if n = clobber_name then Some Effcheck.pure_foreign else None)
          ()
      in
      let safe = (Effcheck.analyze eenv [ plan ]).Effcheck.safe in
      let s2 =
        Mil.session ~foreign:(clobber_dispatch saw_pool) ~par:{ Mil.pool; safe; morsel = (fun _ -> None) } catalog
      in
      ignore (Mil.exec s2 plan);
      Alcotest.(check bool) "declared-pure foreign sees the pool" true !saw_pool)

let test_sanitizer_catches_forced () =
  (* force the operator through by lying: declare it pure, then let the
     runtime sanitizer compare observed behaviour against the
     declaration *)
  let catalog = Milgen.fixture () in
  let eenv =
    Effcheck.env
      ~foreign:(fun n -> if n = clobber_name then Some Effcheck.pure_foreign else None)
      ()
  in
  let saw_pool = ref false in
  let s = Mil.session ~foreign:(clobber_dispatch saw_pool) catalog in
  let san = Effcheck.sanitizer eenv s in
  let plan = Mil.Foreign { name = clobber_name; args = [ Mil.Get "ints" ]; meta = [] } in
  match Effcheck.exec san plan with
  | exception Effcheck.Violation _ -> ()
  | _ -> (
    (* aliasing slipped by (zero-length exemptions etc.): the in-place
       write must still be caught by the final fingerprint pass *)
    match Effcheck.finish san with
    | exception Effcheck.Violation _ -> ()
    | () -> Alcotest.fail "sanitizer accepted an undeclared in-place write")

(* {1 Merge-order units: aggregates across domain counts} *)

let ints_bat n =
  Bat.make
    (Column.O (Array.init n (fun i -> i mod 7)))
    (Column.I (Array.init n (fun i -> (i * 31) mod 113 - 50)))

let flts_bat n =
  Bat.make
    (Column.O (Array.init n (fun i -> i mod 7)))
    (Column.F (Array.init n (fun i -> Float.of_int ((i * 17) mod 97 - 48) /. 8.0)))

let check_group pool label aggr b =
  let expected = Bat.group_aggr aggr b in
  match Parkernel.group_aggr pool aggr b with
  | None -> Alcotest.failf "%s: no parallel path" label
  | Some (got, _) ->
    if not (Bat.equal expected got) then Alcotest.failf "%s: group merge differs" label

let check_aggr_all pool label aggr b =
  let expected = Bat.aggr_all aggr b in
  match Parkernel.aggr_all pool aggr b with
  | None -> Alcotest.failf "%s: no parallel path" label
  | Some (got, _) ->
    if not (Atom.equal expected got) then
      Alcotest.failf "%s: parallel fold differs (seq %s, par %s)" label
        (Atom.to_string expected) (Atom.to_string got)

let test_merge_order () =
  Parkernel.set_min_rows 0;
  let pools = List.map (fun d -> (d, Parkernel.create d)) domain_counts in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.set_morsel_size 16_384;
      List.iter (fun (_, p) -> Parkernel.shutdown p) pools)
    (fun () ->
      let n = 200 in
      let bi = ints_bat n and bf = flts_bat n in
      List.iter
        (fun (d, pool) ->
          List.iter
            (fun msz ->
              Parkernel.set_morsel_size msz;
              let tag op = Printf.sprintf "%s @%dd/m%d" op d msz in
              check_group pool (tag "group count") Bat.Count bi;
              check_group pool (tag "group sum int") Bat.Sum bi;
              check_group pool (tag "group min int") Bat.Min bi;
              check_group pool (tag "group max int") Bat.Max bi;
              check_group pool (tag "group min flt") Bat.Min bf;
              check_group pool (tag "group max flt") Bat.Max bf;
              check_aggr_all pool (tag "all sum int") Bat.Sum bi;
              check_aggr_all pool (tag "all min int") Bat.Min bi;
              check_aggr_all pool (tag "all max int") Bat.Max bi;
              check_aggr_all pool (tag "all prod int") Bat.Prod
                (Bat.make (Bat.head bi) (Column.I (Array.init n (fun i -> (i mod 3) - 1))));
              check_aggr_all pool (tag "all min flt") Bat.Min bf;
              check_aggr_all pool (tag "all max flt") Bat.Max bf)
            [ 1; 7; 1000 ])
        pools;
      (* float sums are non-associative: the kernel must refuse to
         parallelize them rather than produce rounding-dependent bits *)
      let _, pool4 = List.nth pools 2 in
      Alcotest.(check bool) "float group sum stays sequential" true
        (Parkernel.group_aggr pool4 Bat.Sum bf = None);
      Alcotest.(check bool) "float group avg stays sequential" true
        (Parkernel.group_aggr pool4 Bat.Avg bf = None);
      Alcotest.(check bool) "float fold sum stays sequential" true
        (Parkernel.aggr_all pool4 Bat.Sum bf = None);
      Alcotest.(check bool) "float fold avg stays sequential" true
        (Parkernel.aggr_all pool4 Bat.Avg bf = None))

let test_float_specials () =
  Parkernel.set_min_rows 0;
  let pool = Parkernel.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.set_morsel_size 16_384;
      Parkernel.shutdown pool)
    (fun () ->
      Parkernel.set_morsel_size 2;
      let specials =
        Bat.make
          (Column.O (Array.init 8 (fun i -> i mod 2)))
          (Column.F [| 0.0; -0.0; Float.nan; 1.5; Float.infinity; -3.25; Float.nan; 0.5 |])
      in
      check_group pool "NaN/zero group min" Bat.Min specials;
      check_group pool "NaN/zero group max" Bat.Max specials;
      check_aggr_all pool "NaN/zero fold min" Bat.Min specials;
      check_aggr_all pool "NaN/zero fold max" Bat.Max specials)

(* the PR 3 regression: Calc2 MinOp over an int and a float column
   promotes to float; the parallel kernel has no mixed-type fast path
   and must fall back to the sequential operator, not misclassify *)
let test_mixed_calc2 () =
  Parkernel.set_min_rows 0;
  let catalog = Catalog.create () in
  let n = 64 in
  Catalog.put catalog "i"
    (Bat.make (Column.O (Array.init n (fun i -> i))) (Column.I (Array.init n (fun i -> i - 30))));
  Catalog.put catalog "f"
    (Bat.make
       (Column.O (Array.init n (fun i -> i)))
       (Column.F (Array.init n (fun i -> Float.of_int (40 - i) /. 4.0))));
  let pool = Parkernel.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.shutdown pool)
    (fun () ->
      let plan = Mil.Calc2 (Bat.MinOp, Mil.Get "i", Mil.Get "f") in
      let expected = Mil.exec (Mil.session catalog) plan in
      let safe = (Effcheck.analyze (Effcheck.env ()) [ plan ]).Effcheck.safe in
      let got = Mil.exec (Mil.session ~par:{ Mil.pool; safe; morsel = (fun _ -> None) } catalog) plan in
      Alcotest.(check bool) "mixed int/float Calc2 matches sequential" true
        (Bat.equal expected got))

(* {1 Morsel edge cases} *)

let test_morsel_edges () =
  Parkernel.set_min_rows 0;
  let pool = Parkernel.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.set_morsel_size 16_384;
      Parkernel.shutdown pool)
    (fun () ->
      let check label b =
        let expected = Bat.select_cmp b Bat.Gt (Atom.Int 0) in
        (match Parkernel.select_cmp pool b Bat.Gt (Atom.Int 0) with
        | None -> Alcotest.failf "%s: no parallel scan path" label
        | Some (got, _) ->
          Alcotest.(check bool) (label ^ ": scan") true (Bat.equal expected got));
        let eg = Bat.group_aggr Bat.Sum b in
        match Parkernel.group_aggr pool Bat.Sum b with
        | None -> Alcotest.failf "%s: no parallel group path" label
        | Some (got, _) ->
          Alcotest.(check bool) (label ^ ": group") true (Bat.equal eg got)
      in
      let bat_of n =
        Bat.make
          (Column.O (Array.init n (fun i -> i mod 3)))
          (Column.I (Array.init n (fun i -> i - (n / 2))))
      in
      Parkernel.set_morsel_size 4;
      check "empty BAT" (bat_of 0);
      check "single row" (bat_of 1);
      Parkernel.set_morsel_size 1000;
      check "morsel larger than BAT" (bat_of 10);
      (* empty fold keeps its sequential contract: the parallel kernel
         declines and Bat.aggr_all raises/neutralizes as documented *)
      Alcotest.(check bool) "empty fold declined" true
        (Parkernel.aggr_all pool Bat.Sum (bat_of 0) = None))

(* {1 Observability: stats and trace attributes} *)

let test_stats_and_trace () =
  Parkernel.set_min_rows 0;
  let catalog = Milgen.fixture () in
  let pool = Parkernel.create 2 in
  Fun.protect
    ~finally:(fun () ->
      Parkernel.set_min_rows 2048;
      Parkernel.shutdown pool)
    (fun () ->
      let plan = Mil.SelectCmp (Mil.Get "ints", Bat.Gt, Atom.Int 5) in
      let safe = (Effcheck.analyze (Effcheck.env ()) [ plan ]).Effcheck.safe in
      let tr = Trace.create () in
      let s = Mil.session ~trace:tr ~par:{ Mil.pool; safe; morsel = (fun _ -> None) } catalog in
      ignore (Mil.exec s plan);
      let st = Mil.stats s in
      Alcotest.(check bool) "par_ops counted" true (st.Mil.par_ops > 0);
      Alcotest.(check bool) "par_morsels counted" true (st.Mil.par_morsels > 0);
      let has_par_attr = ref false in
      (match Trace.root tr with
      | None -> Alcotest.fail "no span recorded"
      | Some sp ->
        Trace.fold
          (fun () (s : Trace.span) ->
            if List.mem_assoc "par" s.Trace.attrs then has_par_attr := true)
          () sp);
      Alcotest.(check bool) "span carries the par attribute" true !has_par_attr;
      let t = Parkernel.totals pool in
      Alcotest.(check bool) "pool totals accumulated" true
        (t.Parkernel.t_jobs > 0 && t.Parkernel.t_morsels > 0))

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random plans at 1/2/4 domains, bitwise equal"
               plans_to_generate)
            `Slow test_differential;
        ] );
      ( "unsafe-operator",
        [
          Alcotest.test_case "Effcheck flags the undeclared writer" `Quick
            test_effcheck_flags_unsafe;
          Alcotest.test_case "scheduler refuses the unsafe partition" `Quick
            test_scheduler_refuses_unsafe;
          Alcotest.test_case "sanitizer catches it when forced through" `Quick
            test_sanitizer_catches_forced;
        ] );
      ( "merge-order",
        [
          Alcotest.test_case "aggregates are domain-count independent" `Quick
            test_merge_order;
          Alcotest.test_case "float NaN and signed zeros" `Quick test_float_specials;
          Alcotest.test_case "mixed int/float Calc2 falls back" `Quick test_mixed_calc2;
        ] );
      ( "morsels",
        [
          Alcotest.test_case "empty, single-row and oversized morsels" `Quick
            test_morsel_edges;
          Alcotest.test_case "stats and trace attributes" `Quick test_stats_and_trace;
        ] );
    ]
