(* Tests for the distributed architecture (mirror_daemon). *)

module Prng = Mirror_util.Prng
module Synth = Mirror_mm.Synth
module Bus = Mirror_daemon.Bus
module Media = Mirror_daemon.Media
module Dictionary = Mirror_daemon.Dictionary
module Store = Mirror_daemon.Store
module Daemon = Mirror_daemon.Daemon
module Standard = Mirror_daemon.Standard
module Faults = Mirror_daemon.Faults
module Orchestrator = Mirror_daemon.Orchestrator
module Supervisor = Mirror_daemon.Supervisor
module Deadletter = Mirror_daemon.Deadletter
module Clock = Mirror_util.Clock

(* {1 Bus} *)

let test_bus_pubsub () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d1";
  Bus.subscribe b ~topic:"t" ~name:"d2";
  Bus.publish b { Bus.topic = "t"; subject = 5; payload = [ ("k", "v") ] };
  Alcotest.(check int) "fan out" 2 (Bus.pending b);
  (match Bus.fetch b ~name:"d1" with
  | Some m ->
    Alcotest.(check int) "subject" 5 m.Bus.subject;
    Alcotest.(check (option string)) "attr" (Some "v") (Bus.attr m "k")
  | None -> Alcotest.fail "expected message");
  Alcotest.(check bool) "d1 drained" true (Bus.fetch b ~name:"d1" = None);
  Alcotest.(check bool) "d2 still queued" true (Bus.fetch b ~name:"d2" <> None)

let test_bus_drop_counter () =
  let b = Bus.create () in
  Bus.publish b { Bus.topic = "nobody"; subject = 0; payload = [] };
  Alcotest.(check int) "dropped" 1 (Bus.dropped b);
  Alcotest.(check int) "published" 1 (Bus.published b)

let test_bus_fifo () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  for i = 1 to 3 do
    Bus.publish b { Bus.topic = "t"; subject = i; payload = [] }
  done;
  let order = List.init 3 (fun _ -> (Option.get (Bus.fetch b ~name:"d")).Bus.subject) in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] order

let test_bus_requeue () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  Bus.publish b { Bus.topic = "t"; subject = 1; payload = [] };
  let m = Option.get (Bus.fetch b ~name:"d") in
  Bus.requeue b ~name:"d" m;
  Alcotest.(check int) "pending again" 1 (Bus.pending b);
  Alcotest.(check int) "requeue is not a publication" 1 (Bus.published b)

(* A requeued message goes to the back of the queue, behind messages
   published while it was out being handled. *)
let test_bus_requeue_ordering () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  Bus.publish b { Bus.topic = "t"; subject = 1; payload = [] };
  let m = Option.get (Bus.fetch b ~name:"d") in
  Bus.publish b { Bus.topic = "t"; subject = 2; payload = [] };
  Bus.publish b { Bus.topic = "t"; subject = 3; payload = [] };
  Bus.requeue b ~name:"d" m;
  let order = List.init 3 (fun _ -> (Option.get (Bus.fetch b ~name:"d")).Bus.subject) in
  Alcotest.(check (list int)) "requeue behind fresh publishes" [ 2; 3; 1 ] order

(* Two identical messages are two deliveries: distinct sequence ids,
   independent attempt counters. *)
let test_bus_independent_deliveries () =
  let b = Bus.create () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  let m = { Bus.topic = "t"; subject = 1; payload = [] } in
  Bus.publish b m;
  Bus.publish b m;
  let d1 = Option.get (Bus.fetch_delivery b ~name:"d") in
  let d2 = Option.get (Bus.fetch_delivery b ~name:"d") in
  Alcotest.(check bool) "distinct seq" true (d1.Bus.seq <> d2.Bus.seq);
  d1.Bus.attempts <- 5;
  Alcotest.(check int) "budgets independent" 0 d2.Bus.attempts

let test_bus_backpressure () =
  let b = Bus.create ~capacity:2 () in
  Bus.subscribe b ~topic:"t" ~name:"d";
  for i = 1 to 4 do
    Bus.publish b { Bus.topic = "t"; subject = i; payload = [] }
  done;
  Alcotest.(check int) "queue at capacity" 2 (Bus.queued b ~name:"d");
  Alcotest.(check int) "overflow stalled" 2 (Bus.stalled b ~name:"d");
  Alcotest.(check int) "stall counter" 2 (Bus.stalls b);
  Alcotest.(check int) "nothing shed" 0 (Bus.shed b);
  (* draining admits stalled deliveries in order; nothing is lost *)
  let order = List.init 4 (fun _ -> (Option.get (Bus.fetch b ~name:"d")).Bus.subject) in
  Alcotest.(check (list int)) "fifo across stall" [ 1; 2; 3; 4 ] order;
  Alcotest.(check int) "all delivered" 4 (Bus.delivered_to b ~name:"d")

let test_bus_shed_oldest () =
  let b = Bus.create ~capacity:2 ~policy:Bus.Shed_oldest () in
  let shed = ref [] in
  Bus.set_overflow_handler b (Some (fun name d -> shed := (name, d.Bus.message.Bus.subject) :: !shed));
  Bus.subscribe b ~topic:"t" ~name:"d";
  for i = 1 to 4 do
    Bus.publish b { Bus.topic = "t"; subject = i; payload = [] }
  done;
  Alcotest.(check (list (pair string int))) "oldest evicted to the handler"
    [ ("d", 1); ("d", 2) ] (List.rev !shed);
  Alcotest.(check int) "shed counter" 2 (Bus.shed b);
  let order = List.init 2 (fun _ -> (Option.get (Bus.fetch b ~name:"d")).Bus.subject) in
  Alcotest.(check (list int)) "newest survive" [ 3; 4 ] order

(* {1 Circuit breaker} *)

let test_breaker_lifecycle () =
  let clk = Clock.virtual_ () in
  let sup = Supervisor.create ~clock:clk ~seed:1 () in
  Alcotest.(check bool) "starts closed" true (Supervisor.allow sup "d");
  Supervisor.failure sup "d";
  Supervisor.failure sup "d";
  Alcotest.(check bool) "below threshold stays closed" true (Supervisor.allow sup "d");
  Supervisor.failure sup "d";
  Alcotest.(check bool) "third strike opens" false (Supervisor.allow sup "d");
  let deadline = Option.get (Supervisor.waiting_until sup "d") in
  Alcotest.(check bool) "backoff in the future" true (deadline > Clock.now clk);
  Clock.advance clk (deadline -. Clock.now clk +. 0.1);
  Alcotest.(check bool) "half-open admits a probe" true (Supervisor.allow sup "d");
  Supervisor.success sup "d";
  Alcotest.(check bool) "probe success closes" true (Supervisor.allow sup "d");
  Alcotest.(check int) "failure streak reset" 0 (Supervisor.failures sup "d")

let test_breaker_reopen_backs_off_longer () =
  let clk = Clock.virtual_ () in
  let sup = Supervisor.create ~clock:clk ~seed:1 () in
  let open_and_measure () =
    for _ = 1 to 3 do Supervisor.failure sup "d" done;
    ignore (Supervisor.allow sup "d");
    let deadline = Option.get (Supervisor.waiting_until sup "d") in
    let wait = deadline -. Clock.now clk in
    Clock.advance clk (wait +. 0.1);
    ignore (Supervisor.allow sup "d") (* half-open *);
    wait
  in
  let w1 = open_and_measure () in
  (* the half-open probe fails: re-trip from half-open with doubled backoff *)
  Supervisor.failure sup "d";
  Alcotest.(check bool) "re-tripped" false (Supervisor.allow sup "d");
  let w2 = (Option.get (Supervisor.waiting_until sup "d")) -. Clock.now clk in
  Alcotest.(check bool)
    (Printf.sprintf "backoff grows (%.2f -> %.2f)" w1 w2)
    true (w2 > w1)

(* {1 Dictionary} *)

let test_dictionary () =
  let d = Dictionary.create () in
  Dictionary.register d ~name:"Lib" ~schema:"v1" ~owner:"app";
  Alcotest.(check (option string)) "initial" (Some "v1") (Dictionary.schema_of d "Lib");
  Dictionary.evolve d ~name:"Lib" ~schema:"v2" ~by:"daemon";
  Alcotest.(check (option string)) "evolved" (Some "v2") (Dictionary.schema_of d "Lib");
  Alcotest.(check (list (pair string string))) "history"
    [ ("v1", "app"); ("v2", "daemon") ]
    (Dictionary.history d "Lib");
  Alcotest.(check (list string)) "extents" [ "Lib" ] (Dictionary.extents d);
  Alcotest.check_raises "duplicate" (Invalid_argument "Dictionary.register: extent \"Lib\" already exists")
    (fun () -> Dictionary.register d ~name:"Lib" ~schema:"x" ~owner:"y")

(* {1 Store} *)

let test_store_visual_merge () =
  let s = Store.create () in
  Store.register_doc s ~doc:0 ~url:"u0";
  Store.add_visual_words s ~doc:0 [ ("a", 1.0); ("b", 2.0) ];
  Store.add_visual_words s ~doc:0 [ ("a", 0.5) ];
  Alcotest.(check (list (pair string (float 1e-9)))) "merged"
    [ ("a", 1.5); ("b", 2.0) ]
    (Store.visual_words s ~doc:0)

let test_store_evidence () =
  let s = Store.create () in
  Store.register_doc s ~doc:0 ~url:"u0";
  Store.register_doc s ~doc:1 ~url:"u1";
  Store.put_text s ~doc:0 [ ("zebra", 1.0) ];
  Store.add_visual_words s ~doc:0 [ ("g_0", 1.0) ];
  let evs = Store.evidence s in
  Alcotest.(check int) "all docs present" 2 (List.length evs);
  let ev0 = List.hd evs in
  Alcotest.(check bool) "doc0 has both" true
    (ev0.Mirror_thesaurus.Assoc.text <> [] && ev0.Mirror_thesaurus.Assoc.visual <> [])

(* {1 Media server} *)

let test_media_server () =
  let media = Media.create () in
  let img = Mirror_mm.Image.create ~width:4 ~height:4 in
  Media.put media ~url:"http://x/1" img;
  Media.put media ~url:"http://x/0" img;
  Alcotest.(check int) "count" 2 (Media.count media);
  Alcotest.(check (list string)) "urls sorted" [ "http://x/0"; "http://x/1" ] (Media.urls media);
  Alcotest.(check bool) "get" true (Media.get media "http://x/1" <> None);
  Alcotest.(check bool) "missing" true (Media.get media "http://x/2" = None);
  (* rebinding replaces *)
  Media.put media ~url:"http://x/1" img;
  Alcotest.(check int) "rebind keeps count" 2 (Media.count media)

let test_dictionary_unknown_evolve () =
  let d = Dictionary.create () in
  Alcotest.check_raises "unknown extent" Not_found (fun () ->
      Dictionary.evolve d ~name:"Nope" ~schema:"x" ~by:"y")

(* A daemon that re-publishes to its own topic would livelock; the
   orchestrator's round guard must stop it. *)
let test_orchestrator_livelock_guard () =
  let chatter =
    Daemon.make ~name:"chatter" ~topics:[ "noise" ] (fun _ m ->
        [ { Bus.topic = "noise"; subject = m.Bus.subject; payload = [] } ])
  in
  let orch = Orchestrator.create ~daemons:[ chatter ] () in
  Bus.publish (Orchestrator.ctx orch).Daemon.bus { Bus.topic = "noise"; subject = 0; payload = [] };
  let report = Orchestrator.run ~max_rounds:5 orch in
  Alcotest.(check int) "stopped at the guard" 5 report.Orchestrator.rounds;
  Alcotest.(check bool) "honest about not quiescing" false report.Orchestrator.quiescent;
  Alcotest.(check bool) "backlog reported" true (report.Orchestrator.pending > 0)

(* {1 Full pipeline (figure 1)} *)

let build_pipeline ?(n = 6) ?daemons () =
  let orch = Orchestrator.create ?daemons () in
  let g = Prng.create 42 in
  let scenes = Synth.corpus g ~n ~width:32 ~height:32 ~annotated_fraction:0.8 () in
  Array.iteri
    (fun i s ->
      let url = Printf.sprintf "http://img.example/%d.png" i in
      let annotation = Option.map (String.concat " ") s.Synth.caption in
      Orchestrator.ingest_image orch ~doc:i ~url ?annotation s.Synth.image)
    scenes;
  Orchestrator.complete_collection orch;
  (orch, scenes)

let test_pipeline_quiesces () =
  let orch, _ = build_pipeline () in
  let report = Orchestrator.run orch in
  Alcotest.(check bool) "finished" true (report.Orchestrator.rounds < 1000);
  Alcotest.(check int) "nothing dead-lettered" 0 (List.length report.Orchestrator.dead_letters);
  Alcotest.(check int) "bus drained" 0 (Bus.pending (Orchestrator.ctx orch).Daemon.bus)

let test_pipeline_products () =
  let orch, scenes = build_pipeline () in
  ignore (Orchestrator.run orch);
  let store = (Orchestrator.ctx orch).Daemon.store in
  (* every document segmented and feature-extracted in all six spaces *)
  Array.iteri
    (fun doc _ ->
      Alcotest.(check bool) (Printf.sprintf "segments doc %d" doc) true
        (Store.segments store ~doc <> None);
      List.iter
        (fun space ->
          Alcotest.(check bool)
            (Printf.sprintf "features %s doc %d" space doc)
            true
            (Store.features store ~doc ~space <> None))
        [ "rgb"; "hsv"; "gabor"; "glcm"; "mrf"; "fractal" ];
      Alcotest.(check bool) (Printf.sprintf "visual words doc %d" doc) true
        (Store.visual_words store ~doc <> []))
    scenes;
  (* all six spaces clustered *)
  Alcotest.(check (list string)) "clustered spaces"
    [ "fractal"; "gabor"; "glcm"; "hsv"; "mrf"; "rgb" ]
    (Store.clustered_spaces store);
  (* thesaurus built *)
  Alcotest.(check bool) "thesaurus" true (Store.thesaurus store <> None)

let test_pipeline_schema_evolution () =
  let orch, _ = build_pipeline () in
  ignore (Orchestrator.run orch);
  let dict = (Orchestrator.ctx orch).Daemon.dict in
  let history = Dictionary.history dict "ImageLibrary" in
  Alcotest.(check int) "two schema versions" 2 (List.length history);
  Alcotest.(check string) "evolved by clusterer" "autoclass" (snd (List.nth history 1))

let test_pipeline_annotations_indexed () =
  let orch, scenes = build_pipeline () in
  ignore (Orchestrator.run orch);
  let store = (Orchestrator.ctx orch).Daemon.store in
  Array.iteri
    (fun doc s ->
      match s.Synth.caption with
      | Some _ ->
        Alcotest.(check bool) (Printf.sprintf "text doc %d" doc) true
          (Store.text store ~doc <> None)
      | None ->
        Alcotest.(check bool) (Printf.sprintf "no text doc %d" doc) true
          (Store.text store ~doc = None))
    scenes

let test_pipeline_flaky_daemon_retries () =
  let g = Prng.create 7 in
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if d.Daemon.name = "segmenter" then Faults.flaky g ~rate:0.4 d else d)
      (Standard.all ())
  in
  let orch, _ = build_pipeline ~daemons () in
  let report = Orchestrator.run ~max_retries:10 orch in
  let seg = List.find (fun s -> s.Orchestrator.name = "segmenter") report.Orchestrator.stats in
  Alcotest.(check bool) "some failures injected" true (seg.Orchestrator.failures > 0);
  Alcotest.(check int) "all images still segmented" 6 seg.Orchestrator.handled;
  Alcotest.(check int) "no dead letters with retries" 0
    (List.length report.Orchestrator.dead_letters)

let test_pipeline_broken_daemon_dead_letters () =
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if d.Daemon.name = "annotation-indexer" then Faults.broken d else d)
      (Standard.all ())
  in
  let orch, scenes = build_pipeline ~daemons () in
  let report = Orchestrator.run ~max_retries:1 orch in
  let annotated =
    Array.to_list scenes |> List.filter (fun s -> s.Synth.caption <> None) |> List.length
  in
  Alcotest.(check int) "every annotation dead-lettered" annotated
    (List.length report.Orchestrator.dead_letters);
  List.iter
    (fun (e : Deadletter.entry) ->
      Alcotest.(check string) "right daemon" "annotation-indexer" e.Deadletter.daemon)
    report.Orchestrator.dead_letters;
  (* the rest of the pipeline still completed, in declared degraded mode *)
  let store = (Orchestrator.ctx orch).Daemon.store in
  Alcotest.(check bool) "clustering still ran" true (Store.clustered_spaces store <> []);
  Alcotest.(check bool) "run quiesced despite the outage" true report.Orchestrator.quiescent;
  Alcotest.(check (list string)) "degraded daemon named" [ "annotation-indexer" ]
    report.Orchestrator.degraded;
  (* degraded-mode economics: the breaker sheds the downed daemon's
     backlog instead of burning max_retries attempts per message *)
  let ai =
    List.find (fun s -> s.Orchestrator.name = "annotation-indexer") report.Orchestrator.stats
  in
  Alcotest.(check bool)
    (Printf.sprintf "breaker capped attempts (%d)" ai.Orchestrator.failures)
    true
    (ai.Orchestrator.failures < 2 * annotated)

(* Acceptance: a degraded run is cheap even with a generous retry
   budget — the breaker opens after a few strikes and the backlog
   expires instead of being retried max_retries times each. *)
let test_degraded_run_is_cheap () =
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if d.Daemon.name = "annotation-indexer" then Faults.broken d else d)
      (Standard.all ())
  in
  let orch, scenes = build_pipeline ~daemons () in
  let max_retries = 50 in
  let report = Orchestrator.run ~max_retries orch in
  let annotated =
    Array.to_list scenes |> List.filter (fun s -> s.Synth.caption <> None) |> List.length
  in
  let ai =
    List.find (fun s -> s.Orchestrator.name = "annotation-indexer") report.Orchestrator.stats
  in
  Alcotest.(check bool) "completed degraded" true report.Orchestrator.quiescent;
  Alcotest.(check bool)
    (Printf.sprintf "attempts far below the retry budget (%d << %d)" ai.Orchestrator.failures
       (max_retries * annotated))
    true
    (ai.Orchestrator.failures * 5 < max_retries * annotated);
  (* the shed backlog is accounted for: expired into the dead-letter
     queue, not silently dropped *)
  Alcotest.(check int) "backlog dead-lettered" annotated
    (List.length report.Orchestrator.dead_letters);
  Alcotest.(check bool) "expiries recorded with cause" true
    (List.exists
       (fun (e : Deadletter.entry) ->
         match e.Deadletter.cause with Deadletter.Expired _ -> true | _ -> false)
       report.Orchestrator.dead_letters)

(* Acceptance: heal the daemon, redeliver, and the store converges to
   the failure-free outcome — including the thesaurus, which refreshes
   on the late annotations. *)
let test_redeliver_after_heal_converges () =
  (* failure-free reference *)
  let ref_orch, _ = build_pipeline () in
  ignore (Orchestrator.run ref_orch);
  let ref_store = (Orchestrator.ctx ref_orch).Daemon.store in
  (* same corpus with the annotation indexer down *)
  let heal = ref ignore in
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        if d.Daemon.name = "annotation-indexer" then begin
          let d', h = Faults.breakable d in
          heal := h;
          d'
        end
        else d)
      (Standard.all ())
  in
  let orch, scenes = build_pipeline ~daemons () in
  let report = Orchestrator.run orch in
  Alcotest.(check bool) "first run is degraded" true (report.Orchestrator.degraded <> []);
  Alcotest.(check bool) "dead letters accumulated" true
    (Orchestrator.dead_letters orch <> []);
  (* the party comes back up *)
  !heal true;
  let redelivered = Orchestrator.redeliver orch in
  Alcotest.(check bool) "redelivery replays the backlog" true (redelivered > 0);
  let report2 = Orchestrator.run orch in
  Alcotest.(check bool) "healed run quiesces" true report2.Orchestrator.quiescent;
  Alcotest.(check (list string)) "no longer degraded" [] report2.Orchestrator.degraded;
  Alcotest.(check int) "dead-letter queue drained" 0
    (List.length (Orchestrator.dead_letters orch));
  (* store converged to the failure-free outcome *)
  let store = (Orchestrator.ctx orch).Daemon.store in
  Array.iteri
    (fun doc s ->
      let expect = s.Synth.caption <> None in
      Alcotest.(check bool) (Printf.sprintf "text doc %d converged" doc) expect
        (Store.text store ~doc <> None);
      Alcotest.(check bool) (Printf.sprintf "text doc %d identical" doc) true
        (Store.text store ~doc = Store.text ref_store ~doc))
    scenes;
  Alcotest.(check bool) "thesaurus rebuilt over the late annotations" true
    (Store.thesaurus store = Store.thesaurus ref_store)

(* Under a fixed flaky seed with no retry budget, dead letters arrive
   in delivery order, each with a cause, and nothing is lost: every
   delivery is either handled or dead-lettered. *)
let test_flaky_dead_letter_ordering () =
  let g = Prng.create 11 in
  let sink =
    Faults.flaky g ~rate:0.5 (Daemon.make ~name:"sink" ~topics:[ "t" ] (fun _ _ -> []))
  in
  let orch = Orchestrator.create ~daemons:[ sink ] () in
  let bus = (Orchestrator.ctx orch).Daemon.bus in
  for i = 0 to 19 do
    Bus.publish bus { Bus.topic = "t"; subject = i; payload = [] }
  done;
  let report = Orchestrator.run ~max_retries:0 orch in
  let dead = report.Orchestrator.dead_letters in
  Alcotest.(check bool) "seed injects some failures" true (dead <> []);
  let sink_stats = List.find (fun s -> s.Orchestrator.name = "sink") report.Orchestrator.stats in
  Alcotest.(check int) "handled + dead = delivered" 20
    (sink_stats.Orchestrator.handled + List.length dead);
  (* oldest-first: both the record timestamps and the delivery seqs
     are nondecreasing down the queue *)
  let rec monotone = function
    | (a : Deadletter.entry) :: (b : Deadletter.entry) :: tl ->
      a.Deadletter.at <= b.Deadletter.at
      && a.Deadletter.delivery.Bus.seq < b.Deadletter.delivery.Bus.seq
      && monotone (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "dead letters ordered oldest-first" true (monotone dead);
  (* every record carries a cause: exhausted budget or expiry behind
     the tripped breaker — never an uncaused overflow *)
  List.iter
    (fun (e : Deadletter.entry) ->
      match e.Deadletter.cause with
      | Deadletter.Failed _ | Deadletter.Expired _ -> ()
      | Deadletter.Overflow -> Alcotest.fail "unexpected overflow cause")
    dead

(* Identical messages published twice must carry independent retry
   budgets: both deliveries are retried to exhaustion and both are
   dead-lettered (a shared budget would dead-letter only one). *)
let test_duplicate_message_budgets () =
  let failing =
    Daemon.make ~name:"sink" ~topics:[ "t" ] (fun _ _ -> failwith "nope")
  in
  let orch = Orchestrator.create ~daemons:[ failing ] () in
  let bus = (Orchestrator.ctx orch).Daemon.bus in
  let m = { Bus.topic = "t"; subject = 7; payload = [] } in
  Bus.publish bus m;
  Bus.publish bus m;
  let report = Orchestrator.run ~max_retries:1 orch in
  Alcotest.(check int) "both duplicates dead-lettered" 2
    (List.length report.Orchestrator.dead_letters);
  List.iter
    (fun (e : Deadletter.entry) ->
      Alcotest.(check int) "full budget spent per delivery" 2 e.Deadletter.delivery.Bus.attempts;
      match e.Deadletter.cause with
      | Deadletter.Failed reason ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) "cause carries the exception text" true (contains reason "nope")
      | c -> Alcotest.fail ("expected Failed, got " ^ Deadletter.cause_to_string c))
    report.Orchestrator.dead_letters

let test_missing_media_dead_letters () =
  let orch = Orchestrator.create () in
  let ctx = Orchestrator.ctx orch in
  (* announce a document whose footage the media server never received *)
  Store.register_doc ctx.Daemon.store ~doc:0 ~url:"http://gone";
  Bus.publish ctx.Daemon.bus
    { Bus.topic = "image.new"; subject = 0; payload = [ ("url", "http://gone") ] };
  let report = Orchestrator.run ~max_retries:1 orch in
  Alcotest.(check bool) "segmenter dead-letters the message" true
    (List.exists
       (fun (e : Deadletter.entry) -> e.Deadletter.daemon = "segmenter")
       report.Orchestrator.dead_letters)

let test_query_formulation_round_trip () =
  let orch, _ = build_pipeline () in
  ignore (Orchestrator.run orch);
  (* interactive use: the client asks over the bus, the daemon answers *)
  Orchestrator.formulate orch "stripes";
  ignore (Orchestrator.run orch);
  match Orchestrator.formulated orch with
  | Some ((_ :: _) as concepts) ->
    List.iter
      (fun (c, w) ->
        Alcotest.(check bool) ("visual word: " ^ c) true
          (Mirror_mm.Vocabmap.parse_term c <> None);
        Alcotest.(check bool) "positive belief" true (w > 0.0))
      concepts
  | Some [] -> Alcotest.fail "no concepts returned"
  | None -> Alcotest.fail "no reply delivered"

let test_pipeline_stats_shape () =
  let orch, _ = build_pipeline () in
  let report = Orchestrator.run orch in
  Alcotest.(check int) "one stats row per daemon" 11 (List.length report.Orchestrator.stats);
  let seg = List.find (fun s -> s.Orchestrator.name = "segmenter") report.Orchestrator.stats in
  Alcotest.(check int) "segmenter saw all images" 6 seg.Orchestrator.handled;
  let cl = List.find (fun s -> s.Orchestrator.name = "autoclass") report.Orchestrator.stats in
  Alcotest.(check int) "clusterer ran once" 1 cl.Orchestrator.handled;
  (* one clustering.done per space + contrep.ready *)
  Alcotest.(check int) "clusterer produced 7 messages" 7 cl.Orchestrator.produced

let () =
  Alcotest.run "mirror_daemon"
    [
      ( "bus",
        [
          Alcotest.test_case "publish/subscribe" `Quick test_bus_pubsub;
          Alcotest.test_case "drop counter" `Quick test_bus_drop_counter;
          Alcotest.test_case "fifo order" `Quick test_bus_fifo;
          Alcotest.test_case "requeue" `Quick test_bus_requeue;
          Alcotest.test_case "requeue ordering" `Quick test_bus_requeue_ordering;
          Alcotest.test_case "independent deliveries" `Quick test_bus_independent_deliveries;
          Alcotest.test_case "backpressure" `Quick test_bus_backpressure;
          Alcotest.test_case "shed oldest" `Quick test_bus_shed_oldest;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "reopen backs off longer" `Quick test_breaker_reopen_backs_off_longer;
        ] );
      ("dictionary", [ Alcotest.test_case "register/evolve/history" `Quick test_dictionary ]);
      ( "store",
        [
          Alcotest.test_case "visual word merge" `Quick test_store_visual_merge;
          Alcotest.test_case "evidence" `Quick test_store_evidence;
        ] );
      ( "media",
        [
          Alcotest.test_case "put/get/urls" `Quick test_media_server;
          Alcotest.test_case "evolve unknown extent" `Quick test_dictionary_unknown_evolve;
          Alcotest.test_case "livelock guard" `Quick test_orchestrator_livelock_guard;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "quiesces" `Quick test_pipeline_quiesces;
          Alcotest.test_case "products complete" `Quick test_pipeline_products;
          Alcotest.test_case "schema evolution" `Quick test_pipeline_schema_evolution;
          Alcotest.test_case "annotations indexed" `Quick test_pipeline_annotations_indexed;
          Alcotest.test_case "flaky daemon retries" `Quick test_pipeline_flaky_daemon_retries;
          Alcotest.test_case "broken daemon dead-letters" `Quick test_pipeline_broken_daemon_dead_letters;
          Alcotest.test_case "degraded run is cheap" `Quick test_degraded_run_is_cheap;
          Alcotest.test_case "flaky dead-letter ordering" `Quick test_flaky_dead_letter_ordering;
          Alcotest.test_case "redeliver after heal converges" `Quick test_redeliver_after_heal_converges;
          Alcotest.test_case "duplicate message budgets" `Quick test_duplicate_message_budgets;
          Alcotest.test_case "stats shape" `Quick test_pipeline_stats_shape;
          Alcotest.test_case "missing media dead-letters" `Quick test_missing_media_dead_letters;
          Alcotest.test_case "interactive query formulation" `Quick test_query_formulation_round_trip;
        ] );
    ]
