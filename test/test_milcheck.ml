(* Tests for the MIL static analyzer (Milprop/Milcheck/Plancheck):
   per-constructor verification, envelope soundness against the real
   executor, the differential checker across both optimiser stages,
   Milopt fixpoint stability, and the Mil.Unbound satellite. *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Column = Mirror_bat.Column
module Catalog = Mirror_bat.Catalog
module Mil = Mirror_bat.Mil
module Milopt = Mirror_bat.Milopt
module Milprop = Mirror_bat.Milprop
module Milcheck = Mirror_bat.Milcheck
module Shape = Mirror_core.Shape
module Storage = Mirror_core.Storage
module Flatten = Mirror_core.Flatten
module Optimize = Mirror_core.Optimize
module Eval = Mirror_core.Eval
module Parser = Mirror_core.Parser
module Plancheck = Mirror_core.Plancheck
module Corpus = Mirror_core.Corpus
module Bootstrap = Mirror_core.Bootstrap
module Value = Mirror_core.Value

let () = Bootstrap.ensure ()

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let parse_q src = ok (Parser.parse_expr src)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* {1 Kernel-level fixtures} *)

(* ints:  @0->10 @1->20 @2->30 @3->20   (dense head, int tails)
   strs:  @0->"a" @1->"b" @2->"a"
   bools: @0->true @1->false @2->true
   links: @0->@1 @1->@2 @2->@0          (oid tails, a permutation) *)
let fixture_catalog () =
  let cat = Catalog.create () in
  let put name hty tty pairs = Catalog.put cat name (Bat.of_pairs hty tty pairs) in
  let oid i = Atom.Oid i in
  put "ints" Atom.TOid Atom.TInt
    [ (oid 0, Atom.Int 10); (oid 1, Atom.Int 20); (oid 2, Atom.Int 30); (oid 3, Atom.Int 20) ];
  put "strs" Atom.TOid Atom.TStr
    [ (oid 0, Atom.Str "a"); (oid 1, Atom.Str "b"); (oid 2, Atom.Str "a") ];
  put "bools" Atom.TOid Atom.TBool
    [ (oid 0, Atom.Bool true); (oid 1, Atom.Bool false); (oid 2, Atom.Bool true) ];
  put "links" Atom.TOid Atom.TOid [ (oid 0, oid 1); (oid 1, oid 2); (oid 2, oid 0) ];
  put "flts" Atom.TOid Atom.TFlt [ (oid 0, Atom.Flt 1.5); (oid 1, Atom.Flt 2.5) ];
  cat

let test_sig =
  {
    Milprop.fs_arity = 1;
    fs_meta_min = 1;
    fs_result = { Milprop.unknown with hty = Some Atom.TOid; tty = Some Atom.TFlt };
  }

let fixture_env cat =
  Milcheck.env_of_catalog
    ~foreign:(function "t_probe" -> Some test_sig | _ -> None)
    cat

let fixture_foreign ~name ~args ~meta:_ =
  match (name, args) with
  | "t_probe", [ b ] -> Bat.calc1 Bat.ToFlt b
  | _ -> failwith ("unexpected foreign " ^ name)

(* Every Mil.t constructor at least once, all well-formed. *)
let well_formed_plans =
  let g = Mil.Get "ints" in
  let links = Mil.Get "links" in
  [
    g;
    Mil.Lit
      { hty = Atom.TOid; tty = Atom.TInt; pairs = [ (Atom.Oid 0, Atom.Int 1); (Atom.Oid 1, Atom.Int 2) ] };
    Mil.Reverse g;
    Mil.Mirror g;
    Mil.Mark (g, 100);
    Mil.NumberHead (g, 5);
    Mil.NumberTail (g, 5);
    Mil.Project (g, Atom.Str "k");
    Mil.Calc1 (Bat.Neg, g);
    Mil.Calc1 (Bat.Not, Mil.Get "bools");
    Mil.CalcConst (Bat.Add, g, Atom.Int 7);
    Mil.CalcConst (Bat.Div, g, Atom.Int 2);
    Mil.ConstCalc (Bat.Sub, Atom.Int 100, g);
    Mil.Calc2 (Bat.Add, g, g);
    Mil.Calc2 (Bat.CmpOp Bat.Lt, g, Mil.CalcConst (Bat.Mul, g, Atom.Int 2));
    Mil.SelectCmp (g, Bat.Gt, Atom.Int 15);
    Mil.SelectRange (g, Atom.Int 10, Atom.Int 25);
    Mil.SelectBool (Mil.Get "bools");
    Mil.Join (links, g);
    Mil.LeftOuterJoin (links, Mil.SelectCmp (g, Bat.Gt, Atom.Int 15), Atom.Int 0);
    Mil.Semijoin (g, Mil.Get "strs");
    Mil.Antijoin (g, Mil.SelectCmp (g, Bat.Eq, Atom.Int 20));
    Mil.Kunion (Mil.SelectCmp (g, Bat.Gt, Atom.Int 15), g);
    Mil.PairUnion (g, g);
    Mil.PairDiff (g, Mil.SelectCmp (g, Bat.Eq, Atom.Int 20));
    Mil.PairInter (g, Mil.SelectCmp (g, Bat.Eq, Atom.Int 20));
    Mil.Append (g, Mil.Lit { hty = Atom.TOid; tty = Atom.TInt; pairs = [ (Atom.Oid 9, Atom.Int 9) ] });
    Mil.Unique (Mil.Append (g, g));
    Mil.UniqueHead (Mil.Append (g, g));
    Mil.GroupAggr (Bat.Sum, Mil.Join (links, g));
    Mil.GroupAggr (Bat.Avg, g);
    Mil.AggrAll (Bat.Count, g);
    Mil.AggrAll (Bat.Sum, g);
    Mil.AggrAll (Bat.Max, g);
    Mil.GroupRank { link = links; key = g; desc = true };
    Mil.SortTail (g, false);
    Mil.SortTail (g, true);
    Mil.Slice (g, 1, 2);
    Mil.TopN (g, 2, true);
    Mil.Foreign { name = "t_probe"; args = [ g ]; meta = [ "m" ] };
  ]

(* Ill-formed plans the verifier must reject (one per failure class —
   well over the required five). *)
let ill_formed_plans =
  let g = Mil.Get "ints" in
  [
    ("unbound get", Mil.Get "no_such_bat");
    ( "lit type mismatch",
      Mil.Lit { hty = Atom.TOid; tty = Atom.TInt; pairs = [ (Atom.Oid 0, Atom.Str "x") ] } );
    ("not on ints", Mil.Calc1 (Bat.Not, g));
    ("neg on strs", Mil.Calc1 (Bat.Neg, Mil.Get "strs"));
    ("div by zero const", Mil.CalcConst (Bat.Div, g, Atom.Int 0));
    ("add int/str", Mil.CalcConst (Bat.Add, g, Atom.Str "x"));
    ("and on ints", Mil.ConstCalc (Bat.And, Atom.Bool true, g));
    ("calc2 misaligned heads", Mil.Calc2 (Bat.Add, Mil.Reverse g, g));
    ("calc2 bad tails", Mil.Calc2 (Bat.Sub, g, Mil.Get "strs"));
    ("select_bool on ints", Mil.SelectBool g);
    ("join type mismatch", Mil.Join (g, g));
    ("outerjoin bad default", Mil.LeftOuterJoin (Mil.Get "links", g, Atom.Str "d"));
    ("kunion tail mismatch", Mil.Kunion (g, Mil.Get "strs"));
    ("append tail mismatch", Mil.Append (g, Mil.Get "strs"));
    ("pair_union mismatch", Mil.PairUnion (g, Mil.Get "strs"));
    ("avg of strs", Mil.GroupAggr (Bat.Avg, Mil.Get "strs"));
    ("prod of strs", Mil.AggrAll (Bat.Prod, Mil.Get "strs"));
    ("unknown foreign", Mil.Foreign { name = "mystery_op"; args = [ g ]; meta = [] });
    ("foreign arity", Mil.Foreign { name = "t_probe"; args = [ g; g ]; meta = [ "m" ] });
    ("foreign meta", Mil.Foreign { name = "t_probe"; args = [ g ]; meta = [] });
  ]

let test_verify_well_formed () =
  let env = fixture_env (fixture_catalog ()) in
  List.iter
    (fun plan ->
      match Milcheck.verify env plan with
      | Ok _ -> ()
      | Error ds ->
        Alcotest.failf "plan %s rejected: %s" (Mil.op_name plan) (Plancheck.diags_to_string ds))
    well_formed_plans

let test_verify_ill_formed () =
  let env = fixture_env (fixture_catalog ()) in
  List.iter
    (fun (label, plan) ->
      match Milcheck.verify env plan with
      | Ok p ->
        Alcotest.failf "%s accepted with envelope %s" label (Milprop.to_string p)
      | Error _ -> ())
    ill_formed_plans

(* Soundness: execute every well-formed plan through the checked
   executor — the result BAT must lie inside the inferred envelope. *)
let test_exec_checked_sound () =
  let cat = fixture_catalog () in
  let env = fixture_env cat in
  let session = Mil.session ~foreign:fixture_foreign cat in
  List.iter
    (fun plan ->
      match Milcheck.exec_checked env session plan with
      | _ -> ()
      | exception Failure msg -> Alcotest.failf "%s: %s" (Mil.op_name plan) msg)
    well_formed_plans

(* A lying environment must be caught by the checked executor. *)
let test_exec_checked_catches_violation () =
  let cat = fixture_catalog () in
  (* claim tail-key (false: two tails are 20) and an impossible bound *)
  let lying =
    {
      Milcheck.get =
        (fun _ ->
          Some
            {
              Milprop.unknown with
              hty = Some Atom.TOid;
              tty = Some Atom.TInt;
              tail_key = true;
              card = { Milprop.lo = 0; hi = Some 2 };
            });
      foreign = (fun _ -> None);
    }
  in
  let session = Mil.session cat in
  match Milcheck.exec_checked lying session (Mil.Get "ints") with
  | _ -> Alcotest.fail "envelope violation not detected"
  | exception Failure _ -> ()

let test_warnings () =
  let env = fixture_env (fixture_catalog ()) in
  let warnings plan =
    let _, ds = Milcheck.infer env plan in
    List.filter (fun d -> d.Milcheck.severity = Milcheck.Warning) ds
  in
  let expect_warning label plan =
    if warnings plan = [] then Alcotest.failf "%s: expected a warning" label;
    match Milcheck.verify env plan with
    | Ok _ -> ()
    | Error ds -> Alcotest.failf "%s: warnings must not reject (%s)" label (Plancheck.diags_to_string ds)
  in
  expect_warning "semijoin head mismatch" (Mil.Semijoin (Mil.Get "ints", Mil.Reverse (Mil.Get "ints")));
  expect_warning "antijoin head mismatch" (Mil.Antijoin (Mil.Get "ints", Mil.Reverse (Mil.Get "ints")));
  expect_warning "select type mismatch" (Mil.SelectCmp (Mil.Get "ints", Bat.Eq, Atom.Str "x"));
  expect_warning "inverted range" (Mil.SelectRange (Mil.Get "ints", Atom.Int 9, Atom.Int 1));
  expect_warning "min over possibly-empty"
    (Mil.AggrAll (Bat.Min, Mil.SelectCmp (Mil.Get "ints", Bat.Gt, Atom.Int 0)))

let test_lint_smells () =
  let env = fixture_env (fixture_catalog ()) in
  let g = Mil.Get "ints" in
  let expect_diag label plan needle =
    let ds = Milcheck.lint env plan in
    if not (List.exists (fun d -> contains ~needle d.Milcheck.message) ds)
    then
      Alcotest.failf "%s: no diagnostic mentioning %S in: %s" label needle
        (Plancheck.diags_to_string ds)
  in
  expect_diag "reverse chain" (Mil.Reverse (Mil.Reverse g)) "cancels";
  expect_diag "mirror chain" (Mil.Mirror (Mil.Mirror g)) "mirror chain";
  expect_diag "unique twice" (Mil.Unique (Mil.Unique g)) "redundant";
  expect_diag "self semijoin" (Mil.Semijoin (g, g)) "identity";
  expect_diag "append empty"
    (Mil.Append (g, Mil.Lit { hty = Atom.TOid; tty = Atom.TInt; pairs = [] }))
    "empty literal";
  expect_diag "slice of sort" (Mil.Slice (Mil.SortTail (g, true), 0, 3)) "fuse";
  expect_diag "constant selection"
    (Mil.SelectCmp (Mil.Project (g, Atom.Int 5), Bat.Eq, Atom.Int 7))
    "always false";
  expect_diag "dead subplan"
    (Mil.Join (Mil.Lit { hty = Atom.TOid; tty = Atom.TOid; pairs = [] }, g))
    "dead"

(* {1 Golden property-inference tests on compiled bundles} *)

let golden_cases =
  [
    (* atomic per-context int: one slot per R row, dense contexts *)
    ( "map[THIS.a](R)",
      [ "[oid->oid |4| dense-head,sorted-tail]"; "[oid->int |4| dense-head]" ] );
    (* aggregation of the whole extent: exactly one row *)
    ("sum(map[THIS.a](R))", [ "[oid->int |1| dense-head]" ]);
    ("count(R)", [ "[oid->int |1| dense-head]" ]);
  ]

let test_property_golden () =
  let st = Corpus.storage () in
  let env = Plancheck.env_of_storage st in
  List.iter
    (fun (src, expected) ->
      let shape = Flatten.compile st (Optimize.rewrite (parse_q src)) in
      let shape = Shape.map Milopt.rewrite shape in
      let actual =
        List.map
          (fun p -> Milprop.to_string (fst (Milcheck.infer env p)))
          (Plancheck.shape_plans shape)
      in
      Alcotest.(check (list string)) src expected actual)
    golden_cases

(* {1 Corpus acceptance: verifier + differential checker} *)

let test_corpus_vet () =
  let st = Corpus.storage () in
  List.iter
    (fun src ->
      match Plancheck.vet st (parse_q src) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" src e)
    Corpus.queries

(* Checked execution across the whole corpus: ~check must neither
   change any result nor trip an envelope violation. *)
let test_corpus_checked_execution () =
  let st = Corpus.storage () in
  let value_testable = Alcotest.testable Value.pp Value.equal in
  List.iter
    (fun src ->
      let expr = parse_q src in
      let plain = ok (Eval.query st expr) in
      let checked =
        match Eval.query ~check:true st expr with
        | Ok r -> r
        | Error e -> Alcotest.failf "%s [checked]: %s" src e
      in
      Alcotest.check value_testable src plain.Eval.value checked.Eval.value)
    Corpus.queries

(* {1 Satellites: Milopt fixpoint, Mil.Unbound} *)

let test_milopt_idempotent_corpus () =
  let st = Corpus.storage () in
  List.iter
    (fun src ->
      let shape = Flatten.compile st (Optimize.rewrite (parse_q src)) in
      Shape.iter
        (fun p ->
          let once = Milopt.rewrite p in
          let twice = Milopt.rewrite once in
          if once <> twice then
            Alcotest.failf "%s: rewrite not idempotent:\n%s\nvs\n%s" src (Mil.to_string once)
              (Mil.to_string twice))
        shape)
    Corpus.queries

let test_milopt_deep_chains () =
  let g = Mil.Get "x" in
  let rec build f n p = if n = 0 then p else build f (n - 1) (f p) in
  (* far deeper than the old 10-pass cap could have guaranteed *)
  let deep_rev = build (fun p -> Mil.Reverse p) 64 g in
  Alcotest.(check bool) "reverse chain collapses" true (Milopt.rewrite deep_rev = g);
  let deep_mix = build (fun p -> Mil.Reverse (Mil.Mirror p)) 40 g in
  let once = Milopt.rewrite deep_mix in
  Alcotest.(check bool) "mixed chain reaches fixpoint" true (Milopt.rewrite once = once);
  let deep_semi = build (fun p -> Mil.Semijoin (p, g)) 32 (Mil.Semijoin (g, g)) in
  let once = Milopt.rewrite deep_semi in
  Alcotest.(check bool) "semijoin chain reaches fixpoint" true (Milopt.rewrite once = once)

let test_unbound_exception () =
  let cat = fixture_catalog () in
  let session = Mil.session cat in
  (match Mil.exec session (Mil.Get "missing_name") with
  | _ -> Alcotest.fail "expected Mil.Unbound"
  | exception Mil.Unbound name -> Alcotest.(check string) "carries the name" "missing_name" name);
  (* bound names keep working *)
  Alcotest.(check int) "bound get" 4 (Bat.count (Mil.exec session (Mil.Get "ints")))

let () =
  Alcotest.run "milcheck"
    [
      ( "verify",
        [
          Alcotest.test_case "accepts every constructor" `Quick test_verify_well_formed;
          Alcotest.test_case "rejects ill-formed plans" `Quick test_verify_ill_formed;
          Alcotest.test_case "warnings do not reject" `Quick test_warnings;
        ] );
      ( "exec-checked",
        [
          Alcotest.test_case "sound over all constructors" `Quick test_exec_checked_sound;
          Alcotest.test_case "catches envelope violations" `Quick test_exec_checked_catches_violation;
        ] );
      ( "lint",
        [ Alcotest.test_case "pattern smells" `Quick test_lint_smells ] );
      ( "bundles",
        [
          Alcotest.test_case "golden envelopes" `Quick test_property_golden;
          Alcotest.test_case "corpus vet (verify + differential)" `Quick test_corpus_vet;
          Alcotest.test_case "corpus checked execution" `Quick test_corpus_checked_execution;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "milopt idempotent on corpus" `Quick test_milopt_idempotent_corpus;
          Alcotest.test_case "milopt deep chains" `Quick test_milopt_deep_chains;
          Alcotest.test_case "Mil.Unbound" `Quick test_unbound_exception;
        ] );
    ]
