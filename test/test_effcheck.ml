(* The effect-and-aliasing analyzer (Effcheck) and its runtime
   sanitizer.

   The static half is exercised on kernel plans (no hazards, CSE-aware
   sharing counts, safe-partition verdicts) and on Foreign operators
   with honest, dishonest and missing effect declarations.  The dynamic
   half checks the executor's actual physical sharing — memo hits
   return identical BATs, reverse/mirror alias their inputs — is
   accepted, while a test-only operator that mutates or leaks its
   argument columns is caught red-handed. *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Column = Mirror_bat.Column
module Catalog = Mirror_bat.Catalog
module Mil = Mirror_bat.Mil
module Milcheck = Mirror_bat.Milcheck
module Effcheck = Mirror_bat.Effcheck
module Corpus = Mirror_core.Corpus
module Lintreport = Mirror_core.Lintreport
module Eval = Mirror_core.Eval
module Parser = Mirror_core.Parser
module Jsonx = Mirror_util.Jsonx

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let fixture () =
  let c = Catalog.create () in
  Catalog.put c "ints"
    (Bat.of_pairs Atom.TOid Atom.TInt
       (List.init 12 (fun i -> (Atom.Oid i, Atom.Int ((i * 5) mod 7)))));
  Catalog.put c "link"
    (Bat.of_pairs Atom.TOid Atom.TOid
       (List.init 12 (fun i -> (Atom.Oid i, Atom.Oid (i mod 4)))));
  c

let ints = Mil.Get "ints"

(* {1 CSE physical sharing} *)

(* A memo hit must return the physically identical BAT — that sharing
   is what the whole analysis models, so pin it down as a contract. *)
let test_memo_identity () =
  let session = Mil.session (fixture ()) in
  let plan () = Mil.SortTail (Mil.Reverse ints, false) in
  let b1 = Mil.exec session (plan ()) in
  (* a structurally equal but physically distinct plan term *)
  let b2 = Mil.exec session (plan ()) in
  Alcotest.(check bool) "memo hit returns the identical Bat.t" true (b1 == b2);
  let stats = Mil.stats session in
  Alcotest.(check bool) "second execution was a memo hit" true (stats.Mil.memo_hits >= 1)

let test_kernel_aliasing () =
  let catalog = fixture () in
  let session = Mil.session catalog in
  let base = Catalog.get catalog "ints" in
  let r = Mil.exec session (Mil.Reverse ints) in
  Alcotest.(check bool) "reverse shares its input's columns swapped" true
    (Bat.head r == Bat.tail base && Bat.tail r == Bat.head base);
  let m = Mil.exec session (Mil.Mirror ints) in
  Alcotest.(check bool) "mirror aliases the input head twice" true
    (Bat.head m == Bat.head base && Bat.tail m == Bat.head base)

(* {1 Static analysis} *)

let test_analyze_pure () =
  let shared = Mil.Reverse ints in
  let p1 = Mil.SortTail (shared, false) in
  let p2 = Mil.Slice (shared, 0, 4) in
  let v = Effcheck.analyze (Effcheck.env ()) [ p1; p2 ] in
  Alcotest.(check int) "CSE merges the shared subplan" 4 v.Effcheck.nodes;
  Alcotest.(check (list string)) "no hazards in a kernel-only bundle" []
    (List.map Milcheck.diag_to_string v.Effcheck.hazards);
  Alcotest.(check int) "pure plans partition into singletons" v.Effcheck.nodes
    v.Effcheck.partitions;
  (* get's two catalog columns + reverse's two aliases of them *)
  Alcotest.(check bool) "catalog aliasing is visible" true (v.Effcheck.shared_columns >= 4)

let test_undeclared_foreign () =
  let plan = Mil.Foreign { name = "mystery"; args = [ ints ]; meta = [] } in
  match Effcheck.lint (Effcheck.env ()) plan with
  | [ d ] ->
    Alcotest.(check bool) "error severity" true (d.Milcheck.severity = Milcheck.Error);
    Alcotest.(check bool) "mentions the missing declaration" true
      (contains ~sub:"effect declaration" d.Milcheck.message)
  | ds -> Alcotest.failf "expected exactly one hazard, got %d" (List.length ds)

(* An honestly-declared writer: Effcheck must flag the write statically
   — as an error here, because the written argument aliases the
   catalog through mirror. *)
let test_declared_writer_static () =
  let eff = { Effcheck.fe_pure = false; fe_shares = false; fe_writes = true } in
  let env =
    Effcheck.env ~foreign:(fun n -> if n = "scribble" then Some eff else None) ()
  in
  let plan = Mil.Foreign { name = "scribble"; args = [ Mil.Mirror ints ]; meta = [] } in
  let ds = Effcheck.lint env plan in
  let errors = List.filter (fun d -> d.Milcheck.severity = Milcheck.Error) ds in
  Alcotest.(check int) "mutation under sharing is an error" 1 (List.length errors);
  Alcotest.(check bool) "names the catalog" true
    (contains ~sub:"catalog" (List.hd errors).Milcheck.message);
  (* and the effectful node serialises the whole DAG it touches *)
  let v = Effcheck.analyze env [ plan ] in
  Alcotest.(check bool) "writer collapses partitions" true
    (v.Effcheck.partitions < v.Effcheck.nodes)

let test_unordered_effects () =
  let eff = { Effcheck.fe_pure = false; fe_shares = false; fe_writes = false } in
  let env =
    Effcheck.env ~foreign:(fun n -> if String.length n > 3 && String.sub n 0 4 = "emit" then Some eff else None) ()
  in
  let emit name arg = Mil.Foreign { name; args = [ arg ]; meta = [] } in
  let plan = Mil.Join (emit "emit_a" ints, emit "emit_b" (Mil.Get "link")) in
  let ds = Effcheck.lint env plan in
  Alcotest.(check bool) "flags the non-commutable sibling effects" true
    (List.exists
       (fun d -> contains ~sub:"non-commutable" d.Milcheck.message)
       ds);
  let v = Effcheck.analyze env [ plan ] in
  (* both effectful nodes land in one partition *)
  Alcotest.(check int) "effects serialise together" (v.Effcheck.nodes - 1)
    v.Effcheck.partitions

(* {1 Runtime sanitizer} *)

let test_sanitizer_benign () =
  let catalog = fixture () in
  let san = Effcheck.sanitizer (Effcheck.env ()) (Mil.session catalog) in
  (* aliasing-heavy kernel plans over shared subplans and the catalog *)
  let plans =
    [
      Mil.Reverse ints;
      Mil.Mirror (Mil.Reverse ints);
      Mil.Project (Mil.Reverse ints, Atom.Int 9);
      Mil.Join (Mil.Get "link", Mil.Mirror ints);
      Mil.Calc1 (Bat.Neg, ints);
    ]
  in
  List.iter (fun p -> ignore (Effcheck.exec san p)) plans;
  Effcheck.finish san;
  Alcotest.(check pass) "benign sharing accepted" () ()

let test_sanitizer_requires_cse () =
  let session = Mil.session ~cse:false (fixture ()) in
  Alcotest.check_raises "refuses a session without CSE"
    (Invalid_argument "Effcheck.sanitizer: the session must have CSE enabled") (fun () ->
      ignore (Effcheck.sanitizer (Effcheck.env ()) session))

(* A test-only operator that mutates its argument column in place,
   lying about it (declared pure): the static analyzer believes the
   declaration, but the sanitizer catches the fingerprint drift. *)
let test_sanitizer_catches_mutation () =
  let catalog = fixture () in
  let mutate ~name:_ ~args ~meta:_ =
    let arg = List.hd args in
    Column.set (Bat.tail arg) 0 (Atom.Int 999);
    Bat.of_pairs (Bat.hty arg) (Bat.tty arg) (Bat.to_pairs arg)
  in
  let env =
    Effcheck.env
      ~foreign:(fun n -> if n = "evil_scribble" then Some Effcheck.pure_foreign else None)
      ()
  in
  let plan = Mil.Foreign { name = "evil_scribble"; args = [ ints ]; meta = [] } in
  Alcotest.(check (list string)) "the lie passes the static lint" []
    (List.map Milcheck.diag_to_string (Effcheck.lint env plan));
  let san = Effcheck.sanitizer env (Mil.session ~foreign:mutate catalog) in
  (match Effcheck.exec san plan with
  | _ -> Alcotest.fail "sanitizer accepted an in-place mutation"
  | exception Effcheck.Violation msg ->
    Alcotest.(check bool) "blames the mutated column" true
      (contains ~sub:"mutated in place" msg))

(* A test-only operator that returns its argument BAT as its result
   while declaring it never shares: caught at the result check. *)
let test_sanitizer_catches_aliasing () =
  let catalog = fixture () in
  let leak ~name:_ ~args ~meta:_ = List.hd args in
  let env =
    Effcheck.env
      ~foreign:(fun n -> if n = "evil_alias" then Some Effcheck.pure_foreign else None)
      ()
  in
  let plan = Mil.Foreign { name = "evil_alias"; args = [ ints ]; meta = [] } in
  let san = Effcheck.sanitizer env (Mil.session ~foreign:leak catalog) in
  match Effcheck.exec san plan with
  | _ -> Alcotest.fail "sanitizer accepted undeclared aliasing"
  | exception Effcheck.Violation msg ->
    Alcotest.(check bool) "blames the effect signature" true
      (contains ~sub:"outside its effect signature" msg)

(* {1 CLI integration: JSON report and explain analyze} *)

let test_lint_json_schema () =
  Mirror_core.Bootstrap.ensure ();
  let st = Corpus.storage () in
  let report = Lintreport.sweep st Corpus.queries in
  Alcotest.(check int) "corpus is hazard-free" 0 report.Lintreport.failures;
  let doc =
    match Jsonx.parse (Jsonx.to_string (Lintreport.to_json report)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  in
  Alcotest.(check (option string))
    "schema tag" (Some "mirror-lint/v2")
    (Option.bind (Jsonx.member "schema" doc) Jsonx.to_str);
  Alcotest.(check (option int))
    "checked count" (Some (List.length Corpus.queries))
    (Option.bind (Jsonx.member "checked" doc) Jsonx.to_int);
  let queries =
    match Option.bind (Jsonx.member "queries" doc) Jsonx.to_list with
    | Some qs -> qs
    | None -> Alcotest.fail "missing queries array"
  in
  Alcotest.(check int) "one entry per query" (List.length Corpus.queries)
    (List.length queries);
  List.iter
    (fun q ->
      List.iter
        (fun field ->
          if Jsonx.member field q = None then
            Alcotest.failf "query entry lacks %S" field)
        [ "src"; "failed"; "error"; "nodes"; "partitions"; "shared_columns"; "diagnostics" ];
      (match Option.bind (Jsonx.member "partitions" q) Jsonx.to_int with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "query entry lacks a positive partition count");
      match Option.bind (Jsonx.member "diagnostics" q) Jsonx.to_list with
      | None -> Alcotest.fail "diagnostics is not an array"
      | Some ds ->
        List.iter
          (fun d ->
            match Option.bind (Jsonx.member "layer" d) Jsonx.to_str with
            | Some ("moa" | "mil" | "eff") -> ()
            | _ -> Alcotest.fail "diagnostic lacks a known layer tag")
          ds)
    queries

let test_explain_analyze_partitions () =
  Mirror_core.Bootstrap.ensure ();
  let st = Corpus.storage () in
  List.iter
    (fun src ->
      let expr =
        match Parser.parse_expr src with
        | Ok e -> e
        | Error e -> Alcotest.failf "parse %s: %s" src e
      in
      match Eval.explain_analyze st expr with
      | Error e -> Alcotest.failf "explain analyze %s: %s" src e
      | Ok text ->
        Alcotest.(check bool)
          (Printf.sprintf "partition verdict reported for %s" src)
          true
          (contains ~sub:"safe partition" text))
    [ "map[THIS.a + 1](R)"; "map[sum(getBL(THIS.c, {'cat'}))](R)" ]

(* checked execution over the corpus drives the sanitizer end-to-end *)
let test_checked_query_sanitized () =
  Mirror_core.Bootstrap.ensure ();
  let st = Corpus.storage () in
  List.iter
    (fun src ->
      let expr =
        match Parser.parse_expr src with
        | Ok e -> e
        | Error e -> Alcotest.failf "parse %s: %s" src e
      in
      match Eval.query ~check:true st expr with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "checked query %s: %s" src e)
    [ "map[THIS.a * 2](select[THIS.b < 10](R))"; "map[count(THIS.s)](R)" ]

let () =
  Alcotest.run "effcheck"
    [
      ( "sharing",
        [
          Alcotest.test_case "memo hit returns the identical BAT" `Quick test_memo_identity;
          Alcotest.test_case "reverse/mirror alias their inputs" `Quick test_kernel_aliasing;
        ] );
      ( "static",
        [
          Alcotest.test_case "pure bundle: no hazards, singleton partitions" `Quick
            test_analyze_pure;
          Alcotest.test_case "undeclared foreign is an error" `Quick test_undeclared_foreign;
          Alcotest.test_case "declared writer under sharing is an error" `Quick
            test_declared_writer_static;
          Alcotest.test_case "sibling effects are non-commutable" `Quick
            test_unordered_effects;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "benign kernel sharing accepted" `Quick test_sanitizer_benign;
          Alcotest.test_case "requires a CSE session" `Quick test_sanitizer_requires_cse;
          Alcotest.test_case "catches in-place mutation" `Quick
            test_sanitizer_catches_mutation;
          Alcotest.test_case "catches undeclared aliasing" `Quick
            test_sanitizer_catches_aliasing;
        ] );
      ( "integration",
        [
          Alcotest.test_case "lint --json schema" `Quick test_lint_json_schema;
          Alcotest.test_case "explain analyze reports partitions" `Quick
            test_explain_analyze_partitions;
          Alcotest.test_case "checked queries run under the sanitizer" `Quick
            test_checked_query_sanitized;
        ] );
    ]
