(* Property-based fuzzing of the MIL kernel pipeline.

   A seeded, deterministic generator grows a pool of well-typed random
   plans over a small fixture catalog: each step wraps randomly chosen
   pool members in a randomly chosen operator whose typing precondition
   they satisfy.  Every generated plan is checked for three properties:

     (a) the static analyzer accepts it and the executed result lies
         inside the inferred Milcheck/Milprop envelope;
     (b) Milopt.rewrite preserves the result bit-for-bit (Bat.equal,
         which is order-sensitive);
     (c) executing under a trace records the plan's root span with a
         row count equal to the actual result size;
     (e) Boundcheck's resource envelope is sound: every node's actual
         row count sits inside its interval, measured bytes never
         exceed the resident upper bound, and estimates stay inside
         the sound intervals.

   The plan generator itself lives in {!Milgen} (shared with the
   parallel-kernel differential suite); see there for the operators it
   deliberately excludes. *)

open Milgen
module Trace = Mirror_util.Trace
module Milcheck = Mirror_bat.Milcheck
module Milopt = Mirror_bat.Milopt
module Milprop = Mirror_bat.Milprop
module Effcheck = Mirror_bat.Effcheck
module Boundcheck = Mirror_bat.Boundcheck

let plans_to_generate = 500
let max_pool_rows = 1000 (* plans producing more rows are tested but not pooled *)

let failf plan fmt =
  Printf.ksprintf
    (fun msg -> Alcotest.failf "%s\nplan:\n%s" msg (Mil.to_string plan))
    fmt

(* property (a): verified envelope contains the executed result *)
let check_envelope env catalog plan =
  match Milcheck.verify env plan with
  | Error ds ->
    failf plan "analyzer rejected a generated plan: %s"
      (String.concat "; " (List.map Milcheck.diag_to_string ds))
  | Ok inferred -> (
    let b = Mil.exec (Mil.session catalog) plan in
    match Milprop.envelope_ok ~inferred ~actual:(Milprop.of_bat b) with
    | Ok () -> b
    | Error msg ->
      failf plan "result escaped the inferred envelope %s: %s"
        (Milprop.to_string inferred) msg)

(* property (b): the peephole rewrite preserves results bit-for-bit *)
let check_rewrite catalog plan b =
  let rewritten = Milopt.rewrite plan in
  let b' = Mil.exec (Mil.session catalog) rewritten in
  if not (Bat.equal b b') then
    failf plan "Milopt.rewrite changed the result\nrewritten:\n%s"
      (Mil.to_string rewritten)

(* property (c): the root trace span reports the actual row count *)
let check_trace catalog plan b =
  let tr = Trace.create () in
  ignore (Mil.exec (Mil.session ~trace:tr catalog) plan);
  match Trace.root tr with
  | None -> failf plan "traced execution recorded no span"
  | Some sp ->
    if sp.Trace.name <> Mil.op_name plan then
      failf plan "root span %S, expected %S" sp.Trace.name (Mil.op_name plan);
    (match sp.Trace.rows with
    | Some rows when rows = Bat.count b -> ()
    | Some rows -> failf plan "root span rows %d, actual %d" rows (Bat.count b)
    | None -> failf plan "root span has no row count");
    (* every non-memo span in the tree must carry a row count *)
    Trace.fold
      (fun () (s : Trace.span) ->
        if s.Trace.rows = None && not (List.mem_assoc "memo" s.Trace.attrs) then
          failf plan "span %S has no row count" s.Trace.name)
      () sp

(* property (d): the effect analyzer finds no hazards in kernel-only
   plans, and the runtime sanitizer — fed every generated plan through
   one shared CSE session, so cross-plan physical sharing accumulates —
   accepts the observed aliasing and produces the same result *)
let check_effects eenv san plan b =
  (match Effcheck.lint eenv plan with
  | [] -> ()
  | ds ->
    failf plan "effect hazards on a kernel-only plan: %s"
      (String.concat "; " (List.map Milcheck.diag_to_string ds)));
  match Effcheck.exec san plan with
  | sb ->
    if not (Bat.equal b sb) then failf plan "sanitized execution changed the result"
  | exception Effcheck.Violation msg -> failf plan "effect sanitizer: %s" msg

(* property (e): the resource envelope is sound and consistent.  Every
   node of the plan is executed through one shared CSE session (memo
   hits across plans, like the sanitizer's); actual per-node row counts
   must sit inside Boundcheck's sound intervals and the measured bytes
   of this plan's materialised nodes (physically shared columns counted
   once) must stay under the resident upper bound. *)
let check_bounds benv bsess plan =
  let bounds = Boundcheck.analyze benv [ plan ] in
  (match bounds.Boundcheck.diags with
  | [] -> ()
  | ds ->
    failf plan "bound diagnostics on a kernel-only plan: %s"
      (String.concat "; " (List.map Milcheck.diag_to_string ds)));
  let bats = ref [] in
  Mil.Tbl.iter
    (fun node (c : Boundcheck.cost) ->
      let b = Mil.exec bsess node in
      bats := b :: !bats;
      let n = Bat.count b in
      if n < c.Boundcheck.rows.Milprop.lo then
        failf plan "node %s: %d rows below the sound lo %d" (Mil.op_name node) n
          c.Boundcheck.rows.Milprop.lo;
      (match c.Boundcheck.rows.Milprop.hi with
      | Some hi when n > hi ->
        failf plan "node %s: %d rows above the sound hi %d" (Mil.op_name node) n hi
      | _ -> ());
      if c.Boundcheck.est < c.Boundcheck.rows.Milprop.lo then
        failf plan "node %s: estimate %d below the sound lo" (Mil.op_name node)
          c.Boundcheck.est;
      match c.Boundcheck.rows.Milprop.hi with
      | Some hi when c.Boundcheck.est > hi ->
        failf plan "node %s: estimate %d above the sound hi %d" (Mil.op_name node)
          c.Boundcheck.est hi
      | _ -> ())
    bounds.Boundcheck.per_node;
  match bounds.Boundcheck.resident.Boundcheck.fp_hi with
  | Some hi ->
    let measured = Boundcheck.bats_bytes !bats in
    if measured > hi then
      failf plan "measured %d bytes above the resident bound %d" measured hi
  | None -> failf plan "kernel-only plan left unbounded"

let test_fuzz () =
  let catalog = fixture () in
  let env = Milcheck.env_of_catalog catalog in
  let eenv = Effcheck.env () in
  let san = Effcheck.sanitizer eenv (Mil.session catalog) in
  let benv = Boundcheck.env_of_catalog catalog in
  let bsess = Mil.session catalog in
  let g = Prng.create 20260807 in
  let seed_pool =
    List.map
      (fun name ->
        let b = Catalog.get catalog name in
        { plan = Mil.Get name; hty = Bat.hty b; tty = Bat.tty b })
      [ "ints"; "ints2"; "flts"; "strs"; "bools"; "link"; "empty" ]
  in
  let pool = ref seed_pool in
  let pooled = ref 0 in
  for _ = 1 to plans_to_generate do
    let plan, hty, tty = generate g !pool in
    let b = check_envelope env catalog plan in
    check_rewrite catalog plan b;
    check_trace catalog plan b;
    check_effects eenv san plan b;
    check_bounds benv bsess plan;
    if Bat.count b <= max_pool_rows then begin
      pool := { plan; hty; tty } :: !pool;
      incr pooled
    end
  done;
  (match Effcheck.finish san with
  | () -> ()
  | exception Effcheck.Violation msg ->
    Alcotest.failf "effect sanitizer (final fingerprint pass): %s" msg);
  Alcotest.(check bool)
    (Printf.sprintf "pool kept growing (%d of %d plans pooled)" !pooled plans_to_generate)
    true
    (!pooled > plans_to_generate / 2)

(* determinism: the same seed generates the same plan sequence *)
let test_deterministic () =
  let sequence () =
    let catalog = fixture () in
    let g = Prng.create 42 in
    let pool =
      ref
        (List.map
           (fun name ->
             let b = Catalog.get catalog name in
             { plan = Mil.Get name; hty = Bat.hty b; tty = Bat.tty b })
           [ "ints"; "flts"; "bools"; "link" ])
    in
    List.init 50 (fun _ ->
        let plan, hty, tty = generate g !pool in
        pool := { plan; hty; tty } :: !pool;
        Mil.to_string plan)
  in
  Alcotest.(check (list string)) "same seed, same plans" (sequence ()) (sequence ())

(* {1 Moa-level fuzzing}

   The same seeded pool-growth scheme one level up: random well-typed
   Moa expressions over the shared corpus database, each checked for

     (a) Typecheck accepts it (a generator bug otherwise);
     (b) Moacheck produces no Error diagnostic — the analyzer must
         never reject a well-typed expression (zero false errors);
     (c) the Naive reference result lies inside the inferred Moa
         envelope (Moaprop.value_ok);
     (d) Flatten.compile succeeds and Moacheck.validate certifies the
         flattening: the logical envelope intersects the Milcheck
         physical envelope on every BAT of the bundle.

   Deliberately excluded constructs: Div/Pow (division by a randomly
   zero constant; float rounding), Log/Exp/Sqrt (NaN domains), Mul
   (deep random chains overflow the int range, breaking envelope
   soundness — see DESIGN.md), Nest/Unnest (compile only at the top
   level, so they cannot be wrapped), and binder-dependent getBL
   queries (not flattenable by contract).  CONTREP and LIST coverage
   comes from seeding the pool with the corpus query battery. *)

module Expr = Mirror_core.Expr
module Types = Mirror_core.Types
module Value = Mirror_core.Value
module Typecheck = Mirror_core.Typecheck
module Moacheck = Mirror_core.Moacheck
module Moaprop = Mirror_core.Moaprop
module Naive = Mirror_core.Naive
module Flatten = Mirror_core.Flatten
module Storage = Mirror_core.Storage
module Corpus = Mirror_core.Corpus
module Parser = Mirror_core.Parser

let moa_to_generate = 500
let moa_max_size = 40 (* bigger expressions are tested but not pooled; also
                         bounds Add/Sub chain depth so integer envelope ends
                         stay exactly representable as floats *)

type mentry = { expr : Expr.t; ty : Types.t }

let fresh_var =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "f%d" !n

let is_num_ty = function Types.Atomic (Atom.TInt | Atom.TFlt) -> true | _ -> false
let is_atomic_ty = function Types.Atomic _ -> true | _ -> false
let set_elem = function Types.Set e -> Some e | _ -> None
let list_elem = function Types.Xt ("LIST", [ e ]) -> Some e | _ -> None

let num_set e = match set_elem e.ty with Some t -> is_num_ty t | None -> false
let atom_set e = match set_elem e.ty with Some t -> is_atomic_ty t | None -> false

let moa_lit g = function
  | Atom.TInt -> Expr.lit_int (Prng.int g 60 - 30)
  | Atom.TFlt -> Expr.lit_flt (Float.of_int (Prng.int g 80 - 40) /. 4.0)
  | Atom.TStr -> Expr.lit_str (Prng.choose g words)
  | Atom.TBool -> Expr.lit_bool (Prng.bool g)
  | Atom.TOid -> Expr.lit_int 0 (* never requested *)

let int_fields ty =
  match ty with
  | Types.Tuple fs ->
    List.filter_map (fun (f, t) -> if t = Types.Atomic Atom.TInt then Some f else None) fs
  | _ -> []

(* Candidate constructors, mirroring the MIL generator scheme: each
   returns Some well-typed wrapper of pool entries, or None when no
   entry satisfies its precondition. *)
let moa_generators : (string * (Prng.t -> mentry list -> mentry option)) array =
  [|
    ( "lit_atom",
      fun g _ ->
        let ty = Prng.choose g [| Atom.TInt; Atom.TFlt; Atom.TStr; Atom.TBool |] in
        Some { expr = moa_lit g ty; ty = Types.Atomic ty } );
    ( "lit_set",
      fun g _ ->
        let n = Prng.int g 6 in
        if Prng.bool g then
          let v = Value.VSet (List.init n (fun _ -> Value.Atom (Atom.Int (Prng.int g 60 - 30)))) in
          Some { expr = Expr.Lit (v, Types.Set (Types.Atomic Atom.TInt));
                 ty = Types.Set (Types.Atomic Atom.TInt) }
        else
          let ws = List.init n (fun _ -> Prng.choose g words) in
          Some { expr = Expr.lit_str_set ws; ty = Types.Set (Types.Atomic Atom.TStr) } );
    ( "aggr",
      fun g pool ->
        Option.map
          (fun e ->
            let elem = Option.get (set_elem e.ty) in
            match Prng.int g 5 with
            | 0 -> { expr = Expr.Aggr (Bat.Count, e.expr); ty = Types.Atomic Atom.TInt }
            | 1 -> { expr = Expr.Aggr (Bat.Avg, e.expr); ty = Types.Atomic Atom.TFlt }
            | 2 -> { expr = Expr.Aggr (Bat.Sum, e.expr); ty = elem }
            | 3 -> { expr = Expr.Aggr (Bat.Min, e.expr); ty = elem }
            | _ -> { expr = Expr.Aggr (Bat.Max, e.expr); ty = elem })
          (pick g pool num_set) );
    ( "count_any",
      fun g pool ->
        Option.map
          (fun e -> { expr = Expr.Aggr (Bat.Count, e.expr); ty = Types.Atomic Atom.TInt })
          (pick g pool atom_set) );
    ( "binop",
      fun g pool ->
        Option.bind
          (pick g pool (fun e -> is_num_ty e.ty))
          (fun a ->
            Option.map
              (fun b ->
                let op = Prng.choose g Bat.[| Add; Sub; MinOp; MaxOp |] in
                let ty =
                  if a.ty = Types.Atomic Atom.TInt && b.ty = Types.Atomic Atom.TInt then
                    Types.Atomic Atom.TInt
                  else Types.Atomic Atom.TFlt
                in
                { expr = Expr.Binop (op, a.expr, b.expr); ty })
              (pick g pool (fun e -> is_num_ty e.ty))) );
    ( "cmp",
      fun g pool ->
        Option.bind
          (pick g pool (fun e -> is_atomic_ty e.ty))
          (fun a ->
            Option.map
              (fun b ->
                let c = Prng.choose g Bat.[| Eq; Ne; Lt; Le; Gt; Ge |] in
                { expr = Expr.Binop (Bat.CmpOp c, a.expr, b.expr);
                  ty = Types.Atomic Atom.TBool })
              (pick g pool (fun e ->
                   e.ty = a.ty || (is_num_ty e.ty && is_num_ty a.ty)))) );
    ( "boolop",
      fun g pool ->
        Option.bind
          (pick g pool (fun e -> e.ty = Types.Atomic Atom.TBool))
          (fun a ->
            Option.map
              (fun b ->
                let op = if Prng.bool g then Bat.And else Bat.Or in
                { expr = Expr.Binop (op, a.expr, b.expr); ty = a.ty })
              (pick g pool (fun e -> e.ty = Types.Atomic Atom.TBool))) );
    ( "unop",
      fun g pool ->
        Option.map
          (fun e ->
            if e.ty = Types.Atomic Atom.TBool then
              { expr = Expr.Unop (Bat.Not, e.expr); ty = e.ty }
            else
              match Prng.int g 3 with
              | 0 -> { expr = Expr.Unop (Bat.Neg, e.expr); ty = e.ty }
              | 1 -> { expr = Expr.Unop (Bat.Abs, e.expr); ty = e.ty }
              | _ -> { expr = Expr.Unop (Bat.ToFlt, e.expr); ty = Types.Atomic Atom.TFlt })
          (pick g pool (fun e -> is_num_ty e.ty || e.ty = Types.Atomic Atom.TBool)) );
    ( "exists",
      fun g pool ->
        Option.map
          (fun e -> { expr = Expr.Exists e.expr; ty = Types.Atomic Atom.TBool })
          (pick g pool (fun e -> set_elem e.ty <> None)) );
    ( "member",
      fun g pool ->
        Option.map
          (fun e ->
            let base =
              match set_elem e.ty with Some (Types.Atomic b) -> b | _ -> assert false
            in
            { expr = Expr.Member (moa_lit g base, e.expr); ty = Types.Atomic Atom.TBool })
          (pick g pool (fun e ->
               match set_elem e.ty with
               | Some (Types.Atomic (Atom.TInt | Atom.TFlt | Atom.TStr | Atom.TBool)) -> true
               | _ -> false)) );
    ( "setop",
      fun g pool ->
        Option.bind (pick g pool atom_set) (fun a ->
            if Prng.int g 4 = 0 then
              (* the distinct idiom: union(x, x) *)
              Some { expr = Expr.Union (a.expr, a.expr); ty = a.ty }
            else
              Option.map
                (fun b ->
                  let node =
                    match Prng.int g 3 with
                    | 0 -> Expr.Union (a.expr, b.expr)
                    | 1 -> Expr.Diff (a.expr, b.expr)
                    | _ -> Expr.Inter (a.expr, b.expr)
                  in
                  { expr = node; ty = a.ty })
                (pick g pool (fun e -> Types.equal e.ty a.ty))) );
    ( "select",
      fun g pool ->
        Option.map
          (fun e ->
            let elem = Option.get (set_elem e.ty) in
            let v = fresh_var () in
            let cmp () = Bat.CmpOp (Prng.choose g Bat.[| Eq; Ne; Lt; Le; Gt; Ge |]) in
            let pred =
              if elem = Types.Atomic Atom.TInt then
                Expr.Binop (cmp (), Expr.Var v, Expr.lit_int (Prng.int g 40 - 20))
              else
                match int_fields elem with
                | f :: _ ->
                  Expr.Binop
                    (cmp (), Expr.Field (Expr.Var v, f), Expr.lit_int (Prng.int g 40 - 20))
                | [] -> Expr.lit_bool (Prng.bool g)
            in
            { expr = Expr.Select { v; pred; src = e.expr }; ty = e.ty })
          (pick g pool (fun e -> set_elem e.ty <> None)) );
    ( "map",
      fun g pool ->
        Option.map
          (fun e ->
            let elem = Option.get (set_elem e.ty) in
            let v = fresh_var () in
            match elem with
            | Types.Tuple ((f0, t0) :: _ as fs) ->
              let f, t = List.nth fs (Prng.int g (List.length fs)) in
              let f, t = if Prng.bool g then (f, t) else (f0, t0) in
              { expr = Expr.Map { v; body = Expr.Field (Expr.Var v, f); src = e.expr };
                ty = Types.Set t }
            | Types.Atomic (Atom.TInt | Atom.TFlt) ->
              { expr =
                  Expr.Map
                    { v;
                      body = Expr.Binop (Bat.Add, Expr.Var v, moa_lit g Atom.TInt);
                      src = e.expr };
                ty = Types.Set (if elem = Types.Atomic Atom.TInt then elem
                                else Types.Atomic Atom.TFlt) }
            | _ -> { expr = Expr.Map { v; body = Expr.Var v; src = e.expr }; ty = e.ty })
          (pick g pool (fun e -> set_elem e.ty <> None)) );
    ( "flat",
      fun g pool ->
        Option.map
          (fun e ->
            let inner = Option.get (set_elem e.ty) in
            { expr = Expr.Flat e.expr; ty = inner })
          (pick g pool (fun e ->
               match set_elem e.ty with Some (Types.Set _) -> true | _ -> false)) );
    ( "join",
      fun g pool ->
        Option.bind (pick g pool atom_set) (fun a ->
            Option.map
              (fun b ->
                let ea = Option.get (set_elem a.ty) and eb = Option.get (set_elem b.ty) in
                let v1 = fresh_var () and v2 = fresh_var () in
                let c = Prng.choose g Bat.[| Eq; Ne; Lt; Le; Gt; Ge |] in
                let pred = Expr.Binop (Bat.CmpOp c, Expr.Var v1, Expr.Var v2) in
                let node =
                  if Prng.bool g then
                    Expr.Join
                      { v1; v2; pred; left = a.expr; right = b.expr; l1 = "l"; l2 = "r" }
                  else Expr.Semijoin { v1; v2; pred; left = a.expr; right = b.expr }
                in
                match node with
                | Expr.Join _ ->
                  { expr = node; ty = Types.Set (Types.Tuple [ ("l", ea); ("r", eb) ]) }
                | _ -> { expr = node; ty = a.ty })
              (pick g pool (fun e ->
                   match (set_elem a.ty, set_elem e.ty) with
                   | Some ta, Some tb -> Types.equal ta tb && is_atomic_ty tb
                   | _ -> false))) );
    ( "tolist",
      fun g pool ->
        Option.map
          (fun e ->
            let elem = Option.get (set_elem e.ty) in
            { expr = Expr.ExtOp { op = "tolist"; args = [ e.expr; Expr.lit_str "" ] };
              ty = Types.Xt ("LIST", [ elem ]) })
          (pick g pool num_set) );
    ( "take",
      fun g pool ->
        Option.map
          (fun e ->
            { expr = Expr.ExtOp { op = "take"; args = [ e.expr; Expr.lit_int (Prng.int g 6) ] };
              ty = e.ty })
          (pick g pool (fun e -> list_elem e.ty <> None)) );
    ( "toset",
      fun g pool ->
        Option.map
          (fun e ->
            let elem = Option.get (list_elem e.ty) in
            { expr = Expr.ExtOp { op = "toset"; args = [ e.expr ] }; ty = Types.Set elem })
          (pick g pool (fun e -> list_elem e.ty <> None)) );
  |]

let moa_generate g pool =
  let rec attempt k =
    if k = 0 then
      (* always possible: the corpus extent is in the pool *)
      match pick g pool (fun e -> set_elem e.ty <> None) with
      | Some e -> { expr = Expr.Exists e.expr; ty = Types.Atomic Atom.TBool }
      | None -> List.nth pool (Prng.int g (List.length pool))
    else
      let _, gen = Prng.choose g moa_generators in
      match gen g pool with Some m -> m | None -> attempt (k - 1)
  in
  attempt 8

let moa_failf expr fmt =
  Printf.ksprintf
    (fun msg -> Alcotest.failf "%s\nexpression:\n%s" msg (Expr.to_string expr))
    fmt

let rec has_nest (e : Expr.t) =
  match e with
  | Expr.Nest _ | Expr.Unnest _ -> true
  | Expr.Extent _ | Expr.Lit _ | Expr.Var _ -> false
  | Expr.Field (e, _) | Expr.Aggr (_, e) | Expr.Unop (_, e) | Expr.Exists e | Expr.Flat e ->
    has_nest e
  | Expr.Tuple fs -> List.exists (fun (_, e) -> has_nest e) fs
  | Expr.Map { body; src; _ } | Expr.Select { pred = body; src; _ } ->
    has_nest body || has_nest src
  | Expr.Join { pred; left; right; _ } | Expr.Semijoin { pred; left; right; _ } ->
    has_nest pred || has_nest left || has_nest right
  | Expr.Binop (_, a, b)
  | Expr.Member (a, b)
  | Expr.Union (a, b)
  | Expr.Diff (a, b)
  | Expr.Inter (a, b) ->
    has_nest a || has_nest b
  | Expr.ExtOp { args; _ } -> List.exists has_nest args

let rec value_atoms = function
  | Value.Atom _ -> 1
  | Value.Tup fs -> List.fold_left (fun n (_, v) -> n + value_atoms v) 0 fs
  | Value.VSet vs | Value.Xv { items = vs; _ } ->
    List.fold_left (fun n v -> n + value_atoms v) 0 vs

(* The four properties; returns the naive result for pool-size gating. *)
let moa_check st tenv menv { expr; ty } =
  (match Typecheck.infer tenv expr with
  | Error d ->
    moa_failf expr "generator produced an ill-typed expression: %s"
      (Typecheck.diag_to_string d)
  | Ok t ->
    if not (Types.equal t ty) then
      moa_failf expr "generator claimed type %s, typechecker inferred %s"
        (Types.to_string ty) (Types.to_string t));
  let prop, diags = Moacheck.infer menv expr in
  (match Moaprop.errors diags with
  | [] -> ()
  | ds ->
    moa_failf expr "analyzer rejected a well-typed expression: %s"
      (String.concat "; " (List.map Moaprop.diag_to_string ds)));
  let v = Naive.eval st expr in
  (match Moaprop.value_ok prop v with
  | Ok () -> ()
  | Error msg ->
    moa_failf expr "naive result escaped the Moa envelope %s: %s" (Moaprop.to_string prop)
      msg);
  (match Flatten.compile st expr with
  | exception Flatten.Unsupported msg -> moa_failf expr "expression does not flatten: %s" msg
  | exception Flatten.Ill_formed msg -> moa_failf expr "compile rejected: %s" msg
  | shape -> (
    match Moacheck.validate st expr shape with
    | Ok () -> ()
    | Error ds ->
      moa_failf expr "translation validation failed: %s"
        (String.concat "; " (List.map Moaprop.diag_to_string ds))));
  v

let test_moa_fuzz () =
  let st = Corpus.storage () in
  let tenv = Storage.typecheck_env st in
  let menv = Moacheck.env_of_storage st in
  let g = Prng.create 20260807 in
  let canned =
    List.filter_map
      (fun src ->
        match Parser.parse_expr src with
        | Error _ -> None
        | Ok e ->
          if has_nest e || Expr.size e > 25 then None
          else
            Option.map
              (fun ty -> { expr = e; ty })
              (Result.to_option (Typecheck.infer tenv e)))
      Corpus.queries
  in
  let pool = ref ({ expr = Expr.Extent "R"; ty = Corpus.schema } :: canned) in
  let pooled = ref 0 in
  for _ = 1 to moa_to_generate do
    let me = moa_generate g !pool in
    let v = moa_check st tenv menv me in
    if Expr.size me.expr <= moa_max_size && value_atoms v <= 400 then begin
      pool := me :: !pool;
      incr pooled
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "pool kept growing (%d of %d expressions pooled)" !pooled moa_to_generate)
    true
    (!pooled > moa_to_generate / 2)

let test_moa_deterministic () =
  (* binder names come from a global counter, so compare operator/size
     shapes rather than printed expressions *)
  let sequence () =
    let g = Prng.create 42 in
    let pool = ref [ { expr = Expr.Extent "R"; ty = Corpus.schema } ] in
    List.init 60 (fun _ ->
        let me = moa_generate g !pool in
        if Expr.size me.expr <= moa_max_size then pool := me :: !pool;
        Printf.sprintf "%s/%d:%s" (Expr.op_name me.expr) (Expr.size me.expr)
          (Types.to_string me.ty))
  in
  Alcotest.(check (list string)) "same seed, same expressions" (sequence ()) (sequence ())

let () =
  Alcotest.run "fuzz"
    [
      ( "mil-pipeline",
        [
          Alcotest.test_case "500 random plans: envelope, rewrite, trace" `Slow test_fuzz;
          Alcotest.test_case "generator is deterministic" `Quick test_deterministic;
        ] );
      ( "moa-pipeline",
        [
          Alcotest.test_case "500 random queries: envelope, flattening validated" `Slow
            test_moa_fuzz;
          Alcotest.test_case "generator is deterministic" `Quick test_moa_deterministic;
        ] );
    ]
