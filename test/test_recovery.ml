(* Crash-recovery property tests for the durable metadata store.

   The central property: recovering a crashed durable database always
   yields a state bit-for-bit equal to some prefix of the never-crashed
   run of the same operation sequence — or fails with an explicit
   corruption diagnostic.  Never a silently wrong database.

   Exercised three ways: a torn-write sweep that crashes the WAL append
   at every single byte offset of a fixed program; a deterministic
   crash at each named checkpoint-protocol step; and a 500-seed fuzzer
   mixing random programs with random fault injection. *)

module Durable = Mirror_store.Durable
module Wal = Mirror_store.Wal
module Faults = Mirror_daemon.Faults
module Mirror = Mirror_core.Mirror
module Storage = Mirror_core.Storage
module Eval = Mirror_core.Eval
module Expr = Mirror_core.Expr
module Types = Mirror_core.Types
module Prng = Mirror_util.Prng

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let dir = Filename.temp_file "mirror-recovery" ".db" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Canonical rendering of a database's complete logical state: every
   extent's name, type and contents (evaluated through the flattened
   kernel).  Prefix-consistency below is string equality of these. *)
let fingerprint st =
  Storage.extents st
  |> List.sort compare
  |> List.map (fun name ->
         let ty =
           match Storage.extent_type st name with
           | Some t -> Types.to_string t
           | None -> "?"
         in
         let contents =
           match Eval.query_value st (Expr.Extent name) with
           | Ok v -> Mirror_core.Value.to_string v
           | Error e -> "ERR " ^ e
         in
         Printf.sprintf "%s : %s = %s" name ty contents)
  |> String.concat "\n"

(* {1 Operation sequences} *)

type op = Exec of string | Checkpoint

let schema_src = "SET< TUPLE< Atomic<int>: a, SET< Atomic<int> > : s > >"

(* Deterministic random program: defines, inserts, deletes and the
   occasional explicit checkpoint.  Generated with explicit recursion
   (not [List.init]) so the PRNG draws in a fixed order. *)
let gen_ops g n =
  let defined = ref [] in
  let count = ref 0 in
  let one () =
    let roll = Prng.int g 100 in
    if !defined = [] || roll < 15 then begin
      incr count;
      let name = Printf.sprintf "T%d" !count in
      defined := name :: !defined;
      Exec (Printf.sprintf "define %s as %s;" name schema_src)
    end
    else if roll < 70 then begin
      let name = Prng.choose g (Array.of_list !defined) in
      let a = Prng.int g 50 in
      let rec draw k acc = if k = 0 then List.rev acc else draw (k - 1) (Prng.int g 20 :: acc) in
      let s =
        draw (1 + Prng.int g 3) [] |> List.map string_of_int |> String.concat ", "
      in
      Exec (Printf.sprintf "insert into %s tuple(a: %d, s: {%s});" name a s)
    end
    else if roll < 90 then begin
      let name = Prng.choose g (Array.of_list !defined) in
      Exec (Printf.sprintf "delete from %s where THIS.a = %d;" name (Prng.int g 50))
    end
    else Checkpoint
  in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (one () :: acc) in
  go n []

let apply_plain m = function
  | Exec src -> ignore (ok (Mirror.exec_program m src))
  | Checkpoint -> ()

let apply_durable t = function
  | Exec src -> ignore (ok (Mirror.exec_program (Durable.mirror t) src))
  | Checkpoint -> ok (Durable.checkpoint t)

(* Fingerprints of every prefix of [ops], from a never-crashed
   in-memory run: element [i] is the state after the first [i] ops. *)
let prefixes ops =
  let m = Mirror.create () in
  let acc = ref [ fingerprint (Mirror.storage m) ] in
  List.iter
    (fun op ->
      apply_plain m op;
      acc := fingerprint (Mirror.storage m) :: !acc)
    ops;
  List.rev !acc

let check_prefix ~what fps fp =
  if not (List.mem fp fps) then
    Alcotest.failf "%s: recovered state is not a prefix of the crash-free run:\n%s" what fp

(* Run [ops] against a fresh durable store in [dir] with faults already
   armed; returns true if the injected crash fired.  The store is
   abandoned (crash semantics) or closed cleanly accordingly. *)
let run_until_crash ~dir ~arm ops =
  match Durable.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok (t, _) ->
    arm ();
    let crashed =
      match List.iter (apply_durable t) ops with
      | () -> false
      | exception Faults.Crash _ -> true
    in
    Faults.reset_faults ();
    if crashed then Durable.abandon t else Durable.close t;
    crashed

let recover_and_check ~what ~dir fps =
  match Durable.open_ ~dir () with
  | Error e -> Alcotest.failf "%s: recovery failed: %s" what e
  | Ok (t, _) ->
    check_prefix ~what fps (fingerprint (Durable.storage t));
    (match Durable.certify t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: certification failed: %s" what e);
    Durable.close t

(* {1 Torn-write sweep} *)

(* Crash the log append at every byte offset of a small fixed program:
   whatever frame boundary, header byte or payload byte the tear lands
   on, recovery must land on an exact prefix. *)
let test_torn_sweep () =
  let ops =
    [
      Exec (Printf.sprintf "define T as %s;" schema_src);
      Exec "insert into T tuple(a: 1, s: {1, 2});";
      Exec "insert into T tuple(a: 2, s: {3});";
      Exec "delete from T where THIS.a = 1;";
    ]
  in
  let fps = prefixes ops in
  (* Total log bytes of the complete run, from a clean rehearsal. *)
  let total =
    with_temp_dir (fun dir ->
        match Durable.open_ ~dir () with
        | Error e -> Alcotest.fail e
        | Ok (t, _) ->
          List.iter (apply_durable t) ops;
          let bytes = (Durable.status t).Durable.log_bytes in
          Durable.abandon t;
          bytes)
  in
  Alcotest.(check bool) "rehearsal logged something" true (total > 0);
  for bytes = 0 to total - 1 do
    with_temp_dir (fun dir ->
        let what = Printf.sprintf "torn at byte %d/%d" bytes total in
        let crashed =
          run_until_crash ~dir ~arm:(fun () -> Faults.arm_torn_write ~bytes) ops
        in
        if not crashed then Alcotest.failf "%s: no crash fired" what;
        recover_and_check ~what ~dir fps)
  done

(* {1 Checkpoint-protocol crash points} *)

let checkpoint_points =
  [
    "checkpoint.begin";
    "checkpoint.snapshot";
    "checkpoint.rename";
    "checkpoint.meta";
    "checkpoint.commit";
    "checkpoint.gc";
  ]

(* Crash a checkpoint at each protocol step.  Every operation was
   already logged, so whichever side of the commit point the crash
   lands on, recovery must reproduce the full pre-checkpoint state. *)
let test_checkpoint_crash_points () =
  let ops =
    [
      Exec (Printf.sprintf "define T as %s;" schema_src);
      Exec "insert into T tuple(a: 7, s: {4, 9});";
      Exec "insert into T tuple(a: 8, s: {5});";
    ]
  in
  let full = List.nth (prefixes ops) (List.length ops) in
  List.iter
    (fun point ->
      with_temp_dir (fun dir ->
          match Durable.open_ ~dir () with
          | Error e -> Alcotest.fail e
          | Ok (t, _) -> (
            List.iter (apply_durable t) ops;
            Faults.arm_crash point ~after:0;
            (match Durable.checkpoint t with
            | exception Faults.Crash _ -> ()
            | Ok () -> Alcotest.failf "checkpoint did not crash at %s" point
            | Error e -> Alcotest.failf "checkpoint errored at %s instead: %s" point e);
            Faults.reset_faults ();
            Durable.abandon t;
            match Durable.open_ ~dir () with
            | Error e -> Alcotest.failf "reopen after %s: %s" point e
            | Ok (t2, _) ->
              Alcotest.(check string)
                (Printf.sprintf "crash at %s preserves the logged state" point)
                full
                (fingerprint (Durable.storage t2));
              ok (Durable.certify t2);
              Durable.close t2)))
    checkpoint_points

(* A second crash during the recovery's own re-checkpoint must not
   brick the store either: recover, crash the recovery checkpoint at
   its commit point, recover again. *)
let test_double_crash () =
  let ops =
    [
      Exec (Printf.sprintf "define T as %s;" schema_src);
      Exec "insert into T tuple(a: 3, s: {6});";
    ]
  in
  let fps = prefixes ops in
  with_temp_dir (fun dir ->
      let crashed =
        run_until_crash ~dir ~arm:(fun () -> Faults.arm_torn_write ~bytes:80) ops
      in
      Alcotest.(check bool) "first crash fired" true crashed;
      List.iter
        (fun point ->
          Faults.arm_crash point ~after:0;
          (match Durable.open_ ~dir () with
          | exception Faults.Crash _ -> ()
          | Ok (t, _) ->
            (* the tear may have landed between records, in which case
               recovery has nothing to redo and never checkpoints *)
            Durable.abandon t
          | Error e -> Alcotest.failf "double crash at %s: %s" point e);
          Faults.reset_faults ())
        checkpoint_points;
      recover_and_check ~what:"after repeated recovery crashes" ~dir fps)

(* {1 Corruption detection} *)

let wal_segments dir =
  let wal_dir = Filename.concat dir "wal" in
  Sys.readdir wal_dir |> Array.to_list |> List.sort compare
  |> List.map (Filename.concat wal_dir)

let flip_byte path pos =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string src in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

(* Build a store with a populated log (abandoned, not checkpointed). *)
let build_dirty dir =
  match Durable.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok (t, _) ->
    List.iter (apply_durable t)
      [
        Exec (Printf.sprintf "define T as %s;" schema_src);
        Exec "insert into T tuple(a: 1, s: {1});";
        Exec "insert into T tuple(a: 2, s: {2});";
      ];
    Durable.abandon t

let expect_open_error ~what ~needle dir =
  match Durable.open_ ~dir () with
  | Ok _ -> Alcotest.failf "%s: damage was not detected" what
  | Error e ->
    if not (contains ~needle e) then
      Alcotest.failf "%s: diagnostic %S does not mention %S" what e needle

let test_bitflip_detected () =
  with_temp_dir (fun dir ->
      build_dirty dir;
      let seg = List.hd (wal_segments dir) in
      (* byte 12 is inside the first record's payload: checksum must trip *)
      flip_byte seg 12;
      expect_open_error ~what:"payload bit flip" ~needle:"checksum" dir)

let test_meta_corruption_detected () =
  with_temp_dir (fun dir ->
      build_dirty dir;
      flip_byte (Filename.concat dir "CHECKPOINT") 5;
      expect_open_error ~what:"checkpoint metadata flip" ~needle:"CHECKPOINT" dir)

(* Tiny segments force a roll on every append; deleting an interior
   segment leaves a gap in the LSN tiling, which must be flagged as
   corruption, not silently replayed around. *)
let test_missing_segment_detected () =
  with_temp_dir (fun dir ->
      let config =
        {
          Durable.default_config with
          Durable.wal = { Wal.default_config with Wal.segment_bytes = 32 };
        }
      in
      (match Durable.open_ ~config ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, _) ->
        List.iter (apply_durable t)
          [
            Exec (Printf.sprintf "define T as %s;" schema_src);
            Exec "insert into T tuple(a: 1, s: {1});";
            Exec "insert into T tuple(a: 2, s: {2});";
          ];
        Durable.abandon t);
      (match wal_segments dir with
      | _ :: middle :: _ :: _ -> Sys.remove middle
      | segs -> Alcotest.failf "expected >= 3 segments, got %d" (List.length segs));
      expect_open_error ~what:"missing interior segment" ~needle:"expected" dir)

(* Dropping one interior byte misaligns every later frame: the scan
   must flag damage rather than replay garbage. *)
let test_interior_truncation_detected () =
  with_temp_dir (fun dir ->
      build_dirty dir;
      let seg = List.hd (wal_segments dir) in
      let ic = open_in_bin seg in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let dropped = String.sub src 0 20 ^ String.sub src 21 (String.length src - 21) in
      let oc = open_out_bin seg in
      output_string oc dropped;
      close_out oc;
      expect_open_error ~what:"interior byte drop" ~needle:"WAL corruption" dir)

(* {1 Feedback and daemon-store records} *)

let test_feedback_and_store_ops_replayed () =
  with_temp_dir (fun dir ->
      (match Durable.open_ ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, _) ->
        List.iter (apply_durable t)
          [
            Exec (Printf.sprintf "define T as %s;" schema_src);
            Exec "insert into T tuple(a: 1, s: {1});";
          ];
        Mirror.give_feedback (Durable.mirror t) ~query:"sunset beach"
          ~judgements:[ ("img1", true); ("img2", false) ];
        Durable.store_journal t "doc" "7 \"img7\"";
        Durable.abandon t);
      match Durable.open_ ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, r) ->
        Alcotest.(check int) "all records replayed" 4 r.Durable.replayed;
        Alcotest.(check (list (pair string (list (pair string bool)))))
          "feedback replayed"
          [ ("sunset beach", [ ("img1", true); ("img2", false) ]) ]
          r.Durable.feedback;
        Alcotest.(check (list (pair string string)))
          "store ops replayed"
          [ ("doc", "7 \"img7\"") ]
          r.Durable.store_ops;
        Durable.close t)

(* The snapshot only captures Storage; feedback and daemon-store
   effects live in session side state.  Their records must survive
   checkpoint GC (via the snapshot's side-state file) — the regression
   here was: feedback, close (= checkpoint), open => empty history. *)

let feedback_history = Alcotest.(list (pair string (list (pair string bool))))
let store_op_history = Alcotest.(list (pair string string))

let test_side_state_survives_checkpoint () =
  with_temp_dir (fun dir ->
      (match Durable.open_ ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, _) ->
        List.iter (apply_durable t)
          [
            Exec (Printf.sprintf "define T as %s;" schema_src);
            Exec "insert into T tuple(a: 1, s: {1});";
          ];
        Mirror.give_feedback (Durable.mirror t) ~query:"before checkpoint"
          ~judgements:[ ("img1", true) ];
        Durable.store_journal t "doc" "1 \"img1\"";
        ok (Durable.checkpoint t);
        Mirror.give_feedback (Durable.mirror t) ~query:"after checkpoint"
          ~judgements:[ ("img2", false) ];
        Durable.close t);
      (* two reopen cycles: the history must survive each one's
         close-time checkpoint as well *)
      for cycle = 1 to 2 do
        match Durable.open_ ~dir () with
        | Error e -> Alcotest.fail e
        | Ok (t, r) ->
          Alcotest.(check int)
            (Printf.sprintf "cycle %d: clean open replays nothing" cycle)
            0 r.Durable.replayed;
          Alcotest.check feedback_history
            (Printf.sprintf "cycle %d: feedback history survives" cycle)
            [
              ("before checkpoint", [ ("img1", true) ]);
              ("after checkpoint", [ ("img2", false) ]);
            ]
            r.Durable.feedback;
          Alcotest.check store_op_history
            (Printf.sprintf "cycle %d: store-op history survives" cycle)
            [ ("doc", "1 \"img1\"") ]
            r.Durable.store_ops;
          Durable.close t
      done)

(* Whichever side of the commit point a checkpoint crash lands on, the
   feedback history must come back — from the old log, or from the new
   snapshot's side-state file. *)
let test_side_state_survives_checkpoint_crash () =
  List.iter
    (fun point ->
      with_temp_dir (fun dir ->
          (match Durable.open_ ~dir () with
          | Error e -> Alcotest.fail e
          | Ok (t, _) ->
            apply_durable t (Exec (Printf.sprintf "define T as %s;" schema_src));
            Mirror.give_feedback (Durable.mirror t) ~query:"q"
              ~judgements:[ ("img1", true) ];
            Faults.arm_crash point ~after:0;
            (match Durable.checkpoint t with
            | exception Faults.Crash _ -> ()
            | Ok () -> Alcotest.failf "checkpoint did not crash at %s" point
            | Error e -> Alcotest.failf "checkpoint errored at %s instead: %s" point e);
            Faults.reset_faults ();
            Durable.abandon t);
          match Durable.open_ ~dir () with
          | Error e -> Alcotest.failf "reopen after %s: %s" point e
          | Ok (t, r) ->
            Alcotest.check feedback_history
              (Printf.sprintf "feedback survives a crash at %s" point)
              [ ("q", [ ("img1", true) ]) ]
              r.Durable.feedback;
            Durable.close t))
    checkpoint_points

(* Auto-checkpoints GC the log mid-session; the side state must ride
   through them just like explicit ones. *)
let test_side_state_survives_auto_checkpoint () =
  with_temp_dir (fun dir ->
      let config = { Durable.default_config with Durable.checkpoint_every = 1 } in
      (match Durable.open_ ~config ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, _) ->
        Mirror.give_feedback (Durable.mirror t) ~query:"q" ~judgements:[ ("img1", true) ];
        List.iter (apply_durable t)
          [
            Exec (Printf.sprintf "define T as %s;" schema_src);
            Exec "insert into T tuple(a: 1, s: {1});";
          ];
        Alcotest.(check (option string))
          "no auto-checkpoint error" None (Durable.status t).Durable.last_error;
        Durable.abandon t);
      match Durable.open_ ~config ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, r) ->
        Alcotest.check feedback_history "feedback survives auto-checkpoints"
          [ ("q", [ ("img1", true) ]) ]
          r.Durable.feedback;
        Durable.close t)

(* {1 Group-commit observability}

   With [fsync_batch = 8] a run of journaled writes must pay well
   under one fsync per committed record, the explicit [Durable.sync]
   must close the open batch, and the counters must survive the
   checkpoint-time writer swap (the durable store accumulates retired
   writers' stats). *)
let test_group_commit_stats () =
  with_temp_dir (fun dir ->
      let config =
        {
          Durable.default_config with
          Durable.wal = { Wal.default_config with Wal.fsync_batch = 8 };
        }
      in
      match Durable.open_ ~config ~dir () with
      | Error e -> Alcotest.fail e
      | Ok (t, _) ->
        apply_durable t (Exec (Printf.sprintf "define T as %s;" schema_src));
        for i = 1 to 20 do
          apply_durable t (Exec (Printf.sprintf "insert into T tuple(a: %d, s: {%d});" i i))
        done;
        ok (Durable.sync t);
        let s = Durable.status t in
        Alcotest.(check int) "every journaled record counted" 21 s.Durable.wal_appends;
        Alcotest.(check bool) "group commit: fewer fsyncs than appends" true
          (s.Durable.wal_fsyncs < s.Durable.wal_appends);
        Alcotest.(check bool) "at least one batch closed" true (s.Durable.wal_batches >= 1);
        Alcotest.(check bool) "mean fsyncs per commit below 1" true
          (s.Durable.fsyncs_per_commit < 1.0);
        ok (Durable.checkpoint t);
        let s' = Durable.status t in
        Alcotest.(check int) "appends survive the checkpoint writer swap" 21
          s'.Durable.wal_appends;
        Alcotest.(check bool) "fsyncs accumulate across the swap" true
          (s'.Durable.wal_fsyncs >= s.Durable.wal_fsyncs);
        Durable.close t)

(* {1 The 500-seed crash fuzzer} *)

let test_crash_fuzz () =
  for seed = 1 to 500 do
    let g = Prng.create seed in
    let ops = gen_ops g (3 + Prng.int g 10) in
    let fps = prefixes ops in
    let arm () =
      match Prng.int g 3 with
      | 0 -> Faults.arm_torn_write ~bytes:(Prng.int g 2000)
      | 1 ->
        Faults.arm_crash
          (Prng.choose g (Array.of_list checkpoint_points))
          ~after:(Prng.int g 2)
      | _ -> ()
    in
    with_temp_dir (fun dir ->
        let what = Printf.sprintf "seed %d" seed in
        ignore (run_until_crash ~dir ~arm ops : bool);
        recover_and_check ~what ~dir fps)
  done

let () =
  Alcotest.run "recovery"
    [
      ( "prefix-consistency",
        [
          Alcotest.test_case "torn write at every byte offset" `Quick test_torn_sweep;
          Alcotest.test_case "crash at every checkpoint step" `Quick
            test_checkpoint_crash_points;
          Alcotest.test_case "crash during recovery's checkpoint" `Quick
            test_double_crash;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "payload bit flip detected" `Quick test_bitflip_detected;
          Alcotest.test_case "metadata corruption detected" `Quick
            test_meta_corruption_detected;
          Alcotest.test_case "missing interior segment detected" `Quick
            test_missing_segment_detected;
          Alcotest.test_case "interior truncation detected" `Quick
            test_interior_truncation_detected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "feedback and store ops surface" `Quick
            test_feedback_and_store_ops_replayed;
          Alcotest.test_case "side state survives checkpoint + reopen" `Quick
            test_side_state_survives_checkpoint;
          Alcotest.test_case "side state survives checkpoint crashes" `Quick
            test_side_state_survives_checkpoint_crash;
          Alcotest.test_case "side state survives auto-checkpoints" `Quick
            test_side_state_survives_auto_checkpoint;
        ] );
      ( "group-commit",
        [ Alcotest.test_case "batching stats observable" `Quick test_group_commit_stats ] );
      ( "fuzz",
        [ Alcotest.test_case "500-seed crash fuzzer" `Slow test_crash_fuzz ] );
    ]
