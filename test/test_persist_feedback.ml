(* Satellite coverage for persistence and relevance feedback.

   Persistence: a save/load round trip must restore the BAT catalog
   exactly (same names, same row counts) and leave every corpus query
   bit-identical under both evaluators.

   Feedback: Rocchio reformulation is a pure function (same judgements
   twice → the same query), and in the §5.2 demo session refining with
   judgements must not push a judged-relevant image down the ranking. *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Catalog = Mirror_bat.Catalog
module Corpus = Mirror_core.Corpus
module Eval = Mirror_core.Eval
module Feedback = Mirror_core.Feedback
module Mirror = Mirror_core.Mirror
module Naive = Mirror_core.Naive
module Parser = Mirror_core.Parser
module Persist = Mirror_core.Persist
module Storage = Mirror_core.Storage
module Value = Mirror_core.Value
module Prng = Mirror_util.Prng
module Synth = Mirror_mm.Synth

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let with_temp_dir f =
  let dir = Filename.temp_file "mirror" ".db" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* {1 Persistence} *)

let test_catalog_restored () =
  with_temp_dir (fun dir ->
      let st = Corpus.storage () in
      ok (Persist.save st ~dir);
      let st2 = ok (Persist.load ~dir) in
      let c1 = Storage.catalog st and c2 = Storage.catalog st2 in
      let names c = List.sort compare (Catalog.names c) in
      Alcotest.(check (list string)) "catalog names" (names c1) (names c2);
      List.iter
        (fun name ->
          Alcotest.(check int)
            ("row count of " ^ name)
            (Bat.count (Catalog.get c1 name))
            (Bat.count (Catalog.get c2 name)))
        (names c1);
      Alcotest.(check int) "total rows" (Catalog.total_rows c1) (Catalog.total_rows c2))

let test_queries_survive_reload () =
  with_temp_dir (fun dir ->
      let st = Corpus.storage () in
      ok (Persist.save st ~dir);
      let st2 = ok (Persist.load ~dir) in
      List.iter
        (fun src ->
          let e =
            match Parser.parse_expr src with
            | Ok e -> e
            | Error msg -> Alcotest.failf "parse: %s" msg
          in
          let before = ok (Eval.query_value st e) in
          let after = ok (Eval.query_value st2 e) in
          if not (Value.equal before after) then
            Alcotest.failf "flattened result changed across reload on %s" src;
          if not (Value.equal before (Naive.eval st2 e)) then
            Alcotest.failf "naive result changed across reload on %s" src)
        Corpus.queries)

(* {1 Feedback} *)

let test_rocchio_deterministic () =
  let original = [ ("stripe", 1.0); ("sky", 0.5) ] in
  let relevant = [ [ ("stripe", 2.0); ("grass", 1.0) ]; [ ("stripe", 1.0); ("blob", 0.25) ] ] in
  let irrelevant = [ [ ("sky", 3.0); ("blob", 1.0) ] ] in
  let run () = Feedback.rocchio ~original ~relevant ~irrelevant () in
  let a = run () and b = run () in
  Alcotest.(check (list (pair string (float 1e-12)))) "same inputs, same query" a b;
  (* moved towards the relevant bags, away from the irrelevant one *)
  let w term q = Option.value ~default:0.0 (List.assoc_opt term q) in
  Alcotest.(check bool) "relevant term gained" true (w "stripe" a > w "stripe" original);
  Alcotest.(check bool) "irrelevant term lost" true (w "sky" a < w "sky" original)

let demo_mirror () =
  let g = Prng.create 2025 in
  let scenes = Synth.corpus g ~n:10 ~width:32 ~height:32 ~annotated_fraction:0.8 () in
  let m = Mirror.create () in
  ignore (ok (Mirror.build_image_library m ~scenes ()));
  (m, scenes)

let test_refined_search_deterministic () =
  let rankings () =
    let m, _ = demo_mirror () in
    let initial = ok (Mirror.search m ~limit:8 ~mode:Mirror.Dual "stripes") in
    let judgements = List.map (fun (url, _) -> (url, true)) initial in
    ok (Mirror.search_refined m ~limit:8 ~query:"stripes" ~judgements ())
  in
  let a = rankings () and b = rankings () in
  Alcotest.(check (list (pair string (float 1e-9)))) "refinement is deterministic" a b

let test_refined_search_target_rank () =
  let m, scenes = demo_mirror () in
  let query = "stripes" in
  let relevant url =
    match String.rindex_opt url '/' with
    | Some i ->
      Synth.relevant
        scenes.(int_of_string (String.sub url (i + 1) (String.length url - i - 1)))
        ~query_words:[ query ]
    | None -> false
  in
  let limit = Mirror.library_size m in
  let initial = ok (Mirror.search m ~limit ~mode:Mirror.Dual query) in
  let judgements = List.map (fun (url, _) -> (url, relevant url)) initial in
  let target =
    match List.find_opt (fun (url, _) -> relevant url) initial with
    | Some (url, _) -> url
    | None -> Alcotest.fail "no relevant image in the initial ranking"
  in
  let rank_of url hits =
    let rec go i = function
      | [] -> limit + 1
      | (u, _) :: _ when u = url -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 1 hits
  in
  let refined = ok (Mirror.search_refined m ~limit ~query ~judgements ()) in
  let before = rank_of target initial and after = rank_of target refined in
  Alcotest.(check bool)
    (Printf.sprintf "judged-relevant image not demoted (rank %d -> %d)" before after)
    true (after <= before)

let () =
  Alcotest.run "persist-feedback"
    [
      ( "persist",
        [
          Alcotest.test_case "catalog restored exactly" `Quick test_catalog_restored;
          Alcotest.test_case "corpus queries survive reload" `Quick test_queries_survive_reload;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "rocchio is deterministic" `Quick test_rocchio_deterministic;
          Alcotest.test_case "refined search is deterministic" `Quick
            test_refined_search_deterministic;
          Alcotest.test_case "relevant image not demoted" `Quick test_refined_search_target_rank;
        ] );
    ]
