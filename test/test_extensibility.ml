(* Proof of the paper's "open complex object system": a brand-new
   structure — MSET, a multiset with explicit multiplicities — defined
   entirely outside the library through the public Extension registry,
   and exercised through the full stack: DDL typing, storage, both
   evaluators, filtering and reification. *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Mil = Mirror_bat.Mil
module Column = Mirror_bat.Column
module Types = Mirror_core.Types
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Shape = Mirror_core.Shape
module Extension = Mirror_core.Extension
module Storage = Mirror_core.Storage
module Naive = Mirror_core.Naive
module Eval = Mirror_core.Eval
module Parser = Mirror_core.Parser
module Typecheck = Mirror_core.Typecheck
module Bootstrap = Mirror_core.Bootstrap

let () = Bootstrap.ensure ()

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let value_testable = Alcotest.testable Value.pp Value.equal

(* {1 The MSET extension} *)

let mset_value pairs =
  Value.Xv
    {
      ext = "MSET";
      meta = [];
      items =
        List.map (fun (a, n) -> Value.Tup [ ("elem", Value.Atom a); ("n", Value.int n) ]) pairs;
    }

let mset_pairs = function
  | Value.Xv { ext = "MSET"; items; _ } ->
    List.map
      (fun item ->
        ( Value.as_atom (Value.field_exn item "elem"),
          Mirror_bat.Atom.as_int (Value.as_atom (Value.field_exn item "n")) ))
      items
  | _ -> failwith "not an MSET"

module MSET = struct
  let name = "MSET"
  let arity = 1

  let check_type = function
    | [ Types.Atomic _ ] -> Ok ()
    | _ -> Error "MSET takes one atomic element type"

  let ops = [ "mtotal" ]

  let op_type ~op ~args =
    match (op, args) with
    | "mtotal", [ Types.Xt ("MSET", _) ] -> Ok (Types.Atomic Atom.TInt)
    | _ -> Error "mtotal expects an MSET<_>"

  let op_eval _env ~op ~args =
    match (op, args) with
    | "mtotal", [ self ] ->
      Value.int (List.fold_left (fun acc (_, n) -> acc + n) 0 (mset_pairs self))
    | _ -> failwith "MSET: bad operands"

  let op_flatten env ~op ~arg_tys:_ ~raw:_ ~args =
    match (op, args) with
    | "mtotal", [ Shape.Xstruct { ext = "MSET"; bats = [ link; _v; mult ]; _ } ] ->
      let pairs = Mil.Join (Mil.Reverse link, mult) in
      let summed = Mil.GroupAggr (Bat.Sum, pairs) in
      Shape.Atomic (Mil.LeftOuterJoin (env.Extension.dom, summed, Atom.Int 0))
    | _ -> failwith "MSET: bad flattened operands"

  let materialize env ~recurse:_ ~path ~ty_args ~dom =
    let elem_base =
      match ty_args with [ Types.Atomic b ] -> b | _ -> failwith "MSET: bad type args"
    in
    let total = List.fold_left (fun acc (_, v) -> acc + List.length (mset_pairs v)) 0 dom in
    let base = env.Extension.fresh_store total in
    let next = ref base in
    let hb = Column.Builder.create Atom.TOid in
    let cb = Column.Builder.create Atom.TOid in
    let vb = Column.Builder.create elem_base in
    let nb = Column.Builder.create Atom.TInt in
    List.iter
      (fun (ctx, v) ->
        List.iter
          (fun (a, n) ->
            Column.Builder.add_oid hb !next;
            incr next;
            Column.Builder.add_oid cb ctx;
            Column.Builder.add vb a;
            Column.Builder.add_int nb n)
          (mset_pairs v))
      dom;
    let heads = Column.Builder.finish hb in
    let cat = env.Extension.catalog in
    Mirror_bat.Catalog.put cat (path ^ "#in") (Bat.make heads (Column.Builder.finish cb));
    Mirror_bat.Catalog.put cat (path ^ "#val") (Bat.make heads (Column.Builder.finish vb));
    Mirror_bat.Catalog.put cat (path ^ "#mult") (Bat.make heads (Column.Builder.finish nb));
    Shape.Xstruct
      {
        ext = name;
        meta = [];
        bats = [ Mil.Get (path ^ "#in"); Mil.Get (path ^ "#val"); Mil.Get (path ^ "#mult") ];
        subs = [];
      }

  let filter_flat ~recurse:_ ~meta:_ ~bats ~subs:_ ~survivors =
    match bats with
    | [ link; v; mult ] ->
      let link' = Mil.Reverse (Mil.Semijoin (Mil.Reverse link, survivors)) in
      Shape.Xstruct
        {
          ext = name;
          meta = [];
          bats = [ link'; Mil.Semijoin (v, link'); Mil.Semijoin (mult, link') ];
          subs = [];
        }
    | _ -> failwith "MSET: malformed bundle"

  let rebase_flat env ~recurse:_ ~meta:_ ~bats ~subs:_ ~m =
    match bats with
    | [ link; v; mult ] ->
      let j = Mil.Join (m, Mil.Reverse link) in
      let base = env.Extension.fresh 0 in
      let link' = Mil.NumberHead (j, base) in
      let m2 = Mil.NumberTail (j, base) in
      Shape.Xstruct
        {
          ext = name;
          meta = [];
          bats = [ link'; Mil.Join (m2, v); Mil.Join (m2, mult) ];
          subs = [];
        }
    | _ -> failwith "MSET: malformed bundle"

  let reify ~lookup ~recurse:_ ~meta:_ ~bats ~subs:_ ~ctx =
    match bats with
    | [ link; v; mult ] ->
      let link_b = lookup link and v_b = lookup v and mult_b = lookup mult in
      let v_of = Hashtbl.create 16 and n_of = Hashtbl.create 16 in
      Bat.iter (fun o a -> Hashtbl.replace v_of (Atom.as_oid o) a) v_b;
      Bat.iter (fun o n -> Hashtbl.replace n_of (Atom.as_oid o) (Atom.as_int n)) mult_b;
      let out = ref [] in
      Bat.iter
        (fun o c ->
          if Atom.as_oid c = ctx then
            match (Hashtbl.find_opt v_of (Atom.as_oid o), Hashtbl.find_opt n_of (Atom.as_oid o)) with
            | Some a, Some n -> out := (a, n) :: !out
            | _ -> ())
        link_b;
      mset_value (List.rev !out)
    | _ -> failwith "MSET: malformed bundle"

  let restore _env ~recurse:_ ~path ~ty_args:_ =
    Shape.Xstruct
      {
        ext = name;
        meta = [];
        bats = [ Mil.Get (path ^ "#in"); Mil.Get (path ^ "#val"); Mil.Get (path ^ "#mult") ];
        subs = [];
      }

  let foreign_ops = []
  let foreign_sigs = []
  let foreign_effects = []
  let foreign_bounds = []

  (* Sound defaults for the Moa-level analyzer: claim nothing about
     operator results or the flattened bundle. *)
  let op_envelope ~op:_ ~args:_ ~ty ~top = top ty

  let prop_flat ~ctx:_ ~prop:_ ~meta:_ ~nbats ~nsubs =
    ( List.init nbats (fun _ -> None),
      List.init nsubs (fun _ -> (Mirror_core.Moaprop.Unknown, Mirror_bat.Milprop.any_card)) )

  let bind_value ~path:_ ~recurse:_ ~ty_args:_ v = v
end

let () = Extension.register (module MSET : Extension.S)

(* {1 Fixtures} *)

let storage_with_msets () =
  let st = Storage.create () in
  let ty =
    Types.Set
      (Types.Tuple
         [
           ("name", Types.Atomic Atom.TStr);
           ("bag", Types.Xt ("MSET", [ Types.Atomic Atom.TStr ]));
         ])
  in
  ok (Storage.define st ~name:"Inventory" ty);
  let row nm pairs =
    Value.Tup
      [ ("name", Value.str nm); ("bag", mset_value (List.map (fun (s, n) -> (Atom.Str s, n)) pairs)) ]
  in
  ignore
    (ok
       (Storage.load st ~name:"Inventory"
          [
            row "alice" [ ("apple", 3); ("pear", 1) ];
            row "bob" [ ("apple", 2) ];
            row "carol" [];
          ]));
  st

(* The parser doesn't know MSET ops, so build expressions directly. *)
let mtotal_of_bag v = Expr.ExtOp { op = "mtotal"; args = [ Expr.Field (Expr.Var v, "bag") ] }

let map_mtotal =
  Expr.Map { v = "x"; body = mtotal_of_bag "x"; src = Expr.Extent "Inventory" }

let test_registered () =
  Alcotest.(check (list string)) "structures" [ "CONTREP"; "LIST"; "MSET" ]
    (Extension.registered ());
  Alcotest.(check bool) "op lookup" true (Extension.find_op "mtotal" <> None)

let test_ddl_typechecks () =
  let st = storage_with_msets () in
  match Typecheck.infer (Storage.typecheck_env st) map_mtotal with
  | Ok ty -> Alcotest.(check string) "result type" "SET< Atomic<int> >" (Types.to_string ty)
  | Error e -> Alcotest.fail (Typecheck.diag_to_string e)

let test_ddl_arity_checked () =
  let st = Storage.create () in
  match Storage.define st ~name:"Bad" (Types.Set (Types.Xt ("MSET", []))) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arity violation accepted"

let test_both_evaluators_agree () =
  let st = storage_with_msets () in
  let naive = Naive.eval st map_mtotal in
  let flat = ok (Eval.query_value st map_mtotal) in
  Alcotest.check value_testable "mtotal agree" naive flat;
  Alcotest.check value_testable "values"
    (Value.VSet [ Value.int 4; Value.int 2; Value.int 0 ])
    flat

let test_filtering_through_select () =
  let st = storage_with_msets () in
  (* select rows whose bag holds more than one distinct item, then total *)
  let sel =
    Expr.Select
      {
        v = "x";
        pred = Expr.Binop (Bat.CmpOp Bat.Gt, mtotal_of_bag "x", Expr.lit_int 2);
        src = Expr.Extent "Inventory";
      }
  in
  let q = Expr.Map { v = "y"; body = Expr.Field (Expr.Var "y", "name"); src = sel } in
  let naive = Naive.eval st q in
  let flat = ok (Eval.query_value st q) in
  Alcotest.check value_testable "filtered agree" naive flat;
  Alcotest.check value_testable "alice only" (Value.VSet [ Value.str "alice" ]) flat

let test_reify_round_trip () =
  let st = storage_with_msets () in
  let q = Expr.Map { v = "x"; body = Expr.Field (Expr.Var "x", "bag"); src = Expr.Extent "Inventory" } in
  let naive = Naive.eval st q in
  let flat = ok (Eval.query_value st q) in
  Alcotest.check value_testable "whole MSET values round-trip" naive flat

let test_join_rebasing () =
  let st = storage_with_msets () in
  (* self-join on name equality duplicates each row's bag into the pair *)
  let q =
    Expr.Map
      {
        v = "p";
        body = Expr.ExtOp { op = "mtotal"; args = [ Expr.Field (Expr.Field (Expr.Var "p", "left"), "bag") ] };
        src =
          Expr.Join
            {
              v1 = "a";
              v2 = "b";
              pred =
                Expr.Binop
                  ( Bat.CmpOp Bat.Eq,
                    Expr.Field (Expr.Var "a", "name"),
                    Expr.Field (Expr.Var "b", "name") );
              left = Expr.Extent "Inventory";
              right = Expr.Extent "Inventory";
              l1 = "left";
              l2 = "right";
            };
      }
  in
  let naive = Naive.eval st q in
  let flat = ok (Eval.query_value st q) in
  Alcotest.check value_testable "rebased MSET totals agree" naive flat

let () =
  Alcotest.run "mirror_extensibility"
    [
      ( "mset",
        [
          Alcotest.test_case "registration" `Quick test_registered;
          Alcotest.test_case "typing through DDL" `Quick test_ddl_typechecks;
          Alcotest.test_case "arity validation" `Quick test_ddl_arity_checked;
          Alcotest.test_case "evaluators agree" `Quick test_both_evaluators_agree;
          Alcotest.test_case "filtering" `Quick test_filtering_through_select;
          Alcotest.test_case "reification round-trip" `Quick test_reify_round_trip;
          Alcotest.test_case "join rebasing" `Quick test_join_rebasing;
        ] );
    ]
