(* Seeded chaos suite for the supervision fabric.

   Each schedule wraps the standard daemon set in a random mix of
   faults — flaky failure rates, outage windows that last until the
   harness heals them, and one-shot simulated process crashes — then
   drives the full ingest pipeline and checks three invariants:

   (a) accounting: every delivery enqueued for a daemon is eventually
       handled, dead-lettered with a cause, or still pending (nothing
       vanishes);
   (b) honesty: a run either reaches quiescence or reports a positive
       backlog (never "quiescent" with work outstanding);
   (c) convergence: once the faults are healed and the dead letters
       redelivered, the store equals the failure-free run's store.

   Everything is deterministic: the orchestrator runs on a virtual
   clock and every random choice comes from a seeded Prng, so any
   failing schedule is reproducible by its seed alone. *)

module Prng = Mirror_util.Prng
module Synth = Mirror_mm.Synth
module Bus = Mirror_daemon.Bus
module Daemon = Mirror_daemon.Daemon
module Store = Mirror_daemon.Store
module Standard = Mirror_daemon.Standard
module Faults = Mirror_daemon.Faults
module Orchestrator = Mirror_daemon.Orchestrator
module Deadletter = Mirror_daemon.Deadletter

let schedules = 500

(* One tiny corpus shared by every schedule: the suite exercises the
   supervision fabric, not the media pipeline, so the images are as
   small as the daemons accept. *)
let scenes = Synth.corpus (Prng.create 97) ~n:2 ~width:16 ~height:16 ~annotated_fraction:0.8 ()

let ingest orch =
  Array.iteri
    (fun i (s : Synth.scene) ->
      let url = Printf.sprintf "chaos://%d" i in
      let annotation = Option.map (String.concat " ") s.Synth.caption in
      Orchestrator.ingest_image orch ~doc:i ~url ?annotation s.Synth.image)
    scenes;
  Orchestrator.complete_collection orch

(* Run to completion, restarting after simulated process deaths
   (orchestrator state survives a Faults.Crash; re-running resumes). *)
let run_with_restarts orch =
  let rec attempt n =
    match Orchestrator.run orch with
    | report -> (report, n)
    | exception Faults.Crash _ when n < 20 -> attempt (n + 1)
  in
  attempt 0

let digest orch =
  let store = (Orchestrator.ctx orch).Daemon.store in
  let per_doc =
    List.map
      (fun doc ->
        ( doc,
          Option.map List.length (Store.segments store ~doc),
          Store.text store ~doc,
          List.sort compare (Store.visual_words store ~doc) ))
      (Store.docs store)
  in
  (per_doc, Store.clustered_spaces store, Store.thesaurus store)

let baseline =
  lazy
    (let orch = Orchestrator.create () in
     ingest orch;
     let report, _ = run_with_restarts orch in
     assert report.Orchestrator.quiescent;
     digest orch)

(* Invariant (a): per daemon, deliveries in = handled + dead + pending. *)
let check_accounting ~seed orch (report : Orchestrator.report) =
  let bus = (Orchestrator.ctx orch).Daemon.bus in
  List.iter
    (fun (s : Orchestrator.daemon_stats) ->
      let name = s.Orchestrator.name in
      let delivered = Bus.delivered_to bus ~name in
      let dead =
        List.length
          (List.filter
             (fun (e : Deadletter.entry) -> e.Deadletter.daemon = name)
             (Orchestrator.dead_letters orch))
      in
      let pending = Bus.pending_for bus ~name in
      if delivered <> s.Orchestrator.handled + dead + pending then
        Alcotest.failf
          "schedule %d: %s loses deliveries: %d in <> %d handled + %d dead + %d pending"
          seed name delivered s.Orchestrator.handled dead pending)
    report.Orchestrator.stats

(* Build one random fault schedule over the standard daemon set.
   [healed] flips to true when the harness declares the outage over;
   every fault is transient with respect to it. *)
let schedule_daemons g ~healed =
  let crashes = ref 0 in
  let daemons =
    List.map
      (fun (d : Daemon.t) ->
        match Prng.int g 5 with
        | 0 ->
          let rate = 0.2 +. Prng.float g 0.6 in
          let gd = Prng.split g in
          Faults.switched (fun () -> (not !healed) && Prng.float gd 1.0 < rate) d
        | 1 -> Faults.switched (fun () -> not !healed) d
        | 2 when !crashes < 2 ->
          (* one-shot simulated process death partway through *)
          incr crashes;
          Faults.crashing ~at_call:(1 + Prng.int g 3) d
        | _ -> d)
      (Standard.all ())
  in
  daemons

let run_schedule seed =
  let g = Prng.create (0x5EED + (seed * 7919)) in
  let healed = ref false in
  let orch = Orchestrator.create ~daemons:(schedule_daemons g ~healed) () in
  ingest orch;
  let report, restarts = run_with_restarts orch in
  (* (b) honesty *)
  if report.Orchestrator.quiescent && report.Orchestrator.pending > 0 then
    Alcotest.failf "schedule %d: claims quiescence with %d pending" seed
      report.Orchestrator.pending;
  if (not report.Orchestrator.quiescent) && report.Orchestrator.pending = 0 then
    Alcotest.failf "schedule %d: claims a backlog it does not have" seed;
  (* (a) accounting after the faulted run *)
  check_accounting ~seed orch report;
  (* heal, redeliver, and drain to convergence *)
  healed := true;
  let rec recover n =
    ignore (Orchestrator.redeliver orch);
    let r, _ = run_with_restarts orch in
    if
      n < 10
      && ((not r.Orchestrator.quiescent) || Orchestrator.dead_letters orch <> [])
    then recover (n + 1)
    else r
  in
  let final = recover 0 in
  if not final.Orchestrator.quiescent then
    Alcotest.failf "schedule %d: never quiesced after healing" seed;
  if Orchestrator.dead_letters orch <> [] then
    Alcotest.failf "schedule %d: dead letters survived redelivery" seed;
  check_accounting ~seed orch final;
  (* (c) convergence *)
  if digest orch <> Lazy.force baseline then
    Alcotest.failf "schedule %d: store did not converge to the failure-free state" seed;
  ignore restarts

let test_chaos_schedules () =
  for seed = 0 to schedules - 1 do
    run_schedule seed
  done

(* A schedule with no faults at all must look exactly like the
   baseline — guards the harness itself. *)
let test_chaos_null_schedule () =
  let orch = Orchestrator.create () in
  ingest orch;
  let report, restarts = run_with_restarts orch in
  Alcotest.(check int) "no restarts" 0 restarts;
  Alcotest.(check bool) "quiescent" true report.Orchestrator.quiescent;
  Alcotest.(check int) "no dead letters" 0 (List.length report.Orchestrator.dead_letters);
  Alcotest.(check bool) "digest matches baseline" true (digest orch = Lazy.force baseline)

let () =
  Alcotest.run "mirror_chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "null schedule" `Quick test_chaos_null_schedule;
          Alcotest.test_case
            (Printf.sprintf "%d seeded fault schedules" schedules)
            `Quick test_chaos_schedules;
        ] );
    ]
