(* Tests for the Moa object algebra and the Mirror facade (mirror_core). *)

module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module Types = Mirror_core.Types
module Value = Mirror_core.Value
module Expr = Mirror_core.Expr
module Typecheck = Mirror_core.Typecheck
module Storage = Mirror_core.Storage
module Naive = Mirror_core.Naive
module Flatten = Mirror_core.Flatten
module Optimize = Mirror_core.Optimize
module Eval = Mirror_core.Eval
module Parser = Mirror_core.Parser
module Extension = Mirror_core.Extension
module Bootstrap = Mirror_core.Bootstrap
module Mirror = Mirror_core.Mirror
module Feedback = Mirror_core.Feedback
module Prng = Mirror_util.Prng
module Synth = Mirror_mm.Synth

let () = Bootstrap.ensure ()

let value_testable = Alcotest.testable Value.pp Value.equal

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* {1 Fixtures} *)

(* R : SET< TUPLE< a:int, b:int, s:SET<int>, c:CONTREP<str> > > *)
let r_type =
  Types.Set
    (Types.Tuple
       [
         ("a", Types.Atomic Atom.TInt);
         ("b", Types.Atomic Atom.TInt);
         ("s", Types.Set (Types.Atomic Atom.TInt));
         ("c", Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
       ])

let row a b s c =
  Value.Tup
    [
      ("a", Value.int a);
      ("b", Value.int b);
      ("s", Value.VSet (List.map Value.int s));
      ("c", Value.contrep c);
    ]

let default_rows =
  [
    row 1 2 [ 1; 2; 3 ] [ ("cat", 2.0); ("stripe", 1.0) ];
    row 2 2 [ 4 ] [ ("dog", 1.0) ];
    row (-1) 0 [] [];
    row 2 5 [ 2; 2 ] [ ("cat", 1.0); ("dog", 3.0) ];
  ]

let storage_with rows =
  let st = Storage.create () in
  ok (Storage.define st ~name:"R" r_type);
  ignore (ok (Storage.load st ~name:"R" rows));
  st

(* The query battery both evaluators must agree on. *)
let battery =
  [
    "map[THIS.a](R)";
    "map[THIS.a + THIS.b](R)";
    "map[THIS.a * 2 - 1](R)";
    "select[THIS.a > 0](R)";
    "select[THIS.a = 2 and THIS.b >= 2](R)";
    "select[not (THIS.a > 0)](R)";
    "map[sum(THIS.s)](R)";
    "map[count(THIS.s)](R)";
    "map[max(THIS.s)](R)";
    "map[avg(THIS.s)](R)";
    "select[exists(THIS.s)](R)";
    "map[tuple(x: THIS.a, y: count(THIS.s))](R)";
    "sum(map[THIS.a](R))";
    "count(R)";
    "map[select[THIS > 1](THIS.s)](R)";
    "map[map[THIS + 1](THIS.s)](R)";
    "join[THIS1.a = THIS2.b](R, R)";
    "join[THIS1.a < THIS2.a; x, y](R, R)";
    "semijoin[THIS1.a = THIS2.a and THIS1.b < THIS2.b](R, R)";
    "map[union(THIS.s, {1, 9})](R)";
    "map[diff(THIS.s, {2})](R)";
    "map[inter(THIS.s, {2, 4})](R)";
    "map[in(THIS.a, THIS.s)](R)";
    "flatten(map[THIS.s](R))";
    "nest[a, grp](map[tuple(a: THIS.a, b: THIS.b)](R))";
    "unnest[s](map[tuple(a: THIS.a, s: THIS.s)](R))";
    "map[count(unnest[s](map[tuple(x: THIS.a, s: THIS.s)](R)))](R)";
    (* context-independent sets consumed per context must broadcast *)
    "map[count(R)](R)";
    "map[THIS.a + sum(map[THIS.b](R))](R)";
    "map[exists(select[THIS.a > 90](R))](R)";
    "map[count(select[THIS.b = 2](R))](select[THIS.a > 0](R))";
    "unnest[items](map[tuple(k: THIS.a, items: map[tuple(v: THIS)](THIS.s))](R))";
    "map[getBL(THIS.c, {'cat', 'zebra'}, stats)](R)";
    "map[sum(getBL(THIS.c, {'cat'}))](R)";
    "map[sum(getBL(THIS.c, {'cat', 'dog', 'stripe'}))](R)";
    "map[terms(THIS.c)](R)";
    "toset(take(tolist_desc(map[tuple(a: THIS.a, b: THIS.b)](R), 'b'), 2))";
    "take(tolist(map[THIS.a](R), ''), 3)";
    "map[THIS.a >= 2 or THIS.b = 0](R)";
    "select[in(2, THIS.s)](R)";
    "1 + 2 * 3";
    "map[count(distinct(THIS.s))](R)";
    "map[min2(THIS.a, THIS.b) + max2(THIS.a, 1)](R)";
    "map[pow(THIS.b, 2)](R)";
    (* explicit binder names reach outer scopes *)
    "map[x: sum(map[y: y + x.a](x.s))](R)";
    "map[x: count(select[y: y > x.b](x.s))](R)";
    "count(select[getBLnet(THIS.c, '#and( cat dog )') > 0.2](R))";
    (* correlated subqueries: outer variables inside inner binders *)
    "map[x: count(select[y: y.a = x.a](R))](R)";
    "map[x: sum(getBL(x.c, terms(x.c)))](select[THIS.a > 0](R))";
    "map[x: exists(select[y: in(y, x.s)]({1, 4}))](R)";
    "map[x: count(join[y, z: y + z = x.a](x.s, x.s))](R)";
    "distinct(flatten(map[THIS.s](R)))";
    "map[tf(THIS.c, 'cat')](R)";
    "map[clen(THIS.c)](R)";
    "map[0.4 + 0.6 * (tf(THIS.c,'cat') / (tf(THIS.c,'cat') + 0.5 + 1.5 * clen(THIS.c)))](R)";
    "sum(map[sum(getBL(THIS.c, {'cat'}))](R))";
    (* CONTREP after selection exercises candidate-list filtering *)
    "map[terms(THIS.c)](select[THIS.a > 0](R))";
    "map[sum(getBL(THIS.c, {'cat', 'dog'}))](select[THIS.a > 0](R))";
    "flatten(map[terms(THIS.c)](select[THIS.b >= 2](R)))";
    "map[clen(THIS.c)](select[THIS.a > 0](R))";
    "map[tf(THIS.c, 'dog')](select[THIS.a >= 2](R))";
    (* CONTREP through joins exercises rebasing *)
    "map[sum(getBL(THIS.left.c, {'cat'}))](join[THIS1.a = THIS2.a](R, R))";
    (* context-dependent queries: each document queried with its own
       term set (the flattened query link is genuinely per-context) *)
    "map[sum(getBL(THIS.c, terms(THIS.c)))](R)";
    "map[sum(getBL(THIS.c, union(terms(THIS.c), {'zebra'})))](R)";
    (* full inference-network operator trees *)
    "map[getBLnet(THIS.c, '#sum( cat dog )')](R)";
    "map[getBLnet(THIS.c, '#wsum( cat^3 #and( dog stripe ) )')](R)";
    "map[getBLnet(THIS.c, '#or( cat #not( dog ) )')](select[THIS.a > 0](R))";
    (* joins nested inside map exercise the per-context equi-join
       (candidate pairs must not leak across contexts) *)
    "map[count(join[THIS1 = THIS2](THIS.s, THIS.s))](R)";
    "map[count(semijoin[THIS1 = THIS2 + 1](THIS.s, THIS.s))](R)";
    "map[count(join[THIS1 < THIS2](THIS.s, THIS.s))](R)";
  ]

let parse_q src = ok (Parser.parse_expr src)

let check_equivalence st src =
  let expr = parse_q src in
  let naive = Naive.eval st expr in
  List.iter
    (fun (optimize, cse, label) ->
      match Eval.query ~optimize ~cse st expr with
      | Error e -> Alcotest.failf "%s [%s]: %s" src label e
      | Ok report ->
        Alcotest.check value_testable (Printf.sprintf "%s [%s]" src label) naive
          report.Eval.value)
    [ (false, true, "plain"); (true, true, "optimized"); (false, false, "no-cse") ]

(* {1 Types and values} *)

let test_types_pp_and_equal () =
  Alcotest.(check string) "pp"
    "SET< TUPLE< Atomic<str>: source, CONTREP< Atomic<str> >: annotation > >"
    (Types.to_string
       (Types.Set
          (Types.Tuple
             [
               ("source", Types.Atomic Atom.TStr);
               ("annotation", Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
             ])));
  Alcotest.(check bool) "equal" true (Types.equal r_type r_type);
  Alcotest.(check bool) "not equal" false (Types.equal r_type (Types.Set (Types.Atomic Atom.TInt)))

let test_types_well_labelled () =
  Alcotest.(check bool) "ok" true (Types.well_labelled r_type);
  Alcotest.(check bool) "dup labels" false
    (Types.well_labelled
       (Types.Tuple [ ("x", Types.Atomic Atom.TInt); ("x", Types.Atomic Atom.TInt) ]))

let test_value_set_semantics () =
  let a = Value.VSet [ Value.int 1; Value.int 2 ] in
  let b = Value.VSet [ Value.int 2; Value.int 1 ] in
  Alcotest.check value_testable "order-insensitive" a b;
  Alcotest.(check bool) "multiset: duplicates matter" false
    (Value.equal (Value.VSet [ Value.int 1; Value.int 1 ]) (Value.VSet [ Value.int 1 ]))

let test_value_contrep_helpers () =
  let c = Value.contrep [ ("cat", 1.0); ("cat", 2.0); ("dog", 1.0) ] in
  Alcotest.(check (list (pair string (float 1e-9)))) "merged bag"
    [ ("cat", 3.0); ("dog", 1.0) ]
    (Value.contrep_bag c);
  Alcotest.(check (option string)) "no space" None (Value.contrep_space c);
  let bound = Value.contrep ~space:"sp" [ ("x", 1.0) ] in
  Alcotest.(check (option string)) "space" (Some "sp") (Value.contrep_space bound)

(* {1 Typecheck} *)

let tc_env st = Storage.typecheck_env st

let test_typecheck_battery () =
  let st = storage_with default_rows in
  List.iter
    (fun src ->
      match Typecheck.infer (tc_env st) (parse_q src) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" src (Typecheck.diag_to_string e))
    battery

let test_typecheck_errors () =
  let st = storage_with default_rows in
  let bad msg src =
    match Typecheck.infer (tc_env st) (parse_q src) with
    | Ok ty -> Alcotest.failf "%s should not typecheck (got %s)" msg (Types.to_string ty)
    | Error _ -> ()
  in
  bad "unknown extent" "map[THIS](Nope)";
  bad "field on non-tuple" "map[THIS.a](map[THIS.a](R))";
  bad "non-bool predicate" "select[THIS.a](R)";
  bad "aggregate of tuples" "sum(R)";
  bad "arithmetic on sets" "map[THIS.s + 1](R)";
  bad "member type mismatch" "map[in('x', THIS.s)](R)";
  bad "getBL on non-contrep" "map[getBL(THIS.s, {'x'})](R)";
  bad "unnest label clash" "unnest[grp](nest[a, grp](map[tuple(a: THIS.a, b: THIS.b)](R)))";
  bad "unnest non-set field" "unnest[a](map[tuple(a: THIS.a)](R))";
  match
    Typecheck.infer (tc_env st) (Expr.ExtOp { op = "frobnicate"; args = [ Expr.Extent "R" ] })
  with
  | Ok _ -> Alcotest.fail "unknown operator should not typecheck"
  | Error _ -> ()

let test_typecheck_results () =
  let st = storage_with default_rows in
  let ty src =
    Types.to_string
      (ok
         (Result.map_error Typecheck.diag_to_string
            (Typecheck.infer (tc_env st) (parse_q src))))
  in
  Alcotest.(check string) "map" "SET< Atomic<int> >" (ty "map[THIS.a](R)");
  Alcotest.(check string) "getbl" "SET< SET< Atomic<flt> > >"
    (ty "map[getBL(THIS.c, {'x'})](R)");
  Alcotest.(check string) "count" "Atomic<int>" (ty "count(R)");
  Alcotest.(check string) "tolist" "LIST< Atomic<int> >" (ty "tolist(map[THIS.a](R), '')")

(* {1 Parser} *)

let test_parser_paper_schema () =
  let src =
    "define TraditionalImgLib as SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation \
     > >;"
  in
  match ok (Parser.parse_program src) with
  | [ Parser.Define ("TraditionalImgLib", ty) ] ->
    Alcotest.(check bool) "type" true
      (Types.equal ty
         (Types.Set
            (Types.Tuple
               [
                 ("source", Types.Atomic Atom.TStr);
                 ("annotation", Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
               ])))
  | _ -> Alcotest.fail "unexpected parse"

let test_parser_paper_query () =
  (* The literal §3 query text. *)
  let src =
    "map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));"
  in
  let bindings = [ ("query", Expr.lit_str_set [ "cat" ]) ] in
  match ok (Parser.parse_program ~bindings src) with
  | [ Parser.Query (Expr.Map { body = Expr.Aggr (Bat.Sum, Expr.Var v1); v; src = inner }) ]
    -> (
    Alcotest.(check string) "THIS resolves to the outer binder" v v1;
    match inner with
    | Expr.Map { body = Expr.ExtOp { op = "getBL"; args = [ _; Expr.Lit _ ] }; _ } -> ()
    | _ -> Alcotest.fail "inner map shape")
  | _ -> Alcotest.fail "outer shape"

let test_parser_this_nesting () =
  match ok (Parser.parse_expr "map[map[THIS](THIS.s)](R)") with
  | Expr.Map { v = outer; body = Expr.Map { v = inner; body = Expr.Var b; src = Expr.Field (Expr.Var f, "s") }; _ }
    ->
    Alcotest.(check string) "inner THIS" inner b;
    Alcotest.(check string) "outer THIS in src" outer f
  | _ -> Alcotest.fail "shape"

let test_parser_errors () =
  let bad src = match Parser.parse_expr src with Error _ -> () | Ok _ -> Alcotest.failf "%s should fail" src in
  bad "map[THIS](";
  bad "THIS";
  bad "select[x](R) extra";
  bad "{1, 'a'}";
  bad "{}";
  bad "getBL(a, b, 1 + 2)";
  bad "tuple(a 1)"

let test_parser_literals () =
  (match ok (Parser.parse_expr "{1, 2, 3}") with
  | Expr.Lit (Value.VSet items, Types.Set (Types.Atomic Atom.TInt)) ->
    Alcotest.(check int) "3 items" 3 (List.length items)
  | _ -> Alcotest.fail "int set");
  (match ok (Parser.parse_expr "-5") with
  | Expr.Lit (Value.Atom (Atom.Int -5), _) -> ()
  | _ -> Alcotest.fail "negative int");
  match ok (Parser.parse_expr "'hello'") with
  | Expr.Lit (Value.Atom (Atom.Str "hello"), _) -> ()
  | _ -> Alcotest.fail "string"

let test_parser_let_bindings () =
  let m = Mirror.create () in
  ignore (ok (Mirror.exec_program m "define T as SET< Atomic<int> >;"));
  ignore (ok (Mirror.load m ~name:"T" [ Value.int 1; Value.int 5; Value.int 9 ]));
  let outcomes =
    ok (Mirror.exec_program m "let big = select[THIS > 3](T); count(big); sum(big);")
  in
  (match outcomes with
  | [ Mirror.Bound "big"; Mirror.Evaluated c; Mirror.Evaluated s ] ->
    Alcotest.check value_testable "count" (Value.int 2) c;
    Alcotest.check value_testable "sum" (Value.int 14) s
  | _ -> Alcotest.fail "unexpected outcomes");
  (* let is view semantics: rebinding the extent changes the view *)
  ignore (ok (Mirror.load m ~name:"T" [ Value.int 100 ]));
  match ok (Mirror.exec_program m "let big = select[THIS > 3](T); count(big);") with
  | [ _; Mirror.Evaluated c ] -> Alcotest.check value_testable "fresh data" (Value.int 1) c
  | _ -> Alcotest.fail "unexpected outcomes"

let test_parser_type_round_trip () =
  (* Types print in a syntax the parser accepts (needed by Persist) *)
  List.iter
    (fun ty ->
      let printed = Types.to_string ty in
      match Parser.parse_type printed with
      | Ok back ->
        Alcotest.(check bool) ("round trip: " ^ printed) true (Types.equal ty back)
      | Error e -> Alcotest.failf "%s: %s" printed e)
    [
      r_type;
      Types.Set (Types.Xt ("LIST", [ Types.Tuple [ ("a", Types.Atomic Atom.TInt) ] ]));
      Types.Set (Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
      Types.Set (Types.Tuple [ ("b", Types.Atomic Atom.TBool); ("f", Types.Atomic Atom.TFlt) ]);
    ]

(* {1 Optimizer} *)

let test_optimize_fusion () =
  let e = parse_q "map[THIS + 1](map[THIS * 2](map[THIS.a](R)))" in
  let e', trace = Optimize.rewrite_trace e in
  Alcotest.(check bool) "fired fusion" true (List.mem "map-map-fusion" trace);
  match e' with
  | Expr.Map { src = Expr.Extent "R"; _ } -> ()
  | _ -> Alcotest.failf "not fully fused: %s" (Expr.to_string e')

let test_optimize_select_fusion () =
  let e = parse_q "select[THIS.a > 0](select[THIS.b > 0](R))" in
  let e', trace = Optimize.rewrite_trace e in
  Alcotest.(check bool) "fired" true (List.mem "select-select-fusion" trace);
  match e' with
  | Expr.Select { src = Expr.Extent "R"; _ } -> ()
  | _ -> Alcotest.fail "not fused"

let test_optimize_constant_folding () =
  let e = parse_q "1 + 2 * 3" in
  match Optimize.rewrite e with
  | Expr.Lit (Value.Atom (Atom.Int 7), _) -> ()
  | other -> Alcotest.failf "got %s" (Expr.to_string other)

let test_optimize_more_rules () =
  let fired src rule =
    let _, trace = Optimize.rewrite_trace (parse_q src) in
    Alcotest.(check bool) (rule ^ " fires on " ^ src) true (List.mem rule trace)
  in
  fired "exists(map[THIS.a](R))" "exists-ignores-map";
  fired "count(map[THIS.a + 1](R))" "count-ignores-map";
  fired "select[THIS > 0](map[THIS.a](R))" "select-pushdown";
  fired "map[THIS.a](select[true](R))" "select-true";
  (match Optimize.rewrite (parse_q "map[THIS](R)") with
  | Expr.Extent "R" -> ()
  | other -> Alcotest.failf "identity map not removed: %s" (Expr.to_string other));
  (* pushdown must NOT fire when the map body is expensive *)
  let _, trace =
    Optimize.rewrite_trace
      (parse_q "select[THIS > 0.5](map[sum(getBL(THIS.c, {'cat'}))](R))")
  in
  Alcotest.(check bool) "no pushdown of getBL body" false (List.mem "select-pushdown" trace)

let test_optimize_preserves_semantics () =
  let st = storage_with default_rows in
  List.iter
    (fun src ->
      let e = parse_q src in
      let plain = Naive.eval st e in
      let opt = Naive.eval st (Optimize.rewrite e) in
      Alcotest.check value_testable ("optimize preserves " ^ src) plain opt)
    battery

let test_optimize_subst_capture () =
  (* subst must not capture: replacing y with (free var z named like a binder) *)
  let e =
    Expr.Map { v = "z"; body = Expr.Binop (Bat.Add, Expr.Var "z", Expr.Var "y"); src = Expr.Var "w" }
  in
  let substituted = Optimize.subst e "y" (Expr.Var "z") in
  match substituted with
  | Expr.Map { v; body = Expr.Binop (_, Expr.Var inner, Expr.Var replaced); _ } ->
    Alcotest.(check bool) "binder renamed" true (v <> "z");
    Alcotest.(check string) "bound occurrence follows binder" v inner;
    Alcotest.(check string) "substituted variable survives" "z" replaced
  | _ -> Alcotest.fail "shape"

(* {1 Storage} *)

let test_storage_define_errors () =
  let st = Storage.create () in
  (match Storage.define st ~name:"X" (Types.Atomic Atom.TInt) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-set extent accepted");
  ok (Storage.define st ~name:"X" (Types.Set (Types.Atomic Atom.TInt)));
  (match Storage.define st ~name:"X" (Types.Set (Types.Atomic Atom.TInt)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "redefinition accepted");
  match Storage.define st ~name:"Y" (Types.Set (Types.Xt ("NOPE", []))) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown structure accepted"

let test_storage_load_type_check () =
  let st = Storage.create () in
  ok (Storage.define st ~name:"X" (Types.Set (Types.Atomic Atom.TInt)));
  match Storage.load st ~name:"X" [ Value.str "oops" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-typed row accepted"

let test_storage_reload_replaces () =
  let st = storage_with default_rows in
  let q = parse_q "count(R)" in
  Alcotest.check value_testable "4 rows" (Value.int 4) (ok (Eval.query_value st q));
  ignore (ok (Storage.load st ~name:"R" [ row 7 7 [] [ ("cat", 1.0) ] ]));
  Alcotest.check value_testable "1 row after reload" (Value.int 1) (ok (Eval.query_value st q));
  Alcotest.check value_testable "naive agrees" (Value.int 1) (Naive.eval st q)

let test_storage_space_registered () =
  let st = storage_with default_rows in
  Alcotest.(check bool) "contrep space exists" true
    (Storage.space_find st "R#el/c" <> None);
  let sp = Option.get (Storage.space_find st "R#el/c") in
  Alcotest.(check int) "ndocs = rows" 4 (Mirror_ir.Space.ndocs sp)

let test_storage_insert_delete () =
  let st = storage_with default_rows in
  let count () =
    match ok (Eval.query_value st (parse_q "count(R)")) with
    | Value.Atom (Atom.Int n) -> n
    | _ -> Alcotest.fail "count"
  in
  Alcotest.(check int) "initial" 4 (count ());
  ignore (ok (Storage.insert st ~name:"R" [ row 9 9 [ 1 ] [ ("new", 1.0) ] ]));
  Alcotest.(check int) "after insert" 5 (count ());
  (* statistics follow the data: the new term is known to the space *)
  Alcotest.check value_testable "new term scores above default"
    (Value.bool true)
    (ok
       (Eval.query_value st
          (parse_q "exists(select[sum(getBL(THIS.c, {'new'})) > 0.4](R))")));
  let removed = ok (Storage.delete_where st ~name:"R" (fun r ->
      Atom.as_int (Value.as_atom (Value.field_exn r "a")) < 0)) in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check int) "after delete" 4 (count ());
  (* both evaluators still agree after DML *)
  check_equivalence st "map[sum(getBL(THIS.c, {'cat', 'new'}))](R)"

let test_program_dml () =
  let m = Mirror.create () in
  let outcomes =
    ok
      (Mirror.exec_program m
         "define T as SET< TUPLE< Atomic<str>: k, Atomic<int>: n > >;\n\
          insert into T tuple(k: 'x', n: 1);\n\
          insert into T tuple(k: 'y', n: 2);\n\
          delete from T where THIS.n = 1;\n\
          map[THIS.k](T);")
  in
  match outcomes with
  | [ Mirror.Defined _; Mirror.Inserted _; Mirror.Inserted _; Mirror.Deleted (_, 1); Mirror.Evaluated v ] ->
    Alcotest.check value_testable "survivor" (Value.VSet [ Value.str "y" ]) v
  | _ -> Alcotest.fail "unexpected outcomes"

let test_dml_errors () =
  let m = Mirror.create () in
  ignore (ok (Mirror.exec_program m "define T as SET< Atomic<int> >;"));
  (match Mirror.exec_program m "insert into T 'wrong type';" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error not caught");
  match Mirror.exec_program m "insert into Missing 1;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown extent not caught"

(* {1 Equivalence of the two evaluators} *)

let test_battery_equivalence () =
  let st = storage_with default_rows in
  List.iter (check_equivalence st) battery

let test_battery_equivalence_empty () =
  let st = storage_with [] in
  List.iter (check_equivalence st) battery

let test_battery_equivalence_single () =
  let st = storage_with [ row 0 0 [ 5 ] [ ("stripe", 4.0) ] ] in
  List.iter (check_equivalence st) battery

let test_pp_parse_round_trip () =
  (* pretty-printed expressions re-parse to the same AST *)
  List.iter
    (fun src ->
      let e = parse_q src in
      let printed = Expr.to_string e in
      match Parser.parse_expr printed with
      | Ok back ->
        if back <> e then
          Alcotest.failf "round trip changed %s:\n  printed %s\n  reparsed %s" src printed
            (Expr.to_string back)
      | Error err -> Alcotest.failf "printed form of %s does not parse (%s): %s" src err printed)
    battery

let test_pp_parse_named_join () =
  let e =
    Expr.Join
      {
        v1 = "a";
        v2 = "b";
        pred =
          Expr.Binop
            (Bat.CmpOp Bat.Eq, Expr.Field (Expr.Var "a", "a"), Expr.Field (Expr.Var "b", "b"));
        left = Expr.Extent "R";
        right = Expr.Extent "R";
        l1 = "l";
        l2 = "r";
      }
  in
  match Parser.parse_expr (Expr.to_string e) with
  | Ok back -> Alcotest.(check bool) "identical AST" true (back = e)
  | Error err -> Alcotest.fail err

(* Random-data equivalence property. *)
let gen_rows =
  let open QCheck.Gen in
  let term = oneofl [ "cat"; "dog"; "stripe"; "sky" ] in
  let bag = list_size (int_range 0 3) (pair term (map Float.of_int (int_range 1 3))) in
  let row_gen =
    map
      (fun (a, b, s, c) ->
        (* contrep merges duplicate terms itself *)
        row a b s c)
      (quad (int_range (-3) 3) (int_range 0 3) (list_size (int_range 0 4) (int_range 0 5)) bag)
  in
  list_size (int_range 0 7) row_gen

(* Random well-typed expressions over R, generated directly against the
   fixture schema.  The generator tracks the binders in scope so it can
   produce correlated uses; depth is kept small to stay fast. *)
module Gen_expr = struct
  open QCheck.Gen

  (* environment: binders in scope, each either a row of R or an int *)
  let rows env = List.filter_map (fun (v, k) -> if k = `Row then Some v else None) env
  let ints env = List.filter_map (fun (v, k) -> if k = `Int then Some v else None) env
  let fresh env = Printf.sprintf "g%d" (List.length env)

  let leaf_int env =
    let choices =
      (Expr.lit_int 0 :: List.map (fun v -> Expr.Var v) (ints env))
      @ List.concat_map
          (fun v -> [ Expr.Field (Expr.Var v, "a"); Expr.Field (Expr.Var v, "b") ])
          (rows env)
    in
    let* base = oneofl choices in
    if base = Expr.lit_int 0 then map Expr.lit_int (int_range (-3) 3) else return base

  let rec atomic_int env depth =
    if depth = 0 then leaf_int env
    else
      frequency
        [
          (3, leaf_int env);
          ( 2,
            let* op = oneofl [ Bat.Add; Bat.Sub; Bat.Mul ] in
            let* a = atomic_int env (depth - 1) in
            let* b = atomic_int env (depth - 1) in
            return (Expr.Binop (op, a, b)) );
          ( 2,
            let* s = set_int env (depth - 1) in
            let* a = oneofl [ Bat.Sum; Bat.Count; Bat.Max; Bat.Min ] in
            return (Expr.Aggr (a, s)) );
        ]

  and pred env depth =
    frequency
      [
        ( 3,
          let* cmp = oneofl [ Bat.Eq; Bat.Ne; Bat.Lt; Bat.Ge ] in
          let* a = atomic_int env depth in
          let* b = atomic_int env depth in
          return (Expr.Binop (Bat.CmpOp cmp, a, b)) );
        ( 1,
          let* s = set_int env (max 0 (depth - 1)) in
          return (Expr.Exists s) );
        ( 1,
          let* x = atomic_int env depth in
          let* s = set_int env (max 0 (depth - 1)) in
          return (Expr.Member (x, s)) );
      ]

  and set_rows env depth =
    if depth = 0 then return (Expr.Extent "R")
    else
      frequency
        [
          (2, return (Expr.Extent "R"));
          ( 2,
            let v = fresh env in
            let* p = pred ((v, `Row) :: env) (depth - 1) in
            let* src = set_rows env (depth - 1) in
            return (Expr.Select { v; pred = p; src }) );
        ]

  and set_int env depth =
    let row_fields =
      List.map (fun v -> return (Expr.Field (Expr.Var v, "s"))) (rows env)
    in
    let base =
      ( 2,
        let v = fresh env in
        let* body = atomic_int ((v, `Row) :: env) (max 0 (depth - 1)) in
        let* src = set_rows env (max 0 (depth - 1)) in
        return (Expr.Map { v; body; src }) )
    in
    if depth = 0 then
      match row_fields with
      | [] -> snd base
      | _ -> oneof row_fields
    else
      frequency
        ([
           base;
           ( 1,
             let v = fresh env in
             let* p = pred ((v, `Int) :: env) (depth - 1) in
             let* src = set_int env (depth - 1) in
             return (Expr.Select { v; pred = p; src }) );
           ( 1,
             let* a = set_int env (depth - 1) in
             let* b = set_int env (depth - 1) in
             oneofl [ Expr.Union (a, b); Expr.Diff (a, b); Expr.Inter (a, b) ] );
         ]
        @ List.map (fun g -> (2, g)) row_fields)

  (* top-level query: a set of ints or a single atomic *)
  let top =
    frequency
      [
        (3, set_int [] 2);
        ( 1,
          let* body = atomic_int [] 2 in
          return body );
      ]
end

let prop_random_exprs =
  QCheck.Test.make ~name:"random well-typed expressions: naive = flattened" ~count:200
    (QCheck.make ~print:Expr.to_string Gen_expr.top)
    (fun expr ->
      let st = storage_with default_rows in
      match Typecheck.infer (tc_env st) expr with
      | Error e ->
        QCheck.Test.fail_reportf "generator produced ill-typed expr: %s"
          (Typecheck.diag_to_string e)
      | Ok _ -> (
        let naive = Naive.eval st expr in
        match Eval.query_value st expr with
        | Ok flat -> Value.equal naive flat
        | Error e -> QCheck.Test.fail_reportf "flattened failed: %s" e))

let prop_equivalence =
  QCheck.Test.make ~name:"flattened execution = naive semantics (random data)" ~count:25
    (QCheck.make gen_rows) (fun rows ->
      let st = storage_with rows in
      List.for_all
        (fun src ->
          let expr = parse_q src in
          let naive = Naive.eval st expr in
          match Eval.query_value st expr with
          | Ok flat -> Value.equal naive flat
          | Error e -> QCheck.Test.fail_reportf "%s: %s" src e)
        battery)

(* {1 Eval reports and explain} *)

let test_eval_report () =
  let st = storage_with default_rows in
  let report = ok (Eval.query st (parse_q "map[sum(getBL(THIS.c, {'cat'}))](R)")) in
  Alcotest.(check bool) "evaluated some operators" true (report.Eval.evaluated > 0);
  Alcotest.(check bool) "plan has bats" true (report.Eval.plan_bats >= 2);
  Alcotest.(check string) "type" "SET< Atomic<flt> >" (Types.to_string report.Eval.result_type)

let test_eval_cse_effect () =
  let st = storage_with default_rows in
  (* same getBL twice: CSE should reduce evaluated operator count *)
  let e = parse_q "map[sum(getBL(THIS.c, {'cat'})) + sum(getBL(THIS.c, {'cat'}))](R)" in
  let with_cse = ok (Eval.query ~cse:true ~optimize:false st e) in
  let without = ok (Eval.query ~cse:false ~optimize:false st e) in
  Alcotest.(check bool) "cse evaluates fewer operators" true
    (with_cse.Eval.evaluated < without.Eval.evaluated);
  Alcotest.check value_testable "same result" with_cse.Eval.value without.Eval.value

let test_eval_explain () =
  let st = storage_with default_rows in
  let plan = ok (Eval.explain st (parse_q "select[THIS.a > 0](R)")) in
  Alcotest.(check bool) "mentions semijoin" true
    (Mirror_util.Stringx.split_on (fun c -> c = '\n') plan
    |> List.exists (fun l ->
           Mirror_util.Stringx.starts_with ~prefix:"semijoin" (String.trim l)))

let test_eval_type_error_reported () =
  let st = storage_with default_rows in
  match Eval.query st (parse_q "sum(R)") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected type error"

(* {1 Extension registry} *)

let test_extension_registry () =
  Alcotest.(check (list string)) "registered" [ "CONTREP"; "LIST" ] (Extension.registered ());
  Alcotest.(check bool) "find op" true (Extension.find_op "getBL" <> None);
  Alcotest.(check bool) "find structure" true (Extension.find "LIST" <> None);
  Alcotest.(check bool) "unknown" true (Extension.find "NOPE" = None)

(* {1 The Mirror facade (§5 demo)} *)

let demo_mirror () =
  let g = Prng.create 2025 in
  let scenes = Synth.corpus g ~n:10 ~width:32 ~height:32 ~annotated_fraction:0.8 () in
  let m = Mirror.create () in
  let report = ok (Mirror.build_image_library m ~scenes ()) in
  (m, scenes, report)

let test_mirror_program () =
  let m = Mirror.create () in
  let outcomes =
    ok
      (Mirror.exec_program m
         "define Lib as SET< TUPLE< Atomic<str>: name, Atomic<int>: n > >;")
  in
  Alcotest.(check int) "one outcome" 1 (List.length outcomes);
  ignore
    (ok
       (Mirror.load m ~name:"Lib"
          [
            Value.Tup [ ("name", Value.str "x"); ("n", Value.int 1) ];
            Value.Tup [ ("name", Value.str "y"); ("n", Value.int 2) ];
          ]));
  let v = ok (Mirror.run_query m "sum(map[THIS.n](Lib))") in
  Alcotest.check value_testable "sum" (Value.int 3) v

let test_mirror_demo_pipeline () =
  let m, scenes, report = demo_mirror () in
  Alcotest.(check int) "no dead letters" 0 (List.length report.Mirror_daemon.Orchestrator.dead_letters);
  Alcotest.(check int) "library loaded" (Array.length scenes) (Mirror.library_size m);
  (* the paper's two extents exist and are queryable *)
  let v = ok (Mirror.run_query m "count(ImageLibraryInternal)") in
  Alcotest.check value_testable "internal rows" (Value.int (Array.length scenes)) v;
  let v = ok (Mirror.run_query m "count(ImageLibrary)") in
  Alcotest.check value_testable "raw rows" (Value.int (Array.length scenes)) v

let test_mirror_paper_query_runs () =
  let m, _, _ = demo_mirror () in
  let bindings = [ ("query", Expr.lit_str_set [ "stripe" ]) ] in
  let v =
    ok
      (Mirror.run_query m ~bindings
         "map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( ImageLibraryInternal ))")
  in
  match v with
  | Value.VSet scores ->
    Alcotest.(check int) "one score per image" (Mirror.library_size m) (List.length scores);
    List.iter
      (fun s ->
        let f = Atom.as_float (Value.as_atom s) in
        Alcotest.(check bool) "score in [0,1)" true (f >= 0.0 && f < 1.0))
      scores
  | _ -> Alcotest.fail "expected a set of scores"

let test_mirror_search_finds_relevant () =
  let m, scenes, _ = demo_mirror () in
  (* query for a class that certainly exists in some annotated image *)
  let target =
    Array.to_list scenes
    |> List.find_map (fun (s : Synth.scene) ->
           match s.Synth.caption with
           | Some _ -> Some (Synth.class_name (List.hd s.Synth.truth).Synth.cls)
           | None -> None)
  in
  let query = Option.get target in
  let hits = ok (Mirror.search m ~limit:5 ~mode:Mirror.Text_only query) in
  Alcotest.(check bool) "got hits" true (hits <> []);
  (* scores descending *)
  let scores = List.map snd hits in
  let rec desc = function a :: (b :: _ as r) -> a >= b && desc r | _ -> true in
  Alcotest.(check bool) "descending" true (desc scores)

let test_mirror_thesaurus_lookup () =
  let m, _, _ = demo_mirror () in
  let concepts = Mirror.thesaurus_lookup m "stripes" in
  Alcotest.(check bool) "thesaurus produces concepts" true (concepts <> []);
  List.iter
    (fun (c, _) ->
      Alcotest.(check bool) ("concept is a visual word: " ^ c) true
        (Mirror_mm.Vocabmap.parse_term c <> None))
    concepts

let test_mirror_refined_search () =
  let m, scenes, _ = demo_mirror () in
  let query = "stripes" in
  let relevant url =
    match String.rindex_opt url '/' with
    | Some i ->
      Synth.relevant
        scenes.(int_of_string (String.sub url (i + 1) (String.length url - i - 1)))
        ~query_words:[ query ]
    | None -> false
  in
  let initial = ok (Mirror.search m ~limit:8 ~mode:Mirror.Dual query) in
  let judgements = List.map (fun (url, _) -> (url, relevant url)) initial in
  let refined = ok (Mirror.search_refined m ~limit:8 ~query ~judgements ()) in
  Alcotest.(check bool) "refined ranking non-empty" true (refined <> []);
  let p5 hits = Feedback.precision_at 5 ~ranked:(List.map fst hits) ~relevant in
  Alcotest.(check bool)
    (Printf.sprintf "refined not worse (%.2f -> %.2f)" (p5 initial) (p5 refined))
    true
    (p5 refined >= p5 initial -. 1e-9)

let test_mirror_modes_and_feedback () =
  let m, _, _ = demo_mirror () in
  let q = "stripes" in
  let dual = ok (Mirror.search m ~limit:5 ~mode:Mirror.Dual q) in
  let img = ok (Mirror.search m ~limit:5 ~mode:Mirror.Image_only q) in
  Alcotest.(check bool) "dual produced" true (dual <> []);
  Alcotest.(check bool) "image-only produced" true (img <> []);
  (* feedback adapts the thesaurus *)
  let before = Mirror.thesaurus_lookup m q in
  (match dual with
  | (url, _) :: _ -> Mirror.give_feedback m ~query:q ~judgements:[ (url, true) ]
  | [] -> ());
  let after = Mirror.thesaurus_lookup m q in
  Alcotest.(check bool) "lookup still works after feedback" true (after <> []);
  ignore before

(* {1 Misc module coverage} *)

module Shape = Mirror_core.Shape

let test_shape_helpers () =
  let s =
    Shape.Set
      {
        link = 1;
        elem =
          Shape.Tuple
            [ ("a", Shape.Atomic 2); ("x", Shape.Xstruct { ext = "E"; meta = []; bats = [ 3; 4 ]; subs = [ Shape.Atomic 5 ] }) ];
      }
  in
  Alcotest.(check int) "count_bats" 5 (Shape.count_bats s);
  let doubled = Shape.map (fun b -> b * 10) s in
  let sum = ref 0 in
  Shape.iter (fun b -> sum := !sum + b) doubled;
  Alcotest.(check int) "map + iter" 150 !sum

let test_expr_helpers () =
  let e = parse_q "map[THIS.a + THIS.b](select[THIS.a > 0](R))" in
  Alcotest.(check (list string)) "closed" [] (Expr.free_vars e);
  let open_e = Expr.Binop (Bat.Add, Expr.Var "x", Expr.Var "y") in
  Alcotest.(check (list string)) "free vars in order" [ "x"; "y" ] (Expr.free_vars open_e);
  Alcotest.(check bool) "size counts nodes" true (Expr.size e > 8);
  Alcotest.(check bool) "to_string mentions select" true
    (Mirror_util.Stringx.split_on (fun c -> c = '(') (Expr.to_string e)
    |> List.exists (fun s -> Mirror_util.Stringx.starts_with ~prefix:"select" s))

let test_value_compare_edges () =
  (* CONTREP compares as a bag: item order irrelevant *)
  let c1 = Value.contrep [ ("a", 1.0); ("b", 2.0) ] in
  let c2 = Value.contrep [ ("b", 2.0); ("a", 1.0) ] in
  Alcotest.(check bool) "bag order irrelevant" true (Value.equal c1 c2);
  (* but the bound space participates *)
  let c3 = Value.contrep ~space:"s" [ ("a", 1.0); ("b", 2.0) ] in
  Alcotest.(check bool) "meta distinguishes" false (Value.equal c1 c3);
  (* LIST compares in order *)
  Alcotest.(check bool) "list order matters" false
    (Value.equal (Value.vlist [ Value.int 1; Value.int 2 ]) (Value.vlist [ Value.int 2; Value.int 1 ]))

let test_list_take_beyond_length () =
  let st = storage_with default_rows in
  check_equivalence st "take(tolist(map[THIS.a](R), ''), 99)"

let test_query_duplicate_terms () =
  let st = storage_with default_rows in
  check_equivalence st "map[getBL(THIS.c, {'cat', 'cat'})](R)"

let test_tolist_missing_field_fails () =
  let st = storage_with default_rows in
  match Eval.query_value st (parse_q "tolist(map[tuple(a: THIS.a)](R), 'nope')") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing sort field accepted"

let test_search_without_library () =
  let m = Mirror.create () in
  match Mirror.search m "anything" with
  | Error _ -> ()
  | Ok hits -> Alcotest.(check (list (pair string (float 1.0)))) "empty" [] hits

(* {1 Persistence} *)

module Persist = Mirror_core.Persist

let with_temp_dir f =
  let dir = Filename.temp_file "mirror" ".db" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_persist_round_trip () =
  with_temp_dir (fun dir ->
      let st = storage_with default_rows in
      ok (Persist.save st ~dir);
      let st2 = ok (Persist.load ~dir) in
      Alcotest.(check (list string)) "extents" (Storage.extents st) (Storage.extents st2);
      (* every battery query gives identical results on the loaded DB,
         through both evaluators *)
      List.iter
        (fun src ->
          let e = parse_q src in
          let original = ok (Eval.query_value st e) in
          Alcotest.check value_testable ("flattened after load: " ^ src) original
            (ok (Eval.query_value st2 e));
          Alcotest.check value_testable ("naive after load: " ^ src) original
            (Naive.eval st2 e))
        battery)

let test_persist_space_restored () =
  with_temp_dir (fun dir ->
      let st = storage_with default_rows in
      ok (Persist.save st ~dir);
      let st2 = ok (Persist.load ~dir) in
      let sp1 = Option.get (Storage.space_find st "R#el/c") in
      let sp2 = Option.get (Storage.space_find st2 "R#el/c") in
      Alcotest.(check int) "ndocs" (Mirror_ir.Space.ndocs sp1) (Mirror_ir.Space.ndocs sp2);
      Alcotest.(check (float 1e-9)) "avg doclen"
        (Mirror_ir.Space.avg_doc_len sp1)
        (Mirror_ir.Space.avg_doc_len sp2))

let test_persist_load_then_extend () =
  with_temp_dir (fun dir ->
      let st = storage_with default_rows in
      ok (Persist.save st ~dir);
      let st2 = ok (Persist.load ~dir) in
      (* defining and loading new extents after a load must not collide
         with restored oids *)
      ok (Storage.define st2 ~name:"S" (Types.Set (Types.Atomic Atom.TInt)));
      ignore (ok (Storage.load st2 ~name:"S" [ Value.int 7; Value.int 8 ]));
      Alcotest.check value_testable "new extent queryable" (Value.int 15)
        (ok (Eval.query_value st2 (parse_q "sum(S)")));
      Alcotest.check value_testable "old extent intact" (Value.int 4)
        (ok (Eval.query_value st2 (parse_q "count(R)"))))

let test_persist_demo_library () =
  with_temp_dir (fun dir ->
      let m, _, _ = demo_mirror () in
      let bindings = [ ("query", Expr.lit_str_set [ "stripe" ]) ] in
      let qsrc =
        "map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( ImageLibraryInternal ))"
      in
      let before = ok (Mirror.run_query m ~bindings qsrc) in
      ok (Persist.save (Mirror.storage m) ~dir);
      let m2 = Mirror.of_storage (ok (Persist.load ~dir)) in
      let after = ok (Mirror.run_query m2 ~bindings qsrc) in
      Alcotest.check value_testable "paper ranking survives persistence" before after;
      (* the image CONTREP space also came back *)
      let vafter =
        ok (Mirror.run_query m2 "count(flatten(map[terms(THIS.image)](ImageLibraryInternal)))")
      in
      let vbefore =
        ok (Mirror.run_query m "count(flatten(map[terms(THIS.image)](ImageLibraryInternal)))")
      in
      Alcotest.check value_testable "visual words intact" vbefore vafter)

let prop_persist_round_trip =
  QCheck.Test.make ~name:"persistence preserves queries (random data)" ~count:10
    (QCheck.make gen_rows) (fun rows ->
      with_temp_dir (fun dir ->
          let st = storage_with rows in
          (match Persist.save st ~dir with Ok () -> () | Error e -> failwith e);
          let st2 = match Persist.load ~dir with Ok s -> s | Error e -> failwith e in
          List.for_all
            (fun src ->
              let e = parse_q src in
              match (Eval.query_value st e, Eval.query_value st2 e) with
              | Ok a, Ok b -> Value.equal a b
              | _ -> false)
            [
              "map[sum(getBL(THIS.c, {'cat', 'dog'}))](R)";
              "count(flatten(map[terms(THIS.c)](R)))";
              "map[tuple(a: THIS.a, n: count(THIS.s))](R)";
            ]))

let test_persist_missing_dir () =
  match Persist.load ~dir:"/nonexistent-mirror-db" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing directory should fail"

(* {1 Scale sanity} *)

let test_scale_sanity () =
  (* a 2000-document ranking must stay comfortably interactive *)
  let g = Prng.create 123 in
  let rows =
    List.init 2000 (fun i ->
        let bag =
          List.init 10 (fun _ -> (Printf.sprintf "w%d" (Prng.int g 200), 1.0))
        in
        row i (i mod 7) [] bag)
  in
  let st = storage_with rows in
  let e = parse_q "map[sum(getBL(THIS.c, {'w5', 'w6'}))](R)" in
  let t0 = Sys.time () in
  (match ok (Eval.query_value st e) with
  | Value.VSet scores -> Alcotest.(check int) "all scored" 2000 (List.length scores)
  | _ -> Alcotest.fail "unexpected result");
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "interactive latency (%.3f s)" elapsed)
    true (elapsed < 5.0)

let test_explain_getblnet () =
  let st = storage_with default_rows in
  let plan = ok (Eval.explain st (parse_q "map[getBLnet(THIS.c, '#and( cat dog )')](R)")) in
  Alcotest.(check bool) "physical operator visible" true
    (Mirror_util.Stringx.split_on (fun c -> c = '\n') plan
    |> List.exists (fun l ->
           Mirror_util.Stringx.starts_with ~prefix:"foreign[contrep_getblnet" (String.trim l)))

(* {1 Feedback math} *)

let test_rocchio () =
  let out =
    Feedback.rocchio ~alpha:1.0 ~beta:1.0 ~gamma:1.0
      ~original:[ ("a", 1.0) ]
      ~relevant:[ [ ("b", 2.0) ]; [ ("b", 4.0) ] ]
      ~irrelevant:[ [ ("a", 2.0) ] ]
      ()
  in
  (* a: 1 - 2 = -1 (dropped); b: mean(2,4) = 3 *)
  Alcotest.(check (list (pair string (float 1e-9)))) "rocchio" [ ("b", 3.0) ] out

let test_rocchio_max_terms () =
  let rel = [ List.init 20 (fun i -> (Printf.sprintf "t%02d" i, Float.of_int (i + 1))) ] in
  let out = Feedback.rocchio ~max_terms:5 ~original:[] ~relevant:rel ~irrelevant:[] () in
  Alcotest.(check int) "truncated" 5 (List.length out);
  Alcotest.(check string) "heaviest first" "t19" (fst (List.hd out))

let test_precision_metrics () =
  let relevant d = d = "a" || d = "c" in
  Alcotest.(check (float 1e-9)) "p@2" 0.5 (Feedback.precision_at 2 ~ranked:[ "a"; "b"; "c" ] ~relevant);
  Alcotest.(check (float 1e-9)) "p@0" 0.0 (Feedback.precision_at 0 ~ranked:[ "a" ] ~relevant);
  let ap = Feedback.average_precision ~ranked:[ "a"; "b"; "c" ] ~relevant in
  Alcotest.(check (float 1e-9)) "ap" ((1.0 +. (2.0 /. 3.0)) /. 2.0) ap;
  Alcotest.(check (float 1e-9)) "ap none" 0.0
    (Feedback.average_precision ~ranked:[ "b" ] ~relevant)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mirror_core"
    [
      ( "types-values",
        [
          Alcotest.test_case "type pp/equal" `Quick test_types_pp_and_equal;
          Alcotest.test_case "well-labelled" `Quick test_types_well_labelled;
          Alcotest.test_case "set semantics" `Quick test_value_set_semantics;
          Alcotest.test_case "contrep helpers" `Quick test_value_contrep_helpers;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "battery typechecks" `Quick test_typecheck_battery;
          Alcotest.test_case "errors rejected" `Quick test_typecheck_errors;
          Alcotest.test_case "result types" `Quick test_typecheck_results;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper schema" `Quick test_parser_paper_schema;
          Alcotest.test_case "paper query" `Quick test_parser_paper_query;
          Alcotest.test_case "THIS nesting" `Quick test_parser_this_nesting;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "literals" `Quick test_parser_literals;
          Alcotest.test_case "let bindings" `Quick test_parser_let_bindings;
          Alcotest.test_case "pp/parse round-trip" `Quick test_pp_parse_round_trip;
          Alcotest.test_case "named join binders" `Quick test_pp_parse_named_join;
          Alcotest.test_case "type print/parse round-trip" `Quick test_parser_type_round_trip;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "map fusion" `Quick test_optimize_fusion;
          Alcotest.test_case "select fusion" `Quick test_optimize_select_fusion;
          Alcotest.test_case "constant folding" `Quick test_optimize_constant_folding;
          Alcotest.test_case "more rules" `Quick test_optimize_more_rules;
          Alcotest.test_case "semantics preserved" `Quick test_optimize_preserves_semantics;
          Alcotest.test_case "capture-avoiding subst" `Quick test_optimize_subst_capture;
        ] );
      ( "storage",
        [
          Alcotest.test_case "define validation" `Quick test_storage_define_errors;
          Alcotest.test_case "load type checks" `Quick test_storage_load_type_check;
          Alcotest.test_case "reload replaces" `Quick test_storage_reload_replaces;
          Alcotest.test_case "stats space registered" `Quick test_storage_space_registered;
          Alcotest.test_case "insert/delete" `Quick test_storage_insert_delete;
          Alcotest.test_case "DML statements" `Quick test_program_dml;
          Alcotest.test_case "DML errors" `Quick test_dml_errors;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "battery on default data" `Quick test_battery_equivalence;
          Alcotest.test_case "battery on empty extent" `Quick test_battery_equivalence_empty;
          Alcotest.test_case "battery on single row" `Quick test_battery_equivalence_single;
        ] );
      ( "eval",
        [
          Alcotest.test_case "report" `Quick test_eval_report;
          Alcotest.test_case "cse effect" `Quick test_eval_cse_effect;
          Alcotest.test_case "explain" `Quick test_eval_explain;
          Alcotest.test_case "type errors reported" `Quick test_eval_type_error_reported;
        ] );
      ("extensions", [ Alcotest.test_case "registry" `Quick test_extension_registry ]);
      ( "mirror",
        [
          Alcotest.test_case "program execution" `Quick test_mirror_program;
          Alcotest.test_case "demo pipeline" `Quick test_mirror_demo_pipeline;
          Alcotest.test_case "paper query runs" `Quick test_mirror_paper_query_runs;
          Alcotest.test_case "search finds hits" `Quick test_mirror_search_finds_relevant;
          Alcotest.test_case "thesaurus lookup" `Quick test_mirror_thesaurus_lookup;
          Alcotest.test_case "modes and feedback" `Quick test_mirror_modes_and_feedback;
          Alcotest.test_case "rocchio-refined search" `Quick test_mirror_refined_search;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "shape helpers" `Quick test_shape_helpers;
          Alcotest.test_case "expr helpers" `Quick test_expr_helpers;
          Alcotest.test_case "value compare edges" `Quick test_value_compare_edges;
          Alcotest.test_case "take beyond length" `Quick test_list_take_beyond_length;
          Alcotest.test_case "duplicate query terms" `Quick test_query_duplicate_terms;
          Alcotest.test_case "tolist missing field" `Quick test_tolist_missing_field_fails;
          Alcotest.test_case "search without library" `Quick test_search_without_library;
        ] );
      ( "persist",
        [
          Alcotest.test_case "round trip preserves every query" `Quick test_persist_round_trip;
          Alcotest.test_case "statistics space restored" `Quick test_persist_space_restored;
          Alcotest.test_case "extend after load" `Quick test_persist_load_then_extend;
          Alcotest.test_case "demo library round trip" `Quick test_persist_demo_library;
          Alcotest.test_case "missing directory" `Quick test_persist_missing_dir;
        ] );
      ( "scale",
        [
          Alcotest.test_case "2000-doc ranking latency" `Quick test_scale_sanity;
          Alcotest.test_case "explain shows getblnet" `Quick test_explain_getblnet;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "rocchio" `Quick test_rocchio;
          Alcotest.test_case "rocchio truncation" `Quick test_rocchio_max_terms;
          Alcotest.test_case "precision metrics" `Quick test_precision_metrics;
        ] );
      ("properties", qc [ prop_equivalence; prop_random_exprs; prop_persist_round_trip ]);
    ]
