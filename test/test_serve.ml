(* The serving tier's test suite.

   The centrepiece is a 500-seed chaos schedule: each seed drives a
   deterministic interleaving of reader and writer sessions (plus
   checkpoints on the durable runs) through the cooperative scheduler,
   and every read reply — cached or fresh — is then checked bitwise
   against a quiesced re-execution of exactly the writes that had
   committed into the read's pinned version.  That one property bundles
   the serving guarantees: snapshot isolation (no read ever sees a
   half-committed batch), precise cache invalidation (a stale hit
   would diverge from the rebuilt state), and version GC safety (a
   read against a collected version could not verify at all).
   Refusals must always be structured and never wedge the session. *)

module Serve = Mirror_serve.Serve
module Server = Mirror_serve.Server
module Protocol = Mirror_serve.Protocol
module Version = Mirror_serve.Version
module Qcache = Mirror_serve.Qcache
module Mirror = Mirror_core.Mirror
module Storage = Mirror_core.Storage
module Eval = Mirror_core.Eval
module Expr = Mirror_core.Expr
module Parser = Mirror_core.Parser
module Normalize = Mirror_core.Normalize
module Value = Mirror_core.Value
module Durable = Mirror_store.Durable
module Supervisor = Mirror_daemon.Supervisor
module Clock = Mirror_util.Clock
module Prng = Mirror_util.Prng

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let ok_serve tag = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" tag (Serve.error_to_string e)

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let dir = Filename.temp_file "mirror-serve" ".db" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* {1 The canonical query normalizer} *)

let canon src = Normalize.key (ok (Parser.parse_expr src))

let test_normalize_equivalent () =
  let pairs =
    [
      (* renamed binders *)
      ("map[x: x.a](select[y: y.a > 0](R))", "map[THIS.a](select[THIS.a > 0](R))");
      (* commutative operand order *)
      ("sum(map[x: x.a + x.b](R))", "sum(map[x: x.b + x.a](R))");
      ("select[x: x.a = 3 and x.b = 4](R)", "select[x: 4 = x.b and 3 = x.a](R)");
      (* both at once, nested *)
      ( "map[v: v.a * (v.b + 1)](select[w: w.a > 0](R))",
        "map[q: (1 + q.b) * q.a](select[p: p.a > 0](R))" );
      (* set-level symmetry *)
      ("union(A, B)", "union(B, A)");
      ("inter(count(A), count(B))", "inter(count(B), count(A))");
    ]
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check string) (Printf.sprintf "%s ~ %s" a b) (canon a) (canon b))
    pairs

let test_normalize_ordered_kept () =
  (* ordered comparisons and non-commutative arithmetic must NOT be
     flipped: moving a literal to the other side could despecialize a
     range-select plan *)
  List.iter
    (fun (a, b) ->
      if String.equal (canon a) (canon b) then
        Alcotest.failf "%s and %s must not share a key" a b)
    [
      ("select[x: x.a > 3](R)", "select[x: 3 > x.a](R)");
      ("map[x: x.a - x.b](R)", "map[x: x.b - x.a](R)");
      ("diff(A, B)", "diff(B, A)");
    ]

let test_normalize_roundtrip () =
  (* the canonical form prints as parseable Moa and is idempotent:
     parse -> canonical -> print -> parse -> canonical is a fixpoint *)
  List.iter
    (fun src ->
      let e1 = Normalize.canonical (ok (Parser.parse_expr src)) in
      let printed = Expr.to_string e1 in
      let e2 =
        match Parser.parse_expr printed with
        | Ok e -> Normalize.canonical e
        | Error err -> Alcotest.failf "canonical %s of %s does not re-parse: %s" printed src err
      in
      Alcotest.(check string)
        (Printf.sprintf "roundtrip fixpoint of %s" src)
        printed (Expr.to_string e2))
    [
      "sum(map[x: x.a * (x.b + 2)](R))";
      "map[x: x.a](select[y: y.a > 0](R))";
      "join[v1.a = v2.a; l, r](A, B)";
      "count(select[t: exists(select[u: u.k = t.k](S))](R))";
      "union(inter(B, A), diff(B, A))";
    ]

(* {1 Version store} *)

let test_version_store () =
  let m = Mirror.create () in
  ignore
    (ok
       (Mirror.exec_program m
          "define T as SET< TUPLE< Atomic<int>: a > >; insert into T tuple(a: 1);")
      : Mirror.outcome list);
  let vs = Version.create (Mirror.storage m) in
  let v1 = Version.pin vs in
  ignore (ok (Mirror.exec_program m "insert into T tuple(a: 2);") : Mirror.outcome list);
  let v2 = Version.publish vs (Mirror.storage m) in
  Alcotest.(check int) "ids increase" (Version.id v1 + 1) (Version.id v2);
  let read v = Value.to_string (ok (Eval.query_value (Version.view v) (Expr.Extent "T"))) in
  let at_v1 = read v1 and at_v2 = read v2 in
  if String.equal at_v1 at_v2 then Alcotest.fail "snapshot failed to freeze the old state";
  Alcotest.(check (list int)) "pinned version survives gc" [] (Version.gc vs);
  Version.unpin vs v1;
  Alcotest.(check (list int)) "unpinned retired version collected" [ Version.id v1 ]
    (Version.gc vs);
  Alcotest.(check int) "head remains" 1 (Version.live vs);
  Alcotest.(check string) "late read of head unaffected" at_v2 (read v2)

(* {1 Result cache} *)

let test_qcache () =
  let c = Qcache.create ~capacity:2 in
  let v s = Value.Atom (Mirror_bat.Atom.Int s) in
  Alcotest.(check (option reject)) "miss on empty" None (Qcache.find c ~version:1 ~key:"a");
  Qcache.add c ~version:1 ~key:"a" (v 1);
  Qcache.add c ~version:1 ~key:"b" (v 2);
  ignore (Qcache.find c ~version:1 ~key:"a" : Value.t option);
  Qcache.add c ~version:1 ~key:"c" (v 3);
  (* capacity 2: inserting c evicted the LRU entry, which is b *)
  Alcotest.(check bool) "recently used survives" true
    (Qcache.find c ~version:1 ~key:"a" <> None);
  Alcotest.(check bool) "lru evicted" true (Qcache.find c ~version:1 ~key:"b" = None);
  Alcotest.(check int) "drop_version" 2 (Qcache.drop_version c 1);
  let s = Qcache.stats c in
  Alcotest.(check int) "empty after drop" 0 s.Qcache.size;
  Alcotest.(check int) "evictions counted" 1 s.Qcache.evictions;
  Alcotest.(check int) "invalidations counted" 2 s.Qcache.invalidated

(* {1 Protocol} *)

let test_protocol () =
  (match Protocol.parse "  query count(T)  " with
  | Ok (Protocol.Req (Serve.Query "count(T)")) -> ()
  | _ -> Alcotest.fail "query line parse");
  (match Protocol.parse "QUIT" with
  | Ok Protocol.Quit -> ()
  | _ -> Alcotest.fail "quit parse");
  (match Protocol.parse "pin now" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pin with argument must be rejected");
  (match Protocol.parse "frobnicate" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb must be rejected");
  Alcotest.(check string) "escaping keeps replies one line" "a\\nb\\\\c"
    (Protocol.escape "a\nb\\c");
  let line =
    Protocol.render_reply 7
      (Ok (Serve.Value { value = Value.Atom (Mirror_bat.Atom.Int 3); cached = true; version = 2 }))
  in
  Alcotest.(check bool) "hit marks cached replies" true
    (String.length line >= 5 && String.sub line 0 5 = "7 hit");
  let refusal = Protocol.render_refusal (Serve.Admission_refused "queue full") in
  Alcotest.(check bool) "refusals carry id 0 and kind" true
    (String.sub refusal 0 15 = "0 err admission")

(* {1 Scripted self-test (the @lint gate)} *)

let test_self_test () = ok (Serve.self_test ())

(* {1 Budget admission on reads} *)

let test_read_budget () =
  let m = Mirror.create () in
  ignore
    (ok
       (Mirror.exec_program m
          "define T as SET< TUPLE< Atomic<int>: a > >; insert into T tuple(a: 1); insert \
           into T tuple(a: 2);")
      : Mirror.outcome list);
  let config = { Serve.default_config with Serve.max_bytes = Some 1 } in
  let t = Serve.local ~config ~clock:(Clock.virtual_ ()) m in
  let s = ok_serve "open" (Serve.open_session t) in
  let (_ : int) = ok_serve "submit" (Serve.submit t s (Serve.Query "count(T)")) in
  Serve.drain t;
  match Serve.replies s with
  | [ (_, Error (Serve.Admission_refused msg)) ] ->
    Alcotest.(check bool) "refusal names the budget" true
      (String.length msg > 0)
  | [ (_, r) ] ->
    Alcotest.failf "expected a budget refusal, got %s"
      (match r with Ok _ -> "a result" | Error e -> Serve.error_to_string e)
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)

(* {1 Socket front end} *)

let read_lines fd want =
  let buf = Bytes.create 4096 in
  let pending = Buffer.create 256 in
  let lines = ref [] in
  let deadline = Unix.gettimeofday () +. 10. in
  while List.length !lines < want do
    if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %d reply line(s), got %d" want
        (List.length !lines);
    match Unix.read fd buf 0 4096 with
    | 0 -> Alcotest.fail "server closed the connection early"
    | n ->
      Buffer.add_subbytes pending buf 0 n;
      let s = Buffer.contents pending in
      Buffer.clear pending;
      let parts = String.split_on_char '\n' s in
      let rec go = function
        | [ tail ] -> Buffer.add_string pending tail
        | line :: rest ->
          lines := line :: !lines;
          go rest
        | [] -> ()
      in
      go parts
  done;
  List.rev !lines

let test_socket_roundtrip () =
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let socket = Filename.concat dir "serve.sock" in
      let m = Mirror.create () in
      ignore
        (ok (Mirror.exec_program m "define T as SET< TUPLE< Atomic<int>: a > >;")
          : Mirror.outcome list);
      let stop = Atomic.make false in
      let server =
        Domain.spawn (fun () -> Server.run ~stop:(fun () -> Atomic.get stop) ~socket m)
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          ok (Domain.join server))
        (fun () ->
          let rec wait n =
            if Sys.file_exists socket then ()
            else if n = 0 then Alcotest.fail "socket never appeared"
            else begin
              Unix.sleepf 0.02;
              wait (n - 1)
            end
          in
          wait 500;
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_UNIX socket);
              let send s = ignore (Unix.write_substring fd s 0 (String.length s) : int) in
              let has ~needle hay =
                let n = String.length needle and h = String.length hay in
                let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
                go 0
              in
              (* wait for the group commit before reading: queries sent
                 in the same burst would (correctly) run at the
                 pre-write snapshot *)
              send "exec insert into T tuple(a: 1); insert into T tuple(a: 41);\n";
              (match read_lines fd 1 with
              | [ l1 ] ->
                Alcotest.(check bool) "write committed" true (has ~needle:"ok v" l1)
              | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
              send "query sum(map[x: x.a](T))\n";
              send "query sum(map[y: y.a](T))\n";
              (match read_lines fd 2 with
              | [ l2; l3 ] ->
                Alcotest.(check bool) "sum evaluated" true (has ~needle:"42" l2);
                Alcotest.(check bool)
                  "equivalent formulation served by the cache (hit)" true
                  (has ~needle:"hit" l3 && has ~needle:"42" l3)
              | ls -> Alcotest.failf "expected 2 lines, got %d" (List.length ls));
              send "quit\n")))

(* {1 The 500-schedule chaos suite} *)

type ev =
  | W_insert of int
  | W_delete of int
  | R_query of int
  | R_pin of int
  | R_unpin of int
  | Step
  | Drain
  | Checkpoint

(* A captured read: which query, and (filled from the reply) the value
   it returned and the version it was served under. *)
type read = { src : string; rid : int }

let query_pool extent =
  [|
    Printf.sprintf "T%d" extent;
    Printf.sprintf "count(T%d)" extent;
    Printf.sprintf "sum(map[x: x.n](T%d))" extent;
    Printf.sprintf "sum(map[x: x.n + x.k](T%d))" extent;
    (* equivalent formulation of the previous entry: exercises the
       normalized cache key across sessions *)
    Printf.sprintf "sum(map[y: y.k + y.n](T%d))" extent;
    Printf.sprintf "select[THIS.n > 40](T%d)" extent;
  |]

let define_extent i = Printf.sprintf "define T%d as SET< TUPLE< Atomic<int>: k, Atomic<int>: n > >;" i

(* Replay the committed writes with version <= v on a fresh in-memory
   database: the quiesced run the snapshot read must equal. *)
let quiesced_eval ~nw ~defines ~writes_by_writer ~upto src =
  let m = Mirror.create () in
  List.iter
    (fun d -> ignore (ok (Mirror.exec_program m d) : Mirror.outcome list))
    defines;
  for i = 1 to nw do
    List.iter
      (fun ((_ : int), version, prog) ->
        if version <= upto then ignore (ok (Mirror.exec_program m prog) : Mirror.outcome list))
      writes_by_writer.(i - 1)
  done;
  Value.to_string (ok (Mirror.run_query m src))

let run_schedule ~seed ~durable_dir =
  let g = Prng.create seed in
  let nw = 1 + Prng.int g 2 in
  let nr = 1 + Prng.int g 2 in
  let defines = List.init nw (fun i -> define_extent (i + 1)) in
  let clock = Clock.virtual_ () in
  let dur =
    match durable_dir with
    | None -> None
    | Some dir -> Some (fst (ok (Durable.open_ ~dir ())))
  in
  let m = match dur with Some d -> Durable.mirror d | None -> Mirror.create () in
  List.iter (fun d -> ignore (ok (Mirror.exec_program m d) : Mirror.outcome list)) defines;
  let config =
    {
      Serve.default_config with
      Serve.max_sessions = nw + nr;
      Serve.queue_capacity = 3 + Prng.int g 3;
      Serve.commit_batch = 1 + Prng.int g 4;
      Serve.cache_capacity = 4 + Prng.int g 28;
    }
  in
  let t = Serve.local ~config ~clock ~seed ?durable:dur m in
  let writers = Array.init nw (fun _ -> ok_serve "open writer" (Serve.open_session t)) in
  let readers = Array.init nr (fun _ -> ok_serve "open reader" (Serve.open_session t)) in
  (* rid -> (writer index, program) for submitted writes; reads per reader *)
  let progs : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  let reads : read list array = Array.make nr [] in
  let next_k = Array.make nw 0 in
  let structured_refusal tag = function
    | Serve.Admission_refused _ | Serve.Breaker_open _ -> ()
    | (Serve.Bad_request _ | Serve.Exec_error _) as e ->
      Alcotest.failf "seed %d: %s refused unstructurally: %s" seed tag
        (Serve.error_to_string e)
  in
  let apply = function
    | W_insert i ->
      next_k.(i) <- next_k.(i) + 1;
      let src =
        Printf.sprintf "insert into T%d tuple(k: %d, n: %d);" (i + 1) next_k.(i)
          (Prng.int g 100)
      in
      (match Serve.submit t writers.(i) (Serve.Exec src) with
      | Ok rid -> Hashtbl.replace progs rid (i, src)
      | Error e -> structured_refusal "write" e)
    | W_delete i -> (
      let src =
        Printf.sprintf "delete from T%d where THIS.k = %d;" (i + 1)
          (1 + Prng.int g (max 1 next_k.(i)))
      in
      match Serve.submit t writers.(i) (Serve.Exec src) with
      | Ok rid -> Hashtbl.replace progs rid (i, src)
      | Error e -> structured_refusal "delete" e)
    | R_query j -> (
      let pool = query_pool (1 + Prng.int g nw) in
      let src = Prng.choose g pool in
      match Serve.submit t readers.(j) (Serve.Query src) with
      | Ok rid -> reads.(j) <- { src; rid } :: reads.(j)
      | Error e -> structured_refusal "read" e)
    | R_pin j -> (
      match Serve.submit t readers.(j) Serve.Pin with
      | Ok (_ : int) -> ()
      | Error e -> structured_refusal "pin" e)
    | R_unpin j -> (
      match Serve.submit t readers.(j) Serve.Unpin with
      | Ok (_ : int) -> ()
      | Error e -> structured_refusal "unpin" e)
    | Step -> ignore (Serve.step t : bool)
    | Drain -> Serve.drain t
    | Checkpoint -> ( match dur with Some d -> ok (Durable.checkpoint d) | None -> ())
  in
  let n_ops = 15 + Prng.int g 25 in
  for _ = 1 to n_ops do
    let roll = Prng.int g 100 in
    let ev =
      if roll < 22 then W_insert (Prng.int g nw)
      else if roll < 30 then W_delete (Prng.int g nw)
      else if roll < 60 then R_query (Prng.int g nr)
      else if roll < 68 then R_pin (Prng.int g nr)
      else if roll < 74 then R_unpin (Prng.int g nr)
      else if roll < 90 then Step
      else if roll < 96 then Drain
      else Checkpoint
    in
    apply ev
  done;
  Serve.drain t;
  (* 1. writer replies: every committed write learns its version *)
  let version_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun w ->
      List.iter
        (fun (rid, reply) ->
          match reply with
          | Ok (Serve.Executed { version; _ }) -> Hashtbl.replace version_of rid version
          | Ok o ->
            Alcotest.failf "seed %d: writer got non-write outcome %s" seed
              (match o with Serve.Value _ -> "value" | _ -> "pin")
          | Error e ->
            Alcotest.failf "seed %d: write failed: %s" seed (Serve.error_to_string e))
        (Serve.replies w))
    writers;
  let writes_by_writer =
    Array.init nw (fun i ->
        Hashtbl.fold
          (fun rid (wi, prog) acc ->
            match Hashtbl.find_opt version_of rid with
            | Some v when wi = i -> (rid, v, prog) :: acc
            | _ -> acc)
          progs []
        |> List.sort compare)
  in
  (* 2. reader replies: every served value must be bitwise-equal to the
        quiesced run at its pinned version; cached hits included *)
  let verified = ref 0 and hits = ref 0 in
  Array.iteri
    (fun j r ->
      let by_rid = Hashtbl.create 16 in
      List.iter (fun rd -> Hashtbl.replace by_rid rd.rid rd.src) reads.(j);
      List.iter
        (fun (rid, reply) ->
          match (Hashtbl.find_opt by_rid rid, reply) with
          | Some src, Ok (Serve.Value { value; cached; version }) ->
            let got = Value.to_string value in
            let want = quiesced_eval ~nw ~defines ~writes_by_writer ~upto:version src in
            if not (String.equal got want) then
              Alcotest.failf
                "seed %d: read %s at v%d diverged from the quiesced run\n  got  %s\n  want %s%s"
                seed src version got want
                (if cached then " (cache hit: STALE)" else "");
            incr verified;
            if cached then incr hits
          | Some src, Error e ->
            Alcotest.failf "seed %d: read %s failed: %s" seed src
              (Serve.error_to_string e)
          | Some (_ : string), Ok o -> (
            match o with
            | Serve.Value _ -> assert false
            | _ -> Alcotest.failf "seed %d: read got a non-value outcome" seed)
          | None, _ -> () (* pin/unpin acks *))
        (Serve.replies r))
    readers;
  (* 3. no session is wedged: a post-chaos submit on every session
        still works (advancing the virtual clock past any backoff) *)
  Array.iter
    (fun r ->
      let rec again attempts =
        match Serve.submit t r (Serve.Query "count(T1)") with
        | Ok (_ : int) -> ()
        | Error (Serve.Breaker_open retry) when attempts > 0 ->
          Clock.advance clock (retry +. 1.);
          again (attempts - 1)
        | Error e ->
          Alcotest.failf "seed %d: session wedged after chaos: %s" seed
            (Serve.error_to_string e)
      in
      again 3)
    readers;
  Serve.drain t;
  Array.iter (fun r -> ignore (Serve.replies r : (int * Serve.reply) list)) readers;
  (* 4. closing every session lets GC reclaim all retired versions *)
  Array.iter (fun s -> Serve.close_session t s) (Array.append writers readers);
  Serve.drain t;
  let s = Serve.stats t in
  if s.Serve.versions_live <> 1 then
    Alcotest.failf "seed %d: %d versions resident after close (want 1)" seed
      s.Serve.versions_live;
  if s.Serve.versions_collected <> s.Serve.versions_published - 1 then
    Alcotest.failf "seed %d: published %d, collected %d" seed s.Serve.versions_published
      s.Serve.versions_collected;
  (* 5. durable runs recover to exactly the served state *)
  (match (dur, durable_dir) with
  | Some d, Some dir ->
    Durable.close d;
    let d2, (_ : Durable.recovery) = ok (Durable.open_ ~dir ()) in
    ok (Durable.certify d2);
    let st = Durable.storage d2 in
    let top = Hashtbl.fold (fun (_ : int) v acc -> max v acc) version_of 0 in
    for i = 1 to nw do
      let src = Printf.sprintf "T%d" i in
      let got = Value.to_string (ok (Eval.query_value st (Expr.Extent src))) in
      let want = quiesced_eval ~nw ~defines ~writes_by_writer ~upto:(max top 1) src in
      if not (String.equal got want) then
        Alcotest.failf "seed %d: recovered %s diverges\n  got  %s\n  want %s" seed src got
          want
    done;
    Durable.close d2
  | _ -> ());
  (s.Serve.cache.Qcache.hits, s.Serve.refused, !verified, !hits)

let test_chaos_schedules () =
  let total_hits = ref 0
  and total_refused = ref 0
  and total_verified = ref 0 in
  for seed = 1 to 500 do
    let run durable_dir =
      let hits, refused, verified, (_ : int) = run_schedule ~seed ~durable_dir in
      total_hits := !total_hits + hits;
      total_refused := !total_refused + refused;
      total_verified := !total_verified + verified
    in
    (* every 25th schedule runs against a real durable store (fsyncs
       are slow); the rest exercise the same scheduler in memory *)
    if seed mod 25 = 0 then with_temp_dir (fun dir -> run (Some dir)) else run None
  done;
  if !total_verified < 500 then
    Alcotest.failf "only %d reads verified across 500 schedules" !total_verified;
  if !total_hits = 0 then Alcotest.fail "no cache hit in 500 schedules";
  if !total_refused = 0 then
    Alcotest.fail "no admission refusal in 500 schedules (queues never overflowed?)"

let () =
  Alcotest.run "serve"
    [
      ( "normalize",
        [
          Alcotest.test_case "equivalent formulations share a key" `Quick
            test_normalize_equivalent;
          Alcotest.test_case "ordered operators keep their orientation" `Quick
            test_normalize_ordered_kept;
          Alcotest.test_case "canonical form round-trips and is idempotent" `Quick
            test_normalize_roundtrip;
        ] );
      ( "components",
        [
          Alcotest.test_case "version store: pin, publish, gc" `Quick test_version_store;
          Alcotest.test_case "result cache: lru + version drop" `Quick test_qcache;
          Alcotest.test_case "wire protocol" `Quick test_protocol;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "scripted self-test" `Quick test_self_test;
          Alcotest.test_case "read budget refusal is structured" `Quick test_read_budget;
          Alcotest.test_case "unix-socket roundtrip with cache hit" `Quick
            test_socket_roundtrip;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "500 seeded reader/writer/checkpoint schedules" `Slow
            test_chaos_schedules;
        ] );
    ]
