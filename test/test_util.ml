(* Tests for the mirror_util library. *)

module Prng = Mirror_util.Prng
module Vecmath = Mirror_util.Vecmath
module Stat = Mirror_util.Stat
module Stringx = Mirror_util.Stringx
module Tablefmt = Mirror_util.Tablefmt

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

(* {1 Prng} *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 13 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 13)
  done

let test_prng_int_rejects_nonpositive () =
  let g = Prng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_bounds () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in bounds" true (v >= 0.0 && v < 2.5)
  done

let test_prng_uniformity () =
  let g = Prng.create 3 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Prng.int g 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d roughly uniform (%d)" i c)
        true
        (c > (n / 10) - 500 && c < (n / 10) + 500))
    buckets

let test_prng_gaussian_moments () =
  let g = Prng.create 5 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prng.gaussian g) in
  let mean = Stat.mean xs and sd = Stat.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (sd -. 1.0) < 0.02)

let test_prng_split_independent () =
  let g = Prng.create 9 in
  let h = Prng.split g in
  let a = Prng.bits64 g and b = Prng.bits64 h in
  Alcotest.(check bool) "split streams differ" false (Int64.equal a b)

let test_prng_shuffle_permutation () =
  let g = Prng.create 12 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_sample_weighted () =
  let g = Prng.create 21 in
  let w = [| 0.0; 1.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Prng.sample_weighted g w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(0);
  Alcotest.(check bool) "3x ratio approx" true
    (Float.of_int counts.(2) /. Float.of_int counts.(1) > 2.5
    && Float.of_int counts.(2) /. Float.of_int counts.(1) < 3.5)

let test_prng_perm () =
  let g = Prng.create 33 in
  let p = Prng.perm g 10 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "perm is permutation" (Array.init 10 (fun i -> i)) sorted

(* {1 Vecmath} *)

let test_dot () = check_float "dot" 32.0 (Vecmath.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_dot_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Vecmath.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vecmath.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_norm_dist () =
  check_float "norm2" 5.0 (Vecmath.norm2 [| 3.; 4. |]);
  check_float "dist2" 25.0 (Vecmath.dist2 [| 0.; 0. |] [| 3.; 4. |])

let test_add_sub_scale () =
  Alcotest.(check (array (float 1e-9))) "add" [| 5.; 7. |] (Vecmath.add [| 1.; 2. |] [| 4.; 5. |]);
  Alcotest.(check (array (float 1e-9))) "sub" [| -3.; -3. |] (Vecmath.sub [| 1.; 2. |] [| 4.; 5. |]);
  Alcotest.(check (array (float 1e-9))) "scale" [| 2.; 4. |] (Vecmath.scale 2.0 [| 1.; 2. |])

let test_mean_vectors () =
  Alcotest.(check (array (float 1e-9)))
    "mean" [| 2.; 3. |]
    (Vecmath.mean [ [| 1.; 2. |]; [| 3.; 4. |] ])

let test_normalize () =
  Alcotest.(check (array (float 1e-9))) "l1" [| 0.25; 0.75 |] (Vecmath.normalize_l1 [| 1.; 3. |]);
  check_float "l2 norm is 1" 1.0 (Vecmath.norm2 (Vecmath.normalize_l2 [| 3.; 4. |]));
  Alcotest.(check (array (float 1e-9))) "zero unchanged" [| 0.; 0. |] (Vecmath.normalize_l1 [| 0.; 0. |])

let test_cosine () =
  check_float "parallel" 1.0 (Vecmath.cosine [| 1.; 1. |] [| 2.; 2. |]);
  check_float "orthogonal" 0.0 (Vecmath.cosine [| 1.; 0. |] [| 0.; 1. |]);
  check_float "zero vector" 0.0 (Vecmath.cosine [| 0.; 0. |] [| 1.; 1. |])

let test_log_sum_exp () =
  let v = Vecmath.log_sum_exp [| 0.0; 0.0 |] in
  check_float "lse(0,0)=ln2" (log 2.0) v;
  (* Stability: huge values must not overflow. *)
  let v = Vecmath.log_sum_exp [| 1000.0; 1000.0 |] in
  check_float "lse(1000,1000)" (1000.0 +. log 2.0) v

let test_argminmax () =
  Alcotest.(check int) "argmax" 2 (Vecmath.argmax [| 1.; 0.; 9.; 3. |]);
  Alcotest.(check int) "argmin" 1 (Vecmath.argmin [| 1.; 0.; 9.; 3. |]);
  Alcotest.(check int) "first tie wins" 0 (Vecmath.argmax [| 5.; 5. |])

let test_solve () =
  (* 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1 *)
  (match Vecmath.solve [| [| 2.; 1. |]; [| 1.; -1. |] |] [| 5.; 1. |] with
  | Some x ->
    Alcotest.(check (float 1e-9)) "x" 2.0 x.(0);
    Alcotest.(check (float 1e-9)) "y" 1.0 x.(1)
  | None -> Alcotest.fail "solvable system reported singular");
  (* singular *)
  (match Vecmath.solve [| [| 1.; 2. |]; [| 2.; 4. |] |] [| 1.; 2. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "singular system solved");
  (* pivoting required (zero on the diagonal) *)
  match Vecmath.solve [| [| 0.; 1. |]; [| 1.; 0. |] |] [| 3.; 7. |] with
  | Some x ->
    Alcotest.(check (float 1e-9)) "pivot x" 7.0 x.(0);
    Alcotest.(check (float 1e-9)) "pivot y" 3.0 x.(1)
  | None -> Alcotest.fail "pivoting failed"

let prop_solve_inverts =
  QCheck.Test.make ~name:"solve recovers the solution of A x = b" ~count:100
    QCheck.(
      pair
        (array_of_size (Gen.return 9) (float_range (-5.) 5.))
        (array_of_size (Gen.return 3) (float_range (-5.) 5.)))
    (fun (flat, x) ->
      let a = Array.init 3 (fun i -> Array.sub flat (3 * i) 3) in
      (* b := A x, then solving must return (approximately) x *)
      let b = Array.init 3 (fun i -> Vecmath.dot a.(i) x) in
      match Vecmath.solve a b with
      | None -> QCheck.assume_fail () (* singular draws are skipped *)
      | Some got ->
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) got x)

(* {1 Stat} *)

let test_stat_basic () =
  check_float "mean" 2.5 (Stat.mean [| 1.; 2.; 3.; 4. |]);
  check_float "variance" 1.25 (Stat.variance [| 1.; 2.; 3.; 4. |]);
  check_float "median even" 2.5 (Stat.median [| 4.; 1.; 3.; 2. |]);
  check_float "median odd" 2.0 (Stat.median [| 3.; 1.; 2. |])

let test_stat_percentile () =
  let a = Array.init 100 (fun i -> Float.of_int (i + 1)) in
  check_float "p50" 50.0 (Stat.percentile a 50.0);
  check_float "p100" 100.0 (Stat.percentile a 100.0)

let test_stat_pearson () =
  let x = [| 1.; 2.; 3.; 4. |] in
  check_float "self-correlation" 1.0 (Stat.pearson x x);
  check_float "anti-correlation" (-1.0) (Stat.pearson x [| 4.; 3.; 2.; 1. |]);
  check_float "constant gives 0" 0.0 (Stat.pearson x [| 2.; 2.; 2.; 2. |])

let test_stat_entropy () =
  check_float "uniform 2 bins" (log 2.0) (Stat.entropy [| 1.0; 1.0 |]);
  check_float "point mass" 0.0 (Stat.entropy [| 5.0; 0.0 |]);
  check_float "empty" 0.0 (Stat.entropy [| 0.0; 0.0 |])

let test_stat_histogram () =
  let h = Stat.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.6; 3.9; -1.0; 99.0 |] in
  Alcotest.(check (array int)) "bins" [| 2; 2; 0; 2 |] h

(* {1 Stringx} *)

let test_split_on () =
  Alcotest.(check (list string)) "words" [ "a"; "bc"; "d" ]
    (Stringx.split_on (fun c -> c = ' ') " a bc  d ");
  Alcotest.(check (list string)) "empty" [] (Stringx.split_on (fun c -> c = ' ') "   ")

let test_affixes () =
  Alcotest.(check bool) "prefix" true (Stringx.starts_with ~prefix:"ab" "abc");
  Alcotest.(check bool) "not prefix" false (Stringx.starts_with ~prefix:"bc" "abc");
  Alcotest.(check bool) "suffix" true (Stringx.ends_with ~suffix:"bc" "abc");
  Alcotest.(check bool) "not suffix" false (Stringx.ends_with ~suffix:"ab" "abc")

let test_pad () =
  Alcotest.(check string) "right" "ab  " (Stringx.pad_right 4 "ab");
  Alcotest.(check string) "left" "  ab" (Stringx.pad_left 4 "ab");
  Alcotest.(check string) "no-op" "abcde" (Stringx.pad_left 3 "abcde")

let test_char_classes () =
  Alcotest.(check bool) "alpha" true (Stringx.is_alpha 'z');
  Alcotest.(check bool) "not alpha" false (Stringx.is_alpha '3');
  Alcotest.(check bool) "digit" true (Stringx.is_digit '7');
  Alcotest.(check bool) "alnum" true (Stringx.is_alnum 'A')

(* {1 Tablefmt} *)

let test_table_render () =
  let t = Tablefmt.create [ ("name", Tablefmt.Left); ("n", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "100" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "header present" true (Stringx.starts_with ~prefix:"name" s);
  Alcotest.(check bool) "right aligned" true
    (String.length s > 0 && String.split_on_char '\n' s |> List.exists (fun l -> l = "alpha    1"))

let test_table_arity_check () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: 2 cells for 1 columns")
    (fun () -> Tablefmt.add_row t [ "x"; "y" ])

(* {1 Trace} *)

module Trace = Mirror_util.Trace

let test_trace_null_noop () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.is_on t);
  Trace.enter t "a";
  Trace.leave t;
  (* leave on an empty stack is only an error on an enabled trace *)
  Trace.leave t;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.roots t));
  Alcotest.(check int) "with_span still runs f" 7 (Trace.with_span t "x" (fun () -> 7))

let test_trace_tree () =
  let t = Trace.create () in
  Trace.enter t "root";
  Trace.enter t "left";
  Trace.leave ~rows:3 t;
  Trace.enter t "right";
  Trace.event t "memo" ~rows:3 ~attrs:[ ("memo", "hit") ];
  Trace.leave ~rows:5 ~attrs:[ ("k", "v") ] t;
  Trace.leave ~rows:8 t;
  match Trace.root t with
  | None -> Alcotest.fail "no root span"
  | Some sp ->
    Alcotest.(check string) "root name" "root" sp.Trace.name;
    Alcotest.(check (option int)) "root rows" (Some 8) sp.Trace.rows;
    Alcotest.(check (list string)) "children in completion order" [ "left"; "right" ]
      (List.map (fun (c : Trace.span) -> c.Trace.name) sp.Trace.children);
    let right = List.nth sp.Trace.children 1 in
    Alcotest.(check (option string)) "attr recorded" (Some "v")
      (List.assoc_opt "k" right.Trace.attrs);
    Alcotest.(check (list string)) "event is a zero-duration child" [ "memo" ]
      (List.map (fun (c : Trace.span) -> c.Trace.name) right.Trace.children);
    Alcotest.(check bool) "self time excludes children" true
      (Trace.self_seconds sp <= sp.Trace.dur +. 1e-12);
    (* pre-order fold sees all four spans *)
    Alcotest.(check int) "fold count" 4 (Trace.fold (fun n _ -> n + 1) 0 sp)

let test_trace_aggregate_render () =
  let t = Trace.create () in
  for i = 1 to 3 do
    Trace.enter t "op";
    if i = 1 then Trace.event t "op" ~attrs:[ ("memo", "hit") ];
    Trace.leave ~rows:i t
  done;
  let aggs = Trace.aggregate ~flag:(fun s -> List.mem_assoc "memo" s.Trace.attrs) (Trace.roots t) in
  (match List.assoc_opt "op" aggs with
  | None -> Alcotest.fail "no rollup for op"
  | Some a ->
    Alcotest.(check int) "calls" 4 a.Trace.calls;
    Alcotest.(check int) "rows summed" 6 a.Trace.rows;
    Alcotest.(check int) "flagged memo hits" 1 a.Trace.flagged);
  let s = Trace.render t in
  Alcotest.(check bool) "render names the span" true
    (String.split_on_char '\n' s |> List.exists (fun l -> Stringx.starts_with ~prefix:"op" (String.trim l)))

let test_trace_unbalanced_leave () =
  let t = Trace.create () in
  Alcotest.check_raises "unbalanced" (Invalid_argument "Trace.leave: no open span")
    (fun () -> Trace.leave t)

let test_trace_with_span_error () =
  let t = Trace.create () in
  (try Trace.with_span t "boom" (fun () -> failwith "expected") with Failure _ -> ());
  match Trace.root t with
  | Some sp ->
    Alcotest.(check bool) "error attribute recorded" true
      (List.mem_assoc "error" sp.Trace.attrs)
  | None -> Alcotest.fail "span not closed on exception"

(* {1 Metrics} *)

module Metrics = Mirror_util.Metrics

let test_metrics_disabled_noop () =
  Metrics.reset ();
  Alcotest.(check bool) "disabled by default" false (Metrics.enabled ());
  Metrics.incr "off.counter";
  Metrics.observe "off.histo" 1.0;
  let s = Metrics.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length s.Metrics.counters);
  Alcotest.(check int) "no histograms" 0 (List.length s.Metrics.histograms)

let test_metrics_counters_histos () =
  Metrics.reset ();
  Metrics.with_enabled (fun () ->
      Metrics.incr "b.count";
      Metrics.incr ~by:4 "b.count";
      Metrics.incr "a.count";
      for i = 1 to 100 do
        Metrics.observe "a.ms" (Float.of_int i)
      done);
  Alcotest.(check bool) "with_enabled restored" false (Metrics.enabled ());
  Alcotest.(check int) "counter value" 5 (Metrics.counter "b.count");
  let s = Metrics.snapshot () in
  Alcotest.(check (list (pair string int))) "counters sorted by name"
    [ ("a.count", 1); ("b.count", 5) ] s.Metrics.counters;
  (match List.assoc_opt "a.ms" s.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 100 h.Metrics.count;
    Alcotest.(check bool) "p50 near middle" true (feq ~eps:2.0 50.0 h.Metrics.p50);
    Alcotest.(check bool) "p95 near tail" true (feq ~eps:2.0 95.0 h.Metrics.p95);
    check_float "max" 100.0 h.Metrics.max;
    check_float "total" 5050.0 h.Metrics.total);
  Metrics.reset ();
  Alcotest.(check int) "reset drops counters" 0 (Metrics.counter "b.count")

(* {1 Jsonx} *)

module Json = Mirror_util.Jsonx

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "test/v1");
        ("n", Json.Int 42);
        ("pi", Json.Float 3.25);
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.Arr [ Json.Int 1; Json.Str "two\n\"quoted\"" ]);
      ]
  in
  match Json.parse (Json.to_string ~indent:2 doc) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok doc' ->
    Alcotest.(check (option string)) "schema" (Some "test/v1")
      (Option.bind (Json.member "schema" doc') Json.to_str);
    Alcotest.(check (option int)) "int" (Some 42)
      (Option.bind (Json.member "n" doc') Json.to_int);
    Alcotest.(check (option (float 1e-12))) "float" (Some 3.25)
      (Option.bind (Json.member "pi" doc') Json.to_float);
    (match Option.bind (Json.member "items" doc') Json.to_list with
    | Some [ Json.Int 1; Json.Str s ] ->
      Alcotest.(check string) "escapes survive" "two\n\"quoted\"" s
    | _ -> Alcotest.fail "items array mangled")

let test_json_nonfinite_and_errors () =
  Alcotest.(check string) "nan serialises as null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf serialises as null" "null"
    (Json.to_string (Json.Float Float.infinity));
  (match Json.parse "{\"a\": 1,}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted");
  (match Json.parse "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "  [1, -2.5e1, \"x\"]  " with
  | Ok (Json.Arr [ Json.Int 1; Json.Float f; Json.Str "x" ]) -> check_float "exp float" (-25.0) f
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* {1 Crc32} *)

module Crc32 = Mirror_util.Crc32

(* Known vectors for CRC-32/ISO-HDLC (the IEEE 802.3 polynomial). *)
let test_crc32_vectors () =
  Alcotest.(check int) "empty string" 0 (Crc32.string "");
  Alcotest.(check int) "check vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "ascii phrase" 0x414FA339
    (Crc32.string "The quick brown fox jumps over the lazy dog");
  Alcotest.(check int) "all zero bytes" 0x2144DF1C (Crc32.string (String.make 4 '\000'))

let test_crc32_incremental () =
  let whole = Crc32.string "123456789" in
  let chunked = Crc32.update_string (Crc32.update_string Crc32.init "1234") "56789" in
  Alcotest.(check int) "chunked = one-shot" whole chunked;
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int) "bytes slice" whole (Crc32.update_bytes Crc32.init b ~pos:2 ~len:9)

let test_crc32_hex () =
  Alcotest.(check string) "to_hex" "cbf43926" (Crc32.to_hex 0xCBF43926);
  Alcotest.(check (option int)) "of_hex round trip" (Some 0xCBF43926)
    (Crc32.of_hex "cbf43926");
  Alcotest.(check (option int)) "of_hex rejects garbage" None (Crc32.of_hex "xyzw");
  Alcotest.(check (option int)) "of_hex rejects short input" None (Crc32.of_hex "abc")

let test_crc32_sensitivity () =
  let base = Crc32.string "hello world" in
  Alcotest.(check bool) "single bit flip changes checksum" true
    (base <> Crc32.string "hello worle");
  Alcotest.(check bool) "truncation changes checksum" true
    (base <> Crc32.string "hello worl")

(* {1 Clock} *)

let test_clock_virtual () =
  let c = Mirror_util.Clock.virtual_ () in
  Alcotest.(check bool) "virtual" true (Mirror_util.Clock.is_virtual c);
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Mirror_util.Clock.now c);
  Mirror_util.Clock.advance c 2.5;
  Mirror_util.Clock.advance c 1.5;
  Alcotest.(check (float 1e-9)) "advances" 4.0 (Mirror_util.Clock.now c);
  let c7 = Mirror_util.Clock.virtual_ ~at:7.0 () in
  Alcotest.(check (float 1e-9)) "custom origin" 7.0 (Mirror_util.Clock.now c7)

let test_clock_wall () =
  let c = Mirror_util.Clock.wall in
  Alcotest.(check bool) "not virtual" false (Mirror_util.Clock.is_virtual c);
  let t0 = Mirror_util.Clock.now c in
  Alcotest.(check bool) "monotone enough" true (Mirror_util.Clock.now c >= t0);
  Alcotest.check_raises "cannot advance wall time"
    (Invalid_argument "Clock.advance: cannot advance the wall clock") (fun () ->
      Mirror_util.Clock.advance c 1.0)

let test_clock_advance_negative () =
  let c = Mirror_util.Clock.virtual_ () in
  Alcotest.check_raises "time only moves forward"
    (Invalid_argument "Clock.advance: negative delta") (fun () ->
      Mirror_util.Clock.advance c (-1.0))

(* {1 QCheck properties} *)

let prop_lse_ge_max =
  QCheck.Test.make ~name:"log_sum_exp >= max element" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range (-50.) 50.))
    (fun a -> Vecmath.log_sum_exp a >= Array.fold_left Float.max neg_infinity a -. 1e-9)

let prop_normalize_l1_sums_to_one =
  QCheck.Test.make ~name:"normalize_l1 sums to 1 (positive input)" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range 0.1 10.))
    (fun a -> feq ~eps:1e-6 1.0 (Array.fold_left ( +. ) 0.0 (Vecmath.normalize_l1 a)))

let prop_perm_bijective =
  QCheck.Test.make ~name:"perm is bijective" ~count:100
    QCheck.(pair small_int (int_range 1 64))
    (fun (seed, n) ->
      let p = Prng.perm (Prng.create seed) n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all (fun b -> b) seen)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mirror_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic streams" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects non-positive bound" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "weighted sampling" `Quick test_prng_sample_weighted;
          Alcotest.test_case "perm" `Quick test_prng_perm;
        ] );
      ( "vecmath",
        [
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "dot dimension check" `Quick test_dot_mismatch;
          Alcotest.test_case "norm and dist" `Quick test_norm_dist;
          Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
          Alcotest.test_case "mean of vectors" `Quick test_mean_vectors;
          Alcotest.test_case "normalisation" `Quick test_normalize;
          Alcotest.test_case "cosine" `Quick test_cosine;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "argmax/argmin" `Quick test_argminmax;
          Alcotest.test_case "linear solve" `Quick test_solve;
        ] );
      ( "stat",
        [
          Alcotest.test_case "mean/variance/median" `Quick test_stat_basic;
          Alcotest.test_case "percentile" `Quick test_stat_percentile;
          Alcotest.test_case "pearson" `Quick test_stat_pearson;
          Alcotest.test_case "entropy" `Quick test_stat_entropy;
          Alcotest.test_case "histogram" `Quick test_stat_histogram;
        ] );
      ( "stringx",
        [
          Alcotest.test_case "split_on" `Quick test_split_on;
          Alcotest.test_case "prefix/suffix" `Quick test_affixes;
          Alcotest.test_case "padding" `Quick test_pad;
          Alcotest.test_case "char classes" `Quick test_char_classes;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
        ] );
      ( "clock",
        [
          Alcotest.test_case "virtual clock" `Quick test_clock_virtual;
          Alcotest.test_case "wall clock" `Quick test_clock_wall;
          Alcotest.test_case "negative advance" `Quick test_clock_advance_negative;
        ] );
      ( "trace",
        [
          Alcotest.test_case "null trace is a no-op" `Quick test_trace_null_noop;
          Alcotest.test_case "span tree structure" `Quick test_trace_tree;
          Alcotest.test_case "aggregate and render" `Quick test_trace_aggregate_render;
          Alcotest.test_case "unbalanced leave raises" `Quick test_trace_unbalanced_leave;
          Alcotest.test_case "with_span records errors" `Quick test_trace_with_span_error;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled registry records nothing" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "counters and histograms" `Quick test_metrics_counters_histos;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "non-finite floats and parse errors" `Quick
            test_json_nonfinite_and_errors;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental update" `Quick test_crc32_incremental;
          Alcotest.test_case "hex round trip" `Quick test_crc32_hex;
          Alcotest.test_case "bit flips and truncation detected" `Quick
            test_crc32_sensitivity;
        ] );
      ( "properties",
        qc
          [
            prop_lse_ge_max;
            prop_normalize_l1_sums_to_one;
            prop_perm_bijective;
            prop_solve_inverts;
          ] );
    ]
