module Mirror = Mirror_core.Mirror

type conn = {
  fd : Unix.file_descr;
  session : Serve.session;
  pending : Buffer.t; (* bytes read but not yet forming a full line *)
  mutable closing : bool; (* flush replies, then close *)
}

let write_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off < len then
      match Unix.write_substring fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* A write failure means the peer vanished mid-reply; the connection
   is dead either way, so report it to the caller as such. *)
let try_write_line fd line =
  match write_line fd line with () -> true | exception Unix.Unix_error _ -> false

let split_lines pending data =
  Buffer.add_string pending data;
  let s = Buffer.contents pending in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear pending;
      Buffer.add_substring pending s start (String.length s - start);
      List.rev acc
  in
  go 0 []

let run ?config ?bindings ?durable ?(stop = fun () -> false) ~socket mir =
  let t = Serve.local ?config ?bindings ?durable mir in
  (try if Sys.file_exists socket then Sys.remove socket with Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind listen_fd (Unix.ADDR_UNIX socket);
    Unix.listen listen_fd 16
  with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot listen on %s: %s" socket (Unix.error_message err))
  | () ->
    let conns = ref [] in
    let close_conn c =
      Serve.close_session t c.session;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      conns := List.filter (fun c' -> c' != c) !conns
    in
    let accept_one () =
      match Unix.accept listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, (_ : Unix.sockaddr) -> (
        match Serve.open_session t with
        | Ok session ->
          conns := { fd; session; pending = Buffer.create 256; closing = false } :: !conns
        | Error e ->
          ignore (try_write_line fd (Protocol.render_refusal e) : bool);
          (try Unix.close fd with Unix.Unix_error _ -> ()))
    in
    let handle_line c line =
      if String.trim line <> "" then
        match Protocol.parse line with
        | Error e ->
          ignore (try_write_line c.fd (Protocol.render_refusal (Serve.Bad_request e)) : bool)
        | Ok Protocol.Quit -> c.closing <- true
        | Ok Protocol.Stats ->
          ignore (try_write_line c.fd (Protocol.render_stats (Serve.stats t)) : bool)
        | Ok (Protocol.Req req) -> (
          match Serve.submit t c.session req with
          | Ok (_ : int) -> ()
          | Error e ->
            ignore (try_write_line c.fd (Protocol.render_refusal e) : bool))
    in
    let read_conn c =
      let buf = Bytes.create 4096 in
      match Unix.read c.fd buf 0 4096 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn c
      | 0 -> close_conn c
      | n -> List.iter (handle_line c) (split_lines c.pending (Bytes.sub_string buf 0 n))
    in
    let flush_replies () =
      List.iter
        (fun c ->
          let ok =
            List.for_all
              (fun (rid, reply) -> try_write_line c.fd (Protocol.render_reply rid reply))
              (Serve.replies c.session)
          in
          if not ok || c.closing then close_conn c)
        !conns
    in
    while not (stop ()) do
      match Unix.select (listen_fd :: List.map (fun c -> c.fd) !conns) [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        if List.memq listen_fd readable then accept_one ();
        List.iter
          (fun c -> if List.memq c.fd readable then read_conn c)
          (* the list mutates as dead connections close *)
          (List.filter (fun c -> List.memq c.fd readable) !conns);
        Serve.drain t;
        flush_replies ()
    done;
    List.iter close_conn !conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove socket with Sys_error _ -> ());
    Ok ()
