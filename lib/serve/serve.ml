module Mirror = Mirror_core.Mirror
module Parser = Mirror_core.Parser
module Eval = Mirror_core.Eval
module Normalize = Mirror_core.Normalize
module Expr = Mirror_core.Expr
module Value = Mirror_core.Value
module Durable = Mirror_store.Durable
module Supervisor = Mirror_daemon.Supervisor
module Clock = Mirror_util.Clock
module Stringx = Mirror_util.Stringx

type config = {
  max_sessions : int;
  queue_capacity : int;
  max_bytes : int option;
  cache_capacity : int;
  commit_batch : int;
  breaker : Supervisor.config;
}

let default_config =
  {
    max_sessions = 64;
    queue_capacity = 32;
    max_bytes = None;
    cache_capacity = 256;
    commit_batch = 8;
    breaker = Supervisor.default_config;
  }

type error =
  | Admission_refused of string
  | Breaker_open of float
  | Bad_request of string
  | Exec_error of string

let error_to_string = function
  | Admission_refused m -> "admission refused: " ^ m
  | Breaker_open s -> Printf.sprintf "breaker open: retry in %.3gs" s
  | Bad_request m -> "bad request: " ^ m
  | Exec_error m -> "execution failed: " ^ m

type outcome =
  | Value of { value : Value.t; cached : bool; version : int }
  | Executed of { version : int; outcomes : string list }
  | Pinned of int
  | Unpinned

type reply = (outcome, error) result

type request = Query of string | Exec of string | Pin | Unpin

type session = {
  sid : int;
  name : string; (* breaker key *)
  queue : (int * request) Queue.t;
  outbox : (int * reply) Queue.t;
  mutable pinned : Version.version option;
  mutable closed : bool;
}

type t = {
  config : config;
  mir : Mirror.t;
  durable : Durable.t option;
  bindings : (string * Expr.t) list;
  versions : Version.t;
  cache : Qcache.t;
  sup : Supervisor.t;
  clock : Clock.t;
  mutable sessions : session list; (* insertion order *)
  mutable cursor : int; (* round-robin position into [sessions] *)
  mutable next_sid : int;
  mutable next_rid : int;
  mutable batch : (session * int * string) list; (* pending writes, newest first *)
  mutable sessions_peak : int;
  mutable served : int;
  mutable refused : int;
  mutable breaker_open_refusals : int;
  mutable batches : int;
  mutable writes : int;
}

let local ?(config = default_config) ?(clock = Clock.wall) ?(seed = 1) ?(bindings = [])
    ?durable mir =
  {
    config;
    mir;
    durable;
    bindings;
    versions = Version.create (Mirror.storage mir);
    cache = Qcache.create ~capacity:config.cache_capacity;
    sup = Supervisor.create ~config:config.breaker ~clock ~seed ();
    clock;
    sessions = [];
    cursor = 0;
    next_sid = 1;
    next_rid = 1;
    batch = [];
    sessions_peak = 0;
    served = 0;
    refused = 0;
    breaker_open_refusals = 0;
    batches = 0;
    writes = 0;
  }

(* {1 Sessions} *)

let session_id s = s.sid

let open_session t =
  if List.length t.sessions >= t.config.max_sessions then begin
    t.refused <- t.refused + 1;
    Error
      (Admission_refused
         (Printf.sprintf "session cap reached (%d open)" (List.length t.sessions)))
  end
  else begin
    let s =
      {
        sid = t.next_sid;
        name = Printf.sprintf "s%d" t.next_sid;
        queue = Queue.create ();
        outbox = Queue.create ();
        pinned = None;
        closed = false;
      }
    in
    t.next_sid <- t.next_sid + 1;
    t.sessions <- t.sessions @ [ s ];
    t.sessions_peak <- max t.sessions_peak (List.length t.sessions);
    Ok s
  end

let release_pin t s =
  match s.pinned with
  | Some v ->
    Version.unpin t.versions v;
    s.pinned <- None
  | None -> ()

let gc_versions t =
  List.iter (fun vid -> ignore (Qcache.drop_version t.cache vid : int)) (Version.gc t.versions)

let close_session t s =
  if not s.closed then begin
    s.closed <- true;
    Queue.iter
      (fun (rid, (_ : request)) -> Queue.add (rid, Error (Bad_request "session closed")) s.outbox)
      s.queue;
    Queue.clear s.queue;
    (* drop any of its writes still waiting in the open batch *)
    t.batch <- List.filter (fun ((bs : session), _, _) -> bs.sid <> s.sid) t.batch;
    release_pin t s;
    t.sessions <- List.filter (fun s' -> s'.sid <> s.sid) t.sessions;
    t.cursor <- 0;
    gc_versions t
  end

(* {1 Admission at submission} *)

let submit t s req =
  if s.closed then Error (Bad_request "session closed")
  else if not (Supervisor.allow t.sup s.name) then begin
    t.refused <- t.refused + 1;
    t.breaker_open_refusals <- t.breaker_open_refusals + 1;
    let retry =
      match Supervisor.state t.sup s.name with
      | Supervisor.Open until -> Float.max 0. (until -. Clock.now t.clock)
      | Supervisor.Closed | Supervisor.Half_open -> 0.
    in
    Error (Breaker_open retry)
  end
  else if Queue.length s.queue >= t.config.queue_capacity then begin
    t.refused <- t.refused + 1;
    Error
      (Admission_refused
         (Printf.sprintf "session %s queue full (capacity %d)" s.name t.config.queue_capacity))
  end
  else begin
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    Queue.add (rid, req) s.queue;
    Ok rid
  end

(* {1 Processing} *)

let deliver t s rid reply =
  t.served <- t.served + 1;
  (match reply with
  | Ok (_ : outcome) -> Supervisor.success t.sup s.name
  | Error (Bad_request _ | Exec_error _ | Admission_refused _) ->
    (* run-time refusals and failures feed the breaker: a session
       streaming over-budget or broken requests gets shed for a
       backoff window instead of burning the server *)
    Supervisor.failure t.sup s.name
  | Error (Breaker_open _) -> ());
  (match reply with
  | Error (Admission_refused _ | Breaker_open _) -> t.refused <- t.refused + 1
  | Ok _ | Error (Bad_request _ | Exec_error _) -> ());
  Queue.add (rid, reply) s.outbox

let admission_prefix = "admission refused"

let do_query t s rid src =
  match Parser.parse_expr ~bindings:t.bindings src with
  | Error e -> deliver t s rid (Error (Bad_request e))
  | Ok expr ->
    (* pin the read's version for its whole evaluation: a pinned
       session reads its frozen view; otherwise the current head *)
    let v, transient =
      match s.pinned with
      | Some v -> (v, false)
      | None -> (Version.pin t.versions, true)
    in
    let vid = Version.id v in
    let key = Normalize.key expr in
    (match Qcache.find t.cache ~version:vid ~key with
    | Some value -> deliver t s rid (Ok (Value { value; cached = true; version = vid }))
    | None -> (
      match Eval.query ?max_bytes:t.config.max_bytes (Version.view v) expr with
      | Ok report ->
        Qcache.add t.cache ~version:vid ~key report.Eval.value;
        deliver t s rid (Ok (Value { value = report.Eval.value; cached = false; version = vid }))
      | Error e when Stringx.starts_with ~prefix:admission_prefix e ->
        deliver t s rid (Error (Admission_refused e))
      | Error e -> deliver t s rid (Error (Exec_error e))));
    if transient then begin
      Version.unpin t.versions v;
      gc_versions t
    end

let describe_outcome = function
  | Mirror.Defined n -> "defined " ^ n
  | Mirror.Bound n -> "bound " ^ n
  | Mirror.Inserted n -> "inserted into " ^ n
  | Mirror.Deleted (n, k) -> Printf.sprintf "deleted %d from %s" k n
  | Mirror.Evaluated v -> "= " ^ Value.to_string v

(* Group commit: apply every batched write to the live database (each
   statement journals through the durable WAL), pay one fsync for the
   whole batch, and only then publish a single new version — writes
   become visible to readers together, and only once durable. *)
let commit t =
  match List.rev t.batch with
  | [] -> false
  | items ->
    t.batch <- [];
    let applied =
      List.map (fun (s, rid, src) -> (s, rid, Mirror.exec_program ~bindings:t.bindings t.mir src)) items
    in
    let dur_err =
      match t.durable with
      | None -> None
      | Some d -> ( match Durable.sync d with Ok () -> None | Error e -> Some e)
    in
    let v = Version.publish t.versions (Mirror.storage t.mir) in
    t.batches <- t.batches + 1;
    List.iter
      (fun (s, rid, res) ->
        let reply =
          match (dur_err, res) with
          | Some e, _ -> Error (Exec_error ("group commit fsync failed: " ^ e))
          | None, Error e -> Error (Exec_error e)
          | None, Ok outcomes ->
            t.writes <- t.writes + 1;
            Ok (Executed { version = Version.id v; outcomes = List.map describe_outcome outcomes })
        in
        deliver t s rid reply)
      applied;
    gc_versions t;
    true

let process t s rid req =
  match req with
  | Query src -> do_query t s rid src
  | Exec src ->
    t.batch <- (s, rid, src) :: t.batch;
    if List.length t.batch >= t.config.commit_batch then ignore (commit t : bool)
  | Pin ->
    release_pin t s;
    let v = Version.pin t.versions in
    s.pinned <- Some v;
    deliver t s rid (Ok (Pinned (Version.id v)))
  | Unpin ->
    release_pin t s;
    gc_versions t;
    deliver t s rid (Ok Unpinned)

let step t =
  let n = List.length t.sessions in
  let rec scan i =
    if i >= n then None
    else
      let s = List.nth t.sessions ((t.cursor + i) mod n) in
      if Queue.is_empty s.queue then scan (i + 1)
      else begin
        t.cursor <- (t.cursor + i + 1) mod n;
        Some s
      end
  in
  match scan 0 with
  | Some s ->
    let rid, req = Queue.pop s.queue in
    process t s rid req;
    true
  | None -> commit t

let drain t = while step t do () done

let replies s =
  let acc = ref [] in
  Queue.iter (fun r -> acc := r :: !acc) s.outbox;
  Queue.clear s.outbox;
  List.rev !acc

let poll s = Queue.take_opt s.outbox

(* {1 Stats} *)

type stats = {
  sessions_open : int;
  sessions_peak : int;
  served : int;
  refused : int;
  breaker_open_refusals : int;
  cache : Qcache.stats;
  versions_live : int;
  versions_published : int;
  versions_collected : int;
  batches : int;
  writes : int;
}

let stats t =
  {
    sessions_open = List.length t.sessions;
    sessions_peak = t.sessions_peak;
    served = t.served;
    refused = t.refused;
    breaker_open_refusals = t.breaker_open_refusals;
    cache = Qcache.stats t.cache;
    versions_live = Version.live t.versions;
    versions_published = Version.published t.versions;
    versions_collected = Version.collected t.versions;
    batches = t.batches;
    writes = t.writes;
  }

(* {1 Self test} *)

let self_test () =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) = Result.bind in
  let clock = Clock.virtual_ () in
  let mir = Mirror.create () in
  let config =
    {
      default_config with
      max_sessions = 4;
      queue_capacity = 4;
      commit_batch = 2;
      max_bytes = Some (1 lsl 24);
      breaker = { Supervisor.default_config with Supervisor.failure_threshold = 2 };
    }
  in
  let t = local ~config ~clock mir in
  let expect_ok tag = function
    | Ok v -> Ok v
    | Error e -> fail "%s: %s" tag (error_to_string e)
  in
  let one tag s = function
    | [ (_, r) ] -> expect_ok tag (r : reply)
    | rs -> fail "%s (session %d): expected 1 reply, got %d" tag (session_id s) (List.length rs)
  in
  let* writer = expect_ok "open writer" (open_session t) in
  let* reader = expect_ok "open reader" (open_session t) in
  (* 1. a write batch commits and becomes visible as one version *)
  let* (_ : int) =
    expect_ok "submit define"
      (submit t writer
         (Exec
            "define T as SET< TUPLE< Atomic<int>: a > >; insert into T tuple(a: 1); insert \
             into T tuple(a: 2);"))
  in
  drain t;
  let* (_ : outcome) = one "write commit" writer (replies writer) in
  (* 2. reads are cached: same query twice, second served by the cache,
        and an equivalent formulation (renamed binder, swapped operands)
        hits the same slot via normalization *)
  let q1 = "sum(map[x: x.a + 1](T))" and q2 = "sum(map[y: 1 + y.a](T))" in
  let* (_ : int) = expect_ok "q1 submit" (submit t reader (Query q1)) in
  drain t;
  let* o1 = one "q1" reader (replies reader) in
  let* (_ : int) = expect_ok "q1 again" (submit t reader (Query q1)) in
  let* (_ : int) = expect_ok "q2 submit" (submit t reader (Query q2)) in
  drain t;
  let* () =
    match replies reader with
    | [ (_, Ok (Value { cached = true; value = v1; _ })); (_, Ok (Value { cached = true; value = v2; _ })) ]
      -> (
      match o1 with
      | Value { value = v0; cached = false; _ } when Value.equal v0 v1 && Value.equal v1 v2 ->
        Ok ()
      | _ -> fail "cache: first evaluation not fresh, or values diverge")
    | rs ->
      fail "cache: expected two cached hits, got [%s]"
        (String.concat "; "
           (List.map
              (function
                | _, Ok (Value { cached; _ }) -> if cached then "hit" else "miss"
                | _, Ok _ -> "other"
                | _, Error e -> error_to_string e)
              rs))
  in
  (* 3. snapshot isolation: pin the reader, commit a write, the pinned
        read still sees the old state while an unpinned session sees
        the new version *)
  let* (_ : int) = expect_ok "pin" (submit t reader Pin) in
  drain t;
  let* (_ : outcome) = one "pin" reader (replies reader) in
  let* (_ : int) =
    expect_ok "second write" (submit t writer (Exec "insert into T tuple(a: 10);"))
  in
  drain t;
  let* (_ : outcome) = one "second write commit" writer (replies writer) in
  let* (_ : int) = expect_ok "pinned count" (submit t reader (Query "count(T)")) in
  let* fresh = expect_ok "open fresh" (open_session t) in
  let* (_ : int) = expect_ok "fresh count" (submit t fresh (Query "count(T)")) in
  drain t;
  let* pinned_n = one "pinned count" reader (replies reader) in
  let* fresh_n = one "fresh count" fresh (replies fresh) in
  let* () =
    match (pinned_n, fresh_n) with
    | Value { value = a; _ }, Value { value = b; _ } ->
      let s = Value.to_string in
      if s a = "2" && s b = "3" then Ok ()
      else fail "snapshot isolation: pinned read %s (want 2), fresh read %s (want 3)" (s a) (s b)
    | _ -> fail "snapshot isolation: unexpected reply shapes"
  in
  let* (_ : int) = expect_ok "unpin" (submit t reader Unpin) in
  drain t;
  let* (_ : outcome) = one "unpin" reader (replies reader) in
  (* 4. queue overflow sheds with a structured refusal *)
  let* () =
    let rec fill k =
      if k > config.queue_capacity then fail "queue never overflowed"
      else
        match submit t fresh (Query "count(T)") with
        | Ok (_ : int) -> fill (k + 1)
        | Error (Admission_refused _) -> Ok ()
        | Error e -> fail "queue overflow: wrong refusal %s" (error_to_string e)
    in
    fill 0
  in
  drain t;
  ignore (replies fresh : (int * reply) list);
  (* 5. a stream of failing requests trips the breaker; the virtual
        clock, not wall time, reopens it *)
  let* bad = expect_ok "open bad" (open_session t) in
  let* (_ : int) = expect_ok "bad 1" (submit t bad (Query "no_such_extent")) in
  let* (_ : int) = expect_ok "bad 2" (submit t bad (Query "no_such_extent")) in
  drain t;
  ignore (replies bad : (int * reply) list);
  let* retry =
    match submit t bad (Query "count(T)") with
    | Error (Breaker_open retry) -> Ok retry
    | Ok (_ : int) -> fail "breaker did not open after %d failures" 2
    | Error e -> fail "breaker: wrong refusal %s" (error_to_string e)
  in
  Clock.advance clock (retry +. 1.);
  let* (_ : int) = expect_ok "half-open probe" (submit t bad (Query "count(T)")) in
  drain t;
  let* (_ : outcome) = one "half-open probe" bad (replies bad) in
  (* 6. retired versions are collected once unpinned *)
  drain t;
  let s = stats t in
  if s.versions_live > 1 then fail "GC left %d versions resident" s.versions_live
  else if Qcache.hit_rate s.cache <= 0. then fail "cache hit rate is zero"
  else Ok ()
