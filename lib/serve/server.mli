(** The Unix-socket front end: one connection = one session.

    A single-threaded [select] loop multiplexes every connection over
    one {!Serve.t}: after each burst of input lines it runs
    {!Serve.drain} and flushes each session's replies back down its
    connection — many interleaved client streams, one cooperative
    scheduler, no data races by construction.  Framing and syntax are
    {!Protocol}'s. *)

val run :
  ?config:Serve.config ->
  ?bindings:(string * Mirror_core.Expr.t) list ->
  ?durable:Mirror_store.Durable.t ->
  ?stop:(unit -> bool) ->
  socket:string ->
  Mirror_core.Mirror.t ->
  (unit, string) result
(** Listen on [socket] (an existing file there is replaced) and serve
    until [stop] (polled between select rounds, default never) turns
    true; then close every connection and remove the socket.  [Error]
    for a socket that cannot be bound.  [config]/[bindings]/[durable]
    are passed to {!Serve.local}; sessions refused at the cap get one
    refusal line and an immediate close. *)
