(** The concurrent multi-user session layer.

    A serve handle multiplexes many interleaved client streams over
    one live {!Mirror_core.Mirror} database, adding the three serving
    guarantees the single-user facade lacks:

    - {e snapshot-isolated reads}: every query runs against a pinned
      {!Version} — an immutable copy-on-write snapshot of the whole
      logical state — so a reader never observes a half-applied write
      batch, and a session that {!request-Pin}s keeps one frozen view
      across many queries while writers commit past it.
    - {e group-committed writes}: write programs from all sessions are
      batched; a commit applies the batch to the live database (each
      statement journaled through the {!Mirror_store.Durable} WAL),
      pays {e one} fsync for the whole batch ({!Mirror_store.Durable.sync}),
      and only then publishes a single new version — durability before
      visibility, one version per batch.
    - {e admission control}: session count and per-session request
      queues are bounded (overflow is a structured
      {!error-Admission_refused}, never a hang), every query carries a
      {!Mirror_bat.Boundcheck} peak-bytes budget, and a per-session
      {!Mirror_daemon.Supervisor} circuit breaker sheds a stream of
      failing requests with {!error-Breaker_open} until its (virtual
      or wall) clock backoff elapses.

    Results are served through a {!Qcache}: keyed by (version,
    {!Mirror_core.Normalize.key}), so equivalent formulations share a
    slot and a committed write invalidates exactly by never matching
    the new version's lookups.

    Scheduling is cooperative and deterministic: {!submit} only
    enqueues; {!step} processes one request (round-robin across
    sessions) and {!drain} runs to quiescence, committing any open
    write batch.  Tests drive exact interleavings this way; the socket
    front end ({!Server}) calls [drain] after each input burst. *)

type config = {
  max_sessions : int;  (** concurrent session cap *)
  queue_capacity : int;  (** pending requests per session *)
  max_bytes : int option;  (** per-query Boundcheck admission budget *)
  cache_capacity : int;  (** result-cache entries *)
  commit_batch : int;
      (** commit the write batch once it holds this many writes (it
          also commits when {!step} runs out of other work) *)
  breaker : Mirror_daemon.Supervisor.config;
}

val default_config : config
(** 64 sessions, queue 32, no byte budget, cache 256, batch 8,
    {!Mirror_daemon.Supervisor.default_config}. *)

type error =
  | Admission_refused of string
      (** load shedding: session cap, queue overflow, or a query whose
          static peak-bytes envelope exceeds the budget *)
  | Breaker_open of float
      (** the session's breaker is open; retry after this many
          seconds *)
  | Bad_request of string  (** unparseable input *)
  | Exec_error of string  (** the database rejected the operation *)

val error_to_string : error -> string

type outcome =
  | Value of { value : Mirror_core.Value.t; cached : bool; version : int }
      (** query result, the version it was evaluated (or cached)
          under, and whether the result cache served it *)
  | Executed of { version : int; outcomes : string list }
      (** write batch committed; the statements' outcomes and the
          version that made them visible *)
  | Pinned of int  (** now reading version [n] until [Unpin] *)
  | Unpinned

type reply = (outcome, error) result

type request =
  | Query of string  (** Moa expression — snapshot-isolated read *)
  | Exec of string  (** Moa statement program — group-committed write *)
  | Pin  (** freeze the session's read view at the current head *)
  | Unpin  (** release it (queries follow the head again) *)

type t

type session

val local :
  ?config:config ->
  ?clock:Mirror_util.Clock.t ->
  ?seed:int ->
  ?bindings:(string * Mirror_core.Expr.t) list ->
  ?durable:Mirror_store.Durable.t ->
  Mirror_core.Mirror.t ->
  t
(** An in-process handle over a live database.  [clock] (default
    wall) feeds the breakers — tests pass a virtual clock and advance
    it instead of sleeping.  [bindings] are made available to every
    parsed request (the paper's [query] identifier).  [durable], when
    given, must be the store journaling [mirror]: commits then fsync
    through it (group commit).  Version 1 is snapshotted here. *)

val open_session : t -> (session, error) result
(** Admit a new session, or shed it ([Admission_refused]) at the cap. *)

val session_id : session -> int

val close_session : t -> session -> unit
(** Release the session: pending requests are dropped with a
    [Bad_request "session closed"] reply, its pin is released, and its
    slot frees up. *)

val submit : t -> session -> request -> (int, error) result
(** Enqueue one request, returning its request id (replies carry it).
    Refusals are synchronous: a closed session is [Bad_request], an
    open breaker is [Breaker_open], a full queue is
    [Admission_refused].  Nothing executes until {!step}/{!drain}. *)

val step : t -> bool
(** Process one unit of work: the next queued request in round-robin
    session order, or — when every queue is empty — commit the open
    write batch.  False when there is nothing left to do. *)

val drain : t -> unit
(** Run {!step} to quiescence: all queues empty, write batch
    committed, unpinned retired versions collected. *)

val replies : session -> (int * reply) list
(** Drain the session's outbox (delivery order = processing order). *)

val poll : session -> (int * reply) option
(** Take one reply, if any. *)

type stats = {
  sessions_open : int;
  sessions_peak : int;
  served : int;  (** requests processed to a reply *)
  refused : int;  (** structured refusals, submission- or run-time *)
  breaker_open_refusals : int;  (** the subset shed by open breakers *)
  cache : Qcache.stats;
  versions_live : int;
  versions_published : int;
  versions_collected : int;
  batches : int;  (** group commits *)
  writes : int;  (** write requests committed *)
}

val stats : t -> stats

val self_test : unit -> (unit, string) result
(** Scripted in-memory exercise of the serving guarantees (snapshot
    isolation across a commit, cache hits incl. via normalization,
    queue/budget shedding, breaker trip + virtual-clock recovery).
    Backs [mirror_cli serve --self-test]; [Error] says what broke. *)
