module Value = Mirror_core.Value

type command = Req of Serve.request | Stats | Quit

let parse line =
  let line = String.trim line in
  let word, rest =
    match String.index_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  match (String.lowercase_ascii word, rest) with
  | "query", "" -> Error "query needs an expression"
  | "query", src -> Ok (Req (Serve.Query src))
  | "exec", "" -> Error "exec needs a statement program"
  | "exec", src -> Ok (Req (Serve.Exec src))
  | "pin", "" -> Ok (Req Serve.Pin)
  | "unpin", "" -> Ok (Req Serve.Unpin)
  | "stats", "" -> Ok Stats
  | "quit", "" -> Ok Quit
  | ("pin" | "unpin" | "stats" | "quit"), _ -> Error (word ^ " takes no argument")
  | "", _ -> Error "empty request"
  | w, _ -> Error ("unknown request " ^ w)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let kind = function
  | Serve.Admission_refused _ -> "admission"
  | Serve.Breaker_open _ -> "breaker-open"
  | Serve.Bad_request _ -> "bad-request"
  | Serve.Exec_error _ -> "exec"

let message = function
  | Serve.Admission_refused m | Serve.Bad_request m | Serve.Exec_error m -> m
  | Serve.Breaker_open s -> Printf.sprintf "retry in %.3gs" s

let render_error rid e = Printf.sprintf "%d err %s: %s" rid (kind e) (escape (message e))

let render_reply rid = function
  | Ok (Serve.Value { value; cached; version }) ->
    Printf.sprintf "%d %s v%d %s" rid
      (if cached then "hit" else "ok")
      version
      (escape (Value.to_string value))
  | Ok (Serve.Executed { version; outcomes }) ->
    Printf.sprintf "%d ok v%d %s" rid version (escape (String.concat "; " outcomes))
  | Ok (Serve.Pinned v) -> Printf.sprintf "%d ok pinned v%d" rid v
  | Ok Serve.Unpinned -> Printf.sprintf "%d ok unpinned" rid
  | Error e -> render_error rid e

let render_refusal e = render_error 0 e

let render_stats (s : Serve.stats) =
  Printf.sprintf
    "0 ok stats sessions=%d peak=%d served=%d refused=%d breaker_refused=%d cache_hits=%d \
     cache_misses=%d hit_rate=%.3f versions=%d published=%d collected=%d batches=%d writes=%d"
    s.Serve.sessions_open s.Serve.sessions_peak s.Serve.served s.Serve.refused
    s.Serve.breaker_open_refusals s.Serve.cache.Qcache.hits s.Serve.cache.Qcache.misses
    (Qcache.hit_rate s.Serve.cache)
    s.Serve.versions_live s.Serve.versions_published s.Serve.versions_collected s.Serve.batches
    s.Serve.writes
