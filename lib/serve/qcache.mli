(** The plan/result cache of the serving tier.

    Entries are keyed by [(version id, canonical query key)] — the
    key from {!Mirror_core.Normalize.key}, so formulations that differ
    only by binder names or commutative operand order share a slot.
    Keying by version makes invalidation precise by construction: a
    committed write publishes a new version, whose reads simply never
    match the old entries, and {!drop_version} reclaims a version's
    entries the moment the version-store GC retires it.  A stale hit
    is therefore impossible: an entry is only ever consulted by a
    reader pinned to exactly the version it was computed under.

    Bounded LRU: inserting past [capacity] evicts the least recently
    used entry. *)

type t

val create : capacity:int -> t
(** [capacity] must be positive. *)

val find : t -> version:int -> key:string -> Mirror_core.Value.t option
(** Cache lookup; counts a hit or a miss and refreshes recency. *)

val add : t -> version:int -> key:string -> Mirror_core.Value.t -> unit
(** Insert (or refresh) an entry, evicting the LRU entry past
    capacity. *)

val drop_version : t -> int -> int
(** Remove every entry of the given version; returns how many. *)

type stats = {
  hits : int;
  misses : int;
  size : int;
  capacity : int;
  evictions : int;  (** LRU evictions (capacity pressure) *)
  invalidated : int;  (** entries dropped with their GC'd version *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)
