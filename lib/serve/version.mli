(** The copy-on-write version store: snapshot isolation for readers.

    Every committed write batch publishes a new {e version} — an
    immutable {!Mirror_core.Storage.snapshot} of the whole logical
    state plus a monotonically increasing id.  Readers {!pin} a
    version and evaluate against its {!view}; because BATs and row
    lists are immutable once built, a version shares all row data with
    the live storage and with every other version — publishing and
    pinning are O(#extents + #catalog names), never O(rows).

    A version stays resident while it is the head or while any reader
    holds a pin; {!gc} collects the rest.  The serving tier drops the
    matching result-cache entries when a version goes ({!gc} returns
    the collected ids for exactly that purpose). *)

type version

val id : version -> int
(** The version's id; version ids order publication. *)

val view : version -> Mirror_core.Storage.t
(** A queryable storage view of the version, built lazily on first use
    and shared by every reader of the version.  Reads only: the view
    never journals, and writes through it would be visible to the
    other readers of this version (and to nobody else). *)

val pins : version -> int
(** Live pin count (diagnostics). *)

type t

val create : Mirror_core.Storage.t -> t
(** A store whose version 1 is a snapshot of the storage as given. *)

val head : t -> version
(** The newest published version. *)

val publish : t -> Mirror_core.Storage.t -> version
(** Snapshot the storage and install it as the new head.  The old
    head is retired: it stays readable through existing pins and is
    collected by {!gc} once unpinned. *)

val pin : t -> version
(** Pin the head and return it.  The caller must {!unpin} exactly
    once; a pinned version survives {!gc} no matter how old. *)

val pin_this : version -> version
(** Add a pin to a specific (already-held) version — a session
    re-pinning the snapshot it is reading. *)

val unpin : t -> version -> unit
(** Release one pin.  Over-unpinning raises [Invalid_argument]. *)

val gc : t -> int list
(** Collect every retired, unpinned version; returns their ids
    (newest first is not guaranteed).  The head is never collected. *)

val live : t -> int
(** Versions currently resident (head included). *)

val published : t -> int
(** Versions published over the store's lifetime (including v1). *)

val collected : t -> int
(** Versions reclaimed by {!gc} over the store's lifetime. *)
