(** The line-framed wire protocol of [mirror_cli serve].

    One connection is one session.  Requests are single lines:

    {v
    query <moa expression>      snapshot-isolated read
    exec <moa statements>       group-committed write
    pin                         freeze the read view at the head
    unpin                       follow the head again
    stats                       one-line server statistics
    quit                        close the session
    v}

    Every reply is one line, [<id> <status> ...] where [<id>] is the
    server's request id (0 for a refusal at submission, before an id
    was assigned) and [<status>] is [ok], [hit] (served by the result
    cache) or [err <kind>:] with [kind] one of [admission],
    [breaker-open], [bad-request], [exec].  Payloads are escaped so
    they never span lines ([\n], [\\]). *)

type command = Req of Serve.request | Stats | Quit

val parse : string -> (command, string) result
(** Parse one request line (leading/trailing whitespace ignored). *)

val escape : string -> string
(** Newlines and backslashes to [\n]/[\\] — payloads stay one line. *)

val render_reply : int -> Serve.reply -> string
(** One reply line (no trailing newline). *)

val render_refusal : Serve.error -> string
(** A submission-time refusal line, request id 0. *)

val render_stats : Serve.stats -> string
(** [0 ok stats sessions=... served=... hit_rate=...] — one line. *)
