module Value = Mirror_core.Value

type entry = { value : Value.t; mutable tick : int }

type t = {
  tbl : (int * string, entry) Hashtbl.t;
  capacity : int;
  mutable clock : int; (* recency counter: bumped on every touch *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidated : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Qcache.create: capacity must be positive";
  {
    tbl = Hashtbl.create (min capacity 64);
    capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidated = 0;
  }

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let find t ~version ~key =
  match Hashtbl.find_opt t.tbl (version, key) with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* O(size) eviction scan: the cache is small (hundreds of entries) and
   eviction only runs past capacity, so a recency heap would be
   machinery without a measurable win. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.tick <= e.tick -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add t ~version ~key value =
  (match Hashtbl.find_opt t.tbl (version, key) with
  | Some _ -> Hashtbl.remove t.tbl (version, key)
  | None -> if Hashtbl.length t.tbl >= t.capacity then evict_lru t);
  let e = { value; tick = 0 } in
  touch t e;
  Hashtbl.add t.tbl (version, key) e

let drop_version t vid =
  let doomed =
    Hashtbl.fold (fun (v, k) _ acc -> if v = vid then (v, k) :: acc else acc) t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) doomed;
  let n = List.length doomed in
  t.invalidated <- t.invalidated + n;
  n

type stats = {
  hits : int;
  misses : int;
  size : int;
  capacity : int;
  evictions : int;
  invalidated : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    size = Hashtbl.length t.tbl;
    capacity = t.capacity;
    evictions = t.evictions;
    invalidated = t.invalidated;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total
