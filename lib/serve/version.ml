module Storage = Mirror_core.Storage

type version = {
  vid : int;
  snap : Storage.snapshot;
  mutable pins : int;
  mutable retired : bool;
  mutable view : Storage.t option;
      (* lazily materialised and then shared: [Storage.of_snapshot]
         copies the name tables, so building it once per version keeps
         pinning O(1) and readers of the same version share plan
         shapes and statistics spaces *)
}

let id v = v.vid
let pins v = v.pins

let view v =
  match v.view with
  | Some st -> st
  | None ->
    let st = Storage.of_snapshot v.snap in
    v.view <- Some st;
    st

type t = {
  mutable head : version;
  mutable all : version list; (* newest first; every resident version *)
  mutable next_id : int;
  mutable published : int;
  mutable collected : int;
}

let mk_version vid snap = { vid; snap; pins = 0; retired = false; view = None }

let create stor =
  let v = mk_version 1 (Storage.snapshot stor) in
  { head = v; all = [ v ]; next_id = 2; published = 1; collected = 0 }

let head t = t.head

let publish t stor =
  let v = mk_version t.next_id (Storage.snapshot stor) in
  t.next_id <- t.next_id + 1;
  t.head.retired <- true;
  t.head <- v;
  t.all <- v :: t.all;
  t.published <- t.published + 1;
  v

let pin t =
  let v = t.head in
  v.pins <- v.pins + 1;
  v

let pin_this v =
  v.pins <- v.pins + 1;
  v

let unpin (_ : t) v =
  if v.pins <= 0 then invalid_arg "Version.unpin: version is not pinned";
  v.pins <- v.pins - 1

let gc t =
  let gone, kept =
    List.partition (fun v -> v.retired && v.pins = 0 && v != t.head) t.all
  in
  t.all <- kept;
  t.collected <- t.collected + List.length gone;
  List.map (fun v -> v.vid) gone

let live t = List.length t.all
let published t = t.published
let collected t = t.collected
