(** Canonical forms of Moa queries — the serving tier's cache key.

    Two formulations of the same query (renamed binders, swapped
    operands of a commutative operator) should hit the same plan/result
    cache slot and print identically in [explain]/[.trace].  The
    canonical form is computed in two structure-preserving passes:

    - {e commutative sort}: the operand pair of every commutative
      operator ([+], [*], [min], [max], [and], [or], [=], [<>],
      [union], [inter]) is ordered by an alpha-invariant key, so
      [a + b] and [b + a] converge.  Ordered comparisons and [-]/[/]
      are left alone.
    - {e alpha-normalisation}: binder names are renamed [v1], [v2], …
      in pre-order (skipping any name that occurs free in the query,
      so free identifiers like the paper's [query] are never
      captured).

    Both passes preserve semantics: the flattened kernel evaluates
    both operands of every calculation operator regardless of order,
    and renaming bound variables is invisible to evaluation. *)

val canonical : Expr.t -> Expr.t
(** The canonical form.  Idempotent: [canonical (canonical e)] is
    structurally equal to [canonical e]. *)

val key : Expr.t -> string
(** [Expr.to_string (canonical e)] — equal for all formulations that
    differ only by binder names or commutative operand order. *)

val hash : Expr.t -> string
(** CRC-32 of {!key} in hex; a short digest for cache-key display. *)
