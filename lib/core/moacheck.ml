module Atom = Mirror_bat.Atom
module Bat = Mirror_bat.Bat
module P = Mirror_bat.Milprop
module Milcheck = Mirror_bat.Milcheck
module Mil = Mirror_bat.Mil
module Metrics = Mirror_util.Metrics

type env = {
  extent_type : string -> Types.t option;
  extent_prop : string -> Moaprop.t option;
}

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

let rec top_of_type = function
  | Types.Atomic ty -> Moaprop.atomic ty
  | Types.Tuple fields -> Moaprop.Tuple (List.map (fun (l, t) -> (l, top_of_type t)) fields)
  | Types.Set elem -> Moaprop.Set { card = P.any_card; elem = top_of_type elem }
  | Types.Xt (ext, _) ->
    Moaprop.Xprop
      { ext; card = P.any_card; elem = Moaprop.Unknown; ordered = String.equal ext "LIST" }

let env_of_storage st =
  let tenv = Storage.typecheck_env st in
  let cache = Hashtbl.create 8 in
  {
    extent_type = (fun name -> tenv.Typecheck.extent name);
    extent_prop =
      (fun name ->
        match Hashtbl.find_opt cache name with
        | Some p -> p
        | None ->
          let p =
            Option.map
              (fun rows -> Moaprop.of_value (Value.VSet rows))
              (Storage.extent_rows st name)
          in
          Hashtbl.add cache name p;
          p);
  }

(* ------------------------------------------------------------------ *)
(* Inference state                                                     *)
(* ------------------------------------------------------------------ *)

type ictx = {
  env : env;
  tenv : Typecheck.env;
  props : (string, Moaprop.t) Hashtbl.t;  (* path -> inferred envelope *)
  mutable diags : Moaprop.diag list;  (* reversed *)
}

let emit ictx severity path expr fmt =
  Printf.ksprintf
    (fun message ->
      ictx.diags <- { Moaprop.severity; path; op = Expr.op_name expr; message } :: ictx.diags)
    fmt

(* Variables are bound to (envelope, structure type); the type is only
   needed where inference has to consult [Typecheck] (extension
   operators and binder element types) and may be absent when the
   source is itself ill-typed — inference then degrades to Unknown. *)
let tvars vars = List.filter_map (fun (v, (_, ty)) -> Option.map (fun t -> (v, t)) ty) vars

let type_of ictx vars e =
  match Typecheck.infer_with ictx.tenv ~vars:(tvars vars) e with
  | Ok ty -> Some ty
  | Error _ -> None

let elem_ty ictx vars src =
  match type_of ictx vars src with Some (Types.Set t) -> Some t | _ -> None

(* ------------------------------------------------------------------ *)
(* Small lattice accessors                                             *)
(* ------------------------------------------------------------------ *)

let range_of = function Moaprop.Atomic { lo; hi; _ } -> (lo, hi) | _ -> (None, None)
let bconst_of = function Moaprop.Atomic { bconst; _ } -> bconst | _ -> None
let is_int = function Moaprop.Atomic { ty = Atom.TInt; _ } -> true | _ -> false

let statically_empty p =
  match Moaprop.card_of p with Some { P.hi = Some 0; _ } -> true | _ -> false

let set_parts ictx path expr what p =
  match p with
  | Moaprop.Set { card; elem } -> Some (card, elem)
  | Moaprop.Unknown -> Some (P.any_card, Moaprop.Unknown)
  | _ ->
    emit ictx Moaprop.Error path expr "%s expects a SET, got %s" what (Moaprop.to_string p);
    None

let atom_arg ictx path expr what p =
  match p with
  | Moaprop.Atomic { ty; _ } -> Some ty
  | Moaprop.Unknown -> None
  | _ ->
    emit ictx Moaprop.Error path expr "%s expects an atomic value, got %s" what
      (Moaprop.to_string p);
    None

let map2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

(* ------------------------------------------------------------------ *)
(* Atom-level transfer functions                                       *)
(* ------------------------------------------------------------------ *)

(* Integer comparisons can be decided from exact interval endpoints;
   float comparisons are left undecided (a bound within rounding
   tolerance of the pivot must not flip the verdict). *)
let decide_cmp c (alo, ahi) (blo, bhi) =
  let sure_lt x y = match (x, y) with Some a, Some b -> a < b | _ -> false in
  let sure_le x y = match (x, y) with Some a, Some b -> a <= b | _ -> false in
  match c with
  | Bat.Lt ->
    if sure_lt ahi blo then Some true else if sure_le bhi alo then Some false else None
  | Bat.Le ->
    if sure_le ahi blo then Some true else if sure_lt bhi alo then Some false else None
  | Bat.Gt ->
    if sure_lt bhi alo then Some true else if sure_le ahi blo then Some false else None
  | Bat.Ge ->
    if sure_le bhi alo then Some true else if sure_lt ahi blo then Some false else None
  | Bat.Eq ->
    if sure_lt ahi blo || sure_lt bhi alo then Some false
    else if alo = ahi && blo = bhi && alo <> None && alo = blo then Some true
    else None
  | Bat.Ne ->
    if sure_lt ahi blo || sure_lt bhi alo then Some true
    else if alo = ahi && blo = bhi && alo <> None && alo = blo then Some false
    else None

let binop_prop op rty pa pb =
  let alo, ahi = range_of pa and blo, bhi = range_of pb in
  match op with
  | Bat.Add when rty <> Atom.TStr ->
    Moaprop.atomic_range rty (map2 ( +. ) alo blo) (map2 ( +. ) ahi bhi)
  | Bat.Add -> Moaprop.atomic rty
  | Bat.Sub -> Moaprop.atomic_range rty (map2 ( -. ) alo bhi) (map2 ( -. ) ahi blo)
  | Bat.Mul -> (
    match (alo, ahi, blo, bhi) with
    | Some al, Some ah, Some bl, Some bh ->
      let c = [ al *. bl; al *. bh; ah *. bl; ah *. bh ] in
      Moaprop.atomic_range rty
        (Some (List.fold_left Float.min Float.infinity c))
        (Some (List.fold_left Float.max Float.neg_infinity c))
    | _ -> Moaprop.atomic rty)
  | Bat.Div | Bat.Pow ->
    (* Integer division truncates and both can produce non-finite
       values; claim nothing. *)
    Moaprop.atomic rty
  | Bat.MinOp ->
    let hi =
      match (ahi, bhi) with
      | Some x, Some y -> Some (Float.min x y)
      | Some x, None -> Some x
      | None, y -> y
    in
    Moaprop.atomic_range rty (map2 Float.min alo blo) hi
  | Bat.MaxOp ->
    let lo =
      match (alo, blo) with
      | Some x, Some y -> Some (Float.max x y)
      | Some x, None -> Some x
      | None, y -> y
    in
    Moaprop.atomic_range rty lo (map2 Float.max ahi bhi)
  | Bat.CmpOp c ->
    let bc = if is_int pa && is_int pb then decide_cmp c (alo, ahi) (blo, bhi) else None in
    Moaprop.Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = bc }
  | Bat.And ->
    let bc =
      match (bconst_of pa, bconst_of pb) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None
    in
    Moaprop.Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = bc }
  | Bat.Or ->
    let bc =
      match (bconst_of pa, bconst_of pb) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None
    in
    Moaprop.Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = bc }

(* NaN discipline: an envelope with any [Some] numeric bound implies
   the value is not NaN, because every rule that can produce NaN
   (sqrt/log outside their domain, division, pow) claims no bounds,
   and every other rule only states bounds derived from bounded —
   hence non-NaN — inputs. *)
let unop_prop op rty p =
  let lo, hi = range_of p in
  match op with
  | Bat.Not ->
    Moaprop.Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = Option.map not (bconst_of p) }
  | Bat.Neg -> Moaprop.atomic_range rty (Option.map Float.neg hi) (Option.map Float.neg lo)
  | Bat.Abs -> (
    match (lo, hi) with
    | Some l, _ when l >= 0.0 -> Moaprop.atomic_range rty lo hi
    | _, Some h when h <= 0.0 ->
      Moaprop.atomic_range rty (Option.map Float.neg hi) (Option.map Float.neg lo)
    | Some l, Some h ->
      Moaprop.atomic_range rty (Some 0.0) (Some (Float.max (Float.abs l) (Float.abs h)))
    | Some _, None -> Moaprop.atomic_range rty (Some 0.0) None
    | None, _ -> Moaprop.atomic rty)
  | Bat.ToFlt -> Moaprop.atomic_range rty lo hi
  | Bat.Exp -> Moaprop.atomic_range rty (Option.map Float.exp lo) (Option.map Float.exp hi)
  | Bat.Sqrt -> (
    match lo with
    | Some l when l >= 0.0 ->
      Moaprop.atomic_range rty (Some (Float.sqrt l)) (Option.map Float.sqrt hi)
    | _ -> Moaprop.atomic rty)
  | Bat.Log -> (
    match lo with
    | Some l when l > 0.0 ->
      Moaprop.atomic_range rty (Some (Float.log l)) (Option.map Float.log hi)
    | _ -> Moaprop.atomic rty)

let aggr_prop ictx path expr a (c : P.card) ep =
  let err fmt = emit ictx Moaprop.Error path expr fmt in
  let lo, hi = range_of ep in
  let ety = match ep with Moaprop.Atomic { ty; _ } -> Some ty | _ -> None in
  (* An empty input aggregates to the neutral/default value 0 (0.0), so
     widen the range over it whenever emptiness can't be ruled out. *)
  let with_empty (lo, hi) =
    if c.P.lo = 0 then (Option.map (Float.min 0.0) lo, Option.map (Float.max 0.0) hi)
    else (lo, hi)
  in
  match a with
  | Bat.Count ->
    Moaprop.atomic_range Atom.TInt
      (Some (float_of_int c.P.lo))
      (Option.map float_of_int c.P.hi)
  | Bat.Sum -> (
    match ety with
    | Some ((Atom.TInt | Atom.TFlt) as t) ->
      let slo, shi = Moaprop.sum_range c lo hi in
      Moaprop.atomic_range t slo shi
    | Some t ->
      err "sum requires numeric elements, got %s" (Atom.ty_name t);
      Moaprop.Unknown
    | None -> Moaprop.Unknown)
  | Bat.Prod -> (
    match ety with
    | Some ((Atom.TInt | Atom.TFlt) as t) -> Moaprop.atomic t
    | Some t ->
      err "prod requires numeric elements, got %s" (Atom.ty_name t);
      Moaprop.Unknown
    | None -> Moaprop.Unknown)
  | Bat.Avg -> (
    match ety with
    | Some (Atom.TInt | Atom.TFlt) ->
      let lo', hi' = with_empty (lo, hi) in
      Moaprop.atomic_range Atom.TFlt lo' hi'
    | Some t ->
      err "avg requires numeric elements, got %s" (Atom.ty_name t);
      Moaprop.Unknown
    | None -> Moaprop.Unknown)
  | Bat.Min | Bat.Max -> (
    match ety with
    | Some ((Atom.TInt | Atom.TFlt) as t) ->
      let lo', hi' = with_empty (lo, hi) in
      Moaprop.atomic_range t lo' hi'
    | Some t -> Moaprop.atomic t
    | None -> Moaprop.Unknown)

(* ------------------------------------------------------------------ *)
(* The abstract interpreter                                            *)
(* ------------------------------------------------------------------ *)

let rec infer_at ictx vars path expr =
  let prop = infer_node ictx vars path expr in
  Hashtbl.replace ictx.props path prop;
  prop

and infer_node ictx vars path expr =
  let err fmt = emit ictx Moaprop.Error path expr fmt in
  let child ?vars:(vs = vars) slot e = infer_at ictx vs (path ^ slot ^ "/" ^ Expr.op_name e) e in
  let check_bool_pred what p =
    match p with
    | Moaprop.Atomic { ty; _ } when ty <> Atom.TBool ->
      err "%s predicate must be boolean, got %s" what (Atom.ty_name ty)
    | _ -> ()
  in
  match expr with
  | Expr.Extent name -> (
    match ictx.env.extent_prop name with
    | Some p -> p
    | None -> (
      match ictx.env.extent_type name with
      | Some ty -> top_of_type ty
      | None ->
        err "unknown extent %S" name;
        Moaprop.Unknown))
  | Expr.Lit (v, ty) ->
    if Value.type_ok ty v then Moaprop.of_value v
    else begin
      err "literal %s does not have declared type %s" (Value.to_string v) (Types.to_string ty);
      Moaprop.Unknown
    end
  | Expr.Var v -> (
    match List.assoc_opt v vars with
    | Some (p, _) -> p
    | None ->
      err "unbound variable %S" v;
      Moaprop.Unknown)
  | Expr.Field (e, f) -> (
    let p = child "" e in
    match p with
    | Moaprop.Tuple fields -> (
      match List.assoc_opt f fields with
      | Some fp -> fp
      | None ->
        err "tuple has no field %S" f;
        Moaprop.Unknown)
    | Moaprop.Unknown -> Moaprop.Unknown
    | _ ->
      err "field %S selected from a non-tuple (%s)" f (Moaprop.to_string p);
      Moaprop.Unknown)
  | Expr.Tuple fields ->
    let labels = List.map fst fields in
    if List.length (List.sort_uniq String.compare labels) <> List.length labels then
      err "duplicate tuple labels";
    Moaprop.Tuple (List.map (fun (l, e) -> (l, child (":" ^ l) e)) fields)
  | Expr.Map { v; body; src } -> (
    let ps = child ":src" src in
    match set_parts ictx path expr "map" ps with
    | None -> Moaprop.Unknown
    | Some (c, ep) ->
      let ety = elem_ty ictx vars src in
      let pb = child ~vars:((v, (ep, ety)) :: vars) ":body" body in
      Moaprop.Set { card = c; elem = pb })
  | Expr.Select { v; pred; src } -> (
    let ps = child ":src" src in
    match set_parts ictx path expr "select" ps with
    | None -> Moaprop.Unknown
    | Some (c, ep) ->
      let ety = elem_ty ictx vars src in
      let pp = child ~vars:((v, (ep, ety)) :: vars) ":pred" pred in
      check_bool_pred "select" pp;
      let card =
        match bconst_of pp with
        | Some false -> P.exactly 0
        | Some true -> c
        | None -> P.card_upto c
      in
      Moaprop.Set { card; elem = ep })
  | Expr.Join { v1; v2; pred; left; right; l1; l2 } -> (
    let pl = child ":l" left in
    let pr = child ":r" right in
    match
      (set_parts ictx path expr "join (left)" pl, set_parts ictx path expr "join (right)" pr)
    with
    | Some (ca, ea), Some (cb, eb) ->
      if String.equal l1 l2 then err "join labels must differ";
      let t1 = elem_ty ictx vars left and t2 = elem_ty ictx vars right in
      let pp = child ~vars:((v1, (ea, t1)) :: (v2, (eb, t2)) :: vars) ":pred" pred in
      check_bool_pred "join" pp;
      let full = Moaprop.card_prod ca cb in
      let card =
        match bconst_of pp with
        | Some true -> full
        | Some false -> P.exactly 0
        | None -> { P.lo = 0; hi = full.P.hi }
      in
      Moaprop.Set { card; elem = Moaprop.Tuple [ (l1, ea); (l2, eb) ] }
    | _ -> Moaprop.Unknown)
  | Expr.Semijoin { v1; v2; pred; left; right } -> (
    let pl = child ":l" left in
    let pr = child ":r" right in
    match
      ( set_parts ictx path expr "semijoin (left)" pl,
        set_parts ictx path expr "semijoin (right)" pr )
    with
    | Some (ca, ea), Some (cb, eb) ->
      let t1 = elem_ty ictx vars left and t2 = elem_ty ictx vars right in
      let pp = child ~vars:((v1, (ea, t1)) :: (v2, (eb, t2)) :: vars) ":pred" pred in
      check_bool_pred "semijoin" pp;
      let card =
        match bconst_of pp with
        | Some false -> P.exactly 0
        | _ when cb.P.hi = Some 0 -> P.exactly 0
        | Some true when cb.P.lo > 0 -> ca
        | _ -> P.card_upto ca
      in
      Moaprop.Set { card; elem = ea }
    | _ -> Moaprop.Unknown)
  | Expr.Aggr (a, e) -> (
    let p = child "" e in
    match set_parts ictx path expr (Expr.aggr_name a) p with
    | None -> Moaprop.Unknown
    | Some (c, ep) -> aggr_prop ictx path expr a c ep)
  | Expr.Binop (op, a, b) -> (
    let pa = child ":l" a in
    let pb = child ":r" b in
    match
      ( atom_arg ictx path expr "binary operator" pa,
        atom_arg ictx path expr "binary operator" pb )
    with
    | Some ba, Some bb -> (
      match Typecheck.binop_type op ba bb with
      | Error msg ->
        err "%s" msg;
        Moaprop.Unknown
      | Ok rty -> binop_prop op rty pa pb)
    | _ -> Moaprop.Unknown)
  | Expr.Unop (op, e) -> (
    let p = child "" e in
    match atom_arg ictx path expr "unary operator" p with
    | None -> Moaprop.Unknown
    | Some base -> (
      match Typecheck.unop_type op base with
      | Error msg ->
        err "%s" msg;
        Moaprop.Unknown
      | Ok rty -> unop_prop op rty p))
  | Expr.Exists e -> (
    let p = child "" e in
    match set_parts ictx path expr "exists" p with
    | None -> Moaprop.Unknown
    | Some (c, _) ->
      let bc = if c.P.lo > 0 then Some true else if c.P.hi = Some 0 then Some false else None in
      Moaprop.Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = bc })
  | Expr.Member (x, s) -> (
    let px = child ":l" x in
    let ps = child ":r" s in
    ignore (atom_arg ictx path expr "in" px);
    match set_parts ictx path expr "in" ps with
    | None -> Moaprop.Unknown
    | Some (c, _) ->
      let bc = if c.P.hi = Some 0 then Some false else None in
      Moaprop.Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = bc })
  | Expr.Union (a, b) -> (
    let pa = child ":l" a in
    let pb = child ":r" b in
    match
      (set_parts ictx path expr "union" pa, set_parts ictx path expr "union" pb)
    with
    | Some (ca, ea), Some (cb, eb) ->
      let lo = if ca.P.lo > 0 || cb.P.lo > 0 then 1 else 0 in
      (* union of an expression with itself is the distinct idiom: the
         result can't outgrow one operand *)
      if a = b then Moaprop.Set { card = { P.lo; hi = ca.P.hi }; elem = ea }
      else
        Moaprop.Set { card = { P.lo; hi = (P.card_add ca cb).P.hi }; elem = Moaprop.join ea eb }
    | _ -> Moaprop.Unknown)
  | Expr.Diff (a, b) -> (
    let pa = child ":l" a in
    let pb = child ":r" b in
    match (set_parts ictx path expr "diff" pa, set_parts ictx path expr "diff" pb) with
    | Some (ca, ea), Some (cb, _) ->
      let lo = if cb.P.hi = Some 0 && ca.P.lo > 0 then 1 else 0 in
      Moaprop.Set { card = { P.lo; hi = ca.P.hi }; elem = ea }
    | _ -> Moaprop.Unknown)
  | Expr.Inter (a, b) -> (
    let pa = child ":l" a in
    let pb = child ":r" b in
    match (set_parts ictx path expr "inter" pa, set_parts ictx path expr "inter" pb) with
    | Some (ca, ea), Some (cb, _) ->
      let hi =
        match (ca.P.hi, cb.P.hi) with
        | Some x, Some y -> Some (min x y)
        | Some x, None -> Some x
        | None, y -> y
      in
      Moaprop.Set { card = { P.lo = 0; hi }; elem = ea }
    | _ -> Moaprop.Unknown)
  | Expr.Flat e -> (
    let p = child "" e in
    match set_parts ictx path expr "flatten" p with
    | None -> Moaprop.Unknown
    | Some (c1, ep) -> (
      match ep with
      | Moaprop.Set { card = c2; elem = ie } ->
        Moaprop.Set { card = Moaprop.card_prod c1 c2; elem = ie }
      | Moaprop.Unknown ->
        let hi = match c1.P.hi with Some 0 -> Some 0 | _ -> None in
        Moaprop.Set { card = { P.lo = 0; hi }; elem = Moaprop.Unknown }
      | _ ->
        err "flatten expects SET<SET<T>>";
        Moaprop.Unknown))
  | Expr.Nest { src; key; inner } -> (
    let p = child "" src in
    match set_parts ictx path expr "nest" p with
    | None -> Moaprop.Unknown
    | Some (c, ep) ->
      let kp =
        match ep with
        | Moaprop.Tuple fields -> (
          match List.assoc_opt key fields with
          | Some kp -> Some kp
          | None ->
            err "nest: no field %S" key;
            None)
        | Moaprop.Unknown -> Some Moaprop.Unknown
        | _ ->
          err "nest expects a set of tuples";
          None
      in
      (match kp with
      | None -> Moaprop.Unknown
      | Some kp ->
        (* at most one group per row, at least one if any rows; each
           group is non-empty and no larger than the whole input *)
        let outer = { P.lo = (if c.P.lo > 0 then 1 else 0); hi = c.P.hi } in
        let gcard = { P.lo = 1; hi = c.P.hi } in
        Moaprop.Set
          {
            card = outer;
            elem =
              Moaprop.Tuple
                [ (key, kp); (inner, Moaprop.Set { card = gcard; elem = ep }) ];
          }))
  | Expr.Unnest { src; field } -> (
    let p = child "" src in
    match set_parts ictx path expr "unnest" p with
    | None -> Moaprop.Unknown
    | Some (c, ep) -> (
      let loose () =
        let hi = match c.P.hi with Some 0 -> Some 0 | _ -> None in
        Moaprop.Set { card = { P.lo = 0; hi }; elem = Moaprop.Unknown }
      in
      match ep with
      | Moaprop.Tuple fields -> (
        match List.assoc_opt field fields with
        | Some (Moaprop.Set { card = fc; elem = fe }) ->
          let others = List.filter (fun (l, _) -> not (String.equal l field)) fields in
          let elem =
            match fe with
            | Moaprop.Tuple ifields -> Moaprop.Tuple (others @ ifields)
            | Moaprop.Unknown -> Moaprop.Unknown
            | fp -> Moaprop.Tuple (others @ [ (field, fp) ])
          in
          Moaprop.Set { card = Moaprop.card_prod c fc; elem }
        | Some Moaprop.Unknown -> loose ()
        | Some _ ->
          err "unnest field %S must be a SET" field;
          Moaprop.Unknown
        | None ->
          err "unnest: no field %S" field;
          Moaprop.Unknown)
      | Moaprop.Unknown -> loose ()
      | _ ->
        err "unnest expects a set of tuples";
        Moaprop.Unknown))
  | Expr.ExtOp { op; args } -> (
    match Extension.find_op op with
    | None ->
      err "unknown operator %S" op;
      Moaprop.Unknown
    | Some (module E : Extension.S) -> (
      let arg_props = List.mapi (fun i e -> child (":" ^ string_of_int i) e) args in
      let arg_tys =
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> None
            | Some tys -> Option.map (fun t -> t :: tys) (type_of ictx vars e))
          (Some []) args
        |> Option.map List.rev
      in
      match arg_tys with
      | None -> Moaprop.Unknown
      | Some arg_tys -> (
        match E.op_type ~op ~args:arg_tys with
        | Error msg ->
          err "%s" msg;
          Moaprop.Unknown
        | Ok ty -> E.op_envelope ~op ~args:arg_props ~ty ~top:top_of_type)))

let make_ictx env = { env; tenv = { Typecheck.extent = env.extent_type }; props = Hashtbl.create 64; diags = [] }

let infer env expr =
  let ictx = make_ictx env in
  let prop = infer_at ictx [] (Expr.op_name expr) expr in
  (prop, List.rev ictx.diags)

let verify env expr =
  let prop, diags = infer env expr in
  match Moaprop.errors diags with [] -> Ok prop | es -> Stdlib.Error es

(* ------------------------------------------------------------------ *)
(* Logical-level lint                                                  *)
(* ------------------------------------------------------------------ *)

let lint env expr =
  let ictx = make_ictx env in
  let root = Expr.op_name expr in
  ignore (infer_at ictx [] root expr);
  let inference = List.rev ictx.diags in
  let smells = ref [] in
  let smell severity path e fmt =
    Printf.ksprintf
      (fun message ->
        smells := { Moaprop.severity; path; op = Expr.op_name e; message } :: !smells)
      fmt
  in
  (* [infer_at] keyed every node's envelope by its (unique) path, so
     the smell walk just replays the same path construction. *)
  let prop_at path = Hashtbl.find_opt ictx.props path in
  let child_path path slot e = path ^ slot ^ "/" ^ Expr.op_name e in
  let empty_at path = match prop_at path with Some p -> statically_empty p | None -> false in
  let rec walk path parent_empty e =
    let empty = empty_at path in
    if empty && not parent_empty then
      smell Moaprop.Warning path e "statically empty — the subexpression is dead";
    (match e with
    | Expr.Select { pred; _ } -> (
      match prop_at (child_path path ":pred" pred) with
      | Some (Moaprop.Atomic { bconst = Some false; _ }) ->
        smell Moaprop.Warning path e "statically unsatisfiable selection"
      | Some (Moaprop.Atomic { bconst = Some true; _ }) ->
        smell Moaprop.Hint path e "selection predicate is statically true"
      | _ -> ())
    | Expr.Unnest { src = Expr.Nest { inner; _ }; field } when String.equal field inner ->
      smell Moaprop.Hint path e "unnest of the nest it wraps — redundant nesting"
    | Expr.ExtOp { op = "getBL"; args = recv :: query :: _ } ->
      if empty_at (child_path path ":0" recv) then
        smell Moaprop.Warning path e "getBL over provably empty content"
      else if empty_at (child_path path ":1" query) then
        smell Moaprop.Warning path e "getBL with a provably empty query"
    | _ -> ());
    let down slot c = walk (child_path path slot c) empty c in
    match e with
    | Expr.Extent _ | Expr.Lit _ | Expr.Var _ -> ()
    | Expr.Field (x, _) | Expr.Unop (_, x) | Expr.Aggr (_, x) | Expr.Exists x | Expr.Flat x ->
      down "" x
    | Expr.Nest { src; _ } | Expr.Unnest { src; _ } -> down "" src
    | Expr.Tuple fields -> List.iter (fun (l, x) -> down (":" ^ l) x) fields
    | Expr.Map { body; src; _ } ->
      down ":src" src;
      down ":body" body
    | Expr.Select { pred; src; _ } ->
      down ":src" src;
      down ":pred" pred
    | Expr.Join { pred; left; right; _ } | Expr.Semijoin { pred; left; right; _ } ->
      down ":l" left;
      down ":r" right;
      down ":pred" pred
    | Expr.Binop (_, a, b)
    | Expr.Member (a, b)
    | Expr.Union (a, b)
    | Expr.Diff (a, b)
    | Expr.Inter (a, b) ->
      down ":l" a;
      down ":r" b
    | Expr.ExtOp { args; _ } -> List.iteri (fun i x -> down (":" ^ string_of_int i) x) args
  in
  walk root false expr;
  inference @ List.rev !smells

(* ------------------------------------------------------------------ *)
(* Translation validation                                              *)
(* ------------------------------------------------------------------ *)

(* Both sides over-approximate the same concrete BAT: the logical side
   maps the Moa envelope onto the bundle skeleton, the physical side is
   [Milcheck]'s inference over the compiled plan.  If the two envelopes
   don't intersect (per [Milprop.compatible]) no BAT can satisfy both,
   which certifies a broken flattening rule. *)
let validate storage expr shape =
  let env = env_of_storage storage in
  let prop, diags = infer env expr in
  match Moaprop.errors diags with
  | _ :: _ as es -> Stdlib.Error es
  | [] ->
    if Metrics.enabled () then Metrics.incr "moacheck.validations";
    let menv =
      Milcheck.env_of_catalog ~foreign:Extension.foreign_signature (Storage.catalog storage)
    in
    let bad = ref [] in
    let fail path op fmt =
      Printf.ksprintf
        (fun message ->
          bad := { Moaprop.severity = Moaprop.Error; path; op; message } :: !bad)
        fmt
    in
    let check path expected plan =
      if Metrics.enabled () then Metrics.incr "moacheck.envelope_checks";
      let inferred, _ = Milcheck.infer menv plan in
      if not (P.compatible expected inferred) then
        fail path (Mil.op_name plan)
          "flattening broke the envelope: logical side expects %s, physical plan infers %s"
          (P.to_string expected) (P.to_string inferred)
    in
    let bt tty card = { P.unknown with P.hty = Some Atom.TOid; tty; card } in
    let rec walk path ctx prop shape =
      match (prop, shape) with
      | Moaprop.Atomic { ty; _ }, Shape.Atomic plan -> check path (bt (Some ty) ctx) plan
      | Moaprop.Unknown, Shape.Atomic plan -> check path (bt None ctx) plan
      | Moaprop.Tuple fps, Shape.Tuple fss ->
        if
          List.length fps <> List.length fss
          || not (List.for_all2 (fun (lp, _) (ls, _) -> String.equal lp ls) fps fss)
        then
          fail path "tuple" "bundle fields [%s] do not match the envelope's [%s]"
            (String.concat "; " (List.map fst fss))
            (String.concat "; " (List.map fst fps))
        else List.iter2 (fun (l, p) (_, s) -> walk (path ^ ":" ^ l) ctx p s) fps fss
      | Moaprop.Unknown, Shape.Tuple fss ->
        List.iter (fun (l, s) -> walk (path ^ ":" ^ l) ctx Moaprop.Unknown s) fss
      | Moaprop.Set { card; elem }, Shape.Set { link; elem = selem } ->
        let n = Moaprop.card_prod ctx card in
        check (path ^ "/link") (bt (Some Atom.TOid) n) link;
        walk (path ^ "/elem") n elem selem
      | Moaprop.Unknown, Shape.Set { link; elem = selem } ->
        check (path ^ "/link") (bt (Some Atom.TOid) P.any_card) link;
        walk (path ^ "/elem") P.any_card Moaprop.Unknown selem
      | (Moaprop.Xprop _ | Moaprop.Unknown), Shape.Xstruct { ext; meta; bats; subs } -> (
        let ext_ok =
          match prop with
          | Moaprop.Xprop { ext = pext; _ } -> String.equal pext ext
          | _ -> true
        in
        if not ext_ok then
          fail path ext "envelope names extension %s but the bundle is %s"
            (match prop with Moaprop.Xprop { ext = pext; _ } -> pext | _ -> "?")
            ext
        else
          match Extension.find ext with
          | None -> fail path ext "bundle uses unregistered extension %S" ext
          | Some (module E : Extension.S) ->
            let nbats = List.length bats and nsubs = List.length subs in
            let bexp, sexp = E.prop_flat ~ctx ~prop ~meta ~nbats ~nsubs in
            if List.length bexp <> nbats || List.length sexp <> nsubs then
              fail path ext
                "%s.prop_flat returned %d BAT / %d sub expectations for a bundle with %d / %d"
                ext (List.length bexp) (List.length sexp) nbats nsubs
            else begin
              List.iteri
                (fun i (exp, bat) ->
                  match exp with
                  | Some e -> check (path ^ "/bat" ^ string_of_int i) e bat
                  | None -> ())
                (List.combine bexp bats);
              List.iteri
                (fun i ((sp, sc), sub) -> walk (path ^ "/sub" ^ string_of_int i) sc sp sub)
                (List.combine sexp subs)
            end)
      | _, _ ->
        fail path "bundle" "envelope %s does not match the bundle's skeleton"
          (Moaprop.to_string prop)
    in
    walk (Expr.op_name expr) (P.exactly 1) prop shape;
    (match List.rev !bad with [] -> Ok () | ds -> Stdlib.Error ds)
