(** Bundle-level plan checking — {!Mirror_bat.Milcheck} lifted over
    {!Shape.t} plan bundles and wired to the storage manager and the
    extension registry.

    Three entry points mirror the analyzer's three consumers: bundle
    verification ({!verify_shape}), bundle linting ({!lint_shape}) and
    the differential checker ({!differential}) asserting that
    [Optimize.rewrite] and [Milopt.rewrite] preserve every plan's
    inferred type/shape/cardinality envelope.  {!vet} strings them
    together for statically vetting a whole query (used by the CLI
    [lint] command and the bench workloads). *)

val env_of_storage : Storage.t -> Mirror_bat.Milcheck.env
(** Analyzer environment over a storage manager's catalog, with
    [Foreign] signatures resolved through {!Extension.foreign_signature}. *)

val effcheck_env : unit -> Mirror_bat.Effcheck.env
(** Effect-analysis environment with [Foreign] effect declarations
    resolved through {!Extension.foreign_effect}. *)

val boundcheck_env : Storage.t -> Mirror_bat.Boundcheck.env
(** Resource-bound environment over a storage manager's catalog, with
    [Foreign] signatures and cost rules resolved through the extension
    registry. *)

val shape_plans : Extension.planshape -> Mirror_bat.Mil.t list
(** The bundle's plans in {!Shape.iter} order. *)

val verify_shape :
  Mirror_bat.Milcheck.env ->
  Extension.planshape ->
  (unit, Mirror_bat.Milcheck.diag list) result
(** Run the plan verifier over every plan of a bundle; [Error] collects
    every error diagnostic across the bundle. *)

val lint_shape :
  Mirror_bat.Milcheck.env -> Extension.planshape -> Mirror_bat.Milcheck.diag list
(** All lint diagnostics across the bundle. *)

val differential :
  ?specialize:bool -> Storage.t -> Expr.t -> (unit, string) result
(** [differential storage expr] compiles [expr] before and after
    [Optimize.rewrite], checks the two bundles have the same shape
    skeleton with pairwise-compatible envelopes, and checks every plan
    stays envelope-compatible with its [Milopt.rewrite] image. *)

val vet : ?specialize:bool -> Storage.t -> Expr.t -> (unit, string) result
(** Full static vetting of one query: typecheck, {!Moacheck.verify} the
    logical envelope, compile, verify the bundle, run the
    {!Mirror_bat.Effcheck} aliasing analysis (failing on hazard
    errors), run {!Moacheck.validate} (translation validation of the
    flattening), then the differential checker.  [Ok ()] means every
    stage passed. *)

val diags_to_string : Mirror_bat.Milcheck.diag list -> string
(** Diagnostics joined with ["; "]. *)
