(** The shared static-analysis corpus: a small standard database plus
    a battery of Moa queries covering every pipeline feature.

    Used by [mirror_cli lint] (no-argument mode), the analyzer test
    suite and the [@lint] build gate, so "the analyzer accepts every
    corpus plan" means the same thing everywhere. *)

val schema : Types.t
(** [SET< TUPLE< a:int, b:int, s:SET<int>, c:CONTREP<str> > >]. *)

val rows : Value.t list
(** Deterministic sample rows for the [R] extent. *)

val storage : unit -> Storage.t
(** Fresh storage with extensions bootstrapped and [R] defined and
    loaded. *)

val queries : string list
(** The query battery (parseable by {!Parser.parse_expr}). *)
