module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

type env = { extent : string -> Types.t option }

let ( let* ) = Result.bind

(* Helpers below return bare-string errors; the recursion wraps them
   into located diagnostics at the node where they fire. *)
let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let expect_set what = function
  | Types.Set elem -> Ok elem
  | ty -> err "%s expects a SET, got %s" what (Types.to_string ty)

let expect_atomic what = function
  | Types.Atomic b -> Ok b
  | ty -> err "%s expects an atomic value, got %s" what (Types.to_string ty)

let expect_bool what = function
  | Types.Atomic Atom.TBool -> Ok ()
  | ty -> err "%s expects a boolean, got %s" what (Types.to_string ty)

let binop_type op t1 t2 =
  match (op, t1, t2) with
  | (Bat.Add | Bat.Sub | Bat.Mul | Bat.Div | Bat.MinOp | Bat.MaxOp), Atom.TInt, Atom.TInt ->
    Ok Atom.TInt
  | ( (Bat.Add | Bat.Sub | Bat.Mul | Bat.Div | Bat.MinOp | Bat.MaxOp),
      (Atom.TInt | Atom.TFlt),
      (Atom.TInt | Atom.TFlt) ) ->
    Ok Atom.TFlt
  | Bat.Add, Atom.TStr, Atom.TStr -> Ok Atom.TStr
  | Bat.Pow, (Atom.TInt | Atom.TFlt), (Atom.TInt | Atom.TFlt) -> Ok Atom.TFlt
  | Bat.CmpOp _, a, b when a = b -> Ok Atom.TBool
  | Bat.CmpOp _, (Atom.TInt | Atom.TFlt), (Atom.TInt | Atom.TFlt) -> Ok Atom.TBool
  | (Bat.And | Bat.Or), Atom.TBool, Atom.TBool -> Ok Atom.TBool
  | _ ->
    err "operator %s undefined on %s/%s"
      (Expr.binop_sym op)
      (Atom.ty_name t1) (Atom.ty_name t2)

let unop_type op t =
  match (op, t) with
  | Bat.Not, Atom.TBool -> Ok Atom.TBool
  | Bat.Neg, (Atom.TInt | Atom.TFlt) -> Ok t
  | Bat.Abs, (Atom.TInt | Atom.TFlt) -> Ok t
  | (Bat.Log | Bat.Exp | Bat.Sqrt | Bat.ToFlt), (Atom.TInt | Atom.TFlt) -> Ok Atom.TFlt
  | _ -> err "operator %s undefined on %s" (Expr.unop_name op) (Atom.ty_name t)

let aggr_type a t =
  match a with
  | Bat.Count -> Ok Atom.TInt
  | Bat.Avg -> (
    match t with
    | Atom.TInt | Atom.TFlt -> Ok Atom.TFlt
    | _ -> err "avg requires numeric elements, got %s" (Atom.ty_name t))
  | Bat.Sum | Bat.Prod -> (
    match t with
    | Atom.TInt | Atom.TFlt -> Ok t
    | _ -> err "%s requires numeric elements, got %s" (Expr.aggr_name a) (Atom.ty_name t))
  | Bat.Min | Bat.Max -> Ok t

let diag path expr message =
  { Moaprop.severity = Moaprop.Error; path; op = Expr.op_name expr; message }

let rec infer_at env vars path expr =
  let err fmt = Printf.ksprintf (fun s -> Error (diag path expr s)) fmt in
  let locate r = Result.map_error (diag path expr) r in
  let sub ?vars:(vs = vars) slot e = infer_at env vs (path ^ slot ^ "/" ^ Expr.op_name e) e in
  match expr with
  | Expr.Extent name -> (
    match env.extent name with
    | Some ty -> Ok ty
    | None -> err "unknown extent %S" name)
  | Expr.Lit (v, ty) ->
    if Value.type_ok ty v then Ok ty
    else err "literal %s does not have declared type %s" (Value.to_string v) (Types.to_string ty)
  | Expr.Var v -> (
    match List.assoc_opt v vars with
    | Some ty -> Ok ty
    | None -> err "unbound variable %S" v)
  | Expr.Field (e, f) -> (
    let* ty = sub "" e in
    match Types.field ty f with
    | Some fty -> Ok fty
    | None -> err "type %s has no field %S" (Types.to_string ty) f)
  | Expr.Tuple fields ->
    let labels = List.map fst fields in
    if List.length (List.sort_uniq String.compare labels) <> List.length labels then
      err "duplicate tuple labels"
    else
      let* ftys =
        List.fold_left
          (fun acc (l, e) ->
            let* acc = acc in
            let* ty = sub (":" ^ l) e in
            Ok ((l, ty) :: acc))
          (Ok []) fields
      in
      Ok (Types.Tuple (List.rev ftys))
  | Expr.Map { v; body; src } ->
    let* src_ty = sub ":src" src in
    let* elem = locate (expect_set "map" src_ty) in
    let* body_ty = sub ~vars:((v, elem) :: vars) ":body" body in
    Ok (Types.Set body_ty)
  | Expr.Select { v; pred; src } ->
    let* src_ty = sub ":src" src in
    let* elem = locate (expect_set "select" src_ty) in
    let* pred_ty = sub ~vars:((v, elem) :: vars) ":pred" pred in
    let* () = locate (expect_bool "select predicate" pred_ty) in
    Ok src_ty
  | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
    if l1 = l2 then err "join labels must differ"
    else
      let* lty = sub ":l" left in
      let* e1 = locate (expect_set "join (left)" lty) in
      let* rty = sub ":r" right in
      let* e2 = locate (expect_set "join (right)" rty) in
      let* pred_ty = sub ~vars:((v1, e1) :: (v2, e2) :: vars) ":pred" pred in
      let* () = locate (expect_bool "join predicate" pred_ty) in
      Ok (Types.Set (Types.Tuple [ (l1, e1); (l2, e2) ]))
  | Expr.Semijoin { v1; v2; pred; left; right } ->
    let* lty = sub ":l" left in
    let* e1 = locate (expect_set "semijoin (left)" lty) in
    let* rty = sub ":r" right in
    let* e2 = locate (expect_set "semijoin (right)" rty) in
    let* pred_ty = sub ~vars:((v1, e1) :: (v2, e2) :: vars) ":pred" pred in
    let* () = locate (expect_bool "semijoin predicate" pred_ty) in
    Ok lty
  | Expr.Aggr (Bat.Count, e) ->
    let* ty = sub "" e in
    let* _ = locate (expect_set "count" ty) in
    Ok (Types.Atomic Atom.TInt)
  | Expr.Aggr (a, e) ->
    let* ty = sub "" e in
    let* elem = locate (expect_set (Expr.aggr_name a) ty) in
    let* base = locate (expect_atomic (Expr.aggr_name a) elem) in
    let* rty = locate (aggr_type a base) in
    Ok (Types.Atomic rty)
  | Expr.Binop (op, a, b) ->
    let* ta = sub ":l" a in
    let* tb = sub ":r" b in
    let* ba = locate (expect_atomic "binary operator" ta) in
    let* bb = locate (expect_atomic "binary operator" tb) in
    let* rty = locate (binop_type op ba bb) in
    Ok (Types.Atomic rty)
  | Expr.Unop (op, e) ->
    let* ty = sub "" e in
    let* base = locate (expect_atomic "unary operator" ty) in
    let* rty = locate (unop_type op base) in
    Ok (Types.Atomic rty)
  | Expr.Exists e ->
    let* ty = sub "" e in
    let* _ = locate (expect_set "exists" ty) in
    Ok (Types.Atomic Atom.TBool)
  | Expr.Member (x, s) ->
    let* tx = sub ":l" x in
    let* bx = locate (expect_atomic "in" tx) in
    let* ts = sub ":r" s in
    let* elem = locate (expect_set "in" ts) in
    let* bs = locate (expect_atomic "in (set elements)" elem) in
    if bx = bs then Ok (Types.Atomic Atom.TBool)
    else err "in: element type %s vs set of %s" (Atom.ty_name bx) (Atom.ty_name bs)
  | Expr.Union (a, b) | Expr.Diff (a, b) | Expr.Inter (a, b) ->
    let what =
      match expr with Expr.Union _ -> "union" | Expr.Diff _ -> "diff" | _ -> "inter"
    in
    let* ta = sub ":l" a in
    let* ea = locate (expect_set what ta) in
    let* _ = locate (expect_atomic (what ^ " (elements)") ea) in
    let* tb = sub ":r" b in
    let* eb = locate (expect_set what tb) in
    if Types.equal ea eb then Ok ta
    else err "%s: element types differ (%s vs %s)" what (Types.to_string ea) (Types.to_string eb)
  | Expr.Flat e -> (
    let* ty = sub "" e in
    let* elem = locate (expect_set "flatten" ty) in
    match elem with
    | Types.Set inner -> Ok (Types.Set inner)
    | _ -> err "flatten expects SET<SET<T>>, got %s" (Types.to_string ty))
  | Expr.Nest { src; key; inner } -> (
    let* ty = sub "" src in
    let* elem = locate (expect_set "nest" ty) in
    match elem with
    | Types.Tuple fields -> (
      if List.mem_assoc inner fields then err "nest: label %S already used" inner
      else
        match List.assoc_opt key fields with
        | Some (Types.Atomic _ as kty) ->
          Ok (Types.Set (Types.Tuple [ (key, kty); (inner, Types.Set elem) ]))
        | Some other -> err "nest key %S must be atomic, got %s" key (Types.to_string other)
        | None -> err "nest: no field %S" key)
    | _ -> err "nest expects a set of tuples, got %s" (Types.to_string ty))
  | Expr.Unnest { src; field } -> (
    let* ty = sub "" src in
    let* elem = locate (expect_set "unnest" ty) in
    match elem with
    | Types.Tuple fields -> (
      match List.assoc_opt field fields with
      | Some (Types.Set inner) -> (
        let others = List.filter (fun (l, _) -> l <> field) fields in
        match inner with
        | Types.Tuple ifields ->
          let merged = others @ ifields in
          let labels = List.map fst merged in
          if List.length (List.sort_uniq String.compare labels) <> List.length labels then
            err "unnest: label clash between outer and inner tuples"
          else Ok (Types.Set (Types.Tuple merged))
        | _ -> Ok (Types.Set (Types.Tuple (others @ [ (field, inner) ]))))
      | Some other -> err "unnest field %S must be a SET, got %s" field (Types.to_string other)
      | None -> err "unnest: no field %S" field)
    | _ -> err "unnest expects a set of tuples, got %s" (Types.to_string ty))
  | Expr.ExtOp { op; args } -> (
    match Extension.find_op op with
    | None -> err "unknown operator %S" op
    | Some (module E : Extension.S) ->
      let* arg_tys =
        List.fold_left
          (fun (i, acc) e ->
            ( i + 1,
              let* acc = acc in
              let* ty = sub (":" ^ string_of_int i) e in
              Ok (ty :: acc) ))
          (0, Ok []) args
        |> snd
      in
      locate (E.op_type ~op ~args:(List.rev arg_tys)))

let infer env expr = infer_at env [] (Expr.op_name expr) expr

let infer_with ?path env ~vars expr =
  let path = match path with Some p -> p | None -> Expr.op_name expr in
  infer_at env vars path expr

let diag_to_string = Moaprop.diag_to_string
