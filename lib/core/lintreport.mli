(** Structured lint results over queries — the shared backend of the
    CLI's [lint] command (text and [--json] output) and the test
    suite's schema checks.

    One {!query} record carries everything all four analyzer layers
    said about one query: the Moa-level shape lint ({!Moacheck}), the
    MIL-level envelope lint ({!Mirror_bat.Milcheck}), the
    effect-and-aliasing hazards ({!Mirror_bat.Effcheck}) and the
    resource-bound diagnostics ({!Mirror_bat.Boundcheck}), plus the
    Effcheck parallelism verdict (distinct nodes, safe partitions,
    shared column slots) and the Boundcheck footprint summary. *)

type query = {
  src : string;  (** The query text as given. *)
  error : string option;
      (** A pipeline-stage failure (parse, or any {!Plancheck.vet}
          stage); when set, the diagnostic lists are empty. *)
  moa : Moaprop.diag list;
  mil : Mirror_bat.Milcheck.diag list;
  eff : Mirror_bat.Milcheck.diag list;  (** Effcheck hazards. *)
  bound : Mirror_bat.Milcheck.diag list;  (** Boundcheck diagnostics. *)
  nodes : int;  (** Distinct plan-DAG nodes after CSE. *)
  partitions : int;  (** Provably independent node groups. *)
  shared_columns : int;
  est_bytes : int;  (** Estimated resident footprint (all DAG nodes). *)
  peak_bytes : int option;
      (** Sound upper bound on the resident footprint; [None] when an
          undeclared foreign leaves the plan unbounded. *)
  reclaim_bytes : int;
      (** Estimated peak under eager last-use reclamation (liveness
          simulation over the DAG schedule). *)
  failed : bool;
      (** [error] set, any error-severity [moa]/[mil]/[bound]
          diagnostic, or {e any} Effcheck hazard — the effect layer is
          strict so the corpus gate catches new hazards of every
          severity; the bound layer tolerates warnings (undeclared
          foreigns degrade to unbounded without failing). *)
}

type t = { queries : query list; failures : int }

val check : Storage.t -> src:string -> Expr.t -> query
(** Vet and lint one parsed query ([src] is carried through for
    reporting). *)

val check_src : Storage.t -> string -> query
(** Parse then {!check}; a parse failure becomes the [error] field. *)

val sweep : Storage.t -> string list -> t
(** {!check_src} over a query list, counting failures. *)

val to_json : t -> Mirror_util.Jsonx.t
(** Machine-readable report, schema ["mirror-lint/v2"] — additive over
    v1: [{ schema; layers: [{ name ("moa"|"mil"|"eff"|"bound"); schema
    (per-layer tag, e.g. "mirror-lint-bound/v1") }]; checked; failures;
    queries: [{ src; failed; error; nodes; partitions; shared_columns;
    est_bytes; peak_bytes (int or null); reclaim_bytes; diagnostics:
    [{ layer ("moa"|"mil"|"eff"|"bound"); severity
    ("error"|"warning"|"hint"); path; op; message }] }] }]. *)

val print_query : query -> unit
(** The CLI's human-readable rendering: an [ok]/[FAIL] line followed by
    one indented [moa:]/[mil:]/[eff:]/[bound:] line per diagnostic. *)
