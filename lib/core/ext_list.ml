module Mil = Mirror_bat.Mil
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom
module Column = Mirror_bat.Column
module Prop = Mirror_bat.Milprop

let fail fmt = Printf.ksprintf (fun s -> raise (Flatten.Unsupported s)) fmt

let key_of_item field item =
  if field = "" then item else Value.field_exn item field

module E = struct
  let name = "LIST"
  let arity = 1
  let check_type _ = Ok ()
  let ops = [ "tolist"; "tolist_desc"; "take"; "toset" ]

  let op_type ~op ~args =
    match (op, args) with
    | ("tolist" | "tolist_desc"), [ Types.Set elem; Types.Atomic Atom.TStr ] ->
      Ok (Types.Xt (name, [ elem ]))
    | ("tolist" | "tolist_desc"), _ ->
      Error (op ^ " expects (SET<T>, field-name string)")
    | "take", [ Types.Xt ("LIST", [ elem ]); Types.Atomic Atom.TInt ] ->
      Ok (Types.Xt (name, [ elem ]))
    | "take", _ -> Error "take expects (LIST<T>, int)"
    | "toset", [ Types.Xt ("LIST", [ elem ]) ] -> Ok (Types.Set elem)
    | "toset", _ -> Error "toset expects a LIST<T>"
    | _, _ -> Error ("LIST: unknown operator " ^ op)

  let op_eval _env ~op ~args =
    match (op, args) with
    | ("tolist" | "tolist_desc"), [ set; Value.Atom (Atom.Str field) ] ->
      let items = Value.as_set set in
      let cmp a b = Value.compare (key_of_item field a) (key_of_item field b) in
      let cmp = if op = "tolist_desc" then fun a b -> cmp b a else cmp in
      Value.vlist (List.stable_sort cmp items)
    | "take", [ Value.Xv { ext = "LIST"; items; _ }; Value.Atom (Atom.Int n) ] ->
      Value.vlist (List.filteri (fun i _ -> i < n) items)
    | "toset", [ Value.Xv { ext = "LIST"; items; _ } ] -> Value.VSet items
    | _, _ -> failwith ("LIST: bad operands for " ^ op)

  let op_flatten _env ~op ~arg_tys:_ ~raw ~args =
    match (op, raw, args) with
    | ("tolist" | "tolist_desc"), [ _; field_raw ], [ self; _field_shape ] -> (
      let field =
        match field_raw with
        | Expr.Lit (Value.Atom (Atom.Str f), _) -> f
        | _ -> fail "%s: field name must be a string literal" op
      in
      match self with
      | Shape.Set { link; elem } ->
        let key =
          if field = "" then
            match elem with
            | Shape.Atomic b -> b
            | _ -> fail "%s: empty field requires atomic elements" op
          else
            match elem with
            | Shape.Tuple fields -> (
              match List.assoc_opt field fields with
              | Some (Shape.Atomic b) -> b
              | Some _ -> fail "%s: field %S is not atomic" op field
              | None -> fail "%s: no field %S" op field)
            | _ -> fail "%s: elements are not tuples" op
        in
        let pos = Mil.GroupRank { link; key; desc = op = "tolist_desc" } in
        Shape.Xstruct { ext = name; meta = []; bats = [ link; pos ]; subs = [ elem ] }
      | _ -> fail "%s: expected a flattened set" op)
    | "take", [ _; n_raw ], [ self; _n_shape ] -> (
      let n =
        match n_raw with
        | Expr.Lit (Value.Atom (Atom.Int n), _) -> n
        | _ -> fail "take: count must be an integer literal"
      in
      match self with
      | Shape.Xstruct { ext = "LIST"; bats = [ link; pos ]; subs = [ elem ]; _ } ->
        let keep = Mil.SelectCmp (pos, Bat.Lt, Atom.Int n) in
        Shape.Xstruct
          {
            ext = name;
            meta = [];
            bats = [ Mil.Semijoin (link, keep); keep ];
            subs = [ Flatten.filter_shape elem keep ];
          }
      | _ -> fail "take: expected a flattened list")
    | "toset", _, [ self ] -> (
      match self with
      | Shape.Xstruct { ext = "LIST"; bats = [ link; _pos ]; subs = [ elem ]; _ } ->
        Shape.Set { link; elem }
      | _ -> fail "toset: expected a flattened list")
    | _, _, _ -> fail "LIST: bad operands for %s" op

  let materialize env ~recurse ~path ~ty_args ~dom =
    let elem_ty = match ty_args with [ t ] -> t | _ -> assert false in
    let total =
      List.fold_left
        (fun acc (_, v) ->
          match v with
          | Value.Xv { ext = "LIST"; items; _ } -> acc + List.length items
          | _ -> invalid_arg "LIST.materialize: not a list value")
        0 dom
    in
    let base = env.Extension.fresh_store total in
    let next = ref base in
    let hb = Column.Builder.create Atom.TOid in
    let tb = Column.Builder.create Atom.TOid in
    let pb = Column.Builder.create Atom.TInt in
    let elem_dom = ref [] in
    List.iter
      (fun (ctx, v) ->
        match v with
        | Value.Xv { ext = "LIST"; items; _ } ->
          List.iteri
            (fun i item ->
              Column.Builder.add_oid hb !next;
              Column.Builder.add_oid tb ctx;
              Column.Builder.add_int pb i;
              elem_dom := (!next, item) :: !elem_dom;
              incr next)
            items
        | _ -> assert false)
      dom;
    let heads = Column.Builder.finish hb in
    Mirror_bat.Catalog.put env.Extension.catalog (path ^ "#in")
      (Bat.make heads (Column.Builder.finish tb));
    Mirror_bat.Catalog.put env.Extension.catalog (path ^ "#pos")
      (Bat.make heads (Column.Builder.finish pb));
    let elem = recurse ~path:(path ^ "#el") ~ty:elem_ty ~dom:(List.rev !elem_dom) in
    Shape.Xstruct
      {
        ext = name;
        meta = [];
        bats = [ Mil.Get (path ^ "#in"); Mil.Get (path ^ "#pos") ];
        subs = [ elem ];
      }

  let filter_flat ~recurse ~meta:_ ~bats ~subs ~survivors =
    match (bats, subs) with
    | [ link; pos ], [ elem ] ->
      let link' = Mil.Reverse (Mil.Semijoin (Mil.Reverse link, survivors)) in
      Shape.Xstruct
        {
          ext = name;
          meta = [];
          bats = [ link'; Mil.Semijoin (pos, link') ];
          subs = [ recurse elem link' ];
        }
    | _ -> invalid_arg "LIST.filter_flat: malformed bundle"

  let rebase_flat env ~recurse ~meta:_ ~bats ~subs ~m =
    match (bats, subs) with
    | [ link; pos ], [ elem ] ->
      let j = Mil.Join (m, Mil.Reverse link) in
      let base = env.Extension.fresh 0 in
      let link' = Mil.NumberHead (j, base) in
      let m2 = Mil.NumberTail (j, base) in
      Shape.Xstruct
        {
          ext = name;
          meta = [];
          bats = [ link'; Mil.Join (m2, pos) ];
          subs = [ recurse env elem m2 ];
        }
    | _ -> invalid_arg "LIST.rebase_flat: malformed bundle"

  let reify ~lookup ~recurse ~meta:_ ~bats ~subs ~ctx =
    match (bats, subs) with
    | [ link; pos ], [ elem ] ->
      let link_bat = lookup link and pos_bat = lookup pos in
      let pos_of = Hashtbl.create (Bat.count pos_bat) in
      Bat.iter (fun e p -> Hashtbl.replace pos_of (Atom.as_oid e) (Atom.as_int p)) pos_bat;
      let members = ref [] in
      Bat.iter
        (fun e parent -> if Atom.as_oid parent = ctx then members := Atom.as_oid e :: !members)
        link_bat;
      let ordered =
        List.sort
          (fun a b ->
            Int.compare
              (Option.value ~default:max_int (Hashtbl.find_opt pos_of a))
              (Option.value ~default:max_int (Hashtbl.find_opt pos_of b)))
          (List.rev !members)
      in
      Value.vlist (List.map (fun e -> recurse elem e) ordered)
    | _ -> invalid_arg "LIST.reify: malformed bundle"

  let restore env ~recurse ~path ~ty_args =
    let elem_ty = match ty_args with [ t ] -> t | _ -> failwith "LIST.restore: bad type args" in
    List.iter
      (fun suffix ->
        if not (Mirror_bat.Catalog.mem env.Extension.catalog (path ^ suffix)) then
          failwith (Printf.sprintf "LIST.restore: missing catalog entry %s%s" path suffix))
      [ "#in"; "#pos" ];
    Shape.Xstruct
      {
        ext = name;
        meta = [];
        bats = [ Mil.Get (path ^ "#in"); Mil.Get (path ^ "#pos") ];
        subs = [ recurse ~path:(path ^ "#el") ~ty:elem_ty ];
      }

  let foreign_ops = []
  let foreign_sigs = []
  let foreign_effects = []
  let foreign_bounds = []

  let op_envelope ~op ~args ~ty ~top =
    match (op, args) with
    | ("tolist" | "tolist_desc"), Moaprop.Set { card; elem } :: _ ->
      Moaprop.Xprop { ext = name; card; elem; ordered = true }
    | "take", [ Moaprop.Xprop { ext; card; elem; ordered }; n ] ->
      (* take n of a list of size s has min(s, max 0 n) elements *)
      let nlo, nhi =
        match n with
        | Moaprop.Atomic { lo; hi; _ } ->
          ( (match lo with Some f -> max 0 (int_of_float f) | None -> 0),
            match hi with Some f -> Some (max 0 (int_of_float f)) | None -> None )
        | _ -> (0, None)
      in
      let hi =
        match (card.Prop.hi, nhi) with
        | Some a, Some b -> Some (min a b)
        | Some a, None -> Some a
        | None, h -> h
      in
      Moaprop.Xprop { ext; card = { Prop.lo = min card.Prop.lo nlo; hi }; elem; ordered }
    | "toset", [ Moaprop.Xprop { card; elem; _ } ] ->
      (* toset keeps every element (no deduplication) *)
      Moaprop.Set { card; elem }
    | _ -> top ty

  let prop_flat ~ctx ~prop ~meta:_ ~nbats ~nsubs =
    match (prop, nbats, nsubs) with
    | Moaprop.Xprop { card; elem; _ }, 2, 1 ->
      let n = Moaprop.card_prod ctx card in
      ( [
          Some { Prop.unknown with Prop.hty = Some Atom.TOid; tty = Some Atom.TOid; card = n };
          Some { Prop.unknown with Prop.hty = Some Atom.TOid; tty = Some Atom.TInt; card = n };
        ],
        [ (elem, n) ] )
    | _ ->
      (List.init nbats (fun _ -> None), List.init nsubs (fun _ -> (Moaprop.Unknown, Prop.any_card)))

  let bind_value ~path ~recurse ~ty_args v =
    match (ty_args, v) with
    | [ elem_ty ], Value.Xv { ext = "LIST"; meta; items } ->
      Value.Xv
        { ext = "LIST"; meta; items = List.map (recurse ~path:(path ^ "#el") ~ty:elem_ty) items }
    | _ -> v
end

let register () = Extension.register (module E : Extension.S)
