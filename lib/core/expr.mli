(** The Moa object algebra — logical query expressions.

    Binding operators ([map], [select], [join], [semijoin]) carry
    explicit variable names; the concrete syntax's [THIS] is resolved
    to the innermost binder by the parser.  Extension operators
    ([getBL], [tolist], …) are routed through the extension registry by
    operator name. *)

type t =
  | Extent of string  (** A named collection. *)
  | Lit of Value.t * Types.t  (** Literal with its type. *)
  | Var of string  (** A bound variable (THIS). *)
  | Field of t * string  (** Tuple projection. *)
  | Tuple of (string * t) list  (** Tuple construction. *)
  | Map of { v : string; body : t; src : t }
      (** [map\[body\](src)] — evaluate [body] with [v] bound to each
          element. *)
  | Select of { v : string; pred : t; src : t }
      (** [select\[pred\](src)]. *)
  | Join of { v1 : string; v2 : string; pred : t; left : t; right : t; l1 : string; l2 : string }
      (** [join\[pred\](left, right)] — set of [TUPLE<l1:_, l2:_>]
          combining every pair that satisfies [pred]. *)
  | Semijoin of { v1 : string; v2 : string; pred : t; left : t; right : t }
      (** Elements of [left] with at least one witness in [right]. *)
  | Aggr of Mirror_bat.Bat.aggr * t
      (** Aggregate over a [SET<Atomic<_>>].  Over an empty set, [Sum]
          and [Count] yield 0, [Prod] 1, and [Min]/[Max]/[Avg] the base
          type's zero (a deliberate total semantics; see DESIGN.md). *)
  | Binop of Mirror_bat.Bat.binop * t * t  (** Atomic calculation. *)
  | Unop of Mirror_bat.Bat.unop * t
  | Exists of t  (** Set non-emptiness. *)
  | Member of t * t  (** [in(x, set)] for atomic [x]. *)
  | Union of t * t  (** Set union over [SET<Atomic<_>>] (deduplicating). *)
  | Diff of t * t
  | Inter of t * t
  | Flat of t  (** [SET<SET<T>> -> SET<T>]. *)
  | Nest of { src : t; key : string; inner : string }
      (** Group a top-level set of tuples by an atomic field:
          [SET<TUPLE<fs>> -> SET<TUPLE<key, inner: SET<TUPLE<fs>>>>]. *)
  | Unnest of { src : t; field : string }
      (** NF2 unnesting: expand a set-valued tuple field, pairing every
          element with its row's other fields.  When the inner elements
          are tuples their fields merge into the result tuple; otherwise
          they keep the [field] label. *)
  | ExtOp of { op : string; args : t list }
      (** Extension operator; [args] start with the receiving value. *)

val lit_int : int -> t
val lit_flt : float -> t
val lit_str : string -> t
val lit_bool : bool -> t

val lit_str_set : string list -> t
(** A literal [SET<Atomic<str>>] — the shape of the paper's [query]
    argument to [getBL]. *)

val map : v:string -> body:t -> t -> t
(** Constructor helper ([Map]). *)

val select : v:string -> pred:t -> t -> t
(** Constructor helper ([Select]). *)

val getbl : t -> t -> t
(** [getBL(contrep, query)]. *)

val sum : t -> t
(** [Aggr (Sum, e)]. *)

val aggr_name : Mirror_bat.Bat.aggr -> string
(** "sum", "count", … (concrete-syntax keyword). *)

val binop_sym : Mirror_bat.Bat.binop -> string
(** "+", "=", "and", … (concrete-syntax symbol). *)

val unop_name : Mirror_bat.Bat.unop -> string
(** "not", "log", … (concrete-syntax keyword). *)

val op_name : t -> string
(** Short constructor name ("map", "select", "sum", "+", extension op
    name, …) — used as the step label in diagnostic paths. *)

val free_vars : t -> string list
(** Unbound variables, each listed once, in first-use order. *)

val size : t -> int
(** Number of AST nodes. *)

val pp : Format.formatter -> t -> unit
(** Concrete-syntax-compatible rendering (binders print as THIS when
    unambiguous, as named variables otherwise). *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)
