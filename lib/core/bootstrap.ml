let ensure () =
  Ext_list.register ();
  Ext_contrep.register ();
  (* Upgrade the admission oracle from Boundcheck's catalog-only
     default to one that knows the registry's foreign signatures and
     cost rules, so budgeted sessions can admit extension plans. *)
  Mirror_bat.Mil.set_bound_oracle
    (Mirror_bat.Boundcheck.oracle ~foreign:Extension.foreign_signature
       ~foreign_bound:Extension.foreign_bound ())
