(** The flattening compiler: Moa expressions to BAT algebra plans.

    This is the translation of [BWK98] ("Flattening an object algebra
    to provide performance"): a logical expression over structures
    compiles to a bundle of {!Mil} plans, one per BAT of the result's
    flattened representation.  Iteration ([map]) compiles to evaluating
    the body once over the whole element domain — the set-at-a-time
    processing the paper credits for Mirror's scalability — and
    selections/joins become kernel semijoins over link BATs.

    Two context transformations are exposed because extension
    structures participate in them through their registry hooks:
    {!filter_shape} (restrict to surviving contexts) and
    {!rebase_shape} (re-key contexts, duplicating where a context
    participates in several join pairs). *)

exception Unsupported of string
(** Raised for constructs outside the compilable fragment (e.g. a
    [getBL] whose query depends on an enclosing binder, [nest] below
    the top level, or a literal of unsupported shape).  Expressions
    accepted by {!Typecheck.infer} otherwise always compile. *)

exception Ill_formed of string
(** Raised (only under [~check:true]) when the emitted bundle fails
    {!Mirror_bat.Milcheck.verify}, or when {!Moacheck.validate} finds a
    plan envelope disjoint from the logical envelope — either way a
    compiler bug, since well-typed expressions must compile to
    well-formed, envelope-respecting plans. *)

val compile :
  ?specialize:bool ->
  ?check:bool ->
  ?trace:Mirror_util.Trace.t ->
  Storage.t ->
  Expr.t ->
  Extension.planshape
(** Compile a closed, well-typed expression.  [specialize] (default
    true) enables physical specialisations such as the hash equi-join
    (an equality conjunct in a join predicate restricts candidate pairs
    by a key join rather than the full cross product); disable it for
    the optimisation-ablation experiments.  [check] (default false)
    runs the {!Mirror_bat.Milcheck} plan verifier over every emitted
    plan against the storage catalog and extension registry, then
    {!Moacheck.validate} (translation validation of the bundle against
    the logical envelope).  [trace] records ["flatten.compile"] (with a
    ["bats"] attribute), ["flatten.verify"] and ["flatten.validate"]
    spans.
    @raise Unsupported
    @raise Ill_formed under [~check:true] for a bundle that fails
    verification. *)

val root_dom : Mirror_bat.Mil.t
(** The top-level context domain: the singleton [(@0, @0)]. *)

val filter_shape : Extension.planshape -> Mirror_bat.Mil.t -> Extension.planshape
(** [filter_shape shape survivors] keeps only the contexts that occur
    among the heads of [survivors]. *)

val rebase_shape :
  Extension.flat_env -> Extension.planshape -> Mirror_bat.Mil.t -> Extension.planshape
(** [rebase_shape env shape m] re-keys the bundle onto the new context
    oids of [m] (a BAT new_ctx -> old_ctx). *)
