module Milcheck = Mirror_bat.Milcheck
module Effcheck = Mirror_bat.Effcheck
module Boundcheck = Mirror_bat.Boundcheck
module Jsonx = Mirror_util.Jsonx

type query = {
  src : string;
  error : string option;
  moa : Moaprop.diag list;
  mil : Milcheck.diag list;
  eff : Milcheck.diag list;
  bound : Milcheck.diag list;
  nodes : int;
  partitions : int;
  shared_columns : int;
  est_bytes : int;
  peak_bytes : int option;
  reclaim_bytes : int;
  failed : bool;
}

type t = { queries : query list; failures : int }

let failed_query src error =
  {
    src;
    error = Some error;
    moa = [];
    mil = [];
    eff = [];
    bound = [];
    nodes = 0;
    partitions = 0;
    shared_columns = 0;
    est_bytes = 0;
    peak_bytes = None;
    reclaim_bytes = 0;
    failed = true;
  }

let check st ~src expr =
  match Plancheck.vet st expr with
  | Error e -> failed_query src e
  | Ok () -> (
    match Flatten.compile st (Optimize.rewrite expr) with
    | exception Flatten.Unsupported e -> failed_query src ("flatten: " ^ e)
    | shape ->
      let moa = Moacheck.lint (Moacheck.env_of_storage st) expr in
      let shape = Shape.map Mirror_bat.Milopt.rewrite shape in
      let mil = Plancheck.lint_shape (Plancheck.env_of_storage st) shape in
      let verdict =
        Effcheck.analyze (Plancheck.effcheck_env ()) (Plancheck.shape_plans shape)
      in
      let bounds =
        Boundcheck.analyze (Plancheck.boundcheck_env st) (Plancheck.shape_plans shape)
      in
      (* The effect layer is strict: any hazard fails the query, not
         just error severity — a warning-level hazard still blocks the
         parallel-executor precondition the corpus gate protects.  The
         bound layer fails on errors only: an unbounded-foreign warning
         degrades the envelope without invalidating the plan. *)
      let failed =
        Moaprop.errors moa <> []
        || Milcheck.errors mil <> []
        || verdict.Effcheck.hazards <> []
        || Milcheck.errors bounds.Boundcheck.diags <> []
      in
      {
        src;
        error = None;
        moa;
        mil;
        eff = verdict.Effcheck.hazards;
        bound = bounds.Boundcheck.diags;
        nodes = verdict.Effcheck.nodes;
        partitions = verdict.Effcheck.partitions;
        shared_columns = verdict.Effcheck.shared_columns;
        est_bytes = bounds.Boundcheck.resident.Boundcheck.fp_est;
        peak_bytes = bounds.Boundcheck.resident.Boundcheck.fp_hi;
        reclaim_bytes = bounds.Boundcheck.reclaim.Boundcheck.fp_est;
        failed;
      })

let check_src st src =
  match Parser.parse_expr src with
  | Error e -> failed_query src ("parse: " ^ e)
  | Ok expr -> check st ~src expr

let sweep st srcs =
  let queries = List.map (check_src st) srcs in
  { queries; failures = List.length (List.filter (fun q -> q.failed) queries) }

(* {1 JSON rendering} *)

let moa_severity = function
  | Moaprop.Error -> "error"
  | Moaprop.Warning -> "warning"
  | Moaprop.Hint -> "hint"

let mil_severity = function
  | Milcheck.Error -> "error"
  | Milcheck.Warning -> "warning"
  | Milcheck.Hint -> "hint"

let diag_json ~layer ~severity ~path ~op ~message =
  Jsonx.Obj
    [
      ("layer", Jsonx.Str layer);
      ("severity", Jsonx.Str severity);
      ("path", Jsonx.Str path);
      ("op", Jsonx.Str op);
      ("message", Jsonx.Str message);
    ]

let query_json q =
  let moa =
    List.map
      (fun (d : Moaprop.diag) ->
        diag_json ~layer:"moa" ~severity:(moa_severity d.Moaprop.severity) ~path:d.Moaprop.path
          ~op:d.Moaprop.op ~message:d.Moaprop.message)
      q.moa
  in
  let mil_layer layer =
    List.map (fun (d : Milcheck.diag) ->
        diag_json ~layer ~severity:(mil_severity d.Milcheck.severity) ~path:d.Milcheck.path
          ~op:d.Milcheck.op ~message:d.Milcheck.message)
  in
  Jsonx.Obj
    [
      ("src", Jsonx.Str q.src);
      ("failed", Jsonx.Bool q.failed);
      ("error", match q.error with Some e -> Jsonx.Str e | None -> Jsonx.Null);
      ("nodes", Jsonx.Int q.nodes);
      ("partitions", Jsonx.Int q.partitions);
      ("shared_columns", Jsonx.Int q.shared_columns);
      ("est_bytes", Jsonx.Int q.est_bytes);
      ("peak_bytes", match q.peak_bytes with Some b -> Jsonx.Int b | None -> Jsonx.Null);
      ("reclaim_bytes", Jsonx.Int q.reclaim_bytes);
      ( "diagnostics",
        Jsonx.Arr
          (moa @ mil_layer "mil" q.mil @ mil_layer "eff" q.eff @ mil_layer "bound" q.bound) );
    ]

let layers_json =
  Jsonx.Arr
    (List.map
       (fun (name, schema) ->
         Jsonx.Obj [ ("name", Jsonx.Str name); ("schema", Jsonx.Str schema) ])
       [
         ("moa", "mirror-lint-moa/v1");
         ("mil", "mirror-lint-mil/v1");
         ("eff", "mirror-lint-eff/v1");
         ("bound", "mirror-lint-bound/v1");
       ])

let to_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "mirror-lint/v2");
      ("layers", layers_json);
      ("checked", Jsonx.Int (List.length t.queries));
      ("failures", Jsonx.Int t.failures);
      ("queries", Jsonx.Arr (List.map query_json t.queries));
    ]

(* {1 Text rendering} *)

let print_query q =
  match q.error with
  | Some e -> Printf.printf "FAIL  %s\n  %s\n" q.src e
  | None ->
    Printf.printf "%s  %s\n" (if q.failed then "FAIL" else "ok  ") q.src;
    List.iter (fun d -> Printf.printf "  moa: %s\n" (Moaprop.diag_to_string d)) q.moa;
    List.iter (fun d -> Printf.printf "  mil: %s\n" (Milcheck.diag_to_string d)) q.mil;
    List.iter (fun d -> Printf.printf "  eff: %s\n" (Milcheck.diag_to_string d)) q.eff;
    List.iter (fun d -> Printf.printf "  bound: %s\n" (Milcheck.diag_to_string d)) q.bound
