(** Query execution: flatten, run on the kernel, reify.

    [query] is the production path: type-check, optionally optimise,
    compile with {!Flatten}, execute the plan bundle in one {!Mil}
    session (so shared subplans evaluate once), and rebuild the logical
    result value.  The report carries executor statistics for the
    benchmark harness. *)

type report = {
  value : Value.t;  (** The logical result. *)
  result_type : Types.t;  (** Inferred type of the expression. *)
  plan_bats : int;  (** BATs in the result bundle. *)
  plan_nodes : int;  (** Total plan-tree operator nodes (before CSE). *)
  evaluated : int;  (** Kernel operators actually executed. *)
  memo_hits : int;  (** Plan nodes served by the memo table. *)
  par_ops : int;
      (** Operators that ran on the morsel-parallel kernel (0 unless a
          {!Mirror_bat.Parkernel.default_pool} is configured and the
          Effcheck verdict licensed the plan). *)
  par_morsels : int;  (** Morsels scheduled across those operators. *)
  bound_est_rows : int;
      (** {!Mirror_bat.Boundcheck} row estimate summed over the
          bundle's root plans. *)
  bound_est_bytes : int;  (** Estimated resident footprint of the DAG. *)
  bound_peak_bytes : int option;
      (** Sound upper bound on the resident footprint; [None] when an
          undeclared foreign leaves the plan unbounded. *)
  actual_bytes : int;
      (** Bytes actually held by the session's memo after execution
          ({!Mirror_bat.Mil.resident_bytes}). *)
}

val query :
  ?cse:bool ->
  ?optimize:bool ->
  ?specialize:bool ->
  ?check:bool ->
  ?trace:Mirror_util.Trace.t ->
  ?max_bytes:int ->
  Storage.t ->
  Expr.t ->
  (report, string) result
(** Run a closed expression.  [cse], [optimize] and [specialize] (all
    default true) exist for the ablation experiments; see
    {!Flatten.compile} for [specialize].  [check] (default false) is
    the debug mode: the bundle is verified by {!Mirror_bat.Milcheck},
    the flattening is translation-validated against the {!Moacheck}
    logical envelope, the {!Plancheck.differential} checker vets both
    optimiser stages, and every executed plan's result BAT is compared
    against its inferred property envelope.  [trace] (default
    {!Mirror_util.Trace.null}) records one span per pipeline phase —
    ["typecheck"], ["optimize"], ["flatten.compile"], ["milopt"],
    ["boundcheck"], ["execute"] — with the kernel's per-operator spans
    nested under ["execute"].  [max_bytes] sets the session's admission
    budget: a plan whose {!Mirror_bat.Boundcheck} peak envelope exceeds
    it (or is unbounded) is refused before evaluation and reported as
    an [Error]. *)

val query_value : Storage.t -> Expr.t -> (Value.t, string) result
(** Just the value. *)

val profile : Storage.t -> Expr.t -> ((string * float * int) list, string) result
(** Execute with per-operator profiling and return (operator, total
    self seconds, evaluations), most expensive first. *)

val explain : ?optimize:bool -> Storage.t -> Expr.t -> (string, string) result
(** The compiled plan bundle, pretty-printed. *)

val explain_analyze :
  ?optimize:bool ->
  ?cse:bool ->
  ?max_bytes:int ->
  Storage.t ->
  Expr.t ->
  (string, string) result
(** Run the query under a fresh trace and render the result: headline
    statistics including the static bounds line ([bounds: est N rows /
    E, peak P (actual A)]), the phase span tree (with per-operator
    rows, times and memo-hit events nested under ["execute"]) and a
    per-operator rollup table.  [max_bytes] is passed through to
    {!query}'s admission gate.  Backs [mirror_cli explain analyze] and
    the REPL's [.trace]. *)

val reify :
  lookup:(Mirror_bat.Mil.t -> Mirror_bat.Bat.t) ->
  Extension.planshape ->
  Value.t
(** Rebuild the top-level (context @0) value of a plan bundle given a
    plan evaluator — used by extensions and tests. *)
