module Catalog = Mirror_bat.Catalog
module Bat = Mirror_bat.Bat
module Mil = Mirror_bat.Mil
module Atom = Mirror_bat.Atom
module Column = Mirror_bat.Column
module Space = Mirror_ir.Space

type extent = {
  ty : Types.t;
  mutable shape : Extension.planshape option;
  mutable rows : Value.t list option;
}

type journal_record =
  | J_define of string * Types.t
  | J_replace of string * Value.t list

type t = {
  cat : Catalog.t;
  exts : (string, extent) Hashtbl.t;
  spaces : (string, Space.t) Hashtbl.t;
  mutable next_store : int;
  mutable next_query : int;
  mutable journal : (journal_record -> unit) option;
}

let query_base_start = 1 lsl 40
let query_stride = 1 lsl 32

let create () =
  {
    cat = Catalog.create ();
    exts = Hashtbl.create 16;
    spaces = Hashtbl.create 8;
    next_store = 0;
    next_query = query_base_start;
    journal = None;
  }

let catalog t = t.cat
let set_journal t j = t.journal <- j
let jlog t r = match t.journal with None -> () | Some f -> f r
let store_base t = t.next_store

let fresh_store t n =
  let base = t.next_store in
  t.next_store <- t.next_store + max n 1;
  base

let fresh_query_base t =
  let base = t.next_query in
  t.next_query <- t.next_query + query_stride;
  base

let space_find t name = Hashtbl.find_opt t.spaces name

let space_create t name =
  let sp = Space.create name in
  Hashtbl.replace t.spaces name sp;
  sp

let eval_env t = { Extension.space = space_find t }

let store_env t =
  { Extension.catalog = t.cat; fresh_store = fresh_store t; space_create = space_create t }

(* {1 Schema} *)

let rec check_type ty =
  match ty with
  | Types.Atomic _ -> Ok ()
  | Types.Tuple fields ->
    List.fold_left
      (fun acc (_, fty) -> Result.bind acc (fun () -> check_type fty))
      (Ok ()) fields
  | Types.Set elem -> check_type elem
  | Types.Xt (name, args) -> (
    match Extension.find name with
    | None -> Error (Printf.sprintf "unknown structure %S" name)
    | Some (module E : Extension.S) ->
      if List.length args <> E.arity then
        Error (Printf.sprintf "%s expects %d type parameter(s)" name E.arity)
      else
        Result.bind (E.check_type args) (fun () ->
            List.fold_left
              (fun acc a -> Result.bind acc (fun () -> check_type a))
              (Ok ()) args))

let define_raw t ~name ty =
  if Hashtbl.mem t.exts name then Error (Printf.sprintf "extent %S already defined" name)
  else if String.contains name '#' || String.contains name '/' then
    Error "extent names must not contain '#' or '/'"
  else if not (Types.well_labelled ty) then Error "tuple labels must be non-empty and distinct"
  else
    match ty with
    | Types.Set _ ->
      Result.map
        (fun () -> Hashtbl.add t.exts name { ty; shape = None; rows = None })
        (check_type ty)
    | _ -> Error (Printf.sprintf "extents must be sets, got %s" (Types.to_string ty))

(* {1 Materialisation} *)

let put_atomic_bat t ~path ~base_ty dom =
  let hb = Column.Builder.create Atom.TOid in
  let tb = Column.Builder.create base_ty in
  List.iter
    (fun (ctx, v) ->
      Column.Builder.add_oid hb ctx;
      Column.Builder.add tb (Value.as_atom v))
    dom;
  Catalog.put t.cat path (Bat.make (Column.Builder.finish hb) (Column.Builder.finish tb))

let rec materialize t ~path ~ty ~dom : Extension.planshape =
  let fail ctx v =
    invalid_arg
      (Printf.sprintf "Storage: value %s at %s (ctx @%d) does not match type %s"
         (Value.to_string v) path ctx (Types.to_string ty))
  in
  match ty with
  | Types.Atomic base_ty ->
    List.iter
      (fun (ctx, v) ->
        match v with
        | Value.Atom a when Atom.type_of a = base_ty -> ()
        | _ -> fail ctx v)
      dom;
    put_atomic_bat t ~path ~base_ty dom;
    Shape.Atomic (Mil.Get path)
  | Types.Tuple fields ->
    let sub (label, fty) =
      let fdom =
        List.map
          (fun (ctx, v) ->
            match v with
            | Value.Tup fs -> (
              match List.assoc_opt label fs with
              | Some fv -> (ctx, fv)
              | None -> fail ctx v)
            | _ -> fail ctx v)
          dom
      in
      (label, materialize t ~path:(path ^ "/" ^ label) ~ty:fty ~dom:fdom)
    in
    Shape.Tuple (List.map sub fields)
  | Types.Set elem_ty ->
    let total =
      List.fold_left
        (fun acc (ctx, v) ->
          match v with Value.VSet items -> acc + List.length items | _ -> fail ctx v)
        0 dom
    in
    let base = fresh_store t total in
    let next = ref base in
    let hb = Column.Builder.create Atom.TOid in
    let tb = Column.Builder.create Atom.TOid in
    let elem_dom = ref [] in
    List.iter
      (fun (ctx, v) ->
        List.iter
          (fun item ->
            Column.Builder.add_oid hb !next;
            Column.Builder.add_oid tb ctx;
            elem_dom := (!next, item) :: !elem_dom;
            incr next)
          (Value.as_set v))
      dom;
    Catalog.put t.cat (path ^ "#in")
      (Bat.make (Column.Builder.finish hb) (Column.Builder.finish tb));
    let elem =
      materialize t ~path:(path ^ "#el") ~ty:elem_ty ~dom:(List.rev !elem_dom)
    in
    Shape.Set { link = Mil.Get (path ^ "#in"); elem }
  | Types.Xt (name, ty_args) ->
    let (module E : Extension.S) = Extension.find_exn name in
    List.iter
      (fun (ctx, v) ->
        match v with Value.Xv { ext; _ } when ext = name -> () | _ -> fail ctx v)
      dom;
    E.materialize (store_env t)
      ~recurse:(fun ~path ~ty ~dom -> materialize t ~path ~ty ~dom)
      ~path ~ty_args ~dom

let rec bind_value t ~path ~ty v =
  match (ty, v) with
  | Types.Atomic _, _ -> v
  | Types.Tuple fields, Value.Tup fvs ->
    Value.Tup
      (List.map
         (fun (label, fv) ->
           match List.assoc_opt label fields with
           | Some fty -> (label, bind_value t ~path:(path ^ "/" ^ label) ~ty:fty fv)
           | None -> (label, fv))
         fvs)
  | Types.Set elem_ty, Value.VSet items ->
    Value.VSet (List.map (bind_value t ~path:(path ^ "#el") ~ty:elem_ty) items)
  | Types.Xt (name, ty_args), Value.Xv _ ->
    let (module E : Extension.S) = Extension.find_exn name in
    E.bind_value ~path
      ~recurse:(fun ~path ~ty v -> bind_value t ~path ~ty v)
      ~ty_args v
  | _, _ -> v

let clear_prefix t name =
  List.iter
    (fun entry ->
      if
        entry = name
        || Mirror_util.Stringx.starts_with ~prefix:(name ^ "#") entry
        || Mirror_util.Stringx.starts_with ~prefix:(name ^ "/") entry
      then Catalog.remove t.cat entry)
    (Catalog.names t.cat);
  List.iter
    (fun sp ->
      if
        sp = name
        || Mirror_util.Stringx.starts_with ~prefix:(name ^ "#") sp
        || Mirror_util.Stringx.starts_with ~prefix:(name ^ "/") sp
      then Hashtbl.remove t.spaces sp)
    (List.of_seq (Hashtbl.to_seq_keys t.spaces))

let load_unlogged t ~name rows =
  match Hashtbl.find_opt t.exts name with
  | None -> Error (Printf.sprintf "unknown extent %S" name)
  | Some extent -> (
    let elem_ty = match extent.ty with Types.Set e -> e | _ -> assert false in
    match List.find_opt (fun r -> not (Value.type_ok elem_ty r)) rows with
    | Some bad ->
      Error
        (Printf.sprintf "row %s does not match element type %s" (Value.to_string bad)
           (Types.to_string elem_ty))
    | None -> (
      clear_prefix t name;
      let base = fresh_store t (List.length rows) in
      let oids = List.mapi (fun i _ -> base + i) rows in
      let hb = Column.Builder.create Atom.TOid in
      let tb = Column.Builder.create Atom.TOid in
      List.iter
        (fun oid ->
          Column.Builder.add_oid hb oid;
          Column.Builder.add_oid tb 0)
        oids;
      Catalog.put t.cat (name ^ "#in")
        (Bat.make (Column.Builder.finish hb) (Column.Builder.finish tb));
      match
        materialize t ~path:(name ^ "#el") ~ty:elem_ty ~dom:(List.combine oids rows)
      with
      | shape ->
        extent.shape <- Some (Shape.Set { link = Mil.Get (name ^ "#in"); elem = shape });
        extent.rows <-
          Some (List.map (bind_value t ~path:(name ^ "#el") ~ty:elem_ty) rows);
        Ok oids
      | exception Invalid_argument msg -> Error msg))

(* The journal records an operation only after it applied cleanly: a
   crash in between means the caller never saw it succeed, so losing
   it is correct.  Internal reloads go through [load_unlogged] so a
   single DML statement journals exactly one record. *)
let load t ~name rows =
  Result.map
    (fun oids ->
      jlog t (J_replace (name, rows));
      oids)
    (load_unlogged t ~name rows)

(* Restore path: rebuild an extent's plan shape from the catalog's
   deterministic naming (the dual of [materialize]); extension
   structures rebuild their side state through their [restore] hook. *)
let rec restore_shape t ~path ~ty : Extension.planshape =
  let need name =
    if not (Catalog.mem t.cat name) then
      invalid_arg (Printf.sprintf "restore: missing catalog entry %S" name)
  in
  match ty with
  | Types.Atomic _ ->
    need path;
    Shape.Atomic (Mil.Get path)
  | Types.Tuple fields ->
    Shape.Tuple
      (List.map (fun (l, fty) -> (l, restore_shape t ~path:(path ^ "/" ^ l) ~ty:fty)) fields)
  | Types.Set elem_ty ->
    need (path ^ "#in");
    Shape.Set
      { link = Mil.Get (path ^ "#in"); elem = restore_shape t ~path:(path ^ "#el") ~ty:elem_ty }
  | Types.Xt (name, ty_args) ->
    let (module E : Extension.S) = Extension.find_exn name in
    E.restore (store_env t)
      ~recurse:(fun ~path ~ty -> restore_shape t ~path ~ty)
      ~path ~ty_args

let define_restored t ~name ty =
  match define_raw t ~name ty with
  | Error _ as e -> e
  | Ok () -> (
    let extent = Hashtbl.find t.exts name in
    match restore_shape t ~path:name ~ty with
    | shape ->
      extent.shape <- Some shape;
      Ok shape
    | exception Invalid_argument msg | exception Failure msg ->
      Hashtbl.remove t.exts name;
      Error msg)

let set_rows t ~name rows =
  match Hashtbl.find_opt t.exts name with
  | None -> invalid_arg (Printf.sprintf "Storage.set_rows: unknown extent %S" name)
  | Some extent -> extent.rows <- Some rows

let bump_store_base t oid = if oid >= t.next_store then t.next_store <- oid + 1

(* A freshly-defined extent is immediately queryable as the empty set. *)
let define t ~name ty =
  match define_raw t ~name ty with
  | Error _ as e -> e
  | Ok () ->
    Result.map
      (fun (_ : int list) -> jlog t (J_define (name, ty)))
      (load_unlogged t ~name [])

(* DML is copying: BATs are append-only in spirit, but replacing the
   extent wholesale keeps every invariant (statistics spaces, indexes)
   trivially correct.  Element oids are re-assigned. *)
let insert t ~name new_rows =
  match Hashtbl.find_opt t.exts name with
  | None -> Error (Printf.sprintf "unknown extent %S" name)
  | Some extent -> (
    match extent.rows with
    | None -> Error (Printf.sprintf "extent %S has no loaded contents" name)
    | Some old_rows ->
      let all = old_rows @ new_rows in
      Result.map
        (fun oids ->
          jlog t (J_replace (name, all));
          oids)
        (load_unlogged t ~name all))

let delete_where t ~name pred =
  match Hashtbl.find_opt t.exts name with
  | None -> Error (Printf.sprintf "unknown extent %S" name)
  | Some extent -> (
    match extent.rows with
    | None -> Error (Printf.sprintf "extent %S has no loaded contents" name)
    | Some old_rows ->
      let survivors = List.filter (fun r -> not (pred r)) old_rows in
      let removed = List.length old_rows - List.length survivors in
      Result.map
        (fun (_ : int list) ->
          (* predicates are closures, so the log keeps the survivors *)
          jlog t (J_replace (name, survivors));
          removed)
        (load_unlogged t ~name survivors))

(* {1 Copy-on-write snapshots (the serving tier's version store)}

   A snapshot freezes the logical state a reader needs: the catalog
   bindings (BATs are immutable, so only the name table is copied),
   the extent records (copied because their [shape]/[rows] fields are
   mutated in place by DML), the statistics spaces (shared: a space
   object is built fresh at materialisation time and only read
   afterwards; DML replaces the binding, never the object) and the oid
   allocator positions.  Building one is O(#extents + #names), never
   O(rows). *)

type snapshot = {
  s_cat : Catalog.snapshot;
  s_exts : (string * extent) list;
  s_spaces : (string * Space.t) list;
  s_next_store : int;
  s_next_query : int;
}

let snapshot t =
  {
    s_cat = Catalog.snapshot t.cat;
    s_exts =
      Hashtbl.fold
        (fun name e acc -> (name, { ty = e.ty; shape = e.shape; rows = e.rows }) :: acc)
        t.exts [];
    s_spaces = Hashtbl.fold (fun name sp acc -> (name, sp) :: acc) t.spaces [];
    s_next_store = t.next_store;
    s_next_query = t.next_query;
  }

(* The restored view is a fully functional [t]: reads (including
   query-base allocation, which only mutates the view's private
   counter) work as usual.  It never journals — a version is a read
   replica, not a write path. *)
let of_snapshot s =
  let exts = Hashtbl.create (max 16 (List.length s.s_exts)) in
  List.iter
    (fun (name, e) ->
      Hashtbl.replace exts name { ty = e.ty; shape = e.shape; rows = e.rows })
    s.s_exts;
  let spaces = Hashtbl.create (max 8 (List.length s.s_spaces)) in
  List.iter (fun (name, sp) -> Hashtbl.replace spaces name sp) s.s_spaces;
  {
    cat = Catalog.of_snapshot s.s_cat;
    exts;
    spaces;
    next_store = s.s_next_store;
    next_query = s.s_next_query;
    journal = None;
  }

let extents t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.exts [])
let extent_type t name = Option.map (fun e -> e.ty) (Hashtbl.find_opt t.exts name)

let extent_shape t name =
  Option.bind (Hashtbl.find_opt t.exts name) (fun e -> e.shape)

let extent_rows t name = Option.bind (Hashtbl.find_opt t.exts name) (fun e -> e.rows)

let extent_count t name =
  match extent_rows t name with Some rows -> List.length rows | None -> 0

let typecheck_env t = { Typecheck.extent = extent_type t }
