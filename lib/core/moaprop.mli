(** The Moa-level abstract domain — logical envelopes and diagnostics.

    {!Moacheck} interprets Moa expressions over this domain: an
    envelope states facts that must hold of the value the expression
    evaluates to (structure skeleton, numeric ranges, cardinality
    bounds, list orderedness).  As in {!Mirror_bat.Milprop}, [None] and
    {!Unknown} always mean "no claim", never "known absent", so
    inference only ever errs towards fewer guarantees.

    The {!diag} type here is also the structured error/warning/hint
    currency of {!Typecheck} and {!Moacheck}: every diagnostic carries
    an expression path (slash-separated constructor names from the
    root) locating the offending subexpression. *)

module Atom = Mirror_bat.Atom
module P = Mirror_bat.Milprop

(** {1 Diagnostics} *)

type severity = Error | Warning | Hint

type diag = {
  severity : severity;
  path : string;  (** Slash-separated path of constructor names. *)
  op : string;  (** Constructor name of the offending node. *)
  message : string;
}

val severity_name : severity -> string
val pp_diag : Format.formatter -> diag -> unit
(** e.g. [error at map/select (select): predicate is not boolean]. *)

val diag_to_string : diag -> string

val errors : diag list -> diag list
(** Just the [Error]-severity diagnostics. *)

(** {1 The domain} *)

type t =
  | Unknown  (** No claim at all (lattice top). *)
  | Atomic of { ty : Atom.ty; lo : float option; hi : float option; bconst : bool option }
      (** An atom of base type [ty]; numeric values lie in [[lo, hi]]
          (when stated; ints are represented exactly as floats), and a
          boolean is constantly [bconst] when stated. *)
  | Tuple of (string * t) list  (** A tuple with exactly these fields. *)
  | Set of { card : P.card; elem : t }
      (** A set whose size lies within [card] and whose every element
          satisfies [elem]. *)
  | Xprop of { ext : string; card : P.card; elem : t; ordered : bool }
      (** An extension structure: [ext] names the extension, [card]
          bounds the element count, every element satisfies [elem],
          and [ordered] claims a semantically meaningful element
          order (LIST). *)

val atomic : Atom.ty -> t
(** Atom of the given type, no range facts. *)

val atomic_range : Atom.ty -> float option -> float option -> t

val bool_const : bool -> t
(** A boolean known to be constantly [b]. *)

val card_of : t -> P.card option
(** Cardinality bounds of a [Set]/[Xprop] envelope. *)

(** {1 Cardinality helpers} *)

val card_contains : P.card -> int -> bool

val card_join : P.card -> P.card -> P.card
(** Least upper bound of two cardinality intervals. *)

val card_prod : P.card -> P.card -> P.card
(** Interval product.  Unlike [Milprop.card_mul] this keeps the lower
    bound (a cross product of non-empty sets is non-empty); saturates
    on overflow. *)

val sum_range :
  P.card -> float option -> float option -> float option * float option
(** Bounds on the sum of [card] values each within the given range
    (covers the empty sum 0 when the lower count bound is 0). *)

(** {1 Lattice operations} *)

val join : t -> t -> t
(** Least upper bound; structurally incompatible envelopes join to
    {!Unknown}. *)

val joins : t list -> t
(** [joins [] = Unknown]. *)

val of_value : Value.t -> t
(** The exact (most precise) envelope of a concrete value. *)

val value_ok : t -> Value.t -> (unit, string) result
(** Is the concrete value inside the envelope?  Numeric range checks
    allow a small relative tolerance for float rounding.  [Error]
    carries a human-readable account of the violation. *)

(** {1 Pretty-printing} *)

val pp_card : Format.formatter -> P.card -> unit

val pp : Format.formatter -> t -> unit
(** Renders a set as its cardinality followed by its element envelope,
    e.g. ["{|0..4| <a: int[-1..2]>}"]. *)

val to_string : t -> string
