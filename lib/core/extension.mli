(** The structural-extensibility registry — Moa's "open complex object
    system".

    The kernel knows only [Atomic], [TUPLE] and [SET]; everything else
    is a registered extension that supplies, for its structure: type
    formation checking, the typing/semantics/compilation of its
    operators, how values materialise into BATs, and how its flattened
    bundles behave under the algebra's context transformations
    (filtering by surviving contexts and rebasing onto new context
    oids).  The built-in extensions are LIST ({!Ext_list}) and CONTREP
    ({!Ext_contrep}); new ones register the same way. *)

type planshape = Mirror_bat.Mil.t Shape.t

type flat_env = {
  fresh : int -> int;
      (** [fresh n] allocates a disjoint oid range with room for at
          least [n] values and returns its base. *)
  dom : Mirror_bat.Mil.t;  (** Current context domain, a (ctx,ctx) mirror plan. *)
}
(** What operator compilation may use. *)

type eval_env = { space : string -> Mirror_ir.Space.t option }
(** What naive (object-at-a-time) evaluation and foreign physical
    operators may consult. *)

type store_env = {
  catalog : Mirror_bat.Catalog.t;
  fresh_store : int -> int;  (** Oid-range allocator (same discipline as [fresh]). *)
  space_create : string -> Mirror_ir.Space.t;
      (** Create-or-reset the statistics space registered under a
          name. *)
}
(** What materialisation may use. *)

module type S = sig
  val name : string
  (** Structure name as it appears in types ("LIST", "CONTREP", …). *)

  val arity : int
  (** Number of type parameters. *)

  val check_type : Types.t list -> (unit, string) result
  (** Validate the type parameters. *)

  val ops : string list
  (** Operator names owned by this extension (globally unique). *)

  val op_type : op:string -> args:Types.t list -> (Types.t, string) result
  (** Result type of an operator; [args] includes the receiver first. *)

  val op_eval : eval_env -> op:string -> args:Value.t list -> Value.t
  (** Reference object-at-a-time semantics. *)

  val op_flatten :
    flat_env ->
    op:string ->
    arg_tys:Types.t list ->
    raw:Expr.t list ->
    args:planshape list ->
    planshape
  (** Compile an operator application over flattened arguments. *)

  val materialize :
    store_env ->
    recurse:(path:string -> ty:Types.t -> dom:(int * Value.t) list -> planshape) ->
    path:string ->
    ty_args:Types.t list ->
    dom:(int * Value.t) list ->
    planshape
  (** Store per-context values of this structure under catalog names
      prefixed by [path]; [recurse] materialises nested kernel
      structures. *)

  val filter_flat :
    recurse:(planshape -> Mirror_bat.Mil.t -> planshape) ->
    meta:string list ->
    bats:Mirror_bat.Mil.t list ->
    subs:planshape list ->
    survivors:Mirror_bat.Mil.t ->
    planshape
  (** Restrict the bundle to surviving context oids (heads of
      [survivors]). *)

  val rebase_flat :
    flat_env ->
    recurse:(flat_env -> planshape -> Mirror_bat.Mil.t -> planshape) ->
    meta:string list ->
    bats:Mirror_bat.Mil.t list ->
    subs:planshape list ->
    m:Mirror_bat.Mil.t ->
    planshape
  (** Re-key the bundle onto new context oids; [m] maps new ctx -> old
      ctx (possibly duplicating old contexts). *)

  val reify :
    lookup:(Mirror_bat.Mil.t -> Mirror_bat.Bat.t) ->
    recurse:(planshape -> int -> Value.t) ->
    meta:string list ->
    bats:Mirror_bat.Mil.t list ->
    subs:planshape list ->
    ctx:int ->
    Value.t
  (** Rebuild the logical value of one context from evaluated BATs. *)

  val restore :
    store_env ->
    recurse:(path:string -> ty:Types.t -> planshape) ->
    path:string ->
    ty_args:Types.t list ->
    planshape
  (** Rebuild the plan shape (and any side state, e.g. statistics
      spaces and inverted indexes) for a structure previously written
      by {!materialize} under [path], reading back from the catalog in
      [store_env].  Used when loading a persisted database. *)

  val foreign_ops :
    (string * (eval_env -> args:Mirror_bat.Bat.t list -> meta:string list -> Mirror_bat.Bat.t)) list
  (** Physical operators this extension contributes to the kernel
      (dispatched from {!Mil.Foreign} nodes). *)

  val foreign_sigs : (string * Mirror_bat.Milprop.foreign_sig) list
  (** Static signatures for the same operators — plan-argument arity,
      minimum meta-string count and the result's property envelope —
      consulted by the {!Mirror_bat.Milcheck} plan verifier.  Every
      name in {!foreign_ops} should be covered; an operator without a
      signature is rejected by verification. *)

  val foreign_effects : (string * Mirror_bat.Effcheck.foreign_eff) list
  (** Effect declarations for the same operators — purity, whether
      result columns may alias argument columns, whether arguments may
      be mutated — consulted by the {!Mirror_bat.Effcheck} analyzer and
      sanitizer.  An operator without a declaration is treated as
      worst-case (aliases and mutates everything) and flagged as an
      error by the hazard lint; well-behaved operators declare
      {!Mirror_bat.Effcheck.pure_foreign}. *)

  val foreign_bounds : (string * Mirror_bat.Boundcheck.foreign_bound) list
  (** Resource-bound declarations for the same operators — the result's
      cost envelope as a function of the plan arguments' envelopes —
      consulted by the {!Mirror_bat.Boundcheck} analyzer and the
      session admission gate.  An operator without a declaration
      degrades the plan to an unbounded envelope with a lint
      [Warning] (and refusal under any [?max_bytes] budget). *)

  val op_envelope :
    op:string -> args:Moaprop.t list -> ty:Types.t -> top:(Types.t -> Moaprop.t) -> Moaprop.t
  (** Logical envelope of an operator application, given the envelopes
      of its arguments (receiver first) and the already-checked result
      type [ty]; [top] is the coarsest envelope of a type.  Returning
      [top ty] is always sound — override to state ranges, cardinality
      bounds or orderedness (consulted by [Moacheck]). *)

  val prop_flat :
    ctx:Mirror_bat.Milprop.card ->
    prop:Moaprop.t ->
    meta:string list ->
    nbats:int ->
    nsubs:int ->
    Mirror_bat.Milprop.t option list * (Moaprop.t * Mirror_bat.Milprop.card) list
  (** Map a logical envelope of this structure onto its flattened
      bundle, for translation validation: given the context-count
      bounds [ctx] (how many instances the bundle holds) and the
      per-instance envelope [prop], return one expected MIL envelope
      option per bundle BAT ([None] claims nothing) and, for each
      nested sub-shape, the element envelope and context bounds to
      validate it under.  The returned lists must have [nbats] and
      [nsubs] entries; all-[None]/[Unknown] is always sound. *)

  val bind_value :
    path:string ->
    recurse:(path:string -> ty:Types.t -> Value.t -> Value.t) ->
    ty_args:Types.t list ->
    Value.t ->
    Value.t
  (** Rewrite a stored logical value so it knows where it was
      materialised (e.g. CONTREP binds its statistics space); called by
      the storage manager after {!materialize} with the same [path]. *)
end

val register : (module S) -> unit
(** Make an extension available.  Registration is keyed by structure
    name and idempotent: re-registering an existing name is a no-op.
    A new name whose operator list clashes with an already-registered
    operator raises [Invalid_argument]. *)

val find : string -> (module S) option
(** Look up by structure name. *)

val find_exn : string -> (module S)
(** @raise Invalid_argument for unknown structures. *)

val find_op : string -> (module S) option
(** Look up by operator name. *)

val registered : unit -> string list
(** Registered structure names, sorted. *)

val foreign_dispatch : eval_env -> Mirror_bat.Mil.foreign_fn
(** The kernel-level dispatch function combining every registered
    extension's physical operators. *)

val foreign_signature : string -> Mirror_bat.Milprop.foreign_sig option
(** The registry-declared static signature of a physical operator,
    searched across every registered extension — the [foreign] half of
    a {!Mirror_bat.Milcheck.env}. *)

val foreign_effect : string -> Mirror_bat.Effcheck.foreign_eff option
(** The registry-declared effect of a physical operator, searched
    across every registered extension — the [foreign] half of an
    {!Mirror_bat.Effcheck.env}. *)

val foreign_bound : string -> Mirror_bat.Boundcheck.foreign_bound option
(** The registry-declared cost rule of a physical operator, searched
    across every registered extension — the [foreign_bound] half of a
    {!Mirror_bat.Boundcheck.env}. *)
