(** The Mirror DBMS facade.

    Ties the whole architecture together the way the demo application
    uses it: schema definition and querying in the Moa concrete syntax
    (§2/§3), the daemon pipeline of figure 1 to build the multimedia
    metadata (§4/§5.1), and the retrieval application with thesaurus
    query formulation and relevance feedback (§5.2). *)

type t

type outcome =
  | Defined of string  (** A [define] statement took effect. *)
  | Bound of string  (** A [let] binding took effect (view semantics). *)
  | Inserted of string  (** An [insert into] statement took effect. *)
  | Deleted of string * int  (** [delete from N where P;] removed n rows. *)
  | Evaluated of Value.t  (** A query statement's result. *)

val create : unit -> t
(** Fresh database (registers the built-in structure extensions). *)

val of_storage : Storage.t -> t
(** Wrap an existing storage manager (e.g. one loaded with
    {!Persist.load}).  Demo-application state (thesaurus, adaptation,
    URL maps) starts empty — it is session state, not database
    state. *)

val storage : t -> Storage.t
(** The underlying storage manager (catalog access, direct loads). *)

(** {1 Moa programs} *)

val define : t -> name:string -> Types.t -> (unit, string) result
(** Register an extent type programmatically. *)

val load : t -> name:string -> Value.t list -> (int list, string) result
(** Populate an extent; returns assigned element oids. *)

val exec_program :
  t -> ?bindings:(string * Expr.t) list -> string -> (outcome list, string) result
(** Parse and execute a [;]-separated Moa program. *)

val run_query : t -> ?bindings:(string * Expr.t) list -> string -> (Value.t, string) result
(** Parse and run one query. *)

val run_expr : t -> Expr.t -> (Value.t, string) result
(** Run an already-built expression. *)

(** {1 The demo image library (§5)} *)

val build_image_library :
  t ->
  ?daemons:Mirror_daemon.Daemon.t list ->
  ?journal:(string -> string -> unit) ->
  scenes:Mirror_mm.Synth.scene array ->
  unit ->
  (Mirror_daemon.Orchestrator.report, string) result
(** Ingest a corpus through the daemon pipeline, then load both the
    application schema [ImageLibrary] (§5.2) and the internal dual-
    coded schema [ImageLibraryInternal] with the pipeline's CONTREP
    content, and adopt the pipeline's association thesaurus.
    [?journal] is installed on the pipeline's metadata store
    ({!Mirror_daemon.Store.set_journal}) so the durability layer can
    log the staged writes. *)

val url_of_doc : t -> int -> string option
(** URL of a loaded library element (by its extent oid). *)

val library_size : t -> int
(** Number of images loaded into the library. *)

(** How {!search} combines the two coding systems. *)
type mode =
  | Text_only  (** Rank on the annotation CONTREP only. *)
  | Image_only  (** Thesaurus-formulated query on the image CONTREP. *)
  | Dual  (** Mean of both rankings (Paivio's dual coding). *)

val thesaurus_lookup : t -> ?limit:int -> string -> (string * float) list
(** Concepts (visual words) associated with a text query, adaptation
    applied — the §5.2 query-formulation step. *)

val rank_by_terms :
  t -> ?limit:int -> field:string -> string list -> ((string * float) list, string) result
(** Run the paper's ranking query
    [map\[sum(getBL(THIS.field, query))\](ImageLibraryInternal)] (with
    source bookkeeping) and return (url, score) best first. *)

val search :
  t -> ?limit:int -> ?mode:mode -> string -> ((string * float) list, string) result
(** The full retrieval application: tokenize the text query, formulate
    the image query through the thesaurus, rank with the inference
    network, combine per [mode] (default [Dual]). *)

val give_feedback : t -> query:string -> judgements:(string * bool) list -> unit
(** Record relevance judgements (url, relevant?) for a query: the
    thesaurus adaptation strengthens or weakens the (term, concept)
    associations that produced each judged image — the paper's
    "machine learning techniques to adapt the thesaurus … across query
    sessions". *)

val set_feedback_hook :
  t -> (query:string -> judgements:(string * bool) list -> unit) option -> unit
(** Install (or clear) a hook fired after {!give_feedback} applies —
    the durability layer logs the judgement so the adaptation state
    can be rebuilt deterministically after a crash. *)

val replay_feedback : t -> query:string -> judgements:(string * bool) list -> unit
(** Re-apply a logged judgement during recovery (never re-fires the
    hook). *)

val visual_bag : t -> string -> (string * float) list
(** The visual words of a library image (by URL); empty when
    unknown. *)

val search_refined :
  t ->
  ?limit:int ->
  query:string ->
  judgements:(string * bool) list ->
  unit ->
  ((string * float) list, string) result
(** Within-session query improvement: the image-side query is
    reformulated Rocchio-style — towards the visual-word distribution
    of judged-relevant images and away from judged-irrelevant ones —
    and the reformulated query is run in [Dual] mode.  This is the
    "relevance feedback is used to improve the current query" loop of
    §5.2 (complementing {!give_feedback}, which adapts the thesaurus
    across sessions). *)
