module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

let fail fmt = Printf.ksprintf failwith fmt

(* Best-effort type recovery for values bound from outside. *)
let rec type_of_value = function
  | Value.Atom a -> Types.Atomic (Atom.type_of a)
  | Value.Tup fields -> Types.Tuple (List.map (fun (l, v) -> (l, type_of_value v)) fields)
  | Value.VSet [] -> Types.Set (Types.Atomic Atom.TInt)
  | Value.VSet (x :: _) -> Types.Set (type_of_value x)
  | Value.Xv { ext = "CONTREP"; _ } -> Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ])
  | Value.Xv { ext; items = x :: _; _ } -> Types.Xt (ext, [ type_of_value x ])
  | Value.Xv { ext; items = []; _ } -> Types.Xt (ext, [ Types.Atomic Atom.TInt ])

(* Result type of an expression, used only to type empty-set aggregate
   defaults; falls back to float when inference fails (it cannot for
   expressions admitted by Typecheck). *)
let elem_base storage tenv set_expr =
  match
    Typecheck.infer_with (Storage.typecheck_env storage) ~vars:tenv set_expr
  with
  | Ok (Types.Set (Types.Atomic b)) -> Some b
  | Ok _ | Error _ -> None

let aggr_empty_default a base =
  match a with
  | Bat.Count -> Atom.Int 0
  | Bat.Sum -> (
    match base with Atom.TFlt -> Atom.Flt 0.0 | _ -> Atom.Int 0)
  | Bat.Prod -> ( match base with Atom.TFlt -> Atom.Flt 1.0 | _ -> Atom.Int 1)
  | Bat.Avg -> Atom.Flt 0.0
  | Bat.Min | Bat.Max -> Types.atom_default base

let dedup_atoms items =
  let seen = ref [] in
  List.filter
    (fun v ->
      let a = Value.as_atom v in
      if List.exists (Atom.equal a) !seen then false
      else begin
        seen := a :: !seen;
        true
      end)
    items

let atoms_of_set v = List.map Value.as_atom (Value.as_set v)

let rec eval_env storage (venv : (string * Value.t) list) (tenv : (string * Types.t) list)
    expr =
  let recur = eval_env storage in
  match expr with
  | Expr.Extent name -> (
    match Storage.extent_rows storage name with
    | Some rows -> Value.VSet rows
    | None -> fail "naive: extent %S is not loaded" name)
  | Expr.Lit (v, _) -> v
  | Expr.Var v -> (
    match List.assoc_opt v venv with
    | Some value -> value
    | None -> fail "naive: unbound variable %S" v)
  | Expr.Field (e, f) -> Value.field_exn (recur venv tenv e) f
  | Expr.Tuple fields ->
    Value.Tup (List.map (fun (l, e) -> (l, recur venv tenv e)) fields)
  | Expr.Map { v; body; src } ->
    let src_v = recur venv tenv src in
    let elem_ty = binder_type storage tenv src in
    Value.VSet
      (List.map
         (fun item -> recur ((v, item) :: venv) ((v, elem_ty) :: tenv) body)
         (Value.as_set src_v))
  | Expr.Select { v; pred; src } ->
    let src_v = recur venv tenv src in
    let elem_ty = binder_type storage tenv src in
    Value.VSet
      (List.filter
         (fun item ->
           Atom.as_bool (Value.as_atom (recur ((v, item) :: venv) ((v, elem_ty) :: tenv) pred)))
         (Value.as_set src_v))
  | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
    let lv = Value.as_set (recur venv tenv left) in
    let rv = Value.as_set (recur venv tenv right) in
    let t1 = binder_type storage tenv left and t2 = binder_type storage tenv right in
    let out = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let venv' = (v1, a) :: (v2, b) :: venv in
            let tenv' = (v1, t1) :: (v2, t2) :: tenv in
            if Atom.as_bool (Value.as_atom (recur venv' tenv' pred)) then
              out := Value.Tup [ (l1, a); (l2, b) ] :: !out)
          rv)
      lv;
    Value.VSet (List.rev !out)
  | Expr.Semijoin { v1; v2; pred; left; right } ->
    let lv = Value.as_set (recur venv tenv left) in
    let rv = Value.as_set (recur venv tenv right) in
    let t1 = binder_type storage tenv left and t2 = binder_type storage tenv right in
    Value.VSet
      (List.filter
         (fun a ->
           List.exists
             (fun b ->
               let venv' = (v1, a) :: (v2, b) :: venv in
               let tenv' = (v1, t1) :: (v2, t2) :: tenv in
               Atom.as_bool (Value.as_atom (recur venv' tenv' pred)))
             rv)
         lv)
  | Expr.Aggr (Bat.Count, e) ->
    Value.int (List.length (Value.as_set (recur venv tenv e)))
  | Expr.Aggr (a, e) -> (
    let atoms = atoms_of_set (recur venv tenv e) in
    match atoms with
    | [] ->
      let base = Option.value ~default:Atom.TFlt (elem_base storage tenv e) in
      Value.Atom (aggr_empty_default a base)
    | _ ->
      let b =
        Bat.of_pairs Atom.TOid (Atom.type_of (List.hd atoms))
          (List.map (fun x -> (Atom.Oid 0, x)) atoms)
      in
      Value.Atom (Bat.aggr_all a b))
  | Expr.Binop (op, a, b) ->
    let va = Value.as_atom (recur venv tenv a) in
    let vb = Value.as_atom (recur venv tenv b) in
    Value.Atom (Bat.apply_binop op va vb)
  | Expr.Unop (op, e) -> Value.Atom (Bat.apply_unop op (Value.as_atom (recur venv tenv e)))
  | Expr.Exists e -> Value.bool (Value.as_set (recur venv tenv e) <> [])
  | Expr.Member (x, s) ->
    let a = Value.as_atom (recur venv tenv x) in
    Value.bool (List.exists (Atom.equal a) (atoms_of_set (recur venv tenv s)))
  | Expr.Union (a, b) ->
    let xs = Value.as_set (recur venv tenv a) and ys = Value.as_set (recur venv tenv b) in
    Value.VSet (dedup_atoms (xs @ ys))
  | Expr.Diff (a, b) ->
    let xs = Value.as_set (recur venv tenv a) in
    let ys = atoms_of_set (recur venv tenv b) in
    Value.VSet
      (List.filter
         (fun v -> not (List.exists (Atom.equal (Value.as_atom v)) ys))
         (dedup_atoms xs))
  | Expr.Inter (a, b) ->
    let xs = Value.as_set (recur venv tenv a) in
    let ys = atoms_of_set (recur venv tenv b) in
    Value.VSet
      (List.filter (fun v -> List.exists (Atom.equal (Value.as_atom v)) ys) (dedup_atoms xs))
  | Expr.Flat e ->
    let sets = Value.as_set (recur venv tenv e) in
    Value.VSet (List.concat_map Value.as_set sets)
  | Expr.Nest { src; key; inner } ->
    let rows = Value.as_set (recur venv tenv src) in
    let order = ref [] in
    let groups = Hashtbl.create 16 in
    List.iter
      (fun row ->
        let k = Value.as_atom (Value.field_exn row key) in
        (match Hashtbl.find_opt groups (Atom.to_string k) with
        | Some items -> Hashtbl.replace groups (Atom.to_string k) (row :: items)
        | None ->
          Hashtbl.add groups (Atom.to_string k) [ row ];
          order := k :: !order))
      rows;
    Value.VSet
      (List.rev_map
         (fun k ->
           let items = List.rev (Hashtbl.find groups (Atom.to_string k)) in
           Value.Tup [ (key, Value.Atom k); (inner, Value.VSet items) ])
         !order)
  | Expr.Unnest { src; field } ->
    let rows = Value.as_set (recur venv tenv src) in
    Value.VSet
      (List.concat_map
         (fun row ->
           let fields = Value.as_tuple row in
           let others = List.filter (fun (l, _) -> l <> field) fields in
           let inner = Value.as_set (Value.field_exn row field) in
           List.map
             (fun item ->
               match item with
               | Value.Tup ifields -> Value.Tup (others @ ifields)
               | atom_or_other -> Value.Tup (others @ [ (field, atom_or_other) ]))
             inner)
         rows)
  | Expr.ExtOp { op; args } -> (
    match Extension.find_op op with
    | None -> fail "naive: unknown operator %S" op
    | Some (module E : Extension.S) ->
      let vargs = List.map (recur venv tenv) args in
      E.op_eval (Storage.eval_env storage) ~op ~args:vargs)

and binder_type storage tenv src =
  match Typecheck.infer_with (Storage.typecheck_env storage) ~vars:tenv src with
  | Ok (Types.Set elem) -> elem
  | Ok other -> fail "naive: mapped a non-set %s" (Types.to_string other)
  | Error e -> fail "naive: %s" (Typecheck.diag_to_string e)

let eval storage expr = eval_env storage [] [] expr

let eval_with storage ~vars expr =
  let tenv = List.map (fun (v, value) -> (v, type_of_value value)) vars in
  eval_env storage vars tenv expr
