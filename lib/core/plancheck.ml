module Mil = Mirror_bat.Mil
module Milopt = Mirror_bat.Milopt
module Milcheck = Mirror_bat.Milcheck
module Milprop = Mirror_bat.Milprop
module Effcheck = Mirror_bat.Effcheck
module Boundcheck = Mirror_bat.Boundcheck

let env_of_storage storage =
  Milcheck.env_of_catalog ~foreign:Extension.foreign_signature (Storage.catalog storage)

let effcheck_env () = Effcheck.env ~foreign:Extension.foreign_effect ()

let boundcheck_env storage =
  Boundcheck.env_of_catalog ~foreign:Extension.foreign_signature
    ~foreign_bound:Extension.foreign_bound (Storage.catalog storage)

let shape_plans shape =
  let acc = ref [] in
  Shape.iter (fun p -> acc := p :: !acc) shape;
  List.rev !acc

let verify_shape env shape =
  let bad = ref [] in
  Shape.iter
    (fun plan ->
      match Milcheck.verify env plan with
      | Ok _ -> ()
      | Error ds -> bad := !bad @ ds)
    shape;
  match !bad with [] -> Ok () | ds -> Error ds

let lint_shape env shape =
  List.concat_map (Milcheck.lint env) (shape_plans shape)

(* {1 Differential checking} *)

(* Zip two bundles plan-by-plan; [None] when the shape skeletons
   disagree (different tuple fields, extension names or BAT counts). *)
let rec zip_shapes a b =
  match (a, b) with
  | Shape.Atomic p, Shape.Atomic q -> Some [ (p, q) ]
  | Shape.Tuple fs, Shape.Tuple gs when List.map fst fs = List.map fst gs ->
    zip_all (List.map snd fs) (List.map snd gs)
  | Shape.Set { link = l1; elem = e1 }, Shape.Set { link = l2; elem = e2 } ->
    Option.map (fun rest -> (l1, l2) :: rest) (zip_shapes e1 e2)
  | ( Shape.Xstruct { ext = x1; bats = b1; subs = s1; _ },
      Shape.Xstruct { ext = x2; bats = b2; subs = s2; _ } )
    when x1 = x2 && List.length b1 = List.length b2 ->
    Option.bind (zip_all s1 s2) (fun rest ->
        Some (List.combine b1 b2 @ rest))
  | _ -> None

and zip_all xs ys =
  if List.length xs <> List.length ys then None
  else
    List.fold_right
      (fun (x, y) acc ->
        Option.bind acc (fun rest ->
            Option.map (fun ps -> ps @ rest) (zip_shapes x y)))
      (List.combine xs ys) (Some [])

let compatible_pair env ~stage k (before, after) =
  let pb, _ = Milcheck.infer env before in
  let pa, _ = Milcheck.infer env after in
  if Milprop.compatible pb pa then Ok ()
  else
    Error
      (Printf.sprintf "%s changed the envelope of bundle plan %d: %s vs %s" stage k
         (Milprop.to_string pb) (Milprop.to_string pa))

let check_pairs env ~stage pairs =
  let rec go k = function
    | [] -> Ok ()
    | pair :: rest -> (
      match compatible_pair env ~stage k pair with
      | Ok () -> go (k + 1) rest
      | Error _ as e -> e)
  in
  go 0 pairs

(* Assert the two optimisation stages preserve each plan's inferred
   type/shape/cardinality envelope:
   - logical: the bundle compiled from [expr] vs the bundle compiled
     from [Optimize.rewrite expr] (same skeleton, pairwise-compatible
     envelopes);
   - physical: every plan vs its [Milopt.rewrite] image. *)
let differential ?(specialize = true) storage expr =
  let env = env_of_storage storage in
  match Flatten.compile ~specialize storage expr with
  | exception Flatten.Unsupported msg -> Error ("unoptimized compile: " ^ msg)
  | shape0 -> (
    let milopt_pairs shape =
      List.map (fun p -> (p, Milopt.rewrite p)) (shape_plans shape)
    in
    let physical shape label =
      check_pairs env ~stage:("Milopt.rewrite (" ^ label ^ ")") (milopt_pairs shape)
    in
    match Flatten.compile ~specialize storage (Optimize.rewrite expr) with
    | exception Flatten.Unsupported msg -> Error ("optimized compile: " ^ msg)
    | shape1 -> (
      match zip_shapes shape0 shape1 with
      | None -> Error "Optimize.rewrite changed the bundle's shape skeleton"
      | Some pairs -> (
        match check_pairs env ~stage:"Optimize.rewrite" pairs with
        | Error _ as e -> e
        | Ok () -> (
          match physical shape0 "unoptimized" with
          | Error _ as e -> e
          | Ok () -> physical shape1 "optimized"))))

(* {1 Whole-query vetting} *)

let diags_to_string ds = String.concat "; " (List.map Milcheck.diag_to_string ds)

let moa_diags_to_string ds = String.concat "; " (List.map Moaprop.diag_to_string ds)

let vet ?(specialize = true) storage expr =
  match Typecheck.infer (Storage.typecheck_env storage) expr with
  | Error e -> Error ("typecheck: " ^ Typecheck.diag_to_string e)
  | Ok _ -> (
    match Moacheck.verify (Moacheck.env_of_storage storage) expr with
    | Error ds -> Error ("moacheck: " ^ moa_diags_to_string ds)
    | Ok _ -> (
      match Flatten.compile ~specialize storage expr with
      | exception Flatten.Unsupported msg -> Error ("flatten: " ^ msg)
      | shape -> (
        let env = env_of_storage storage in
        match verify_shape env shape with
        | Error ds -> Error ("verify: " ^ diags_to_string ds)
        | Ok () -> (
          let verdict = Effcheck.analyze (effcheck_env ()) (shape_plans shape) in
          let errors =
            List.filter (fun d -> d.Milcheck.severity = Milcheck.Error) verdict.Effcheck.hazards
          in
          match errors with
          | _ :: _ -> Error ("effcheck: " ^ diags_to_string errors)
          | [] -> (
            (* Resource-bound consistency: estimates must sit inside
               the sound intervals (an Error diagnostic otherwise) —
               undeclared-foreign warnings pass vetting. *)
            let bounds = Boundcheck.analyze (boundcheck_env storage) (shape_plans shape) in
            match Milcheck.errors bounds.Boundcheck.diags with
            | _ :: _ as ds -> Error ("boundcheck: " ^ diags_to_string ds)
            | [] -> (
              match Moacheck.validate storage expr shape with
              | Error ds -> Error ("validate: " ^ moa_diags_to_string ds)
              | Ok () -> differential ~specialize storage expr))))))
