module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

type t =
  | Extent of string
  | Lit of Value.t * Types.t
  | Var of string
  | Field of t * string
  | Tuple of (string * t) list
  | Map of { v : string; body : t; src : t }
  | Select of { v : string; pred : t; src : t }
  | Join of { v1 : string; v2 : string; pred : t; left : t; right : t; l1 : string; l2 : string }
  | Semijoin of { v1 : string; v2 : string; pred : t; left : t; right : t }
  | Aggr of Bat.aggr * t
  | Binop of Bat.binop * t * t
  | Unop of Bat.unop * t
  | Exists of t
  | Member of t * t
  | Union of t * t
  | Diff of t * t
  | Inter of t * t
  | Flat of t
  | Nest of { src : t; key : string; inner : string }
  | Unnest of { src : t; field : string }
  | ExtOp of { op : string; args : t list }

let lit_int i = Lit (Value.int i, Types.Atomic Atom.TInt)
let lit_flt f = Lit (Value.flt f, Types.Atomic Atom.TFlt)
let lit_str s = Lit (Value.str s, Types.Atomic Atom.TStr)
let lit_bool b = Lit (Value.bool b, Types.Atomic Atom.TBool)

let lit_str_set words =
  Lit (Value.VSet (List.map Value.str words), Types.Set (Types.Atomic Atom.TStr))

let map ~v ~body src = Map { v; body; src }
let select ~v ~pred src = Select { v; pred; src }
let getbl contrep query = ExtOp { op = "getBL"; args = [ contrep; query ] }
let sum e = Aggr (Bat.Sum, e)

let free_vars expr =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go bound = function
    | Extent _ | Lit _ -> ()
    | Var v ->
      if (not (List.mem v bound)) && not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end
    | Field (e, _) | Unop (_, e) | Aggr (_, e) | Exists e | Flat e -> go bound e
    | Tuple fields -> List.iter (fun (_, e) -> go bound e) fields
    | Map { v; body; src } | Select { v; pred = body; src } ->
      go bound src;
      go (v :: bound) body
    | Join { v1; v2; pred; left; right; _ } | Semijoin { v1; v2; pred; left; right } ->
      go bound left;
      go bound right;
      go (v1 :: v2 :: bound) pred
    | Binop (_, a, b) | Member (a, b) | Union (a, b) | Diff (a, b) | Inter (a, b) ->
      go bound a;
      go bound b
    | Nest { src; _ } | Unnest { src; _ } -> go bound src
    | ExtOp { args; _ } -> List.iter (go bound) args
  in
  go [] expr;
  List.rev !out

let rec size = function
  | Extent _ | Lit _ | Var _ -> 1
  | Field (e, _) | Unop (_, e) | Aggr (_, e) | Exists e | Flat e -> 1 + size e
  | Tuple fields -> List.fold_left (fun acc (_, e) -> acc + size e) 1 fields
  | Map { body; src; _ } | Select { pred = body; src; _ } -> 1 + size body + size src
  | Join { pred; left; right; _ } | Semijoin { pred; left; right; _ } ->
    1 + size pred + size left + size right
  | Binop (_, a, b) | Member (a, b) | Union (a, b) | Diff (a, b) | Inter (a, b) ->
    1 + size a + size b
  | Nest { src; _ } | Unnest { src; _ } -> 1 + size src
  | ExtOp { args; _ } -> List.fold_left (fun acc e -> acc + size e) 1 args

let aggr_name = function
  | Bat.Sum -> "sum"
  | Bat.Prod -> "prod"
  | Bat.Count -> "count"
  | Bat.Min -> "min"
  | Bat.Max -> "max"
  | Bat.Avg -> "avg"

let binop_sym = function
  | Bat.Add -> "+"
  | Bat.Sub -> "-"
  | Bat.Mul -> "*"
  | Bat.Div -> "/"
  | Bat.Pow -> "^"
  | Bat.MinOp -> "min2"
  | Bat.MaxOp -> "max2"
  | Bat.CmpOp Bat.Eq -> "="
  | Bat.CmpOp Bat.Ne -> "!="
  | Bat.CmpOp Bat.Lt -> "<"
  | Bat.CmpOp Bat.Le -> "<="
  | Bat.CmpOp Bat.Gt -> ">"
  | Bat.CmpOp Bat.Ge -> ">="
  | Bat.And -> "and"
  | Bat.Or -> "or"

let unop_name = function
  | Bat.Not -> "not"
  | Bat.Neg -> "neg"
  | Bat.Log -> "log"
  | Bat.Exp -> "exp"
  | Bat.Sqrt -> "sqrt"
  | Bat.Abs -> "abs"
  | Bat.ToFlt -> "flt"

let op_name = function
  | Extent _ -> "extent"
  | Lit _ -> "lit"
  | Var _ -> "var"
  | Field _ -> "field"
  | Tuple _ -> "tuple"
  | Map _ -> "map"
  | Select _ -> "select"
  | Join _ -> "join"
  | Semijoin _ -> "semijoin"
  | Aggr (a, _) -> aggr_name a
  | Binop (op, _, _) -> binop_sym op
  | Unop (op, _) -> unop_name op
  | Exists _ -> "exists"
  | Member _ -> "in"
  | Union _ -> "union"
  | Diff _ -> "diff"
  | Inter _ -> "inter"
  | Flat _ -> "flatten"
  | Nest _ -> "nest"
  | Unnest _ -> "unnest"
  | ExtOp { op; _ } -> op

let rec pp ppf expr =
  let plist sep f ppf = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf sep) f ppf in
  match expr with
  | Extent name -> Format.pp_print_string ppf name
  | Lit (v, _) -> Value.pp ppf v
  | Var v -> Format.pp_print_string ppf v
  | Field (e, f) -> Format.fprintf ppf "%a.%s" pp e f
  | Tuple fields ->
    Format.fprintf ppf "tuple(%a)"
      (plist ",@ " (fun ppf (l, e) -> Format.fprintf ppf "%s: %a" l pp e))
      fields
  | Map { v; body; src } -> Format.fprintf ppf "@[<hov 2>map[%s: %a](@,%a)@]" v pp body pp src
  | Select { v; pred; src } ->
    Format.fprintf ppf "@[<hov 2>select[%s: %a](@,%a)@]" v pp pred pp src
  | Join { v1; v2; pred; left; right; l1; l2 } ->
    Format.fprintf ppf "@[<hov 2>join[%s, %s: %a; %s, %s](@,%a,@ %a)@]" v1 v2 pp pred l1 l2 pp
      left pp right
  | Semijoin { v1; v2; pred; left; right } ->
    Format.fprintf ppf "@[<hov 2>semijoin[%s, %s: %a](@,%a,@ %a)@]" v1 v2 pp pred pp left pp
      right
  | Aggr (a, e) -> Format.fprintf ppf "%s(%a)" (aggr_name a) pp e
  | Binop (((Bat.Pow | Bat.MinOp | Bat.MaxOp) as op), a, b) ->
    Format.fprintf ppf "%s(%a, %a)"
      (match op with Bat.Pow -> "pow" | Bat.MinOp -> "min2" | _ -> "max2")
      pp a pp b
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_sym op) pp b
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp e
  | Exists e -> Format.fprintf ppf "exists(%a)" pp e
  | Member (x, s) -> Format.fprintf ppf "in(%a, %a)" pp x pp s
  | Union (a, b) -> Format.fprintf ppf "union(%a, %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf ppf "diff(%a, %a)" pp a pp b
  | Inter (a, b) -> Format.fprintf ppf "inter(%a, %a)" pp a pp b
  | Flat e -> Format.fprintf ppf "flatten(%a)" pp e
  | Nest { src; key; inner } -> Format.fprintf ppf "nest[%s, %s](%a)" key inner pp src
  | Unnest { src; field } -> Format.fprintf ppf "unnest[%s](%a)" field pp src
  | ExtOp { op; args } -> Format.fprintf ppf "%s(%a)" op (plist ",@ " pp) args

let to_string e =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1000000;
  Format.pp_set_max_indent ppf 999999;
  Format.fprintf ppf "@[<h>%a@]@?" pp e;
  Buffer.contents buf
