(** Moa-level shape analysis and flattening translation validation.

    An abstract interpreter over Moa expressions in the {!Moaprop}
    domain, mirroring [Milcheck]'s design one level up: for every
    subexpression it infers a conservative envelope (structure
    skeleton, numeric ranges, cardinality bounds, emptiness, list
    orderedness, CONTREP belief ranges) and reports structured
    diagnostics whose paths locate the offending subexpression.

    {!validate} is the translation validator: after [Flatten.compile]
    it maps the logical envelope of every subexpression onto the
    compiled bundle and checks, BAT by BAT, that it intersects the
    physical envelope [Milcheck] infers for the corresponding plan.
    Both sides over-approximate the same concrete BAT, so an empty
    intersection certifies a broken flattening rule for that query. *)

type env = {
  extent_type : string -> Types.t option;
  extent_prop : string -> Moaprop.t option;
      (** Envelope of an extent's current contents; [None] falls back
          to the type-derived top envelope. *)
}

val env_of_storage : Storage.t -> env
(** Exact envelopes computed (and cached) from the stored extents. *)

val top_of_type : Types.t -> Moaprop.t
(** The weakest envelope with the skeleton of the given type. *)

val infer : env -> Expr.t -> Moaprop.t * Moaprop.diag list
(** Envelope of a closed expression, plus all diagnostics produced
    along the way.  Never raises: unknown constructs degrade to
    {!Moaprop.Unknown} envelopes with [Error] diagnostics. *)

val verify : env -> Expr.t -> (Moaprop.t, Moaprop.diag list) result
(** [Ok] iff inference produced no [Error]-severity diagnostic. *)

val lint : env -> Expr.t -> Moaprop.diag list
(** Inference diagnostics plus logical-level smells: statically
    unsatisfiable (or constantly true) selections, provably empty
    subexpressions (flagged at the topmost dead node only), redundant
    unnest-of-nest, and [getBL] over provably empty content or
    queries. *)

val validate :
  Storage.t -> Expr.t -> Extension.planshape -> (unit, Moaprop.diag list) result
(** Translation validation of a compiled bundle against the logical
    envelope (see above).  Counts each envelope comparison in the
    [moacheck.envelope_checks] metric when metrics are enabled. *)
