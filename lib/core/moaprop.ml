module Atom = Mirror_bat.Atom
module P = Mirror_bat.Milprop

(* ------------------------------------------------------------------ *)
(* Diagnostics (shared by Typecheck and Moacheck)                     *)
(* ------------------------------------------------------------------ *)

type severity = Error | Warning | Hint

type diag = {
  severity : severity;
  path : string;
  op : string;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning" | Hint -> "hint"

let pp_diag ppf d =
  Format.fprintf ppf "%s at %s (%s): %s" (severity_name d.severity) d.path d.op d.message

let diag_to_string d =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1000000;
  Format.fprintf ppf "@[<h>%a@]@?" pp_diag d;
  Buffer.contents buf

let errors diags = List.filter (fun d -> d.severity = Error) diags

(* ------------------------------------------------------------------ *)
(* The abstract domain                                                 *)
(* ------------------------------------------------------------------ *)

type t =
  | Unknown
  | Atomic of { ty : Atom.ty; lo : float option; hi : float option; bconst : bool option }
  | Tuple of (string * t) list
  | Set of { card : P.card; elem : t }
  | Xprop of { ext : string; card : P.card; elem : t; ordered : bool }

let atomic ty = Atomic { ty; lo = None; hi = None; bconst = None }

let atomic_range ty lo hi = Atomic { ty; lo; hi; bconst = None }

let bool_const b = Atomic { ty = Atom.TBool; lo = None; hi = None; bconst = Some b }

let card_of = function
  | Set { card; _ } | Xprop { card; _ } -> Some card
  | Unknown | Atomic _ | Tuple _ -> None

(* ------------------------------------------------------------------ *)
(* Cardinality helpers                                                 *)
(* ------------------------------------------------------------------ *)

let card_contains (c : P.card) n =
  n >= c.P.lo && (match c.P.hi with None -> true | Some h -> n <= h)

let card_join (a : P.card) (b : P.card) : P.card =
  {
    P.lo = min a.P.lo b.P.lo;
    hi = (match (a.P.hi, b.P.hi) with Some x, Some y -> Some (max x y) | _ -> None);
  }

(* Lower-bound-preserving product (Milprop.card_mul keeps [lo = 0]; at
   the logical level we also know a cross product of non-empty sets is
   non-empty).  Saturates to "unknown" on overflow, which only loses
   precision. *)
let card_prod (a : P.card) (b : P.card) : P.card =
  let mul x y =
    if x = 0 || y = 0 then Some 0
    else
      let p = x * y in
      if p / x <> y || p < 0 then None else Some p
  in
  let lo = match mul a.P.lo b.P.lo with Some p -> p | None -> 0 in
  let hi = match (a.P.hi, b.P.hi) with Some x, Some y -> mul x y | _ -> None in
  { P.lo; hi }

(* Range of a sum of [card] values each within [lo, hi]: each extreme
   is attained at the count that stretches it furthest (maximum count
   for positive contributions, minimum count otherwise), which also
   covers the empty sum 0. *)
let sum_range (c : P.card) lo hi =
  let slo =
    match lo with
    | None -> None
    | Some t ->
      if t >= 0.0 then Some (float_of_int c.P.lo *. t)
      else Option.map (fun h -> float_of_int h *. t) c.P.hi
  and shi =
    match hi with
    | None -> None
    | Some t ->
      if t <= 0.0 then Some (float_of_int c.P.lo *. t)
      else Option.map (fun h -> float_of_int h *. t) c.P.hi
  in
  (slo, shi)

(* ------------------------------------------------------------------ *)
(* Lattice join                                                        *)
(* ------------------------------------------------------------------ *)

let opt_join f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let rec join a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Atomic x, Atomic y when x.ty = y.ty ->
    Atomic
      {
        ty = x.ty;
        lo = opt_join min x.lo y.lo;
        hi = opt_join max x.hi y.hi;
        bconst =
          (match (x.bconst, y.bconst) with
          | Some p, Some q when p = q -> Some p
          | _ -> None);
      }
  | Tuple xs, Tuple ys
    when List.length xs = List.length ys
         && List.for_all2 (fun (lx, _) (ly, _) -> String.equal lx ly) xs ys ->
    Tuple (List.map2 (fun (l, x) (_, y) -> (l, join x y)) xs ys)
  | Set x, Set y -> Set { card = card_join x.card y.card; elem = join x.elem y.elem }
  | Xprop x, Xprop y when String.equal x.ext y.ext ->
    Xprop
      {
        ext = x.ext;
        card = card_join x.card y.card;
        elem = join x.elem y.elem;
        ordered = x.ordered && y.ordered;
      }
  | _ -> Unknown

let joins = function [] -> Unknown | p :: ps -> List.fold_left join p ps

(* ------------------------------------------------------------------ *)
(* Exact abstraction of a concrete value                               *)
(* ------------------------------------------------------------------ *)

let rec of_value = function
  | Value.Atom (Atom.Int i) ->
    let f = float_of_int i in
    Atomic { ty = Atom.TInt; lo = Some f; hi = Some f; bconst = None }
  | Value.Atom (Atom.Flt f) -> Atomic { ty = Atom.TFlt; lo = Some f; hi = Some f; bconst = None }
  | Value.Atom (Atom.Bool b) -> bool_const b
  | Value.Atom a -> atomic (Atom.type_of a)
  | Value.Tup fields -> Tuple (List.map (fun (l, v) -> (l, of_value v)) fields)
  | Value.VSet items ->
    Set { card = P.exactly (List.length items); elem = joins (List.map of_value items) }
  | Value.Xv { ext; items; _ } ->
    Xprop
      {
        ext;
        card = P.exactly (List.length items);
        elem = joins (List.map of_value items);
        ordered = String.equal ext "LIST";
      }

(* ------------------------------------------------------------------ *)
(* Membership: is a concrete value inside the envelope?                *)
(* ------------------------------------------------------------------ *)

(* Relative tolerance for float range checks: inference rounds interval
   endpoints with ordinary float arithmetic, so a concrete result can
   legitimately sit a few ulps outside a stated bound. *)
let in_range lo hi x =
  let tol v = 1e-9 *. (1.0 +. Float.abs v) in
  (match lo with None -> true | Some l -> x >= l -. tol l)
  && match hi with None -> true | Some h -> x <= h +. tol h

let rec value_ok prop v =
  let fail fmt = Printf.ksprintf (fun s -> Stdlib.Error s) fmt in
  match (prop, v) with
  | Unknown, _ -> Ok ()
  | Atomic p, Value.Atom a ->
    if Atom.type_of a <> p.ty then
      fail "atom %s is not of type %s" (Atom.to_string a) (Atom.ty_name p.ty)
    else begin
      match a with
      | Atom.Int i when not (in_range p.lo p.hi (float_of_int i)) ->
        fail "int %d outside inferred range" i
      | Atom.Flt f when not (in_range p.lo p.hi f) -> fail "flt %g outside inferred range" f
      | Atom.Bool b when (match p.bconst with Some c -> c <> b | None -> false) ->
        fail "bool %b contradicts inferred constant" b
      | _ -> Ok ()
    end
  | Tuple fps, Value.Tup fvs ->
    if
      List.length fps <> List.length fvs
      || not (List.for_all2 (fun (lp, _) (lv, _) -> String.equal lp lv) fps fvs)
    then fail "tuple labels do not match the envelope"
    else
      List.fold_left2
        (fun acc (l, p) (_, x) ->
          match acc with
          | Stdlib.Error _ -> acc
          | Ok () -> (
            match value_ok p x with Ok () -> Ok () | Stdlib.Error e -> fail "field %s: %s" l e))
        (Ok ()) fps fvs
  | Set p, Value.VSet items ->
    if not (card_contains p.card (List.length items)) then
      fail "set of %d elements outside cardinality %d..%s" (List.length items) p.card.P.lo
        (match p.card.P.hi with None -> "*" | Some h -> string_of_int h)
    else items_ok p.elem items
  | Xprop p, Value.Xv { ext; items; _ } ->
    if not (String.equal p.ext ext) then fail "%s value where %s expected" ext p.ext
    else if not (card_contains p.card (List.length items)) then
      fail "%s of %d elements outside cardinality %d..%s" ext (List.length items) p.card.P.lo
        (match p.card.P.hi with None -> "*" | Some h -> string_of_int h)
    else items_ok p.elem items
  | (Atomic _ | Tuple _ | Set _ | Xprop _), _ ->
    fail "value %s does not match the envelope's structure" (Value.to_string v)

and items_ok elem items =
  List.fold_left
    (fun acc x ->
      match acc with
      | Stdlib.Error _ -> acc
      | Ok () -> (
        match value_ok elem x with
        | Ok () -> Ok ()
        | Stdlib.Error e -> Stdlib.Error (Printf.sprintf "element %s: %s" (Value.to_string x) e)))
    (Ok ()) items

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_card ppf (c : P.card) =
  match c.P.hi with
  | Some h when h = c.P.lo -> Format.fprintf ppf "%d" h
  | Some h -> Format.fprintf ppf "%d..%d" c.P.lo h
  | None -> Format.fprintf ppf "%d..*" c.P.lo

let pp_bound ppf = function
  | None -> Format.pp_print_string ppf "?"
  | Some f ->
    if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.0f" f
    else Format.fprintf ppf "%g" f

let rec pp ppf = function
  | Unknown -> Format.pp_print_string ppf "?"
  | Atomic { ty; lo; hi; bconst } ->
    Format.fprintf ppf "%s" (Atom.ty_name ty);
    (match bconst with Some b -> Format.fprintf ppf "=%b" b | None -> ());
    if lo <> None || hi <> None then Format.fprintf ppf "[%a..%a]" pp_bound lo pp_bound hi
  | Tuple fields ->
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (l, p) -> Format.fprintf ppf "%s: %a" l pp p))
      fields
  | Set { card; elem } -> Format.fprintf ppf "{|%a| %a}" pp_card card pp elem
  | Xprop { ext; card; elem; ordered } ->
    Format.fprintf ppf "%s%s{|%a| %a}" ext (if ordered then "!" else "") pp_card card pp elem

let to_string p =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1000000;
  Format.fprintf ppf "@[<h>%a@]@?" pp p;
  Buffer.contents buf
