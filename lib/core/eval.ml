module Mil = Mirror_bat.Mil
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom
module Parkernel = Mirror_bat.Parkernel
module Boundcheck = Mirror_bat.Boundcheck

type report = {
  value : Value.t;
  result_type : Types.t;
  plan_bats : int;
  plan_nodes : int;
  evaluated : int;
  memo_hits : int;
  par_ops : int;
  par_morsels : int;
  bound_est_rows : int;
  bound_est_bytes : int;
  bound_peak_bytes : int option;
  actual_bytes : int;
}

(* {1 Reification}

   Rebuilding logical values from evaluated BATs needs two indexes per
   BAT: head oid -> first tail (atomic payloads) and tail oid -> heads
   (set links, queried by parent).  Both are cached per evaluated
   BAT. *)

type reifier = {
  lookup : Mil.t -> Bat.t;
  atom_idx : (int, Atom.t) Hashtbl.t Mil.Tbl.t;
  link_idx : (int, int list) Hashtbl.t Mil.Tbl.t;
}

let make_reifier lookup =
  { lookup; atom_idx = Mil.Tbl.create 16; link_idx = Mil.Tbl.create 16 }

let atom_index r plan =
  match Mil.Tbl.find_opt r.atom_idx plan with
  | Some idx -> idx
  | None ->
    let bat = r.lookup plan in
    let idx = Hashtbl.create (Bat.count bat) in
    let heads = Mirror_bat.Column.oid_exn (Bat.head bat) in
    Array.iteri
      (fun i key -> if not (Hashtbl.mem idx key) then Hashtbl.add idx key (Bat.tail_at bat i))
      heads;
    Mil.Tbl.add r.atom_idx plan idx;
    idx

(* tail oid -> head oids in row order *)
let link_index r plan =
  match Mil.Tbl.find_opt r.link_idx plan with
  | Some idx -> idx
  | None ->
    let bat = r.lookup plan in
    let idx = Hashtbl.create (Bat.count bat) in
    let heads = Mirror_bat.Column.oid_exn (Bat.head bat) in
    let tails = Mirror_bat.Column.oid_exn (Bat.tail bat) in
    (* accumulate by reverse scan so lists come out in row order *)
    for i = Array.length heads - 1 downto 0 do
      let key = tails.(i) in
      Hashtbl.replace idx key
        (heads.(i) :: Option.value ~default:[] (Hashtbl.find_opt idx key))
    done;
    Mil.Tbl.add r.link_idx plan idx;
    idx

let rec reify_at r shape ctx =
  match shape with
  | Shape.Atomic plan -> (
    match Hashtbl.find_opt (atom_index r plan) ctx with
    | Some a -> Value.Atom a
    | None ->
      failwith (Printf.sprintf "reify: no value for context @%d" ctx))
  | Shape.Tuple fields ->
    Value.Tup (List.map (fun (l, s) -> (l, reify_at r s ctx)) fields)
  | Shape.Set { link; elem } ->
    let members = Option.value ~default:[] (Hashtbl.find_opt (link_index r link) ctx) in
    Value.VSet (List.map (fun e -> reify_at r elem e) members)
  | Shape.Xstruct { ext; meta; bats; subs } ->
    let (module E : Extension.S) = Extension.find_exn ext in
    E.reify ~lookup:r.lookup ~recurse:(reify_at r) ~meta ~bats ~subs ~ctx

let reify ~lookup shape = reify_at (make_reifier lookup) shape 0

(* {1 Query execution} *)

let plan_nodes shape =
  let n = ref 0 in
  Shape.iter (fun p -> n := !n + Mil.size p) shape;
  !n

module Trace = Mirror_util.Trace

let query ?(cse = true) ?(optimize = true) ?(specialize = true) ?(check = false)
    ?(trace = Trace.null) ?max_bytes storage expr =
  match
    Trace.with_span trace "typecheck" (fun () ->
        Typecheck.infer (Storage.typecheck_env storage) expr)
  with
  | Error e -> Error (Typecheck.diag_to_string e)
  | Ok result_type -> (
    let raw_expr = expr in
    let expr =
      if not optimize then expr
      else if Trace.is_on trace then
        Trace.with_span trace "optimize" (fun () ->
            let expr, rules = Optimize.rewrite_trace expr in
            Trace.attr trace "rules" (string_of_int (List.length rules));
            if rules <> [] then Trace.attr trace "fired" (String.concat "," rules);
            expr)
      else Optimize.rewrite expr
    in
    match Flatten.compile ~specialize ~check ~trace storage expr with
    | exception Flatten.Unsupported msg -> Error msg
    | exception Flatten.Ill_formed msg -> Error ("ill-formed plan: " ^ msg)
    | shape -> (
      (* physical peephole rewriting; deterministic, so shared subplans
         stay shared for the executor's memo table *)
      let shape =
        if not optimize then shape
        else if Trace.is_on trace then
          Trace.with_span trace "milopt" (fun () ->
              let fired = ref 0 in
              let shape =
                Shape.map
                  (fun p ->
                    let p, n = Mirror_bat.Milopt.rewrite_count p in
                    fired := !fired + n;
                    p)
                  shape
              in
              Trace.attr trace "rules" (string_of_int !fired);
              shape)
        else Shape.map Mirror_bat.Milopt.rewrite shape
      in
      let differential =
        if check then
          Trace.with_span trace "differential" (fun () ->
              Plancheck.differential ~specialize storage raw_expr)
        else Ok ()
      in
      match differential with
      | Error msg -> Error ("differential check: " ^ msg)
      | Ok () -> (
        (* static resource bounds over the optimised bundle: feeds the
           report's envelope, the morsel-sizing hint and (via the
           session's admission oracle) any [?max_bytes] budget *)
        let bounds =
          Trace.with_span trace "boundcheck" (fun () ->
              Boundcheck.analyze (Plancheck.boundcheck_env storage)
                (Plancheck.shape_plans shape))
        in
        let node_est plan =
          match Mil.Tbl.find_opt bounds.Boundcheck.per_node plan with
          | Some c -> Some c.Boundcheck.est
          | None -> None
        in
        (* parallel licence: a domain pool (when [--domains] asked for
           one) plus the Effcheck verdict over this very bundle — only
           operators whose partition is provably effect-free may run
           morsel-parallel.  Boundcheck's row estimate sizes the
           morsels, clamped inside the configured knobs. *)
        let par =
          match Parkernel.default_pool () with
          | None -> None
          | Some pool ->
            let v =
              Mirror_bat.Effcheck.analyze (Plancheck.effcheck_env ())
                (Plancheck.shape_plans shape)
            in
            let morsel plan =
              match node_est plan with
              | Some est when est > 0 ->
                Some (Parkernel.morsel_for ~domains:(Parkernel.size pool) est)
              | _ -> None
            in
            Some { Mil.pool; safe = v.Mirror_bat.Effcheck.safe; morsel }
        in
        let session =
          Mil.session ~cse ~trace
            ~foreign:(Extension.foreign_dispatch (Storage.eval_env storage))
            ?par ?max_bytes (Storage.catalog storage)
        in
        (* Under [check], the checked executor verifies each node's
           envelope and — when the memo table is on — the effect
           sanitizer first evaluates the node through the same session
           (so the checked pass gets memo hits) while verifying its
           observed aliasing against the Effcheck signature. *)
        let sanitizer =
          if check && cse then
            Some (Mirror_bat.Effcheck.sanitizer (Plancheck.effcheck_env ()) session)
          else None
        in
        let lookup =
          if check then (
            let checked =
              Mirror_bat.Milcheck.exec_checked (Plancheck.env_of_storage storage) session
            in
            fun plan ->
              (match sanitizer with
              | Some san -> ignore (Mirror_bat.Effcheck.exec san plan)
              | None -> ());
              checked plan)
          else Mil.exec session
        in
        match
          Trace.with_span trace "execute" (fun () ->
              let value = reify ~lookup shape in
              (match sanitizer with
              | Some san -> Mirror_bat.Effcheck.finish san
              | None -> ());
              let stats = Mil.stats session in
              Trace.attr trace "evaluated" (string_of_int stats.Mil.evaluated);
              Trace.attr trace "memo_hits" (string_of_int stats.Mil.memo_hits);
              value)
        with
        | value ->
          let stats = Mil.stats session in
          let bound_est_rows =
            List.fold_left
              (fun acc p -> acc + Option.value ~default:0 (node_est p))
              0 (Plancheck.shape_plans shape)
          in
          Ok
            {
              value;
              result_type;
              plan_bats = Shape.count_bats shape;
              plan_nodes = plan_nodes shape;
              evaluated = stats.Mil.evaluated;
              memo_hits = stats.Mil.memo_hits;
              par_ops = stats.Mil.par_ops;
              par_morsels = stats.Mil.par_morsels;
              bound_est_rows;
              bound_est_bytes = bounds.Boundcheck.resident.Boundcheck.fp_est;
              bound_peak_bytes = bounds.Boundcheck.resident.Boundcheck.fp_hi;
              actual_bytes = Mil.resident_bytes session;
            }
        | exception Failure msg -> Error msg
        | exception Invalid_argument msg -> Error msg
        | exception Mirror_bat.Effcheck.Violation msg -> Error ("effect sanitizer: " ^ msg)
        | exception Mil.Admission_refused { op; est_bytes; peak_bytes; budget } ->
          Error
            (Printf.sprintf
               "admission refused: plan %s estimated %d bytes, peak %s, over the %d-byte budget"
               op est_bytes
               (match peak_bytes with Some b -> string_of_int b ^ " bytes" | None -> "unbounded")
               budget)
        | exception Mil.Unbound name ->
          Error (Printf.sprintf "plan referenced the unbound catalog name %S" name))))

let query_value storage expr = Result.map (fun r -> r.value) (query storage expr)

let profile storage expr =
  match Typecheck.infer (Storage.typecheck_env storage) expr with
  | Error e -> Error (Typecheck.diag_to_string e)
  | Ok _ -> (
    match Flatten.compile storage (Optimize.rewrite expr) with
    | exception Flatten.Unsupported msg -> Error msg
    | shape ->
      let shape = Shape.map Mirror_bat.Milopt.rewrite shape in
      (* only the session gets the trace, so the aggregation sees
         operator spans alone (no compiler phases) *)
      let session =
        Mil.session ~trace:(Trace.create ())
          ~foreign:(Extension.foreign_dispatch (Storage.eval_env storage))
          (Storage.catalog storage)
      in
      (match reify ~lookup:(Mil.exec session) shape with
      | _ -> Ok (Mil.profile session)
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg
      | exception Mil.Unbound name ->
        Error (Printf.sprintf "plan referenced the unbound catalog name %S" name)))

let fmt_bytes b =
  let f = float_of_int b in
  if b >= 1_048_576 then Printf.sprintf "%.2f MiB" (f /. 1_048_576.)
  else if b >= 1024 then Printf.sprintf "%.1f KiB" (f /. 1024.)
  else Printf.sprintf "%d B" b

let explain_analyze ?(optimize = true) ?(cse = true) ?max_bytes storage expr =
  (* canonical form first, so two formulations that differ only by
     binder names or commutative operand order render the same span
     tree and rollup (see Normalize) *)
  let expr = Normalize.canonical expr in
  let trace = Trace.create () in
  (* snapshot the pool's lifetime totals so the rollup below reports
     this query's share only *)
  let pool0 =
    match Parkernel.default_pool () with
    | Some pool -> Some (pool, Parkernel.totals pool)
    | None -> None
  in
  match query ~cse ~optimize ~trace ?max_bytes storage expr with
  | Error e -> Error e
  | Ok report ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "result type: %s\nplan: %d bats, %d nodes; executed %d, memo hits %d\n"
         (Types.to_string report.result_type)
         report.plan_bats report.plan_nodes report.evaluated report.memo_hits);
    (match pool0 with
    | Some (pool, t0) when report.par_ops > 0 ->
      let t1 = Parkernel.totals pool in
      let busy = t1.Parkernel.t_busy -. t0.Parkernel.t_busy in
      let wall = t1.Parkernel.t_wall -. t0.Parkernel.t_wall in
      Buffer.add_string buf
        (Printf.sprintf
           "parallel: %d operators on %d domains, %d morsels; busy %.3f ms / wall %.3f ms (%.2fx)\n"
           report.par_ops (Parkernel.size pool) report.par_morsels (1000.0 *. busy)
           (1000.0 *. wall)
           (if wall > 0.0 then busy /. wall else 1.0))
    | _ ->
      if Parkernel.domains () > 1 then
        Buffer.add_string buf
          (Printf.sprintf "parallel: 0 operators (pool of %d domains idle)\n"
             (Parkernel.domains ())));
    (* effect-and-aliasing verdict over the same (optimised) bundle:
       how much of the DAG a domain-parallel executor could run
       concurrently *)
    (match Flatten.compile storage (if optimize then Optimize.rewrite expr else expr) with
    | exception _ -> ()
    | shape ->
      let shape = if optimize then Shape.map Mirror_bat.Milopt.rewrite shape else shape in
      let v =
        Mirror_bat.Effcheck.analyze (Plancheck.effcheck_env ()) (Plancheck.shape_plans shape)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "parallelism: %d safe partition%s over %d distinct operators (%d shared columns, %d hazards)\n"
           v.Mirror_bat.Effcheck.partitions
           (if v.Mirror_bat.Effcheck.partitions = 1 then "" else "s")
           v.Mirror_bat.Effcheck.nodes v.Mirror_bat.Effcheck.shared_columns
           (List.length v.Mirror_bat.Effcheck.hazards)));
    (* static resource envelope vs what the session actually held *)
    Buffer.add_string buf
      (Printf.sprintf "bounds: est %d rows / %s, peak %s (actual %s)\n" report.bound_est_rows
         (fmt_bytes report.bound_est_bytes)
         (match report.bound_peak_bytes with Some b -> fmt_bytes b | None -> "unbounded")
         (fmt_bytes report.actual_bytes));
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Trace.render trace);
    (* per-operator rollup over the executor spans only *)
    let exec_spans =
      List.concat_map
        (fun (sp : Trace.span) -> if sp.Trace.name = "execute" then sp.Trace.children else [])
        (Trace.roots trace)
    in
    let agg =
      Trace.aggregate
        ~flag:(fun sp -> List.mem_assoc "memo" sp.Trace.attrs)
        exec_spans
    in
    if agg <> [] then begin
      Buffer.add_char buf '\n';
      let tbl =
        Mirror_util.Tablefmt.create ~title:"per-operator totals"
          Mirror_util.Tablefmt.
            [
              ("operator", Left);
              ("calls", Right);
              ("total(ms)", Right);
              ("self(ms)", Right);
              ("rows", Right);
              ("memo hits", Right);
            ]
      in
      List.iter
        (fun (name, a) ->
          Mirror_util.Tablefmt.add_row tbl
            [
              name;
              string_of_int a.Trace.calls;
              Mirror_util.Tablefmt.cell_float (1000.0 *. a.Trace.total);
              Mirror_util.Tablefmt.cell_float (1000.0 *. a.Trace.self);
              string_of_int a.Trace.rows;
              string_of_int a.Trace.flagged;
            ])
        agg;
      Buffer.add_string buf (Mirror_util.Tablefmt.render tbl)
    end;
    Ok (Buffer.contents buf)

let explain ?(optimize = true) storage expr =
  let expr = Normalize.canonical expr in
  match Typecheck.infer (Storage.typecheck_env storage) expr with
  | Error e -> Error (Typecheck.diag_to_string e)
  | Ok _ -> (
    let expr = if optimize then Optimize.rewrite expr else expr in
    match Flatten.compile storage expr with
    | exception Flatten.Unsupported msg -> Error msg
    | shape ->
      let shape = if optimize then Shape.map Mirror_bat.Milopt.rewrite shape else shape in
      let buf = Buffer.create 256 in
      let k = ref 0 in
      Shape.iter
        (fun plan ->
          incr k;
          Buffer.add_string buf (Printf.sprintf "-- bat %d --\n%s\n" !k (Mil.to_string plan)))
        shape;
      Ok (Buffer.contents buf))
