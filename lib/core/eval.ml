module Mil = Mirror_bat.Mil
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

type report = {
  value : Value.t;
  result_type : Types.t;
  plan_bats : int;
  plan_nodes : int;
  evaluated : int;
  memo_hits : int;
}

(* {1 Reification}

   Rebuilding logical values from evaluated BATs needs two indexes per
   BAT: head oid -> first tail (atomic payloads) and tail oid -> heads
   (set links, queried by parent).  Both are cached per evaluated
   BAT. *)

type reifier = {
  lookup : Mil.t -> Bat.t;
  atom_idx : (Mil.t, (int, Atom.t) Hashtbl.t) Hashtbl.t;
  link_idx : (Mil.t, (int, int list) Hashtbl.t) Hashtbl.t;
}

let make_reifier lookup =
  { lookup; atom_idx = Hashtbl.create 16; link_idx = Hashtbl.create 16 }

let atom_index r plan =
  match Hashtbl.find_opt r.atom_idx plan with
  | Some idx -> idx
  | None ->
    let bat = r.lookup plan in
    let idx = Hashtbl.create (Bat.count bat) in
    let heads = Mirror_bat.Column.oid_exn (Bat.head bat) in
    Array.iteri
      (fun i key -> if not (Hashtbl.mem idx key) then Hashtbl.add idx key (Bat.tail_at bat i))
      heads;
    Hashtbl.add r.atom_idx plan idx;
    idx

(* tail oid -> head oids in row order *)
let link_index r plan =
  match Hashtbl.find_opt r.link_idx plan with
  | Some idx -> idx
  | None ->
    let bat = r.lookup plan in
    let idx = Hashtbl.create (Bat.count bat) in
    let heads = Mirror_bat.Column.oid_exn (Bat.head bat) in
    let tails = Mirror_bat.Column.oid_exn (Bat.tail bat) in
    (* accumulate by reverse scan so lists come out in row order *)
    for i = Array.length heads - 1 downto 0 do
      let key = tails.(i) in
      Hashtbl.replace idx key
        (heads.(i) :: Option.value ~default:[] (Hashtbl.find_opt idx key))
    done;
    Hashtbl.add r.link_idx plan idx;
    idx

let rec reify_at r shape ctx =
  match shape with
  | Shape.Atomic plan -> (
    match Hashtbl.find_opt (atom_index r plan) ctx with
    | Some a -> Value.Atom a
    | None ->
      failwith (Printf.sprintf "reify: no value for context @%d" ctx))
  | Shape.Tuple fields ->
    Value.Tup (List.map (fun (l, s) -> (l, reify_at r s ctx)) fields)
  | Shape.Set { link; elem } ->
    let members = Option.value ~default:[] (Hashtbl.find_opt (link_index r link) ctx) in
    Value.VSet (List.map (fun e -> reify_at r elem e) members)
  | Shape.Xstruct { ext; meta; bats; subs } ->
    let (module E : Extension.S) = Extension.find_exn ext in
    E.reify ~lookup:r.lookup ~recurse:(reify_at r) ~meta ~bats ~subs ~ctx

let reify ~lookup shape = reify_at (make_reifier lookup) shape 0

(* {1 Query execution} *)

let plan_nodes shape =
  let n = ref 0 in
  Shape.iter (fun p -> n := !n + Mil.size p) shape;
  !n

let query ?(cse = true) ?(optimize = true) ?(specialize = true) ?(check = false) storage expr =
  match Typecheck.infer (Storage.typecheck_env storage) expr with
  | Error e -> Error e
  | Ok result_type -> (
    let raw_expr = expr in
    let expr = if optimize then Optimize.rewrite expr else expr in
    match Flatten.compile ~specialize ~check storage expr with
    | exception Flatten.Unsupported msg -> Error msg
    | exception Flatten.Ill_formed msg -> Error ("ill-formed plan: " ^ msg)
    | shape -> (
      (* physical peephole rewriting; deterministic, so shared subplans
         stay shared for the executor's memo table *)
      let shape = if optimize then Shape.map Mirror_bat.Milopt.rewrite shape else shape in
      let differential =
        if check then Plancheck.differential ~specialize storage raw_expr else Ok ()
      in
      match differential with
      | Error msg -> Error ("differential check: " ^ msg)
      | Ok () -> (
        let session =
          Mil.session ~cse
            ~foreign:(Extension.foreign_dispatch (Storage.eval_env storage))
            (Storage.catalog storage)
        in
        let lookup =
          if check then
            Mirror_bat.Milcheck.exec_checked (Plancheck.env_of_storage storage) session
          else Mil.exec session
        in
        match reify ~lookup shape with
        | value ->
          let stats = Mil.stats session in
          Ok
            {
              value;
              result_type;
              plan_bats = Shape.count_bats shape;
              plan_nodes = plan_nodes shape;
              evaluated = stats.Mil.evaluated;
              memo_hits = stats.Mil.memo_hits;
            }
        | exception Failure msg -> Error msg
        | exception Invalid_argument msg -> Error msg
        | exception Mil.Unbound name ->
          Error (Printf.sprintf "plan referenced the unbound catalog name %S" name))))

let query_value storage expr = Result.map (fun r -> r.value) (query storage expr)

let profile storage expr =
  match Typecheck.infer (Storage.typecheck_env storage) expr with
  | Error e -> Error e
  | Ok _ -> (
    match Flatten.compile storage (Optimize.rewrite expr) with
    | exception Flatten.Unsupported msg -> Error msg
    | shape ->
      let shape = Shape.map Mirror_bat.Milopt.rewrite shape in
      let session =
        Mil.session ~profile:true
          ~foreign:(Extension.foreign_dispatch (Storage.eval_env storage))
          (Storage.catalog storage)
      in
      (match reify ~lookup:(Mil.exec session) shape with
      | _ -> Ok (Mil.profile session)
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg
      | exception Mil.Unbound name ->
        Error (Printf.sprintf "plan referenced the unbound catalog name %S" name)))

let explain ?(optimize = true) storage expr =
  match Typecheck.infer (Storage.typecheck_env storage) expr with
  | Error e -> Error e
  | Ok _ -> (
    let expr = if optimize then Optimize.rewrite expr else expr in
    match Flatten.compile storage expr with
    | exception Flatten.Unsupported msg -> Error msg
    | shape ->
      let shape = if optimize then Shape.map Mirror_bat.Milopt.rewrite shape else shape in
      let buf = Buffer.create 256 in
      let k = ref 0 in
      Shape.iter
        (fun plan ->
          incr k;
          Buffer.add_string buf (Printf.sprintf "-- bat %d --\n%s\n" !k (Mil.to_string plan)))
        shape;
      Ok (Buffer.contents buf))
