module Mil = Mirror_bat.Mil
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let root_dom =
  Mil.Lit { hty = Atom.TOid; tty = Atom.TOid; pairs = [ (Atom.Oid 0, Atom.Oid 0) ] }

type env = {
  storage : Storage.t;
  vars : (string * Extension.planshape) list;
  tvars : (string * Types.t) list;
  dom : Mil.t;
  specialize : bool;
}

let flat_env env =
  { Extension.fresh = (fun _ -> Storage.fresh_query_base env.storage); dom = env.dom }

let fresh env = Storage.fresh_query_base env.storage

let infer env e =
  match Typecheck.infer_with (Storage.typecheck_env env.storage) ~vars:env.tvars e with
  | Ok ty -> ty
  | Error d -> fail "flatten: ill-typed subexpression (%s)" (Typecheck.diag_to_string d)

(* {1 Context transformations} *)

let rec filter_shape shape survivors =
  match shape with
  | Shape.Atomic b -> Shape.Atomic (Mil.Semijoin (b, survivors))
  | Shape.Tuple fields ->
    Shape.Tuple (List.map (fun (l, s) -> (l, filter_shape s survivors)) fields)
  | Shape.Set { link; elem } ->
    let link' = Mil.Reverse (Mil.Semijoin (Mil.Reverse link, survivors)) in
    Shape.Set { link = link'; elem = filter_shape elem link' }
  | Shape.Xstruct { ext; meta; bats; subs } ->
    let (module E : Extension.S) = Extension.find_exn ext in
    E.filter_flat ~recurse:filter_shape ~meta ~bats ~subs ~survivors

let rec rebase_shape fenv shape m =
  match shape with
  | Shape.Atomic b -> Shape.Atomic (Mil.Join (m, b))
  | Shape.Tuple fields ->
    Shape.Tuple (List.map (fun (l, s) -> (l, rebase_shape fenv s m)) fields)
  | Shape.Set { link; elem } ->
    let j = Mil.Join (m, Mil.Reverse link) in
    let base = fenv.Extension.fresh 0 in
    let link' = Mil.NumberHead (j, base) in
    (* link' is (new_elem -> new_ctx); the element payloads move with
       m2 : new_elem -> old_elem. *)
    let link_fixed = link' in
    let m2 = Mil.NumberTail (j, base) in
    Shape.Set { link = link_fixed; elem = rebase_shape fenv elem m2 }
  | Shape.Xstruct { ext; meta; bats; subs } ->
    let (module E : Extension.S) = Extension.find_exn ext in
    E.rebase_flat fenv ~recurse:rebase_shape ~meta ~bats ~subs ~m

(* {1 Literals} *)

let rec compile_lit env v ty =
  match (ty, v) with
  | Types.Atomic _, Value.Atom a -> Shape.Atomic (Mil.Project (env.dom, a))
  | Types.Tuple fields, Value.Tup fvs ->
    Shape.Tuple
      (List.map
         (fun (label, fty) ->
           match List.assoc_opt label fvs with
           | Some fv -> (label, compile_lit env fv fty)
           | None -> fail "literal tuple missing field %S" label)
         fields)
  | Types.Set (Types.Atomic base_ty), Value.VSet items ->
    let pairs = List.map (fun item -> (Atom.Oid 0, Value.as_atom item)) items in
    let items_bat = Mil.Lit { hty = Atom.TOid; tty = base_ty; pairs } in
    let cross = Mil.Join (Mil.Project (env.dom, Atom.Oid 0), items_bat) in
    let base = fresh env in
    Shape.Set
      { link = Mil.NumberHead (cross, base); elem = Shape.Atomic (Mil.NumberTail (cross, base)) }
  | _ ->
    fail "unsupported literal %s : %s (only atoms, tuples of atoms and sets of atoms)"
      (Value.to_string v) (Types.to_string ty)

(* {1 Shape accessors} *)

let as_set what = function
  | Shape.Set { link; elem } -> (link, elem)
  | _ -> fail "%s: expected a flattened set" what

let as_atomic what = function
  | Shape.Atomic b -> b
  | _ -> fail "%s: expected a flattened atomic" what

(* Free variables of enclosing binders live over the *outer* element
   domain; under a new binder they are re-keyed onto the inner domain
   through the link (inner element -> outer context), so correlated
   uses align head-wise.  Unused rebased shapes cost nothing — plans
   are lazy. *)
let rebase_vars env m =
  let fenv = flat_env env in
  List.map (fun (v, shape) -> (v, rebase_shape fenv shape m)) env.vars

(* {1 The compiler} *)

let rec compile_env env expr =
  match expr with
  | Expr.Extent name -> (
    match Storage.extent_shape env.storage name with
    | None -> fail "extent %S is not loaded" name
    | Some shape ->
      if env.dom = root_dom then shape
      else
        (* an extent referenced under a binder is context-independent:
           broadcast it onto the current domain (every context gets its
           own copy of the elements, as the naive semantics demands) *)
        rebase_shape (flat_env env) shape (Mil.Project (env.dom, Atom.Oid 0)))
  | Expr.Lit (v, ty) -> compile_lit env v ty
  | Expr.Var v -> (
    match List.assoc_opt v env.vars with
    | Some shape -> shape
    | None -> fail "unbound variable %S" v)
  | Expr.Field (e, f) -> (
    match compile_env env e with
    | Shape.Tuple fields -> (
      match List.assoc_opt f fields with
      | Some s -> s
      | None -> fail "no field %S" f)
    | _ -> fail "field access on non-tuple")
  | Expr.Tuple fields ->
    Shape.Tuple (List.map (fun (l, e) -> (l, compile_env env e)) fields)
  | Expr.Map { v; body; src } ->
    let link, elem = as_set "map" (compile_env env src) in
    let elem_ty = elem_type env src in
    let env' =
      {
        env with
        vars = (v, elem) :: rebase_vars env link;
        tvars = (v, elem_ty) :: env.tvars;
        dom = Mil.Mirror link;
      }
    in
    Shape.Set { link; elem = compile_env env' body }
  | Expr.Select { v; pred; src } ->
    let link, elem = as_set "select" (compile_env env src) in
    let elem_ty = elem_type env src in
    let env' =
      {
        env with
        vars = (v, elem) :: rebase_vars env link;
        tvars = (v, elem_ty) :: env.tvars;
        dom = Mil.Mirror link;
      }
    in
    let pred_bat = as_atomic "select predicate" (compile_env env' pred) in
    let survivors = Mil.SelectBool pred_bat in
    Shape.Set { link = Mil.Semijoin (link, survivors); elem = filter_shape elem survivors }
  | Expr.Aggr (Bat.Count, e) ->
    let link, _ = as_set "count" (compile_env env e) in
    let counts = Mil.GroupAggr (Bat.Count, Mil.Reverse link) in
    Shape.Atomic (Mil.LeftOuterJoin (env.dom, counts, Atom.Int 0))
  | Expr.Aggr (a, e) ->
    let link, elem = as_set "aggregate" (compile_env env e) in
    let v = as_atomic "aggregate" elem in
    let pairs = Mil.Join (Mil.Reverse link, v) in
    let grouped = Mil.GroupAggr (a, pairs) in
    let base =
      match infer env e with
      | Types.Set (Types.Atomic b) -> b
      | _ -> fail "aggregate of non-atomic set"
    in
    let default = Naive.aggr_empty_default a base in
    Shape.Atomic (Mil.LeftOuterJoin (env.dom, grouped, default))
  | Expr.Binop (op, a, b) ->
    let pa = as_atomic "binop" (compile_env env a) in
    let pb = as_atomic "binop" (compile_env env b) in
    Shape.Atomic (Mil.Calc2 (op, pa, pb))
  | Expr.Unop (op, e) ->
    Shape.Atomic (Mil.Calc1 (op, as_atomic "unop" (compile_env env e)))
  | Expr.Exists e ->
    let link, _ = as_set "exists" (compile_env env e) in
    let counts = Mil.GroupAggr (Bat.Count, Mil.Reverse link) in
    let defaulted = Mil.LeftOuterJoin (env.dom, counts, Atom.Int 0) in
    Shape.Atomic (Mil.CalcConst (Bat.CmpOp Bat.Gt, defaulted, Atom.Int 0))
  | Expr.Member (x, s) ->
    let px = as_atomic "in" (compile_env env x) in
    let link, elem = as_set "in" (compile_env env s) in
    let v = as_atomic "in (set elements)" elem in
    let pairs = Mil.Join (Mil.Reverse link, v) in
    let matches = Mil.PairInter (pairs, px) in
    let counts = Mil.GroupAggr (Bat.Count, matches) in
    let defaulted = Mil.LeftOuterJoin (env.dom, counts, Atom.Int 0) in
    Shape.Atomic (Mil.CalcConst (Bat.CmpOp Bat.Gt, defaulted, Atom.Int 0))
  | Expr.Union (a, b) | Expr.Diff (a, b) | Expr.Inter (a, b) ->
    let la, ea = as_set "set operation" (compile_env env a) in
    let lb, eb = as_set "set operation" (compile_env env b) in
    let va = as_atomic "set operation" ea and vb = as_atomic "set operation" eb in
    let pa = Mil.Join (Mil.Reverse la, va) in
    let pb = Mil.Join (Mil.Reverse lb, vb) in
    let combined =
      match expr with
      | Expr.Union _ -> Mil.Unique (Mil.Append (pa, pb))
      | Expr.Diff _ -> Mil.PairDiff (Mil.Unique pa, pb)
      | _ -> Mil.PairInter (Mil.Unique pa, pb)
    in
    let base = fresh env in
    Shape.Set
      {
        link = Mil.NumberHead (combined, base);
        elem = Shape.Atomic (Mil.NumberTail (combined, base));
      }
  | Expr.Flat e ->
    let link1, elem = as_set "flatten" (compile_env env e) in
    let link2, elem2 = as_set "flatten (inner)" elem in
    Shape.Set { link = Mil.Join (link2, link1); elem = elem2 }
  | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
    let link', t1, t2, _ = compile_pairs env ~v1 ~v2 ~pred ~left ~right in
    Shape.Set { link = link'; elem = Shape.Tuple [ (l1, t1); (l2, t2) ] }
  | Expr.Semijoin { v1; v2; pred; left; right } ->
    let l1link, elem1 = as_set "semijoin (left)" (compile_env env left) in
    let survivors_left = semijoin_witnesses env ~v1 ~v2 ~pred ~left ~right in
    Shape.Set
      {
        link = Mil.Semijoin (l1link, survivors_left);
        elem = filter_shape elem1 survivors_left;
      }
  | Expr.Nest { src; key; inner } ->
    if env.dom <> root_dom then fail "nest is only supported at the top level";
    let _, elem = as_set "nest" (compile_env env src) in
    let fields = match elem with Shape.Tuple fs -> fs | _ -> fail "nest: not tuples" in
    let kv =
      match List.assoc_opt key fields with
      | Some (Shape.Atomic b) -> b
      | _ -> fail "nest: key %S is not atomic" key
    in
    let distinct = Mil.Unique (Mil.Mirror (Mil.Reverse kv)) in
    let base = fresh env in
    let gk = Mil.NumberHead (distinct, base) in
    let membership = Mil.Join (kv, Mil.Reverse gk) in
    Shape.Set
      {
        link = Mil.Project (gk, Atom.Oid 0);
        elem =
          Shape.Tuple
            [
              (key, Shape.Atomic gk);
              (inner, Shape.Set { link = membership; elem = Shape.Tuple fields });
            ];
      }
  | Expr.Unnest { src; field } -> (
    let link1, elem = as_set "unnest" (compile_env env src) in
    let fields = match elem with Shape.Tuple fs -> fs | _ -> fail "unnest: not tuples" in
    match List.assoc_opt field fields with
    | Some (Shape.Set { link = link2; elem = inner }) ->
      let others = List.filter (fun (l, _) -> l <> field) fields in
      (* the inner elements become the result elements; other fields
         follow them through link2 (new elem -> old row) *)
      let fenv = flat_env env in
      let rebased_others =
        List.map (fun (l, s) -> (l, rebase_shape fenv s link2)) others
      in
      let inner_fields =
        match inner with
        | Shape.Tuple ifields -> ifields
        | s -> [ (field, s) ]
      in
      Shape.Set
        {
          link = Mil.Join (link2, link1);
          elem = Shape.Tuple (rebased_others @ inner_fields);
        }
    | Some _ -> fail "unnest: field %S is not a flattened set" field
    | None -> fail "unnest: no field %S" field)
  | Expr.ExtOp { op; args } -> (
    match Extension.find_op op with
    | None -> fail "unknown operator %S" op
    | Some (module E : Extension.S) ->
      let arg_tys = List.map (infer env) args in
      let shapes = List.map (compile_env env) args in
      E.op_flatten (flat_env env) ~op ~arg_tys ~raw:args ~args:shapes)

(* Pairs of left x right elements within each context, predicate
   applied; returns (surviving pair link, filtered left elems, filtered
   right elems, surviving pair_l).  Pair oids are fresh.

   When the predicate contains an equality conjunct whose sides depend
   on one binder each ([THIS1.k = THIS2.k]), candidate pairs come from
   a hash join on the key columns instead of the full cross product —
   the equi-join specialisation.  The full predicate (and, for nested
   joins, context equality) still filters the candidates, so semantics
   are unchanged. *)
and compile_pairs env ~v1 ~v2 ~pred ~left ~right =
  let l1link, elem1 = as_set "join (left)" (compile_env env left) in
  let l2link, elem2 = as_set "join (right)" (compile_env env right) in
  let t1 = elem_type env left and t2 = elem_type env right in
  let rec conjuncts = function
    | Expr.Binop (Bat.And, a, b) -> conjuncts a @ conjuncts b
    | e -> [ e ]
  in
  let depends_only_on v e =
    List.for_all (fun fv -> fv = v) (Expr.free_vars e)
  in
  let equi =
    if env.specialize then
      List.find_map
        (function
          | Expr.Binop (Bat.CmpOp Bat.Eq, a, b)
            when depends_only_on v1 a && depends_only_on v2 b ->
            Some (a, b)
          | Expr.Binop (Bat.CmpOp Bat.Eq, a, b)
            when depends_only_on v2 a && depends_only_on v1 b ->
            Some (b, a)
          | _ -> None)
        (conjuncts pred)
    else None
  in
  let compile_key v tv link elem key_expr =
    let env' =
      {
        env with
        vars = (v, elem) :: rebase_vars env link;
        tvars = (v, tv) :: env.tvars;
        dom = Mil.Mirror link;
      }
    in
    as_atomic "join key" (compile_env env' key_expr)
  in
  let cross, need_ctx_check =
    match equi with
    | Some (kl_expr, kr_expr) ->
      let kl = compile_key v1 t1 l1link elem1 kl_expr in
      let kr = compile_key v2 t2 l2link elem2 kr_expr in
      (Mil.Join (kl, Mil.Reverse kr), true)
    | None -> (Mil.Join (l1link, Mil.Reverse l2link), false)
  in
  let base = fresh env in
  let pair_l = Mil.NumberHead (cross, base) in
  let pair_r = Mil.NumberTail (cross, base) in
  let fenv = flat_env env in
  let r1 = rebase_shape fenv elem1 pair_l in
  let r2 = rebase_shape fenv elem2 pair_r in
  let pairlink = Mil.Join (pair_l, l1link) in
  let env' =
    {
      env with
      vars = (v1, r1) :: (v2, r2) :: rebase_vars env pairlink;
      tvars = (v1, t1) :: (v2, t2) :: env.tvars;
      dom = Mil.Mirror pair_l;
    }
  in
  let pred_bat = as_atomic "join predicate" (compile_env env' pred) in
  let survivors = Mil.SelectBool pred_bat in
  let survivors =
    if need_ctx_check then begin
      (* keys matched across contexts; keep only same-context pairs *)
      let c1 = Mil.Join (pair_l, l1link) in
      let c2 = Mil.Join (pair_r, l2link) in
      Mil.Semijoin (survivors, Mil.SelectBool (Mil.Calc2 (Bat.CmpOp Bat.Eq, c1, c2)))
    end
    else survivors
  in
  ( Mil.Semijoin (pairlink, survivors),
    filter_shape r1 survivors,
    filter_shape r2 survivors,
    Mil.Semijoin (pair_l, survivors) )

and semijoin_witnesses env ~v1 ~v2 ~pred ~left ~right =
  let _, _, _, surviving_pairs = compile_pairs env ~v1 ~v2 ~pred ~left ~right in
  Mil.UniqueHead (Mil.Reverse surviving_pairs)

and elem_type env src =
  match infer env src with
  | Types.Set elem -> elem
  | ty -> fail "expected a set, got %s" (Types.to_string ty)

exception Ill_formed of string

let verify_shape storage shape =
  (* the analyzer env is built inline (catalog + registry signatures)
     rather than through Plancheck, which depends on this module *)
  let env =
    Mirror_bat.Milcheck.env_of_catalog ~foreign:Extension.foreign_signature
      (Storage.catalog storage)
  in
  Shape.iter
    (fun plan ->
      match Mirror_bat.Milcheck.verify env plan with
      | Ok _ -> ()
      | Error ds ->
        raise
          (Ill_formed
             (String.concat "; " (List.map Mirror_bat.Milcheck.diag_to_string ds))))
    shape

let compile ?(specialize = true) ?(check = false) ?(trace = Mirror_util.Trace.null)
    storage expr =
  let shape =
    Mirror_util.Trace.with_span trace "flatten.compile" (fun () ->
        let shape =
          compile_env { storage; vars = []; tvars = []; dom = root_dom; specialize } expr
        in
        Mirror_util.Trace.attr trace "bats" (string_of_int (Shape.count_bats shape));
        shape)
  in
  if check then begin
    Mirror_util.Trace.with_span trace "flatten.verify" (fun () ->
        verify_shape storage shape);
    Mirror_util.Trace.with_span trace "flatten.validate" (fun () ->
        match Moacheck.validate storage expr shape with
        | Ok () -> ()
        | Error ds ->
          raise
            (Ill_formed (String.concat "; " (List.map Moaprop.diag_to_string ds))))
  end;
  shape
