(** Structural type inference for Moa expressions.

    Checks an expression against the schema (extent types) and the
    extension registry, and returns its structure type.  Everything the
    flattening compiler assumes is validated here, so compilation can
    be written against well-typed inputs.

    Errors are structured {!Moaprop.diag} values (always of [Error]
    severity) whose [path] locates the offending subexpression from the
    root, using the same slash-separated constructor-name convention as
    {!Moacheck} and [Milcheck]; use {!diag_to_string} where a plain
    message is wanted. *)

type env = { extent : string -> Types.t option }
(** Schema access. *)

val infer : env -> Expr.t -> (Types.t, Moaprop.diag) result
(** Type of a closed expression. *)

val infer_with :
  ?path:string -> env -> vars:(string * Types.t) list -> Expr.t -> (Types.t, Moaprop.diag) result
(** Type of an expression with free variables bound to the given
    types.  [path] seeds the diagnostic locus (defaults to the root
    constructor's name). *)

val diag_to_string : Moaprop.diag -> string
(** Render a diagnostic as the historical one-line error string. *)

(** {1 Atom-level typing helpers}

    Shared with {!Moacheck}, which re-derives atom result types from
    its envelopes instead of re-running full inference. *)

val binop_type :
  Mirror_bat.Bat.binop -> Mirror_bat.Atom.ty -> Mirror_bat.Atom.ty ->
  (Mirror_bat.Atom.ty, string) result

val unop_type : Mirror_bat.Bat.unop -> Mirror_bat.Atom.ty -> (Mirror_bat.Atom.ty, string) result
val aggr_type : Mirror_bat.Bat.aggr -> Mirror_bat.Atom.ty -> (Mirror_bat.Atom.ty, string) result
