(** The storage manager: logical extents on binary-relational storage.

    [define] registers an extent's Moa type; [load] materialises rows
    into the BAT catalog following the [BWK98] flattening (one BAT per
    atomic path, a link BAT per set nesting, extension-defined BATs for
    extension structures) and records the plan-shape whose leaves are
    catalog lookups.  Both evaluators work against this state: the
    flattening compiler starts from the plan shapes, the naive
    evaluator from the retained logical rows. *)

type t

val create : unit -> t
(** Empty storage with a fresh catalog. *)

val catalog : t -> Mirror_bat.Catalog.t
(** The underlying BAT catalog. *)

val define : t -> name:string -> Types.t -> (unit, string) result
(** Register an extent.  The type must be a well-labelled [SET<...>]
    whose extension structures are registered and well-formed.
    Redefinition of an existing name is an error. *)

val load : t -> name:string -> Value.t list -> (int list, string) result
(** (Re)populate an extent: type-checks the rows, materialises them
    (replacing any previous contents), and returns the element oids
    assigned to the rows, in order. *)

val insert : t -> name:string -> Value.t list -> (int list, string) result
(** Append rows to a loaded extent (copying implementation: the whole
    extent re-materialises, so previously returned element oids are
    invalidated).  Returns the oids of all rows, old first. *)

val delete_where : t -> name:string -> (Value.t -> bool) -> (int, string) result
(** Remove the rows satisfying the predicate; returns how many were
    removed.  Copying, like {!insert}. *)

val extents : t -> string list
(** Defined extents, sorted. *)

val extent_type : t -> string -> Types.t option
(** Declared type. *)

val extent_shape : t -> string -> Extension.planshape option
(** Flattened plan shape ([None] until loaded). *)

val extent_rows : t -> string -> Value.t list option
(** The logical rows with storage bindings applied ([None] until
    loaded) — the naive evaluator's view. *)

val extent_count : t -> string -> int
(** Loaded row count (0 when unloaded). *)

val space_find : t -> string -> Mirror_ir.Space.t option
(** Statistics space registered under a name (CONTREP paths). *)

val eval_env : t -> Extension.eval_env
(** Environment handed to naive extension evaluation and physical
    operators. *)

val fresh_query_base : t -> int
(** Allocate an oid range for query-time [mark]/[number] operators.
    Ranges are wide (2^32) and disjoint from storage oids. *)

val typecheck_env : t -> Typecheck.env
(** Schema view for the type checker. *)

(** {1 Copy-on-write snapshots (see {!Mirror_serve})} *)

type snapshot
(** A frozen version of the whole logical state: catalog bindings,
    extent schemas/shapes/rows and the oid allocator positions.  BATs
    and row lists are shared structurally (both are immutable once
    built), so taking one is O(#extents + #catalog names), never
    O(rows) — the copy-on-write version store of the serving tier. *)

val snapshot : t -> snapshot
(** Freeze the current state.  Later mutations of [t] (copying DML
    replaces catalog bindings and extent records; it never mutates
    row data in place) are invisible to the snapshot. *)

val of_snapshot : snapshot -> t
(** A fresh, fully queryable storage view of a snapshot.  The view
    never journals and its query-base allocator is private; use it for
    reads — defining or loading through it affects only the view. *)

(** {1 Restore (persisted databases — see {!Persist})} *)

val define_restored : t -> name:string -> Types.t -> (Extension.planshape, string) result
(** Register an extent whose BATs are already present in the catalog
    (following the deterministic materialisation naming) and rebuild
    its plan shape; extension structures rebuild side state (statistics
    spaces, indexes) through their [restore] hook.  The logical rows
    are not recovered here — reify them and call {!set_rows}. *)

val set_rows : t -> name:string -> Value.t list -> unit
(** Attach the logical rows of a restored extent (the naive evaluator's
    view). *)

val bump_store_base : t -> int -> unit
(** Ensure future storage oids are allocated above the given oid (call
    with the largest oid found in a loaded catalog). *)

(** {1 Durability journal (see {!Mirror_store.Durable})} *)

type journal_record =
  | J_define of string * Types.t  (** extent DDL *)
  | J_replace of string * Value.t list
      (** full post-state of an extent after a copying DML statement
          ([load]/[insert]/[delete_where] all journal the complete new
          contents, which makes redo trivially idempotent) *)

val set_journal : t -> (journal_record -> unit) option -> unit
(** Install (or clear) the journal hook.  It fires after a mutation
    has applied cleanly; the restore path ({!define_restored},
    {!set_rows}) never journals. *)

val store_base : t -> int
(** Current storage-oid allocator position.  Checkpoints persist it so
    a recovered database allocates the same oids as the original run
    (the catalog alone under-approximates it after deletes). *)
