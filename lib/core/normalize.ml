module Bat = Mirror_bat.Bat

(* {1 Alpha-invariant structural keys}

   [db_key] renders an expression with binders erased and bound
   variables replaced by their de Bruijn depth, so the key is
   invariant under renaming.  It orders the operand pair of every
   commutative operator; because it is computed on already-sorted
   children, the sort pass below is idempotent. *)

let rec db_key env buf e =
  let go = db_key env buf in
  let under names sub =
    db_key (List.rev_append names env) buf sub
  in
  let op2 tag a b =
    Buffer.add_string buf tag;
    Buffer.add_char buf '(';
    go a;
    Buffer.add_char buf ',';
    go b;
    Buffer.add_char buf ')'
  in
  match (e : Expr.t) with
  | Expr.Extent n -> Buffer.add_string buf ("E:" ^ n)
  | Expr.Lit (v, _) -> Buffer.add_string buf ("L:" ^ Value.to_string v)
  | Expr.Var x -> (
    match List.find_index (String.equal x) env with
    | Some i -> Buffer.add_string buf (Printf.sprintf "#%d" i)
    | None -> Buffer.add_string buf ("F:" ^ x))
  | Expr.Field (e, f) ->
    go e;
    Buffer.add_string buf ("." ^ f)
  | Expr.Tuple fields ->
    Buffer.add_string buf "tup(";
    List.iter
      (fun (l, fe) ->
        Buffer.add_string buf (l ^ ":");
        go fe;
        Buffer.add_char buf ',')
      fields;
    Buffer.add_char buf ')'
  | Expr.Map { v; body; src } ->
    Buffer.add_string buf "map[";
    under [ v ] body;
    Buffer.add_string buf "](";
    go src;
    Buffer.add_char buf ')'
  | Expr.Select { v; pred; src } ->
    Buffer.add_string buf "sel[";
    under [ v ] pred;
    Buffer.add_string buf "](";
    go src;
    Buffer.add_char buf ')'
  | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
    Buffer.add_string buf (Printf.sprintf "join[%s,%s;" l1 l2);
    under [ v2; v1 ] pred;
    Buffer.add_string buf "](";
    go left;
    Buffer.add_char buf ',';
    go right;
    Buffer.add_char buf ')'
  | Expr.Semijoin { v1; v2; pred; left; right } ->
    Buffer.add_string buf "semi[";
    under [ v2; v1 ] pred;
    Buffer.add_string buf "](";
    go left;
    Buffer.add_char buf ',';
    go right;
    Buffer.add_char buf ')'
  | Expr.Aggr (a, e) ->
    Buffer.add_string buf (Expr.aggr_name a ^ "(");
    go e;
    Buffer.add_char buf ')'
  | Expr.Binop (op, a, b) -> op2 ("b:" ^ Expr.binop_sym op) a b
  | Expr.Unop (op, e) ->
    Buffer.add_string buf (Expr.unop_name op ^ "(");
    go e;
    Buffer.add_char buf ')'
  | Expr.Exists e ->
    Buffer.add_string buf "exists(";
    go e;
    Buffer.add_char buf ')'
  | Expr.Member (x, s) -> op2 "in" x s
  | Expr.Union (a, b) -> op2 "union" a b
  | Expr.Diff (a, b) -> op2 "diff" a b
  | Expr.Inter (a, b) -> op2 "inter" a b
  | Expr.Flat e ->
    Buffer.add_string buf "flat(";
    go e;
    Buffer.add_char buf ')'
  | Expr.Nest { src; key; inner } ->
    Buffer.add_string buf (Printf.sprintf "nest[%s,%s](" key inner);
    go src;
    Buffer.add_char buf ')'
  | Expr.Unnest { src; field } ->
    Buffer.add_string buf (Printf.sprintf "unnest[%s](" field);
    go src;
    Buffer.add_char buf ')'
  | Expr.ExtOp { op; args } ->
    Buffer.add_string buf ("x:" ^ op ^ "(");
    List.iter
      (fun a ->
        go a;
        Buffer.add_char buf ',')
      args;
    Buffer.add_char buf ')'

let alpha_key env e =
  let buf = Buffer.create 64 in
  db_key env buf e;
  Buffer.contents buf

(* {1 Pass 1: commutative operand sort}

   [a + b] is equivalent to [b + a] for every listed operator: the
   set-at-a-time kernel evaluates both operand columns regardless of
   order, IEEE addition/multiplication and min/max are commutative at
   the value level, and [=]/[<>]/[union]/[inter] are symmetric.
   Ordered comparisons, [-], [/], [pow] and [diff] are not touched. *)

let commutative : Bat.binop -> bool = function
  | Bat.Add | Bat.Mul | Bat.MinOp | Bat.MaxOp | Bat.And | Bat.Or -> true
  | Bat.CmpOp (Bat.Eq | Bat.Ne) -> true
  | Bat.CmpOp (Bat.Lt | Bat.Le | Bat.Gt | Bat.Ge) | Bat.Sub | Bat.Div | Bat.Pow -> false

let rec sortpass env (e : Expr.t) : Expr.t =
  let pair ctor a b =
    let a = sortpass env a and b = sortpass env b in
    if String.compare (alpha_key env a) (alpha_key env b) <= 0 then ctor a b else ctor b a
  in
  match e with
  | Expr.Extent _ | Expr.Lit _ | Expr.Var _ -> e
  | Expr.Field (e, f) -> Expr.Field (sortpass env e, f)
  | Expr.Tuple fields -> Expr.Tuple (List.map (fun (l, fe) -> (l, sortpass env fe)) fields)
  | Expr.Map { v; body; src } ->
    Expr.Map { v; body = sortpass (v :: env) body; src = sortpass env src }
  | Expr.Select { v; pred; src } ->
    Expr.Select { v; pred = sortpass (v :: env) pred; src = sortpass env src }
  | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
    Expr.Join
      {
        v1;
        v2;
        pred = sortpass (v1 :: v2 :: env) pred;
        left = sortpass env left;
        right = sortpass env right;
        l1;
        l2;
      }
  | Expr.Semijoin { v1; v2; pred; left; right } ->
    Expr.Semijoin
      {
        v1;
        v2;
        pred = sortpass (v1 :: v2 :: env) pred;
        left = sortpass env left;
        right = sortpass env right;
      }
  | Expr.Aggr (a, e) -> Expr.Aggr (a, sortpass env e)
  | Expr.Binop (op, a, b) when commutative op -> pair (fun a b -> Expr.Binop (op, a, b)) a b
  | Expr.Binop (op, a, b) -> Expr.Binop (op, sortpass env a, sortpass env b)
  | Expr.Unop (op, e) -> Expr.Unop (op, sortpass env e)
  | Expr.Exists e -> Expr.Exists (sortpass env e)
  | Expr.Member (x, s) -> Expr.Member (sortpass env x, sortpass env s)
  | Expr.Union (a, b) -> pair (fun a b -> Expr.Union (a, b)) a b
  | Expr.Inter (a, b) -> pair (fun a b -> Expr.Inter (a, b)) a b
  | Expr.Diff (a, b) -> Expr.Diff (sortpass env a, sortpass env b)
  | Expr.Flat e -> Expr.Flat (sortpass env e)
  | Expr.Nest { src; key; inner } -> Expr.Nest { src = sortpass env src; key; inner }
  | Expr.Unnest { src; field } -> Expr.Unnest { src = sortpass env src; field }
  | Expr.ExtOp { op; args } -> Expr.ExtOp { op; args = List.map (sortpass env) args }

(* {1 Pass 2: alpha-normalisation}

   Binders become [v1], [v2], … in pre-order (sources before bodies,
   matching evaluation order), skipping any name that occurs free in
   the query so free identifiers are never captured.  Free variables
   keep their names — they are part of the query's meaning (supplied
   through [?bindings]). *)

let alphapass free (e : Expr.t) : Expr.t =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    let rec pick n =
      let name = Printf.sprintf "v%d" n in
      if List.mem name free then begin
        incr counter;
        pick (n + 1)
      end
      else name
    in
    pick !counter
  in
  let rename env x = match List.assoc_opt x env with Some y -> y | None -> x in
  let rec go env (e : Expr.t) : Expr.t =
    match e with
    | Expr.Extent _ | Expr.Lit _ -> e
    | Expr.Var x -> Expr.Var (rename env x)
    | Expr.Field (e, f) -> Expr.Field (go env e, f)
    | Expr.Tuple fields -> Expr.Tuple (List.map (fun (l, fe) -> (l, go env fe)) fields)
    | Expr.Map { v; body; src } ->
      let src = go env src in
      let v' = fresh () in
      Expr.Map { v = v'; body = go ((v, v') :: env) body; src }
    | Expr.Select { v; pred; src } ->
      let src = go env src in
      let v' = fresh () in
      Expr.Select { v = v'; pred = go ((v, v') :: env) pred; src }
    | Expr.Join { v1; v2; pred; left; right; l1; l2 } ->
      let left = go env left and right = go env right in
      let v1' = fresh () in
      let v2' = fresh () in
      Expr.Join
        { v1 = v1'; v2 = v2'; pred = go ((v1, v1') :: (v2, v2') :: env) pred; left; right; l1; l2 }
    | Expr.Semijoin { v1; v2; pred; left; right } ->
      let left = go env left and right = go env right in
      let v1' = fresh () in
      let v2' = fresh () in
      Expr.Semijoin
        { v1 = v1'; v2 = v2'; pred = go ((v1, v1') :: (v2, v2') :: env) pred; left; right }
    | Expr.Aggr (a, e) -> Expr.Aggr (a, go env e)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go env a, go env b)
    | Expr.Unop (op, e) -> Expr.Unop (op, go env e)
    | Expr.Exists e -> Expr.Exists (go env e)
    | Expr.Member (x, s) -> Expr.Member (go env x, go env s)
    | Expr.Union (a, b) -> Expr.Union (go env a, go env b)
    | Expr.Diff (a, b) -> Expr.Diff (go env a, go env b)
    | Expr.Inter (a, b) -> Expr.Inter (go env a, go env b)
    | Expr.Flat e -> Expr.Flat (go env e)
    | Expr.Nest { src; key; inner } -> Expr.Nest { src = go env src; key; inner }
    | Expr.Unnest { src; field } -> Expr.Unnest { src = go env src; field }
    | Expr.ExtOp { op; args } -> Expr.ExtOp { op; args = List.map (go env) args }
  in
  go [] e

let canonical e =
  let free = Expr.free_vars e in
  alphapass free (sortpass [] e)

let key e = Expr.to_string (canonical e)

let hash e = Mirror_util.Crc32.to_hex (Mirror_util.Crc32.string (key e))
