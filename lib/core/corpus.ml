module Atom = Mirror_bat.Atom

(* R : SET< TUPLE< a:int, b:int, s:SET<int>, c:CONTREP<str> > > — the
   same extent the equivalence tests use, so corpus plans exercise
   every layer (tuples, nested sets, CONTREP bundles). *)
let schema =
  Types.Set
    (Types.Tuple
       [
         ("a", Types.Atomic Atom.TInt);
         ("b", Types.Atomic Atom.TInt);
         ("s", Types.Set (Types.Atomic Atom.TInt));
         ("c", Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
       ])

let row a b s c =
  Value.Tup
    [
      ("a", Value.int a);
      ("b", Value.int b);
      ("s", Value.VSet (List.map Value.int s));
      ("c", Value.contrep c);
    ]

let rows =
  [
    row 1 2 [ 1; 2; 3 ] [ ("cat", 2.0); ("stripe", 1.0) ];
    row 2 2 [ 4 ] [ ("dog", 1.0) ];
    row (-1) 0 [] [];
    row 2 5 [ 2; 2 ] [ ("cat", 1.0); ("dog", 3.0) ];
  ]

let storage () =
  Bootstrap.ensure ();
  let st = Storage.create () in
  (match Storage.define st ~name:"R" schema with
  | Ok () -> ()
  | Error e -> failwith ("Corpus.storage: " ^ e));
  match Storage.load st ~name:"R" rows with
  | Ok _ -> st
  | Error e -> failwith ("Corpus.storage: " ^ e)

(* One query per pipeline feature: projections, arithmetic,
   selections, nested-set aggregates, joins (equi and theta), set
   operations, nest/unnest, broadcasting, LIST and CONTREP operators,
   correlated subqueries.  The analyzer, the differential checker and
   [mirror_cli lint] all sweep this list. *)
let queries =
  [
    "map[THIS.a](R)";
    "map[THIS.a + THIS.b](R)";
    "map[THIS.a * 2 - 1](R)";
    "select[THIS.a > 0](R)";
    "select[THIS.a = 2 and THIS.b >= 2](R)";
    "select[not (THIS.a > 0)](R)";
    "map[sum(THIS.s)](R)";
    "map[count(THIS.s)](R)";
    "map[max(THIS.s)](R)";
    "map[avg(THIS.s)](R)";
    "select[exists(THIS.s)](R)";
    "map[tuple(x: THIS.a, y: count(THIS.s))](R)";
    "sum(map[THIS.a](R))";
    "count(R)";
    "map[select[THIS > 1](THIS.s)](R)";
    "map[map[THIS + 1](THIS.s)](R)";
    "join[THIS1.a = THIS2.b](R, R)";
    "join[THIS1.a < THIS2.a; x, y](R, R)";
    "semijoin[THIS1.a = THIS2.a and THIS1.b < THIS2.b](R, R)";
    "map[union(THIS.s, {1, 9})](R)";
    "map[diff(THIS.s, {2})](R)";
    "map[inter(THIS.s, {2, 4})](R)";
    "map[in(THIS.a, THIS.s)](R)";
    "flatten(map[THIS.s](R))";
    "nest[a, grp](map[tuple(a: THIS.a, b: THIS.b)](R))";
    "unnest[s](map[tuple(a: THIS.a, s: THIS.s)](R))";
    "map[count(R)](R)";
    "map[THIS.a + sum(map[THIS.b](R))](R)";
    "map[exists(select[THIS.a > 90](R))](R)";
    "map[count(select[THIS.b = 2](R))](select[THIS.a > 0](R))";
    "map[getBL(THIS.c, {'cat', 'zebra'}, stats)](R)";
    "map[sum(getBL(THIS.c, {'cat'}))](R)";
    "map[terms(THIS.c)](R)";
    "toset(take(tolist_desc(map[tuple(a: THIS.a, b: THIS.b)](R), 'b'), 2))";
    "take(tolist(map[THIS.a](R), ''), 3)";
    "map[THIS.a >= 2 or THIS.b = 0](R)";
    "select[in(2, THIS.s)](R)";
    "1 + 2 * 3";
    "map[count(distinct(THIS.s))](R)";
    "map[min2(THIS.a, THIS.b) + max2(THIS.a, 1)](R)";
    "map[pow(THIS.b, 2)](R)";
    "map[x: sum(map[y: y + x.a](x.s))](R)";
    "count(select[getBLnet(THIS.c, '#and( cat dog )') > 0.2](R))";
    "map[x: count(select[y: y.a = x.a](R))](R)";
    "map[x: sum(getBL(x.c, terms(x.c)))](select[THIS.a > 0](R))";
    "distinct(flatten(map[THIS.s](R)))";
    "map[tf(THIS.c, 'cat')](R)";
    "map[clen(THIS.c)](R)";
    "sum(map[sum(getBL(THIS.c, {'cat'}))](R))";
    "map[terms(THIS.c)](select[THIS.a > 0](R))";
    "map[sum(getBL(THIS.c, {'cat', 'dog'}))](select[THIS.a > 0](R))";
    "map[sum(getBL(THIS.left.c, {'cat'}))](join[THIS1.a = THIS2.a](R, R))";
    "map[sum(getBL(THIS.c, terms(THIS.c)))](R)";
    "map[getBLnet(THIS.c, '#sum( cat dog )')](R)";
    "map[getBLnet(THIS.c, '#wsum( cat^3 #and( dog stripe ) )')](R)";
    "map[count(join[THIS1 = THIS2](THIS.s, THIS.s))](R)";
    "map[count(join[THIS1 < THIS2](THIS.s, THIS.s))](R)";
  ]
