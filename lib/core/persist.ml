module Catalog = Mirror_bat.Catalog
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom
module Column = Mirror_bat.Column
module Mil = Mirror_bat.Mil

let ( let* ) = Result.bind

let schema_file dir = Filename.concat dir "schema.moa"
let catalog_file dir = Filename.concat dir "catalog.bats"

let save storage ~dir =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith (dir ^ " exists and is not a directory")
  with
  | exception Sys_error e -> Error e
  | exception Failure e -> Error e
  | () ->
    (* Both files go through temp-file + fsync + rename, so a crash
       mid-save leaves the previous snapshot intact (each file
       individually; multi-file atomicity is the checkpoint protocol's
       job, see [Mirror_store.Durable]).  The directory fsync at the
       end persists both renames — without it power loss could keep a
       rename whose file contents never reached the disk. *)
    let schema = schema_file dir in
    let tmp = schema ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun name ->
            match Storage.extent_type storage name with
            | Some ty -> Printf.fprintf oc "define %s as %s;\n" name (Types.to_string ty)
            | None -> ())
          (Storage.extents storage);
        Mirror_util.Fsx.fsync_out oc);
    Sys.rename tmp schema;
    Catalog.save_file (Storage.catalog storage) (catalog_file dir);
    Mirror_util.Fsx.fsync_dir dir;
    Ok ()

let max_oid_in_catalog cat =
  List.fold_left
    (fun acc name ->
      let b = Catalog.get cat name in
      let scan col acc =
        match col with
        | Column.O arr -> Array.fold_left max acc arr
        | Column.I _ | Column.F _ | Column.S _ | Column.B _ -> acc
      in
      scan (Bat.head b) (scan (Bat.tail b) acc))
    (-1) (Catalog.names cat)

let load ~dir =
  Bootstrap.ensure ();
  if not (Sys.file_exists (schema_file dir)) then
    Error (Printf.sprintf "no schema file in %S" dir)
  else
    let* loaded_cat = Catalog.load_file (catalog_file dir) in
    let schema_src =
      let ic = open_in (schema_file dir) in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let* stmts = Parser.parse_program schema_src in
    let storage = Storage.create () in
    List.iter
      (fun name -> Catalog.put (Storage.catalog storage) name (Catalog.get loaded_cat name))
      (Catalog.names loaded_cat);
    Storage.bump_store_base storage (max_oid_in_catalog loaded_cat);
    let session () =
      Mil.session
        ~foreign:(Extension.foreign_dispatch (Storage.eval_env storage))
        (Storage.catalog storage)
    in
    List.fold_left
      (fun acc stmt ->
        let* () = acc in
        match stmt with
        | Parser.Query _ | Parser.Let _ | Parser.Insert _ | Parser.Delete _ ->
          Error "schema file contains a non-define statement"
        | Parser.Define (name, ty) -> (
          let* shape = Storage.define_restored storage ~name ty in
          (* recover the logical rows for the naive evaluator *)
          match Eval.reify ~lookup:(Mil.exec (session ())) shape with
          | Value.VSet rows ->
            Storage.set_rows storage ~name rows;
            Ok ()
          | other ->
            Error
              (Printf.sprintf "extent %S reified to a non-set value %s" name
                 (Value.to_string other))
          | exception Failure e -> Error e
          | exception Invalid_argument e -> Error e
          | exception Not_found -> Error ("missing catalog entries for extent " ^ name)))
      (Ok ()) stmts
    |> Result.map (fun () -> storage)
