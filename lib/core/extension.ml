type planshape = Mirror_bat.Mil.t Shape.t

type flat_env = {
  fresh : int -> int;
  dom : Mirror_bat.Mil.t;
}

type eval_env = { space : string -> Mirror_ir.Space.t option }

type store_env = {
  catalog : Mirror_bat.Catalog.t;
  fresh_store : int -> int;
  space_create : string -> Mirror_ir.Space.t;
}

module type S = sig
  val name : string
  val arity : int
  val check_type : Types.t list -> (unit, string) result
  val ops : string list
  val op_type : op:string -> args:Types.t list -> (Types.t, string) result
  val op_eval : eval_env -> op:string -> args:Value.t list -> Value.t

  val op_flatten :
    flat_env ->
    op:string ->
    arg_tys:Types.t list ->
    raw:Expr.t list ->
    args:planshape list ->
    planshape

  val materialize :
    store_env ->
    recurse:(path:string -> ty:Types.t -> dom:(int * Value.t) list -> planshape) ->
    path:string ->
    ty_args:Types.t list ->
    dom:(int * Value.t) list ->
    planshape

  val filter_flat :
    recurse:(planshape -> Mirror_bat.Mil.t -> planshape) ->
    meta:string list ->
    bats:Mirror_bat.Mil.t list ->
    subs:planshape list ->
    survivors:Mirror_bat.Mil.t ->
    planshape

  val rebase_flat :
    flat_env ->
    recurse:(flat_env -> planshape -> Mirror_bat.Mil.t -> planshape) ->
    meta:string list ->
    bats:Mirror_bat.Mil.t list ->
    subs:planshape list ->
    m:Mirror_bat.Mil.t ->
    planshape

  val reify :
    lookup:(Mirror_bat.Mil.t -> Mirror_bat.Bat.t) ->
    recurse:(planshape -> int -> Value.t) ->
    meta:string list ->
    bats:Mirror_bat.Mil.t list ->
    subs:planshape list ->
    ctx:int ->
    Value.t

  val restore :
    store_env ->
    recurse:(path:string -> ty:Types.t -> planshape) ->
    path:string ->
    ty_args:Types.t list ->
    planshape
  (** Rebuild the plan shape (and any side state, e.g. statistics
      spaces and inverted indexes) for a structure previously written
      by {!materialize} under [path], reading back from the catalog in
      [store_env].  Used when loading a persisted database. *)

  val foreign_ops :
    (string * (eval_env -> args:Mirror_bat.Bat.t list -> meta:string list -> Mirror_bat.Bat.t)) list

  val foreign_sigs : (string * Mirror_bat.Milprop.foreign_sig) list
  val foreign_effects : (string * Mirror_bat.Effcheck.foreign_eff) list
  val foreign_bounds : (string * Mirror_bat.Boundcheck.foreign_bound) list

  val op_envelope :
    op:string -> args:Moaprop.t list -> ty:Types.t -> top:(Types.t -> Moaprop.t) -> Moaprop.t

  val prop_flat :
    ctx:Mirror_bat.Milprop.card ->
    prop:Moaprop.t ->
    meta:string list ->
    nbats:int ->
    nsubs:int ->
    Mirror_bat.Milprop.t option list * (Moaprop.t * Mirror_bat.Milprop.card) list

  val bind_value :
    path:string ->
    recurse:(path:string -> ty:Types.t -> Value.t -> Value.t) ->
    ty_args:Types.t list ->
    Value.t ->
    Value.t
end

let by_name : (string, (module S)) Hashtbl.t = Hashtbl.create 8
let by_op : (string, (module S)) Hashtbl.t = Hashtbl.create 16

let register (module E : S) =
  (* Registration is keyed (and idempotent) by structure name. *)
  if not (Hashtbl.mem by_name E.name) then begin
    List.iter
      (fun op ->
        match Hashtbl.find_opt by_op op with
        | Some (module Other : S) ->
          invalid_arg
            (Printf.sprintf "Extension.register: operator %S of %S clashes with %S" op E.name
               Other.name)
        | None -> ())
      E.ops;
    Hashtbl.add by_name E.name (module E : S);
    List.iter (fun op -> Hashtbl.add by_op op (module E : S)) E.ops
  end

let find name = Hashtbl.find_opt by_name name

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Extension: unknown structure %S" name)

let find_op op = Hashtbl.find_opt by_op op

let registered () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_name [])

let foreign_signature name =
  Hashtbl.fold
    (fun _ (module E : S) acc ->
      match acc with Some _ -> acc | None -> List.assoc_opt name E.foreign_sigs)
    by_name None

let foreign_effect name =
  Hashtbl.fold
    (fun _ (module E : S) acc ->
      match acc with Some _ -> acc | None -> List.assoc_opt name E.foreign_effects)
    by_name None

let foreign_bound name =
  Hashtbl.fold
    (fun _ (module E : S) acc ->
      match acc with Some _ -> acc | None -> List.assoc_opt name E.foreign_bounds)
    by_name None

let foreign_dispatch env ~name ~args ~meta =
  let handler =
    Hashtbl.fold
      (fun _ (module E : S) acc ->
        match acc with
        | Some _ -> acc
        | None -> List.assoc_opt name E.foreign_ops)
      by_name None
  in
  match handler with
  | Some f -> f env ~args ~meta
  | None -> failwith (Printf.sprintf "Mirror: unknown physical operator %S" name)
