module Atom = Mirror_bat.Atom
module Synth = Mirror_mm.Synth
module Orchestrator = Mirror_daemon.Orchestrator
module Daemon = Mirror_daemon.Daemon
module Store = Mirror_daemon.Store
module Concepts = Mirror_thesaurus.Concepts
module Adapt = Mirror_thesaurus.Adapt
module Tokenize = Mirror_ir.Tokenize
module Querynet = Mirror_ir.Querynet

type t = {
  stor : Storage.t;
  adapt : Adapt.t;
  mutable thesaurus : Concepts.t option;
  url_of : (int, string) Hashtbl.t;
  doc_of : (string, int) Hashtbl.t;
  visual : (string, (string * float) list) Hashtbl.t;  (* by url *)
  mutable on_feedback : (query:string -> judgements:(string * bool) list -> unit) option;
}

type outcome =
  | Defined of string
  | Bound of string
  | Inserted of string
  | Deleted of string * int
  | Evaluated of Value.t

let of_storage stor =
  Bootstrap.ensure ();
  {
    stor;
    adapt = Adapt.create ();
    thesaurus = None;
    url_of = Hashtbl.create 64;
    doc_of = Hashtbl.create 64;
    visual = Hashtbl.create 64;
    on_feedback = None;
  }

let create () =
  Bootstrap.ensure ();
  {
    stor = Storage.create ();
    adapt = Adapt.create ();
    thesaurus = None;
    url_of = Hashtbl.create 64;
    doc_of = Hashtbl.create 64;
    visual = Hashtbl.create 64;
    on_feedback = None;
  }

let storage t = t.stor
let set_feedback_hook t h = t.on_feedback <- h
let define t ~name ty = Storage.define t.stor ~name ty
let load t ~name rows = Storage.load t.stor ~name rows

let run_expr t expr = Eval.query_value t.stor expr

let ( let* ) = Result.bind

let exec_program t ?bindings src =
  let* stmts = Parser.parse_program ?bindings src in
  List.fold_left
    (fun acc stmt ->
      let* done_ = acc in
      match stmt with
      | Parser.Define (name, ty) ->
        let* () = define t ~name ty in
        Ok (Defined name :: done_)
      | Parser.Let (name, _) -> Ok (Bound name :: done_)
      | Parser.Insert (name, e) -> (
        match Naive.eval t.stor e with
        | row ->
          let* _ = Storage.insert t.stor ~name [ row ] in
          Ok (Inserted name :: done_)
        | exception Failure msg -> Error msg
        | exception Invalid_argument msg -> Error msg)
      | Parser.Delete (name, (v, pred)) -> (
        let matches row =
          match Naive.eval_with t.stor ~vars:[ (v, row) ] pred with
          | Value.Atom (Mirror_bat.Atom.Bool b) -> b
          | _ -> failwith "delete predicate must be boolean"
        in
        match Storage.delete_where t.stor ~name matches with
        | Ok n -> Ok (Deleted (name, n) :: done_)
        | Error e -> Error e
        | exception Failure msg -> Error msg
        | exception Invalid_argument msg -> Error msg)
      | Parser.Query expr ->
        let* v = run_expr t expr in
        Ok (Evaluated v :: done_))
    (Ok []) stmts
  |> Result.map List.rev

let run_query t ?bindings src =
  let* expr = Parser.parse_expr ?bindings src in
  run_expr t expr

(* {1 The demo image library} *)

let library_schema =
  Types.Set
    (Types.Tuple
       [
         ("source", Types.Atomic Atom.TStr);
         ("annotation", Types.Atomic Atom.TStr);
         ("image", Types.Atomic Atom.TStr);
       ])

let internal_schema =
  Types.Set
    (Types.Tuple
       [
         ("source", Types.Atomic Atom.TStr);
         ("annotation", Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
         ("image", Types.Xt ("CONTREP", [ Types.Atomic Atom.TStr ]));
       ])

let build_image_library t ?daemons ?journal ~scenes () =
  let orch = Orchestrator.create ?daemons () in
  (match journal with
  | None -> ()
  | Some _ -> Store.set_journal (Orchestrator.ctx orch).Daemon.store journal);
  Array.iteri
    (fun i (s : Synth.scene) ->
      let url = Printf.sprintf "img://%d" i in
      let annotation = Option.map (String.concat " ") s.Synth.caption in
      Orchestrator.ingest_image orch ~doc:i ~url ?annotation s.Synth.image)
    scenes;
  Orchestrator.complete_collection orch;
  let report = Orchestrator.run orch in
  let store = (Orchestrator.ctx orch).Daemon.store in
  let caption i =
    match scenes.(i).Synth.caption with Some words -> String.concat " " words | None -> ""
  in
  let raw_rows =
    List.map
      (fun doc ->
        let url = Option.value ~default:"" (Store.url_of store doc) in
        Value.Tup
          [
            ("source", Value.str url);
            ("annotation", Value.str (caption doc));
            ("image", Value.str url);
          ])
      (Store.docs store)
  in
  let internal_rows =
    List.map
      (fun doc ->
        let url = Option.value ~default:"" (Store.url_of store doc) in
        let text = Option.value ~default:[] (Store.text store ~doc) in
        let vis = Store.visual_words store ~doc in
        Value.Tup
          [
            ("source", Value.str url);
            ("annotation", Value.contrep text);
            ("image", Value.contrep vis);
          ])
      (Store.docs store)
  in
  let ensure_defined name ty =
    match Storage.extent_type t.stor name with
    | Some _ -> Ok ()
    | None -> Storage.define t.stor ~name ty
  in
  let* () = ensure_defined "ImageLibrary" library_schema in
  let* () = ensure_defined "ImageLibraryInternal" internal_schema in
  let* _ = Storage.load t.stor ~name:"ImageLibrary" raw_rows in
  let* oids = Storage.load t.stor ~name:"ImageLibraryInternal" internal_rows in
  Hashtbl.reset t.url_of;
  Hashtbl.reset t.doc_of;
  Hashtbl.reset t.visual;
  List.iteri
    (fun i doc ->
      let oid = List.nth oids i in
      let url = Option.value ~default:"" (Store.url_of store doc) in
      Hashtbl.replace t.url_of oid url;
      Hashtbl.replace t.doc_of url oid;
      Hashtbl.replace t.visual url (Store.visual_words store ~doc))
    (Store.docs store);
  t.thesaurus <- Store.thesaurus store;
  Ok report

let url_of_doc t oid = Hashtbl.find_opt t.url_of oid
let library_size t = Hashtbl.length t.url_of
let visual_bag t url = Option.value ~default:[] (Hashtbl.find_opt t.visual url)

(* {1 Retrieval} *)

type mode = Text_only | Image_only | Dual

let thesaurus_lookup t ?(limit = 10) text =
  match t.thesaurus with
  | None -> []
  | Some th ->
    let terms = Tokenize.terms text in
    if terms = [] then []
    else
      Concepts.associate th ~limit (Querynet.flat terms)
      |> Adapt.adjust t.adapt ~terms

(* The §3/§5.2 ranking query, with source bookkeeping and a LIST
   result:
     take(tolist_desc(
       map[tuple<source: THIS.source, score: sum(getBL(THIS.<field>, q))>](
         ImageLibraryInternal), "score"), limit) *)
let rank_by_terms t ?(limit = 10) ~field terms =
  let body =
    Expr.Tuple
      [
        ("source", Expr.Field (Expr.Var "x", "source"));
        ("score", Expr.sum (Expr.getbl (Expr.Field (Expr.Var "x", field)) (Expr.lit_str_set terms)));
      ]
  in
  let scored = Expr.Map { v = "x"; body; src = Expr.Extent "ImageLibraryInternal" } in
  let listed =
    Expr.ExtOp
      {
        op = "take";
        args =
          [
            Expr.ExtOp { op = "tolist_desc"; args = [ scored; Expr.lit_str "score" ] };
            Expr.lit_int limit;
          ];
      }
  in
  let* v = run_expr t listed in
  match v with
  | Value.Xv { ext = "LIST"; items; _ } ->
    Ok
      (List.map
         (fun item ->
           let url = Atom.as_string (Value.as_atom (Value.field_exn item "source")) in
           let score = Atom.as_float (Value.as_atom (Value.field_exn item "score")) in
           (url, score))
         items)
  | other -> Error ("unexpected ranking result " ^ Value.to_string other)

let combine_rankings a b =
  let scores = Hashtbl.create 32 in
  let add weight ranking =
    List.iter
      (fun (url, s) ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt scores url) in
        Hashtbl.replace scores url (prev +. (weight *. s)))
      ranking
  in
  add 0.5 a;
  add 0.5 b;
  Hashtbl.fold (fun url s acc -> (url, s) :: acc) scores []
  |> List.sort (fun (u1, s1) (u2, s2) ->
         let c = Float.compare s2 s1 in
         if c <> 0 then c else String.compare u1 u2)

let search t ?(limit = 10) ?(mode = Dual) text =
  let text_terms = Tokenize.terms text in
  let concept_terms =
    List.map fst (List.filteri (fun i _ -> i < 4) (thesaurus_lookup t text))
  in
  (* Rank over the full library so dual combination sees both scores;
     truncate at the end. *)
  let full = library_size t in
  let rank field terms =
    if terms = [] then Ok [] else rank_by_terms t ~limit:(max full 1) ~field terms
  in
  let* ranking =
    match mode with
    | Text_only -> rank "annotation" text_terms
    | Image_only -> rank "image" concept_terms
    | Dual ->
      let* by_text = rank "annotation" text_terms in
      let* by_image = rank "image" concept_terms in
      Ok (combine_rankings by_text by_image)
  in
  Ok (List.filteri (fun i _ -> i < limit) ranking)

let search_refined t ?(limit = 10) ~query ~judgements () =
  let text_terms = Tokenize.terms query in
  let original =
    List.map (fun (c, w) -> (c, w)) (List.filteri (fun i _ -> i < 4) (thesaurus_lookup t query))
  in
  let bags flag =
    List.filter_map
      (fun (url, relevant) -> if relevant = flag then Some (visual_bag t url) else None)
      judgements
  in
  let refined =
    Feedback.rocchio ~original ~relevant:(bags true) ~irrelevant:(bags false) ()
  in
  let concept_terms = List.map fst refined in
  let full = max (library_size t) 1 in
  let* by_image =
    if concept_terms = [] then Ok []
    else rank_by_terms t ~limit:full ~field:"image" concept_terms
  in
  let* by_text =
    if text_terms = [] then Ok [] else rank_by_terms t ~limit:full ~field:"annotation" text_terms
  in
  Ok (List.filteri (fun i _ -> i < limit) (combine_rankings by_text by_image))

let give_feedback t ~query ~judgements =
  let terms = Tokenize.terms query in
  let formulated = List.map fst (thesaurus_lookup t query) in
  List.iter
    (fun (url, relevant) ->
      let doc_concepts = List.map fst (visual_bag t url) in
      let responsible = List.filter (fun c -> List.mem c doc_concepts) formulated in
      if responsible <> [] then
        Adapt.reinforce t.adapt ~terms ~concepts:responsible ~good:relevant)
    judgements;
  match t.on_feedback with None -> () | Some f -> f ~query ~judgements

let replay_feedback t ~query ~judgements =
  let saved = t.on_feedback in
  t.on_feedback <- None;
  Fun.protect
    ~finally:(fun () -> t.on_feedback <- saved)
    (fun () -> give_feedback t ~query ~judgements)
