module Mil = Mirror_bat.Mil
module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom
module Column = Mirror_bat.Column
module Space = Mirror_ir.Space
module Vocab = Mirror_ir.Vocab
module Belief = Mirror_ir.Belief

let fail fmt = Printf.ksprintf (fun s -> raise (Flatten.Unsupported s)) fmt

module E = struct
  let name = "CONTREP"
  let arity = 1

  let check_type = function
    | [ Types.Atomic _ ] -> Ok ()
    | _ -> Error "CONTREP takes one atomic media-domain parameter"

  let ops = [ "getBL"; "getBLnet"; "terms"; "tf"; "clen" ]

  let op_type ~op ~args =
    match (op, args) with
    | "getBL", [ Types.Xt ("CONTREP", _); Types.Set (Types.Atomic Atom.TStr) ] ->
      Ok (Types.Set (Types.Atomic Atom.TFlt))
    | "getBL", _ -> Error "getBL expects (CONTREP<_>, SET<Atomic<str>>)"
    | "getBLnet", [ Types.Xt ("CONTREP", _); Types.Atomic Atom.TStr ] ->
      Ok (Types.Atomic Atom.TFlt)
    | "getBLnet", _ -> Error "getBLnet expects (CONTREP<_>, query-net string)"
    | "terms", [ Types.Xt ("CONTREP", _) ] -> Ok (Types.Set (Types.Atomic Atom.TStr))
    | "terms", _ -> Error "terms expects a CONTREP<_>"
    | "tf", [ Types.Xt ("CONTREP", _); Types.Atomic Atom.TStr ] ->
      Ok (Types.Atomic Atom.TFlt)
    | "tf", _ -> Error "tf expects (CONTREP<_>, term string)"
    | "clen", [ Types.Xt ("CONTREP", _) ] -> Ok (Types.Atomic Atom.TFlt)
    | "clen", _ -> Error "clen expects a CONTREP<_>"
    | _, _ -> Error ("CONTREP: unknown operator " ^ op)

  let op_eval env ~op ~args =
    match (op, args) with
    | "getBL", [ self; query ] ->
      let bag = Value.contrep_bag self in
      let space_name =
        match Value.contrep_space self with
        | Some s -> s
        | None -> failwith "getBL: CONTREP value is not bound to a statistics space"
      in
      let space =
        match env.Extension.space space_name with
        | Some sp -> sp
        | None -> failwith (Printf.sprintf "getBL: unknown statistics space %S" space_name)
      in
      let doclen = List.fold_left (fun acc (_, tf) -> acc +. tf) 0.0 bag in
      let beliefs =
        List.map
          (fun qv ->
            let term = Atom.as_string (Value.as_atom qv) in
            let b =
              match Vocab.find (Space.vocab space) term with
              | None -> Belief.default_belief
              | Some id ->
                let tf = Option.value ~default:0.0 (List.assoc_opt term bag) in
                Belief.belief ~tf ~df:(Space.df space id) ~ndocs:(Space.ndocs space) ~doclen
                  ~avg_doclen:(Space.avg_doc_len space)
            in
            Value.flt b)
          (Value.as_set query)
      in
      Value.VSet beliefs
    | "getBLnet", [ self; Value.Atom (Atom.Str net_src) ] -> (
      match Mirror_ir.Querynet.of_string net_src with
      | Error e -> failwith ("getBLnet: " ^ e)
      | Ok net ->
        let bag = Value.contrep_bag self in
        let space_name =
          match Value.contrep_space self with
          | Some s -> s
          | None -> failwith "getBLnet: CONTREP value is not bound to a statistics space"
        in
        let space =
          match env.Extension.space space_name with
          | Some sp -> sp
          | None -> failwith (Printf.sprintf "getBLnet: unknown statistics space %S" space_name)
        in
        let doclen = List.fold_left (fun acc (_, tf) -> acc +. tf) 0.0 bag in
        let oracle term =
          match Vocab.find (Space.vocab space) term with
          | None -> Belief.default_belief
          | Some id ->
            let tf = Option.value ~default:0.0 (List.assoc_opt term bag) in
            Belief.belief ~tf ~df:(Space.df space id) ~ndocs:(Space.ndocs space) ~doclen
              ~avg_doclen:(Space.avg_doc_len space)
        in
        Value.flt (Mirror_ir.Querynet.eval oracle net))
    | "terms", [ self ] ->
      Value.VSet (List.map (fun (term, _) -> Value.str term) (Value.contrep_bag self))
    | "tf", [ self; Value.Atom (Atom.Str term) ] ->
      Value.flt (Option.value ~default:0.0 (List.assoc_opt term (Value.contrep_bag self)))
    | "clen", [ self ] ->
      Value.flt (List.fold_left (fun acc (_, tf) -> acc +. tf) 0.0 (Value.contrep_bag self))
    | _, _ -> failwith ("CONTREP: bad operands for " ^ op)

  let bundle ~meta ~bats = Shape.Xstruct { ext = name; meta; bats; subs = [] }

  let op_flatten env ~op ~arg_tys:_ ~raw ~args =
    match (op, args) with
    | ( "getBL",
        [
          Shape.Xstruct { ext = "CONTREP"; meta; bats = [ ctx; term; tf; len ]; _ };
          Shape.Set { link = qlink; elem = Shape.Atomic qval };
        ] ) ->
      let pairs =
        Mil.Foreign
          {
            name = "contrep_getbl";
            args = [ ctx; term; tf; len; env.Extension.dom; qlink; qval ];
            meta;
          }
      in
      let base = env.Extension.fresh 0 in
      Shape.Set
        {
          link = Mil.NumberHead (pairs, base);
          elem = Shape.Atomic (Mil.NumberTail (pairs, base));
        }
    | "getBL", _ -> fail "getBL: malformed flattened operands"
    | ( "getBLnet",
        [ Shape.Xstruct { ext = "CONTREP"; meta; bats = [ ctx; term; tf; len ]; _ }; _ ] ) -> (
      match raw with
      | [ _; Expr.Lit (Value.Atom (Atom.Str net_src), _) ] -> (
        match Mirror_ir.Querynet.of_string net_src with
        | Error e -> fail "getBLnet: %s" e
        | Ok _ ->
          Shape.Atomic
            (Mil.Foreign
               {
                 name = "contrep_getblnet";
                 args = [ ctx; term; tf; len; env.Extension.dom ];
                 meta = meta @ [ net_src ];
               }))
      | _ -> fail "getBLnet: the query net must be a string literal")
    | "getBLnet", _ -> fail "getBLnet: malformed flattened operands"
    | "terms", [ Shape.Xstruct { ext = "CONTREP"; bats = [ ctx; term; _tf; _len ]; _ } ] ->
      Shape.Set { link = ctx; elem = Shape.Atomic term }
    | "terms", _ -> fail "terms: malformed flattened operands"
    | "clen", [ Shape.Xstruct { ext = "CONTREP"; bats = [ _ctx; _term; _tf; len ]; _ } ] ->
      Shape.Atomic (Mil.LeftOuterJoin (env.Extension.dom, len, Atom.Flt 0.0))
    | "clen", _ -> fail "clen: malformed flattened operands"
    | "tf", [ Shape.Xstruct { ext = "CONTREP"; bats = [ ctx; term; tf; _len ]; _ }; _ ] -> (
      (* The term must be a literal so selection happens on the occurrence
         column (generic-operator path; compare with the dedicated
         contrep_getbl physical operator). *)
      match raw with
      | [ _; Expr.Lit (Value.Atom (Atom.Str t), _) ] ->
        let hits = Mil.SelectCmp (term, Bat.Eq, Atom.Str t) in
        let tfs = Mil.Semijoin (tf, hits) in
        let per_ctx = Mil.Join (Mil.Reverse (Mil.Semijoin (ctx, hits)), tfs) in
        let summed = Mil.GroupAggr (Bat.Sum, per_ctx) in
        Shape.Atomic (Mil.LeftOuterJoin (env.Extension.dom, summed, Atom.Flt 0.0))
      | _ -> fail "tf: term must be a string literal")
    | "tf", _ -> fail "tf: malformed flattened operands"
    | _, _ -> fail "CONTREP: bad operands for %s" op

  let materialize env ~recurse:_ ~path ~ty_args:_ ~dom =
    let space = env.Extension.space_create path in
    let total =
      List.fold_left (fun acc (_, v) -> acc + List.length (Value.contrep_bag v)) 0 dom
    in
    let base = env.Extension.fresh_store total in
    let next = ref base in
    let hb = Column.Builder.create Atom.TOid in
    let cb = Column.Builder.create Atom.TOid in
    let tb = Column.Builder.create Atom.TStr in
    let fb = Column.Builder.create Atom.TFlt in
    let lh = Column.Builder.create Atom.TOid in
    let lt = Column.Builder.create Atom.TFlt in
    List.iter
      (fun (ctx, v) ->
        let bag = Value.contrep_bag v in
        ignore (Space.add_doc space ~doc:ctx bag);
        List.iter
          (fun (term, tf) ->
            Column.Builder.add_oid hb !next;
            incr next;
            Column.Builder.add_oid cb ctx;
            Column.Builder.add tb (Atom.Str term);
            Column.Builder.add_float fb tf)
          bag;
        Column.Builder.add_oid lh ctx;
        Column.Builder.add_float lt (Space.doc_len space ctx))
      dom;
    let heads = Column.Builder.finish hb in
    (* Build the inverted index the physical getBL fast path uses and
       key it to this head column's physical identity. *)
    let postings : (string, (int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (ctx, v) ->
        List.iter
          (fun (term, tf) ->
            let per_ctx =
              match Hashtbl.find_opt postings term with
              | Some h -> h
              | None ->
                let h = Hashtbl.create 8 in
                Hashtbl.add postings term h;
                h
            in
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_ctx ctx) in
            Hashtbl.replace per_ctx ctx (prev +. tf))
          (Value.contrep_bag v))
      dom;
    Space.set_index space ~heads:(Column.oid_exn heads) ~postings;
    let cat = env.Extension.catalog in
    Mirror_bat.Catalog.put cat (path ^ "#ctx") (Bat.make heads (Column.Builder.finish cb));
    Mirror_bat.Catalog.put cat (path ^ "#term") (Bat.make heads (Column.Builder.finish tb));
    Mirror_bat.Catalog.put cat (path ^ "#tf") (Bat.make heads (Column.Builder.finish fb));
    Mirror_bat.Catalog.put cat (path ^ "#len")
      (Bat.make (Column.Builder.finish lh) (Column.Builder.finish lt));
    bundle ~meta:[ path ]
      ~bats:
        [
          Mil.Get (path ^ "#ctx");
          Mil.Get (path ^ "#term");
          Mil.Get (path ^ "#tf");
          Mil.Get (path ^ "#len");
        ]

  (* Candidate-list style filtering (after Monet): every CONTREP
     consumer — getBL, tf, clen, and the link re-alignments of
     terms — only ever consults occurrences of contexts in the current
     domain, and context filtering shrinks the domain, never the
     per-context content.  Keeping the occurrence BATs physically
     untouched therefore preserves semantics AND keeps the inverted-
     index fast path of the physical operator applicable to filtered
     collections. *)
  let filter_flat ~recurse:_ ~meta ~bats ~subs:_ ~survivors:_ =
    match bats with
    | [ _; _; _; _ ] -> bundle ~meta ~bats
    | _ -> invalid_arg "CONTREP.filter_flat: malformed bundle"

  let rebase_flat env ~recurse:_ ~meta ~bats ~subs:_ ~m =
    match bats with
    | [ ctx; term; tf; len ] ->
      let j = Mil.Join (m, Mil.Reverse ctx) in
      let base = env.Extension.fresh 0 in
      let ctx' = Mil.NumberHead (j, base) in
      let m2 = Mil.NumberTail (j, base) in
      bundle ~meta ~bats:[ ctx'; Mil.Join (m2, term); Mil.Join (m2, tf); Mil.Join (m, len) ]
    | _ -> invalid_arg "CONTREP.rebase_flat: malformed bundle"

  let reify ~lookup ~recurse:_ ~meta ~bats ~subs:_ ~ctx =
    match bats with
    | [ ctx_p; term_p; tf_p; _len_p ] ->
      let ctx_bat = lookup ctx_p and term_bat = lookup term_p and tf_bat = lookup tf_p in
      let term_of = Hashtbl.create (Bat.count term_bat) in
      Bat.iter (fun o t -> Hashtbl.replace term_of (Atom.as_oid o) (Atom.as_string t)) term_bat;
      let tf_of = Hashtbl.create (Bat.count tf_bat) in
      Bat.iter (fun o f -> Hashtbl.replace tf_of (Atom.as_oid o) (Atom.as_float f)) tf_bat;
      let bag = ref [] in
      Bat.iter
        (fun o c ->
          if Atom.as_oid c = ctx then
            match
              (Hashtbl.find_opt term_of (Atom.as_oid o), Hashtbl.find_opt tf_of (Atom.as_oid o))
            with
            | Some term, Some tf -> bag := (term, tf) :: !bag
            | _ -> ())
        ctx_bat;
      Value.contrep ?space:(match meta with s :: _ -> Some s | [] -> None) (List.rev !bag)
    | _ -> invalid_arg "CONTREP.reify: malformed bundle"

  let restore env ~recurse:_ ~path ~ty_args:_ =
    let cat = env.Extension.catalog in
    let get suffix =
      match Mirror_bat.Catalog.find cat (path ^ suffix) with
      | Some b -> b
      | None -> failwith (Printf.sprintf "CONTREP.restore: missing catalog entry %s%s" path suffix)
    in
    let occ_ctx = get "#ctx" and occ_term = get "#term" and occ_tf = get "#tf" in
    ignore (get "#len");
    (* Rebuild the statistics space by replaying the documents in
       context order (first appearance), then the inverted index keyed
       to the loaded head column. *)
    let space = env.Extension.space_create path in
    let order = ref [] in
    let bags : (int, (string * float) list) Hashtbl.t = Hashtbl.create 64 in
    let n = Bat.count occ_ctx in
    for i = 0 to n - 1 do
      let ctx = Atom.as_oid (Bat.tail_at occ_ctx i) in
      let term = Atom.as_string (Bat.tail_at occ_term i) in
      let tf = Atom.as_float (Bat.tail_at occ_tf i) in
      (match Hashtbl.find_opt bags ctx with
      | Some bag -> Hashtbl.replace bags ctx ((term, tf) :: bag)
      | None ->
        Hashtbl.add bags ctx [ (term, tf) ];
        order := ctx :: !order)
    done;
    (* contexts with an empty representation appear only in #len *)
    let len_bat = get "#len" in
    Bat.iter
      (fun ctx _ ->
        let c = Atom.as_oid ctx in
        if not (Hashtbl.mem bags c) then begin
          Hashtbl.add bags c [];
          order := c :: !order
        end)
      len_bat;
    let postings : (string, (int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun ctx ->
        let bag = List.rev (Hashtbl.find bags ctx) in
        ignore (Space.add_doc space ~doc:ctx bag);
        List.iter
          (fun (term, tf) ->
            let per_ctx =
              match Hashtbl.find_opt postings term with
              | Some h -> h
              | None ->
                let h = Hashtbl.create 8 in
                Hashtbl.add postings term h;
                h
            in
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_ctx ctx) in
            Hashtbl.replace per_ctx ctx (prev +. tf))
          bag)
      (List.rev !order);
    Space.set_index space ~heads:(Column.oid_exn (Bat.head occ_ctx)) ~postings;
    bundle ~meta:[ path ]
      ~bats:
        [
          Mil.Get (path ^ "#ctx");
          Mil.Get (path ^ "#term");
          Mil.Get (path ^ "#tf");
          Mil.Get (path ^ "#len");
        ]

  (* Metrics wrapper shared by both belief operators: count calls and
     produced rows, and record wall-time per call as a histogram.  The
     clock is only read when the registry is enabled. *)
  let metered name f =
    if not (Mirror_util.Metrics.enabled ()) then f ()
    else begin
      let t0 = Mirror_util.Trace.now () in
      let b = f () in
      Mirror_util.Metrics.incr (name ^ ".calls");
      Mirror_util.Metrics.incr ~by:(Bat.count b) (name ^ ".rows");
      Mirror_util.Metrics.observe (name ^ ".ms")
        (1000.0 *. (Mirror_util.Trace.now () -. t0));
      b
    end

  let getbl_foreign env ~args ~meta =
    match (args, meta) with
    | [ occ_ctx; occ_term; occ_tf; len; dom; qlink; qval ], space_name :: _ -> (
      match env.Extension.space space_name with
      | Some space ->
        metered "contrep.getbl" (fun () ->
            Mirror_ir.Search.getbl_pairs ~space ~occ_ctx ~occ_term ~occ_tf ~len ~dom
              ~qlink ~qval)
      | None -> failwith (Printf.sprintf "contrep_getbl: unknown space %S" space_name))
    | _ -> failwith "contrep_getbl: malformed physical operands"

  let getblnet_foreign env ~args ~meta =
    match (args, meta) with
    | [ occ_ctx; occ_term; occ_tf; len; dom ], [ space_name; net_src ] -> (
      match (env.Extension.space space_name, Mirror_ir.Querynet.of_string net_src) with
      | Some space, Ok net ->
        metered "contrep.getblnet" (fun () ->
            Mirror_ir.Search.getblnet_pairs ~space ~net ~occ_ctx ~occ_term ~occ_tf ~len
              ~dom)
      | None, _ -> failwith (Printf.sprintf "contrep_getblnet: unknown space %S" space_name)
      | _, Error e -> failwith ("contrep_getblnet: " ^ e))
    | _ -> failwith "contrep_getblnet: malformed physical operands"

  let foreign_ops =
    [ ("contrep_getbl", getbl_foreign); ("contrep_getblnet", getblnet_foreign) ]

  (* Both operators yield (ctx oid, belief) rows.  getbl emits one row
     per context × query term, so heads repeat; getblnet folds the
     whole query into one belief per context, so heads are keys. *)
  let foreign_sigs =
    let belief_result ~head_key =
      {
        Mirror_bat.Milprop.unknown with
        Mirror_bat.Milprop.hty = Some Atom.TOid;
        tty = Some Atom.TFlt;
        head_key;
      }
    in
    [
      ( "contrep_getbl",
        {
          Mirror_bat.Milprop.fs_arity = 7;
          fs_meta_min = 1;
          fs_result = belief_result ~head_key:false;
        } );
      ( "contrep_getblnet",
        {
          Mirror_bat.Milprop.fs_arity = 5;
          fs_meta_min = 2;
          fs_result = belief_result ~head_key:true;
        } );
    ]

  (* Both operators build fresh (ctx, belief) columns from the space's
     statistics; they never alias or touch their argument columns. *)
  let foreign_effects =
    [
      ("contrep_getbl", Mirror_bat.Effcheck.pure_foreign);
      ("contrep_getblnet", Mirror_bat.Effcheck.pure_foreign);
    ]

  (* Cost rules for the same operators, all rows fixed-width
     (oid, flt).  getbl emits at most one row per context × query
     term; getblnet folds the query into at most one belief per
     context. *)
  let foreign_bounds =
    let module B = Mirror_bat.Boundcheck in
    let module MP = Mirror_bat.Milprop in
    let smul a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b in
    [
      ( "contrep_getbl",
        fun args ->
          match args with
          | [ _occ_ctx; _occ_term; _occ_tf; _len; dom; _qlink; qval ] ->
            B.cost_rows ~est:(smul dom.B.est qval.B.est)
              (MP.card_mul dom.B.rows qval.B.rows)
          | _ -> B.cost_rows MP.any_card );
      ( "contrep_getblnet",
        fun args ->
          match args with
          | [ _occ_ctx; _occ_term; _occ_tf; _len; dom ] ->
            B.cost_rows ~est:dom.B.est { MP.lo = 0; hi = dom.B.rows.MP.hi }
          | _ -> B.cost_rows MP.any_card );
    ]

  (* Bounds on the per-occurrence tf values, when the receiver's
     element envelope states them. *)
  let tf_bounds = function
    | Moaprop.Xprop { elem = Moaprop.Tuple fields; _ } -> (
      match List.assoc_opt "tf" fields with
      | Some (Moaprop.Atomic { lo; hi; _ }) -> (lo, hi)
      | _ -> (None, None))
    | _ -> (None, None)

  let self_card self =
    match Moaprop.card_of self with Some c -> c | None -> Mirror_bat.Milprop.any_card

  let op_envelope ~op ~args ~ty ~top =
    match (op, args) with
    | "getBL", _ :: query :: _ ->
      (* One belief per query term; beliefs are default_belief plus a
         non-negative evidence part bounded by belief_weight. *)
      Moaprop.Set
        {
          card = self_card query;
          elem = Moaprop.atomic_range Atom.TFlt (Some Belief.default_belief) (Some 1.0);
        }
    | "getBLnet", _ -> Moaprop.atomic_range Atom.TFlt (Some 0.0) (Some 1.0)
    | "terms", [ self ] ->
      Moaprop.Set { card = self_card self; elem = Moaprop.atomic Atom.TStr }
    | "tf", self :: _ ->
      (* Either 0 (term absent) or one of the stored tf values. *)
      let tlo, thi = tf_bounds self in
      Moaprop.atomic_range Atom.TFlt
        (Option.map (Float.min 0.0) tlo)
        (Option.map (Float.max 0.0) thi)
    | "clen", [ self ] ->
      let tlo, thi = tf_bounds self in
      let lo, hi = Moaprop.sum_range (self_card self) tlo thi in
      Moaprop.atomic_range Atom.TFlt lo hi
    | _ -> top ty

  (* Candidate-list filtering (see filter_flat) keeps the occurrence
     BATs physically untouched under context filtering, so only their
     column types can be promised — never cardinalities. *)
  let prop_flat ~ctx:_ ~prop:_ ~meta:_ ~nbats ~nsubs =
    let bt t =
      Some
        {
          Mirror_bat.Milprop.unknown with
          Mirror_bat.Milprop.hty = Some Atom.TOid;
          tty = Some t;
        }
    in
    match (nbats, nsubs) with
    | 4, 0 -> ([ bt Atom.TOid; bt Atom.TStr; bt Atom.TFlt; bt Atom.TFlt ], [])
    | _ ->
      ( List.init nbats (fun _ -> None),
        List.init nsubs (fun _ -> (Moaprop.Unknown, Mirror_bat.Milprop.any_card)) )

  let bind_value ~path ~recurse:_ ~ty_args:_ v =
    match v with
    | Value.Xv { ext = "CONTREP"; items; _ } ->
      Value.Xv { ext = "CONTREP"; meta = [ path ]; items }
    | _ -> v
end

let register () = Extension.register (module E : Extension.S)
