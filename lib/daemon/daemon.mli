(** The daemon abstraction.

    "The notion of a 'daemon' abstracts from the various techniques for
    meta data extraction and query formulation."  A daemon is a named
    message handler: it subscribes to topics and reacts to messages by
    reading/writing the metadata store and emitting follow-up
    messages.  Daemons hold no references to each other. *)

type ctx = {
  bus : Bus.t;
  media : Media.t;
  dict : Dictionary.t;
  store : Store.t;
}
(** Everything a daemon may touch. *)

type t = {
  name : string;
  topics : string list;  (** Subscriptions. *)
  publishes : string list;
      (** Topics this daemon's handler may emit — a static declaration
          used only by {!Daemonlint}'s topic-graph analysis; ["*"]
          declares a dynamic (client-chosen) topic. *)
  handle : ctx -> Bus.message -> Bus.message list;
      (** React to one message; returned messages are published by the
          orchestrator.  May raise — the orchestrator retries and
          eventually dead-letters. *)
}

val make :
  name:string ->
  topics:string list ->
  ?publishes:string list ->
  (ctx -> Bus.message -> Bus.message list) ->
  t
(** Build a daemon.  [publishes] defaults to none declared. *)
