module Clock = Mirror_util.Clock
module Metrics = Mirror_util.Metrics
module Prng = Mirror_util.Prng

type state = Closed | Open of float | Half_open

type config = {
  failure_threshold : int;
  base_backoff : float;
  max_backoff : float;
  jitter : float;
}

let default_config =
  { failure_threshold = 3; base_backoff = 4.0; max_backoff = 60.0; jitter = 0.2 }

type breaker = {
  mutable st : state;
  mutable consecutive : int;  (* failures since the last success *)
  mutable trips : int;  (* opens since the last close *)
}

type t = {
  config : config;
  clock : Clock.t;
  g : Prng.t;
  breakers : (string, breaker) Hashtbl.t;
  mutable listener : (string -> state -> unit) option;
}

let create ?(config = default_config) ~clock ~seed () =
  if config.failure_threshold < 1 then
    invalid_arg "Supervisor.create: failure_threshold must be positive";
  {
    config;
    clock;
    g = Prng.create seed;
    breakers = Hashtbl.create 16;
    listener = None;
  }

let set_listener t l = t.listener <- l

let breaker_of t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
    let b = { st = Closed; consecutive = 0; trips = 0 } in
    Hashtbl.add t.breakers name b;
    b

let metric_suffix = function
  | Closed -> "closed"
  | Open _ -> "opened"
  | Half_open -> "half_open"

let transition t name b st =
  b.st <- st;
  if Metrics.enabled () then Metrics.incr ("breaker." ^ name ^ "." ^ metric_suffix st);
  match t.listener with Some f -> f name st | None -> ()

(* Deterministic jittered exponential backoff for the n-th trip. *)
let backoff t b =
  let raw = t.config.base_backoff *. (2.0 ** float_of_int (max 0 (b.trips - 1))) in
  let capped = Float.min raw t.config.max_backoff in
  let u = Prng.float t.g 2.0 -. 1.0 in
  Float.max 0.0 (capped *. (1.0 +. (t.config.jitter *. u)))

let trip t name b =
  b.trips <- b.trips + 1;
  transition t name b (Open (Clock.now t.clock +. backoff t b))

let state t name =
  let b = breaker_of t name in
  (match b.st with
  | Open until when Clock.now t.clock >= until -> transition t name b Half_open
  | _ -> ());
  b.st

let allow t name = match state t name with Closed | Half_open -> true | Open _ -> false

let success t name =
  let b = breaker_of t name in
  b.consecutive <- 0;
  b.trips <- 0;
  match b.st with Closed -> () | Open _ | Half_open -> transition t name b Closed

let failure t name =
  let b = breaker_of t name in
  b.consecutive <- b.consecutive + 1;
  match state t name with
  | Half_open -> trip t name b
  | Closed when b.consecutive >= t.config.failure_threshold -> trip t name b
  | Closed | Open _ -> ()

let reset t name =
  let b = breaker_of t name in
  b.consecutive <- 0;
  b.trips <- 0;
  match b.st with Closed -> () | Open _ | Half_open -> transition t name b Closed

let failures t name = (breaker_of t name).consecutive

let waiting_until t name =
  match state t name with Open until -> Some until | Closed | Half_open -> None

let health t =
  Hashtbl.fold (fun name b acc -> (name, b.st, b.consecutive) :: acc) t.breakers []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let state_to_string = function
  | Closed -> "closed"
  | Open until -> Printf.sprintf "open(until=%.1f)" until
  | Half_open -> "half-open"
