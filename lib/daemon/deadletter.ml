type cause = Failed of string | Expired of string | Overflow

let cause_to_string = function
  | Failed e -> "failed: " ^ e
  | Expired st -> "expired while target " ^ st
  | Overflow -> "shed by full queue"

type entry = {
  daemon : string;
  delivery : Bus.delivery;
  cause : cause;
  at : float;
}

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }
let add t e = t.entries <- e :: t.entries
let entries t = List.rev t.entries
let count t = List.length t.entries
let for_daemon t name = List.rev (List.filter (fun e -> String.equal e.daemon name) t.entries)

let exists_topic t topic =
  List.exists (fun e -> String.equal e.delivery.Bus.message.Bus.topic topic) t.entries

let take ?daemon t =
  match daemon with
  | None ->
    let all = List.rev t.entries in
    t.entries <- [];
    all
  | Some name ->
    let mine, rest = List.partition (fun e -> String.equal e.daemon name) t.entries in
    t.entries <- rest;
    List.rev mine
