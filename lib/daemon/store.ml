type t = {
  urls : (int, string) Hashtbl.t;
  mutable docs_rev : int list;
  segs : (int, Mirror_mm.Segment.region list) Hashtbl.t;
  feats : (int * string, float array array) Hashtbl.t;
  spaces : (string, unit) Hashtbl.t;
  models : (string, Mirror_mm.Autoclass.model) Hashtbl.t;
  texts : (int, (string * float) list) Hashtbl.t;
  visual : (int, (string, float) Hashtbl.t) Hashtbl.t;
  mutable thesaurus : Mirror_thesaurus.Concepts.t option;
  mutable journal : (string -> string -> unit) option;
}

let create () =
  {
    urls = Hashtbl.create 64;
    docs_rev = [];
    segs = Hashtbl.create 64;
    feats = Hashtbl.create 256;
    spaces = Hashtbl.create 8;
    models = Hashtbl.create 8;
    texts = Hashtbl.create 64;
    visual = Hashtbl.create 64;
    thesaurus = None;
    journal = None;
  }

let set_journal t j = t.journal <- j
let log t tag payload = match t.journal with None -> () | Some f -> f tag payload

(* Journal payload codecs.  Strings go through %S (OCaml literal
   escapes) and term weights through %h (hex floats), both of which
   round-trip exactly via Scanf. *)

let encode_bag doc bag =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int doc);
  List.iter (fun (w, tf) -> Buffer.add_string buf (Printf.sprintf " %S %h" w tf)) bag;
  Buffer.contents buf

let decode_bag payload =
  try
    let ib = Scanf.Scanning.from_string payload in
    let doc = Scanf.bscanf ib " %d" Fun.id in
    let rec pairs acc =
      if Scanf.Scanning.end_of_input ib then List.rev acc
      else pairs (Scanf.bscanf ib " %S %h" (fun w tf -> (w, tf)) :: acc)
    in
    Ok (doc, pairs [])
  with
  | Scanf.Scan_failure m | Failure m -> Error m
  | End_of_file -> Error "truncated store record"

let register_doc t ~doc ~url =
  if not (Hashtbl.mem t.urls doc) then begin
    Hashtbl.add t.urls doc url;
    t.docs_rev <- doc :: t.docs_rev;
    log t "doc" (Printf.sprintf "%d %S" doc url)
  end

let url_of t doc = Hashtbl.find_opt t.urls doc
let docs t = List.rev t.docs_rev

let put_segments t ~doc segs = Hashtbl.replace t.segs doc segs
let segments t ~doc = Hashtbl.find_opt t.segs doc

let put_features t ~doc ~space vectors =
  Hashtbl.replace t.feats (doc, space) vectors;
  Hashtbl.replace t.spaces space ()

let features t ~doc ~space = Hashtbl.find_opt t.feats (doc, space)

let all_features t ~space =
  List.filter_map
    (fun doc -> Option.map (fun v -> (doc, v)) (features t ~doc ~space))
    (docs t)

let feature_spaces t =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.spaces [])

let put_model t ~space m = Hashtbl.replace t.models space m
let model t ~space = Hashtbl.find_opt t.models space

let clustered_spaces t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.models [])

let put_text t ~doc bag =
  Hashtbl.replace t.texts doc bag;
  log t "text" (encode_bag doc bag)

let text t ~doc = Hashtbl.find_opt t.texts doc

let add_visual_words t ~doc words =
  let bag =
    match Hashtbl.find_opt t.visual doc with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 16 in
      Hashtbl.add t.visual doc b;
      b
  in
  List.iter
    (fun (w, tf) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt bag w) in
      Hashtbl.replace bag w (prev +. tf))
    words;
  log t "visual" (encode_bag doc words)

let visual_words t ~doc =
  match Hashtbl.find_opt t.visual doc with
  | None -> []
  | Some bag ->
    Hashtbl.fold (fun w tf acc -> (w, tf) :: acc) bag []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let put_thesaurus t th = t.thesaurus <- Some th
let thesaurus t = t.thesaurus

let evidence t =
  List.map
    (fun doc ->
      {
        Mirror_thesaurus.Assoc.doc;
        text = Option.value ~default:[] (text t ~doc);
        visual = visual_words t ~doc;
      })
    (docs t)

let replay t tag payload =
  let saved = t.journal in
  t.journal <- None;
  Fun.protect
    ~finally:(fun () -> t.journal <- saved)
    (fun () ->
      match tag with
      | "doc" -> (
        try Scanf.sscanf payload " %d %S" (fun doc url -> register_doc t ~doc ~url) |> Result.ok
        with
        | Scanf.Scan_failure m | Failure m -> Error m
        | End_of_file -> Error "truncated store record")
      | "text" ->
        Result.map (fun (doc, bag) -> Hashtbl.replace t.texts doc bag) (decode_bag payload)
      | "visual" ->
        Result.map (fun (doc, bag) -> add_visual_words t ~doc bag) (decode_bag payload)
      | _ -> Error (Printf.sprintf "unknown store record tag %S" tag))
