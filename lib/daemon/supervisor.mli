(** Per-daemon health supervision: circuit breakers.

    An open architecture must keep working when a party is flaky,
    slow, or down.  The supervisor tracks one breaker per daemon:

    - [Closed] — healthy; deliveries flow.
    - [Open until] — the daemon failed repeatedly; deliveries are
      withheld until the (injectable) clock reaches [until].  The
      backoff grows exponentially with each consecutive trip, with
      deterministic jitter drawn from a seeded {!Mirror_util.Prng}.
    - [Half_open] — the backoff elapsed; the orchestrator probes with
      a single delivery.  Success closes the breaker (and resets the
      backoff); failure re-opens it with a doubled backoff.

    Time comes from a {!Mirror_util.Clock}, so tests drive breaker
    transitions by advancing a virtual clock — never by sleeping. *)

type state = Closed | Open of float  (** reopen deadline *) | Half_open

type config = {
  failure_threshold : int;
      (** Consecutive failures that trip a closed breaker. *)
  base_backoff : float;  (** Seconds of the first open window. *)
  max_backoff : float;  (** Backoff growth cap. *)
  jitter : float;
      (** Fractional jitter applied to each window (0 = none); drawn
          deterministically from the supervisor's seed. *)
}

val default_config : config
(** threshold 3, base 4s, cap 60s, jitter 0.2. *)

type t

val create : ?config:config -> clock:Mirror_util.Clock.t -> seed:int -> unit -> t

val set_listener : t -> (string -> state -> unit) option -> unit
(** Observe transitions (daemon name, new state) — the orchestrator
    forwards them to its trace.  When the {!Mirror_util.Metrics}
    registry is enabled, ["breaker.<name>.opened"/".half_open"/
    ".closed"] counters are bumped regardless of the listener. *)

val state : t -> string -> state
(** Current breaker state, performing the [Open] → [Half_open]
    transition first when the reopen deadline has passed. *)

val allow : t -> string -> bool
(** May a delivery be attempted now?  True in [Closed] and
    [Half_open] (the caller limits half-open probing to one
    delivery), false while [Open]. *)

val success : t -> string -> unit
(** Record a handled delivery: closes the breaker and resets the
    consecutive-failure count and backoff. *)

val failure : t -> string -> unit
(** Record a failed delivery: trips a closed breaker at the
    threshold; re-opens a half-open breaker with a doubled window. *)

val reset : t -> string -> unit
(** Force-close (operator heal signal, e.g. before redelivery). *)

val failures : t -> string -> int
(** Current consecutive-failure count. *)

val waiting_until : t -> string -> float option
(** The reopen deadline while [Open], else [None] — lets the
    orchestrator decide whether advancing time can still unblock
    work. *)

val health : t -> (string * state * int) list
(** (daemon, state, consecutive failures) for every daemon seen,
    sorted by name. *)

val state_to_string : state -> string
(** ["closed"], ["open(until=<t>)"], ["half-open"]. *)
