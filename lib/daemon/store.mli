(** The metadata staging area the daemons read and write.

    In the paper this is the Mirror DBMS's metadata database; during
    pipeline execution daemons exchange intermediate content
    representations (segments, feature vectors, cluster models, visual
    words, text bags) through this store, and the Mirror facade loads
    the finished CONTREP representations out of it afterwards. *)

type t

val create : unit -> t
(** Empty store. *)

(** {1 Documents} *)

val register_doc : t -> doc:int -> url:string -> unit
(** Announce a document (idempotent per doc). *)

val url_of : t -> int -> string option
(** URL of a registered document. *)

val docs : t -> int list
(** Registered documents in registration order. *)

(** {1 Segments} *)

val put_segments : t -> doc:int -> Mirror_mm.Segment.region list -> unit
val segments : t -> doc:int -> Mirror_mm.Segment.region list option

(** {1 Feature vectors (per document, per feature space)} *)

val put_features : t -> doc:int -> space:string -> float array array -> unit
(** One vector per segment of the document. *)

val features : t -> doc:int -> space:string -> float array array option

val all_features : t -> space:string -> (int * float array array) list
(** Per-document vectors for one space, in document order — the
    clusterer's input. *)

val feature_spaces : t -> string list
(** Spaces with at least one stored vector set, sorted. *)

(** {1 Cluster models} *)

val put_model : t -> space:string -> Mirror_mm.Autoclass.model -> unit
val model : t -> space:string -> Mirror_mm.Autoclass.model option
val clustered_spaces : t -> string list

(** {1 Content representations} *)

val put_text : t -> doc:int -> (string * float) list -> unit
(** The indexed annotation term bag. *)

val text : t -> doc:int -> (string * float) list option

val add_visual_words : t -> doc:int -> (string * float) list -> unit
(** Merge additional visual words into the document's image CONTREP
    bag (tf-additive). *)

val visual_words : t -> doc:int -> (string * float) list
(** Accumulated visual words (empty list when none). *)

(** {1 Thesaurus} *)

val put_thesaurus : t -> Mirror_thesaurus.Concepts.t -> unit
val thesaurus : t -> Mirror_thesaurus.Concepts.t option

val evidence : t -> Mirror_thesaurus.Assoc.evidence list
(** Per-document (text, visual) evidence for thesaurus construction,
    in document order. *)

(** {1 Durability journal}

    When a journal hook is installed, the CONTREP-relevant writes
    ({!register_doc}, {!put_text}, {!add_visual_words}) emit an opaque
    [(tag, payload)] record after applying, which the durability layer
    appends to its write-ahead log; {!replay} applies such a record
    back during crash recovery. *)

val set_journal : t -> (string -> string -> unit) option -> unit
(** Install (or clear) the journal hook. *)

val replay : t -> string -> string -> (unit, string) result
(** [replay t tag payload] re-applies a journaled record.  Replay
    never re-journals.  Errors on a malformed or unknown record. *)
