type message = {
  topic : string;
  subject : int;
  payload : (string * string) list;
}

let attr m key = List.assoc_opt key m.payload

type t = {
  subscribers : (string, string list) Hashtbl.t;  (* topic -> daemon names, reversed *)
  queues : (string, message Queue.t) Hashtbl.t;  (* daemon name -> inbox *)
  mutable published : int;
  mutable dropped : int;
}

let create () =
  { subscribers = Hashtbl.create 16; queues = Hashtbl.create 16; published = 0; dropped = 0 }

let queue_of t name =
  match Hashtbl.find_opt t.queues name with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.queues name q;
    q

let subscribe t ~topic ~name =
  ignore (queue_of t name);
  let subs = Option.value ~default:[] (Hashtbl.find_opt t.subscribers topic) in
  if not (List.mem name subs) then Hashtbl.replace t.subscribers topic (name :: subs)

let publish t m =
  t.published <- t.published + 1;
  if Mirror_util.Metrics.enabled () then begin
    Mirror_util.Metrics.incr "bus.published";
    Mirror_util.Metrics.incr ("bus.topic." ^ m.topic)
  end;
  match Hashtbl.find_opt t.subscribers m.topic with
  | None | Some [] ->
    t.dropped <- t.dropped + 1;
    if Mirror_util.Metrics.enabled () then Mirror_util.Metrics.incr "bus.dropped"
  | Some subs -> List.iter (fun name -> Queue.push m (queue_of t name)) (List.rev subs)

let fetch t ~name =
  match Hashtbl.find_opt t.queues name with
  | None -> None
  | Some q -> if Queue.is_empty q then None else Some (Queue.pop q)

let requeue t ~name m = Queue.push m (queue_of t name)

let pending t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0

let queued t ~name =
  match Hashtbl.find_opt t.queues name with None -> 0 | Some q -> Queue.length q
let published t = t.published
let dropped t = t.dropped
