type message = {
  topic : string;
  subject : int;
  payload : (string * string) list;
}

let attr m key = List.assoc_opt key m.payload

type delivery = {
  seq : int;
  message : message;
  mutable attempts : int;
  mutable deadline : float option;
}

type overflow_policy = Backpressure | Shed_oldest

(* One subscriber's inbox: the bounded visible queue plus the
   backpressure stall buffer behind it. *)
type inbox = {
  q : delivery Queue.t;
  stall : delivery Queue.t;
  mutable enqueued : int;  (* deliveries ever routed here (requeues excluded) *)
}

type t = {
  subscribers : (string, string list) Hashtbl.t;  (* topic -> daemon names, reversed *)
  inboxes : (string, inbox) Hashtbl.t;  (* daemon name -> inbox *)
  capacity : int option;
  policy : overflow_policy;
  mutable on_overflow : (string -> delivery -> unit) option;
  mutable next_seq : int;
  mutable published : int;
  mutable dropped : int;
  mutable shed : int;
  mutable stalls : int;
}

let create ?capacity ?(policy = Backpressure) () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Bus.create: capacity must be positive"
  | _ -> ());
  {
    subscribers = Hashtbl.create 16;
    inboxes = Hashtbl.create 16;
    capacity;
    policy;
    on_overflow = None;
    next_seq = 0;
    published = 0;
    dropped = 0;
    shed = 0;
    stalls = 0;
  }

let inbox_of t name =
  match Hashtbl.find_opt t.inboxes name with
  | Some ib -> ib
  | None ->
    let ib = { q = Queue.create (); stall = Queue.create (); enqueued = 0 } in
    Hashtbl.add t.inboxes name ib;
    ib

let subscribe t ~topic ~name =
  ignore (inbox_of t name);
  let subs = Option.value ~default:[] (Hashtbl.find_opt t.subscribers topic) in
  if not (List.mem name subs) then Hashtbl.replace t.subscribers topic (name :: subs)

let set_overflow_handler t h = t.on_overflow <- h

let has_room t ib =
  match t.capacity with None -> true | Some cap -> Queue.length ib.q < cap

(* Move stalled deliveries into freed queue slots, oldest first. *)
let admit t ib =
  while (not (Queue.is_empty ib.stall)) && has_room t ib do
    Queue.push (Queue.pop ib.stall) ib.q
  done

let enqueue t name d =
  let ib = inbox_of t name in
  ib.enqueued <- ib.enqueued + 1;
  if has_room t ib then Queue.push d ib.q
  else
    match t.policy with
    | Backpressure ->
      t.stalls <- t.stalls + 1;
      if Mirror_util.Metrics.enabled () then Mirror_util.Metrics.incr "bus.stalled";
      Queue.push d ib.stall
    | Shed_oldest ->
      let old = Queue.pop ib.q in
      t.shed <- t.shed + 1;
      if Mirror_util.Metrics.enabled () then Mirror_util.Metrics.incr "bus.shed";
      Queue.push d ib.q;
      (match t.on_overflow with Some f -> f name old | None -> ())

let fresh_delivery t m =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  { seq; message = m; attempts = 0; deadline = None }

let publish t m =
  t.published <- t.published + 1;
  if Mirror_util.Metrics.enabled () then begin
    Mirror_util.Metrics.incr "bus.published";
    Mirror_util.Metrics.incr ("bus.topic." ^ m.topic)
  end;
  match Hashtbl.find_opt t.subscribers m.topic with
  | None | Some [] ->
    t.dropped <- t.dropped + 1;
    if Mirror_util.Metrics.enabled () then Mirror_util.Metrics.incr "bus.dropped"
  | Some subs -> List.iter (fun name -> enqueue t name (fresh_delivery t m)) (List.rev subs)

let fetch_delivery t ~name =
  match Hashtbl.find_opt t.inboxes name with
  | None -> None
  | Some ib ->
    if Queue.is_empty ib.q then None
    else begin
      let d = Queue.pop ib.q in
      admit t ib;
      Some d
    end

let fetch t ~name = Option.map (fun d -> d.message) (fetch_delivery t ~name)

let requeue t ~name m =
  let ib = inbox_of t name in
  Queue.push (fresh_delivery t m) ib.q

let requeue_delivery t ~name d =
  let ib = inbox_of t name in
  Queue.push d ib.q

let sweep t ~name ~keep =
  match Hashtbl.find_opt t.inboxes name with
  | None -> []
  | Some ib ->
    let removed = ref [] in
    let filter q =
      let kept = Queue.create () in
      Queue.iter (fun d -> if keep d then Queue.push d kept else removed := d :: !removed) q;
      Queue.clear q;
      Queue.transfer kept q
    in
    filter ib.q;
    filter ib.stall;
    admit t ib;
    List.rev !removed

let inbox_pending ib = Queue.length ib.q + Queue.length ib.stall
let pending t = Hashtbl.fold (fun _ ib acc -> acc + inbox_pending ib) t.inboxes 0

let pending_for t ~name =
  match Hashtbl.find_opt t.inboxes name with None -> 0 | Some ib -> inbox_pending ib

let pending_by_topic t ~topic =
  Hashtbl.fold
    (fun _ ib acc ->
      let count q =
        Queue.fold (fun n d -> if String.equal d.message.topic topic then n + 1 else n) 0 q
      in
      acc + count ib.q + count ib.stall)
    t.inboxes 0

let queued t ~name =
  match Hashtbl.find_opt t.inboxes name with None -> 0 | Some ib -> Queue.length ib.q

let stalled t ~name =
  match Hashtbl.find_opt t.inboxes name with None -> 0 | Some ib -> Queue.length ib.stall

let delivered_to t ~name =
  match Hashtbl.find_opt t.inboxes name with None -> 0 | Some ib -> ib.enqueued

let published t = t.published
let dropped t = t.dropped
let shed t = t.shed
let stalls t = t.stalls
