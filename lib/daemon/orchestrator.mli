(** Drives the open distributed architecture.

    Owns the bus/media/dictionary/store context, ingests footage
    (publishing the corresponding messages) and then pumps the bus in
    rounds until the daemons go quiescent — under supervision: every
    daemon has a {!Supervisor} circuit breaker, every delivery a retry
    budget and a deadline, and everything undeliverable lands in a
    {!Deadletter} queue with its cause, from which {!redeliver} can
    replay it once the target is healthy again.

    Time is injectable ({!Mirror_util.Clock}); by default a virtual
    clock advances one tick per round, so breaker backoff and message
    deadlines are deterministic and tests never sleep.

    Failure taxonomy: an exception from a handler is a {e daemon}
    failure — retried, then dead-lettered with the exception text.
    {!Faults.Crash}, [Out_of_memory] and [Stack_overflow] are {e not}
    daemon failures: the in-flight delivery is requeued and the
    exception re-raised to the caller (the supervision analogue of a
    process crash — state survives in [t]; call {!run} again to
    restart). *)

type config = {
  ttl : float;
      (** Message deadline: a delivery still queued [ttl] clock
          seconds after it was first considered is dead-lettered as
          expired (so a downed daemon's backlog drains to the
          dead-letter queue instead of burning retry attempts). *)
  tick : float;  (** Virtual-clock advance per round. *)
  capacity : int option;  (** Per-subscriber bus queue bound. *)
  policy : Bus.overflow_policy;
  breaker : Supervisor.config;
  barriers : (string * string list) list;
      (** [(topic, awaits)]: a delivery on [topic] is held while any
          [awaits] topic has pending deliveries or dead letters.  The
          default holds ["collection.complete"] until segmentation
          (["image.new"]) and feature extraction (["segments.ready"])
          have resolved, so the clusterer never runs on a partial
          feature store. *)
}

val default_config : config
(** ttl 30s, tick 1s, capacity 256, [Backpressure], default breaker,
    the ["collection.complete"] barrier. *)

type daemon_stats = {
  name : string;
  handled : int;  (** Messages successfully processed. *)
  produced : int;  (** Messages published as a result. *)
  failures : int;  (** Raised handlings (each attempt counts). *)
  cpu_seconds : float;  (** Processor time inside the handler. *)
}

type report = {
  rounds : int;
  quiescent : bool;
      (** True when no deliveries remain queued for any daemon.  A
          false report is honest about why: [pending] counts the
          backlog (livelock guard hit, breaker still open, or a
          barrier held by dead letters). *)
  pending : int;  (** Deliveries still queued when the run stopped. *)
  degraded : string list;
      (** Daemons that ended the run unhealthy: breaker not closed,
          or dead letters addressed to them.  Empty for a clean run. *)
  stats : daemon_stats list;  (** In daemon registration order;
          cumulative across runs of the same orchestrator. *)
  dead_letters : Deadletter.entry list;  (** Added during this run. *)
}

type t

val create :
  ?daemons:Daemon.t list ->
  ?clock:Mirror_util.Clock.t ->
  ?seed:int ->
  ?config:config ->
  unit ->
  t
(** Fresh context with the given daemons subscribed ([Standard.all] by
    default) and the ["ImageLibrary"] extent registered in the
    dictionary.  [clock] defaults to a fresh virtual clock; [seed]
    (default 7901) drives the breakers' deterministic jitter. *)

val ctx : t -> Daemon.ctx
(** The underlying context (media server, store, dictionary, bus). *)

val clock : t -> Mirror_util.Clock.t
val supervisor : t -> Supervisor.t

val dead_letters : t -> Deadletter.entry list
(** The full dead-letter queue, oldest first (persists across runs). *)

val redeliver : ?daemon:string -> t -> int
(** Drain the dead-letter queue (all of it, or one daemon's) back
    onto the bus with fresh retry budgets and deadlines, force-closing
    the target breakers — the operator's "the daemon is healthy again"
    signal.  Returns the number of redelivered messages; follow with
    {!run} to process them. *)

val ingest_image :
  t -> doc:int -> url:string -> ?annotation:string -> Mirror_mm.Image.t -> unit
(** Publish footage on the media server, register the document, and
    announce ["image.new"] (and ["annotation.new"] when an annotation
    is supplied). *)

val complete_collection : t -> unit
(** Announce ["collection.complete"] — unblocks the clusterer once
    the barrier releases. *)

val formulate : t -> string -> unit
(** Post a ["query.formulate"] request for the given text on behalf of
    a client; the formulation daemon answers after the next {!run}. *)

val formulated : t -> (string * float) list option
(** Pop the client's next formulation answer (concept, belief) — the
    interactive query-formulation round trip of §5.1. *)

val run :
  ?max_retries:int -> ?max_rounds:int -> ?trace:Mirror_util.Trace.t -> t -> report
(** Pump messages until quiescence, the livelock guard, or a stall no
    amount of time can fix.  [max_retries] (default 2) extra attempts
    per {e delivery} (each enqueued copy has its own budget);
    [max_rounds] (default 1000) guards against livelock.  Daemons
    whose breaker is open are skipped (their backlog waits, then
    expires); a half-open breaker admits a single probe delivery.

    [trace] records an ["orchestrator.run"] span with one child per
    round, per-daemon spans beneath, and zero-duration ["breaker"]
    events on breaker transitions.  When the {!Mirror_util.Metrics}
    registry is enabled, per-daemon
    ["daemon.<name>.handled"/".failures"/".ms"/".depth"] metrics,
    ["breaker.<name>.opened"/".half_open"/".closed"] counters and the
    ["bus.*"] counters are recorded.

    @raise Faults.Crash (and re-raises [Out_of_memory] /
    [Stack_overflow]) after requeueing the in-flight delivery — see
    the failure taxonomy above. *)
