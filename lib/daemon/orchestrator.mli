(** Drives the open distributed architecture.

    Owns the bus/media/dictionary/store context, ingests footage
    (publishing the corresponding messages) and then pumps the bus in
    rounds until the daemons go quiescent.  Failed deliveries are
    retried a bounded number of times and then dead-lettered — a party
    in an open architecture may simply be down. *)

type daemon_stats = {
  name : string;
  handled : int;  (** Messages successfully processed. *)
  produced : int;  (** Messages published as a result. *)
  failures : int;  (** Raised handlings (each attempt counts). *)
  cpu_seconds : float;  (** Processor time inside the handler. *)
}

type report = {
  rounds : int;
  stats : daemon_stats list;  (** In daemon registration order. *)
  dead_letters : (string * Bus.message) list;  (** (daemon, message). *)
}

type t

val create : ?daemons:Daemon.t list -> unit -> t
(** Fresh context with the given daemons subscribed ([Standard.all] by
    default) and the ["ImageLibrary"] extent registered in the
    dictionary. *)

val ctx : t -> Daemon.ctx
(** The underlying context (media server, store, dictionary, bus). *)

val ingest_image :
  t -> doc:int -> url:string -> ?annotation:string -> Mirror_mm.Image.t -> unit
(** Publish footage on the media server, register the document, and
    announce ["image.new"] (and ["annotation.new"] when an annotation
    is supplied). *)

val complete_collection : t -> unit
(** Announce ["collection.complete"] — unblocks the clusterer. *)

val formulate : t -> string -> unit
(** Post a ["query.formulate"] request for the given text on behalf of
    a client; the formulation daemon answers after the next {!run}. *)

val formulated : t -> (string * float) list option
(** Pop the client's next formulation answer (concept, belief) — the
    interactive query-formulation round trip of §5.1. *)

val run :
  ?max_retries:int -> ?max_rounds:int -> ?trace:Mirror_util.Trace.t -> t -> report
(** Pump messages until quiescence.  [max_retries] (default 2) extra
    attempts per message per daemon; [max_rounds] (default 1000)
    guards against livelock.  [trace] records an ["orchestrator.run"]
    span with one child per round and, under each round, one span per
    daemon that handled messages (rows = messages handled).  When the
    {!Mirror_util.Metrics} registry is enabled, per-daemon
    ["daemon.<name>.handled"/".failures"] counters and a
    ["daemon.<name>.ms"] latency histogram are recorded. *)
