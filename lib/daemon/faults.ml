let failure_message = "injected fault"

(* {1 Crash points}

   Process-wide, off unless armed — the recovery fuzzer arms one fault
   per run and the durability layer polls at its write sites.  Two
   mechanisms: named discrete crash points (checkpoint protocol steps)
   and a byte budget that tears a WAL write at an arbitrary offset. *)

exception Crash of string

let armed_point : (string * int ref) option ref = ref None
let write_budget : int option ref = ref None

let reset_faults () =
  armed_point := None;
  write_budget := None

let arm_crash point ~after =
  if after < 0 then invalid_arg "Faults.arm_crash: negative hit count";
  armed_point := Some (point, ref after)

let arm_torn_write ~bytes =
  if bytes < 0 then invalid_arg "Faults.arm_torn_write: negative budget";
  write_budget := Some bytes

let crash_hit point =
  match !armed_point with
  | Some (p, left) when p = point ->
    if !left = 0 then begin
      armed_point := None;
      raise (Crash ("crash point " ^ point))
    end
    else decr left
  | _ -> ()

let write_allowance n =
  match !write_budget with
  | None -> None
  | Some budget ->
    if n <= budget then begin
      write_budget := Some (budget - n);
      None
    end
    else begin
      write_budget := None;
      Some budget
    end

(* {1 Daemon wrappers} *)

let flaky g ~rate (d : Daemon.t) =
  {
    d with
    Daemon.handle =
      (fun ctx m ->
        if Mirror_util.Prng.float g 1.0 < rate then failwith failure_message
        else d.Daemon.handle ctx m);
  }

let broken (d : Daemon.t) =
  { d with Daemon.handle = (fun _ _ -> failwith failure_message) }

let switched pred (d : Daemon.t) =
  {
    d with
    Daemon.handle =
      (fun ctx m -> if pred () then failwith failure_message else d.Daemon.handle ctx m);
  }

let breakable (d : Daemon.t) =
  let down = ref true in
  (switched (fun () -> !down) d, fun up -> down := not up)

let crashing ~at_call (d : Daemon.t) =
  if at_call < 1 then invalid_arg "Faults.crashing: at_call must be positive";
  let calls = ref 0 in
  {
    d with
    Daemon.handle =
      (fun ctx m ->
        incr calls;
        if !calls = at_call then raise (Crash ("daemon " ^ d.Daemon.name))
        else d.Daemon.handle ctx m);
  }
