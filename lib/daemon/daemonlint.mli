(** Static analysis of a daemon set's topic graph.

    Daemons are decoupled through bus topics, so a misspelt topic or a
    retired producer fails silently at runtime: subscriptions never
    fire, publications dead-letter.  This lint rebuilds the topic graph
    from each daemon's subscriptions and declared {!Daemon.t.publishes}
    and reports the disconnections statically. *)

type severity = Error | Warning

type diag = {
  severity : severity;
  subject : string;  (** The daemon or topic concerned. *)
  message : string;
}

val severity_name : severity -> string
val diag_to_string : diag -> string

val errors : diag list -> diag list
(** Just the [Error]-severity diagnostics. *)

val lint : ?roots:string list -> ?sinks:string list -> Daemon.t list -> diag list
(** Topic-graph lint.  [roots] are topics published from outside the
    daemon set (pipeline inputs); [sinks] are topics consumed outside
    it (pipeline outputs).  Reports as errors: duplicate daemon names,
    subscriptions to topics nothing publishes, and daemons unreachable
    from any root; as warnings: publications (and roots) nothing
    subscribes to — dead-letter-only paths — and declared sinks never
    published.  A daemon publishing ["*"] (dynamic topic) contributes
    no static publications. *)
