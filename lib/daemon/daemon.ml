type ctx = {
  bus : Bus.t;
  media : Media.t;
  dict : Dictionary.t;
  store : Store.t;
}

type t = {
  name : string;
  topics : string list;
  publishes : string list;
  handle : ctx -> Bus.message -> Bus.message list;
}

let make ~name ~topics ?(publishes = []) handle = { name; topics; publishes; handle }
