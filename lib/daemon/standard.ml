module Segment = Mirror_mm.Segment
module Features = Mirror_mm.Features
module Autoclass = Mirror_mm.Autoclass
module Vocabmap = Mirror_mm.Vocabmap
module Prng = Mirror_util.Prng

let msg ?(payload = []) topic subject = { Bus.topic; subject; payload }

let image_of ctx doc =
  match Store.url_of ctx.Daemon.store doc with
  | None -> failwith (Printf.sprintf "daemon: unknown document %d" doc)
  | Some url -> (
    match Media.get ctx.Daemon.media url with
    | None -> failwith (Printf.sprintf "daemon: media server has no %S" url)
    | Some img -> img)

let segmenter ?(params = Segment.default_params) () =
  Daemon.make ~name:"segmenter" ~topics:[ "image.new" ] ~publishes:[ "segments.ready" ]
    (fun ctx m ->
      let img = image_of ctx m.Bus.subject in
      let regions = Segment.segment_flat ~params img in
      Store.put_segments ctx.Daemon.store ~doc:m.Bus.subject regions;
      [ msg "segments.ready" m.Bus.subject ])

let feature_daemon (f : Features.t) =
  Daemon.make ~name:("feature:" ^ f.Features.name) ~topics:[ "segments.ready" ]
    ~publishes:[ "features.ready" ] (fun ctx m ->
      let doc = m.Bus.subject in
      let img = image_of ctx doc in
      match Store.segments ctx.Daemon.store ~doc with
      | None -> failwith "feature daemon: segments not ready"
      | Some regions ->
        let vectors = Array.of_list (List.map (fun r -> f.Features.extract img r) regions) in
        Store.put_features ctx.Daemon.store ~doc ~space:f.Features.name vectors;
        [ msg ~payload:[ ("space", f.Features.name) ] "features.ready" doc ])

let annotation_indexer =
  Daemon.make ~name:"annotation-indexer" ~topics:[ "annotation.new" ]
    ~publishes:[ "annotation.indexed" ] (fun ctx m ->
      match Bus.attr m "text" with
      | None -> failwith "annotation indexer: missing text payload"
      | Some text ->
        Store.put_text ctx.Daemon.store ~doc:m.Bus.subject (Mirror_ir.Tokenize.tf_bag text);
        [ msg "annotation.indexed" m.Bus.subject ])

let internal_schema spaces =
  Printf.sprintf
    "SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation, CONTREP<Image>: image (%d feature spaces) > >"
    spaces

let clusterer ?(seed = 20259) ?(kmin = 2) ?(kmax = 6) ?(expected_spaces = 6) () =
  Daemon.make ~name:"autoclass" ~topics:[ "collection.complete" ]
    ~publishes:[ "clustering.done"; "contrep.ready" ] (fun ctx m ->
      ignore m;
      let store = ctx.Daemon.store in
      let g = Prng.create seed in
      let out = ref [] in
      List.iter
        (fun space ->
          let per_doc = Store.all_features store ~space in
          let all = Array.concat (List.map snd per_doc) in
          if Array.length all > 0 then begin
            let model = Autoclass.select (Prng.split g) ~kmin ~kmax ~restarts:1 all in
            Store.put_model store ~space model;
            List.iter
              (fun (doc, vectors) ->
                Store.add_visual_words store ~doc (Vocabmap.soft_words model ~space vectors))
              per_doc;
            out :=
              msg
                ~payload:[ ("space", space); ("k", string_of_int model.Autoclass.k) ]
                "clustering.done" (-1)
              :: !out
          end)
        (Store.feature_spaces store);
      (* Schema evolution is visible in the data dictionary. *)
      (match Dictionary.schema_of ctx.Daemon.dict "ImageLibrary" with
      | Some schema when schema <> internal_schema expected_spaces ->
        Dictionary.evolve ctx.Daemon.dict ~name:"ImageLibrary"
          ~schema:(internal_schema expected_spaces) ~by:"autoclass"
      | _ -> ());
      List.rev (msg "contrep.ready" (-1) :: !out))

(* "thesaurus daemons that are interactively used during query
   formulation": a client posts "query.formulate" with the text and a
   reply topic; the daemon answers with the associated concepts. *)
let formulation_daemon =
  Daemon.make ~name:"query-formulation" ~topics:[ "query.formulate" ] ~publishes:[ "*" ]
    (fun ctx m ->
      match (Bus.attr m "text", Bus.attr m "reply") with
      | Some text, Some reply -> (
        match Store.thesaurus ctx.Daemon.store with
        | None -> failwith "query formulation: thesaurus not built yet"
        | Some th ->
          let terms = Mirror_ir.Tokenize.terms text in
          let ranked =
            if terms = [] then []
            else Mirror_thesaurus.Concepts.associate th ~limit:5 (Mirror_ir.Querynet.flat terms)
          in
          let encoded =
            String.concat ";" (List.map (fun (c, w) -> Printf.sprintf "%s=%.6f" c w) ranked)
          in
          [ msg ~payload:[ ("text", text); ("concepts", encoded) ] reply m.Bus.subject ])
      | _ -> failwith "query formulation: missing text/reply payload")

(* Builds on "contrep.ready"; also refreshes on late "annotation.indexed"
   arrivals (e.g. annotations redelivered after an indexer outage), so a
   recovered pipeline converges to the same thesaurus a failure-free run
   builds.  Before the first build, annotation arrivals are ignored —
   the "contrep.ready" build will see their evidence anyway. *)
let thesaurus_daemon =
  Daemon.make ~name:"thesaurus"
    ~topics:[ "contrep.ready"; "annotation.indexed" ]
    ~publishes:[ "thesaurus.ready" ] (fun ctx m ->
      if m.Bus.topic = "annotation.indexed" && Store.thesaurus ctx.Daemon.store = None then
        []
      else begin
        let th = Mirror_thesaurus.Concepts.build (Store.evidence ctx.Daemon.store) in
        Store.put_thesaurus ctx.Daemon.store th;
        [ msg "thesaurus.ready" (-1) ]
      end)

let all ?(seed = 20259) () =
  segmenter ()
  :: List.map feature_daemon Features.all
  @ [ annotation_indexer; clusterer ~seed (); thesaurus_daemon; formulation_daemon ]
