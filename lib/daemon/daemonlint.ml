type severity = Error | Warning

type diag = {
  severity : severity;
  subject : string;  (* daemon or topic name *)
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let diag_to_string d =
  Printf.sprintf "%s (%s): %s" (severity_name d.severity) d.subject d.message

let errors diags = List.filter (fun d -> d.severity = Error) diags

let dynamic = "*"

let lint ?(roots = []) ?(sinks = []) daemons =
  let out = ref [] in
  let add severity subject fmt =
    Printf.ksprintf (fun message -> out := { severity; subject; message } :: !out) fmt
  in
  let declared d = List.filter (fun t -> not (String.equal t dynamic)) d.Daemon.publishes in
  let publishers t =
    List.filter (fun d -> List.mem t (declared d)) daemons |> List.map (fun d -> d.Daemon.name)
  in
  let subscribers t =
    List.filter (fun d -> List.mem t d.Daemon.topics) daemons |> List.map (fun d -> d.Daemon.name)
  in
  (* Two daemons sharing a name share one bus queue and steal each
     other's messages. *)
  let names = List.map (fun d -> d.Daemon.name) daemons in
  List.iter
    (fun n ->
      if List.length (List.filter (String.equal n) names) > 1 then
        add Error n "duplicate daemon name")
    (List.sort_uniq String.compare names);
  (* Liveness fixpoint: a topic is live when a root or a live daemon
     publishes it; a daemon is live when it subscribes to a live
     topic. *)
  let live_topics = Hashtbl.create 16 in
  let live_daemons = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace live_topics t ()) roots;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        if
          (not (Hashtbl.mem live_daemons d.Daemon.name))
          && List.exists (Hashtbl.mem live_topics) d.Daemon.topics
        then begin
          Hashtbl.replace live_daemons d.Daemon.name ();
          List.iter
            (fun t ->
              if not (Hashtbl.mem live_topics t) then begin
                Hashtbl.replace live_topics t ();
                changed := true
              end)
            (declared d);
          changed := true
        end)
      daemons
  done;
  List.iter
    (fun d ->
      let orphaned, fed =
        List.partition (fun t -> publishers t = [] && not (List.mem t roots)) d.Daemon.topics
      in
      List.iter
        (fun t -> add Error d.Daemon.name "subscribes to %S, which nothing publishes" t)
        orphaned;
      if d.Daemon.topics = [] then add Error d.Daemon.name "subscribes to no topic"
      else if (not (Hashtbl.mem live_daemons d.Daemon.name)) && orphaned = [] then
        add Error d.Daemon.name
          "can never fire: its subscriptions (%s) are unreachable from any root topic"
          (String.concat ", " fed))
    daemons;
  (* Dead-letter-only paths: a declared publication nothing consumes is
     dropped by the bus on every publish. *)
  let published = List.sort_uniq String.compare (List.concat_map declared daemons) in
  List.iter
    (fun t ->
      if subscribers t = [] && not (List.mem t sinks) then
        add Warning t "published (by %s) but nothing subscribes — every publication is dropped"
          (String.concat ", " (publishers t)))
    published;
  List.iter
    (fun t -> if subscribers t = [] then add Warning t "root topic has no subscribers")
    (List.sort_uniq String.compare roots);
  List.iter
    (fun t ->
      if publishers t = [] && not (List.mem t roots) then
        add Warning t "declared sink is never published")
    (List.sort_uniq String.compare sinks);
  List.rev !out
