(** The concrete daemons of the paper's prototype environment (§5.1):
    a segmenter, two colour-histogram daemons, the four MeasTex texture
    daemons, the AutoClass clusterer, the annotation indexer and the
    thesaurus daemon.

    Message protocol (topics):
    - ["image.new"] (payload [url]) — published on ingest.
    - ["annotation.new"] (payload [text]) — published on ingest of an
      annotated image.
    - ["segments.ready"] — segmenter output.
    - ["features.ready"] (payload [space]) — per feature daemon.
    - ["collection.complete"] — published by the orchestrator when
      ingestion finishes; triggers clustering.
    - ["clustering.done"] (payload [space; k]) — per clustered space.
    - ["contrep.ready"] — all spaces clustered.
    - ["thesaurus.ready"] — thesaurus built. *)

val segmenter : ?params:Mirror_mm.Segment.params -> unit -> Daemon.t
(** Reacts to ["image.new"]; stores the document's segment list. *)

val feature_daemon : Mirror_mm.Features.t -> Daemon.t
(** Reacts to ["segments.ready"]; stores one vector per segment in its
    feature space. *)

val annotation_indexer : Daemon.t
(** Reacts to ["annotation.new"]; stores the stemmed/stopped term
    bag. *)

val clusterer :
  ?seed:int -> ?kmin:int -> ?kmax:int -> ?expected_spaces:int -> unit -> Daemon.t
(** Reacts to ["collection.complete"]: clusters every feature space
    with the AutoClass substitute, stores the models, converts each
    document's segment vectors into visual words, and evolves the
    dictionary schema of ["ImageLibrary"] to the internal CONTREP
    form.  [expected_spaces] (default 6) is only used in the evolved
    schema text. *)

val formulation_daemon : Daemon.t
(** Reacts to ["query.formulate"] (payload [text], [reply]): answers on
    the reply topic with the thesaurus concepts for the text — the
    paper's "thesaurus daemons that are interactively used during query
    formulation". *)

val thesaurus_daemon : Daemon.t
(** Reacts to ["contrep.ready"]; builds the concept thesaurus from the
    store's evidence.  Also reacts to ["annotation.indexed"], but only
    once a thesaurus exists: late annotations (redelivered after an
    indexer outage) trigger a rebuild so the recovered pipeline
    converges to the failure-free thesaurus. *)

val all : ?seed:int -> unit -> Daemon.t list
(** The full §5.1 environment: segmenter, six feature daemons,
    annotation indexer, clusterer, thesaurus daemon, query-formulation
    daemon. *)
