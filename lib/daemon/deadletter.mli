(** The dead-letter queue: undeliverable messages, with their cause.

    A delivery lands here when its retry budget is exhausted, its
    deadline passes while the target is unhealthy, or it is shed by a
    full bounded queue.  Every entry records {e why} — "a party in an
    open architecture may simply be down" is only tolerable when the
    failure is attributable.  Entries keep their delivery envelope so
    {!Orchestrator.redeliver} can put the exact delivery back on the
    bus once the target daemon is healthy again. *)

type cause =
  | Failed of string
      (** Retry budget exhausted; carries the last exception text. *)
  | Expired of string
      (** Deadline passed while queued; carries the breaker state of
          the target at expiry. *)
  | Overflow  (** Shed by a full bounded queue under [Shed_oldest]. *)

val cause_to_string : cause -> string

type entry = {
  daemon : string;  (** The subscriber that could not be served. *)
  delivery : Bus.delivery;
  cause : cause;
  at : float;  (** Clock reading when dead-lettered. *)
}

type t

val create : unit -> t

val add : t -> entry -> unit

val entries : t -> entry list
(** Oldest first. *)

val count : t -> int

val for_daemon : t -> string -> entry list
(** Entries addressed to one daemon, oldest first. *)

val exists_topic : t -> string -> bool
(** Is any entry's message on this topic?  (Barrier-release test.) *)

val take : ?daemon:string -> t -> entry list
(** Remove and return entries (all, or one daemon's), oldest first —
    the redelivery path. *)
