(** The message bus — the offline stand-in for the CORBA ORB.

    "Using CORBA, we allow distribution of operations, establishing
    independence between the management of meta data and the parties
    that create these meta data."  Daemons never call each other; they
    subscribe to topics and publish messages.  Delivery is asynchronous
    (per-subscriber FIFO queues drained by the orchestrator), which
    preserves the decoupling that matters architecturally. *)

type message = {
  topic : string;  (** e.g. "image.new", "segments.ready". *)
  subject : int;  (** The object (document oid) the message concerns. *)
  payload : (string * string) list;  (** Free-form attributes. *)
}

val attr : message -> string -> string option
(** Payload attribute lookup. *)

type t

val create : unit -> t
(** Fresh bus with no subscribers. *)

val subscribe : t -> topic:string -> name:string -> unit
(** Register interest of daemon [name] in [topic] (idempotent). *)

val publish : t -> message -> unit
(** Fan the message out to every subscriber's queue.  Messages on
    topics nobody subscribes to are counted as dropped.  When the
    {!Mirror_util.Metrics} registry is enabled, ["bus.published"],
    ["bus.topic.<topic>"] and ["bus.dropped"] counters are bumped. *)

val fetch : t -> name:string -> message option
(** Pop the next message queued for a daemon. *)

val requeue : t -> name:string -> message -> unit
(** Push a message back onto one daemon's queue (retry path; does not
    fan out and does not count as a new publication). *)

val pending : t -> int
(** Messages currently queued across all subscribers. *)

val queued : t -> name:string -> int
(** Messages currently queued for one daemon. *)

val published : t -> int
(** Messages published so far. *)

val dropped : t -> int
(** Messages published to topics with no subscriber. *)
