(** The message bus — the offline stand-in for the CORBA ORB.

    "Using CORBA, we allow distribution of operations, establishing
    independence between the management of meta data and the parties
    that create these meta data."  Daemons never call each other; they
    subscribe to topics and publish messages.  Delivery is asynchronous
    (per-subscriber FIFO queues drained by the orchestrator), which
    preserves the decoupling that matters architecturally.

    Each enqueued copy of a message is wrapped in a {!delivery}
    envelope carrying a unique sequence id, its own retry count and an
    optional deadline — two identical messages published twice are two
    deliveries with independent retry budgets.  Per-subscriber queues
    may be bounded; on overflow the bus either exerts backpressure
    (the delivery waits in a publisher-visible stall buffer and is
    admitted as the subscriber drains) or sheds the oldest queued
    delivery to the overflow handler (the orchestrator's dead-letter
    queue). *)

type message = {
  topic : string;  (** e.g. "image.new", "segments.ready". *)
  subject : int;  (** The object (document oid) the message concerns. *)
  payload : (string * string) list;  (** Free-form attributes. *)
}

val attr : message -> string -> string option
(** Payload attribute lookup. *)

type delivery = {
  seq : int;  (** Unique per enqueued copy, assigned by {!publish}. *)
  message : message;
  mutable attempts : int;  (** Handling attempts so far (orchestrator-owned). *)
  mutable deadline : float option;
      (** Clock reading after which the delivery is expired
          (orchestrator-owned; [None] until stamped). *)
}

type overflow_policy =
  | Backpressure
      (** A delivery to a full queue waits in the subscriber's stall
          buffer and is admitted when the queue drains below capacity;
          the publisher observes the stall through {!stalled}. *)
  | Shed_oldest
      (** A delivery to a full queue evicts the oldest queued delivery
          into the overflow handler (see {!set_overflow_handler}). *)

type t

val create : ?capacity:int -> ?policy:overflow_policy -> unit -> t
(** Fresh bus with no subscribers.  [capacity] bounds every
    subscriber queue (default: unbounded); [policy] (default
    [Backpressure]) says what happens on overflow. *)

val subscribe : t -> topic:string -> name:string -> unit
(** Register interest of daemon [name] in [topic] (idempotent). *)

val set_overflow_handler : t -> (string -> delivery -> unit) option -> unit
(** Install the shed-delivery sink ([Shed_oldest] only): called with
    the subscriber name and the evicted delivery.  Without a handler,
    shed deliveries are counted and dropped. *)

val publish : t -> message -> unit
(** Fan the message out as one fresh delivery per subscriber.
    Messages on topics nobody subscribes to are counted as dropped.
    When the {!Mirror_util.Metrics} registry is enabled,
    ["bus.published"], ["bus.topic.<topic>"], ["bus.dropped"],
    ["bus.stalled"] and ["bus.shed"] counters are bumped. *)

val fetch : t -> name:string -> message option
(** Pop the next message queued for a daemon (envelope discarded). *)

val fetch_delivery : t -> name:string -> delivery option
(** Pop the next delivery queued for a daemon, admitting stalled
    deliveries into the freed slot. *)

val requeue : t -> name:string -> message -> unit
(** Push a message back onto one daemon's queue as a fresh delivery
    (does not fan out and does not count as a new publication).  The
    delivery goes to the {e back} of the queue, behind anything
    already queued — including messages published since it was
    fetched. *)

val requeue_delivery : t -> name:string -> delivery -> unit
(** Push an existing delivery back onto one daemon's queue (retry
    path), preserving its sequence id, attempt count and deadline.
    Bypasses the capacity bound — a retry is never shed. *)

val sweep : t -> name:string -> keep:(delivery -> bool) -> delivery list
(** Filter one daemon's queue and stall buffer in place, preserving
    order; returns the removed deliveries oldest-first and admits
    stalled deliveries into any freed capacity.  The orchestrator uses
    this to stamp deadlines and expire overdue deliveries. *)

val pending : t -> int
(** Deliveries currently queued or stalled across all subscribers. *)

val pending_for : t -> name:string -> int
(** Deliveries queued or stalled for one daemon. *)

val pending_by_topic : t -> topic:string -> int
(** Deliveries queued or stalled whose message carries [topic] —
    the orchestrator's barrier-release test. *)

val queued : t -> name:string -> int
(** Deliveries in one daemon's bounded queue (stall buffer excluded);
    never exceeds the capacity. *)

val stalled : t -> name:string -> int
(** Deliveries waiting in one daemon's stall buffer. *)

val delivered_to : t -> name:string -> int
(** Deliveries ever enqueued (or stalled) for one daemon, requeues
    excluded — the denominator of the chaos suite's accounting
    invariant. *)

val published : t -> int
(** Messages published so far. *)

val dropped : t -> int
(** Messages published to topics with no subscriber. *)

val shed : t -> int
(** Deliveries evicted under [Shed_oldest] so far. *)

val stalls : t -> int
(** Deliveries that entered a stall buffer under [Backpressure] so
    far (cumulative). *)
