(** Failure injection for the distributed architecture.

    An open multi-party architecture must tolerate flaky parties; the
    orchestrator's retry/dead-letter behaviour is tested by wrapping
    daemons with these combinators. *)

val flaky : Mirror_util.Prng.t -> rate:float -> Daemon.t -> Daemon.t
(** Fails (raises) with probability [rate] per message, otherwise
    behaves like the wrapped daemon. *)

val broken : Daemon.t -> Daemon.t
(** Always fails. *)

val switched : (unit -> bool) -> Daemon.t -> Daemon.t
(** Fails while the predicate returns true — outage windows for the
    chaos suite (e.g. keyed to the orchestrator's virtual clock). *)

val breakable : Daemon.t -> Daemon.t * (bool -> unit)
(** A daemon with a health switch: starts {e down} (always failing);
    call the returned function with [true] to heal it, [false] to
    break it again — the redelivery scenario's "the party came back
    up". *)

val crashing : at_call:int -> Daemon.t -> Daemon.t
(** Raises {!Crash} on exactly the [at_call]-th handled message (then
    behaves normally) — the orchestrator treats this as a simulated
    process death, not a retryable daemon failure. *)

val failure_message : string
(** The message carried by injected failures (stable for tests). *)

(** {1 Crash points (durability testing)}

    Process-wide simulated crashes, disarmed by default, used by the
    recovery fuzzer (see [test/test_recovery.ml]) to kill the
    durability layer mid-write.  A "crash" is the {!Crash} exception
    escaping the write path — the process survives, but the on-disk
    state is whatever the torn write left behind, exactly as after
    [kill -9]. *)

exception Crash of string
(** Raised by {!crash_hit} at an armed point, and by fault-aware
    writers when {!write_allowance} truncates a write. *)

val reset_faults : unit -> unit
(** Disarm everything (call in test teardown). *)

val arm_crash : string -> after:int -> unit
(** [arm_crash point ~after] makes the [after+1]-th {!crash_hit} on
    [point] raise {!Crash}.  Only one point is armed at a time. *)

val crash_hit : string -> unit
(** Declare a crash point; raises {!Crash} when armed and due.
    Checkpoint protocol steps call this ([checkpoint.snapshot],
    [checkpoint.rename], [checkpoint.meta], [checkpoint.commit],
    [checkpoint.gc]). *)

val arm_torn_write : bytes:int -> unit
(** Allow [bytes] more bytes to reach disk through fault-aware
    writers, then tear the write that exceeds the budget. *)

val write_allowance : int -> int option
(** [write_allowance n] asks to write [n] bytes: [None] means write
    them all; [Some k] (with [k < n]) means write exactly the first
    [k] bytes and raise {!Crash} — the caller must honour this.
    Disarms the budget when it tears. *)
