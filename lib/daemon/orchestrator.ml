module Clock = Mirror_util.Clock

type config = {
  ttl : float;
  tick : float;
  capacity : int option;
  policy : Bus.overflow_policy;
  breaker : Supervisor.config;
  barriers : (string * string list) list;
}

let default_config =
  {
    ttl = 30.0;
    tick = 1.0;
    capacity = Some 256;
    policy = Bus.Backpressure;
    breaker = Supervisor.default_config;
    barriers = [ ("collection.complete", [ "image.new"; "segments.ready" ]) ];
  }

type daemon_stats = {
  name : string;
  handled : int;
  produced : int;
  failures : int;
  cpu_seconds : float;
}

type report = {
  rounds : int;
  quiescent : bool;
  pending : int;
  degraded : string list;
  stats : daemon_stats list;
  dead_letters : Deadletter.entry list;
}

type mutable_stats = {
  mutable m_handled : int;
  mutable m_produced : int;
  mutable m_failures : int;
  mutable m_cpu : float;
}

type t = {
  context : Daemon.ctx;
  daemons : Daemon.t list;
  tallies : (string, mutable_stats) Hashtbl.t;
  config : config;
  clk : Clock.t;
  sup : Supervisor.t;
  dlq : Deadletter.t;
}

let initial_schema =
  "SET< TUPLE< Atomic<URL>: source, Atomic<Text>: annotation, Atomic<Image>: image > >"

let create ?daemons ?clock ?(seed = 7901) ?(config = default_config) () =
  let daemons = match daemons with Some ds -> ds | None -> Standard.all () in
  let clk = match clock with Some c -> c | None -> Clock.virtual_ () in
  let context =
    {
      Daemon.bus = Bus.create ?capacity:config.capacity ~policy:config.policy ();
      media = Media.create ();
      dict = Dictionary.create ();
      store = Store.create ();
    }
  in
  Dictionary.register context.Daemon.dict ~name:"ImageLibrary" ~schema:initial_schema
    ~owner:"application";
  let tallies = Hashtbl.create 16 in
  List.iter
    (fun (d : Daemon.t) ->
      Hashtbl.replace tallies d.Daemon.name
        { m_handled = 0; m_produced = 0; m_failures = 0; m_cpu = 0.0 };
      List.iter (fun topic -> Bus.subscribe context.Daemon.bus ~topic ~name:d.Daemon.name)
        d.Daemon.topics)
    daemons;
  let dlq = Deadletter.create () in
  (* Sheds under [Shed_oldest] are dead letters too: nothing leaves the
     bus without an attributable record. *)
  Bus.set_overflow_handler context.Daemon.bus
    (Some
       (fun name delivery ->
         Deadletter.add dlq
           { Deadletter.daemon = name; delivery; cause = Deadletter.Overflow;
             at = Clock.now clk }));
  let sup = Supervisor.create ~config:config.breaker ~clock:clk ~seed () in
  { context; daemons; tallies; config; clk; sup; dlq }

let ctx t = t.context
let clock t = t.clk
let supervisor t = t.sup
let dead_letters t = Deadletter.entries t.dlq

let redeliver ?daemon t =
  let letters = Deadletter.take ?daemon t.dlq in
  List.iter
    (fun (e : Deadletter.entry) ->
      Supervisor.reset t.sup e.Deadletter.daemon;
      let d = e.Deadletter.delivery in
      d.Bus.attempts <- 0;
      d.Bus.deadline <- None;
      Bus.requeue_delivery t.context.Daemon.bus ~name:e.Deadletter.daemon d;
      if Mirror_util.Metrics.enabled () then
        Mirror_util.Metrics.incr "deadletter.redelivered")
    letters;
  List.length letters

let ingest_image t ~doc ~url ?annotation img =
  Media.put t.context.Daemon.media ~url img;
  Store.register_doc t.context.Daemon.store ~doc ~url;
  Bus.publish t.context.Daemon.bus
    { Bus.topic = "image.new"; subject = doc; payload = [ ("url", url) ] };
  match annotation with
  | None -> ()
  | Some text ->
    Bus.publish t.context.Daemon.bus
      { Bus.topic = "annotation.new"; subject = doc; payload = [ ("text", text) ] }

let complete_collection t =
  Bus.publish t.context.Daemon.bus
    { Bus.topic = "collection.complete"; subject = -1; payload = [] }

let formulate t text =
  let bus = t.context.Daemon.bus in
  let reply = "client.formulated" in
  Bus.subscribe bus ~topic:reply ~name:"client";
  Bus.publish bus
    { Bus.topic = "query.formulate"; subject = -1; payload = [ ("text", text); ("reply", reply) ] }

let formulated t =
  let bus = t.context.Daemon.bus in
  match Bus.fetch bus ~name:"client" with
  | None -> None
  | Some m -> (
    match Bus.attr m "concepts" with
    | None -> Some []
    | Some enc ->
      Some
        (Mirror_util.Stringx.split_on (fun c -> c = ';') enc
        |> List.filter_map (fun pair ->
               match String.index_opt pair '=' with
               | None -> None
               | Some i ->
                 let c = String.sub pair 0 i in
                 let w = String.sub pair (i + 1) (String.length pair - i - 1) in
                 Option.map (fun w -> (c, w)) (float_of_string_opt w))))

(* Exceptions that are not daemon failures but simulated process
   deaths: never consume retry budget by swallowing them — requeue the
   in-flight delivery and let the caller restart. *)
let is_fatal = function
  | Faults.Crash _ | Out_of_memory | Stack_overflow -> true
  | _ -> false

let run ?(max_retries = 2) ?(max_rounds = 1000) ?(trace = Mirror_util.Trace.null) t =
  let module Trace = Mirror_util.Trace in
  let module Metrics = Mirror_util.Metrics in
  let bus = t.context.Daemon.bus in
  let rounds = ref 0 in
  let fatal : exn option ref = ref None in
  let dead_before = Deadletter.count t.dlq in
  let dead_count () = Deadletter.count t.dlq - dead_before in
  let pending_daemons () =
    List.fold_left
      (fun acc (d : Daemon.t) -> acc + Bus.pending_for bus ~name:d.Daemon.name)
      0 t.daemons
  in
  let add_dead name delivery cause =
    Deadletter.add t.dlq
      { Deadletter.daemon = name; delivery; cause; at = Clock.now t.clk };
    if Metrics.enabled () then Metrics.incr "deadletter.count"
  in
  (* A barrier delivery is held while any awaited topic still has
     in-flight deliveries or dead letters: the downstream daemon must
     not consume its trigger before upstream work has resolved. *)
  let barrier_held (m : Bus.message) =
    match List.assoc_opt m.Bus.topic t.config.barriers with
    | None -> false
    | Some awaits ->
      List.exists
        (fun topic ->
          Bus.pending_by_topic bus ~topic > 0 || Deadletter.exists_topic t.dlq topic)
        awaits
  in
  Supervisor.set_listener t.sup
    (Some
       (fun name st ->
         if Trace.is_on trace then
           Trace.event trace "breaker"
             ~attrs:[ ("daemon", name); ("state", Supervisor.state_to_string st) ]));
  Fun.protect ~finally:(fun () -> Supervisor.set_listener t.sup None) @@ fun () ->
  Trace.enter trace "orchestrator.run";
  let continue_ = ref (pending_daemons () > 0) in
  while !continue_ && !fatal = None && !rounds < max_rounds do
    incr rounds;
    Trace.enter trace (Printf.sprintf "round %d" !rounds);
    let attempts_this_round = ref 0 in
    let dead_at_round_start = dead_count () in
    List.iter
      (fun (d : Daemon.t) ->
        if !fatal = None then begin
          let name = d.Daemon.name in
          let tally = Hashtbl.find t.tallies name in
          let handled_before = tally.m_handled in
          let now = Clock.now t.clk in
          (* Stamp fresh deliveries with their deadline; expire overdue
             ones into the dead-letter queue. *)
          let expired =
            Bus.sweep bus ~name ~keep:(fun (dv : Bus.delivery) ->
                match dv.Bus.deadline with
                | None ->
                  dv.Bus.deadline <- Some (now +. t.config.ttl);
                  true
                | Some dl -> dl > now)
          in
          List.iter
            (fun dv ->
              add_dead name dv
                (Deadletter.Expired
                   (Supervisor.state_to_string (Supervisor.state t.sup name))))
            expired;
          if Metrics.enabled () then
            Metrics.observe ("daemon." ^ name ^ ".depth")
              (float_of_int (Bus.queued bus ~name));
          (* Handle at most the messages present at round start (so a
             daemon whose output feeds its own inbox cannot monopolise
             a round), gated by the breaker: open = skip, half-open =
             one probe delivery. *)
          let budget =
            match Supervisor.state t.sup name with
            | Supervisor.Open _ -> 0
            | Supervisor.Half_open -> min 1 (Bus.queued bus ~name)
            | Supervisor.Closed -> Bus.queued bus ~name
          in
          let rec drain budget =
            if budget > 0 && !fatal = None && Supervisor.allow t.sup name then
              match Bus.fetch_delivery bus ~name with
              | None -> ()
              | Some dv ->
                if barrier_held dv.Bus.message then
                  (* Put it back and stop: the trigger waits for
                     upstream work to resolve. *)
                  Bus.requeue_delivery bus ~name dv
                else begin
                  dv.Bus.attempts <- dv.Bus.attempts + 1;
                  incr attempts_this_round;
                  let m_on = Metrics.enabled () in
                  let w0 = if m_on then Trace.now () else 0.0 in
                  let t0 = Sys.time () in
                  (match d.Daemon.handle t.context dv.Bus.message with
                  | out ->
                    tally.m_cpu <- tally.m_cpu +. (Sys.time () -. t0);
                    tally.m_handled <- tally.m_handled + 1;
                    tally.m_produced <- tally.m_produced + List.length out;
                    Supervisor.success t.sup name;
                    if m_on then begin
                      Metrics.incr ("daemon." ^ name ^ ".handled");
                      Metrics.observe ("daemon." ^ name ^ ".ms")
                        (1000.0 *. (Trace.now () -. w0))
                    end;
                    List.iter (Bus.publish bus) out
                  | exception e when is_fatal e ->
                    tally.m_cpu <- tally.m_cpu +. (Sys.time () -. t0);
                    tally.m_failures <- tally.m_failures + 1;
                    Bus.requeue_delivery bus ~name dv;
                    fatal := Some e
                  | exception e ->
                    tally.m_cpu <- tally.m_cpu +. (Sys.time () -. t0);
                    tally.m_failures <- tally.m_failures + 1;
                    Supervisor.failure t.sup name;
                    if m_on then Metrics.incr ("daemon." ^ name ^ ".failures");
                    if dv.Bus.attempts <= max_retries then
                      Bus.requeue_delivery bus ~name dv
                    else add_dead name dv (Deadletter.Failed (Printexc.to_string e)));
                  drain (budget - 1)
                end
          in
          if budget > 0 && Trace.is_on trace then begin
            Trace.enter trace name;
            drain budget;
            Trace.leave ~rows:(tally.m_handled - handled_before) trace
          end
          else drain budget
        end)
      t.daemons;
    let dead_delta = dead_count () - dead_at_round_start in
    Trace.leave
      ~attrs:[ ("attempts", string_of_int !attempts_this_round);
               ("dead", string_of_int dead_delta) ]
      trace;
    if Clock.is_virtual t.clk then Clock.advance t.clk t.config.tick;
    (* Keep pumping while the round did something, or while an open
       breaker guards pending work (advancing time will half-open it,
       or the backlog will expire).  Anything else is a stall no amount
       of rounds can fix — stop and report it honestly. *)
    let can_unblock () =
      List.exists
        (fun (d : Daemon.t) ->
          Bus.pending_for bus ~name:d.Daemon.name > 0
          && Supervisor.state t.sup d.Daemon.name <> Supervisor.Closed)
        t.daemons
    in
    continue_ :=
      pending_daemons () > 0
      && (!attempts_this_round > 0 || dead_delta > 0 || can_unblock ())
  done;
  let pending = pending_daemons () in
  Trace.leave
    ~attrs:
      [
        ("rounds", string_of_int !rounds);
        ("pending", string_of_int pending);
        ("dead_letters", string_of_int (dead_count ()));
      ]
    trace;
  (match !fatal with Some e -> raise e | None -> ());
  let stats =
    List.map
      (fun (d : Daemon.t) ->
        let m = Hashtbl.find t.tallies d.Daemon.name in
        {
          name = d.Daemon.name;
          handled = m.m_handled;
          produced = m.m_produced;
          failures = m.m_failures;
          cpu_seconds = m.m_cpu;
        })
      t.daemons
  in
  let degraded =
    List.filter_map
      (fun (d : Daemon.t) ->
        let name = d.Daemon.name in
        if
          Supervisor.state t.sup name <> Supervisor.Closed
          || Deadletter.for_daemon t.dlq name <> []
        then Some name
        else None)
      t.daemons
  in
  let dead_letters =
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
    drop dead_before (Deadletter.entries t.dlq)
  in
  { rounds = !rounds; quiescent = pending = 0; pending; degraded; stats; dead_letters }
