type daemon_stats = {
  name : string;
  handled : int;
  produced : int;
  failures : int;
  cpu_seconds : float;
}

type report = {
  rounds : int;
  stats : daemon_stats list;
  dead_letters : (string * Bus.message) list;
}

type mutable_stats = {
  mutable m_handled : int;
  mutable m_produced : int;
  mutable m_failures : int;
  mutable m_cpu : float;
}

type t = {
  context : Daemon.ctx;
  daemons : Daemon.t list;
  tallies : (string, mutable_stats) Hashtbl.t;
}

let initial_schema =
  "SET< TUPLE< Atomic<URL>: source, Atomic<Text>: annotation, Atomic<Image>: image > >"

let create ?daemons () =
  let daemons = match daemons with Some ds -> ds | None -> Standard.all () in
  let context =
    {
      Daemon.bus = Bus.create ();
      media = Media.create ();
      dict = Dictionary.create ();
      store = Store.create ();
    }
  in
  Dictionary.register context.Daemon.dict ~name:"ImageLibrary" ~schema:initial_schema
    ~owner:"application";
  let tallies = Hashtbl.create 16 in
  List.iter
    (fun (d : Daemon.t) ->
      Hashtbl.replace tallies d.Daemon.name
        { m_handled = 0; m_produced = 0; m_failures = 0; m_cpu = 0.0 };
      List.iter (fun topic -> Bus.subscribe context.Daemon.bus ~topic ~name:d.Daemon.name)
        d.Daemon.topics)
    daemons;
  { context; daemons; tallies }

let ctx t = t.context

let ingest_image t ~doc ~url ?annotation img =
  Media.put t.context.Daemon.media ~url img;
  Store.register_doc t.context.Daemon.store ~doc ~url;
  Bus.publish t.context.Daemon.bus
    { Bus.topic = "image.new"; subject = doc; payload = [ ("url", url) ] };
  match annotation with
  | None -> ()
  | Some text ->
    Bus.publish t.context.Daemon.bus
      { Bus.topic = "annotation.new"; subject = doc; payload = [ ("text", text) ] }

let complete_collection t =
  Bus.publish t.context.Daemon.bus
    { Bus.topic = "collection.complete"; subject = -1; payload = [] }

let formulate t text =
  let bus = t.context.Daemon.bus in
  let reply = "client.formulated" in
  Bus.subscribe bus ~topic:reply ~name:"client";
  Bus.publish bus
    { Bus.topic = "query.formulate"; subject = -1; payload = [ ("text", text); ("reply", reply) ] }

let formulated t =
  let bus = t.context.Daemon.bus in
  match Bus.fetch bus ~name:"client" with
  | None -> None
  | Some m -> (
    match Bus.attr m "concepts" with
    | None -> Some []
    | Some enc ->
      Some
        (Mirror_util.Stringx.split_on (fun c -> c = ';') enc
        |> List.filter_map (fun pair ->
               match String.index_opt pair '=' with
               | None -> None
               | Some i ->
                 let c = String.sub pair 0 i in
                 let w = String.sub pair (i + 1) (String.length pair - i - 1) in
                 Option.map (fun w -> (c, w)) (float_of_string_opt w))))

let run ?(max_retries = 2) ?(max_rounds = 1000) ?(trace = Mirror_util.Trace.null) t =
  let module Trace = Mirror_util.Trace in
  let module Metrics = Mirror_util.Metrics in
  let bus = t.context.Daemon.bus in
  let dead = ref [] in
  let attempts : (string * Bus.message, int) Hashtbl.t = Hashtbl.create 64 in
  let rounds = ref 0 in
  Trace.enter trace "orchestrator.run";
  while Bus.pending bus > 0 && !rounds < max_rounds do
    incr rounds;
    Trace.enter trace (Printf.sprintf "round %d" !rounds);
    List.iter
      (fun (d : Daemon.t) ->
        let tally = Hashtbl.find t.tallies d.Daemon.name in
        let handled_before = tally.m_handled in
        (* handle at most the messages present at round start, so a
           daemon whose output feeds its own inbox cannot monopolise a
           round (the rounds guard then catches livelock) *)
        let rec drain budget =
          if budget = 0 then ()
          else
            match Bus.fetch bus ~name:d.Daemon.name with
            | None -> ()
            | Some m ->
            let m_on = Metrics.enabled () in
            let w0 = if m_on then Trace.now () else 0.0 in
            let t0 = Sys.time () in
            (match d.Daemon.handle t.context m with
            | out ->
              tally.m_cpu <- tally.m_cpu +. (Sys.time () -. t0);
              tally.m_handled <- tally.m_handled + 1;
              tally.m_produced <- tally.m_produced + List.length out;
              if m_on then begin
                Metrics.incr ("daemon." ^ d.Daemon.name ^ ".handled");
                Metrics.observe ("daemon." ^ d.Daemon.name ^ ".ms")
                  (1000.0 *. (Trace.now () -. w0))
              end;
              List.iter (Bus.publish bus) out
            | exception _ ->
              tally.m_cpu <- tally.m_cpu +. (Sys.time () -. t0);
              tally.m_failures <- tally.m_failures + 1;
              if m_on then Metrics.incr ("daemon." ^ d.Daemon.name ^ ".failures");
              let key = (d.Daemon.name, m) in
              let tries = Option.value ~default:0 (Hashtbl.find_opt attempts key) in
              if tries < max_retries then begin
                Hashtbl.replace attempts key (tries + 1);
                Bus.requeue bus ~name:d.Daemon.name m
              end
              else dead := (d.Daemon.name, m) :: !dead);
              drain (budget - 1)
        in
        let budget = Bus.queued bus ~name:d.Daemon.name in
        if budget > 0 && Trace.is_on trace then begin
          Trace.enter trace d.Daemon.name;
          drain budget;
          Trace.leave ~rows:(tally.m_handled - handled_before) trace
        end
        else drain budget)
      t.daemons;
    Trace.leave trace
  done;
  Trace.leave
    ~attrs:
      [
        ("rounds", string_of_int !rounds);
        ("dead_letters", string_of_int (List.length !dead));
      ]
    trace;
  let stats =
    List.map
      (fun (d : Daemon.t) ->
        let m = Hashtbl.find t.tallies d.Daemon.name in
        {
          name = d.Daemon.name;
          handled = m.m_handled;
          produced = m.m_produced;
          failures = m.m_failures;
          cpu_seconds = m.m_cpu;
        })
      t.daemons
  in
  { rounds = !rounds; stats; dead_letters = List.rev !dead }
