module Atom = Mirror_bat.Atom
module Types = Mirror_core.Types
module Value = Mirror_core.Value
module Parser = Mirror_core.Parser

type t =
  | Define of string * Types.t
  | Replace of string * Value.t list
  | Feedback of { query : string; judgements : (string * bool) list }
  | Store_op of { tag : string; payload : string }

(* {1 Writer}

   Tagged binary: one tag character per node, 64-bit little-endian
   integers, length-prefixed strings.  Floats are stored as their bit
   pattern — [Value] round-trips must be exact, textual rendering is
   not. *)

let add_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_atom buf = function
  | Atom.Int i ->
    Buffer.add_char buf 'i';
    add_int buf i
  | Atom.Flt f ->
    Buffer.add_char buf 'f';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Atom.Str s ->
    Buffer.add_char buf 's';
    add_str buf s
  | Atom.Bool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Atom.Oid o ->
    Buffer.add_char buf 'o';
    add_int buf o

let rec add_value buf = function
  | Value.Atom a -> add_atom buf a
  | Value.Tup fields ->
    Buffer.add_char buf 'T';
    add_int buf (List.length fields);
    List.iter
      (fun (label, v) ->
        add_str buf label;
        add_value buf v)
      fields
  | Value.VSet items ->
    Buffer.add_char buf 'S';
    add_int buf (List.length items);
    List.iter (add_value buf) items
  | Value.Xv { ext; meta; items } ->
    Buffer.add_char buf 'X';
    add_str buf ext;
    add_int buf (List.length meta);
    List.iter (add_str buf) meta;
    add_int buf (List.length items);
    List.iter (add_value buf) items

let encode r =
  let buf = Buffer.create 256 in
  (match r with
  | Define (name, ty) ->
    Buffer.add_char buf 'D';
    add_str buf name;
    add_str buf (Types.to_string ty)
  | Replace (name, rows) ->
    Buffer.add_char buf 'R';
    add_str buf name;
    add_int buf (List.length rows);
    List.iter (add_value buf) rows
  | Feedback { query; judgements } ->
    Buffer.add_char buf 'F';
    add_str buf query;
    add_int buf (List.length judgements);
    List.iter
      (fun (url, rel) ->
        add_str buf url;
        Buffer.add_char buf (if rel then '\001' else '\000'))
      judgements
  | Store_op { tag; payload } ->
    Buffer.add_char buf 'N';
    add_str buf tag;
    add_str buf payload);
  Buffer.contents buf

(* {1 Reader} *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let need c n =
  if n < 0 || c.pos + n > String.length c.src then raise (Bad "truncated record")

let read_char c =
  need c 1;
  let ch = c.src.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let read_int c =
  need c 8;
  let v = Int64.to_int (String.get_int64_le c.src c.pos) in
  c.pos <- c.pos + 8;
  v

let read_str c =
  let n = read_int c in
  need c n;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let read_count c =
  let n = read_int c in
  (* an element costs at least one byte, so this also bounds recursion *)
  need c n;
  n

let read_bool c =
  match read_char c with
  | '\000' -> false
  | '\001' -> true
  | ch -> raise (Bad (Printf.sprintf "bad boolean byte %C" ch))

(* strictly left-to-right (the cursor is stateful) *)
let read_list c n f =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f c :: acc) in
  go n []

let rec read_value c =
  match read_char c with
  | 'i' -> Value.Atom (Atom.Int (read_int c))
  | 'f' ->
    need c 8;
    let bits = String.get_int64_le c.src c.pos in
    c.pos <- c.pos + 8;
    Value.Atom (Atom.Flt (Int64.float_of_bits bits))
  | 's' -> Value.Atom (Atom.Str (read_str c))
  | 'b' -> Value.Atom (Atom.Bool (read_bool c))
  | 'o' -> Value.Atom (Atom.Oid (read_int c))
  | 'T' ->
    let n = read_count c in
    Value.Tup
      (read_list c n (fun c ->
           let label = read_str c in
           (label, read_value c)))
  | 'S' ->
    let n = read_count c in
    Value.VSet (read_list c n read_value)
  | 'X' ->
    let ext = read_str c in
    let meta = read_list c (read_count c) read_str in
    let items = read_list c (read_count c) read_value in
    Value.Xv { ext; meta; items }
  | ch -> raise (Bad (Printf.sprintf "unknown value tag %C" ch))

let decode payload =
  let c = { src = payload; pos = 0 } in
  let finish r =
    if c.pos <> String.length payload then Error "trailing bytes in record" else Ok r
  in
  match
    match read_char c with
    | 'D' ->
      let name = read_str c in
      let tys = read_str c in
      Result.map (fun ty -> Define (name, ty)) (Parser.parse_type tys)
    | 'R' ->
      let name = read_str c in
      let n = read_count c in
      Ok (Replace (name, read_list c n read_value))
    | 'F' ->
      let query = read_str c in
      let n = read_count c in
      let judgements =
        read_list c n (fun c ->
            let url = read_str c in
            (url, read_bool c))
      in
      Ok (Feedback { query; judgements })
    | 'N' ->
      let tag = read_str c in
      let payload = read_str c in
      Ok (Store_op { tag; payload })
    | ch -> Error (Printf.sprintf "unknown record tag %C" ch)
  with
  | Ok r -> finish r
  | Error _ as e -> e
  | exception Bad msg -> Error msg

let describe = function
  | Define (name, ty) -> Printf.sprintf "define %s as %s" name (Types.to_string ty)
  | Replace (name, rows) -> Printf.sprintf "replace %s (%d rows)" name (List.length rows)
  | Feedback { query; judgements } ->
    Printf.sprintf "feedback %S (%d judgements)" query (List.length judgements)
  | Store_op { tag; payload } ->
    Printf.sprintf "store-op %s (%d bytes)" tag (String.length payload)
