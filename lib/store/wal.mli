(** The segmented, checksummed write-ahead log.

    On disk a log is a directory of segment files named
    [wal.<first-lsn>.log]; a segment holds consecutive records framed
    as

    {v [len : u32 le][crc32(payload) : u32 le][payload bytes] v}

    LSNs are implicit: the [n]-th frame of a segment has LSN
    [first-lsn + n], so the framing stays self-describing and a
    segment's name states exactly which prefix of history it covers.

    Failure model on replay: a frame that runs past the end of the
    {e last} segment is a torn write — the normal shape of a crash
    mid-append, and everything before it is a good prefix.  A frame
    with an implausible length, a checksum mismatch, or truncation
    {e before} the last segment cannot be produced by an append-only
    writer crashing, so it is reported as corruption, never silently
    skipped. *)

type config = {
  segment_bytes : int;  (** roll to a new segment past this size *)
  fsync_batch : int;
      (** group commit: fsync once per this many appends (1 = every
          record; the OS-level write still happens on every append) *)
}

val default_config : config
(** 1 MiB segments, fsync on every append. *)

(** {1 Appending} *)

type stats = {
  appends : int;  (** records appended through this writer *)
  fsyncs : int;  (** successful fsync calls *)
  batches : int;
      (** fsyncs that made at least one append durable — a {e group
          commit}.  With [fsync_batch = 1] this tracks [appends]; with
          a larger batch (or explicit {!sync} calls covering several
          appends) [appends / batches] is the mean group size and
          [fsyncs / appends] the mean fsyncs paid per committed
          record. *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats
(** Field-wise sum — for accumulating across writer generations (the
    durable store swaps writers at each checkpoint). *)

type t
(** An open log writer. *)

val stats : t -> stats
(** Counters since {!create} on this writer. *)

val create : ?config:config -> dir:string -> start_lsn:int -> unit -> t
(** Open [dir] (created if missing) for appending, starting a fresh
    segment whose first record will carry [start_lsn].  An existing
    segment of that name is truncated (the caller has already replayed
    or checkpointed past it). *)

val append : t -> string -> int
(** Append one record, returning its LSN.  The frame is flushed to the
    OS on every append and fsynced per {!config.fsync_batch}.  Honours
    {!Mirror_daemon.Faults.write_allowance}: a torn-write fault writes
    a prefix of the frame and raises {!Mirror_daemon.Faults.Crash}.
    Raises [Sys_error] on a poisoned writer (see {!sync}). *)

val next_lsn : t -> int
(** LSN the next {!append} will return. *)

val sync : t -> unit
(** Flush and fsync now, regardless of batching.  A failed fsync
    raises [Sys_error] {e and poisons the writer} — after one failure
    the kernel may have dropped the dirty pages while reporting the
    error only once, so a later fsync succeeding proves nothing;
    every subsequent {!append}/{!sync} raises too.  The unsynced
    counter is {e not} reset on failure. *)

val close : t -> unit
(** Sync and close the current segment.  A poisoned writer is closed
    without the final sync (its appends are not durable anyway). *)

val frame : string -> bytes
(** The on-disk framing of one payload:
    [[u32 len][u32 crc32(payload)][payload]].  Exposed so other
    framed files (the checkpoint side-state file) share the format. *)

val parse_frames : string -> (string list, string) result
(** Strictly decode a byte string of consecutive {!frame}s.  Unlike
    {!replay} there is no torn-tail allowance: the input is expected
    to have been written atomically, so any truncation or checksum
    mismatch is an [Error]. *)

(** {1 Replay} *)

type replay_end =
  | Clean  (** log ends on a frame boundary *)
  | Torn of string  (** truncated tail frame (message says where) *)
  | Corrupt of string  (** mid-log damage or checksum mismatch *)

val replay :
  dir:string ->
  from_lsn:int ->
  f:(int -> string -> unit) ->
  (int * replay_end, string) result
(** Scan every segment in order, calling [f lsn payload] for each
    well-formed record with [lsn >= from_lsn].  Returns
    [(next_lsn, end_state)] where [next_lsn] is one past the last good
    record ([from_lsn] when the log is empty).  [Error] is reserved
    for an unreadable directory or non-contiguous segment names;
    damaged record data is reported through [end_state]. *)

val segments : dir:string -> (int * string) list
(** (first LSN, absolute path) of each segment, ascending.  Empty for
    a missing directory. *)
