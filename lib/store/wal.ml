module Crc32 = Mirror_util.Crc32
module Faults = Mirror_daemon.Faults
module Fsx = Mirror_util.Fsx
module Metrics = Mirror_util.Metrics

type config = { segment_bytes : int; fsync_batch : int }

let default_config = { segment_bytes = 1 lsl 20; fsync_batch = 1 }

(* Frames over [max_record] are rejected on both sides: the writer
   never produces them, so on replay an implausible length field is
   proof of damage rather than a huge allocation request. *)
let max_record = 1 lsl 26

let seg_name first_lsn = Printf.sprintf "wal.%012d.log" first_lsn

let segments ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun f ->
           match Scanf.sscanf_opt f "wal.%d.log%!" Fun.id with
           | Some first when seg_name first = f -> Some (first, Filename.concat dir f)
           | _ -> None)
    |> List.sort compare

(* {1 Appending} *)

type stats = { appends : int; fsyncs : int; batches : int }

let zero_stats = { appends = 0; fsyncs = 0; batches = 0 }

let add_stats a b =
  {
    appends = a.appends + b.appends;
    fsyncs = a.fsyncs + b.fsyncs;
    batches = a.batches + b.batches;
  }

type t = {
  dir : string;
  config : config;
  mutable oc : out_channel;
  mutable seg_bytes : int;
  mutable next : int;
  mutable unsynced : int;
  mutable broken : string option;
  mutable appends : int;
  mutable fsyncs : int;
  mutable batches : int;
}

let open_segment dir first_lsn =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin (Filename.concat dir (seg_name first_lsn)) in
  (* persist the segment's directory entry: data fsyncs on the fd
     alone would not survive losing the file name itself *)
  Fsx.fsync_dir dir;
  oc

let create ?(config = default_config) ~dir ~start_lsn () =
  {
    dir;
    config;
    oc = open_segment dir start_lsn;
    seg_bytes = 0;
    next = start_lsn;
    unsynced = 0;
    broken = None;
    appends = 0;
    fsyncs = 0;
    batches = 0;
  }

let stats t = { appends = t.appends; fsyncs = t.fsyncs; batches = t.batches }

let next_lsn t = t.next

let check_broken t =
  match t.broken with Some m -> raise (Sys_error m) | None -> ()

(* A failed fsync leaves the page cache in an unknown state (the
   kernel may have dropped the dirty pages while reporting the error
   once), so a later successful fsync proves nothing about earlier
   appends.  The only sound reaction is to poison the writer: the
   error propagates now and on every subsequent use. *)
let sync t =
  check_broken t;
  flush t.oc;
  (try Unix.fsync (Unix.descr_of_out_channel t.oc)
   with Unix.Unix_error (err, _, _) ->
     let m = "WAL fsync failed, log writer poisoned: " ^ Unix.error_message err in
     t.broken <- Some m;
     raise (Sys_error m));
  t.fsyncs <- t.fsyncs + 1;
  if t.unsynced > 0 then t.batches <- t.batches + 1;
  t.unsynced <- 0

let roll t =
  sync t;
  close_out t.oc;
  t.oc <- open_segment t.dir t.next;
  t.seg_bytes <- 0

let frame payload =
  let len = String.length payload in
  if len > max_record then invalid_arg "Wal.append: record too large";
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (Crc32.string payload));
  Bytes.blit_string payload 0 b 8 len;
  b

let append t payload =
  check_broken t;
  if t.seg_bytes >= t.config.segment_bytes then roll t;
  let b = frame payload in
  (match Faults.write_allowance (Bytes.length b) with
  | None -> output_bytes t.oc b
  | Some k ->
    output_bytes t.oc (Bytes.sub b 0 k);
    flush t.oc;
    raise (Faults.Crash (Printf.sprintf "torn WAL append (%d of %d bytes)" k (Bytes.length b))));
  t.seg_bytes <- t.seg_bytes + Bytes.length b;
  let lsn = t.next in
  t.next <- lsn + 1;
  t.unsynced <- t.unsynced + 1;
  t.appends <- t.appends + 1;
  if t.unsynced >= t.config.fsync_batch then sync t else flush t.oc;
  if Metrics.enabled () then begin
    Metrics.incr "wal.append";
    Metrics.incr ~by:(Bytes.length b) "wal.bytes"
  end;
  lsn

let close t =
  match t.broken with
  | Some _ -> close_out_noerr t.oc
  | None ->
    sync t;
    close_out t.oc

(* Strict scan of a framed byte string (no torn-tail allowance): used
   for framed files that are written atomically, where any damage at
   all is corruption rather than a crash shape. *)
let parse_frames src =
  let len = String.length src in
  let rec go pos acc =
    if pos = len then Ok (List.rev acc)
    else if pos + 8 > len then Error "truncated frame header"
    else
      let rlen = Int32.to_int (String.get_int32_le src pos) in
      let crc = Int32.to_int (String.get_int32_le src (pos + 4)) land 0xFFFFFFFF in
      if rlen < 0 || rlen > max_record then
        Error (Printf.sprintf "implausible frame length %d" rlen)
      else if pos + 8 + rlen > len then Error "truncated frame payload"
      else
        let payload = String.sub src (pos + 8) rlen in
        if Crc32.string payload <> crc then Error "frame checksum mismatch"
        else go (pos + 8 + rlen) (payload :: acc)
  in
  go 0 []

(* {1 Replay} *)

type replay_end = Clean | Torn of string | Corrupt of string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Scan one segment.  Returns the LSN after its last good record and
   how it ended; [Torn] is only legitimate in the final segment. *)
let scan_segment ~is_last ~first_lsn ~from_lsn ~f path =
  let src = read_file path in
  let len = String.length src in
  let where lsn = Printf.sprintf "%s, record %d" (Filename.basename path) lsn in
  let rec go pos lsn =
    if pos = len then (lsn, Clean)
    else if pos + 8 > len then
      if is_last then (lsn, Torn (where lsn ^ ": truncated frame header"))
      else (lsn, Corrupt (where lsn ^ ": truncated frame header mid-log"))
    else
      let rlen = Int32.to_int (String.get_int32_le src pos) in
      let crc = Int32.to_int (String.get_int32_le src (pos + 4)) land 0xFFFFFFFF in
      if rlen < 0 || rlen > max_record then
        (lsn, Corrupt (Printf.sprintf "%s: implausible record length %d" (where lsn) rlen))
      else if pos + 8 + rlen > len then
        if is_last then (lsn, Torn (where lsn ^ ": truncated record payload"))
        else (lsn, Corrupt (where lsn ^ ": truncated record payload mid-log"))
      else
        let payload = String.sub src (pos + 8) rlen in
        if Crc32.string payload <> crc then
          (lsn, Corrupt (where lsn ^ ": record checksum mismatch"))
        else begin
          if lsn >= from_lsn then f lsn payload;
          go (pos + 8 + rlen) (lsn + 1)
        end
  in
  go 0 first_lsn

let replay ~dir ~from_lsn ~f =
  match segments ~dir with
  | [] -> Ok (from_lsn, Clean)
  | (first0, _) :: _ when first0 > from_lsn ->
    Error (Printf.sprintf "WAL starts at LSN %d, after the requested %d" first0 from_lsn)
  | (first0, _) :: _ as segs ->
    (* Segments must tile history contiguously: each starts where the
       previous one's record count left off.  A gap means a segment
       went missing — corruption, not a prefix. *)
    let rec loop segs expected =
      match segs with
      | [] -> Ok (max expected from_lsn, Clean)
      | (first, path) :: rest -> (
        if first <> expected then
          Ok
            ( max expected from_lsn,
              Corrupt
                (Printf.sprintf "segment %s starts at LSN %d, expected %d"
                   (Filename.basename path) first expected) )
        else
          match scan_segment ~is_last:(rest = []) ~first_lsn:first ~from_lsn ~f path with
          | exception Sys_error e -> Error e
          | next, Clean -> loop rest next
          | next, end_ -> Ok (max next from_lsn, end_))
    in
    loop segs first0
