(** Logical write-ahead-log records and their binary codec.

    The log is *logical*: each record describes one completed update
    at the storage-manager level (extent DDL, whole-extent replacement
    — the copying DML discipline of {!Mirror_core.Storage} makes that
    the natural granularity), one relevance-feedback judgement, or one
    opaque daemon-store write.  Redo is idempotent by construction:
    [Replace] carries the complete post-state of the extent, so
    applying a record twice (or applying it to a state that already
    includes it) converges to the same database.

    The codec round-trips exactly: floats travel as their IEEE-754
    bits, strings length-prefixed, so a replayed database is
    bit-for-bit the one that was logged. *)

type t =
  | Define of string * Mirror_core.Types.t  (** [define <name> as <ty>] *)
  | Replace of string * Mirror_core.Value.t list
      (** Full new contents of an extent (load / insert / delete). *)
  | Feedback of { query : string; judgements : (string * bool) list }
      (** A {!Mirror_core.Mirror.give_feedback} call. *)
  | Store_op of { tag : string; payload : string }
      (** A daemon metadata-store write ({!Mirror_daemon.Store}
          journal record), kept opaque here. *)

val encode : t -> string
(** Serialise to the WAL payload form. *)

val decode : string -> (t, string) result
(** Parse a payload produced by {!encode}.  Total: malformed input
    yields [Error], never an exception. *)

val describe : t -> string
(** One-line human rendering for [wal status] and diagnostics. *)
