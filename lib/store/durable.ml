module Storage = Mirror_core.Storage
module Persist = Mirror_core.Persist
module Mirror = Mirror_core.Mirror
module Plancheck = Mirror_core.Plancheck
module Expr = Mirror_core.Expr
module Naive = Mirror_core.Naive
module Eval = Mirror_core.Eval
module Value = Mirror_core.Value
module Faults = Mirror_daemon.Faults
module Crc32 = Mirror_util.Crc32
module Fsx = Mirror_util.Fsx
module Metrics = Mirror_util.Metrics
module Trace = Mirror_util.Trace
module Stringx = Mirror_util.Stringx

let ( let* ) = Result.bind

type config = { wal : Wal.config; checkpoint_every : int }

let default_config = { wal = Wal.default_config; checkpoint_every = 0 }

type recovery = {
  replayed : int;
  wal_end : Wal.replay_end;
  feedback : (string * (string * bool) list) list;
  store_ops : (string * string) list;
}

type t = {
  dir : string;
  config : config;
  mir : Mirror.t;
  mutable wal : Wal.t;
  mutable checkpoint_lsn : int;
  mutable since : int;
  mutable side : Record.t list;
      (* Feedback/Store_op history, newest first.  [Persist.save] only
         captures [Storage]; the effects of these records live in
         session side state ([Mirror.t.adapt], the daemon store) that
         the snapshot cannot see, so their full history is carried in
         every snapshot's side-state file — otherwise checkpoint GC
         would delete the only copy. *)
  mutable in_checkpoint : bool;
  mutable last_error : string option;
  mutable closed : bool;
  mutable trace : Trace.t;
  mutable wal_hist : Wal.stats;
      (* counters of retired log writers: [checkpoint] replaces [wal]
         with a fresh one, so lifetime group-commit stats are the sum
         of this and the live writer's counters *)
}

let mirror t = t.mir
let storage t = Mirror.storage t.mir
let set_trace t tr = t.trace <- tr

(* {1 Layout} *)

let meta_file dir = Filename.concat dir "CHECKPOINT"
let wal_dir dir = Filename.concat dir "wal"
let snap_name lsn = Printf.sprintf "snap.%d" lsn

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* {1 The CHECKPOINT metadata file}

   Three [key value] lines plus a [%crc] footer; written to a temp
   file and renamed, which is the commit point of the whole checkpoint
   protocol. *)

let meta_body ~snap ~lsn ~next_store =
  Printf.sprintf "snap %s\nlsn %d\nnext_store %d\n" snap lsn next_store

let write_meta dir ~snap ~lsn ~next_store =
  let body = meta_body ~snap ~lsn ~next_store in
  let tmp = meta_file dir ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc body;
      Printf.fprintf oc "%%crc %s\n" (Crc32.to_hex (Crc32.string body));
      (* the rename below is only a commit if these bytes hit the disk
         first; without the fsync, power loss can persist the rename
         over an unwritten file and brick the store *)
      Fsx.fsync_out oc);
  tmp

let read_meta dir =
  match read_file (meta_file dir) with
  | exception Sys_error e -> Error e
  | src ->
    let rec split_footer body = function
      | [] | [ "" ] -> Error "CHECKPOINT is missing its %crc footer"
      | (line :: rest) when Stringx.starts_with ~prefix:"%crc " line && (rest = [] || rest = [ "" ])
        -> (
        let body = String.concat "" (List.rev_map (fun l -> l ^ "\n") body) in
        match Crc32.of_hex (String.trim (String.sub line 5 (String.length line - 5))) with
        | None -> Error "CHECKPOINT has a malformed %crc footer"
        | Some expect ->
          if Crc32.string body <> expect then Error "CHECKPOINT checksum mismatch"
          else Ok body)
      | line :: rest -> split_footer (line :: body) rest
    in
    let* body = split_footer [] (String.split_on_char '\n' src) in
    let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
    let field key =
      let prefix = key ^ " " in
      match List.find_opt (Stringx.starts_with ~prefix) lines with
      | Some l ->
        Ok (String.sub l (String.length prefix) (String.length l - String.length prefix))
      | None -> Error ("CHECKPOINT is missing field " ^ key)
    in
    let* snap = field "snap" in
    let* lsn = field "lsn" in
    let* next_store = field "next_store" in
    (match (int_of_string_opt lsn, int_of_string_opt next_store) with
    | Some lsn, Some next_store -> Ok (snap, lsn, next_store)
    | _ -> Error "CHECKPOINT has non-numeric fields")

(* {1 The snapshot side-state file}

   [Persist.save] captures Storage (schema + catalog) only.  Feedback
   and Store_op records act on state outside Storage — thesaurus
   adaptation in [Mirror.t.adapt], the daemon pipeline store — which
   recovery rebuilds by replaying the records themselves.  So that
   checkpoint GC can still truncate the log, each snapshot carries the
   full Feedback/Store_op history to date as [side.log] inside the
   snapshot directory: WAL-framed records, written and fsynced before
   the snapshot rename, hence covered by the CHECKPOINT commit point.
   Recovery's history is then always (snapshot side state) ++ (side
   records replayed from the log suffix). *)

let side_file snap_dir = Filename.concat snap_dir "side.log"

let write_side snap_dir side =
  let oc = open_out_bin (side_file snap_dir) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun r -> output_bytes oc (Wal.frame (Record.encode r))) side;
      Fsx.fsync_out oc)

let read_side snap_dir =
  match read_file (side_file snap_dir) with
  | exception Sys_error _ when not (Sys.file_exists (side_file snap_dir)) ->
    (* a bare [Persist.save] snapshot (no durable session) has no side
       state; the file is present, if empty, on every snapshot this
       module writes *)
    Ok []
  | exception Sys_error e -> Error ("snapshot side state: " ^ e)
  | src ->
    let* frames =
      Result.map_error (fun e -> "snapshot side state: " ^ e) (Wal.parse_frames src)
    in
    List.fold_left
      (fun acc payload ->
        let* records = acc in
        let* r =
          Result.map_error (fun e -> "snapshot side state: " ^ e) (Record.decode payload)
        in
        match r with
        | Record.Feedback _ | Record.Store_op _ -> Ok (r :: records)
        | Record.Define _ | Record.Replace _ ->
          Error "snapshot side state holds a storage record")
      (Ok []) frames
    |> Result.map List.rev

(* {1 Checkpointing}

   Protocol (each step bracketed by a crash point):
   1. write the snapshot — Storage via [Persist.save] plus the
      side-state file — into [snap.<lsn>.tmp], fsync, and rename it in
      place;
   2. write CHECKPOINT.tmp (fsynced) and rename it over CHECKPOINT,
      then fsync the directory — the commit;
   3. delete old snapshots and every log segment, oldest first (every
      logged record is now covered by the snapshot — storage records
      by the [Persist.save] state, side records by [side.log] — and
      oldest-first keeps any crash remnant a contiguous suffix the
      replayer accepts);
   4. start a fresh segment at [lsn + 1].
   A crash before 2 leaves the previous checkpoint authoritative; a
   crash after 2 leaves at worst orphan files that the next
   checkpoint's GC removes. *)

let commit_checkpoint ~dir ~wal_config ~stor ~side ~lsn ~old_wal =
  Faults.crash_hit "checkpoint.begin";
  let snap = snap_name lsn in
  let snap_path = Filename.concat dir snap in
  let tmp = snap_path ^ ".tmp" in
  rm_rf tmp;
  let* () = Persist.save stor ~dir:tmp in
  write_side tmp side;
  Faults.crash_hit "checkpoint.snapshot";
  if Sys.file_exists snap_path then rm_rf snap_path;
  Sys.rename tmp snap_path;
  Fsx.fsync_dir dir;
  Faults.crash_hit "checkpoint.rename";
  let meta_tmp = write_meta dir ~snap ~lsn ~next_store:(Storage.store_base stor) in
  Faults.crash_hit "checkpoint.meta";
  Sys.rename meta_tmp (meta_file dir);
  (* the durable commit point: only after this fsync may anything the
     old checkpoint and log cover be garbage-collected *)
  Fsx.fsync_dir dir;
  Faults.crash_hit "checkpoint.commit";
  (* past the commit every old-log record is covered by the snapshot,
     so a close failure on the outgoing writer loses nothing *)
  (match old_wal with
  | Some w -> ( try Wal.close w with Sys_error _ -> ())
  | None -> ());
  Array.iter
    (fun f ->
      if Stringx.starts_with ~prefix:"snap." f && f <> snap then
        rm_rf (Filename.concat dir f))
    (Sys.readdir dir);
  List.iter
    (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())
    (Wal.segments ~dir:(wal_dir dir));
  Faults.crash_hit "checkpoint.gc";
  Ok (Wal.create ~config:wal_config ~dir:(wal_dir dir) ~start_lsn:(lsn + 1) (), lsn)

let checkpoint t =
  if t.closed then Error "durable store is closed"
  else begin
    t.in_checkpoint <- true;
    Fun.protect
      ~finally:(fun () -> t.in_checkpoint <- false)
      (fun () ->
        let t0 = Trace.now () in
        Trace.enter t.trace "wal.checkpoint";
        let fin result =
          Trace.leave
            ~attrs:[ ("lsn", string_of_int (Wal.next_lsn t.wal - 1)) ]
            t.trace;
          if Metrics.enabled () then begin
            Metrics.incr "wal.checkpoint";
            Metrics.observe "wal.checkpoint.ms" ((Trace.now () -. t0) *. 1000.)
          end;
          result
        in
        match
          commit_checkpoint ~dir:t.dir ~wal_config:t.config.wal ~stor:(storage t)
            ~side:(List.rev t.side) ~lsn:(Wal.next_lsn t.wal - 1) ~old_wal:(Some t.wal)
        with
        | exception Sys_error e -> fin (Error e)
        | exception e ->
          ignore (fin (Error ""));
          raise e
        | Error _ as e -> fin e
        | Ok (wal, lsn) ->
          t.wal_hist <- Wal.add_stats t.wal_hist (Wal.stats t.wal);
          t.wal <- wal;
          t.checkpoint_lsn <- lsn;
          t.since <- 0;
          t.last_error <- None;
          fin (Ok ()))
  end

(* {1 The journal hooks} *)

let log_record t r =
  let lsn = Wal.append t.wal (Record.encode r) in
  (match r with
  | Record.Feedback _ | Record.Store_op _ -> t.side <- r :: t.side
  | Record.Define _ | Record.Replace _ -> ());
  Trace.event ~attrs:[ ("lsn", string_of_int lsn) ] t.trace "wal.append";
  t.since <- t.since + 1;
  if t.config.checkpoint_every > 0 && t.since >= t.config.checkpoint_every && not t.in_checkpoint
  then
    (* This hook runs inside Result-returning callers (Storage.define/
       load, feedback) after their in-memory mutation applied, so an
       auto-checkpoint failure must not raise through them.  The record
       itself is already appended — durability holds, only the log
       truncation failed — so stash the error ([status] surfaces it)
       and let the next append or the close-time checkpoint retry. *)
    match checkpoint t with
    | Ok () -> ()
    | Error e -> t.last_error <- Some ("auto-checkpoint: " ^ e)

let install_hooks t =
  Storage.set_journal (storage t)
    (Some
       (function
       | Storage.J_define (name, ty) -> log_record t (Record.Define (name, ty))
       | Storage.J_replace (name, rows) -> log_record t (Record.Replace (name, rows))));
  Mirror.set_feedback_hook t.mir
    (Some (fun ~query ~judgements -> log_record t (Record.Feedback { query; judgements })))

let store_journal t tag payload = log_record t (Record.Store_op { tag; payload })

(* {1 Open / recover} *)

let no_recovery = { replayed = 0; wal_end = Wal.Clean; feedback = []; store_ops = [] }

let mk t_dir config mir wal ~side ~checkpoint_lsn ~since =
  let t =
    {
      dir = t_dir;
      config;
      mir;
      wal;
      checkpoint_lsn;
      since;
      side = List.rev side;
      in_checkpoint = false;
      last_error = None;
      closed = false;
      trace = Trace.null;
      wal_hist = Wal.zero_stats;
    }
  in
  install_hooks t;
  t

let init_fresh ~dir ~(config : config) =
  (match Sys.file_exists dir with
  | false -> Sys.mkdir dir 0o755
  | true -> if not (Sys.is_directory dir) then failwith (dir ^ " is not a directory"));
  let mir = Mirror.create () in
  let* wal, lsn =
    commit_checkpoint ~dir ~wal_config:config.wal ~stor:(Mirror.storage mir) ~side:[]
      ~lsn:0 ~old_wal:None
  in
  Ok (mk dir config mir wal ~side:[] ~checkpoint_lsn:lsn ~since:0, no_recovery)

let recover ~dir ~(config : config) =
  let* snap, lsn, next_store = read_meta dir in
  let snap_path = Filename.concat dir snap in
  let* stor =
    Result.map_error
      (fun e -> Printf.sprintf "snapshot %s: %s" snap e)
      (Persist.load ~dir:snap_path)
  in
  Storage.bump_store_base stor (next_store - 1);
  let mir = Mirror.of_storage stor in
  (* The snapshot's side-state file restores the Feedback/Store_op
     history the log no longer holds (their effects are invisible to
     Persist); the log suffix then appends to it. *)
  let* snap_side = read_side snap_path in
  let replayed = ref 0 in
  let feedback = ref [] in
  let store_ops = ref [] in
  let side = ref [] in
  let note_side r =
    side := r :: !side;
    match r with
    | Record.Feedback { query; judgements } ->
      Mirror.replay_feedback mir ~query ~judgements;
      feedback := (query, judgements) :: !feedback
    | Record.Store_op { tag; payload } -> store_ops := (tag, payload) :: !store_ops
    | Record.Define _ | Record.Replace _ -> ()
  in
  List.iter note_side snap_side;
  let apply_err = ref None in
  let apply rec_lsn payload =
    if !apply_err = None then begin
      let fail fmt = Printf.ksprintf (fun m -> apply_err := Some m) fmt in
      match Record.decode payload with
      | Error e -> fail "record %d: %s" rec_lsn e
      | Ok r -> (
        incr replayed;
        match r with
        | Record.Define (name, ty) -> (
          match Storage.define stor ~name ty with
          | Ok () -> ()
          | Error e -> fail "redo of record %d (%s): %s" rec_lsn (Record.describe r) e)
        | Record.Replace (name, rows) -> (
          match Storage.load stor ~name rows with
          | Ok (_ : int list) -> ()
          | Error e -> fail "redo of record %d (%s): %s" rec_lsn (Record.describe r) e)
        | Record.Feedback _ | Record.Store_op _ -> note_side r)
    end
  in
  let* next, wal_end = Wal.replay ~dir:(wal_dir dir) ~from_lsn:(lsn + 1) ~f:apply in
  let* () =
    match wal_end with
    | Wal.Corrupt msg -> Error ("WAL corruption: " ^ msg)
    | Wal.Clean | Wal.Torn _ -> Ok ()
  in
  let* () = match !apply_err with Some e -> Error e | None -> Ok () in
  let recovery =
    {
      replayed = !replayed;
      wal_end;
      feedback = List.rev !feedback;
      store_ops = List.rev !store_ops;
    }
  in
  (* A replayed suffix or a torn tail leaves the log ahead of (or
     damaged behind) the snapshot: fold it into a fresh checkpoint so
     the store always restarts from a clean prefix.  The pre-commit
     disk state is untouched until the new CHECKPOINT renames in, so a
     crash during this re-checkpoint just recovers again. *)
  let side = List.rev !side in
  if !replayed > 0 || wal_end <> Wal.Clean then begin
    (* the log's last good record is [next - 1]: make the fresh
       snapshot claim exactly that prefix *)
    let* wal, ck_lsn =
      commit_checkpoint ~dir ~wal_config:config.wal ~stor ~side ~lsn:(next - 1)
        ~old_wal:None
    in
    Ok (mk dir config mir wal ~side ~checkpoint_lsn:ck_lsn ~since:0, recovery)
  end
  else
    let wal = Wal.create ~config:config.wal ~dir:(wal_dir dir) ~start_lsn:next () in
    Ok (mk dir config mir wal ~side ~checkpoint_lsn:lsn ~since:0, recovery)

let open_ ?(config = default_config) ~dir () =
  let t0 = Trace.now () in
  let fresh =
    (not (Sys.file_exists (meta_file dir))) && Wal.segments ~dir:(wal_dir dir) = []
  in
  let result =
    try if fresh then init_fresh ~dir ~config else recover ~dir ~config with
    | Sys_error e -> Error e
    | Failure e -> Error e
  in
  if Metrics.enabled () then begin
    Metrics.observe "wal.recovery.ms" ((Trace.now () -. t0) *. 1000.);
    match result with
    | Ok ((_ : t), r) -> Metrics.incr ~by:r.replayed "wal.replayed"
    | Error (_ : string) -> ()
  end;
  result

(* {1 Introspection} *)

type status = {
  next_lsn : int;
  checkpoint_lsn : int;
  since_checkpoint : int;
  segments : int;
  log_bytes : int;
  snapshot : string;
  last_error : string option;
  wal_appends : int;
  wal_fsyncs : int;
  wal_batches : int;
  fsyncs_per_commit : float;
}

let wal_stats t = Wal.add_stats t.wal_hist (Wal.stats t.wal)

let sync t =
  if t.closed then Error "durable store is closed"
  else
    match Wal.sync t.wal with
    | () -> Ok ()
    | exception Sys_error e -> Error e

let log_stats dir =
  let segs = Wal.segments ~dir:(wal_dir dir) in
  let bytes =
    List.fold_left
      (fun acc (_, path) ->
        match Unix.stat path with
        | { Unix.st_size; _ } -> acc + st_size
        | exception Unix.Unix_error _ -> acc)
      0 segs
  in
  (List.length segs, bytes)

let status t =
  let segments, log_bytes = log_stats t.dir in
  let ws = wal_stats t in
  {
    next_lsn = Wal.next_lsn t.wal;
    checkpoint_lsn = t.checkpoint_lsn;
    since_checkpoint = t.since;
    segments;
    log_bytes;
    snapshot = snap_name t.checkpoint_lsn;
    last_error = t.last_error;
    wal_appends = ws.Wal.appends;
    wal_fsyncs = ws.Wal.fsyncs;
    wal_batches = ws.Wal.batches;
    fsyncs_per_commit =
      (if ws.Wal.appends = 0 then 0. else float_of_int ws.Wal.fsyncs /. float_of_int ws.Wal.appends);
  }

let inspect ~dir =
  let* snap, lsn, (_ : int) = read_meta dir in
  let* next, wal_end =
    Wal.replay ~dir:(wal_dir dir) ~from_lsn:(lsn + 1) ~f:(fun (_ : int) (_ : string) -> ())
  in
  let segments, log_bytes = log_stats dir in
  Ok
    ( {
        next_lsn = next;
        checkpoint_lsn = lsn;
        since_checkpoint = next - 1 - lsn;
        segments;
        log_bytes;
        snapshot = snap;
        last_error = None;
        (* offline: the writer counters live in the owning process *)
        wal_appends = 0;
        wal_fsyncs = 0;
        wal_batches = 0;
        fsyncs_per_commit = 0.;
      },
      wal_end )

let certify t =
  let stor = storage t in
  let rec each = function
    | [] -> Ok ()
    | name :: rest -> (
      let q = Expr.Extent name in
      let* () =
        Result.map_error (fun e -> Printf.sprintf "vet of extent %s: %s" name e)
          (Plancheck.vet stor q)
      in
      let* flat =
        Result.map_error (fun e -> Printf.sprintf "flattened read of %s: %s" name e)
          (Eval.query_value stor q)
      in
      match Naive.eval stor q with
      | exception Failure e | exception Invalid_argument e ->
        Error (Printf.sprintf "naive read of %s: %s" name e)
      | naive ->
        if Value.equal flat naive then each rest
        else
          Error
            (Printf.sprintf
               "recovered extent %s diverges between flattened and naive evaluation" name))
  in
  each (Storage.extents stor)

let close t =
  if not t.closed then begin
    (* A failed close-time checkpoint loses nothing: every record is
       still in the log (plus the last snapshot's side state), so the
       next open replays it. *)
    (match checkpoint t with Ok () | (Error (_ : string)) -> ());
    Storage.set_journal (storage t) None;
    Mirror.set_feedback_hook t.mir None;
    (try Wal.close t.wal with Sys_error _ -> ());
    t.closed <- true
  end

let abandon t =
  if not t.closed then begin
    Storage.set_journal (storage t) None;
    Mirror.set_feedback_hook t.mir None;
    (try Wal.close t.wal with Sys_error _ -> ());
    t.closed <- true
  end
