(** The durable metadata store: checkpoint + write-ahead log + redo
    recovery around a {!Mirror_core.Mirror} database.

    On-disk layout of a durable database directory:

    {v
    <dir>/CHECKPOINT          commit record: snapshot name, LSN, oid base
    <dir>/snap.<lsn>/         Persist.save snapshot as of that LSN
    <dir>/snap.<lsn>/side.log full Feedback/Store_op history to date
    <dir>/wal/                log segments (see Wal)
    v}

    The protocol follows the classic checkpoint+redo recipe: every
    completed logical update appends one {!Record.t} to the log; a
    checkpoint writes a fresh snapshot beside the old one and then
    atomically renames the [CHECKPOINT] metadata file — the single
    commit point, made durable by fsyncing file contents before each
    rename and the directory after — before garbage-collecting old
    snapshots and segments.  Storage records are covered by the
    snapshot's [Persist.save] state; [Feedback]/[Store_op] records act
    on session side state the snapshot cannot see, so their entire
    history rides along in the snapshot's [side.log] and is never lost
    to log truncation.  {!open_} recovers by loading the snapshot the
    [CHECKPOINT] names, restoring the side-state history, redoing the
    log suffix, and (because a torn tail or replayed records leave the
    log ahead of the snapshot) checkpointing again, so an opened store
    always starts from a clean prefix. *)

type config = {
  wal : Wal.config;
  checkpoint_every : int;
      (** auto-checkpoint after this many logged records; 0 = manual
          checkpoints only *)
}

val default_config : config

type recovery = {
  replayed : int;  (** log records redone on top of the snapshot *)
  wal_end : Wal.replay_end;  (** how the scanned log ended *)
  feedback : (string * (string * bool) list) list;
      (** the {e complete} relevance-judgement history (query,
          judgements), oldest first: the snapshot's side state plus
          any log suffix — storage-level adaptation was already
          redone, but a caller that rebuilds session state (thesaurus,
          URL maps) can re-apply it with
          {!Mirror_core.Mirror.replay_feedback} *)
  store_ops : (string * string) list;
      (** the complete daemon-store record history (same sourcing),
          for {!Mirror_daemon.Store.replay} into a rebuilt pipeline
          store *)
}

type t

val open_ : ?config:config -> dir:string -> unit -> (t * recovery, string) result
(** Open (creating or recovering) a durable database rooted at [dir].
    After a clean shutdown the recovery is empty; after a crash it
    reports what redo did.  [Error] means the directory is damaged
    beyond the torn-tail failure model (checksum mismatch mid-log,
    missing segment, unreadable snapshot) — recovery never silently
    drops interior history. *)

val mirror : t -> Mirror_core.Mirror.t
(** The live database.  All mutations through it (Moa programs,
    [Storage] loads, feedback) are journaled automatically. *)

val storage : t -> Mirror_core.Storage.t
(** Shorthand for [Mirror.storage (mirror t)]. *)

val store_journal : t -> string -> string -> unit
(** Journal hook for the daemon pipeline's metadata store: pass as
    [?journal] to {!Mirror_core.Mirror.build_image_library}. *)

val set_trace : t -> Mirror_util.Trace.t -> unit
(** Attach a trace: checkpoints become ["wal.checkpoint"] spans and
    each append a ["wal.append"] event (default {!Mirror_util.Trace.null}). *)

val checkpoint : t -> (unit, string) result
(** Snapshot now and truncate the log.  Crash points
    ([checkpoint.begin|snapshot|rename|meta|commit|gc], see
    {!Mirror_daemon.Faults.crash_hit}) bracket every step. *)

type status = {
  next_lsn : int;
  checkpoint_lsn : int;
  since_checkpoint : int;  (** records logged since the checkpoint *)
  segments : int;
  log_bytes : int;
  snapshot : string;  (** current snapshot directory name *)
  last_error : string option;
      (** most recent auto-checkpoint failure, if it has not been
          cleared by a later successful checkpoint.  Auto-checkpoints
          run inside journal hooks, whose Result-returning callers
          must not see an exception for an operation that already
          applied and logged; failures land here instead (the log
          keeps everything, so nothing is lost — compaction is merely
          deferred). *)
  wal_appends : int;  (** records logged over the store's lifetime *)
  wal_fsyncs : int;  (** fsync calls paid for them *)
  wal_batches : int;  (** group commits (fsyncs covering >= 1 record) *)
  fsyncs_per_commit : float;
      (** [wal_fsyncs / wal_appends] (0 before any append): 1.0 under
          record-at-a-time commit, below 1.0 once group commit batches
          several appends per fsync.  Counters span checkpoint-time
          writer swaps; {!inspect} reports them as zero (they live in
          the owning process, not on disk). *)
}

val status : t -> status

val wal_stats : t -> Wal.stats
(** Lifetime group-commit counters (live writer plus every writer
    retired by a checkpoint). *)

val sync : t -> (unit, string) result
(** Force an fsync of the log now, regardless of [fsync_batch] — the
    serving tier's group-commit point: batch several journaled writes,
    [sync], and only then publish their effects.  [Error] on a
    poisoned writer (see {!Wal.sync}) or a closed store. *)

val inspect : dir:string -> (status * Wal.replay_end, string) result
(** Read-only view of a durable directory without opening it: parse
    [CHECKPOINT], scan the log verifying every checksum, report how
    the tail ends.  Mutates nothing — safe on a directory another
    process owns. *)

val certify : t -> (unit, string) result
(** Post-recovery certification: statically vet the identity query of
    every extent ({!Mirror_core.Plancheck.vet}) and differentially
    execute it (flattened kernel vs naive object-at-a-time), so a
    recovered database that would answer queries differently from its
    logical contents is rejected. *)

val close : t -> unit
(** Checkpoint (best effort) and release the log. *)

val abandon : t -> unit
(** Release the log {e without} checkpointing, leaving the directory
    exactly as a crash would.  Used by crash tests to drop a store
    whose process "died"; the next {!open_} recovers it. *)
