module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom
module Column = Mirror_bat.Column

type hit = { doc : int; score : float }

let belief_oracle index ~doc term =
  let sp = Index.space index in
  match Vocab.find (Space.vocab sp) term with
  | None -> Belief.default_belief
  | Some id ->
    let tf = Index.doc_tf index ~doc ~term in
    Belief.belief ~tf ~df:(Space.df sp id) ~ndocs:(Space.ndocs sp)
      ~doclen:(Space.doc_len sp doc) ~avg_doclen:(Space.avg_doc_len sp)

let run index ?limit net =
  let hits =
    List.map
      (fun doc -> { doc; score = Querynet.eval (belief_oracle index ~doc) net })
      (Index.docs index)
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare b.score a.score in
        if c <> 0 then c else Int.compare a.doc b.doc)
      hits
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let run_indexed index ?limit net =
  (* candidate generation from the inverted file: only documents that
     contain at least one query term can score differently from the
     all-defaults belief, so everything else is scored as a block *)
  let default_score = Querynet.eval (fun _ -> Belief.default_belief) net in
  let candidates = Hashtbl.create 64 in
  List.iter
    (fun (term, _) ->
      List.iter (fun (doc, _) -> Hashtbl.replace candidates doc ()) (Index.postings index term))
    (Querynet.terms net);
  let hits =
    List.map
      (fun doc ->
        if Hashtbl.mem candidates doc then
          { doc; score = Querynet.eval (belief_oracle index ~doc) net }
        else { doc; score = default_score })
      (Index.docs index)
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare b.score a.score in
        if c <> 0 then c else Int.compare a.doc b.doc)
      hits
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

(* {1 Shared machinery for the physical belief operators}

   Per-term resolution: idf is a per-term constant; term frequencies
   come from the space's inverted index when the occurrence BATs are
   physically the indexed base representation, and from a single
   narrowed occurrence scan otherwise.  When the context oids form a
   dense window, per-context state lives in flat arrays. *)

type ctx_window = { base : int; width : int; dense : bool }

let window_of dom_heads =
  let n = Array.length dom_heads in
  let min_ctx = ref max_int and max_ctx = ref min_int in
  Array.iter
    (fun c ->
      if c < !min_ctx then min_ctx := c;
      if c > !max_ctx then max_ctx := c)
    dom_heads;
  let dense = n > 0 && !max_ctx - !min_ctx < (4 * n) + 64 in
  { base = !min_ctx; width = (if n = 0 then 0 else !max_ctx - !min_ctx + 1); dense }

let in_window w c = w.dense && c >= w.base && c - w.base < w.width

(* (idf, tf_at) per distinct term *)
let term_entries ~space ~distinct ~occ_ctx ~occ_term ~occ_tf ~window =
  let voc = Space.vocab space in
  let ndocs = Space.ndocs space in
  let term_heads = Column.oid_exn (Bat.head occ_term) in
  let ctx_heads = Column.oid_exn (Bat.head occ_ctx) in
  let tf_heads = Column.oid_exn (Bat.head occ_tf) in
  let postings =
    if term_heads == ctx_heads && term_heads == tf_heads then
      Space.index space ~heads:term_heads
    else None
  in
  let slow_tf =
    lazy
      (let term_tails =
         match Bat.tail occ_term with
         | Column.S a -> a
         | _ -> invalid_arg "belief operator: term column"
       in
       let interesting = Hashtbl.create 64 in
       Array.iteri
         (fun i occ ->
           if Hashtbl.mem distinct term_tails.(i) then
             Hashtbl.replace interesting occ term_tails.(i))
         term_heads;
       let tf_tails = Column.float_exn (Bat.tail occ_tf) in
       let tf_of = Hashtbl.create (Hashtbl.length interesting) in
       Array.iteri
         (fun i occ ->
           if Hashtbl.mem interesting occ then Hashtbl.replace tf_of occ tf_tails.(i))
         tf_heads;
       let ctx_tails = Column.oid_exn (Bat.tail occ_ctx) in
       let tf_ctx_term = Hashtbl.create (Hashtbl.length interesting) in
       Array.iteri
         (fun i occ ->
           match Hashtbl.find_opt interesting occ with
           | None -> ()
           | Some term ->
             let tf = Option.value ~default:0.0 (Hashtbl.find_opt tf_of occ) in
             let key = (ctx_tails.(i), term) in
             let prev = Option.value ~default:0.0 (Hashtbl.find_opt tf_ctx_term key) in
             Hashtbl.replace tf_ctx_term key (prev +. tf))
         ctx_heads;
       tf_ctx_term)
  in
  let entries = Hashtbl.create 16 in
  Hashtbl.iter
    (fun term () ->
      let idf =
        match Vocab.find voc term with
        | None -> 0.0
        | Some id -> Belief.idf_part ~df:(Space.df space id) ~ndocs
      in
      let tf_at =
        match postings with
        | Some idx -> (
          match Hashtbl.find_opt idx term with
          | None -> fun _ -> 0.0
          | Some per_ctx ->
            if window.dense then begin
              let arr = Array.make window.width 0.0 in
              Hashtbl.iter
                (fun c tf -> if in_window window c then arr.(c - window.base) <- tf)
                per_ctx;
              fun c -> if in_window window c then arr.(c - window.base) else 0.0
            end
            else fun c -> Option.value ~default:0.0 (Hashtbl.find_opt per_ctx c))
        | None ->
          let tbl = Lazy.force slow_tf in
          fun c -> Option.value ~default:0.0 (Hashtbl.find_opt tbl (c, term))
      in
      Hashtbl.replace entries term (idf, tf_at))
    distinct;
  entries

let doclen_at ~len ~window =
  let len_heads = Column.oid_exn (Bat.head len) in
  let len_tails = Column.float_exn (Bat.tail len) in
  if window.dense then begin
    let arr = Array.make window.width 0.0 in
    Array.iteri
      (fun i c -> if in_window window c then arr.(c - window.base) <- len_tails.(i))
      len_heads;
    fun c -> if in_window window c then arr.(c - window.base) else 0.0
  end
  else begin
    let tbl = Hashtbl.create (Array.length len_heads) in
    Array.iteri (fun i c -> Hashtbl.replace tbl c len_tails.(i)) len_heads;
    fun c -> Option.value ~default:0.0 (Hashtbl.find_opt tbl c)
  end

let getbl_pairs ~space ~occ_ctx ~occ_term ~occ_tf ~len ~dom ~qlink ~qval =
  let dom_heads = Column.oid_exn (Bat.head dom) in
  let window = window_of dom_heads in
  (* distinct query terms *)
  let qval_heads = Column.oid_exn (Bat.head qval) in
  let qval_tails =
    match Bat.tail qval with Column.S a -> a | _ -> invalid_arg "getbl: query column"
  in
  let term_name_of_qelem = Hashtbl.create (Array.length qval_heads) in
  let distinct = Hashtbl.create 16 in
  Array.iteri
    (fun i qelem ->
      Hashtbl.replace term_name_of_qelem qelem qval_tails.(i);
      Hashtbl.replace distinct qval_tails.(i) ())
    qval_heads;
  let entry_of_term = term_entries ~space ~distinct ~occ_ctx ~occ_term ~occ_tf ~window in
  (* per-context query entry lists, in qlink row order.  The common
     case — a compiled query literal — produces qlink and qval rows
     that are positionally aligned (same fresh oid sequence), so the
     per-qelem indirection disappears entirely. *)
  let qlink_heads = Column.oid_exn (Bat.head qlink) in
  let qlink_tails = Column.oid_exn (Bat.tail qlink) in
  let aligned =
    Array.length qlink_heads = Array.length qval_heads
    && (qlink_heads == qval_heads
       ||
       let ok = ref true in
       let i = ref 0 in
       while !ok && !i < Array.length qlink_heads do
         if qlink_heads.(!i) <> qval_heads.(!i) then ok := false;
         incr i
       done;
       !ok)
  in
  let entry_at =
    if aligned then fun i -> Hashtbl.find_opt entry_of_term qval_tails.(i)
    else begin
      let entry_of_qelem = Hashtbl.create (Hashtbl.length term_name_of_qelem) in
      Hashtbl.iter
        (fun qelem term ->
          Hashtbl.replace entry_of_qelem qelem (Hashtbl.find entry_of_term term))
        term_name_of_qelem;
      fun i -> Hashtbl.find_opt entry_of_qelem qlink_heads.(i)
    end
  in
  let queries_dense = if window.dense then Array.make window.width [] else [||] in
  let queries_tbl = Hashtbl.create (if window.dense then 1 else 64) in
  for i = Array.length qlink_heads - 1 downto 0 do
    match entry_at i with
    | None -> ()
    | Some entry ->
      let c = qlink_tails.(i) in
      if in_window window c then
        queries_dense.(c - window.base) <- entry :: queries_dense.(c - window.base)
      else if not window.dense then
        Hashtbl.replace queries_tbl c
          (entry :: Option.value ~default:[] (Hashtbl.find_opt queries_tbl c))
  done;
  let query_at c =
    if window.dense then (if in_window window c then queries_dense.(c - window.base) else [])
    else Option.value ~default:[] (Hashtbl.find_opt queries_tbl c)
  in
  let len_at = doclen_at ~len ~window in
  let avg = Space.avg_doc_len space in
  (* scoring is a pure map over contexts: every table the closures
     above consult is fully built (the slow-tf lazy is forced inside
     [term_entries]) and read-only from here on, so when the executor
     runs this operator under a domain pool the context scan morsels
     across domains, each range building private columns that are
     concatenated in morsel order — bitwise the sequential output *)
  let score_range lo hi =
    let ctxb = Column.Builder.create Atom.TOid in
    let belb = Column.Builder.create Atom.TFlt in
    for k = lo to hi - 1 do
      let c = dom_heads.(k) in
      let doclen = len_at c in
      List.iter
        (fun (idf, tf_at) ->
          let tf_part = Belief.tf_part ~tf:(tf_at c) ~doclen ~avg_doclen:avg in
          let b = Belief.default_belief +. (Belief.belief_weight *. tf_part *. idf) in
          Column.Builder.add_oid ctxb c;
          Column.Builder.add_float belb b)
        (query_at c)
    done;
    ( Column.oid_exn (Column.Builder.finish ctxb),
      Column.float_exn (Column.Builder.finish belb) )
  in
  let n = Array.length dom_heads in
  match Mirror_bat.Parkernel.current () with
  | Some pool when n >= Mirror_bat.Parkernel.min_rows () && n > 0 ->
    let parts, _ = Mirror_bat.Parkernel.map_ranges pool n score_range in
    Bat.make
      (Column.O (Array.concat (List.map fst (Array.to_list parts))))
      (Column.F (Array.concat (List.map snd (Array.to_list parts))))
  | _ ->
    let ctxs, bels = score_range 0 n in
    Bat.make (Column.O ctxs) (Column.F bels)

let getblnet_pairs ~space ~net ~occ_ctx ~occ_term ~occ_tf ~len ~dom =
  let dom_heads = Column.oid_exn (Bat.head dom) in
  let window = window_of dom_heads in
  let distinct = Hashtbl.create 16 in
  List.iter (fun (term, _) -> Hashtbl.replace distinct term ()) (Querynet.terms net);
  let entry_of_term = term_entries ~space ~distinct ~occ_ctx ~occ_term ~occ_tf ~window in
  let len_at = doclen_at ~len ~window in
  let avg = Space.avg_doc_len space in
  let ctxb = Column.Builder.create Atom.TOid in
  let belb = Column.Builder.create Atom.TFlt in
  Array.iter
    (fun c ->
      let doclen = len_at c in
      let oracle term =
        match Hashtbl.find_opt entry_of_term term with
        | None -> Belief.default_belief
        | Some (idf, tf_at) ->
          let tf_part = Belief.tf_part ~tf:(tf_at c) ~doclen ~avg_doclen:avg in
          Belief.default_belief +. (Belief.belief_weight *. tf_part *. idf)
      in
      Column.Builder.add_oid ctxb c;
      Column.Builder.add_float belb (Querynet.eval oracle net))
    dom_heads;
  Bat.make (Column.Builder.finish ctxb) (Column.Builder.finish belb)
