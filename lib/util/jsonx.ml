(* Minimal JSON: a value type, a serializer and a recursive-descent
   parser.  Just enough for BENCH_core.json emission and the bench-smoke
   validator — no external dependency, no streaming, no number edge-case
   heroics (non-finite floats serialize as null, matching what bechamel
   can produce for degenerate fits). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* Keep a float marker so the value round-trips as Float. *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_to buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad ((level + 1) * indent);
          go (level + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad (level * indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad ((level + 1) * indent);
          escape_to buf k;
          Buffer.add_string buf ": ";
          go (level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      pad (level * indent);
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail st "bad \\u escape"
          in
          (* Codepoints above 0xff are replaced; the bench schema is ASCII. *)
          Buffer.add_char buf (if code < 0x100 then Char.chr code else '?')
        | _ -> fail st "bad escape");
        go ())
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let items = ref [ parse_value st ] in
      let rec more () =
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items := parse_value st :: !items;
          more ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      more ();
      Arr (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        (k, parse_value st)
      in
      let fields = ref [ field () ] in
      let rec more () =
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields := field () :: !fields;
          more ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      more ();
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number st

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length src then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
