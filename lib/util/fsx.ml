let fsync_out oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error (err, _, _) ->
    raise (Sys_error ("fsync: " ^ Unix.error_message err))

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (err, _, _) ->
    raise (Sys_error (Printf.sprintf "fsync %s: %s" dir (Unix.error_message err)))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Unix.fsync fd with
        (* Some filesystems refuse fsync on a directory fd; there is
           nothing more we can do there, and the rename itself is still
           atomic — only its durability ordering is best-effort. *)
        | Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) -> ()
        | Unix.Unix_error (err, _, _) ->
          raise (Sys_error (Printf.sprintf "fsync %s: %s" dir (Unix.error_message err))))
