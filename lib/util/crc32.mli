(** CRC-32 checksums (IEEE 802.3, reflected polynomial [0xEDB88320]).

    Used for the integrity footer on catalog snapshots and for the
    per-record checksums of the write-ahead log — both need a checksum
    that detects torn writes and single-bit flips, computable
    incrementally over chunks.  Values are 32-bit, carried in an OCaml
    [int] (always non-negative). *)

val init : int
(** The running-state seed (pass to the first {!update_string}). *)

val update_string : int -> string -> int
(** Fold a chunk into a running checksum. *)

val update_bytes : int -> Bytes.t -> pos:int -> len:int -> int
(** Fold a byte slice into a running checksum. *)

val string : string -> int
(** One-shot checksum of a whole string:
    [string s = update_string init s]. *)

val to_hex : int -> string
(** Fixed-width lower-case rendering ("cbf43926"). *)

val of_hex : string -> int option
(** Parse {!to_hex} output; [None] on malformed input. *)
