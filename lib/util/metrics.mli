(** Process-wide metrics registry: named counters and histograms.

    Disabled by default; every recording call is a no-op until
    {!set_enabled}[ true].  Instrumented hot paths should guard with
    {!enabled} before allocating metric names.

    Naming scheme (see DESIGN.md §6): dot-separated, lowest component the
    unit or event — ["mil.op.join"], ["mil.rows.join"],
    ["contrep.getbl.ms"], ["daemon.indexer.ms"], ["bus.published"]. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Run [f] with the registry enabled, restoring the previous state. *)

val incr : ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use).  No-op when disabled. *)

val observe : string -> float -> unit
(** Record a histogram sample.  No-op when disabled. *)

val counter : string -> int
(** Current counter value; 0 when never bumped. *)

type histo = {
  count : int;
  p50 : float;
  p95 : float;
  max : float;
  total : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histo) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Drop all counters and histograms (does not change enablement). *)
