(** Durability-ordering helpers for atomic file replacement.

    The temp-file + [Sys.rename] idiom is only crash-safe if the temp
    file's {e contents} reach stable storage before the rename does:
    otherwise power loss can persist the new directory entry pointing
    at unwritten data.  The full recipe is

    + write the temp file, {!fsync_out}, close;
    + [Sys.rename] over the destination;
    + {!fsync_dir} the containing directory (persists the rename).

    Failures surface as [Sys_error], matching the channel functions
    these compose with. *)

val fsync_out : out_channel -> unit
(** Flush the channel and fsync its file descriptor. *)

val fsync_dir : string -> unit
(** fsync a directory, persisting recent renames/creations inside it.
    Filesystems that refuse fsync on directory fds are tolerated
    (there is no stronger primitive available there). *)
