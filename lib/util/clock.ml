type t = Wall | Virtual of float ref

let wall = Wall
let virtual_ ?(at = 0.0) () = Virtual (ref at)
let now = function Wall -> Unix.gettimeofday () | Virtual r -> !r

let advance t dt =
  match t with
  | Wall -> invalid_arg "Clock.advance: cannot advance the wall clock"
  | Virtual r ->
    if dt < 0.0 then invalid_arg "Clock.advance: negative delta";
    r := !r +. dt

let is_virtual = function Wall -> false | Virtual _ -> true
