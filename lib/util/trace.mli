(** Hierarchical span tracing.

    A [Trace.t] is an explicit enter/leave span stack.  Hot paths call
    {!enter}/{!leave} directly (no closure allocation); a disabled trace —
    {!null}, the default everywhere — costs one field load and branch per
    call.  Completed spans form a forest: each span has a wall-clock
    duration, an optional row count, and key/value attributes. *)

type span = {
  name : string;
  mutable dur : float;  (** wall-clock seconds *)
  mutable rows : int option;
  mutable attrs : (string * string) list;
  mutable children : span list;  (** in completion order *)
}
(** Treat spans as read-only outside this module. *)

type t

val null : t
(** The disabled trace: every operation is a no-op. *)

val create : unit -> t
(** A fresh enabled trace. *)

val is_on : t -> bool

val enter : t -> string -> unit
(** Open a span as a child of the innermost open span. *)

val leave : ?rows:int -> ?attrs:(string * string) list -> t -> unit
(** Close the innermost open span, recording its duration.
    @raise Invalid_argument when no span is open on an enabled trace. *)

val attr : t -> string -> string -> unit
(** Append an attribute to the innermost open span (no-op when none). *)

val set_rows : t -> int -> unit
(** Set the row count of the innermost open span (no-op when none). *)

val event : ?rows:int -> ?attrs:(string * string) list -> t -> string -> unit
(** Record a zero-duration child span (e.g. a memo hit). *)

val with_span : ?attrs:(string * string) list -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span.  Exceptions are re-raised
    after closing the span with an ["error"] attribute. *)

val roots : t -> span list
(** Completed top-level spans, oldest first.  Open spans are excluded. *)

val root : t -> span option

val fold : ('a -> span -> 'a) -> 'a -> span -> 'a
(** Pre-order fold over a span and its descendants. *)

val self_seconds : span -> float
(** Exclusive time: duration minus the sum of direct children. *)

type agg = {
  calls : int;
  total : float;  (** inclusive seconds *)
  self : float;  (** exclusive seconds *)
  rows : int;  (** summed over spans that recorded rows *)
  flagged : int;  (** spans matching [flag] *)
}

val aggregate : ?flag:(span -> bool) -> span list -> (string * agg) list
(** Per-name rollup over span forests, sorted by self time descending.
    [flag] marks spans to tally in [flagged] (e.g. memo hits). *)

val render_spans : span list -> string
(** Indented tree with total/self milliseconds, rows, and attributes. *)

val render : t -> string
(** [render_spans (roots t)]. *)

val now : unit -> float
(** Wall-clock seconds (the clock spans are measured with). *)
