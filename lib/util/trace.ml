(* Hierarchical span tracing for the query path.

   A trace is an explicit enter/leave span stack: the hot path (Mil.eval)
   calls [enter]/[leave] directly instead of going through a closure, so a
   disabled trace costs a single field load and branch per operator.  Spans
   record wall-clock duration, an optional row count, and free-form
   key/value attributes; completed spans form a forest rooted at [roots]. *)

type span = {
  name : string;
  mutable dur : float; (* wall-clock seconds *)
  mutable rows : int option;
  mutable attrs : (string * string) list;
  mutable children : span list;
}

type t = {
  enabled : bool;
  mutable stack : (span * float) list; (* open spans, innermost first *)
  mutable done_roots : span list; (* completed top-level spans, reversed *)
}

let null = { enabled = false; stack = []; done_roots = [] }
let create () = { enabled = true; stack = []; done_roots = [] }
let is_on t = t.enabled

(* Wall-clock seconds.  Unix.gettimeofday rather than Sys.time: spans are
   meant to be compared against external latencies (daemon rounds, bench
   medians), not just CPU accounting. *)
let now () = Unix.gettimeofday ()

let fresh name = { name; dur = 0.0; rows = None; attrs = []; children = [] }

let enter t name =
  if t.enabled then t.stack <- (fresh name, now ()) :: t.stack

let finish t sp t0 ~rows ~attrs =
  sp.dur <- now () -. t0;
  (match rows with Some _ -> sp.rows <- rows | None -> ());
  if attrs <> [] then sp.attrs <- sp.attrs @ attrs;
  sp.children <- List.rev sp.children;
  match t.stack with
  | (parent, _) :: _ -> parent.children <- sp :: parent.children
  | [] -> t.done_roots <- sp :: t.done_roots

let leave ?rows ?(attrs = []) t =
  if t.enabled then
    match t.stack with
    | [] -> invalid_arg "Trace.leave: no open span"
    | (sp, t0) :: rest ->
      t.stack <- rest;
      finish t sp t0 ~rows ~attrs

let attr t k v =
  if t.enabled then
    match t.stack with
    | (sp, _) :: _ -> sp.attrs <- sp.attrs @ [ (k, v) ]
    | [] -> ()

let set_rows t rows =
  if t.enabled then
    match t.stack with
    | (sp, _) :: _ -> sp.rows <- Some rows
    | [] -> ()

let event ?rows ?(attrs = []) t name =
  if t.enabled then begin
    let sp = fresh name in
    sp.rows <- rows;
    sp.attrs <- attrs;
    match t.stack with
    | (parent, _) :: _ -> parent.children <- sp :: parent.children
    | [] -> t.done_roots <- sp :: t.done_roots
  end

let with_span ?(attrs = []) t name f =
  if not t.enabled then f ()
  else begin
    enter t name;
    match f () with
    | v ->
      leave ~attrs t;
      v
    | exception e ->
      leave ~attrs:(("error", Printexc.to_string e) :: attrs) t;
      raise e
  end

let roots t =
  (* Open spans are not reported: a trace is read after the traced work. *)
  List.rev t.done_roots

let root t = match roots t with [] -> None | sp :: _ -> Some sp

let rec fold f acc sp = List.fold_left (fold f) (f acc sp) sp.children

let self_seconds sp =
  let child = List.fold_left (fun acc c -> acc +. c.dur) 0.0 sp.children in
  Float.max 0.0 (sp.dur -. child)

type agg = {
  calls : int;
  total : float; (* inclusive seconds *)
  self : float; (* exclusive seconds *)
  rows : int;
  flagged : int;
}

let aggregate ?(flag = fun _ -> false) spans =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  let visit acc sp =
    ignore acc;
    let prev =
      match Hashtbl.find_opt tbl sp.name with
      | Some a -> a
      | None ->
        order := sp.name :: !order;
        { calls = 0; total = 0.0; self = 0.0; rows = 0; flagged = 0 }
    in
    Hashtbl.replace tbl sp.name
      {
        calls = prev.calls + 1;
        total = prev.total +. sp.dur;
        self = prev.self +. self_seconds sp;
        rows = prev.rows + Option.value ~default:0 sp.rows;
        flagged = (prev.flagged + if flag sp then 1 else 0);
      };
    ()
  in
  List.iter (fun sp -> fold visit () sp) spans;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order
  |> List.sort (fun (_, a) (_, b) -> Float.compare b.self a.self)

let ms s = s *. 1000.0

let render_spans spans =
  let buf = Buffer.create 512 in
  (* First pass: widest indented name, so columns line up. *)
  let rec width depth sp =
    List.fold_left
      (fun acc c -> Int.max acc (width (depth + 1) c))
      ((2 * depth) + String.length sp.name)
      sp.children
  in
  let name_w =
    List.fold_left (fun acc sp -> Int.max acc (width 0 sp)) (String.length "span") spans
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %10s %10s %8s  %s\n" name_w "span" "total(ms)" "self(ms)"
       "rows" "notes");
  let rec line depth (sp : span) =
    let indent = String.make (2 * depth) ' ' in
    let rows = match sp.rows with None -> "-" | Some n -> string_of_int n in
    let notes =
      String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) sp.attrs)
    in
    Buffer.add_string buf
      (Printf.sprintf "%-*s %10.3f %10.3f %8s  %s\n" name_w (indent ^ sp.name)
         (ms sp.dur)
         (ms (self_seconds sp))
         rows notes);
    List.iter (line (depth + 1)) sp.children
  in
  List.iter (line 0) spans;
  Buffer.contents buf

let render t = render_spans (roots t)
