(** Minimal JSON values with a serializer and a parser.

    Used for [BENCH_core.json] emission and the [@bench-smoke]
    validator.  Non-finite floats serialize as [null]; parsing accepts
    standard JSON (with \u escapes above U+00FF replaced by ['?']). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed JSON text (default 2-space indent), no trailing
    newline. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an
    error. *)

(** Shallow accessors, [None] on shape mismatch: *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_str : t -> string option
val to_float : t -> float option
val to_int : t -> int option
