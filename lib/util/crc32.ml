(* Table-driven CRC-32 (IEEE 802.3).  The running state is kept in the
   finalised (post-inversion) form so [update_*] composes: the
   pre/post conditioning is undone and redone around each chunk. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF
let init = 0

let update_bytes crc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.update_bytes: slice out of range";
  let t = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask

let update_string crc s =
  update_bytes crc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let string s = update_string init s
let to_hex crc = Printf.sprintf "%08x" (crc land mask)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 && v <= mask -> Some v
    | _ -> None
