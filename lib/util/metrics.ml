(* Process-wide metrics registry: named counters and histograms.

   Disabled by default so instrumented hot paths pay only an [enabled ()]
   check (callers guard before building metric names).  Enable around a
   measured region, [snapshot] to read, [reset] between regions. *)

let on = ref false
let set_enabled v = on := v
let enabled () = !on

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

(* Histograms keep raw samples (bench regions observe at most a few
   thousand values); percentiles are computed at snapshot time. *)
type series = { mutable buf : float array; mutable len : int }

let histograms : (string, series) Hashtbl.t = Hashtbl.create 32

let incr ?(by = 1) name =
  if !on then
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add counters name (ref by)

let observe name v =
  if !on then begin
    let s =
      match Hashtbl.find_opt histograms name with
      | Some s -> s
      | None ->
        let s = { buf = Array.make 16 0.0; len = 0 } in
        Hashtbl.add histograms name s;
        s
    in
    if s.len = Array.length s.buf then begin
      let bigger = Array.make (2 * s.len) 0.0 in
      Array.blit s.buf 0 bigger 0 s.len;
      s.buf <- bigger
    end;
    s.buf.(s.len) <- v;
    s.len <- s.len + 1
  end

let counter name =
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

type histo = { count : int; p50 : float; p95 : float; max : float; total : float }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histo) list;
}

let histo_of_series s =
  let a = Array.sub s.buf 0 s.len in
  let total = Array.fold_left ( +. ) 0.0 a in
  if s.len = 0 then { count = 0; p50 = 0.0; p95 = 0.0; max = 0.0; total }
  else
    {
      count = s.len;
      p50 = Stat.percentile a 50.0;
      p95 = Stat.percentile a 95.0;
      max = Array.fold_left Float.max neg_infinity a;
      total;
    }

let snapshot () =
  let cs =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold (fun name s acc -> (name, histo_of_series s) :: acc) histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = cs; histograms = hs }

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset histograms

let with_enabled f =
  let saved = !on in
  on := true;
  match f () with
  | v ->
    on := saved;
    v
  | exception e ->
    on := saved;
    raise e
