(** Injectable time source.

    Components that schedule work in the future (circuit-breaker
    backoff, message deadlines) take a [Clock.t] instead of reading
    wall time directly, so tests drive time explicitly and never
    sleep.  A virtual clock only moves when {!advance} is called; the
    wall clock delegates to the real time-of-day clock. *)

type t

val wall : t
(** The real time-of-day clock ({!now} returns Unix epoch seconds). *)

val virtual_ : ?at:float -> unit -> t
(** A fresh virtual clock, reading [at] (default 0.0) until advanced. *)

val now : t -> float
(** Current reading in seconds. *)

val advance : t -> float -> unit
(** Move a virtual clock forward.
    @raise Invalid_argument on the wall clock or a negative delta. *)

val is_virtual : t -> bool
