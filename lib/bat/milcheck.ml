module P = Milprop

type severity = Error | Warning | Hint

type diag = { severity : severity; path : string; op : string; message : string }

type env = {
  get : string -> P.t option;
  foreign : string -> P.foreign_sig option;
}

let env_of_catalog ?(foreign = fun _ -> None) catalog =
  { get = (fun name -> Option.map P.of_bat (Catalog.find catalog name)); foreign }

let severity_name = function Error -> "error" | Warning -> "warning" | Hint -> "hint"

let pp_diag ppf d =
  Format.fprintf ppf "%s at %s (%s): %s" (severity_name d.severity) d.path d.op d.message

let diag_to_string d = Format.asprintf "%a" pp_diag d

let errors ds = List.filter (fun d -> d.severity = Error) ds

(* {1 Inference} *)

type ctx = {
  env : env;
  memo : P.t Mil.Tbl.t;
  mutable diags : diag list;  (* reverse emission order *)
}

let emit ctx severity path plan fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <- { severity; path; op = Mil.op_name plan; message } :: ctx.diags)
    fmt

let numeric = function Atom.TInt | Atom.TFlt -> true | _ -> false

(* (key, dense, sorted) of an atom list, mirroring {!Milprop.of_bat}
   for literal plans. *)
let atom_facts ty atoms =
  let key = ref true and sorted = ref true and dense = ref (ty = Atom.TOid) in
  let tbl = Hashtbl.create 16 in
  let prev = ref None in
  List.iter
    (fun a ->
      (match !prev with
      | Some p ->
        if Atom.compare p a > 0 then sorted := false;
        (match (p, a) with
        | Atom.Oid x, Atom.Oid y when y = x + 1 -> ()
        | _ -> dense := false)
      | None -> ());
      if Hashtbl.mem tbl a then key := false else Hashtbl.add tbl a ();
      prev := Some a)
    atoms;
  (!key, !dense, !sorted)

(* Result type of an element-wise binary operator over (possibly
   unknown) operand types, emitting diagnostics for combinations the
   kernel rejects at runtime. *)
let binop_ty ~err ~warn op lty rty =
  let bad l r =
    err
      (Printf.sprintf "operator %s cannot combine %s and %s tails" (Mil.binop_name op)
         (Atom.ty_name l) (Atom.ty_name r))
  in
  match op with
  | Bat.CmpOp _ -> Some Atom.TBool
  | Bat.And | Bat.Or ->
    (match lty with Some t when t <> Atom.TBool -> bad t (Option.value ~default:t rty) | _ -> ());
    (match rty with
    | Some t when t <> Atom.TBool && (match lty with Some l -> l = Atom.TBool | None -> true) ->
      bad (Option.value ~default:t lty) t
    | _ -> ());
    Some Atom.TBool
  | Bat.Pow -> (
    match (lty, rty) with
    | Some l, Some r when not (numeric l && numeric r) -> bad l r; None
    | _ -> Some Atom.TFlt)
  | Bat.Add -> (
    match (lty, rty) with
    | Some Atom.TInt, Some Atom.TInt -> Some Atom.TInt
    | Some Atom.TStr, Some Atom.TStr -> Some Atom.TStr
    | Some l, Some r when numeric l && numeric r -> Some Atom.TFlt
    | Some l, Some r -> bad l r; None
    | _ -> None)
  | Bat.Sub | Bat.Mul | Bat.Div -> (
    match (lty, rty) with
    | Some Atom.TInt, Some Atom.TInt -> Some Atom.TInt
    | Some l, Some r when numeric l && numeric r -> Some Atom.TFlt
    | Some l, Some r -> bad l r; None
    | _ -> None)
  | Bat.MinOp | Bat.MaxOp -> (
    match (lty, rty) with
    | Some l, Some r when l = r -> Some l
    | Some l, Some r ->
      warn
        (Printf.sprintf
           "operator %s over mixed %s/%s tails returns whichever operand compares smaller \
            — the result column type is not statically determined"
           (Mil.binop_name op) (Atom.ty_name l) (Atom.ty_name r));
      None
    | _ -> None)

let unop_ty ~err op ty =
  (match (op, ty) with
  | Bat.Not, Some t when t <> Atom.TBool ->
    err (Printf.sprintf "operator not requires a bool tail, got %s" (Atom.ty_name t))
  | (Bat.Neg | Bat.Abs | Bat.Log | Bat.Exp | Bat.Sqrt | Bat.ToFlt), Some t when not (numeric t)
    ->
    err
      (Printf.sprintf "operator %s requires a numeric tail, got %s" (Mil.unop_name op)
         (Atom.ty_name t))
  | _ -> ());
  match op with
  | Bat.Not -> Some Atom.TBool
  | Bat.Neg | Bat.Abs -> ty
  | Bat.Log | Bat.Exp | Bat.Sqrt | Bat.ToFlt -> Some Atom.TFlt

let aggr_ty ~err op ty =
  (match (op, ty) with
  | (Bat.Sum | Bat.Prod | Bat.Avg), Some t when not (numeric t) ->
    if not (op = Bat.Sum && t = Atom.TStr) then
      err
        (Printf.sprintf "aggregate %s requires numeric tails, got %s" (Mil.aggr_name op)
           (Atom.ty_name t))
  | _ -> ());
  match op with
  | Bat.Count -> Some Atom.TInt
  | Bat.Avg -> Some Atom.TFlt
  | Bat.Sum | Bat.Prod | Bat.Min | Bat.Max -> ty

(* A subset of the input rows, input order preserved: key and
   sortedness flags survive, density does not (unless contiguous). *)
let subset ?(contiguous = false) p card =
  {
    p with
    P.card;
    dense_head = p.P.dense_head && contiguous;
    dense_tail = p.P.dense_tail && contiguous;
  }

let reset_tail p tty =
  { p with P.tty; tail_key = false; dense_tail = false; sorted_tail = false }

let hi_at_most p n = match p.P.card.P.hi with Some h -> h <= n | None -> false

let rec infer_at ctx path plan =
  match Mil.Tbl.find_opt ctx.memo plan with
  | Some p -> p
  | None ->
    let p = P.normalize (infer_raw ctx path plan) in
    Mil.Tbl.add ctx.memo plan p;
    p

and infer_raw ctx path plan =
  let err fmt = emit ctx Error path plan fmt in
  let warn fmt = emit ctx Warning path plan fmt in
  let err_s s = err "%s" s and warn_s s = warn "%s" s in
  let binop_ty op l r = binop_ty ~err:err_s ~warn:warn_s op l r in
  let child slot q = infer_at ctx (path ^ slot ^ "/" ^ Mil.op_name q) q in
  let only q = child "" q in
  match plan with
  | Mil.Get name -> (
    match ctx.env.get name with
    | Some p -> p
    | None ->
      err "unbound catalog name %S" name;
      P.unknown)
  | Mil.Lit { hty; tty; pairs } ->
    List.iteri
      (fun i (h, t) ->
        if Atom.type_of h <> hty then
          err "literal row %d: head %s is not of declared type %s" i (Atom.to_string h)
            (Atom.ty_name hty);
        if Atom.type_of t <> tty then
          err "literal row %d: tail %s is not of declared type %s" i (Atom.to_string t)
            (Atom.ty_name tty))
      pairs;
    let hkey, hdense, hsorted = atom_facts hty (List.map fst pairs) in
    let tkey, tdense, tsorted = atom_facts tty (List.map snd pairs) in
    {
      P.hty = Some hty;
      tty = Some tty;
      head_key = hkey;
      tail_key = tkey;
      dense_head = hdense;
      dense_tail = tdense;
      sorted_head = hsorted;
      sorted_tail = tsorted;
      card = P.exactly (List.length pairs);
    }
  | Mil.Reverse p -> P.swap (only p)
  | Mil.Mirror p ->
    let c = only p in
    {
      c with
      tty = c.hty;
      tail_key = c.head_key;
      dense_tail = c.dense_head;
      sorted_tail = c.sorted_head;
    }
  | Mil.Mark (p, _) ->
    let c = only p in
    { c with tty = Some Atom.TOid; tail_key = true; dense_tail = true; sorted_tail = true }
  | Mil.NumberHead (p, _) ->
    let c = only p in
    {
      P.hty = Some Atom.TOid;
      tty = c.hty;
      head_key = true;
      dense_head = true;
      sorted_head = true;
      tail_key = c.head_key;
      dense_tail = c.dense_head;
      sorted_tail = c.sorted_head;
      card = c.card;
    }
  | Mil.NumberTail (p, _) ->
    let c = only p in
    {
      P.hty = Some Atom.TOid;
      tty = c.tty;
      head_key = true;
      dense_head = true;
      sorted_head = true;
      tail_key = c.tail_key;
      dense_tail = c.dense_tail;
      sorted_tail = c.sorted_tail;
      card = c.card;
    }
  | Mil.Project (p, a) ->
    let c = only p in
    {
      c with
      tty = Some (Atom.type_of a);
      tail_key = hi_at_most c 1;
      dense_tail = false;
      sorted_tail = true;
    }
  | Mil.Calc1 (op, p) ->
    let c = only p in
    reset_tail c (unop_ty ~err:err_s op c.tty)
  | Mil.CalcConst (op, p, a) ->
    let c = only p in
    (match (op, a) with
    | Bat.Div, Atom.Int 0 -> err "division by integer constant zero always raises"
    | Bat.Div, Atom.Flt 0.0 -> warn "division by float constant zero yields infinities"
    | _ -> ());
    reset_tail c (binop_ty op c.tty (Some (Atom.type_of a)))
  | Mil.ConstCalc (op, a, p) ->
    let c = only p in
    reset_tail c (binop_ty op (Some (Atom.type_of a)) c.tty)
  | Mil.Calc2 (op, l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    (match (cl.hty, cr.hty) with
    | Some a, Some b when a <> b ->
      err "misaligned head types %s vs %s — rows can never pair up" (Atom.ty_name a)
        (Atom.ty_name b)
    | _ -> ());
    {
      (reset_tail cl (binop_ty op cl.tty cr.tty)) with
      card = P.card_upto cl.card;
      dense_head = false;
    }
  | Mil.SelectCmp (p, c, a) ->
    let cp = only p in
    let aty = Atom.type_of a in
    let mismatched = match cp.tty with Some t -> t <> aty | None -> false in
    if mismatched then
      warn "selection compares %s tails against a %s constant — statically trivial"
        (match cp.tty with Some t -> Atom.ty_name t | None -> "?")
        (Atom.ty_name aty);
    let card =
      if mismatched && c = Bat.Eq then P.exactly 0 else P.card_upto cp.card
    in
    let s = subset cp card in
    if c = Bat.Eq && not mismatched then { s with sorted_tail = true } else s
  | Mil.SelectRange (p, lo, hi) ->
    let cp = only p in
    (match cp.tty with
    | Some t when t <> Atom.type_of lo || t <> Atom.type_of hi ->
      warn "range bounds %s..%s do not match the %s tail" (Atom.to_string lo)
        (Atom.to_string hi) (Atom.ty_name t)
    | _ -> ());
    let empty = Atom.compare lo hi > 0 in
    if empty then warn "range lower bound exceeds upper bound — selection is empty";
    subset cp (if empty then P.exactly 0 else P.card_upto cp.card)
  | Mil.SelectBool p ->
    let cp = only p in
    (match cp.tty with
    | Some t when t <> Atom.TBool ->
      err "select_bool requires a bool tail, got %s" (Atom.ty_name t)
    | _ -> ());
    { (subset cp (P.card_upto cp.card)) with sorted_tail = true }
  | Mil.Join (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    (match (cl.tty, cr.hty) with
    | Some a, Some b when a <> b ->
      err "join tail type %s does not match head type %s" (Atom.ty_name a) (Atom.ty_name b)
    | _ -> ());
    let card =
      if cr.head_key then P.card_upto cl.card else P.card_mul cl.card cr.card
    in
    {
      P.unknown with
      hty = cl.hty;
      tty = cr.tty;
      head_key = cl.head_key && cr.head_key;
      sorted_head = cl.sorted_head;
      card;
    }
  | Mil.LeftOuterJoin (l, r, d) ->
    let cl = child ":l" l and cr = child ":r" r in
    (match (cl.tty, cr.hty) with
    | Some a, Some b when a <> b ->
      warn "outer-join tail type %s does not match head type %s — every row defaults"
        (Atom.ty_name a) (Atom.ty_name b)
    | _ -> ());
    (match cr.tty with
    | Some t when t <> Atom.type_of d ->
      err "default %s does not match the right tail type %s" (Atom.to_string d)
        (Atom.ty_name t)
    | _ -> ());
    let one_per_row = cr.head_key || cr.card.P.hi = Some 0 in
    let tty = Some (Atom.type_of d) in
    if one_per_row then { cl with tty; tail_key = false; dense_tail = false; sorted_tail = false }
    else
      {
        P.unknown with
        hty = cl.hty;
        tty;
        head_key = false;
        sorted_head = cl.sorted_head;
        card = { P.lo = cl.card.P.lo; hi = (P.card_mul cl.card cr.card).P.hi };
      }
  | Mil.Semijoin (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    let mismatched =
      match (cl.hty, cr.hty) with Some a, Some b -> a <> b | _ -> false
    in
    if mismatched then
      warn "semijoin head types differ — no row can survive";
    let empty = mismatched || cr.card.P.hi = Some 0 in
    subset cl (if empty then P.exactly 0 else P.card_upto cl.card)
  | Mil.Antijoin (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    (match (cl.hty, cr.hty) with
    | Some a, Some b when a <> b ->
      warn "antijoin head types differ — every row survives"
    | _ -> ());
    if cr.card.P.hi = Some 0 then cl else subset cl (P.card_upto cl.card)
  | Mil.Kunion (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    union_types ~err:err_s cl cr;
    {
      P.unknown with
      hty = pick cl.hty cr.hty;
      tty = pick cl.tty cr.tty;
      head_key = cl.head_key && cr.head_key;
      card = { P.lo = cl.card.P.lo; hi = (P.card_add cl.card cr.card).P.hi };
    }
  | Mil.PairUnion (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    union_types ~err:err_s cl cr;
    {
      P.unknown with
      hty = pick cl.hty cr.hty;
      tty = pick cl.tty cr.tty;
      card =
        {
          P.lo = (if cl.card.P.lo > 0 || cr.card.P.lo > 0 then 1 else 0);
          hi = (P.card_add cl.card cr.card).P.hi;
        };
    }
  | Mil.PairDiff (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    (match (pair_mismatch cl cr : bool) with
    | true -> warn "pair types differ — the difference keeps every row"
    | false -> ());
    subset cl (P.card_upto cl.card)
  | Mil.PairInter (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    let mismatched = pair_mismatch cl cr in
    if mismatched then warn "pair types differ — the intersection is empty";
    let empty = mismatched || cr.card.P.hi = Some 0 in
    subset cl (if empty then P.exactly 0 else P.card_upto cl.card)
  | Mil.Append (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    union_types ~err:err_s cl cr;
    {
      P.unknown with
      hty = pick cl.hty cr.hty;
      tty = pick cl.tty cr.tty;
      card = P.card_add cl.card cr.card;
    }
  | Mil.Unique p ->
    let c = only p in
    subset c
      { P.lo = (if c.card.P.lo > 0 then 1 else 0); hi = c.card.P.hi }
  | Mil.UniqueHead p ->
    let c = only p in
    {
      (subset c { P.lo = (if c.card.P.lo > 0 then 1 else 0); hi = c.card.P.hi }) with
      head_key = true;
    }
  | Mil.GroupAggr (op, p) ->
    let c = only p in
    let tty = aggr_ty ~err:err_s op c.tty in
    {
      P.unknown with
      hty = c.hty;
      tty;
      head_key = true;
      dense_head = c.dense_head;
      sorted_head = c.sorted_head;
      card = { P.lo = (if c.card.P.lo > 0 then 1 else 0); hi = c.card.P.hi };
    }
  | Mil.AggrAll (op, p) ->
    let c = only p in
    let tty = aggr_ty ~err:err_s op c.tty in
    if
      c.card.P.lo = 0
      && (op = Bat.Min || op = Bat.Max || op = Bat.Avg
         || (op = Bat.Sum && c.tty = Some Atom.TStr))
    then
      warn "aggregate %s over a possibly-empty input raises at runtime" (Mil.aggr_name op);
    {
      P.hty = Some Atom.TOid;
      tty;
      head_key = true;
      tail_key = true;
      dense_head = true;
      dense_tail = false;
      sorted_head = true;
      sorted_tail = true;
      card = P.exactly 1;
    }
  | Mil.GroupRank { link; key; desc = _ } ->
    let cl = child ":link" link and ck = child ":key" key in
    (match (cl.hty, ck.hty) with
    | Some a, Some b when a <> b ->
      warn "group_rank link heads (%s) never match key heads (%s) — all elements rank last"
        (Atom.ty_name a) (Atom.ty_name b)
    | _ -> ());
    {
      P.unknown with
      hty = cl.hty;
      tty = Some Atom.TInt;
      head_key = cl.head_key;
      card = cl.card;
    }
  | Mil.SortTail (p, desc) ->
    let c = only p in
    {
      c with
      dense_head = false;
      sorted_head = false;
      dense_tail = c.dense_tail && not desc;
      sorted_tail = not desc;
    }
  | Mil.Slice (p, pos, len) ->
    let c = only p in
    let pos = max 0 pos and len = max 0 len in
    let card =
      {
        P.lo = max 0 (min len (c.card.P.lo - pos));
        hi =
          Some
            (match c.card.P.hi with
            | Some h -> max 0 (min len (h - pos))
            | None -> len);
      }
    in
    subset ~contiguous:true c card
  | Mil.TopN (p, n, desc) ->
    let c = only p in
    let n = max 0 n in
    {
      (subset c (P.card_min_hi c.card n)) with
      dense_tail = c.dense_tail && not desc;
      sorted_tail = not desc;
      sorted_head = false;
    }
  | Mil.Foreign { name; args; meta } -> (
    List.iteri (fun i a -> ignore (child (Printf.sprintf ":%d" i) a)) args;
    match ctx.env.foreign name with
    | None ->
      err "physical operator %S has no registered signature" name;
      P.unknown
    | Some s ->
      if List.length args <> s.P.fs_arity then
        err "%S expects %d plan arguments, got %d" name s.P.fs_arity (List.length args);
      if List.length meta < s.P.fs_meta_min then
        err "%S expects at least %d meta strings, got %d" name s.P.fs_meta_min
          (List.length meta);
      s.P.fs_result)

and pick a b = match a with Some _ -> a | None -> b

and union_types ~err (l : P.t) (r : P.t) =
  (match (l.P.hty, r.P.hty) with
  | Some a, Some b when a <> b ->
    err
      (Printf.sprintf "head types %s and %s cannot be combined" (Atom.ty_name a)
         (Atom.ty_name b))
  | _ -> ());
  match (l.P.tty, r.P.tty) with
  | Some a, Some b when a <> b ->
    err
      (Printf.sprintf "tail types %s and %s cannot be combined" (Atom.ty_name a)
         (Atom.ty_name b))
  | _ -> ()

and pair_mismatch (l : P.t) (r : P.t) =
  (match (l.P.hty, r.P.hty) with Some a, Some b -> a <> b | _ -> false)
  || match (l.P.tty, r.P.tty) with Some a, Some b -> a <> b | _ -> false

let fresh_ctx env = { env; memo = Mil.Tbl.create 64; diags = [] }

let infer env plan =
  let ctx = fresh_ctx env in
  let p = infer_at ctx (Mil.op_name plan) plan in
  (p, List.rev ctx.diags)

let infer_table env plans =
  let ctx = fresh_ctx env in
  List.iter (fun plan -> ignore (infer_at ctx (Mil.op_name plan) plan)) plans;
  (ctx.memo, List.rev ctx.diags)

let verify env plan =
  let p, ds = infer env plan in
  match errors ds with [] -> Ok p | errs -> Error errs

(* {1 Lint} *)

let lint env plan =
  let ctx = fresh_ctx env in
  ignore (infer_at ctx (Mil.op_name plan) plan);
  let inference = List.rev ctx.diags in
  let smells = ref [] in
  let seen = Mil.Tbl.create 64 in
  let add severity path node fmt =
    Printf.ksprintf
      (fun message ->
        smells := { severity; path; op = Mil.op_name node; message } :: !smells)
      fmt
  in
  let rec walk path parent_empty node =
    if not (Mil.Tbl.mem seen node) then begin
      Mil.Tbl.add seen node ();
      let prop = try Mil.Tbl.find ctx.memo node with Not_found -> P.unknown in
      let empty = P.is_empty prop in
      if empty && not parent_empty then
        add Warning path node "statically empty — the subplan is dead";
      let hint fmt = add Hint path node fmt in
      (match node with
      | Mil.Reverse (Mil.Reverse _) -> hint "reverse of reverse cancels out"
      | Mil.Mirror (Mil.Mirror _) | Mil.Reverse (Mil.Mirror _)
      | Mil.Mirror (Mil.Reverse (Mil.Mirror _)) ->
        hint "mirror chain collapses to a single mirror"
      | Mil.Unique (Mil.Unique _) -> hint "unique of unique is redundant"
      | Mil.Semijoin (p, q) when p = q -> hint "self-semijoin is the identity"
      | Mil.Kunion (p, q) when p = q -> hint "self-kunion is the identity"
      | Mil.Append (_, Mil.Lit { pairs = []; _ }) | Mil.Append (Mil.Lit { pairs = []; _ }, _)
        ->
        hint "appending an empty literal is the identity"
      | Mil.Slice (Mil.SortTail _, 0, n) ->
        hint "slice[0,%d] of sort_tail should fuse to top%d" n n
      | Mil.SelectCmp (Mil.Project (_, a), c, b) ->
        if Bat.apply_cmp c a b then
          hint "selection over a constant projection is always true — drop it"
        else
          add Warning path node
            "selection over a constant projection is always false — the subplan is dead"
      | Mil.SelectBool (Mil.Project (_, Atom.Bool v)) ->
        if v then hint "boolean selection over a true constant is always true — drop it"
        else
          add Warning path node
            "boolean selection over a false constant is always false — the subplan is dead"
      | Mil.SelectRange (Mil.Project (_, a), lo, hi) ->
        if Atom.compare lo a <= 0 && Atom.compare a hi <= 0 then
          hint "range selection over a constant projection is always true — drop it"
        else
          add Warning path node
            "range selection over a constant projection is always false — the subplan is dead"
      | _ -> ());
      let down slot q = walk (path ^ slot ^ "/" ^ Mil.op_name q) empty q in
      match node with
      | Mil.Get _ | Mil.Lit _ -> ()
      | Mil.Reverse p | Mil.Mirror p
      | Mil.Mark (p, _)
      | Mil.NumberHead (p, _)
      | Mil.NumberTail (p, _)
      | Mil.Project (p, _)
      | Mil.Calc1 (_, p)
      | Mil.CalcConst (_, p, _)
      | Mil.ConstCalc (_, _, p)
      | Mil.SelectCmp (p, _, _)
      | Mil.SelectRange (p, _, _)
      | Mil.SelectBool p
      | Mil.Unique p | Mil.UniqueHead p
      | Mil.GroupAggr (_, p)
      | Mil.AggrAll (_, p)
      | Mil.SortTail (p, _)
      | Mil.Slice (p, _, _)
      | Mil.TopN (p, _, _) ->
        down "" p
      | Mil.Calc2 (_, l, r)
      | Mil.Join (l, r)
      | Mil.LeftOuterJoin (l, r, _)
      | Mil.Semijoin (l, r)
      | Mil.Antijoin (l, r)
      | Mil.Kunion (l, r)
      | Mil.PairUnion (l, r)
      | Mil.PairDiff (l, r)
      | Mil.PairInter (l, r)
      | Mil.Append (l, r) ->
        down ":l" l;
        down ":r" r
      | Mil.GroupRank { link; key; _ } ->
        down ":link" link;
        down ":key" key
      | Mil.Foreign { args; _ } ->
        List.iteri (fun i a -> down (Printf.sprintf ":%d" i) a) args
    end
  in
  walk (Mil.op_name plan) false plan;
  inference @ List.rev !smells

(* {1 Checked execution} *)

let exec_checked env session plan =
  let b = Mil.exec session plan in
  let inferred, ds = infer env plan in
  (match errors ds with
  | [] -> ()
  | e :: _ -> failwith (Printf.sprintf "Milcheck: ill-formed plan executed: %s" (diag_to_string e)));
  (match P.envelope_ok ~inferred ~actual:(P.of_bat b) with
  | Ok () -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "Milcheck: result of %s escapes the inferred envelope %s: %s"
         (Mil.op_name plan) (P.to_string inferred) msg));
  b
