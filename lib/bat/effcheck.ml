(* Effect-and-aliasing analysis over MIL plans, plus the runtime
   sanitizer.  See effcheck.mli for the model; the signatures below
   are derived from bat.ml's actual allocation behaviour and must be
   kept in sync with it (the sanitizer exists to catch drift). *)

type col = Head | Tail

type source = Input of int * col | CatalogCol of string * col

type alias = { sources : source list; maybe_fresh : bool }

type eff = {
  head : alias;
  tail : alias;
  reads : (int * col) list;
  writes : (int * col) list;
  cat_read : string option;
  impure : string option;
  undeclared : bool;
}

type foreign_eff = { fe_pure : bool; fe_shares : bool; fe_writes : bool }

let pure_foreign = { fe_pure = true; fe_shares = false; fe_writes = false }

type env = { foreign : string -> foreign_eff option }

let env ?(foreign = fun _ -> None) () = { foreign }

(* {1 Per-constructor signatures} *)

let fresh = { sources = []; maybe_fresh = true }
let shared src = { sources = [ src ]; maybe_fresh = false }
let both_cols n = List.concat (List.init n (fun i -> [ (i, Head); (i, Tail) ]))

let signature env plan =
  let pure =
    {
      head = fresh;
      tail = fresh;
      reads = [];
      writes = [];
      cat_read = None;
      impure = None;
      undeclared = false;
    }
  in
  match plan with
  | Mil.Get name ->
    {
      pure with
      head = shared (CatalogCol (name, Head));
      tail = shared (CatalogCol (name, Tail));
      cat_read = Some name;
    }
  | Mil.Lit _ -> pure
  | Mil.Reverse _ ->
    { pure with head = shared (Input (0, Tail)); tail = shared (Input (0, Head)) }
  | Mil.Mirror _ ->
    { pure with head = shared (Input (0, Head)); tail = shared (Input (0, Head)) }
  | Mil.Mark _ -> { pure with head = shared (Input (0, Head)) }
  | Mil.NumberHead _ -> { pure with tail = shared (Input (0, Head)) }
  | Mil.NumberTail _ -> { pure with tail = shared (Input (0, Tail)) }
  | Mil.Project _ -> { pure with head = shared (Input (0, Head)) }
  | Mil.Calc1 _ | Mil.CalcConst _ | Mil.ConstCalc _ ->
    { pure with head = shared (Input (0, Head)); reads = [ (0, Tail) ] }
  | Mil.Calc2 _ ->
    (* The row-aligned fast path keeps the left head; the generic
       path rebuilds both columns. *)
    {
      pure with
      head = { sources = [ Input (0, Head) ]; maybe_fresh = true };
      reads = both_cols 2;
    }
  | Mil.SelectCmp _ | Mil.SelectRange _ | Mil.SelectBool _
  | Mil.Unique _ | Mil.UniqueHead _
  | Mil.GroupAggr _
  | Mil.SortTail _ | Mil.Slice _ | Mil.TopN _ ->
    { pure with reads = [ (0, Head); (0, Tail) ] }
  | Mil.AggrAll _ -> { pure with reads = [ (0, Tail) ] }
  | Mil.Semijoin _ | Mil.Antijoin _ ->
    (* Gathers both columns of the left side, probes right heads. *)
    { pure with reads = [ (0, Head); (0, Tail); (1, Head) ] }
  | Mil.Join _ | Mil.LeftOuterJoin _
  | Mil.Kunion _ | Mil.PairUnion _ | Mil.PairDiff _ | Mil.PairInter _
  | Mil.Append _ | Mil.GroupRank _ ->
    { pure with reads = both_cols 2 }
  | Mil.Foreign { name; args; _ } -> (
    let n = List.length args in
    let share_all =
      {
        sources = List.map (fun (i, c) -> Input (i, c)) (both_cols n);
        maybe_fresh = true;
      }
    in
    match env.foreign name with
    | Some fe ->
      {
        head = (if fe.fe_shares then share_all else fresh);
        tail = (if fe.fe_shares then share_all else fresh);
        reads = both_cols n;
        writes = (if fe.fe_writes then both_cols n else []);
        cat_read = None;
        impure = (if fe.fe_pure then None else Some name);
        undeclared = false;
      }
    | None ->
      (* Worst case: aliases everything, mutates everything, has
         external effects. *)
      {
        head = share_all;
        tail = share_all;
        reads = both_cols n;
        writes = both_cols n;
        cat_read = None;
        impure = Some name;
        undeclared = true;
      })

(* {1 Sharing graph and verdicts} *)

module ISet = Set.Make (Int)

(* One distinct DAG node.  Origins are allocation sites: non-negative
   ints encode (node id, column) pairs, negative ints encode catalog
   columns (which are always shared — the store itself holds them). *)
type info = {
  id : int;
  plan : Mil.t;
  path : string;
  eff : eff;
  kids : info array;
  head_orig : ISet.t;
  tail_orig : ISet.t;
}

type verdict = {
  nodes : int;
  shared_columns : int;
  partitions : int;
  hazards : Milcheck.diag list;
  safe : Mil.t -> bool;
}

let slot_path path i n k =
  let slot = if n = 1 then "" else ":" ^ string_of_int i in
  path ^ slot ^ "/" ^ Mil.op_name k

let kid_orig (k : info) = function Head -> k.head_orig | Tail -> k.tail_orig

let analyze env plans =
  let infos : info Mil.Tbl.t = Mil.Tbl.create 64 in
  let order = ref [] in
  (* post-order, reversed *)
  let next_id = ref 0 in
  let cat_origin = Hashtbl.create 8 in
  let catalog_origin name c =
    match Hashtbl.find_opt cat_origin (name, c) with
    | Some o -> o
    | None ->
      let o = -(Hashtbl.length cat_origin + 1) in
      Hashtbl.add cat_origin (name, c) o;
      o
  in
  let rec visit path plan =
    match Mil.Tbl.find_opt infos plan with
    | Some i -> i
    | None ->
      let kid_plans = Mil.children plan in
      let n = List.length kid_plans in
      let kids =
        Array.of_list (List.mapi (fun i k -> visit (slot_path path i n k) k) kid_plans)
      in
      let id = !next_id in
      incr next_id;
      let eff = signature env plan in
      let resolve al bit =
        let base = if al.maybe_fresh then ISet.singleton ((2 * id) + bit) else ISet.empty in
        List.fold_left
          (fun acc -> function
            | Input (i, c) -> ISet.union acc (kid_orig kids.(i) c)
            | CatalogCol (nm, c) -> ISet.add (catalog_origin nm c) acc)
          base al.sources
      in
      let info =
        {
          id;
          plan;
          path;
          eff;
          kids;
          head_orig = resolve eff.head 0;
          tail_orig = resolve eff.tail 1;
        }
      in
      Mil.Tbl.add infos plan info;
      order := info :: !order;
      info
  in
  List.iter (fun p -> ignore (visit (Mil.op_name p) p)) plans;
  let all = List.rev !order in
  (* Reference counts per origin: a column slot is shared when one of
     its origins is a catalog column or is reachable from two or more
     slots of the DAG. *)
  let refs = Hashtbl.create 64 in
  let bump o = Hashtbl.replace refs o (1 + Option.value ~default:0 (Hashtbl.find_opt refs o)) in
  List.iter
    (fun i ->
      ISet.iter bump i.head_orig;
      ISet.iter bump i.tail_orig)
    all;
  let origin_shared o = o < 0 || Option.value ~default:0 (Hashtbl.find_opt refs o) >= 2 in
  let slot_shared set = ISet.exists origin_shared set in
  let shared_columns =
    List.fold_left
      (fun acc i ->
        acc
        + (if slot_shared i.head_orig then 1 else 0)
        + if slot_shared i.tail_orig then 1 else 0)
      0 all
  in
  (* Hazard lint. *)
  let hazards = ref [] in
  let add severity (i : info) fmt =
    Printf.ksprintf
      (fun message ->
        hazards :=
          { Milcheck.severity; path = i.path; op = Mil.op_name i.plan; message } :: !hazards)
      fmt
  in
  let written_origins (i : info) =
    List.fold_left
      (fun acc (k, c) -> ISet.union acc (kid_orig i.kids.(k) c))
      ISet.empty i.eff.writes
  in
  List.iter
    (fun i ->
      if i.eff.undeclared then
        add Milcheck.Error i
          "foreign operator has no effect declaration — assumed to alias and mutate its \
           arguments; add it to the extension's foreign_effects"
      else begin
        (match i.eff.writes with
        | [] -> ()
        | ws ->
          let target = written_origins i in
          if ISet.exists (fun o -> o < 0) target then
            add Milcheck.Error i
              "mutation under sharing: writes argument columns aliasing the catalog — the \
               store itself would change"
          else if ISet.exists origin_shared target then
            add Milcheck.Error i
              "mutation under sharing: writes argument columns that other plan nodes alias"
          else
            add Milcheck.Warning i
              "declares a write effect on %d private column(s) — the algebra assumes pure \
               producers; a memoised result would expose the mutation"
              (List.length ws));
        match i.eff.impure with
        | Some name ->
          add Milcheck.Warning i
            "effectful operator %S under a memoising executor — a memo hit elides its side \
             effect"
            name
        | None -> ()
      end)
    all;
  (* Relative order of two effectful operators is only fixed when one
     is an ancestor of the other (evaluation is children-first);
     otherwise Milopt rewrites and memo elision can reorder them. *)
  let imp_below = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let s =
        Array.fold_left
          (fun acc k -> ISet.union acc (Hashtbl.find imp_below k.id))
          ISet.empty i.kids
      in
      let s = if i.eff.impure <> None then ISet.add i.id s else s in
      Hashtbl.replace imp_below i.id s)
    all;
  let impures = List.filter (fun i -> i.eff.impure <> None) all in
  let rec first_unordered = function
    | [] -> None
    | a :: rest -> (
      match
        List.find_opt
          (fun b ->
            (not (ISet.mem b.id (Hashtbl.find imp_below a.id)))
            && not (ISet.mem a.id (Hashtbl.find imp_below b.id)))
          rest
      with
      | Some b -> Some (a, b)
      | None -> first_unordered rest)
  in
  (match first_unordered impures with
  | Some (a, b) ->
    add Milcheck.Warning b
      "non-commutable effect ordering: %s and %s are not ancestor-related, so rewrites \
       and memoisation give their effects no fixed order"
      (Mil.op_name a.plan) (Mil.op_name b.plan)
  | None -> ());
  (* Partition the DAG: writers conflict with every observer of the
     written columns, and effectful operators serialise with each
     other.  Everything left is provably independent. *)
  let parent = Array.init !next_id (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  (match impures with
  | first :: rest -> List.iter (fun i -> union first.id i.id) rest
  | [] -> ());
  List.iter
    (fun i ->
      match i.eff.writes with
      | [] -> ()
      | ws ->
        let target = written_origins i in
        List.iter (fun (k, _) -> union i.id i.kids.(k).id) ws;
        List.iter
          (fun j ->
            if
              j.id <> i.id
              && ((not (ISet.is_empty (ISet.inter target j.head_orig)))
                 || not (ISet.is_empty (ISet.inter target j.tail_orig)))
            then union i.id j.id)
          all)
    all;
  let partitions =
    let roots = Hashtbl.create 16 in
    for i = 0 to !next_id - 1 do
      Hashtbl.replace roots (find i) ()
    done;
    Hashtbl.length roots
  in
  let hazards = List.rev !hazards in
  (* A node is parallel-safe when its whole partition is effect-free:
     no write effects, no impure operators, no undeclared foreigns.
     Nodes outside the analyzed plans are unknown, hence unsafe. *)
  let unsafe_roots = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if i.eff.writes <> [] || i.eff.impure <> None || i.eff.undeclared then
        Hashtbl.replace unsafe_roots (find i.id) ())
    all;
  let safe plan =
    match Mil.Tbl.find_opt infos plan with
    | Some i -> not (Hashtbl.mem unsafe_roots (find i.id))
    | None -> false
  in
  let v = { nodes = !next_id; shared_columns; partitions; hazards; safe } in
  if Mirror_util.Metrics.enabled () then begin
    Mirror_util.Metrics.incr ~by:(List.length plans) "effcheck.plans";
    Mirror_util.Metrics.incr ~by:v.nodes "effcheck.nodes";
    Mirror_util.Metrics.incr ~by:v.partitions "effcheck.partitions";
    Mirror_util.Metrics.incr ~by:v.shared_columns "effcheck.shared_columns";
    Mirror_util.Metrics.incr ~by:(List.length hazards) "effcheck.hazards"
  end;
  v

let lint env plan = (analyze env [ plan ]).hazards

(* {1 Runtime sanitizer} *)

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Keyed by physical identity.  The hash must NOT look at cell
   contents: the table's whole purpose is to survive an operator
   mutating a tagged column, and a content hash would then miss the
   column's own entry.  (ty, length) is mutation-stable — [Column.set]
   can change neither. *)
module Coltbl = Hashtbl.Make (struct
  type t = Column.t

  let equal = ( == )
  let hash col = Hashtbl.hash (Column.ty col, Column.length col)
end)

type tag = { t_origin : string; t_fp : int }

type sanitizer = {
  s_env : env;
  s_session : Mil.session;
  s_cols : tag Coltbl.t;  (* provenance + fingerprint per physical column *)
  s_done : Bat.t Mil.Tbl.t;  (* nodes already checked *)
}

let fingerprint col =
  let n = Column.length col in
  let h = ref (Hashtbl.hash (Column.ty col, n)) in
  for i = 0 to n - 1 do
    h := (!h * 0x01000193) lxor Hashtbl.hash (Column.get col i)
  done;
  !h land max_int

let sanitizer env session =
  if not (Mil.cse_enabled session) then
    invalid_arg "Effcheck.sanitizer: the session must have CSE enabled";
  {
    s_env = env;
    s_session = session;
    s_cols = Coltbl.create 64;
    s_done = Mil.Tbl.create 64;
  }

let register san origin col =
  if Column.length col > 0 && not (Coltbl.mem san.s_cols col) then
    Coltbl.add san.s_cols col { t_origin = origin; t_fp = fingerprint col }

let verify_tag san col =
  match Coltbl.find_opt san.s_cols col with
  | Some tag when fingerprint col <> tag.t_fp ->
    violation "column allocated by %s was mutated in place" tag.t_origin
  | _ -> ()

(* A result column is either one of the declared alias sources or a
   genuinely fresh allocation; anything else aliasing tagged memory
   escapes the signature.  Zero-length columns are exempt: OCaml keeps
   one shared atom for every empty array. *)
let check_result_col san ~path ~plan ~which ~allowed col =
  if Column.length col = 0 then ()
  else if List.exists (fun c -> c == col) allowed then ()
  else
    match Coltbl.find_opt san.s_cols col with
    | Some tag ->
      violation "%s at %s: %s column aliases %s outside its effect signature"
        (Mil.op_name plan) path which tag.t_origin
    | None -> register san (Printf.sprintf "%s at %s (%s)" (Mil.op_name plan) path which) col

let rec sexec san path plan =
  match Mil.Tbl.find_opt san.s_done plan with
  | Some b -> b
  | None ->
    let kid_plans = Mil.children plan in
    let n = List.length kid_plans in
    let kid_bats =
      Array.of_list (List.mapi (fun i k -> sexec san (slot_path path i n k) k) kid_plans)
    in
    (* The children's results sit in the session memo, so this only
       evaluates the node itself. *)
    let b = Mil.exec san.s_session plan in
    let eff = signature san.s_env plan in
    let resolve = function
      | Input (i, Head) -> Some (Bat.head kid_bats.(i))
      | Input (i, Tail) -> Some (Bat.tail kid_bats.(i))
      | CatalogCol (name, c) -> (
        match Catalog.find (Mil.catalog san.s_session) name with
        | None -> None
        | Some cb ->
          let col = match c with Head -> Bat.head cb | Tail -> Bat.tail cb in
          register san (Printf.sprintf "catalog %S" name) col;
          Some col)
    in
    let allowed al = List.filter_map resolve al.sources in
    check_result_col san ~path ~plan ~which:"head" ~allowed:(allowed eff.head) (Bat.head b);
    check_result_col san ~path ~plan ~which:"tail" ~allowed:(allowed eff.tail) (Bat.tail b);
    (* Input fingerprints must survive the operator — catches a writer
       red-handed instead of waiting for finish. *)
    Array.iter
      (fun kb ->
        verify_tag san (Bat.head kb);
        verify_tag san (Bat.tail kb))
      kid_bats;
    Mil.Tbl.add san.s_done plan b;
    b

let exec san plan = sexec san (Mil.op_name plan) plan

let finish san =
  Coltbl.iter
    (fun col tag ->
      if fingerprint col <> tag.t_fp then
        violation "column allocated by %s was mutated in place" tag.t_origin)
    san.s_cols
