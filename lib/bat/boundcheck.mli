(** Static resource-bound analysis of MIL plans — the fourth analyzer
    layer ([Moacheck] certifies logical shape, [Milcheck] physical
    properties, [Effcheck] effects and aliasing; [Boundcheck] answers
    "how much memory can this query ever need").

    The analyzer walks the CSE'd plan DAG once and computes, per
    distinct operator node, a {!cost} envelope: the sound cardinality
    interval inherited from {!Milcheck}'s inference, a point {e row
    estimate} derived from per-constructor selectivity rules (always
    clamped into the sound interval, so estimates can be wrong but
    never inconsistent), and per-cell byte widths for both columns —
    8 bytes per cell for every fixed-width representation, 8 plus the
    tracked payload bound for strings, matching {!Column.bytes} on the
    measured side.

    On top of the per-node costs it derives two whole-plan footprints:
    {ul
    {- {!plan_bounds.resident} — the sum over all distinct DAG nodes,
       the envelope of the real executor, which memoises every
       intermediate for the session's lifetime ({!Mil.resident_bytes}
       is the measured counterpart it must bound from above);}
    {- {!plan_bounds.reclaim} — a liveness simulation of the same
       evaluation order under last-use reference counting (each
       intermediate freed once its last consumer has run, roots pinned),
       the peak a reclaiming executor would reach — always ≤ resident,
       and the number a scheduler should use once eager reclamation
       exists.}}

    [Foreign] operators declare their bounds through the extension
    registry ([Extension.foreign_bound]); an undeclared foreign
    degrades the plan to an unbounded envelope with a [Warning]
    diagnostic rather than an error.

    The first consumer is the {!Mil.session} admission gate: this
    module installs itself as the {!Mil.set_bound_oracle} at link time
    (catalog-only knowledge), and [Bootstrap.ensure] upgrades the
    oracle with the extension registry's foreign bounds. *)

type rowbytes = {
  rb_est : int;  (** Estimated bytes per cell (slot + payload). *)
  rb_max : int option;
      (** Sound per-cell upper bound; [None] when unbounded (strings of
          unknown provenance). *)
}
(** Per-cell byte width of one column.  Every cell costs its 8-byte
    slot; string cells add their payload, tracked through the
    constructors (subsets preserve it, concatenation sums it, unions
    take the max). *)

type cost = {
  rows : Milprop.card;  (** Sound row interval (from {!Milcheck}). *)
  est : int;
      (** Point row estimate, clamped into [rows] — per-constructor
          selectivity rules applied to the children's estimates. *)
  head : rowbytes;
  tail : rowbytes;
}
(** The cost envelope of one operator node. *)

type footprint = {
  fp_lo : int;  (** Sound lower bound, bytes (slots only, payload-free). *)
  fp_est : int;  (** Point estimate, bytes. *)
  fp_hi : int option;  (** Sound upper bound, bytes; [None] = unbounded. *)
}
(** A bytes envelope for a whole plan (or bundle). *)

type plan_bounds = {
  per_node : cost Mil.Tbl.t;
      (** The cost of every distinct subplan of every analyzed root. *)
  resident : footprint;
      (** Memo residency: the sum of every distinct node's size — what
          the retain-everything CSE executor holds once all roots have
          run.  [fp_lo] bounds the nominal (un-deduplicated) sum;
          physical column sharing can only push the measured figure
          below it, never above [fp_hi]. *)
  reclaim : footprint;
      (** Peak of the last-use-refcount liveness simulation: the high
          water mark of a reclaiming executor over the same evaluation
          order, roots held to the end. *)
  diags : Milcheck.diag list;
      (** {!Milcheck} inference diagnostics for the bundle, plus this
          layer's own: [Warning] per undeclared foreign bound, [Error]
          if an estimate ever escapes its sound interval (an analyzer
          bug; checked defensively). *)
}

type foreign_bound = cost list -> cost
(** The registry-declared cost rule of a [Foreign] operator: the
    operator's envelope as a function of its plan arguments' envelopes.
    Like [Milprop.foreign_sig.fs_result], soundness is the extension's
    contract. *)

type env = {
  milenv : Milcheck.env;  (** Property inference environment. *)
  get_bat : string -> Bat.t option;
      (** The materialised BAT behind a catalog name, used to measure
          exact string payload widths for [Get] leaves.  [None] falls
          back to type-directed widths (strings unbounded). *)
  foreign_bound : string -> foreign_bound option;
}

val env_of_catalog :
  ?foreign:(string -> Milprop.foreign_sig option) ->
  ?foreign_bound:(string -> foreign_bound option) ->
  Catalog.t ->
  env
(** Environment over a bare catalog; both foreign lookups default to
    knowing no operators. *)

val analyze : env -> Mil.t list -> plan_bounds
(** Analyze a bundle of root plans as one shared DAG (mirroring the
    executor's cross-plan CSE within a session).  Bumps the
    ["boundcheck.plans"] metric per root when metrics are enabled. *)

val bat_bytes : Bat.t -> int
(** {!Column.bytes} over both columns — the measured size of one
    materialised BAT. *)

val bats_bytes : Bat.t list -> int
(** Total measured bytes of a set of BATs, physically shared columns
    counted once (the executor's reverse/mirror results alias their
    input's arrays). *)

val cost_rows : ?est:int -> Milprop.card -> cost
(** Convenience for extension [foreign_bounds]: a cost with the given
    row interval, fixed-width (8-byte) cells, and [est] (default the
    interval's midpoint heuristic) clamped into the interval. *)

val oracle :
  ?foreign:(string -> Milprop.foreign_sig option) ->
  ?foreign_bound:(string -> foreign_bound option) ->
  unit ->
  Catalog.t ->
  Mil.t ->
  (int * int option) option
(** Build a {!Mil.set_bound_oracle} function: analyzes the plan against
    the catalog and returns [(resident est, resident hi)], or [None]
    when the analysis itself reported errors (unbound names, malformed
    plans — the admission gate then refuses, fail-closed).  A default
    [oracle ()] (no foreign knowledge) is installed at link time. *)
