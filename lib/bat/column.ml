type t =
  | I of int array
  | F of float array
  | S of string array
  | B of bool array
  | O of int array

let ty = function
  | I _ -> Atom.TInt
  | F _ -> Atom.TFlt
  | S _ -> Atom.TStr
  | B _ -> Atom.TBool
  | O _ -> Atom.TOid

let length = function
  | I a -> Array.length a
  | F a -> Array.length a
  | S a -> Array.length a
  | B a -> Array.length a
  | O a -> Array.length a

let get c i =
  match c with
  | I a -> Atom.Int a.(i)
  | F a -> Atom.Flt a.(i)
  | S a -> Atom.Str a.(i)
  | B a -> Atom.Bool a.(i)
  | O a -> Atom.Oid a.(i)

let type_mismatch c a =
  invalid_arg
    (Printf.sprintf "Column: cell type %s does not match column type %s"
       (Atom.ty_name (Atom.type_of a))
       (Atom.ty_name (ty c)))

let set c i a =
  match (c, a) with
  | I arr, Atom.Int v -> arr.(i) <- v
  | F arr, Atom.Flt v -> arr.(i) <- v
  | F arr, Atom.Int v -> arr.(i) <- Float.of_int v
  | S arr, Atom.Str v -> arr.(i) <- v
  | B arr, Atom.Bool v -> arr.(i) <- v
  | O arr, Atom.Oid v -> arr.(i) <- v
  | (I _ | F _ | S _ | B _ | O _), _ -> type_mismatch c a

let make ty n =
  match ty with
  | Atom.TInt -> I (Array.make n 0)
  | Atom.TFlt -> F (Array.make n 0.0)
  | Atom.TStr -> S (Array.make n "")
  | Atom.TBool -> B (Array.make n false)
  | Atom.TOid -> O (Array.make n 0)

let const a n =
  match a with
  | Atom.Int v -> I (Array.make n v)
  | Atom.Flt v -> F (Array.make n v)
  | Atom.Str v -> S (Array.make n v)
  | Atom.Bool v -> B (Array.make n v)
  | Atom.Oid v -> O (Array.make n v)

let init ty n f =
  let c = make ty n in
  for i = 0 to n - 1 do
    set c i (f i)
  done;
  c

let of_atoms ty atoms =
  let n = List.length atoms in
  let c = make ty n in
  List.iteri (fun i a -> set c i a) atoms;
  c

let to_atoms c = List.init (length c) (get c)

let dense base n = O (Array.init n (fun i -> base + i))

let gather c idx =
  match c with
  | I a -> I (Array.map (fun i -> a.(i)) idx)
  | F a -> F (Array.map (fun i -> a.(i)) idx)
  | S a -> S (Array.map (fun i -> a.(i)) idx)
  | B a -> B (Array.map (fun i -> a.(i)) idx)
  | O a -> O (Array.map (fun i -> a.(i)) idx)

let append c d =
  match (c, d) with
  | I a, I b -> I (Array.append a b)
  | F a, F b -> F (Array.append a b)
  | S a, S b -> S (Array.append a b)
  | B a, B b -> B (Array.append a b)
  | O a, O b -> O (Array.append a b)
  | (I _ | F _ | S _ | B _ | O _), _ ->
    invalid_arg "Column.append: type mismatch"

let equal c d =
  match (c, d) with
  | I a, I b -> a = b
  | F a, F b -> Array.length a = Array.length b && Array.for_all2 Float.equal a b
  | S a, S b -> a = b
  | B a, B b -> a = b
  | O a, O b -> a = b
  | (I _ | F _ | S _ | B _ | O _), _ -> false

let bytes = function
  | I a | O a -> 8 * Array.length a
  | F a -> 8 * Array.length a
  | B a -> 8 * Array.length a
  | S a -> Array.fold_left (fun acc s -> acc + 8 + String.length s) 0 a

let oid_exn = function O a -> a | _ -> invalid_arg "Column.oid_exn: not an oid column"
let int_exn = function I a -> a | _ -> invalid_arg "Column.int_exn: not an int column"
let float_exn = function F a -> a | _ -> invalid_arg "Column.float_exn: not a float column"

module Builder = struct
  type buf =
    | BI of int array
    | BF of float array
    | BS of string array
    | BB of bool array
    | BO of int array

  type t = { mutable buf : buf; mutable len : int }

  let create ty =
    let buf =
      match ty with
      | Atom.TInt -> BI (Array.make 16 0)
      | Atom.TFlt -> BF (Array.make 16 0.0)
      | Atom.TStr -> BS (Array.make 16 "")
      | Atom.TBool -> BB (Array.make 16 false)
      | Atom.TOid -> BO (Array.make 16 0)
    in
    { buf; len = 0 }

  let capacity b =
    match b.buf with
    | BI a -> Array.length a
    | BF a -> Array.length a
    | BS a -> Array.length a
    | BB a -> Array.length a
    | BO a -> Array.length a

  let grow b =
    let n = capacity b * 2 in
    let extend make blit a =
      let fresh = make n in
      blit a fresh;
      fresh
    in
    b.buf <-
      (match b.buf with
      | BI a -> BI (extend (fun n -> Array.make n 0) (fun a f -> Array.blit a 0 f 0 b.len) a)
      | BF a -> BF (extend (fun n -> Array.make n 0.0) (fun a f -> Array.blit a 0 f 0 b.len) a)
      | BS a -> BS (extend (fun n -> Array.make n "") (fun a f -> Array.blit a 0 f 0 b.len) a)
      | BB a -> BB (extend (fun n -> Array.make n false) (fun a f -> Array.blit a 0 f 0 b.len) a)
      | BO a -> BO (extend (fun n -> Array.make n 0) (fun a f -> Array.blit a 0 f 0 b.len) a))

  let ensure b = if b.len >= capacity b then grow b

  let add b atom =
    ensure b;
    (match (b.buf, atom) with
    | BI a, Atom.Int v -> a.(b.len) <- v
    | BF a, Atom.Flt v -> a.(b.len) <- v
    | BF a, Atom.Int v -> a.(b.len) <- Float.of_int v
    | BS a, Atom.Str v -> a.(b.len) <- v
    | BB a, Atom.Bool v -> a.(b.len) <- v
    | BO a, Atom.Oid v -> a.(b.len) <- v
    | (BI _ | BF _ | BS _ | BB _ | BO _), _ ->
      invalid_arg "Column.Builder.add: type mismatch");
    b.len <- b.len + 1

  let add_int b v =
    ensure b;
    (match b.buf with
    | BI a -> a.(b.len) <- v
    | _ -> invalid_arg "Column.Builder.add_int: not an int builder");
    b.len <- b.len + 1

  let add_float b v =
    ensure b;
    (match b.buf with
    | BF a -> a.(b.len) <- v
    | _ -> invalid_arg "Column.Builder.add_float: not a float builder");
    b.len <- b.len + 1

  let add_oid b v =
    ensure b;
    (match b.buf with
    | BO a -> a.(b.len) <- v
    | _ -> invalid_arg "Column.Builder.add_oid: not an oid builder");
    b.len <- b.len + 1

  let length b = b.len

  let finish b =
    match b.buf with
    | BI a -> I (Array.sub a 0 b.len)
    | BF a -> F (Array.sub a 0 b.len)
    | BS a -> S (Array.sub a 0 b.len)
    | BB a -> B (Array.sub a 0 b.len)
    | BO a -> O (Array.sub a 0 b.len)
end
