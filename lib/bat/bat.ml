type t = { hd : Column.t; tl : Column.t }

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type binop = Add | Sub | Mul | Div | Pow | MinOp | MaxOp | CmpOp of cmp | And | Or
type unop = Not | Neg | Log | Exp | Sqrt | Abs | ToFlt
type aggr = Sum | Prod | Count | Min | Max | Avg

module AtomTbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

(* Growable int vector used to collect row indices. *)
module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let fresh = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 fresh 0 b.n;
      b.a <- fresh
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let get b i = b.a.(i)
  let set b i v = b.a.(i) <- v
  let len b = b.n
  let finish b = Array.sub b.a 0 b.n
end

(* Growable float vector for unboxed aggregate accumulators. *)
module Fbuf = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 16 0.0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let fresh = Array.make (2 * b.n) 0.0 in
      Array.blit b.a 0 fresh 0 b.n;
      b.a <- fresh
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let get b i = b.a.(i)
  let set b i v = b.a.(i) <- v
  let finish b = Array.sub b.a 0 b.n
end

let make hd tl =
  if Column.length hd <> Column.length tl then
    invalid_arg "Bat.make: column length mismatch";
  { hd; tl }

let empty hty tty = { hd = Column.make hty 0; tl = Column.make tty 0 }

let of_pairs hty tty pairs =
  let hd = Column.of_atoms hty (List.map fst pairs) in
  let tl = Column.of_atoms tty (List.map snd pairs) in
  { hd; tl }

let count b = Column.length b.hd
let hty b = Column.ty b.hd
let tty b = Column.ty b.tl
let head b = b.hd
let tail b = b.tl
let head_at b i = Column.get b.hd i
let tail_at b i = Column.get b.tl i

let to_pairs b = List.init (count b) (fun i -> (head_at b i, tail_at b i))

let iter f b =
  for i = 0 to count b - 1 do
    f (head_at b i) (tail_at b i)
  done

let fold f init b =
  let acc = ref init in
  iter (fun h t -> acc := f !acc h t) b;
  !acc

let equal a b = Column.equal a.hd b.hd && Column.equal a.tl b.tl

let equal_as_set a b =
  let sorted x =
    let pairs = to_pairs x in
    List.sort
      (fun (h1, t1) (h2, t2) ->
        let c = Atom.compare h1 h2 in
        if c <> 0 then c else Atom.compare t1 t2)
      pairs
  in
  count a = count b
  && List.for_all2
       (fun (h1, t1) (h2, t2) -> Atom.equal h1 h2 && Atom.equal t1 t2)
       (sorted a) (sorted b)

let pp ppf b =
  let n = count b in
  let shown = min n 24 in
  Format.fprintf ppf "@[<hov 1>[";
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf ppf ";@ ";
    Format.fprintf ppf "%a->%a" Atom.pp (head_at b i) Atom.pp (tail_at b i)
  done;
  if n > shown then Format.fprintf ppf ";@ …(%d rows)" n;
  Format.fprintf ppf "]@]"

(* {1 Atom-level operator semantics} *)

let numeric_promote a b =
  match (a, b) with
  | Atom.Int x, Atom.Int y -> `Int (x, y)
  | (Atom.Int _ | Atom.Flt _), (Atom.Int _ | Atom.Flt _) ->
    `Flt (Atom.as_float a, Atom.as_float b)
  | _ -> `Other

let bad_operands name a b =
  invalid_arg
    (Printf.sprintf "Bat.%s: bad operand types %s/%s" name
       (Atom.ty_name (Atom.type_of a))
       (Atom.ty_name (Atom.type_of b)))

let apply_cmp c a b =
  (* Mixed int/float operands compare numerically (the type system
     promotes them); Atom.compare's cross-type rank order is only for
     sorting heterogeneous columns. *)
  let r =
    match numeric_promote a b with
    | `Int (x, y) -> Stdlib.compare x y
    | `Flt (x, y) -> Float.compare x y
    | `Other -> Atom.compare a b
  in
  match c with
  | Eq -> r = 0
  | Ne -> r <> 0
  | Lt -> r < 0
  | Le -> r <= 0
  | Gt -> r > 0
  | Ge -> r >= 0

let apply_binop op a b =
  match op with
  | Add -> (
    match numeric_promote a b with
    | `Int (x, y) -> Atom.Int (x + y)
    | `Flt (x, y) -> Atom.Flt (x +. y)
    | `Other -> (
      match (a, b) with Atom.Str x, Atom.Str y -> Atom.Str (x ^ y) | _ -> bad_operands "add" a b))
  | Sub -> (
    match numeric_promote a b with
    | `Int (x, y) -> Atom.Int (x - y)
    | `Flt (x, y) -> Atom.Flt (x -. y)
    | `Other -> bad_operands "sub" a b)
  | Mul -> (
    match numeric_promote a b with
    | `Int (x, y) -> Atom.Int (x * y)
    | `Flt (x, y) -> Atom.Flt (x *. y)
    | `Other -> bad_operands "mul" a b)
  | Div -> (
    match numeric_promote a b with
    | `Int (x, y) -> if y = 0 then raise Division_by_zero else Atom.Int (x / y)
    | `Flt (x, y) -> Atom.Flt (x /. y)
    | `Other -> bad_operands "div" a b)
  | Pow -> (
    match numeric_promote a b with
    | `Int (x, y) -> Atom.Flt (Float.of_int x ** Float.of_int y)
    | `Flt (x, y) -> Atom.Flt (x ** y)
    | `Other -> bad_operands "pow" a b)
  | MinOp -> (
    match numeric_promote a b with
    | `Int (x, y) -> Atom.Int (min x y)
    | `Flt (x, y) -> Atom.Flt (Float.min x y)
    | `Other -> if Atom.compare b a < 0 then b else a)
  | MaxOp -> (
    match numeric_promote a b with
    | `Int (x, y) -> Atom.Int (max x y)
    | `Flt (x, y) -> Atom.Flt (Float.max x y)
    | `Other -> if Atom.compare b a > 0 then b else a)
  | CmpOp c -> Atom.Bool (apply_cmp c a b)
  | And -> (
    match (a, b) with
    | Atom.Bool x, Atom.Bool y -> Atom.Bool (x && y)
    | _ -> bad_operands "and" a b)
  | Or -> (
    match (a, b) with
    | Atom.Bool x, Atom.Bool y -> Atom.Bool (x || y)
    | _ -> bad_operands "or" a b)

let bad_operand name a =
  invalid_arg
    (Printf.sprintf "Bat.%s: bad operand type %s" name (Atom.ty_name (Atom.type_of a)))

let apply_unop op a =
  match (op, a) with
  | Not, Atom.Bool x -> Atom.Bool (not x)
  | Not, _ -> bad_operand "not" a
  | Neg, Atom.Int x -> Atom.Int (-x)
  | Neg, Atom.Flt x -> Atom.Flt (-.x)
  | Neg, _ -> bad_operand "neg" a
  | Log, (Atom.Int _ | Atom.Flt _) -> Atom.Flt (log (Atom.as_float a))
  | Log, _ -> bad_operand "log" a
  | Exp, (Atom.Int _ | Atom.Flt _) -> Atom.Flt (exp (Atom.as_float a))
  | Exp, _ -> bad_operand "exp" a
  | Sqrt, (Atom.Int _ | Atom.Flt _) -> Atom.Flt (sqrt (Atom.as_float a))
  | Sqrt, _ -> bad_operand "sqrt" a
  | Abs, Atom.Int x -> Atom.Int (abs x)
  | Abs, Atom.Flt x -> Atom.Flt (Float.abs x)
  | Abs, _ -> bad_operand "abs" a
  | ToFlt, (Atom.Int _ | Atom.Flt _) -> Atom.Flt (Atom.as_float a)
  | ToFlt, _ -> bad_operand "toflt" a

let binop_result_ty op t1 t2 =
  match op with
  | Add | Sub | Mul | Div | MinOp | MaxOp -> (
    match (t1, t2) with
    | Atom.TInt, Atom.TInt -> Atom.TInt
    | (Atom.TInt | Atom.TFlt), (Atom.TInt | Atom.TFlt) -> Atom.TFlt
    | Atom.TStr, Atom.TStr when op = Add -> Atom.TStr
    | _ when op = MinOp || op = MaxOp -> t1
    | _ -> invalid_arg "Bat.binop_result_ty: non-numeric operands")
  | Pow -> Atom.TFlt
  | CmpOp _ -> Atom.TBool
  | And | Or -> Atom.TBool

let unop_result_ty op t =
  match op with
  | Not -> Atom.TBool
  | Neg | Abs -> t
  | Log | Exp | Sqrt | ToFlt -> Atom.TFlt

(* Typed fast paths for the element-wise calculation loops.  [None]
   means "no specialisation, use the generic boxed loop". *)
let float_binop = function
  | Add -> Some ( +. )
  | Sub -> Some ( -. )
  | Mul -> Some ( *. )
  | Div -> Some ( /. )
  | Pow -> Some ( ** )
  | MinOp -> Some Float.min
  | MaxOp -> Some Float.max
  | CmpOp _ | And | Or -> None

let int_binop = function
  | Add -> Some ( + )
  | Sub -> Some ( - )
  | Mul -> Some ( * )
  | MinOp -> Some min
  | MaxOp -> Some max
  | Div | Pow | CmpOp _ | And | Or -> None

let int_cmp c : int -> int -> bool =
  match c with
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )

let float_cmp c : float -> float -> bool =
  match c with
  | Eq -> fun a b -> Float.compare a b = 0
  | Ne -> fun a b -> Float.compare a b <> 0
  | Lt -> fun a b -> Float.compare a b < 0
  | Le -> fun a b -> Float.compare a b <= 0
  | Gt -> fun a b -> Float.compare a b > 0
  | Ge -> fun a b -> Float.compare a b >= 0

(* Positional element-wise application with typed loops where possible;
   both inputs must be row-aligned. *)
let calc_pos_tails op lt rt =
  match (op, lt, rt) with
  | _, Column.I a, Column.I b -> (
    match (op, int_binop op) with
    | _, Some f -> Some (Column.I (Array.init (Array.length a) (fun i -> f a.(i) b.(i))))
    | CmpOp c, _ ->
      let f = int_cmp c in
      Some (Column.B (Array.init (Array.length a) (fun i -> f a.(i) b.(i))))
    | _ -> None)
  | _, Column.F a, Column.F b -> (
    match (op, float_binop op) with
    | _, Some f -> Some (Column.F (Array.init (Array.length a) (fun i -> f a.(i) b.(i))))
    | CmpOp c, _ ->
      let f = float_cmp c in
      Some (Column.B (Array.init (Array.length a) (fun i -> f a.(i) b.(i))))
    | _ -> None)
  | _ -> None

(* Monet's "void" columns: a head of consecutive oids needs no hash
   index — positions are arithmetic.  Returns the base oid when the
   array is dense ascending. *)
let dense_base arr =
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let base = arr.(0) in
    let ok = ref true in
    let i = ref 1 in
    while !ok && !i < n do
      if arr.(!i) <> base + !i then ok := false;
      incr i
    done;
    if !ok then Some base else None
  end

let is_nondecreasing arr =
  let ok = ref true in
  let i = ref 1 in
  while !ok && !i < Array.length arr do
    if arr.(!i) < arr.(!i - 1) then ok := false;
    incr i
  done;
  !ok

let is_strictly_increasing arr =
  let ok = ref true in
  let i = ref 1 in
  while !ok && !i < Array.length arr do
    if arr.(!i) <= arr.(!i - 1) then ok := false;
    incr i
  done;
  !ok

let same_int_heads l r =
  match (l.hd, r.hd) with
  | (Column.I a | Column.O a), (Column.I b | Column.O b)
    when Column.ty l.hd = Column.ty r.hd ->
    a == b
    || (Array.length a = Array.length b
       &&
       let ok = ref true in
       let i = ref 0 in
       while !ok && !i < Array.length a do
         if a.(!i) <> b.(!i) then ok := false;
         incr i
       done;
       !ok)
  | _ -> false


(* {1 Unary operators} *)

let reverse b = { hd = b.tl; tl = b.hd }
let mirror b = { hd = b.hd; tl = b.hd }
let mark b base = { hd = b.hd; tl = Column.dense base (count b) }
let number_head b base = { hd = Column.dense base (count b); tl = b.hd }
let number_tail b base = { hd = Column.dense base (count b); tl = b.tl }
let project b a = { hd = b.hd; tl = Column.const a (count b) }

let calc1 op b =
  let fast =
    match (op, b.tl) with
    | Not, Column.B a -> Some (Column.B (Array.map not a))
    | Neg, Column.I a -> Some (Column.I (Array.map (fun x -> -x) a))
    | Neg, Column.F a -> Some (Column.F (Array.map (fun x -> -.x) a))
    | Abs, Column.I a -> Some (Column.I (Array.map abs a))
    | Abs, Column.F a -> Some (Column.F (Array.map Float.abs a))
    | ToFlt, Column.I a -> Some (Column.F (Array.map Float.of_int a))
    | ToFlt, Column.F a -> Some (Column.F (Array.copy a))
    | Log, Column.I a -> Some (Column.F (Array.map (fun x -> log (Float.of_int x)) a))
    | Log, Column.F a -> Some (Column.F (Array.map log a))
    | Exp, Column.I a -> Some (Column.F (Array.map (fun x -> exp (Float.of_int x)) a))
    | Exp, Column.F a -> Some (Column.F (Array.map exp a))
    | Sqrt, Column.I a -> Some (Column.F (Array.map (fun x -> sqrt (Float.of_int x)) a))
    | Sqrt, Column.F a -> Some (Column.F (Array.map sqrt a))
    | _ -> None
  in
  match fast with
  | Some out -> { hd = b.hd; tl = out }
  | None ->
    (* unsupported operand types: boxed loop for its error reporting *)
    let n = count b in
    let out = Column.make (unop_result_ty op (tty b)) n in
    for i = 0 to n - 1 do
      Column.set out i (apply_unop op (tail_at b i))
    done;
    { hd = b.hd; tl = out }

let calc_const op b a =
  let fast =
    match (b.tl, a) with
    | Column.I arr, Atom.Int v -> (
      match (op, int_binop op) with
      | _, Some f -> Some (Column.I (Array.map (fun x -> f x v) arr))
      | CmpOp c, _ ->
        let f = int_cmp c in
        Some (Column.B (Array.map (fun x -> f x v) arr))
      | _ -> None)
    | Column.F arr, Atom.Flt v -> (
      match (op, float_binop op) with
      | _, Some f -> Some (Column.F (Array.map (fun x -> f x v) arr))
      | CmpOp c, _ ->
        let f = float_cmp c in
        Some (Column.B (Array.map (fun x -> f x v) arr))
      | _ -> None)
    | _ -> None
  in
  match fast with
  | Some out -> { hd = b.hd; tl = out }
  | None ->
    let n = count b in
    let out = Column.make (binop_result_ty op (tty b) (Atom.type_of a)) n in
    for i = 0 to n - 1 do
      Column.set out i (apply_binop op (tail_at b i) a)
    done;
    { hd = b.hd; tl = out }

let const_calc op a b =
  let fast =
    match (a, b.tl) with
    | Atom.Int v, Column.I arr -> (
      match (op, int_binop op) with
      | _, Some f -> Some (Column.I (Array.map (fun x -> f v x) arr))
      | CmpOp c, _ ->
        let f = int_cmp c in
        Some (Column.B (Array.map (fun x -> f v x) arr))
      | _ -> None)
    | Atom.Flt v, Column.F arr -> (
      match (op, float_binop op) with
      | _, Some f -> Some (Column.F (Array.map (fun x -> f v x) arr))
      | CmpOp c, _ ->
        let f = float_cmp c in
        Some (Column.B (Array.map (fun x -> f v x) arr))
      | _ -> None)
    | _ -> None
  in
  match fast with
  | Some out -> { hd = b.hd; tl = out }
  | None ->
    let n = count b in
    let out = Column.make (binop_result_ty op (Atom.type_of a) (tty b)) n in
    for i = 0 to n - 1 do
      Column.set out i (apply_binop op a (tail_at b i))
    done;
    { hd = b.hd; tl = out }

let take b idx = { hd = Column.gather b.hd idx; tl = Column.gather b.tl idx }

let slice b pos len =
  let n = count b in
  let pos = max 0 pos in
  let len = max 0 (min len (n - pos)) in
  take b (Array.init len (fun i -> pos + i))

let column_comparator c =
  match c with
  | Column.I a | Column.O a -> fun i j -> Int.compare a.(i) a.(j)
  | Column.F a -> fun i j -> Float.compare a.(i) a.(j)
  | Column.S a -> fun i j -> String.compare a.(i) a.(j)
  | Column.B a -> fun i j -> Bool.compare a.(i) a.(j)

let sorted_indices ?(desc = false) c =
  let n = Column.length c in
  let idx = Array.init n (fun i -> i) in
  let cmp = column_comparator c in
  let cmp = if desc then fun i j -> cmp j i else cmp in
  (* Stable: break ties by original position. *)
  let cmp i j =
    let r = cmp i j in
    if r <> 0 then r else Int.compare i j
  in
  Array.sort cmp idx;
  idx

let sort_tail ?(desc = false) b = take b (sorted_indices ~desc b.tl)
let sort_head ?(desc = false) b = take b (sorted_indices ~desc b.hd)

let topn ?(desc = true) b n = slice (sort_tail ~desc b) 0 n

let unique b =
  let seen = AtomTbl.create (count b) in
  let keep = Ibuf.create () in
  for i = 0 to count b - 1 do
    let h = head_at b i in
    let tails = try AtomTbl.find seen h with Not_found -> [] in
    let t = tail_at b i in
    if not (List.exists (Atom.equal t) tails) then begin
      AtomTbl.replace seen h (t :: tails);
      Ibuf.push keep i
    end
  done;
  take b (Ibuf.finish keep)

let unique_head b =
  match b.hd with
  | Column.I hs | Column.O hs ->
    let seen = Hashtbl.create (Array.length hs) in
    let keep = Ibuf.create () in
    Array.iteri
      (fun i h ->
        if not (Hashtbl.mem seen h) then begin
          Hashtbl.add seen h ();
          Ibuf.push keep i
        end)
      hs;
    take b (Ibuf.finish keep)
  | _ ->
    let seen = AtomTbl.create (count b) in
    let keep = Ibuf.create () in
    for i = 0 to count b - 1 do
      let h = head_at b i in
      if not (AtomTbl.mem seen h) then begin
        AtomTbl.add seen h ();
        Ibuf.push keep i
      end
    done;
    take b (Ibuf.finish keep)

(* {1 Selections} *)

let select_indices pred b =
  let keep = Ibuf.create () in
  for i = 0 to count b - 1 do
    if pred i then Ibuf.push keep i
  done;
  take b (Ibuf.finish keep)

let select_cmp b c a =
  match (b.tl, a) with
  | (Column.I arr | Column.O arr), (Atom.Int v | Atom.Oid v)
    when Atom.type_of a = Column.ty b.tl ->
    let f = int_cmp c in
    select_indices (fun i -> f arr.(i) v) b
  | Column.F arr, Atom.Flt v ->
    let f = float_cmp c in
    select_indices (fun i -> f arr.(i) v) b
  | Column.S arr, Atom.Str v ->
    let f = int_cmp c in
    select_indices (fun i -> f (String.compare arr.(i) v) 0) b
  | _ -> select_indices (fun i -> apply_cmp c (tail_at b i) a) b

let select_range b lo hi =
  match (b.tl, lo, hi) with
  | (Column.I arr | Column.O arr), (Atom.Int l | Atom.Oid l), (Atom.Int h | Atom.Oid h)
    when Atom.type_of lo = Column.ty b.tl && Atom.type_of hi = Column.ty b.tl ->
    select_indices (fun i -> l <= arr.(i) && arr.(i) <= h) b
  | Column.F arr, Atom.Flt l, Atom.Flt h ->
    select_indices
      (fun i -> Float.compare l arr.(i) <= 0 && Float.compare arr.(i) h <= 0)
      b
  | Column.S arr, Atom.Str l, Atom.Str h ->
    select_indices
      (fun i -> String.compare l arr.(i) <= 0 && String.compare arr.(i) h <= 0)
      b
  | _ ->
    select_indices
      (fun i ->
        let t = tail_at b i in
        Atom.compare lo t <= 0 && Atom.compare t hi <= 0)
      b

let select_bool b =
  match b.tl with
  | Column.B arr -> select_indices (fun i -> arr.(i)) b
  | _ -> invalid_arg "Bat.select_bool: tail is not boolean"

let filter pred b = select_indices (fun i -> pred (head_at b i) (tail_at b i)) b

(* {1 Binary operators} *)

(* Index of a column: value -> positions in order. *)
let positions_index c =
  let tbl = AtomTbl.create (Column.length c) in
  for i = Column.length c - 1 downto 0 do
    let v = Column.get c i in
    let rest = try AtomTbl.find tbl v with Not_found -> [] in
    AtomTbl.replace tbl v (i :: rest)
  done;
  tbl

let membership_index c =
  let tbl = AtomTbl.create (Column.length c) in
  for i = 0 to Column.length c - 1 do
    AtomTbl.replace tbl (Column.get c i) ()
  done;
  tbl

let join_generic l r =
  let idx = positions_index r.hd in
  let li = Ibuf.create () and rj = Ibuf.create () in
  for i = 0 to count l - 1 do
    match AtomTbl.find_opt idx (tail_at l i) with
    | None -> ()
    | Some js ->
      List.iter
        (fun j ->
          Ibuf.push li i;
          Ibuf.push rj j)
        js
  done;
  { hd = Column.gather l.hd (Ibuf.finish li); tl = Column.gather r.tl (Ibuf.finish rj) }

let join_int l r lt rh =
  let li = Ibuf.create () and rj = Ibuf.create () in
  (match dense_base rh with
  | Some base ->
    (* void head: position arithmetic, keys are unique *)
    let nr = Array.length rh in
    for i = 0 to Array.length lt - 1 do
      let j = lt.(i) - base in
      if j >= 0 && j < nr then begin
        Ibuf.push li i;
        Ibuf.push rj j
      end
    done
  | None ->
    if is_nondecreasing lt && is_strictly_increasing rh then begin
      (* merge join over sorted oid columns *)
      let nr = Array.length rh in
      let j = ref 0 in
      for i = 0 to Array.length lt - 1 do
        while !j < nr && rh.(!j) < lt.(i) do
          incr j
        done;
        if !j < nr && rh.(!j) = lt.(i) then begin
          Ibuf.push li i;
          Ibuf.push rj !j
        end
      done
    end
    else begin
      let idx = Hashtbl.create (Array.length rh) in
      for j = Array.length rh - 1 downto 0 do
        let rest = try Hashtbl.find idx rh.(j) with Not_found -> [] in
        Hashtbl.replace idx rh.(j) (j :: rest)
      done;
      for i = 0 to Array.length lt - 1 do
        match Hashtbl.find_opt idx lt.(i) with
        | None -> ()
        | Some js ->
          List.iter
            (fun j ->
              Ibuf.push li i;
              Ibuf.push rj j)
            js
      done
    end);
  { hd = Column.gather l.hd (Ibuf.finish li); tl = Column.gather r.tl (Ibuf.finish rj) }

let join l r =
  if tty l <> hty r then
    invalid_arg
      (Printf.sprintf "Bat.join: tail type %s does not match head type %s"
         (Atom.ty_name (tty l)) (Atom.ty_name (hty r)));
  match (l.tl, r.hd) with
  | (Column.I lt | Column.O lt), (Column.I rh | Column.O rh) -> join_int l r lt rh
  | _ -> join_generic l r

let leftouterjoin l r default =
  if Atom.type_of default <> tty r then
    invalid_arg "Bat.leftouterjoin: default type does not match right tail";
  let emit_rows find_positions =
    let hb = Column.Builder.create (hty l) in
    let tb = Column.Builder.create (tty r) in
    for i = 0 to count l - 1 do
      let h = head_at l i in
      match find_positions i with
      | None ->
        Column.Builder.add hb h;
        Column.Builder.add tb default
      | Some js ->
        List.iter
          (fun j ->
            Column.Builder.add hb h;
            Column.Builder.add tb (tail_at r j))
          js
    done;
    { hd = Column.Builder.finish hb; tl = Column.Builder.finish tb }
  in
  match (l.tl, r.hd) with
  | (Column.I lt | Column.O lt), (Column.I rh | Column.O rh) ->
    let idx = Hashtbl.create (Array.length rh) in
    for j = Array.length rh - 1 downto 0 do
      Hashtbl.replace idx rh.(j) (j :: Option.value ~default:[] (Hashtbl.find_opt idx rh.(j)))
    done;
    emit_rows (fun i -> Hashtbl.find_opt idx lt.(i))
  | _ ->
    let idx = positions_index r.hd in
    emit_rows (fun i -> AtomTbl.find_opt idx (tail_at l i))

let int_members arr =
  let tbl = Hashtbl.create (Array.length arr) in
  Array.iter (fun v -> Hashtbl.replace tbl v ()) arr;
  tbl

(* membership predicate over the right-hand heads; the caller probes
   with non-decreasing values when [probe_sorted] holds, enabling a
   merge scan over sorted survivors *)
let int_membership_pred ?(probe_sorted = false) rh =
  match dense_base rh with
  | Some base ->
    let n = Array.length rh in
    fun v ->
      let j = v - base in
      j >= 0 && j < n
  | None ->
    if probe_sorted && is_nondecreasing rh then begin
      let n = Array.length rh in
      let j = ref 0 in
      fun v ->
        while !j < n && rh.(!j) < v do
          incr j
        done;
        !j < n && rh.(!j) = v
    end
    else begin
      let members = int_members rh in
      fun v -> Hashtbl.mem members v
    end

let semijoin l r =
  match (l.hd, r.hd) with
  | (Column.I lh | Column.O lh), (Column.I rh | Column.O rh) ->
    let mem = int_membership_pred ~probe_sorted:(is_nondecreasing lh) rh in
    select_indices (fun i -> mem lh.(i)) l
  | _ ->
    let members = membership_index r.hd in
    select_indices (fun i -> AtomTbl.mem members (head_at l i)) l

let antijoin l r =
  match (l.hd, r.hd) with
  | (Column.I lh | Column.O lh), (Column.I rh | Column.O rh) ->
    let mem = int_membership_pred ~probe_sorted:(is_nondecreasing lh) rh in
    select_indices (fun i -> not (mem lh.(i))) l
  | _ ->
    let members = membership_index r.hd in
    select_indices (fun i -> not (AtomTbl.mem members (head_at l i))) l

let kdiff = antijoin
let kintersect = semijoin

let append a b =
  if hty a <> hty b || tty a <> tty b then invalid_arg "Bat.append: type mismatch";
  { hd = Column.append a.hd b.hd; tl = Column.append a.tl b.tl }

let kunion l r = append l (antijoin r l)

let pair_key h t = (Atom.hash h * 31) lxor Atom.hash t

module PairTbl = Hashtbl.Make (struct
  type t = Atom.t * Atom.t

  let equal (h1, t1) (h2, t2) = Atom.equal h1 h2 && Atom.equal t1 t2
  let hash (h, t) = pair_key h t
end)

let pair_set b =
  let tbl = PairTbl.create (count b) in
  iter (fun h t -> PairTbl.replace tbl (h, t) ()) b;
  tbl

let pair_diff l r =
  let rs = pair_set r in
  select_indices (fun i -> not (PairTbl.mem rs (head_at l i, tail_at l i))) l

let pair_inter l r =
  let rs = pair_set r in
  select_indices (fun i -> PairTbl.mem rs (head_at l i, tail_at l i)) l

let pair_union l r = unique (append l r)


let first_position_index c =
  let tbl = AtomTbl.create (Column.length c) in
  for i = 0 to Column.length c - 1 do
    let v = Column.get c i in
    if not (AtomTbl.mem tbl v) then AtomTbl.add tbl v i
  done;
  tbl

let calc2_generic op l r positions =
  let out_ty = binop_result_ty op (tty l) (tty r) in
  let hb = Column.Builder.create (hty l) in
  let tb = Column.Builder.create out_ty in
  for i = 0 to count l - 1 do
    match positions i with
    | None -> ()
    | Some j ->
      Column.Builder.add hb (head_at l i);
      Column.Builder.add tb (apply_binop op (tail_at l i) (tail_at r j))
  done;
  { hd = Column.Builder.finish hb; tl = Column.Builder.finish tb }

let calc2 op l r =
  if count l = count r && same_int_heads l r then
    (* row-aligned operands: positional typed loop when available *)
    match calc_pos_tails op l.tl r.tl with
    | Some out -> { hd = l.hd; tl = out }
    | None -> calc2_generic op l r (fun i -> Some i)
  else
    match (l.hd, r.hd) with
    | (Column.I lh | Column.O lh), (Column.I rh | Column.O rh) ->
      let idx = Hashtbl.create (Array.length rh) in
      for j = Array.length rh - 1 downto 0 do
        if not (Hashtbl.mem idx rh.(j)) then Hashtbl.add idx rh.(j) j
      done;
      calc2_generic op l r (fun i -> Hashtbl.find_opt idx lh.(i))
    | _ ->
      let idx = first_position_index r.hd in
      calc2_generic op l r (fun i -> AtomTbl.find_opt idx (head_at l i))

let calc2_pos op l r =
  if count l <> count r then invalid_arg "Bat.calc2_pos: length mismatch";
  match calc_pos_tails op l.tl r.tl with
  | Some out -> { hd = l.hd; tl = out }
  | None ->
    let out = Column.make (binop_result_ty op (tty l) (tty r)) (count l) in
    for i = 0 to count l - 1 do
      Column.set out i (apply_binop op (tail_at l i) (tail_at r i))
    done;
    { hd = l.hd; tl = out }

(* {1 Grouping and aggregation} *)

type acc = { mutable cnt : int; mutable v : Atom.t option; mutable fsum : float }

let aggr_step op acc t =
  acc.cnt <- acc.cnt + 1;
  (match op with
  | Count -> ()
  | Avg -> acc.fsum <- acc.fsum +. Atom.as_float t
  | Sum | Prod | Min | Max ->
    let combine =
      match op with
      | Sum -> apply_binop Add
      | Prod -> apply_binop Mul
      | Min -> apply_binop MinOp
      | Max -> apply_binop MaxOp
      | Count | Avg -> assert false
    in
    acc.v <- Some (match acc.v with None -> t | Some v -> combine v t))

let aggr_finish op acc =
  match op with
  | Count -> Atom.Int acc.cnt
  | Avg ->
    if acc.cnt = 0 then invalid_arg "Bat.aggr: avg of empty input"
    else Atom.Flt (acc.fsum /. Float.of_int acc.cnt)
  | Sum | Prod | Min | Max -> (
    match acc.v with
    | Some v -> v
    | None ->
      (* float sums may have been accumulated unboxed *)
      if op = Sum && acc.cnt > 0 then Atom.Flt acc.fsum
      else invalid_arg "Bat.aggr: min/max of empty input")

let aggr_neutral op ty =
  match (op, ty) with
  | Sum, Atom.TInt -> Some (Atom.Int 0)
  | Sum, Atom.TFlt -> Some (Atom.Flt 0.0)
  | Prod, Atom.TInt -> Some (Atom.Int 1)
  | Prod, Atom.TFlt -> Some (Atom.Flt 1.0)
  | Count, _ -> Some (Atom.Int 0)
  | _ -> None

let aggr_result_ty op ty =
  match op with
  | Count -> Atom.TInt
  | Avg -> Atom.TFlt
  | Sum | Prod | Min | Max -> ty

(* Slot lookup for unboxed int/oid grouping keys: when the key range is
   a small window the slot map is a flat array (Monet-style) instead of
   a hash table. *)
let int_slot_lookup hs =
  let n = Array.length hs in
  let lo = ref max_int and hi = ref min_int in
  Array.iter
    (fun h ->
      if h < !lo then lo := h;
      if h > !hi then hi := h)
    hs;
  if n > 0 && !hi - !lo < (4 * n) + 64 then begin
    let table = Array.make (!hi - !lo + 1) (-1) in
    let base = !lo in
    (* slot or -1: an option here would box once per row *)
    ((fun h -> table.(h - base)), fun h s -> table.(h - base) <- s)
  end
  else begin
    let tbl = Hashtbl.create n in
    ( (fun h -> match Hashtbl.find_opt tbl h with Some s -> s | None -> -1),
      fun h s -> Hashtbl.add tbl h s )
  end

(* Grouped aggregation over int/oid heads: one constructor match per
   column, then monomorphic loops over unboxed keys and accumulators.
   Only operand combinations without a typed kernel fall back to the
   boxed atom loop (non-numeric tails keep its error behavior). *)
let group_aggr_int_head op b hs =
  let n = Array.length hs in
  let find_slot, add_slot = int_slot_lookup hs in
  let keys = Ibuf.create () in
  let mk_keys ka =
    match Column.ty b.hd with Atom.TOid -> Column.O ka | _ -> Column.I ka
  in
  let int_kernel value comb =
    let vals = Ibuf.create () in
    for i = 0 to n - 1 do
      let h = hs.(i) in
      let s = find_slot h in
      if s >= 0 then Ibuf.set vals s (comb (Ibuf.get vals s) (value i))
      else begin
        add_slot h (Ibuf.len keys);
        Ibuf.push keys h;
        Ibuf.push vals (value i)
      end
    done;
    Column.I (Ibuf.finish vals)
  in
  (* [init] seeds a fresh group's accumulator: first value for min/max,
     [0.0 +. v] for sums (matching the long-standing 0-seeded float
     accumulation of the boxed path bit for bit). *)
  let flt_kernel init value comb =
    let vals = Fbuf.create () in
    for i = 0 to n - 1 do
      let h = hs.(i) in
      let s = find_slot h in
      if s >= 0 then Fbuf.set vals s (comb (Fbuf.get vals s) (value i))
      else begin
        add_slot h (Ibuf.len keys);
        Ibuf.push keys h;
        Fbuf.push vals (init i)
      end
    done;
    Column.F (Fbuf.finish vals)
  in
  let fast =
    match (op, b.tl) with
    | Count, _ -> Some (int_kernel (fun _ -> 1) ( + ))
    | Sum, Column.I ts -> Some (int_kernel (Array.get ts) ( + ))
    | Min, Column.I ts -> Some (int_kernel (Array.get ts) min)
    | Max, Column.I ts -> Some (int_kernel (Array.get ts) max)
    | Prod, Column.I ts -> Some (int_kernel (Array.get ts) ( * ))
    | Sum, Column.F ts ->
      Some (flt_kernel (fun i -> 0.0 +. ts.(i)) (Array.get ts) ( +. ))
    | Min, Column.F ts -> Some (flt_kernel (Array.get ts) (Array.get ts) Float.min)
    | Max, Column.F ts -> Some (flt_kernel (Array.get ts) (Array.get ts) Float.max)
    | Avg, (Column.I _ | Column.F _) ->
      let value =
        match b.tl with
        | Column.F ts -> Array.get ts
        | Column.I ts -> fun i -> Float.of_int ts.(i)
        | _ -> assert false
      in
      let sums = Fbuf.create () and cnts = Ibuf.create () in
      for i = 0 to n - 1 do
        let h = hs.(i) in
        let s = find_slot h in
        if s >= 0 then begin
          Fbuf.set sums s (Fbuf.get sums s +. value i);
          Ibuf.set cnts s (Ibuf.get cnts s + 1)
        end
        else begin
          add_slot h (Ibuf.len keys);
          Ibuf.push keys h;
          Fbuf.push sums (0.0 +. value i);
          Ibuf.push cnts 1
        end
      done;
      let g = Ibuf.len keys in
      Some
        (Column.F
           (Array.init g (fun s -> Fbuf.get sums s /. Float.of_int (Ibuf.get cnts s))))
    | _ -> None
  in
  match fast with
  | Some tl -> { hd = mk_keys (Ibuf.finish keys); tl }
  | None ->
    let accs = ref (Array.make 16 { cnt = 0; v = None; fsum = 0.0 }) in
    let nslots = ref 0 in
    let new_slot () =
      let s = !nslots in
      if s = Array.length !accs then begin
        let fresh = Array.make (2 * s) { cnt = 0; v = None; fsum = 0.0 } in
        Array.blit !accs 0 fresh 0 s;
        accs := fresh
      end;
      !accs.(s) <- { cnt = 0; v = None; fsum = 0.0 };
      incr nslots;
      s
    in
    for i = 0 to n - 1 do
      let h = hs.(i) in
      let s =
        let s = find_slot h in
        if s >= 0 then s
        else begin
          let s = new_slot () in
          add_slot h s;
          Ibuf.push keys h;
          s
        end
      in
      aggr_step op !accs.(s) (tail_at b i)
    done;
    let out = Column.make (aggr_result_ty op (tty b)) !nslots in
    for s = 0 to !nslots - 1 do
      Column.set out s (aggr_finish op !accs.(s))
    done;
    { hd = mk_keys (Ibuf.finish keys); tl = out }

let group_aggr op b =
  match b.hd with
  | Column.I hs | Column.O hs -> group_aggr_int_head op b hs
  | _ ->
    let keys = Column.Builder.create (hty b) in
    let accs = ref (Array.make 16 { cnt = 0; v = None; fsum = 0.0 }) in
    let nslots = ref 0 in
    let new_slot () =
      let s = !nslots in
      if s = Array.length !accs then begin
        let fresh = Array.make (2 * s) { cnt = 0; v = None; fsum = 0.0 } in
        Array.blit !accs 0 fresh 0 s;
        accs := fresh
      end;
      !accs.(s) <- { cnt = 0; v = None; fsum = 0.0 };
      incr nslots;
      s
    in
    let slot_of = AtomTbl.create (count b) in
    iter
      (fun h t ->
        let slot =
          match AtomTbl.find_opt slot_of h with
          | Some s -> s
          | None ->
            let s = new_slot () in
            AtomTbl.add slot_of h s;
            Column.Builder.add keys h;
            s
        in
        aggr_step op !accs.(slot) t)
      b;
    let out = Column.make (aggr_result_ty op (tty b)) !nslots in
    for s = 0 to !nslots - 1 do
      Column.set out s (aggr_finish op !accs.(s))
    done;
    { hd = Column.Builder.finish keys; tl = out }

let aggr_all op b =
  let n = count b in
  if n = 0 then
    match aggr_neutral op (tty b) with
    | Some v -> v
    | None -> invalid_arg "Bat.aggr_all: empty input for min/max/avg"
  else begin
    (* monomorphic folds for the numeric tails; the boxed loop remains
       for compare-based min/max over strings/bools/oids *)
    let fast =
      match (op, b.tl) with
      | Count, _ -> Some (Atom.Int n)
      | Sum, Column.I ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := !s + ts.(i)
        done;
        Some (Atom.Int !s)
      | Prod, Column.I ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := !s * ts.(i)
        done;
        Some (Atom.Int !s)
      | Min, Column.I ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := min !s ts.(i)
        done;
        Some (Atom.Int !s)
      | Max, Column.I ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := max !s ts.(i)
        done;
        Some (Atom.Int !s)
      | Sum, Column.F ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := !s +. ts.(i)
        done;
        Some (Atom.Flt !s)
      | Prod, Column.F ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := !s *. ts.(i)
        done;
        Some (Atom.Flt !s)
      | Min, Column.F ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := Float.min !s ts.(i)
        done;
        Some (Atom.Flt !s)
      | Max, Column.F ts ->
        let s = ref ts.(0) in
        for i = 1 to n - 1 do
          s := Float.max !s ts.(i)
        done;
        Some (Atom.Flt !s)
      | Avg, Column.I ts ->
        let s = ref 0.0 in
        for i = 0 to n - 1 do
          s := !s +. Float.of_int ts.(i)
        done;
        Some (Atom.Flt (!s /. Float.of_int n))
      | Avg, Column.F ts ->
        let s = ref 0.0 in
        for i = 0 to n - 1 do
          s := !s +. ts.(i)
        done;
        Some (Atom.Flt (!s /. Float.of_int n))
      | _ -> None
    in
    match fast with
    | Some v -> v
    | None ->
      let acc = { cnt = 0; v = None; fsum = 0.0 } in
      iter (fun _ t -> aggr_step op acc t) b;
      aggr_finish op acc
  end

let group_rank ?(desc = false) ~link key =
  let val_of = first_position_index key.hd in
  let n = count link in
  let idx = Array.init n (fun i -> i) in
  let value i =
    match AtomTbl.find_opt val_of (head_at link i) with
    | Some j -> Some (tail_at key j)
    | None -> None
  in
  let cmp i j =
    let c = Atom.compare (tail_at link i) (tail_at link j) in
    if c <> 0 then c
    else
      let c =
        match (value i, value j) with
        | Some a, Some b -> if desc then Atom.compare b a else Atom.compare a b
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> 0
      in
      if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  let hb = Column.Builder.create (hty link) in
  let tb = Column.Builder.create Atom.TInt in
  let rank = ref 0 in
  for k = 0 to n - 1 do
    let i = idx.(k) in
    if k > 0 && not (Atom.equal (tail_at link i) (tail_at link idx.(k - 1))) then rank := 0;
    Column.Builder.add hb (head_at link i);
    Column.Builder.add tb (Atom.Int !rank);
    incr rank
  done;
  { hd = Column.Builder.finish hb; tl = Column.Builder.finish tb }

let histogram b = group_aggr Count (reverse b)
