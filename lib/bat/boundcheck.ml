(* Static resource bounds over MIL plans: per-node cardinality/bytes
   cost envelopes plus whole-plan footprints (memo residency and a
   last-use-refcount liveness peak).  See boundcheck.mli for the
   model; Milcheck supplies the sound row intervals, this layer adds
   point estimates and byte tracking on top of the same DAG walk. *)

module P = Milprop

type rowbytes = { rb_est : int; rb_max : int option }

type cost = { rows : P.card; est : int; head : rowbytes; tail : rowbytes }

type footprint = { fp_lo : int; fp_est : int; fp_hi : int option }

type plan_bounds = {
  per_node : cost Mil.Tbl.t;
  resident : footprint;
  reclaim : footprint;
  diags : Milcheck.diag list;
}

type foreign_bound = cost list -> cost

type env = {
  milenv : Milcheck.env;
  get_bat : string -> Bat.t option;
  foreign_bound : string -> foreign_bound option;
}

let env_of_catalog ?foreign ?foreign_bound catalog =
  {
    milenv = Milcheck.env_of_catalog ?foreign catalog;
    get_bat = Catalog.find catalog;
    foreign_bound = Option.value ~default:(fun _ -> None) foreign_bound;
  }

(* {1 Saturating byte arithmetic}

   Cardinality upper bounds can be astronomically large (card_mul
   saturates); byte products must not wrap around into negatives. *)

let sadd a b =
  let s = a + b in
  if s < 0 then max_int else s

let smul a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let opt_map2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

(* {1 Per-cell byte widths} *)

let fixed_rb = { rb_est = 8; rb_max = Some 8 }
let unknown_rb = { rb_est = 8; rb_max = None }

let atom_rb = function
  | Atom.Str s -> { rb_est = 8 + String.length s; rb_max = Some (8 + String.length s) }
  | _ -> fixed_rb

(* Type-directed width when no provenance is available: every
   fixed-width representation costs exactly its slot; strings (or an
   unknown type, which could be a string) are unbounded. *)
let rb_of_ty = function
  | Some Atom.TStr | None -> unknown_rb
  | Some _ -> fixed_rb

(* Exact widths of a materialised column (Get leaves, literals). *)
let col_rb col =
  match col with
  | Column.S a ->
    let n = Array.length a in
    let total = Column.bytes col in
    let mx = Array.fold_left (fun m s -> max m (8 + String.length s)) 8 a in
    { rb_est = (if n = 0 then 8 else (total + n - 1) / n); rb_max = Some mx }
  | _ -> fixed_rb

let rb_union a b =
  { rb_est = max a.rb_est b.rb_est; rb_max = opt_map2 max a.rb_max b.rb_max }

(* String concatenation: payloads add, the 8-byte slot is counted once. *)
let rb_concat a b =
  {
    rb_est = a.rb_est + b.rb_est - 8;
    rb_max = opt_map2 (fun x y -> sadd x y - 8) a.rb_max b.rb_max;
  }

(* {1 Node sizes} *)

let clamp (c : P.card) est =
  let est = max c.P.lo est in
  match c.P.hi with Some h -> min h est | None -> est

let bytes_lo c = smul c.rows.P.lo 16
let bytes_est c = smul c.est (c.head.rb_est + c.tail.rb_est)

let bytes_hi c =
  match (c.rows.P.hi, c.head.rb_max, c.tail.rb_max) with
  | Some r, Some h, Some t -> Some (smul r (h + t))
  | _ -> None

let bat_bytes b = Column.bytes (Bat.head b) + Column.bytes (Bat.tail b)

let bats_bytes bats =
  let seen = ref [] in
  let col c =
    if List.memq c !seen then 0
    else begin
      seen := c :: !seen;
      Column.bytes c
    end
  in
  List.fold_left (fun acc b -> acc + col (Bat.head b) + col (Bat.tail b)) 0 bats

let cost_rows ?est rows =
  let est =
    match est with
    | Some e -> e
    | None -> ( (* midpoint heuristic: lo when unbounded above *)
      match rows.P.hi with Some h -> (rows.P.lo + h) / 2 | None -> rows.P.lo)
  in
  { rows; est = clamp rows est; head = fixed_rb; tail = fixed_rb }

(* {1 The cost walk} *)

type ctx = {
  env : env;
  props : P.t Mil.Tbl.t;  (* Milcheck's shared inference memo *)
  costs : cost Mil.Tbl.t;
  mutable diags : Milcheck.diag list;  (* reverse emission order *)
}

let emit ctx severity path plan fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <-
        { Milcheck.severity; path; op = Mil.op_name plan; message } :: ctx.diags)
    fmt

let prop_of ctx plan =
  match Mil.Tbl.find_opt ctx.props plan with Some p -> p | None -> P.unknown

let rec cost_at ctx path plan =
  match Mil.Tbl.find_opt ctx.costs plan with
  | Some c -> c
  | None ->
    let c = cost_raw ctx path plan in
    (* Self-consistency: the estimate must live inside the sound
       interval.  Unreachable by construction (every rule clamps);
       checked so a future rule cannot silently break the contract. *)
    let c =
      if c.est < c.rows.P.lo || match c.rows.P.hi with Some h -> c.est > h | None -> false
      then begin
        emit ctx Milcheck.Error path plan
          "row estimate %d escapes the sound interval %d..%s" c.est c.rows.P.lo
          (match c.rows.P.hi with Some h -> string_of_int h | None -> "*");
        { c with est = clamp c.rows c.est }
      end
      else c
    in
    Mil.Tbl.add ctx.costs plan c;
    c

(* Intersection of two sound intervals is sound — used to tighten
   Milcheck's interval with bounds derived from the children's cost
   envelopes, which can be sharper below a declared foreign bound
   (Milcheck only knows the foreign's static signature). *)
and inter (a : P.card) (b : P.card) =
  {
    P.lo = max a.P.lo b.P.lo;
    hi =
      (match (a.P.hi, b.P.hi) with
      | Some x, Some y -> Some (min x y)
      | (Some _ as h), None | None, h -> h);
  }

and cost_raw ctx path plan =
  let prop = prop_of ctx plan in
  let rows = prop.P.card in
  let child slot q = cost_at ctx (path ^ slot ^ "/" ^ Mil.op_name q) q in
  let only q = child "" q in
  (* The common case: rows estimated from one input, head and tail
     widths carried per column.  [sound] is a child-derived interval to
     intersect with Milcheck's: exact input rows for row-preserving
    ops, [0..input hi] for subsets, sums/products for combiners. *)
  let mk ?sound est head tail =
    let rows = match sound with Some s -> inter rows s | None -> rows in
    { rows; est = clamp rows est; head; tail }
  in
  let subset_of (c : cost) = { P.lo = 0; hi = c.rows.P.hi } in
  match plan with
  | Mil.Get name -> (
    match ctx.env.get_bat name with
    | Some b -> mk (Bat.count b) (col_rb (Bat.head b)) (col_rb (Bat.tail b))
    | None -> mk rows.P.lo (rb_of_ty prop.P.hty) (rb_of_ty prop.P.tty))
  | Mil.Lit { pairs; _ } ->
    let fold side =
      List.fold_left
        (fun acc pair -> rb_union acc (atom_rb (side pair)))
        fixed_rb pairs
    in
    mk (List.length pairs) (fold fst) (fold snd)
  | Mil.Reverse p ->
    let c = only p in
    mk ~sound:c.rows c.est c.tail c.head
  | Mil.Mirror p ->
    let c = only p in
    mk ~sound:c.rows c.est c.head c.head
  | Mil.Mark (p, _) ->
    let c = only p in
    mk ~sound:c.rows c.est c.head fixed_rb
  | Mil.NumberHead (p, _) ->
    let c = only p in
    mk ~sound:c.rows c.est fixed_rb c.head
  | Mil.NumberTail (p, _) ->
    let c = only p in
    mk ~sound:c.rows c.est fixed_rb c.tail
  | Mil.Project (p, a) ->
    let c = only p in
    mk ~sound:c.rows c.est c.head (atom_rb a)
  | Mil.Calc1 (_, p) ->
    let c = only p in
    (* All unary results are fixed width (not/neg/abs/log/…). *)
    mk ~sound:c.rows c.est c.head fixed_rb
  | Mil.CalcConst (op, p, a) ->
    let c = only p in
    mk ~sound:c.rows c.est c.head (calc_tail op c.tail (atom_rb a) prop.P.tty)
  | Mil.ConstCalc (op, a, p) ->
    let c = only p in
    mk ~sound:c.rows c.est c.head (calc_tail op (atom_rb a) c.tail prop.P.tty)
  | Mil.Calc2 (op, l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    mk
      ~sound:{ (P.card_mul cl.rows cr.rows) with P.lo = 0 }
      (min cl.est cr.est) cl.head (calc_tail op cl.tail cr.tail prop.P.tty)
  | Mil.SelectCmp (p, c, _) ->
    let cp = only p in
    let est =
      match c with
      | Bat.Eq -> cp.est / 10
      | Bat.Ne -> cp.est * 9 / 10
      | Bat.Lt | Bat.Le | Bat.Gt | Bat.Ge -> cp.est / 3
    in
    mk ~sound:(subset_of cp) est cp.head cp.tail
  | Mil.SelectRange (p, _, _) ->
    let cp = only p in
    mk ~sound:(subset_of cp) (cp.est / 4) cp.head cp.tail
  | Mil.SelectBool p ->
    let cp = only p in
    mk ~sound:(subset_of cp) (cp.est / 2) cp.head cp.tail
  | Mil.Join (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    let rprop = prop_of ctx r in
    let est =
      if rprop.P.head_key then cl.est
      else smul cl.est cr.est / max 1 (max cl.est cr.est)
    in
    mk ~sound:{ (P.card_mul cl.rows cr.rows) with P.lo = 0 } est cl.head cr.tail
  | Mil.LeftOuterJoin (l, r, d) ->
    let cl = child ":l" l and cr = child ":r" r in
    mk cl.est cl.head (rb_union cr.tail (atom_rb d))
  | Mil.Semijoin (l, r) | Mil.Antijoin (l, r) | Mil.PairInter (l, r) | Mil.PairDiff (l, r)
    ->
    let cl = child ":l" l and _ = child ":r" r in
    mk ~sound:(subset_of cl) (cl.est / 2) cl.head cl.tail
  | Mil.Kunion (l, r) | Mil.PairUnion (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    mk
      ~sound:{ (P.card_add cl.rows cr.rows) with P.lo = 0 }
      (sadd cl.est (cr.est / 2)) (rb_union cl.head cr.head) (rb_union cl.tail cr.tail)
  | Mil.Append (l, r) ->
    let cl = child ":l" l and cr = child ":r" r in
    mk
      ~sound:{ (P.card_add cl.rows cr.rows) with P.lo = 0 }
      (sadd cl.est cr.est) (rb_union cl.head cr.head) (rb_union cl.tail cr.tail)
  | Mil.Unique p | Mil.UniqueHead p ->
    let c = only p in
    mk ~sound:(subset_of c) (c.est / 2) c.head c.tail
  | Mil.GroupAggr (op, p) ->
    let c = only p in
    mk ~sound:(subset_of c) (c.est / 2) c.head (aggr_tail op c prop.P.tty)
  | Mil.AggrAll (op, p) ->
    let c = only p in
    mk 1 fixed_rb (aggr_tail op c prop.P.tty)
  | Mil.GroupRank { link; key; _ } ->
    let cl = child ":link" link and _ = child ":key" key in
    mk ~sound:cl.rows cl.est cl.head fixed_rb
  | Mil.SortTail (p, _) ->
    let c = only p in
    mk ~sound:c.rows c.est c.head c.tail
  | Mil.Slice (p, _, _) | Mil.TopN (p, _, _) ->
    let c = only p in
    (* clamp does the real work: the interval already carries the
       pos/len arithmetic from Milcheck. *)
    mk ~sound:(subset_of c) c.est c.head c.tail
  | Mil.Foreign { name; args; _ } -> (
    let arg_costs = List.mapi (fun i a -> child (Printf.sprintf ":%d" i) a) args in
    match ctx.env.foreign_bound name with
    | Some f ->
      let c = f arg_costs in
      { c with est = clamp c.rows c.est }
    | None ->
      emit ctx Milcheck.Warning path plan
        "foreign operator %S declares no resource bounds — the plan is unbounded" name;
      { rows = P.any_card; est = 0; head = unknown_rb; tail = unknown_rb })

(* Element-wise binary results: fixed width unless the result is a
   string — concatenation for Add, either operand for min/max. *)
and calc_tail op l r tty =
  match tty with
  | Some Atom.TStr -> (
    match op with
    | Bat.Add -> rb_concat l r
    | Bat.MinOp | Bat.MaxOp -> rb_union l r
    | _ -> unknown_rb)
  | Some _ -> fixed_rb
  | None -> unknown_rb

(* Aggregate results: min/max return a member of the group; sum over
   strings concatenates up to every input row's payload into one cell. *)
and aggr_tail op (c : cost) tty =
  match (op, tty) with
  | Bat.Sum, Some Atom.TStr ->
    {
      rb_est = c.tail.rb_est;
      rb_max =
        opt_map2 (fun rhi m -> sadd 8 (smul rhi (m - 8))) c.rows.P.hi c.tail.rb_max;
    }
  | (Bat.Min | Bat.Max), _ -> c.tail
  | _, (Some Atom.TStr | None) -> unknown_rb
  | _, Some _ -> fixed_rb

(* {1 Whole-plan footprints} *)

(* Distinct nodes in evaluation order: post-order, first visit — the
   order the memoising executor materialises them. *)
let schedule roots =
  let seen = Mil.Tbl.create 64 in
  let order = ref [] in
  let rec go p =
    if not (Mil.Tbl.mem seen p) then begin
      Mil.Tbl.add seen p ();
      List.iter go (Mil.children p);
      order := p :: !order
    end
  in
  List.iter go roots;
  List.rev !order

let footprints costs nodes roots =
  let cost n = Mil.Tbl.find costs n in
  (* Residency: every distinct node held to the end of the bundle. *)
  let resident =
    List.fold_left
      (fun acc n ->
        let c = cost n in
        {
          fp_lo = sadd acc.fp_lo (bytes_lo c);
          fp_est = sadd acc.fp_est (bytes_est c);
          fp_hi = opt_map2 sadd acc.fp_hi (bytes_hi c);
        })
      { fp_lo = 0; fp_est = 0; fp_hi = Some 0 }
      nodes
  in
  (* Liveness: a node is materialised when evaluated and reclaimed when
     its last consumer has finished; roots stay pinned.  Refcounts
     count DAG edges (a parent consuming the same child twice holds two
     references, released together when the parent completes). *)
  let refs = Mil.Tbl.create 64 in
  let bump p by =
    Mil.Tbl.replace refs p (by + Option.value ~default:0 (Mil.Tbl.find_opt refs p))
  in
  List.iter (fun n -> List.iter (fun c -> bump c 1) (Mil.children n)) nodes;
  List.iter (fun r -> bump r 1) roots;
  let bounded = resident.fp_hi <> None in
  let live = ref { fp_lo = 0; fp_est = 0; fp_hi = Some 0 } in
  let peak = ref !live in
  let shift sign c =
    let f cur delta = max 0 (cur + (sign * delta)) in
    live :=
      {
        fp_lo = f !live.fp_lo (bytes_lo c);
        fp_est = f !live.fp_est (bytes_est c);
        fp_hi =
          (if bounded then
             opt_map2 (fun cur h -> max 0 (cur + (sign * h))) !live.fp_hi (bytes_hi c)
           else None);
      }
  in
  List.iter
    (fun n ->
      shift 1 (cost n);
      peak :=
        {
          fp_lo = max !peak.fp_lo !live.fp_lo;
          fp_est = max !peak.fp_est !live.fp_est;
          fp_hi = opt_map2 max !peak.fp_hi !live.fp_hi;
        };
      List.iter
        (fun ch ->
          let k = Mil.Tbl.find refs ch - 1 in
          Mil.Tbl.replace refs ch k;
          if k = 0 then shift (-1) (cost ch))
        (Mil.children n))
    nodes;
  let reclaim = if bounded then !peak else { !peak with fp_hi = None } in
  (resident, reclaim)

let analyze env plans =
  if Mirror_util.Metrics.enabled () then
    Mirror_util.Metrics.incr ~by:(List.length plans) "boundcheck.plans";
  let props, pdiags = Milcheck.infer_table env.milenv plans in
  let ctx = { env; props; costs = Mil.Tbl.create 64; diags = [] } in
  List.iter (fun plan -> ignore (cost_at ctx (Mil.op_name plan) plan)) plans;
  let nodes = schedule plans in
  let resident, reclaim = footprints ctx.costs nodes plans in
  { per_node = ctx.costs; resident; reclaim; diags = pdiags @ List.rev ctx.diags }

(* {1 The admission oracle} *)

let oracle ?foreign ?foreign_bound () catalog plan =
  let env = env_of_catalog ?foreign ?foreign_bound catalog in
  let b = analyze env [ plan ] in
  match Milcheck.errors b.diags with
  | _ :: _ -> None
  | [] -> Some (b.resident.fp_est, b.resident.fp_hi)

(* Catalog-only default: budgeted sessions work out of the box for
   extension-free plans; Bootstrap upgrades this with the registry's
   foreign signatures and bounds. *)
let () = Mil.set_bound_oracle (oracle ())
