(** Physical query plans over BATs ("MIL programs").

    The Moa flattening compiler emits values of {!type-t}; the executor
    evaluates them against a {!Catalog.t}.  Plans are pure expression
    DAGs expressed as trees — structurally equal subplans denote the
    same computation, and the executor's memo table evaluates each
    distinct subplan once (common-subexpression elimination), which is
    where the set-at-a-time sharing of the flattened algebra comes
    from.

    Extensions contribute {!constructor-Foreign} operators (e.g. the CONTREP
    structure's probabilistic [getbl] operator); they are resolved
    through the dispatch function supplied when opening a session. *)

type t =
  | Get of string  (** Catalog lookup. *)
  | Lit of { hty : Atom.ty; tty : Atom.ty; pairs : (Atom.t * Atom.t) list }
      (** Small literal BAT (query constants, singleton domains). *)
  | Reverse of t
  | Mirror of t
  | Mark of t * int  (** Fresh dense tail oids from the given base. *)
  | NumberHead of t * int  (** [(base+i, head_i)] positional numbering. *)
  | NumberTail of t * int  (** [(base+i, tail_i)]. *)
  | Project of t * Atom.t  (** Constant tail. *)
  | Calc1 of Bat.unop * t
  | CalcConst of Bat.binop * t * Atom.t
  | ConstCalc of Bat.binop * Atom.t * t
  | Calc2 of Bat.binop * t * t  (** Head-aligned element-wise op. *)
  | SelectCmp of t * Bat.cmp * Atom.t
  | SelectRange of t * Atom.t * Atom.t
  | SelectBool of t
  | Join of t * t
  | LeftOuterJoin of t * t * Atom.t
  | Semijoin of t * t
  | Antijoin of t * t
  | Kunion of t * t
  | PairUnion of t * t
  | PairDiff of t * t
  | PairInter of t * t
  | Append of t * t
  | Unique of t
  | UniqueHead of t
  | GroupAggr of Bat.aggr * t
  | AggrAll of Bat.aggr * t
      (** Single-row result [(@0, v)]; empty inputs yield the
          aggregate's neutral element (and raise for min/max/avg as in
          {!Bat.aggr_all}). *)
  | GroupRank of { link : t; key : t; desc : bool }
  | SortTail of t * bool  (** [true] = descending. *)
  | Slice of t * int * int
  | TopN of t * int * bool
  | Foreign of { name : string; args : t list; meta : string list }
      (** Extension-registered physical operator. *)

exception Unbound of string
(** Raised by the executor when a [Get] refers to a catalog name that
    is not bound, carrying the offending name. *)

type foreign_fn = name:string -> args:Bat.t list -> meta:string list -> Bat.t
(** Dispatch for {!constructor-Foreign} nodes.  Implementations must be pure
    (same inputs, same output) because results are memoised. *)

(** Executor counters, for plan-quality experiments. *)
type stats = {
  mutable evaluated : int;  (** Operator nodes actually executed. *)
  mutable memo_hits : int;  (** Nodes answered from the memo table. *)
  mutable rows_produced : int;  (** Total rows over executed nodes. *)
  mutable par_ops : int;  (** Operators executed on the parallel kernel. *)
  mutable par_morsels : int;  (** Morsels scheduled across those operators. *)
}

type par = { pool : Parkernel.pool; safe : t -> bool; morsel : t -> int option }
(** Parallel-execution licence for a session: the domain pool to run
    on, and the Effcheck verdict predicate ({!Effcheck.verdict.safe})
    deciding per node whether its partition is effect-free.  Operators
    whose node is unsafe — or whose operands have no deterministic
    parallel path — run the sequential kernel; results are identical
    either way.  [morsel] is an optional per-node morsel-size hint
    (typically [Parkernel.morsel_for] over a [Boundcheck] row
    estimate): when it returns [Some m] the node's parallel dispatch
    runs under {!Parkernel.with_morsel_size}[ m], so small inputs are
    split across the domains instead of landing in one default-sized
    morsel.  [fun _ -> None] preserves the fixed default. *)

type session
(** An execution context: catalog + foreign dispatch + memo table.
    Re-using one session across the plans of a bundle shares their
    common subplans. *)

exception Admission_refused of {
  op : string;  (** {!op_name} of the refused root plan. *)
  est_bytes : int;  (** The oracle's point estimate of peak bytes. *)
  peak_bytes : int option;
      (** Static peak upper bound; [None] when the plan is unbounded
          (or no oracle is installed) — refused regardless of budget. *)
  budget : int;  (** The session's [max_bytes]. *)
}
(** Raised by {!exec} when a session opened with [?max_bytes] is asked
    to run a plan whose static peak-memory envelope exceeds the budget
    (or cannot be bounded at all). *)

val set_bound_oracle : (Catalog.t -> t -> (int * int option) option) -> unit
(** Install the resource-bound oracle behind the admission gate:
    [(estimate, peak upper bound)] in bytes for executing a root plan
    against a catalog, or [None] when the plan cannot be analyzed.  The
    default oracle knows nothing, so budgeted sessions fail closed
    until [Boundcheck] (linked) registers the real analyzer;
    [Bootstrap.ensure] upgrades it with the extension registry's
    foreign bounds. *)

val session :
  ?cse:bool ->
  ?trace:Mirror_util.Trace.t ->
  ?foreign:foreign_fn ->
  ?par:par ->
  ?max_bytes:int ->
  Catalog.t ->
  session
(** Open a session.  [cse] (default [true]) controls whether the memo
    table is consulted; switching it off re-executes shared subplans
    and exists for the optimisation-benefit experiments.  [trace]
    (default {!Mirror_util.Trace.null}) receives one span per executed
    operator — nested like the plan, with the produced row count — and
    a zero-duration ["memo=hit"] event per memo-table answer.  When the
    {!Mirror_util.Metrics} registry is enabled the executor also bumps
    ["mil.op.<name>"] / ["mil.rows.<name>"] counters per operator.
    [par] (default: none, fully sequential) enables morsel-parallel
    operator execution gated on its {!type-par} predicate; parallel
    executions add a ["par=<domains>d/<morsels>m"] attribute to their
    span and bump ["mil.par.ops"] / ["mil.par.morsels"].  [max_bytes]
    (default: unlimited) arms the admission gate: every distinct root
    handed to {!exec} is first vetted against the bound oracle, and
    plans whose static peak-memory envelope exceeds the budget — or
    cannot be bounded — raise {!Admission_refused} before any operator
    runs.  Admissions bump ["mil.admission.ok"]/["mil.admission.refused"]
    when metrics are enabled. *)

val exec : session -> t -> Bat.t
(** Evaluate a plan.
    @raise Unbound when a [Get] name is unbound.
    @raise Failure when a [Foreign] operator is unknown.
    @raise Admission_refused when the session's [max_bytes] budget
    cannot accommodate the plan's static peak envelope. *)

val resident_bytes : session -> int
(** Bytes currently held by the session's memo table (its materialized
    intermediate results), physically shared columns counted once.
    Zero for [cse:false] sessions, which retain nothing.  The runtime
    ground truth validated against [Boundcheck]'s static resident
    envelope. *)

val stats : session -> stats
(** The session's counters so far. *)

val trace : session -> Mirror_util.Trace.t
(** The trace the session was opened with ({!Mirror_util.Trace.null}
    when none was given). *)

val profile : session -> (string * float * int) list
(** Per-operator (name, self seconds, evaluations) aggregated from the
    session's trace, most expensive first; empty unless the session was
    opened with an enabled [trace]. *)

val size : t -> int
(** Number of operator nodes (tree size, before sharing). *)

val children : t -> t list
(** Direct subplans, in evaluation order (the order {!exec} evaluates
    them and the order analyzer slot paths [:l]/[:r]/[:0]… follow). *)

val hash : t -> int
(** Structural hash of a plan, consistent with structural equality.
    Bounded traversal, so O(1) even on arbitrarily deep plans;
    collisions between plans that differ only below the bound are
    resolved by the table's equality check, which short-circuits on
    physically shared subterms. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by plans under structural equality, using
    {!val-hash} and an equality with a physical-identity fast path.
    This is what the executor's memo table and the analyzers' per-node
    tables use: CSE equates structurally equal subplans, and probing
    with the very node that populated the table costs one pointer
    comparison. *)

val catalog : session -> Catalog.t
(** The catalog the session was opened on. *)

val cse_enabled : session -> bool
(** Whether the session consults its memo table. *)

val op_name : t -> string
(** Short operator name ("join", "foreign:getbl", …) as used in
    profiles and diagnostics. *)

val cmp_name : Bat.cmp -> string
val binop_name : Bat.binop -> string
val unop_name : Bat.unop -> string
val aggr_name : Bat.aggr -> string
(** Operator spellings shared by {!pp} and the {!Milcheck}
    diagnostics. *)

val pp : Format.formatter -> t -> unit
(** Indented plan rendering. *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)
