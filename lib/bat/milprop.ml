type card = { lo : int; hi : int option }

type t = {
  hty : Atom.ty option;
  tty : Atom.ty option;
  head_key : bool;
  tail_key : bool;
  dense_head : bool;
  dense_tail : bool;
  sorted_head : bool;
  sorted_tail : bool;
  card : card;
}

type foreign_sig = { fs_arity : int; fs_meta_min : int; fs_result : t }

let any_card = { lo = 0; hi = None }

let unknown =
  {
    hty = None;
    tty = None;
    head_key = false;
    tail_key = false;
    dense_head = false;
    dense_tail = false;
    sorted_head = false;
    sorted_tail = false;
    card = any_card;
  }

(* Density implies keyness and sortedness on that column; a plan
   guaranteed empty satisfies every per-row property vacuously. *)
let normalize p =
  let p =
    {
      p with
      head_key = p.head_key || p.dense_head;
      tail_key = p.tail_key || p.dense_tail;
      sorted_head = p.sorted_head || p.dense_head;
      sorted_tail = p.sorted_tail || p.dense_tail;
    }
  in
  if p.card.hi = Some 0 then
    { p with head_key = true; tail_key = true; sorted_head = true; sorted_tail = true }
  else p

let exactly n = { lo = n; hi = Some n }

let card_add a b =
  { lo = a.lo + b.lo; hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x + y) | _ -> None) }

let card_mul a b =
  let mul x y =
    if x = 0 || y = 0 then Some 0
    else
      let p = x * y in
      if p / x <> y then None else Some p
  in
  { lo = 0; hi = (match (a.hi, b.hi) with Some x, Some y -> mul x y | _ -> None) }

let card_upto c = { lo = 0; hi = c.hi }

let card_min_hi c n =
  { lo = min c.lo n; hi = (match c.hi with Some h -> Some (min h n) | None -> Some n) }

let card_intersects a b =
  (match b.hi with Some h -> a.lo <= h | None -> true)
  && match a.hi with Some h -> b.lo <= h | None -> true

let is_empty p = p.card.hi = Some 0

let swap p =
  {
    p with
    hty = p.tty;
    tty = p.hty;
    head_key = p.tail_key;
    tail_key = p.head_key;
    dense_head = p.dense_tail;
    dense_tail = p.dense_head;
    sorted_head = p.sorted_tail;
    sorted_tail = p.sorted_head;
  }

(* {1 Actual properties of a materialised BAT} *)

(* Columns are immutable once built, so the (key, dense, sorted)
   verdict of a column never changes and is cached against the
   column's physical identity.  Corpus-wide lint calls [of_bat] on the
   same catalog columns once per query; the weak cache makes each
   column's O(n) scan happen once overall, and dropping the last
   reference to a column drops its cache entry. *)
module Colcache = Ephemeron.K1.Make (struct
  type t = Column.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let facts_cache : (bool * bool * bool) Colcache.t = Colcache.create 256

let scan_column_facts col =
  let n = Column.length col in
  let key = ref true and sorted = ref true and dense = ref true in
  (match col with
  | Column.I a | Column.O a ->
    (match col with Column.O _ -> () | _ -> dense := false);
    for i = 1 to n - 1 do
      if a.(i) < a.(i - 1) then sorted := false;
      if a.(i) <> a.(i - 1) + 1 then dense := false
    done;
    if not !dense then begin
      let seen = Hashtbl.create n in
      (try
         Array.iter
           (fun v ->
             if Hashtbl.mem seen v then begin
               key := false;
               raise Exit
             end
             else Hashtbl.add seen v ())
           a
       with Exit -> ())
    end
  | _ ->
    dense := false;
    let seen = Hashtbl.create n in
    for i = 0 to n - 1 do
      let v = Column.get col i in
      if i > 0 && Atom.compare (Column.get col (i - 1)) v > 0 then sorted := false;
      if Hashtbl.mem seen v then key := false else Hashtbl.add seen v ()
    done);
  (!key, !dense && Column.ty col = Atom.TOid, !sorted)

let column_facts col =
  match Colcache.find_opt facts_cache col with
  | Some f -> f
  | None ->
    let f = scan_column_facts col in
    Colcache.add facts_cache col f;
    f

let of_bat b =
  let hkey, hdense, hsorted = column_facts (Bat.head b) in
  let tkey, tdense, tsorted = column_facts (Bat.tail b) in
  normalize
    {
      hty = Some (Bat.hty b);
      tty = Some (Bat.tty b);
      head_key = hkey;
      tail_key = tkey;
      dense_head = hdense;
      dense_tail = tdense;
      sorted_head = hsorted;
      sorted_tail = tsorted;
      card = exactly (Bat.count b);
    }

(* {1 Envelope comparisons} *)

let envelope_ok ~inferred ~actual =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let ty_name = Atom.ty_name in
  (match (inferred.hty, actual.hty) with
  | Some i, Some a when i <> a -> fail "head type: inferred %s, actual %s" (ty_name i) (ty_name a)
  | _ -> ());
  (match (inferred.tty, actual.tty) with
  | Some i, Some a when i <> a -> fail "tail type: inferred %s, actual %s" (ty_name i) (ty_name a)
  | _ -> ());
  let flag name i a = if i && not a then fail "%s inferred but not satisfied" name in
  flag "head-key" inferred.head_key actual.head_key;
  flag "tail-key" inferred.tail_key actual.tail_key;
  flag "dense-head" inferred.dense_head actual.dense_head;
  flag "dense-tail" inferred.dense_tail actual.dense_tail;
  flag "sorted-head" inferred.sorted_head actual.sorted_head;
  flag "sorted-tail" inferred.sorted_tail actual.sorted_tail;
  let n = actual.card.lo in
  if n < inferred.card.lo then fail "cardinality %d below inferred lower bound %d" n inferred.card.lo;
  (match inferred.card.hi with
  | Some h when n > h -> fail "cardinality %d above inferred upper bound %d" n h
  | _ -> ());
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

let compatible a b =
  (match (a.hty, b.hty) with Some x, Some y -> x = y | _ -> true)
  && (match (a.tty, b.tty) with Some x, Some y -> x = y | _ -> true)
  && card_intersects a.card b.card

(* {1 Rendering} *)

let pp_card ppf c =
  match c.hi with
  | Some h when h = c.lo -> Format.fprintf ppf "%d" c.lo
  | Some h -> Format.fprintf ppf "%d..%d" c.lo h
  | None -> Format.fprintf ppf "%d.." c.lo

let pp ppf p =
  let ty = function Some t -> Atom.ty_name t | None -> "?" in
  let flags =
    List.filter_map
      (fun (set, name) -> if set then Some name else None)
      [
        (p.dense_head, "dense-head");
        (p.dense_tail, "dense-tail");
        (p.head_key && not p.dense_head, "head-key");
        (p.tail_key && not p.dense_tail, "tail-key");
        (p.sorted_head && not p.dense_head, "sorted-head");
        (p.sorted_tail && not p.dense_tail, "sorted-tail");
      ]
  in
  Format.fprintf ppf "[%s->%s |%a|%s]" (ty p.hty) (ty p.tty) pp_card p.card
    (match flags with [] -> "" | fs -> " " ^ String.concat "," fs)

let to_string p = Format.asprintf "%a" pp p
