let rules fired plan =
  let fire p =
    incr fired;
    p
  in
  match plan with
  | Mil.Reverse (Mil.Reverse p) -> fire p
  | Mil.Mirror (Mil.Mirror p) -> fire (Mil.Mirror p)
  | Mil.Reverse (Mil.Mirror p) -> fire (Mil.Mirror p)
  | Mil.Mirror (Mil.Reverse (Mil.Mirror p)) -> fire (Mil.Mirror p)
  | Mil.Semijoin (Mil.Semijoin (p, s1), s2) when s1 = s2 -> fire (Mil.Semijoin (p, s1))
  | Mil.Semijoin (p, q) when p = q -> fire p
  | Mil.Kunion (p, q) when p = q -> fire p
  | Mil.Unique (Mil.Unique p) -> fire (Mil.Unique p)
  | Mil.Append (p, Mil.Lit { pairs = []; _ }) -> fire p
  | Mil.Slice (Mil.SortTail (p, desc), 0, n) -> fire (Mil.TopN (p, n, desc))
  | Mil.CalcConst (op, Mil.Lit { hty; tty = _; pairs }, a) -> (
    match
      List.map (fun (h, t) -> (h, Bat.apply_binop op t a)) pairs
    with
    | [] -> plan
    | (_, t0) :: _ as folded ->
      fire (Mil.Lit { hty; tty = Atom.type_of t0; pairs = folded })
    | exception (Invalid_argument _ | Division_by_zero) -> plan)
  | p -> p

let rec pass fired plan =
  let descend p = pass fired p in
  let p =
    match plan with
    | Mil.Get _ | Mil.Lit _ -> plan
    | Mil.Reverse p -> Mil.Reverse (descend p)
    | Mil.Mirror p -> Mil.Mirror (descend p)
    | Mil.Mark (p, b) -> Mil.Mark (descend p, b)
    | Mil.NumberHead (p, b) -> Mil.NumberHead (descend p, b)
    | Mil.NumberTail (p, b) -> Mil.NumberTail (descend p, b)
    | Mil.Project (p, a) -> Mil.Project (descend p, a)
    | Mil.Calc1 (op, p) -> Mil.Calc1 (op, descend p)
    | Mil.CalcConst (op, p, a) -> Mil.CalcConst (op, descend p, a)
    | Mil.ConstCalc (op, a, p) -> Mil.ConstCalc (op, a, descend p)
    | Mil.Calc2 (op, l, r) -> Mil.Calc2 (op, descend l, descend r)
    | Mil.SelectCmp (p, c, a) -> Mil.SelectCmp (descend p, c, a)
    | Mil.SelectRange (p, lo, hi) -> Mil.SelectRange (descend p, lo, hi)
    | Mil.SelectBool p -> Mil.SelectBool (descend p)
    | Mil.Join (l, r) -> Mil.Join (descend l, descend r)
    | Mil.LeftOuterJoin (l, r, d) -> Mil.LeftOuterJoin (descend l, descend r, d)
    | Mil.Semijoin (l, r) -> Mil.Semijoin (descend l, descend r)
    | Mil.Antijoin (l, r) -> Mil.Antijoin (descend l, descend r)
    | Mil.Kunion (l, r) -> Mil.Kunion (descend l, descend r)
    | Mil.PairUnion (l, r) -> Mil.PairUnion (descend l, descend r)
    | Mil.PairDiff (l, r) -> Mil.PairDiff (descend l, descend r)
    | Mil.PairInter (l, r) -> Mil.PairInter (descend l, descend r)
    | Mil.Append (l, r) -> Mil.Append (descend l, descend r)
    | Mil.Unique p -> Mil.Unique (descend p)
    | Mil.UniqueHead p -> Mil.UniqueHead (descend p)
    | Mil.GroupAggr (op, p) -> Mil.GroupAggr (op, descend p)
    | Mil.AggrAll (op, p) -> Mil.AggrAll (op, descend p)
    | Mil.GroupRank { link; key; desc } ->
      Mil.GroupRank { link = descend link; key = descend key; desc }
    | Mil.SortTail (p, d) -> Mil.SortTail (descend p, d)
    | Mil.Slice (p, pos, len) -> Mil.Slice (descend p, pos, len)
    | Mil.TopN (p, n, d) -> Mil.TopN (descend p, n, d)
    | Mil.Foreign { name; args; meta } ->
      Mil.Foreign { name; args = List.map descend args; meta }
  in
  rules fired p

(* Every rule strictly decreases the node count, so iterating to a
   fixpoint terminates — no pass cap needed (a cap would let deep
   chains escape un-normalised and break idempotence). *)
let rewrite_count plan =
  let fired = ref 0 in
  let rec fix p =
    let p' = pass fired p in
    if p' = p then p else fix p'
  in
  (fix plan, !fired)

let rewrite plan = fst (rewrite_count plan)
