(** Typed column vectors.

    A BAT is a pair of equal-length columns.  Columns are monomorphic —
    each holds atoms of exactly one base type — and are immutable once
    built (kernel operators always allocate fresh columns).  The
    {!Builder} sub-module provides the growable buffer used while an
    operator is producing its result. *)

type t =
  | I of int array
  | F of float array
  | S of string array
  | B of bool array
  | O of int array  (** object identifiers *)

val ty : t -> Atom.ty
(** Base type of the column. *)

val length : t -> int
(** Number of cells. *)

val get : t -> int -> Atom.t
(** [get c i] boxes cell [i] as an atom. *)

val set : t -> int -> Atom.t -> unit
(** [set c i a] writes cell [i]; the atom's type must match the column
    type.  Reserved for freshly-allocated columns inside kernel
    operators. *)

val make : Atom.ty -> int -> t
(** Column of the given length filled with the type's zero value. *)

val const : Atom.t -> int -> t
(** Column of the given length filled with one atom. *)

val init : Atom.ty -> int -> (int -> Atom.t) -> t
(** Initialise cell-by-cell. *)

val of_atoms : Atom.ty -> Atom.t list -> t
(** Build from a list; every atom must have the stated type. *)

val to_atoms : t -> Atom.t list
(** Box all cells. *)

val dense : int -> int -> t
(** [dense base n] is the oid column [base, base+1, …, base+n-1]. *)

val gather : t -> int array -> t
(** [gather c idx] is the column [c.(idx.(0)); c.(idx.(1)); …] — the
    positional take primitive behind selections and joins. *)

val append : t -> t -> t
(** Concatenate two columns of the same type. *)

val equal : t -> t -> bool
(** Same type, length and cell values. *)

val bytes : t -> int
(** Nominal payload size in bytes: 8 per cell (the slot), plus the
    string payload for [S] columns.  The accounting model shared with
    {!Boundcheck}'s static envelopes — deliberately representation-
    independent (a bool cell counts 8 like everything else) so that
    static and measured sides agree. *)

val oid_exn : t -> int array
(** Underlying array of an oid column. @raise Invalid_argument otherwise. *)

val int_exn : t -> int array
(** Underlying array of an int column. @raise Invalid_argument otherwise. *)

val float_exn : t -> float array
(** Underlying array of a float column. @raise Invalid_argument otherwise. *)

module Builder : sig
  type col := t

  type t
  (** Growable, type-fixed buffer of atoms. *)

  val create : Atom.ty -> t
  (** Empty builder for the given type. *)

  val add : t -> Atom.t -> unit
  (** Append one atom; its type must match. *)

  val add_int : t -> int -> unit
  (** Unboxed append to an int builder. *)

  val add_float : t -> float -> unit
  (** Unboxed append to a float builder. *)

  val add_oid : t -> int -> unit
  (** Unboxed append to an oid builder. *)

  val length : t -> int
  (** Cells added so far. *)

  val finish : t -> col
  (** Freeze into a column. *)
end
