(** Binary Association Tables — the physical data model.

    A BAT is an ordered sequence of [(head, tail)] atom pairs with
    monomorphic head and tail columns, after Monet's binary-relational
    kernel on which the Mirror DBMS implements its object algebra.  All
    operators are set-at-a-time: they consume whole BATs and produce
    fresh BATs, never mutating their inputs.

    Naming follows MIL where a direct equivalent exists ([reverse],
    [mirror], [mark], [semijoin], [kdiff], …).  Operators that Monet
    obtains from its multiplex/[{...}] syntax are exposed as explicit
    functions ([calc2], [group_aggr], …). *)

type t
(** An immutable binary association table. *)

(** Comparison selectors for value-based selections. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Binary calculation operators (element-wise). Arithmetic on two
    integers stays integral; mixed numeric operands promote to float.
    Comparisons yield booleans; [And]/[Or] require booleans. *)
type binop = Add | Sub | Mul | Div | Pow | MinOp | MaxOp | CmpOp of cmp | And | Or

(** Unary calculation operators. *)
type unop = Not | Neg | Log | Exp | Sqrt | Abs | ToFlt

(** Aggregation functions. [Avg] always yields float; [Count] yields
    int; the rest preserve the input's numeric type. *)
type aggr = Sum | Prod | Count | Min | Max | Avg

val apply_cmp : cmp -> Atom.t -> Atom.t -> bool
(** Atom-level comparison semantics (shared with the logical layer). *)

val apply_binop : binop -> Atom.t -> Atom.t -> Atom.t
(** Atom-level calculation semantics.
    @raise Invalid_argument on unsupported operand types. *)

val apply_unop : unop -> Atom.t -> Atom.t
(** Atom-level unary semantics. *)

(** {1 Construction and access} *)

val make : Column.t -> Column.t -> t
(** Pair two equal-length columns. @raise Invalid_argument on length
    mismatch. *)

val empty : Atom.ty -> Atom.ty -> t
(** BAT with zero rows and the given head/tail types. *)

val of_pairs : Atom.ty -> Atom.ty -> (Atom.t * Atom.t) list -> t
(** Build from a pair list; all atoms must match the stated types. *)

val to_pairs : t -> (Atom.t * Atom.t) list
(** All rows in order. *)

val count : t -> int
(** Number of rows. *)

val hty : t -> Atom.ty
(** Head type. *)

val tty : t -> Atom.ty
(** Tail type. *)

val head : t -> Column.t
(** Head column (do not mutate). *)

val tail : t -> Column.t
(** Tail column (do not mutate). *)

val head_at : t -> int -> Atom.t
(** Head atom of row [i]. *)

val tail_at : t -> int -> Atom.t
(** Tail atom of row [i]. *)

val iter : (Atom.t -> Atom.t -> unit) -> t -> unit
(** Row-wise iteration in order. *)

val fold : ('a -> Atom.t -> Atom.t -> 'a) -> 'a -> t -> 'a
(** Row-wise left fold. *)

val equal : t -> t -> bool
(** Same row sequence (order-sensitive). *)

val equal_as_set : t -> t -> bool
(** Same multiset of rows, ignoring order. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering, e.g. [[@0->"a"; @1->"b"]]. *)

(** {1 Unary operators} *)

val reverse : t -> t
(** Swap head and tail columns (constant time in spirit, O(1) here as
    columns are shared). *)

val mirror : t -> t
(** [(h,h)] for every row — turns a head domain into an identity map. *)

val mark : t -> int -> t
(** [mark b base]: keep heads, replace tails by fresh dense oids
    [base, base+1, …] — Monet's [mark]. *)

val number_head : t -> int -> t
(** [(base+i, head_i)] — fresh dense oids paired positionally with the
    original heads.  Together with {!number_tail} this splits a pair
    sequence into two aligned BATs over a fresh oid domain. *)

val number_tail : t -> int -> t
(** [(base+i, tail_i)]. *)

val project : t -> Atom.t -> t
(** Keep heads, set every tail to the given constant. *)

val calc1 : unop -> t -> t
(** Apply a unary operator to every tail. *)

val calc_const : binop -> t -> Atom.t -> t
(** [tail op const] per row. *)

val const_calc : binop -> Atom.t -> t -> t
(** [const op tail] per row. *)

val slice : t -> int -> int -> t
(** [slice b pos len] — positional sub-range (clamped to bounds). *)

val sort_tail : ?desc:bool -> t -> t
(** Stable sort of rows by tail value. *)

val sort_head : ?desc:bool -> t -> t
(** Stable sort of rows by head value. *)

val topn : ?desc:bool -> t -> int -> t
(** [sort_tail] then take the first [n] rows ([desc] defaults to
    [true]: largest first). *)

val unique : t -> t
(** Distinct [(head, tail)] pairs, keeping first occurrences in order. *)

val unique_head : t -> t
(** First row for each distinct head value, in order. *)

(** {1 Selections} *)

val select_cmp : t -> cmp -> Atom.t -> t
(** Rows whose tail compares as requested against the constant. *)

val select_range : t -> Atom.t -> Atom.t -> t
(** Rows with [lo <= tail <= hi]. *)

val select_bool : t -> t
(** Rows whose boolean tail is [true]. *)

val filter : (Atom.t -> Atom.t -> bool) -> t -> t
(** Generic row predicate (not plan-expressible; used by tests and
    ad-hoc code). *)

(** {1 Binary operators} *)

val join : t -> t -> t
(** [join l r]: rows [(lh, rt)] for every pair with [l]'s tail equal to
    [r]'s head — Monet's join.  Output follows [l]'s order, with
    multiple matches expanded in [r] order. *)

val leftouterjoin : t -> t -> Atom.t -> t
(** Like {!join} but rows of [l] without a match produce [(lh, default)]. *)

val semijoin : t -> t -> t
(** Rows of [l] whose head occurs among [r]'s heads. *)

val antijoin : t -> t -> t
(** Rows of [l] whose head does not occur among [r]'s heads. *)

val kunion : t -> t -> t
(** All rows of [l], plus rows of [r] whose head is new. *)

val kdiff : t -> t -> t
(** Alias of {!antijoin} (Monet name). *)

val kintersect : t -> t -> t
(** Alias of {!semijoin} (Monet name). *)

val pair_union : t -> t -> t
(** Distinct pairs of both operands (first-occurrence order). *)

val pair_diff : t -> t -> t
(** Rows of [l] whose exact pair does not occur in [r]. *)

val pair_inter : t -> t -> t
(** Rows of [l] whose exact pair occurs in [r]. *)

val append : t -> t -> t
(** Row concatenation (types must agree). *)

val calc2 : binop -> t -> t -> t
(** Head-aligned element-wise calculation: for each row of [l], find
    the first row of [r] with the same head and emit
    [(head, l.tail op r.tail)]; rows of [l] without a partner are
    dropped. *)

val calc2_pos : binop -> t -> t -> t
(** Positional element-wise calculation over equal-length BATs; heads
    are taken from [l]. *)

(** {1 Grouping and aggregation} *)

val group_aggr : aggr -> t -> t
(** Aggregate tails per distinct head value; groups appear in
    first-occurrence order. *)

val aggr_all : aggr -> t -> Atom.t
(** Aggregate all tails into a single atom.  Empty input yields the
    neutral element for [Sum]/[Count]/[Prod] ([0] / [0] / [1]) and
    raises [Invalid_argument] for [Min]/[Max]/[Avg]. *)

val group_rank : ?desc:bool -> link:t -> t -> t
(** Per-group ranking: [link] maps element to group, [key] maps the same
    elements to an orderable value (aligned by head value).  The result
    maps each element to its 0-based rank within its group, ordered by
    key ([desc] defaults to [false]).  Elements of [link] missing from
    [key] are ranked last in input order. *)

val histogram : t -> t
(** Occurrence count per distinct tail value, i.e.
    [group_aggr Count (reverse b)]. *)

(** {1 Typed kernel internals}

    Monomorphic specialisation helpers shared with the parallel kernel
    ({!Parkernel}), so both executors pick the same typed loop for the
    same operands — a precondition for bitwise-identical results. *)

val int_cmp : cmp -> int -> int -> bool
(** Unboxed comparison on ints. *)

val float_cmp : cmp -> float -> float -> bool
(** Unboxed comparison on floats (via [Float.compare], so NaN obeys the
    kernel's total order). *)

val int_binop : binop -> (int -> int -> int) option
(** Unboxed int kernel for a calculation operator, when one exists
    ([Div]/[Pow] promote or trap and have none). *)

val float_binop : binop -> (float -> float -> float) option
(** Unboxed float kernel for a calculation operator, when one exists. *)

val same_int_heads : t -> t -> bool
(** Both heads are int/oid columns of the same type with equal cells
    (physical equality short-circuits) — the row-alignment test behind
    the positional {!calc2} fast path. *)

val dense_base : int array -> int option
(** [Some base] when the array is the dense sequence
    [base, base+1, …] — Monet's "void" column test used to replace hash
    lookups by position arithmetic. *)
