(** The BAT catalog: the kernel's persistent name space.

    Every materialised extent, statistics table and index lives here
    under a hierarchical name such as ["ImageLibrary#in"] or
    ["ImageLibrary/annotation@stats/df"].  Plans refer to catalog
    entries by name ({!Mil.Get}), which is what decouples the logical
    algebra from physical storage. *)

type t
(** A mutable catalog. *)

val create : unit -> t
(** Fresh empty catalog. *)

val put : t -> string -> Bat.t -> unit
(** Bind (or rebind) a name. *)

val get : t -> string -> Bat.t
(** Look a name up. @raise Not_found if unbound. *)

val find : t -> string -> Bat.t option
(** Optional lookup. *)

val mem : t -> string -> bool
(** Name bound? *)

val remove : t -> string -> unit
(** Unbind (no-op when unbound). *)

type snapshot
(** A frozen copy-on-write version of the catalog's bindings.  BATs
    are immutable once built, so a snapshot shares all row data with
    the live catalog; only the name table is copied (O(#names)). *)

val snapshot : t -> snapshot
(** Freeze the current bindings.  Later mutations of [t] are invisible
    to the snapshot. *)

val of_snapshot : snapshot -> t
(** A fresh catalog holding the snapshot's bindings (no observer).
    Mutating it does not affect the snapshot or the original. *)

val set_observer : t -> (string -> unit) option -> unit
(** Install (or clear) a mutation observer: it is called with the
    entry name on every {!put} and every effective {!remove}.  Used by
    the durability layer to track physical churn between checkpoints
    ({!Mirror_store.Durable}).  At most one observer is active. *)

val names : t -> string list
(** All bound names, sorted. *)

val cardinality : t -> int
(** Number of bound names. *)

val total_rows : t -> int
(** Sum of row counts over all entries (storage-size proxy used in
    reports). *)

val dump : t -> out_channel -> unit
(** Write a textual snapshot of the whole catalog (no integrity
    footer). *)

val load : in_channel -> (t, string) result
(** Read the rest of the channel as a snapshot ({!parse}). *)

val parse : string -> (t, string) result
(** Parse a snapshot produced by {!dump} or {!save_file}.  A trailing
    [%crc] integrity footer, when present, is verified first; a
    checksum mismatch is an error. *)

val save_file : t -> string -> unit
(** Atomically snapshot to a file path: the dump plus a [%crc]
    integrity footer is written to [path ^ ".tmp"] and renamed over
    [path], so a crash mid-write never clobbers the previous
    snapshot. *)

val load_file : string -> (t, string) result
(** {!parse} a file written by {!save_file} (or an older footer-less
    {!dump}). *)
