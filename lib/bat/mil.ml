type t =
  | Get of string
  | Lit of { hty : Atom.ty; tty : Atom.ty; pairs : (Atom.t * Atom.t) list }
  | Reverse of t
  | Mirror of t
  | Mark of t * int
  | NumberHead of t * int
  | NumberTail of t * int
  | Project of t * Atom.t
  | Calc1 of Bat.unop * t
  | CalcConst of Bat.binop * t * Atom.t
  | ConstCalc of Bat.binop * Atom.t * t
  | Calc2 of Bat.binop * t * t
  | SelectCmp of t * Bat.cmp * Atom.t
  | SelectRange of t * Atom.t * Atom.t
  | SelectBool of t
  | Join of t * t
  | LeftOuterJoin of t * t * Atom.t
  | Semijoin of t * t
  | Antijoin of t * t
  | Kunion of t * t
  | PairUnion of t * t
  | PairDiff of t * t
  | PairInter of t * t
  | Append of t * t
  | Unique of t
  | UniqueHead of t
  | GroupAggr of Bat.aggr * t
  | AggrAll of Bat.aggr * t
  | GroupRank of { link : t; key : t; desc : bool }
  | SortTail of t * bool
  | Slice of t * int * int
  | TopN of t * int * bool
  | Foreign of { name : string; args : t list; meta : string list }

exception Unbound of string

type foreign_fn = name:string -> args:Bat.t list -> meta:string list -> Bat.t

type stats = {
  mutable evaluated : int;
  mutable memo_hits : int;
  mutable rows_produced : int;
  mutable par_ops : int;
  mutable par_morsels : int;
}

let children = function
  | Get _ | Lit _ -> []
  | Reverse p
  | Mirror p
  | Mark (p, _)
  | NumberHead (p, _)
  | NumberTail (p, _)
  | Project (p, _)
  | Calc1 (_, p)
  | CalcConst (_, p, _)
  | ConstCalc (_, _, p)
  | SelectCmp (p, _, _)
  | SelectRange (p, _, _)
  | SelectBool p
  | Unique p
  | UniqueHead p
  | GroupAggr (_, p)
  | AggrAll (_, p)
  | SortTail (p, _)
  | Slice (p, _, _)
  | TopN (p, _, _) ->
    [ p ]
  | Calc2 (_, l, r)
  | Join (l, r)
  | LeftOuterJoin (l, r, _)
  | Semijoin (l, r)
  | Antijoin (l, r)
  | Kunion (l, r)
  | PairUnion (l, r)
  | PairDiff (l, r)
  | PairInter (l, r)
  | Append (l, r) ->
    [ l; r ]
  | GroupRank { link; key; _ } -> [ link; key ]
  | Foreign { args; _ } -> args

(* {1 Plan hashing}

   Every plan-keyed table (the CSE memo, the analyzer walks) needs a
   hash consistent with structural equality.  [Hashtbl.hash] bounds its
   traversal, so it is O(1) on arbitrarily deep plans; the collisions
   this causes between plans that differ only below the bound are
   resolved by the equality check, and structural comparison
   short-circuits on physically shared subterms — exactly the shape a
   CSE'd DAG has, where a memo probe is usually made with the very node
   that populated the table.  The alternative — a full structural hash
   cached per node in a physical-identity ephemeron table — measured
   ~50x slower on a 3000-node operator chain: every node of a uniform
   chain has the same bounded physical-identity hash, so the cache
   itself degenerates to a single bucket of ephemeron probes. *)

let hash : t -> int = Hashtbl.hash

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  (* Physical identity short-circuits the structural comparison, so
     probing with the very node that populated the table is O(1). *)
  let equal a b = a == b || a = b
  let hash = hash
end)

type par = { pool : Parkernel.pool; safe : t -> bool; morsel : t -> int option }

type session = {
  catalog : Catalog.t;
  foreign : foreign_fn;
  memo : Bat.t Tbl.t;
  cse : bool;
  st : stats;
  tr : Mirror_util.Trace.t;
  par : par option;
  max_bytes : int option;
  admitted : unit Tbl.t;  (* roots that passed the admission gate *)
}

exception Admission_refused of {
  op : string;
  est_bytes : int;
  peak_bytes : int option;
  budget : int;
}

(* The resource-bound oracle behind the [?max_bytes] admission gate:
   given the catalog and a root plan, the static (estimate, peak upper
   bound in bytes) of executing it — or [None] when no analysis is
   available.  The default knows nothing (sessions with a budget then
   refuse every plan, fail-closed); [Boundcheck] installs the real
   analyzer at link time, and [Bootstrap.ensure] upgrades it to one
   that knows the extension registry's foreign bounds.  A global ref,
   not a session field, because the analyzer lives upstairs and
   sessions are opened all over. *)
let bound_oracle : (Catalog.t -> t -> (int * int option) option) ref =
  ref (fun _ _ -> None)

let set_bound_oracle f = bound_oracle := f

let no_foreign ~name ~args:_ ~meta:_ =
  failwith (Printf.sprintf "Mil: unknown foreign operator %S" name)

let session ?(cse = true) ?(trace = Mirror_util.Trace.null) ?(foreign = no_foreign) ?par
    ?max_bytes catalog =
  {
    catalog;
    foreign;
    memo = Tbl.create 128;
    cse;
    st = { evaluated = 0; memo_hits = 0; rows_produced = 0; par_ops = 0; par_morsels = 0 };
    tr = trace;
    par;
    max_bytes;
    admitted = Tbl.create 8;
  }

let stats s = s.st
let trace s = s.tr
let catalog s = s.catalog
let cse_enabled s = s.cse

let op_name = function
  | Get _ -> "get"
  | Lit _ -> "lit"
  | Reverse _ -> "reverse"
  | Mirror _ -> "mirror"
  | Mark _ -> "mark"
  | NumberHead _ -> "number_head"
  | NumberTail _ -> "number_tail"
  | Project _ -> "project"
  | Calc1 _ -> "calc1"
  | CalcConst _ -> "calc_const"
  | ConstCalc _ -> "const_calc"
  | Calc2 _ -> "calc2"
  | SelectCmp _ -> "select_cmp"
  | SelectRange _ -> "select_range"
  | SelectBool _ -> "select_bool"
  | Join _ -> "join"
  | LeftOuterJoin _ -> "leftouterjoin"
  | Semijoin _ -> "semijoin"
  | Antijoin _ -> "antijoin"
  | Kunion _ -> "kunion"
  | PairUnion _ -> "pair_union"
  | PairDiff _ -> "pair_diff"
  | PairInter _ -> "pair_inter"
  | Append _ -> "append"
  | Unique _ -> "unique"
  | UniqueHead _ -> "unique_head"
  | GroupAggr _ -> "group_aggr"
  | AggrAll _ -> "aggr_all"
  | GroupRank _ -> "group_rank"
  | SortTail _ -> "sort_tail"
  | Slice _ -> "slice"
  | TopN _ -> "topn"
  | Foreign { name; _ } -> "foreign:" ^ name

(* Attribute a parallel execution to the operator's open trace span
   and the session counters.  Only the main domain gets here — workers
   never touch Trace or Metrics. *)
let note_par s pool (st : Parkernel.runstat) =
  s.st.par_ops <- s.st.par_ops + 1;
  s.st.par_morsels <- s.st.par_morsels + st.morsels;
  if Mirror_util.Trace.is_on s.tr then
    Mirror_util.Trace.attr s.tr "par"
      (Printf.sprintf "%dd/%dm" (Parkernel.size pool) st.morsels);
  if Mirror_util.Metrics.enabled () then begin
    Mirror_util.Metrics.incr "mil.par.ops";
    Mirror_util.Metrics.incr ~by:st.morsels "mil.par.morsels"
  end

(* Run the operator data-parallel when the session has a pool, Effcheck
   proved this node's partition effect-free, and the parallel kernel
   has a deterministic typed path for the operands; otherwise fall back
   to the sequential kernel. *)
let try_par s plan seq par_fn =
  match s.par with
  | Some { pool; safe; morsel } when safe plan -> (
    let run () = par_fn pool in
    let r =
      match morsel plan with
      | Some m -> Parkernel.with_morsel_size m run
      | None -> run ()
    in
    match r with
    | Some (r, st) ->
      note_par s pool st;
      r
    | None -> seq ())
  | _ -> seq ()

let rec eval s plan =
  match if s.cse then Tbl.find_opt s.memo plan else None with
  | Some b ->
    s.st.memo_hits <- s.st.memo_hits + 1;
    if Mirror_util.Trace.is_on s.tr then
      Mirror_util.Trace.event s.tr (op_name plan) ~rows:(Bat.count b)
        ~attrs:[ ("memo", "hit") ];
    b
  | None ->
    let b =
      if not (Mirror_util.Trace.is_on s.tr) then eval_raw s plan
      else begin
        Mirror_util.Trace.enter s.tr (op_name plan);
        match eval_raw s plan with
        | b ->
          Mirror_util.Trace.leave ~rows:(Bat.count b) s.tr;
          b
        | exception e ->
          Mirror_util.Trace.leave
            ~attrs:[ ("error", Printexc.to_string e) ]
            s.tr;
          raise e
      end
    in
    s.st.evaluated <- s.st.evaluated + 1;
    s.st.rows_produced <- s.st.rows_produced + Bat.count b;
    if Mirror_util.Metrics.enabled () then begin
      let name = op_name plan in
      Mirror_util.Metrics.incr ("mil.op." ^ name);
      Mirror_util.Metrics.incr ~by:(Bat.count b) ("mil.rows." ^ name)
    end;
    if s.cse then Tbl.add s.memo plan b;
    b

and eval_raw s plan =
  match plan with
  | Get name -> (
    match Catalog.find s.catalog name with
    | Some b -> b
    | None -> raise (Unbound name))
  | Lit { hty; tty; pairs } -> Bat.of_pairs hty tty pairs
  | Reverse p -> Bat.reverse (eval s p)
  | Mirror p -> Bat.mirror (eval s p)
  | Mark (p, base) -> Bat.mark (eval s p) base
  | NumberHead (p, base) -> Bat.number_head (eval s p) base
  | NumberTail (p, base) -> Bat.number_tail (eval s p) base
  | Project (p, a) -> Bat.project (eval s p) a
  | Calc1 (op, p) ->
    let b = eval s p in
    try_par s plan (fun () -> Bat.calc1 op b) (fun pool -> Parkernel.calc1 pool op b)
  | CalcConst (op, p, a) ->
    let b = eval s p in
    try_par s plan
      (fun () -> Bat.calc_const op b a)
      (fun pool -> Parkernel.calc_const pool op b a)
  | ConstCalc (op, a, p) ->
    let b = eval s p in
    try_par s plan
      (fun () -> Bat.const_calc op a b)
      (fun pool -> Parkernel.const_calc pool op a b)
  | Calc2 (op, l, r) ->
    let lb = eval s l and rb = eval s r in
    try_par s plan
      (fun () -> Bat.calc2 op lb rb)
      (fun pool -> Parkernel.calc2 pool op lb rb)
  | SelectCmp (p, c, a) ->
    let b = eval s p in
    try_par s plan
      (fun () -> Bat.select_cmp b c a)
      (fun pool -> Parkernel.select_cmp pool b c a)
  | SelectRange (p, lo, hi) ->
    let b = eval s p in
    try_par s plan
      (fun () -> Bat.select_range b lo hi)
      (fun pool -> Parkernel.select_range pool b lo hi)
  | SelectBool p ->
    let b = eval s p in
    try_par s plan (fun () -> Bat.select_bool b) (fun pool -> Parkernel.select_bool pool b)
  | Join (l, r) ->
    let lb = eval s l and rb = eval s r in
    try_par s plan (fun () -> Bat.join lb rb) (fun pool -> Parkernel.join pool lb rb)
  | LeftOuterJoin (l, r, d) -> Bat.leftouterjoin (eval s l) (eval s r) d
  | Semijoin (l, r) -> Bat.semijoin (eval s l) (eval s r)
  | Antijoin (l, r) -> Bat.antijoin (eval s l) (eval s r)
  | Kunion (l, r) -> Bat.kunion (eval s l) (eval s r)
  | PairUnion (l, r) -> Bat.pair_union (eval s l) (eval s r)
  | PairDiff (l, r) -> Bat.pair_diff (eval s l) (eval s r)
  | PairInter (l, r) -> Bat.pair_inter (eval s l) (eval s r)
  | Append (l, r) -> Bat.append (eval s l) (eval s r)
  | Unique p -> Bat.unique (eval s p)
  | UniqueHead p -> Bat.unique_head (eval s p)
  | GroupAggr (op, p) ->
    let b = eval s p in
    try_par s plan
      (fun () -> Bat.group_aggr op b)
      (fun pool -> Parkernel.group_aggr pool op b)
  | AggrAll (op, p) ->
    let b = eval s p in
    let v =
      try_par s plan (fun () -> Bat.aggr_all op b) (fun pool -> Parkernel.aggr_all pool op b)
    in
    Bat.of_pairs Atom.TOid (Atom.type_of v) [ (Atom.Oid 0, v) ]
  | GroupRank { link; key; desc } -> Bat.group_rank ~desc ~link:(eval s link) (eval s key)
  | SortTail (p, desc) -> Bat.sort_tail ~desc (eval s p)
  | Slice (p, pos, len) -> Bat.slice (eval s p) pos len
  | TopN (p, n, desc) -> Bat.topn ~desc (eval s p) n
  | Foreign { name; args; meta } -> (
    let args = List.map (eval s) args in
    (* Parallelism inside a foreign operator is opt-in: the pool is
       made dynamically visible only for Effcheck-safe dispatches, so
       an unsafe foreign finds [Parkernel.current () = None] — the
       scheduler's refusal layer. *)
    match s.par with
    | Some { pool; safe; _ } when safe plan ->
      Parkernel.with_pool pool (fun () -> s.foreign ~name ~args ~meta)
    | _ -> s.foreign ~name ~args ~meta)

(* Admission gate: when the session has a byte budget, a root plan runs
   only if the bound oracle can produce a finite peak envelope that
   fits.  Unbounded plans (oracle unavailable, undeclared foreigns, …)
   are refused — fail-closed, since the budget exists to protect the
   machine.  Each distinct root is vetted once per session. *)
let admit s plan =
  match s.max_bytes with
  | None -> ()
  | Some _ when Tbl.mem s.admitted plan -> ()
  | Some budget -> (
    match !bound_oracle s.catalog plan with
    | Some (_, Some peak) when peak <= budget ->
      if Mirror_util.Metrics.enabled () then Mirror_util.Metrics.incr "mil.admission.ok";
      Tbl.add s.admitted plan ()
    | Some (est, peak) ->
      if Mirror_util.Metrics.enabled () then
        Mirror_util.Metrics.incr "mil.admission.refused";
      raise
        (Admission_refused { op = op_name plan; est_bytes = est; peak_bytes = peak; budget })
    | None ->
      if Mirror_util.Metrics.enabled () then
        Mirror_util.Metrics.incr "mil.admission.refused";
      raise
        (Admission_refused { op = op_name plan; est_bytes = 0; peak_bytes = None; budget }))

let exec s plan =
  admit s plan;
  eval s plan

(* Bytes currently held by the session's memo table, deduplicating
   physically shared columns (reverse/mirror results alias their
   input's arrays).  This is the runtime ground truth the static
   resident envelope of [Boundcheck] must bound from above. *)
let resident_bytes s =
  let seen = ref [] in
  let col c =
    if List.memq c !seen then 0
    else begin
      seen := c :: !seen;
      Column.bytes c
    end
  in
  Tbl.fold (fun _ b acc -> acc + col (Bat.head b) + col (Bat.tail b)) s.memo 0

let profile s =
  Mirror_util.Trace.aggregate (Mirror_util.Trace.roots s.tr)
  |> List.map (fun (name, a) -> (name, a.Mirror_util.Trace.self, a.Mirror_util.Trace.calls))

let rec size = function
  | Get _ | Lit _ -> 1
  | Reverse p
  | Mirror p
  | Mark (p, _)
  | NumberHead (p, _)
  | NumberTail (p, _)
  | Project (p, _)
  | Calc1 (_, p)
  | CalcConst (_, p, _)
  | ConstCalc (_, _, p)
  | SelectCmp (p, _, _)
  | SelectRange (p, _, _)
  | SelectBool p
  | Unique p
  | UniqueHead p
  | GroupAggr (_, p)
  | AggrAll (_, p)
  | SortTail (p, _)
  | Slice (p, _, _)
  | TopN (p, _, _) ->
    1 + size p
  | Calc2 (_, l, r)
  | Join (l, r)
  | LeftOuterJoin (l, r, _)
  | Semijoin (l, r)
  | Antijoin (l, r)
  | Kunion (l, r)
  | PairUnion (l, r)
  | PairDiff (l, r)
  | PairInter (l, r)
  | Append (l, r) ->
    1 + size l + size r
  | GroupRank { link; key; _ } -> 1 + size link + size key
  | Foreign { args; _ } -> List.fold_left (fun acc p -> acc + size p) 1 args

let cmp_name = function
  | Bat.Eq -> "="
  | Bat.Ne -> "!="
  | Bat.Lt -> "<"
  | Bat.Le -> "<="
  | Bat.Gt -> ">"
  | Bat.Ge -> ">="

let binop_name = function
  | Bat.Add -> "add"
  | Bat.Sub -> "sub"
  | Bat.Mul -> "mul"
  | Bat.Div -> "div"
  | Bat.Pow -> "pow"
  | Bat.MinOp -> "min"
  | Bat.MaxOp -> "max"
  | Bat.CmpOp c -> "cmp" ^ cmp_name c
  | Bat.And -> "and"
  | Bat.Or -> "or"

let unop_name = function
  | Bat.Not -> "not"
  | Bat.Neg -> "neg"
  | Bat.Log -> "log"
  | Bat.Exp -> "exp"
  | Bat.Sqrt -> "sqrt"
  | Bat.Abs -> "abs"
  | Bat.ToFlt -> "toflt"

let aggr_name = function
  | Bat.Sum -> "sum"
  | Bat.Prod -> "prod"
  | Bat.Count -> "count"
  | Bat.Min -> "min"
  | Bat.Max -> "max"
  | Bat.Avg -> "avg"

let rec pp ppf plan =
  let node name children =
    Format.fprintf ppf "@[<v 2>%s" name;
    List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) children;
    Format.fprintf ppf "@]"
  in
  match plan with
  | Get name -> Format.fprintf ppf "get %S" name
  | Lit { pairs; _ } -> Format.fprintf ppf "lit(%d rows)" (List.length pairs)
  | Reverse p -> node "reverse" [ p ]
  | Mirror p -> node "mirror" [ p ]
  | Mark (p, base) -> node (Printf.sprintf "mark@%d" base) [ p ]
  | NumberHead (p, base) -> node (Printf.sprintf "number_head@%d" base) [ p ]
  | NumberTail (p, base) -> node (Printf.sprintf "number_tail@%d" base) [ p ]
  | Project (p, a) -> node (Printf.sprintf "project[%s]" (Atom.to_string a)) [ p ]
  | Calc1 (op, p) -> node (Printf.sprintf "calc1[%s]" (unop_name op)) [ p ]
  | CalcConst (op, p, a) ->
    node (Printf.sprintf "calc[%s, _, %s]" (binop_name op) (Atom.to_string a)) [ p ]
  | ConstCalc (op, a, p) ->
    node (Printf.sprintf "calc[%s, %s, _]" (binop_name op) (Atom.to_string a)) [ p ]
  | Calc2 (op, l, r) -> node (Printf.sprintf "calc2[%s]" (binop_name op)) [ l; r ]
  | SelectCmp (p, c, a) ->
    node (Printf.sprintf "select[%s %s]" (cmp_name c) (Atom.to_string a)) [ p ]
  | SelectRange (p, lo, hi) ->
    node (Printf.sprintf "select[%s..%s]" (Atom.to_string lo) (Atom.to_string hi)) [ p ]
  | SelectBool p -> node "select[true]" [ p ]
  | Join (l, r) -> node "join" [ l; r ]
  | LeftOuterJoin (l, r, d) ->
    node (Printf.sprintf "outerjoin[%s]" (Atom.to_string d)) [ l; r ]
  | Semijoin (l, r) -> node "semijoin" [ l; r ]
  | Antijoin (l, r) -> node "antijoin" [ l; r ]
  | Kunion (l, r) -> node "kunion" [ l; r ]
  | PairUnion (l, r) -> node "pair_union" [ l; r ]
  | PairDiff (l, r) -> node "pair_diff" [ l; r ]
  | PairInter (l, r) -> node "pair_inter" [ l; r ]
  | Append (l, r) -> node "append" [ l; r ]
  | Unique p -> node "unique" [ p ]
  | UniqueHead p -> node "unique_head" [ p ]
  | GroupAggr (op, p) -> node (Printf.sprintf "group_%s" (aggr_name op)) [ p ]
  | AggrAll (op, p) -> node (Printf.sprintf "aggr_%s" (aggr_name op)) [ p ]
  | GroupRank { link; key; desc } ->
    node (Printf.sprintf "group_rank[%s]" (if desc then "desc" else "asc")) [ link; key ]
  | SortTail (p, desc) ->
    node (Printf.sprintf "sort_tail[%s]" (if desc then "desc" else "asc")) [ p ]
  | Slice (p, pos, len) -> node (Printf.sprintf "slice[%d,%d]" pos len) [ p ]
  | TopN (p, n, desc) ->
    node (Printf.sprintf "top%d[%s]" n (if desc then "desc" else "asc")) [ p ]
  | Foreign { name; args; meta } ->
    node (Printf.sprintf "foreign[%s%s]" name
            (if meta = [] then "" else "; " ^ String.concat "," meta))
      args

let to_string plan = Format.asprintf "%a" pp plan
