(** Morsel-driven parallel kernel on OCaml 5 domains.

    A {!type-pool} owns [size - 1] worker domains (the caller is the
    remaining participant); {!run_tasks} hands out task indices through
    an atomic counter — morsel-at-a-time work stealing — and joins the
    pool before returning, so parallelism never escapes one operator
    call.  Results are written into caller-preallocated per-morsel
    slots and merged {e in morsel order}, which is what makes every
    parallel operator bitwise-identical to its sequential twin.

    The parallel operators below return [None] when no deterministic
    typed path exists ([Sum]/[Avg] over floats is deliberately not
    parallelised: float addition is not associative, so a morsel-order
    merge could change low bits) or when the input is below
    {!min_rows}; the caller then falls back to the sequential kernel.
    The scheduler itself never inspects effect verdicts — gating on
    {!Effcheck} safety is the executor's job ({!Mil.par}).

    Pools must only be driven from the domain that created them; worker
    tasks must not touch domain-unsafe globals ({!Mirror_util.Metrics},
    {!Mirror_util.Trace}).  Per-morsel timings are collected into
    preallocated slots and aggregated by the caller instead. *)

type pool

val create : int -> pool
(** [create n] spawns a pool of total size [max 1 n] (i.e. [n - 1]
    worker domains plus the calling domain). *)

val shutdown : pool -> unit
(** Stop and join the workers.  Idempotent. *)

val size : pool -> int
(** Total domains participating in this pool's jobs (workers + caller). *)

(** {1 Global configuration}

    The CLI's [--domains N] sets the process-wide default; tests inject
    their own pools and morsel geometry. *)

val set_domains : int -> unit
(** Set the default pool size (clamped to [1..64]).  Shuts down any
    existing default pool; [1] disables parallel execution. *)

val domains : unit -> int
(** The configured default pool size. *)

val default_pool : unit -> pool option
(** The lazily-created process-wide pool, [None] when [domains () <= 1].
    Shut down automatically at exit. *)

val set_morsel_size : int -> unit
(** Rows per morsel (clamped to [>= 1]; default 16384). *)

val morsel_size : unit -> int

val set_min_rows : int -> unit
(** Inputs smaller than this stay sequential (default 2048; tests set 0
    to force tiny BATs through the parallel path). *)

val min_rows : unit -> int

val with_morsel_size : int -> (unit -> 'a) -> 'a
(** [with_morsel_size m f] runs [f] with the morsel size dynamically
    overridden to [max 1 m], restoring the previous size afterwards
    (exception-safe).  The executor wraps a single operator dispatch in
    this when it has a {!morsel_for} hint; the override is read once on
    the calling domain when the operator fixes its morsel geometry, so
    nesting and sequential re-entry are safe. *)

val morsel_for : domains:int -> int -> int
(** [morsel_for ~domains rows] is the estimate-derived morsel size for
    an operator expected to process [rows] rows on a [domains]-wide
    pool: one morsel per domain, clamped below by a per-domain share of
    {!min_rows} and above by the configured {!morsel_size} — so small
    (but admissible) inputs spread across the pool instead of landing
    in a single default-sized morsel. *)

(** {1 Scheduling} *)

type runstat = {
  morsels : int;  (** Morsels executed for this operator call. *)
  busy : float;  (** Summed per-morsel wall seconds (all domains). *)
  wall : float;  (** Caller-observed wall seconds. *)
}

val run_tasks : pool -> int -> (int -> unit) -> runstat
(** [run_tasks p m task] runs [task 0 .. task (m-1)], possibly
    concurrently, and returns once all completed.  Tasks must write
    only to disjoint caller-owned slots.  If tasks raise, the exception
    of the lowest-numbered failing task is re-raised after the join —
    the same exception a sequential left-to-right loop would surface
    first. *)

val map_ranges : pool -> int -> (int -> int -> 'a) -> 'a array * runstat
(** [map_ranges p n f] partitions [0..n-1] into {!morsel_size} ranges
    and returns [f lo hi] per range (hi exclusive), in range order. *)

(** {1 Current-pool plumbing}

    [Foreign] operators receive the session's pool dynamically: the
    executor wraps Effcheck-safe dispatches in {!with_pool}, and the
    extension's physical operator picks it up with {!current} (e.g. the
    CONTREP belief scan).  Unsafe foreigns run with {!current} unset —
    the scheduler's refusal layer. *)

val with_pool : pool -> (unit -> 'a) -> 'a
val current : unit -> pool option

(** {1 Parallel operators}

    Each is the morsel-partitioned twin of the same-named {!Bat}
    operator and returns the identical BAT (same values, same row
    order; fresh output columns exactly where the sequential kernel
    allocates fresh columns) plus its {!runstat}, or [None] to decline
    (untyped operands, below {!min_rows}, or a non-associative float
    aggregate). *)

val select_cmp : pool -> Bat.t -> Bat.cmp -> Atom.t -> (Bat.t * runstat) option
val select_range : pool -> Bat.t -> Atom.t -> Atom.t -> (Bat.t * runstat) option
val select_bool : pool -> Bat.t -> (Bat.t * runstat) option
val calc1 : pool -> Bat.unop -> Bat.t -> (Bat.t * runstat) option
val calc_const : pool -> Bat.binop -> Bat.t -> Atom.t -> (Bat.t * runstat) option
val const_calc : pool -> Bat.binop -> Atom.t -> Bat.t -> (Bat.t * runstat) option

val calc2 : pool -> Bat.binop -> Bat.t -> Bat.t -> (Bat.t * runstat) option
(** Only the row-aligned fast path (equal counts, equal int/oid heads)
    parallelises; the head-matching generic path declines. *)

val join : pool -> Bat.t -> Bat.t -> (Bat.t * runstat) option
(** Int/oid key columns only.  The build side is hashed in [size p]
    ascending chunks built concurrently; probes consult the chunk
    tables in ascending order, reproducing the sequential hash join's
    (ascending left row, ascending right row) output order exactly. *)

val group_aggr : pool -> Bat.aggr -> Bat.t -> (Bat.t * runstat) option
(** Int/oid heads with [Count], int [Sum]/[Min]/[Max], or float
    [Min]/[Max] tails.  Per-morsel partial tables are merged in morsel
    order, so group keys keep their global first-occurrence order and
    the merged accumulators are domain-count independent (int addition
    is modular-associative; [Float.min]/[Float.max] are associative and
    NaN-propagating in either association). *)

val aggr_all : pool -> Bat.aggr -> Bat.t -> (Atom.t * runstat) option
(** Int [Sum]/[Prod]/[Min]/[Max] and float [Min]/[Max].  [Count] is
    O(1) sequentially and float [Sum]/[Avg]/[Prod] are
    order-sensitive, so those decline. *)

(** {1 Pool-lifetime statistics} *)

type totals = {
  t_jobs : int;  (** {!run_tasks} invocations. *)
  t_morsels : int;
  t_busy : float;
  t_wall : float;
}

val totals : pool -> totals
(** Accumulated since [create]; read from the owning domain only. *)
