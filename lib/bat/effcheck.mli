(** Effect-and-aliasing analysis over MIL plans — the third analyzer
    layer, after the logical envelopes ({!Moacheck} in the core) and
    the physical envelopes ({!Milcheck}).

    The BAT algebra reads as if every operator were a pure producer of
    fresh columns, but the kernel is deliberately not: [reverse],
    [mirror], [mark], [project] and the calc family return BATs whose
    columns are {e physically shared} with their inputs, [Get] hands
    out the catalog's own columns, and the executor's memo table makes
    structurally equal subplans share one result.  That sharing is what
    makes the set-at-a-time design cheap — and what makes any mutation,
    or any effectful [Foreign] operator, hazardous.

    This module makes the contract checkable from both sides:

    - {b statically}: {!signature} gives every constructor an effect
      signature (columns read, columns shared with inputs, catalog
      reads, writes and external effects for [Foreign]); {!analyze}
      builds the aliasing graph of a plan bundle under CSE, lints for
      hazards, and partitions the DAG into provably independent groups
      — the safe-partition count is the static precondition for a
      domain-parallel executor;
    - {b dynamically}: a {!type-sanitizer} wraps the executor, tags
      every materialised column with its provenance (allocation site or
      catalog entry), checks each operator's observed aliasing is
      contained in its signature, and fingerprints columns so any
      in-place write is caught at {!finish}. *)

type col = Head | Tail

type source =
  | Input of int * col  (** A column of the n-th plan argument. *)
  | CatalogCol of string * col  (** A column of a catalog entry. *)

type alias = {
  sources : source list;
      (** Input/catalog columns the result column may be physically
          identical to ([[]] = never shared). *)
  maybe_fresh : bool;
      (** The operator may also allocate this column (always true when
          [sources = []]; [Calc2] is shared-or-fresh depending on the
          alignment fast path). *)
}

type eff = {
  head : alias;  (** Provenance of the result's head column. *)
  tail : alias;  (** Provenance of the result's tail column. *)
  reads : (int * col) list;
      (** Input columns whose {e cells} the operator inspects (sharing
          a column without looking at it, as [mark] does, is not a
          read). *)
  writes : (int * col) list;
      (** Input columns the operator may mutate — empty for every
          kernel constructor, possibly non-empty for [Foreign]. *)
  cat_read : string option;  (** Catalog entry consulted ([Get]). *)
  impure : string option;
      (** [Some name] when the operator has external effects and must
          not be elided or reordered ([Foreign] with [fe_pure =
          false], or undeclared). *)
  undeclared : bool;
      (** A [Foreign] operator with no registered {!foreign_eff};
          treated as worst-case (aliases and mutates everything). *)
}

type foreign_eff = {
  fe_pure : bool;
      (** No external effects: eliding a call (memo hit) or reordering
          calls is unobservable. *)
  fe_shares : bool;
      (** Result columns may be physically shared with argument
          columns. *)
  fe_writes : bool;  (** May mutate argument columns in place. *)
}
(** Effect declaration for one [Foreign] operator, registered by the
    owning extension alongside its {!Milprop.foreign_sig}. *)

val pure_foreign : foreign_eff
(** [{ fe_pure = true; fe_shares = false; fe_writes = false }] — a
    pure producer of fresh columns, the declaration almost every
    well-behaved operator wants. *)

type env = { foreign : string -> foreign_eff option }

val env : ?foreign:(string -> foreign_eff option) -> unit -> env
(** Analysis environment; [foreign] resolves [Foreign] effect
    declarations (default: none registered). *)

val signature : env -> Mil.t -> eff
(** The effect signature of the plan's {e root} operator, derived from
    the kernel's actual sharing behaviour (e.g. [Reverse] shares both
    columns swapped, [Mirror] aliases its input head twice, selections
    always gather fresh columns). *)

type verdict = {
  nodes : int;  (** Distinct DAG nodes after CSE over the bundle. *)
  shared_columns : int;
      (** Result-column slots aliasing the catalog or more than one
          node — benign unless written. *)
  partitions : int;
      (** Number of provably independent node groups: nodes in
          different partitions touch no common mutable state and their
          effects commute, so a parallel executor may evaluate them
          concurrently (dataflow dependencies aside).  Equal to
          [nodes] for a pure plan. *)
  hazards : Milcheck.diag list;
      (** Mutation-under-sharing and undeclared-effect errors,
          effectful-op-under-memoization and non-commutable-reordering
          warnings. *)
  safe : Mil.t -> bool;
      (** [safe plan] holds when [plan] is a node of the analyzed
          bundle whose whole partition is effect-free (no writes, no
          impure operators, no undeclared foreigns) — the static
          licence for the executor to run that node's operator
          data-parallel ({!Parkernel}).  Unknown plans are unsafe. *)
}

val analyze : env -> Mil.t list -> verdict
(** Analyze a plan bundle as one CSE-shared DAG (structurally equal
    subplans are one node, as in the executor's memo table).  When the
    {!Mirror_util.Metrics} registry is enabled, bumps the
    ["effcheck.plans"], ["effcheck.nodes"], ["effcheck.partitions"],
    ["effcheck.shared_columns"] and ["effcheck.hazards"] counters. *)

val lint : env -> Mil.t -> Milcheck.diag list
(** [(analyze env [plan]).hazards]. *)

(** {1 Runtime sanitizer} *)

exception Violation of string
(** An operator's observed behaviour escaped its effect signature: a
    result column aliased memory the signature does not admit, or a
    tagged column's fingerprint drifted (in-place mutation). *)

type sanitizer

val sanitizer : env -> Mil.session -> sanitizer
(** A sanitizing wrapper over [session].  The session must have CSE
    enabled (the sanitizer's provenance map assumes the memo table's
    sharing; @raise Invalid_argument otherwise).  Catalog columns are
    tagged as they are first resolved through [Get]. *)

val exec : sanitizer -> Mil.t -> Bat.t
(** Evaluate the plan through the underlying session, checking every
    evaluated node bottom-up: each result column must be one of the
    declared alias sources or a genuinely fresh allocation, and the
    node's input columns must still match their fingerprints.
    Zero-length columns are exempt from aliasing checks (OCaml shares
    one atom for all empty arrays).
    @raise Violation on any escape. *)

val finish : sanitizer -> unit
(** Re-fingerprint every tagged column, catching in-place writes that
    happened after the writer's own inputs were checked.
    @raise Violation on drift. *)
