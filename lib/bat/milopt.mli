(** Physical plan rewriting.

    Peephole simplifications applied to {!Mil} plans before execution.
    They complement the logical optimizer and the executor's CSE: the
    flattening compiler freely composes context transformations, which
    leaves patterns like [reverse (reverse x)] in the emitted plans.

    Rules (applied bottom-up to a fixpoint):
    - [reverse (reverse x)] → [x]
    - [mirror (mirror x)] and [reverse (mirror x)] → [mirror x]
    - [semijoin (semijoin x s) s] → [semijoin x s]; [semijoin x x] → [x]
    - [kunion x x] → [x]; [unique (unique x)] → [unique x];
      appending an empty literal is dropped
    - [slice (sort_tail x) 0 n] → [topn x n]
    - constant literal calculations fold into literals *)

val rewrite : Mil.t -> Mil.t
(** The simplified plan (semantically identical).  The result is a
    stable fixpoint: [rewrite (rewrite p) = rewrite p] — every rule
    strictly shrinks the plan, so iteration runs uncapped until no rule
    fires. *)

val rewrite_count : Mil.t -> Mil.t * int
(** Also report how many rule applications fired. *)
