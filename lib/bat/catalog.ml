type t = {
  tbl : (string, Bat.t) Hashtbl.t;
  mutable observer : (string -> unit) option;
}

let create () : t = { tbl = Hashtbl.create 64; observer = None }
let set_observer t obs = t.observer <- obs
let notify t name = match t.observer with None -> () | Some f -> f name

let put t name b =
  Hashtbl.replace t.tbl name b;
  notify t name

let get t name = Hashtbl.find t.tbl name
let find t name = Hashtbl.find_opt t.tbl name
let mem t name = Hashtbl.mem t.tbl name

let remove t name =
  if Hashtbl.mem t.tbl name then begin
    Hashtbl.remove t.tbl name;
    notify t name
  end

(* A snapshot is a frozen copy of the binding table.  BATs themselves
   are immutable once built (the kernel's sharing discipline is
   verified by Effcheck), so copying the table — O(#names), no row
   data — is a full copy-on-write version of the catalog: later [put]s
   and [remove]s on the live catalog never reach it. *)
type snapshot = (string, Bat.t) Hashtbl.t

let snapshot t : snapshot = Hashtbl.copy t.tbl

let of_snapshot (s : snapshot) : t = { tbl = Hashtbl.copy s; observer = None }

let names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
let cardinality t = Hashtbl.length t.tbl
let total_rows t = Hashtbl.fold (fun _ b acc -> acc + Bat.count b) t.tbl 0

(* Snapshot format, one entry per stanza:
     %bat <name-with-%XX-escapes> <hty> <tty> <rows>
     <head atom>\t<tail atom>        (rows lines)
   Atom rendering reuses Atom.to_string / Atom.parse.  [save_file]
   appends an integrity footer line
     %crc <8 hex digits>
   over everything before it; [load_file] verifies the footer when
   present (snapshots predating the footer still load). *)

let escape_name name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if c = ' ' || c = '%' || c = '\n' || c = '\t' then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      else Buffer.add_char buf c)
    name;
  Buffer.contents buf

let unescape_name s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let dump_buffer t buf =
  List.iter
    (fun name ->
      let b = get t name in
      Buffer.add_string buf
        (Printf.sprintf "%%bat %s %s %s %d\n" (escape_name name)
           (Atom.ty_name (Bat.hty b)) (Atom.ty_name (Bat.tty b)) (Bat.count b));
      Bat.iter
        (fun h tl ->
          Buffer.add_string buf (Atom.to_string h);
          Buffer.add_char buf '\t';
          Buffer.add_string buf (Atom.to_string tl);
          Buffer.add_char buf '\n')
        b)
    (names t)

let dump t oc =
  let buf = Buffer.create 4096 in
  dump_buffer t buf;
  Buffer.output_buffer oc buf

let ty_of_name = function
  | "int" -> Ok Atom.TInt
  | "flt" -> Ok Atom.TFlt
  | "str" -> Ok Atom.TStr
  | "bool" -> Ok Atom.TBool
  | "oid" -> Ok Atom.TOid
  | s -> Error (Printf.sprintf "unknown type %S" s)

let ( let* ) = Result.bind

(* Parse the stanza lines (footer already stripped).  [lines] may end
   with one empty string from a trailing newline split. *)
let parse_lines lines =
  let t = create () in
  let lines = Array.of_list lines in
  let n = Array.length lines in
  let rec read_entries i =
    if i >= n then Ok t
    else
      let line = lines.(i) in
      if line = "" && i = n - 1 then Ok t
      else
        match String.split_on_char ' ' line with
        | [ "%bat"; name; htys; ttys; rows ] ->
          let* hty = ty_of_name htys in
          let* tty = ty_of_name ttys in
          let* nrows =
            match int_of_string_opt rows with
            | Some k when k >= 0 -> Ok k
            | _ -> Error (Printf.sprintf "bad row count %S" rows)
          in
          let hb = Column.Builder.create hty and tb = Column.Builder.create tty in
          let rec read_rows j k =
            if k = 0 then Ok j
            else if j >= n then Error "truncated snapshot"
            else
              let row = lines.(j) in
              match String.index_opt row '\t' with
              | None -> Error (Printf.sprintf "malformed row %S" row)
              | Some tab ->
                let hs = String.sub row 0 tab in
                let ts = String.sub row (tab + 1) (String.length row - tab - 1) in
                let* h = Atom.parse hty hs in
                let* tl = Atom.parse tty ts in
                Column.Builder.add hb h;
                Column.Builder.add tb tl;
                read_rows (j + 1) (k - 1)
          in
          let* next = read_rows (i + 1) nrows in
          put t (unescape_name name)
            (Bat.make (Column.Builder.finish hb) (Column.Builder.finish tb));
          read_entries next
        | _ -> Error (Printf.sprintf "malformed header %S" line)
  in
  read_entries 0

(* Split a trailing "%crc XXXXXXXX\n" footer off a raw snapshot and
   verify it.  Returns the body to parse. *)
let check_footer src =
  let len = String.length src in
  (* start offset of the last line (ignoring one trailing newline) *)
  let stop = if len > 0 && src.[len - 1] = '\n' then len - 1 else len in
  let start =
    if stop = 0 then 0
    else match String.rindex_from_opt src (stop - 1) '\n' with Some i -> i + 1 | None -> 0
  in
  match () with
  | () when len - start >= 5 && String.sub src start 5 = "%crc " ->
    let hex = String.trim (String.sub src (start + 5) (String.length src - start - 5)) in
    let body = String.sub src 0 start in
    (match Mirror_util.Crc32.of_hex hex with
    | None -> Error (Printf.sprintf "malformed integrity footer %%crc %S" hex)
    | Some expect ->
      let got = Mirror_util.Crc32.string body in
      if got <> expect then
        Error
          (Printf.sprintf "snapshot checksum mismatch: footer %s, content %s"
             (Mirror_util.Crc32.to_hex expect) (Mirror_util.Crc32.to_hex got))
      else Ok body)
  | _ -> Ok src

let parse src =
  let* body = check_footer src in
  parse_lines (String.split_on_char '\n' body)

let load ic =
  let src = really_input_string ic (in_channel_length ic - pos_in ic) in
  parse src

let save_file t path =
  let buf = Buffer.create 4096 in
  dump_buffer t buf;
  let body = Buffer.contents buf in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc body;
      Printf.fprintf oc "%%crc %s\n" (Mirror_util.Crc32.to_hex (Mirror_util.Crc32.string body));
      Mirror_util.Fsx.fsync_out oc);
  Sys.rename tmp path

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)
