(* Morsel-driven parallel kernel on OCaml 5 domains.

   One pool = [size - 1] worker domains parked on a condition variable
   plus the calling domain, which always participates in draining.  A
   job is a task counter handed out by [Atomic.fetch_and_add] — morsel
   work stealing — with per-morsel exception and timing slots, so no
   cross-domain state is ever shared except through the mutex
   handshake and disjoint array cells.

   Determinism contract (see parkernel.mli): every parallel operator
   merges per-morsel partial state in morsel order and only uses
   combining functions that are associative over the machine
   representation (modular int arithmetic, Float.min/Float.max), so the
   result is bitwise-identical to the sequential kernel for any domain
   count and any morsel size. *)

module Trace = Mirror_util.Trace

(* {1 Configuration} *)

let c_domains = ref 1
let c_morsel = ref 16_384
let c_min = ref 2048
let set_morsel_size n = c_morsel := max 1 n
let morsel_size () = !c_morsel
let set_min_rows n = c_min := max 0 n
let min_rows () = !c_min
let domains () = !c_domains

(* Dynamic morsel-size override, installed around one operator dispatch
   by [with_morsel_size] (the executor's Boundcheck-estimated sizing).
   Only ever read on the calling domain: the range helpers below
   capture the effective size into their task closures before the job
   is posted, so workers never touch this ref. *)
let m_override = ref None

let effective_morsel () = match !m_override with Some m -> m | None -> !c_morsel

let with_morsel_size m f =
  let prev = !m_override in
  m_override := Some (max 1 m);
  Fun.protect ~finally:(fun () -> m_override := prev) f

(* Estimate-derived morsel size: aim for one morsel per domain so small
   inputs still spread across the pool, but never below a per-domain
   share of [min_rows] (scheduling overhead floor) and never above the
   configured [morsel_size] (cache-residency ceiling). *)
let morsel_for ~domains rows =
  let d = max 1 domains in
  let per = (max 0 rows + d - 1) / d in
  let floor_rows = max 1 (!c_min / d) in
  min !c_morsel (max floor_rows per)

(* {1 The pool} *)

type job = {
  j_task : int -> unit;
  j_n : int;
  j_next : int Atomic.t;
  j_left : int Atomic.t;
  j_err : exn option array;
}

type pool = {
  psize : int;
  lock : Mutex.t;
  work : Condition.t;  (* new job posted / shutdown *)
  donec : Condition.t;  (* last morsel of the current job finished *)
  mutable gen : int;  (* bumped per job so idle workers can tell old from new *)
  mutable job : job option;
  mutable live : bool;
  mutable workers : unit Domain.t array;
  mutable t_jobs : int;
  mutable t_morsels : int;
  mutable t_busy : float;
  mutable t_wall : float;
}

type runstat = { morsels : int; busy : float; wall : float }
type totals = { t_jobs : int; t_morsels : int; t_busy : float; t_wall : float }

let zero_st = { morsels = 0; busy = 0.0; wall = 0.0 }

let ( ++ ) a b =
  { morsels = a.morsels + b.morsels; busy = a.busy +. b.busy; wall = a.wall +. b.wall }

let size pool = pool.psize

let totals (pool : pool) =
  { t_jobs = pool.t_jobs; t_morsels = pool.t_morsels; t_busy = pool.t_busy; t_wall = pool.t_wall }

(* Pull morsels until the counter runs dry.  Exceptions land in the
   task's own [j_err] slot; the finisher of the last morsel signals the
   caller under the lock, which is what makes the caller's
   check-then-wait on [donec] race-free. *)
let drain pool job =
  let running = ref true in
  while !running do
    let i = Atomic.fetch_and_add job.j_next 1 in
    if i >= job.j_n then running := false
    else begin
      (try job.j_task i with e -> job.j_err.(i) <- Some e);
      if Atomic.fetch_and_add job.j_left (-1) = 1 then begin
        Mutex.lock pool.lock;
        Condition.broadcast pool.donec;
        Mutex.unlock pool.lock
      end
    end
  done

let rec worker_loop pool last_gen =
  Mutex.lock pool.lock;
  while pool.live && (pool.job = None || pool.gen = last_gen) do
    Condition.wait pool.work pool.lock
  done;
  if not pool.live then Mutex.unlock pool.lock
  else begin
    let gen = pool.gen in
    let job = Option.get pool.job in
    Mutex.unlock pool.lock;
    drain pool job;
    worker_loop pool gen
  end

let create n =
  let n = max 1 (min 64 n) in
  let pool =
    {
      psize = n;
      lock = Mutex.create ();
      work = Condition.create ();
      donec = Condition.create ();
      gen = 0;
      job = None;
      live = true;
      workers = [||];
      t_jobs = 0;
      t_morsels = 0;
      t_busy = 0.0;
      t_wall = 0.0;
    }
  in
  pool.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  if pool.live then begin
    Mutex.lock pool.lock;
    pool.live <- false;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let run_tasks pool m task =
  if m = 0 then zero_st
  else begin
    let t0 = Trace.now () in
    let busy = Array.make m 0.0 in
    let timed i =
      let s = Trace.now () in
      let err = try task i; None with e -> Some e in
      busy.(i) <- Trace.now () -. s;
      match err with Some e -> raise e | None -> ()
    in
    let job =
      {
        j_task = timed;
        j_n = m;
        j_next = Atomic.make 0;
        j_left = Atomic.make m;
        j_err = Array.make m None;
      }
    in
    if Array.length pool.workers = 0 then drain pool job
    else begin
      Mutex.lock pool.lock;
      pool.gen <- pool.gen + 1;
      pool.job <- Some job;
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      drain pool job;
      Mutex.lock pool.lock;
      while Atomic.get job.j_left > 0 do
        Condition.wait pool.donec pool.lock
      done;
      pool.job <- None;
      Mutex.unlock pool.lock
    end;
    (* Surface the failure of the lowest-numbered morsel — the same
       exception a sequential left-to-right loop would raise first. *)
    Array.iter (function Some e -> raise e | None -> ()) job.j_err;
    let wall = Trace.now () -. t0 in
    let b = Array.fold_left ( +. ) 0.0 busy in
    pool.t_jobs <- pool.t_jobs + 1;
    pool.t_morsels <- pool.t_morsels + m;
    pool.t_busy <- pool.t_busy +. b;
    pool.t_wall <- pool.t_wall +. wall;
    { morsels = m; busy = b; wall }
  end

(* The effective morsel size is read once here, on the calling domain,
   and baked into the task closure — geometry is fixed before the job
   is posted, whatever other refs do while workers drain. *)
let run_ranges pool n f =
  let msz = effective_morsel () in
  run_tasks pool ((n + msz - 1) / msz) (fun k -> f (k * msz) (min n ((k + 1) * msz)))

let map_ranges pool n f =
  let msz = effective_morsel () in
  let m = (n + msz - 1) / msz in
  let parts = Array.make m None in
  let st =
    run_tasks pool m (fun k -> parts.(k) <- Some (f (k * msz) (min n ((k + 1) * msz))))
  in
  (Array.map Option.get parts, st)

(* {1 Default pool and current-pool plumbing} *)

let default = ref None

let drop_default () =
  match !default with
  | Some p ->
    default := None;
    shutdown p
  | None -> ()

let () = at_exit drop_default

let set_domains n =
  let n = max 1 (min 64 n) in
  if n <> !c_domains then begin
    c_domains := n;
    drop_default ()
  end

let default_pool () =
  if !c_domains <= 1 then None
  else
    match !default with
    | Some p -> Some p
    | None ->
      let p = create !c_domains in
      default := Some p;
      Some p

let current_pool = ref None

let with_pool pool f =
  let prev = !current_pool in
  current_pool := Some pool;
  Fun.protect ~finally:(fun () -> current_pool := prev) f

let current () = !current_pool

(* {1 Growable scratch vectors (per-morsel, single-domain)} *)

module Gi = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let fresh = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 fresh 0 b.n;
      b.a <- fresh
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let get b i = b.a.(i)
  let set b i v = b.a.(i) <- v
  let len b = b.n
  let finish b = Array.sub b.a 0 b.n
end

module Gf = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 16 0.0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let fresh = Array.make (2 * b.n) 0.0 in
      Array.blit b.a 0 fresh 0 b.n;
      b.a <- fresh
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let get b i = b.a.(i)
  let set b i v = b.a.(i) <- v
  let finish b = Array.sub b.a 0 b.n
end

(* {1 Shared result assembly} *)

(* Parallel [Bat.take]: gather both columns through one index array,
   each morsel filling its own disjoint slice of the outputs. *)
let take_par pool b idx =
  let n = Array.length idx in
  let hd_src = Bat.head b and tl_src = Bat.tail b in
  let hd_out = Column.make (Column.ty hd_src) n in
  let tl_out = Column.make (Column.ty tl_src) n in
  let filler dst src =
    match (dst, src) with
    | (Column.I o | Column.O o), (Column.I a | Column.O a) ->
      fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- a.(idx.(i))
        done
    | Column.F o, Column.F a ->
      fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- a.(idx.(i))
        done
    | Column.S o, Column.S a ->
      fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- a.(idx.(i))
        done
    | Column.B o, Column.B a ->
      fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- a.(idx.(i))
        done
    | _ -> assert false
  in
  let fill_hd = filler hd_out hd_src and fill_tl = filler tl_out tl_src in
  let st =
    run_ranges pool n (fun lo hi ->
        fill_hd lo hi;
        fill_tl lo hi)
  in
  (Bat.make hd_out tl_out, st)

(* {1 Selections} *)

(* Scan morsels collect survivor rows into per-morsel arrays; the
   concatenation in morsel order is exactly the sequential survivor
   index sequence, which the parallel take then gathers. *)
let select_par pool b pred =
  let n = Bat.count b in
  let parts, st1 =
    map_ranges pool n (fun lo hi ->
        let buf = Array.make (hi - lo) 0 in
        let c = ref 0 in
        for i = lo to hi - 1 do
          if pred i then begin
            buf.(!c) <- i;
            incr c
          end
        done;
        Array.sub buf 0 !c)
  in
  let idx = Array.concat (Array.to_list parts) in
  let out, st2 = take_par pool b idx in
  (out, st1 ++ st2)

let select_cmp pool b c a =
  let n = Bat.count b in
  if n < !c_min then None
  else
    let pred =
      match (Bat.tail b, a) with
      | (Column.I arr | Column.O arr), (Atom.Int v | Atom.Oid v)
        when Atom.type_of a = Bat.tty b ->
        let f = Bat.int_cmp c in
        fun i -> f arr.(i) v
      | Column.F arr, Atom.Flt v ->
        let f = Bat.float_cmp c in
        fun i -> f arr.(i) v
      | Column.S arr, Atom.Str v ->
        let f = Bat.int_cmp c in
        fun i -> f (String.compare arr.(i) v) 0
      | _ -> fun i -> Bat.apply_cmp c (Bat.tail_at b i) a
    in
    Some (select_par pool b pred)

let select_range pool b lo hi =
  let n = Bat.count b in
  if n < !c_min then None
  else
    let pred =
      match (Bat.tail b, lo, hi) with
      | (Column.I arr | Column.O arr), (Atom.Int l | Atom.Oid l), (Atom.Int h | Atom.Oid h)
        when Atom.type_of lo = Bat.tty b && Atom.type_of hi = Bat.tty b ->
        fun i -> l <= arr.(i) && arr.(i) <= h
      | Column.F arr, Atom.Flt l, Atom.Flt h ->
        fun i -> Float.compare l arr.(i) <= 0 && Float.compare arr.(i) h <= 0
      | Column.S arr, Atom.Str l, Atom.Str h ->
        fun i -> String.compare l arr.(i) <= 0 && String.compare arr.(i) h <= 0
      | _ ->
        fun i ->
          let t = Bat.tail_at b i in
          Atom.compare lo t <= 0 && Atom.compare t hi <= 0
    in
    Some (select_par pool b pred)

let select_bool pool b =
  let n = Bat.count b in
  if n < !c_min then None
  else
    match Bat.tail b with
    | Column.B arr -> Some (select_par pool b (fun i -> arr.(i)))
    | _ -> None (* let the sequential kernel raise its error *)

(* {1 Element-wise calculation} *)

(* Each map helper preallocates the output and lets every morsel fill
   its own slice — disjoint writes, no merging needed. *)
let map_ii pool a f =
  let n = Array.length a in
  let o = Array.make n 0 in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i)
        done)
  in
  (Column.I o, st)

let map_ib pool a f =
  let n = Array.length a in
  let o = Array.make n false in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i)
        done)
  in
  (Column.B o, st)

let map_if pool a f =
  let n = Array.length a in
  let o = Array.make n 0.0 in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i)
        done)
  in
  (Column.F o, st)

let map_ff pool a f =
  let n = Array.length a in
  let o = Array.make n 0.0 in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i)
        done)
  in
  (Column.F o, st)

let map_fb pool a f =
  let n = Array.length a in
  let o = Array.make n false in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i)
        done)
  in
  (Column.B o, st)

let map_bb pool a f =
  let n = Array.length a in
  let o = Array.make n false in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i)
        done)
  in
  (Column.B o, st)

(* The result head is the input's head column, shared physically, just
   like the sequential calc operators. *)
let with_head b (tl, st) = Some (Bat.make (Bat.head b) tl, st)

let calc1 pool op b =
  if Bat.count b < !c_min then None
  else
    match (op, Bat.tail b) with
    | Bat.Not, Column.B a -> with_head b (map_bb pool a not)
    | Bat.Neg, Column.I a -> with_head b (map_ii pool a (fun x -> -x))
    | Bat.Neg, Column.F a -> with_head b (map_ff pool a (fun x -> -.x))
    | Bat.Abs, Column.I a -> with_head b (map_ii pool a abs)
    | Bat.Abs, Column.F a -> with_head b (map_ff pool a Float.abs)
    | Bat.ToFlt, Column.I a -> with_head b (map_if pool a Float.of_int)
    | Bat.ToFlt, Column.F a -> with_head b (map_ff pool a (fun x -> x))
    | Bat.Log, Column.I a -> with_head b (map_if pool a (fun x -> log (Float.of_int x)))
    | Bat.Log, Column.F a -> with_head b (map_ff pool a log)
    | Bat.Exp, Column.I a -> with_head b (map_if pool a (fun x -> exp (Float.of_int x)))
    | Bat.Exp, Column.F a -> with_head b (map_ff pool a exp)
    | Bat.Sqrt, Column.I a -> with_head b (map_if pool a (fun x -> sqrt (Float.of_int x)))
    | Bat.Sqrt, Column.F a -> with_head b (map_ff pool a sqrt)
    | _ -> None

let calc_const pool op b a =
  if Bat.count b < !c_min then None
  else
    match (Bat.tail b, a) with
    | Column.I arr, Atom.Int v -> (
      match (op, Bat.int_binop op) with
      | _, Some f -> with_head b (map_ii pool arr (fun x -> f x v))
      | Bat.CmpOp c, _ ->
        let f = Bat.int_cmp c in
        with_head b (map_ib pool arr (fun x -> f x v))
      | _ -> None)
    | Column.F arr, Atom.Flt v -> (
      match (op, Bat.float_binop op) with
      | _, Some f -> with_head b (map_ff pool arr (fun x -> f x v))
      | Bat.CmpOp c, _ ->
        let f = Bat.float_cmp c in
        with_head b (map_fb pool arr (fun x -> f x v))
      | _ -> None)
    | _ -> None

let const_calc pool op a b =
  if Bat.count b < !c_min then None
  else
    match (a, Bat.tail b) with
    | Atom.Int v, Column.I arr -> (
      match (op, Bat.int_binop op) with
      | _, Some f -> with_head b (map_ii pool arr (fun x -> f v x))
      | Bat.CmpOp c, _ ->
        let f = Bat.int_cmp c in
        with_head b (map_ib pool arr (fun x -> f v x))
      | _ -> None)
    | Atom.Flt v, Column.F arr -> (
      match (op, Bat.float_binop op) with
      | _, Some f -> with_head b (map_ff pool arr (fun x -> f v x))
      | Bat.CmpOp c, _ ->
        let f = Bat.float_cmp c in
        with_head b (map_fb pool arr (fun x -> f v x))
      | _ -> None)
    | _ -> None

let map2_ii pool a b f =
  let n = Array.length a in
  let o = Array.make n 0 in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i) b.(i)
        done)
  in
  (Column.I o, st)

let map2_iib pool a b f =
  let n = Array.length a in
  let o = Array.make n false in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i) b.(i)
        done)
  in
  (Column.B o, st)

let map2_ff pool a b f =
  let n = Array.length a in
  let o = Array.make n 0.0 in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i) b.(i)
        done)
  in
  (Column.F o, st)

let map2_ffb pool a b f =
  let n = Array.length a in
  let o = Array.make n false in
  let st =
    run_ranges pool n (fun lo hi ->
        for i = lo to hi - 1 do
          o.(i) <- f a.(i) b.(i)
        done)
  in
  (Column.B o, st)

(* Only the row-aligned fast path runs parallel; the head-matching
   generic path has per-row hash probes with first-match semantics that
   the sequential kernel handles. *)
let calc2 pool op l r =
  let n = Bat.count l in
  if n < !c_min || Bat.count r <> n || not (Bat.same_int_heads l r) then None
  else
    match (Bat.tail l, Bat.tail r) with
    | Column.I a, Column.I b -> (
      match (op, Bat.int_binop op) with
      | _, Some f -> with_head l (map2_ii pool a b f)
      | Bat.CmpOp c, _ -> with_head l (map2_iib pool a b (Bat.int_cmp c))
      | _ -> None)
    | Column.F a, Column.F b -> (
      match (op, Bat.float_binop op) with
      | _, Some f -> with_head l (map2_ff pool a b f)
      | Bat.CmpOp c, _ -> with_head l (map2_ffb pool a b (Bat.float_cmp c))
      | _ -> None)
    | _ -> None

(* {1 Join} *)

(* Build: the right head is hashed in [size pool] contiguous chunks,
   one table per chunk, built concurrently.  Probe: morsels over the
   left rows consult the chunk tables in ascending chunk order, and
   each table's match list is already ascending (built downto with
   cons), so every probe emits exactly the ascending-j sequence the
   sequential hash join emits.  Dense right heads skip the build and
   use position arithmetic, like the sequential void path. *)
let join pool l r =
  if Bat.tty l <> Bat.hty r then None
  else
    match (Bat.tail l, Bat.head r) with
    | (Column.I lt | Column.O lt), (Column.I rh | Column.O rh) ->
      let n = Array.length lt in
      if n < !c_min then None
      else begin
        let nr = Array.length rh in
        let lookup, st_build =
          match Bat.dense_base rh with
          | Some base -> (`Dense base, zero_st)
          | None ->
            let nchunks = size pool in
            let csz = (nr + nchunks - 1) / max 1 nchunks in
            let tables = Array.init nchunks (fun _ -> Hashtbl.create 0) in
            let st =
              run_tasks pool nchunks (fun c ->
                  let lo = c * csz and hi = min nr ((c + 1) * csz) in
                  let tbl = Hashtbl.create (max 16 (hi - lo)) in
                  for j = hi - 1 downto lo do
                    Hashtbl.replace tbl rh.(j)
                      (j :: Option.value ~default:[] (Hashtbl.find_opt tbl rh.(j)))
                  done;
                  tables.(c) <- tbl)
            in
            (`Chunks tables, st)
        in
        let parts, st_probe =
          map_ranges pool n (fun lo hi ->
              let li = Gi.create () and rj = Gi.create () in
              (match lookup with
              | `Dense base ->
                for i = lo to hi - 1 do
                  let j = lt.(i) - base in
                  if j >= 0 && j < nr then begin
                    Gi.push li i;
                    Gi.push rj j
                  end
                done
              | `Chunks tables ->
                for i = lo to hi - 1 do
                  let v = lt.(i) in
                  Array.iter
                    (fun tbl ->
                      match Hashtbl.find_opt tbl v with
                      | Some js ->
                        List.iter
                          (fun j ->
                            Gi.push li i;
                            Gi.push rj j)
                          js
                      | None -> ())
                    tables
                done);
              (Gi.finish li, Gi.finish rj))
        in
        let li = Array.concat (Array.to_list (Array.map fst parts)) in
        let rj = Array.concat (Array.to_list (Array.map snd parts)) in
        let m = Array.length li in
        let hd_src = Bat.head l and tl_src = Bat.tail r in
        let hd_out = Column.make (Column.ty hd_src) m in
        let tl_out = Column.make (Column.ty tl_src) m in
        let filler dst src idx =
          match (dst, src) with
          | (Column.I o | Column.O o), (Column.I a | Column.O a) ->
            fun lo hi ->
              for i = lo to hi - 1 do
                o.(i) <- a.(idx.(i))
              done
          | Column.F o, Column.F a ->
            fun lo hi ->
              for i = lo to hi - 1 do
                o.(i) <- a.(idx.(i))
              done
          | Column.S o, Column.S a ->
            fun lo hi ->
              for i = lo to hi - 1 do
                o.(i) <- a.(idx.(i))
              done
          | Column.B o, Column.B a ->
            fun lo hi ->
              for i = lo to hi - 1 do
                o.(i) <- a.(idx.(i))
              done
          | _ -> assert false
        in
        let fill_hd = filler hd_out hd_src li and fill_tl = filler tl_out tl_src rj in
        let st_gather =
          run_ranges pool m (fun lo hi ->
              fill_hd lo hi;
              fill_tl lo hi)
        in
        Some (Bat.make hd_out tl_out, st_build ++ st_probe ++ st_gather)
      end
    | _ -> None

(* {1 Grouping and aggregation} *)

(* Per-morsel partial group tables (unboxed int keys, typed
   accumulators) merged sequentially in morsel order: group keys keep
   their global first-occurrence order and partials combine with the
   same associative operator used within a morsel. *)
let group_merge_int pool hs n mk_keys value comb =
  let parts, st =
    map_ranges pool n (fun lo hi ->
        let tbl = Hashtbl.create 64 in
        let keys = Gi.create () and vals = Gi.create () in
        for i = lo to hi - 1 do
          let h = hs.(i) in
          match Hashtbl.find_opt tbl h with
          | Some s -> Gi.set vals s (comb (Gi.get vals s) (value i))
          | None ->
            Hashtbl.add tbl h (Gi.len keys);
            Gi.push keys h;
            Gi.push vals (value i)
        done;
        (Gi.finish keys, Gi.finish vals))
  in
  let gtbl = Hashtbl.create 256 in
  let gkeys = Gi.create () and gvals = Gi.create () in
  Array.iter
    (fun (ks, vs) ->
      Array.iteri
        (fun k h ->
          match Hashtbl.find_opt gtbl h with
          | Some s -> Gi.set gvals s (comb (Gi.get gvals s) vs.(k))
          | None ->
            Hashtbl.add gtbl h (Gi.len gkeys);
            Gi.push gkeys h;
            Gi.push gvals vs.(k))
        ks)
    parts;
  (Bat.make (mk_keys (Gi.finish gkeys)) (Column.I (Gi.finish gvals)), st)

let group_merge_flt pool hs n mk_keys value comb =
  let parts, st =
    map_ranges pool n (fun lo hi ->
        let tbl = Hashtbl.create 64 in
        let keys = Gi.create () and vals = Gf.create () in
        for i = lo to hi - 1 do
          let h = hs.(i) in
          match Hashtbl.find_opt tbl h with
          | Some s -> Gf.set vals s (comb (Gf.get vals s) (value i))
          | None ->
            Hashtbl.add tbl h (Gi.len keys);
            Gi.push keys h;
            Gf.push vals (value i)
        done;
        (Gi.finish keys, Gf.finish vals))
  in
  let gtbl = Hashtbl.create 256 in
  let gkeys = Gi.create () and gvals = Gf.create () in
  Array.iter
    (fun (ks, vs) ->
      Array.iteri
        (fun k h ->
          match Hashtbl.find_opt gtbl h with
          | Some s -> Gf.set gvals s (comb (Gf.get gvals s) vs.(k))
          | None ->
            Hashtbl.add gtbl h (Gi.len gkeys);
            Gi.push gkeys h;
            Gf.push gvals vs.(k))
        ks)
    parts;
  (Bat.make (mk_keys (Gi.finish gkeys)) (Column.F (Gf.finish gvals)), st)

let group_aggr pool op b =
  let n = Bat.count b in
  if n < !c_min then None
  else
    match Bat.head b with
    | Column.I hs | Column.O hs ->
      let mk_keys ka =
        match Bat.hty b with Atom.TOid -> Column.O ka | _ -> Column.I ka
      in
      (match (op, Bat.tail b) with
      | Bat.Count, _ -> Some (group_merge_int pool hs n mk_keys (fun _ -> 1) ( + ))
      | Bat.Sum, Column.I ts -> Some (group_merge_int pool hs n mk_keys (Array.get ts) ( + ))
      | Bat.Min, Column.I ts -> Some (group_merge_int pool hs n mk_keys (Array.get ts) min)
      | Bat.Max, Column.I ts -> Some (group_merge_int pool hs n mk_keys (Array.get ts) max)
      | Bat.Prod, Column.I ts -> Some (group_merge_int pool hs n mk_keys (Array.get ts) ( * ))
      | Bat.Min, Column.F ts -> Some (group_merge_flt pool hs n mk_keys (Array.get ts) Float.min)
      | Bat.Max, Column.F ts -> Some (group_merge_flt pool hs n mk_keys (Array.get ts) Float.max)
      (* Sum/Avg over floats: addition is not associative, a parallel
         merge could change low bits — sequential only. *)
      | _ -> None)
    | _ -> None

let fold_parts pool n fold_range comb =
  let parts, st = map_ranges pool n fold_range in
  let acc = ref parts.(0) in
  for k = 1 to Array.length parts - 1 do
    acc := comb !acc parts.(k)
  done;
  (!acc, st)

let aggr_all pool op b =
  let n = Bat.count b in
  if n = 0 || n < !c_min then None
  else
    match (op, Bat.tail b) with
    | Bat.Sum, Column.I ts ->
      let v, st =
        fold_parts pool n
          (fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + ts.(i)
            done;
            !s)
          ( + )
      in
      Some (Atom.Int v, st)
    | Bat.Prod, Column.I ts ->
      let v, st =
        fold_parts pool n
          (fun lo hi ->
            let s = ref ts.(lo) in
            for i = lo + 1 to hi - 1 do
              s := !s * ts.(i)
            done;
            !s)
          ( * )
      in
      Some (Atom.Int v, st)
    | Bat.Min, Column.I ts ->
      let v, st =
        fold_parts pool n
          (fun lo hi ->
            let s = ref ts.(lo) in
            for i = lo + 1 to hi - 1 do
              s := min !s ts.(i)
            done;
            !s)
          min
      in
      Some (Atom.Int v, st)
    | Bat.Max, Column.I ts ->
      let v, st =
        fold_parts pool n
          (fun lo hi ->
            let s = ref ts.(lo) in
            for i = lo + 1 to hi - 1 do
              s := max !s ts.(i)
            done;
            !s)
          max
      in
      Some (Atom.Int v, st)
    | Bat.Min, Column.F ts ->
      let v, st =
        fold_parts pool n
          (fun lo hi ->
            let s = ref ts.(lo) in
            for i = lo + 1 to hi - 1 do
              s := Float.min !s ts.(i)
            done;
            !s)
          Float.min
      in
      Some (Atom.Flt v, st)
    | Bat.Max, Column.F ts ->
      let v, st =
        fold_parts pool n
          (fun lo hi ->
            let s = ref ts.(lo) in
            for i = lo + 1 to hi - 1 do
              s := Float.max !s ts.(i)
            done;
            !s)
          Float.max
      in
      Some (Atom.Flt v, st)
    (* Count is O(1) sequentially; float Sum/Avg/Prod are
       order-sensitive — all stay sequential. *)
    | _ -> None
