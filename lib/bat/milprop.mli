(** Inferred per-BAT properties — the analyzer's abstract domain.

    MonetDB kept per-BAT properties (key-ness, ordering, density) both
    for safety and for algorithm selection; this module is the Mirror
    kernel's equivalent, used by {!Milcheck} as the abstract value of a
    subplan.  A property record is an {e envelope}: every flag set and
    every bound stated must hold of the BAT the subplan evaluates to.
    [false] / [None] always mean "unknown", never "known false", so
    {!unknown} is the lattice top and inference only ever errs towards
    fewer guarantees. *)

type card = { lo : int; hi : int option }
(** Cardinality bounds: at least [lo] rows, at most [hi] (no upper
    bound when [None]). *)

type t = {
  hty : Atom.ty option;  (** Head atom type, when statically known. *)
  tty : Atom.ty option;  (** Tail atom type. *)
  head_key : bool;  (** All head values distinct. *)
  tail_key : bool;  (** All tail values distinct. *)
  dense_head : bool;  (** Heads are consecutive ascending oids (Monet "void"). *)
  dense_tail : bool;  (** Tails are consecutive ascending oids. *)
  sorted_head : bool;  (** Heads non-decreasing. *)
  sorted_tail : bool;  (** Tails non-decreasing. *)
  card : card;
}

type foreign_sig = {
  fs_arity : int;  (** Exact number of plan arguments. *)
  fs_meta_min : int;  (** Minimum number of meta strings. *)
  fs_result : t;  (** Envelope of the operator's result. *)
}
(** The registry-declared signature of a {!Mil.Foreign} physical
    operator (extensions declare these alongside their dispatch
    functions; see [Extension.foreign_signature]). *)

val unknown : t
(** No guarantees at all (the lattice top). *)

val normalize : t -> t
(** Close a record under the domain's implications: density implies
    key-ness and sortedness of that column, and a provably empty BAT
    satisfies every per-row flag vacuously. *)

val any_card : card
(** [{lo = 0; hi = None}]. *)

val exactly : int -> card
(** Both bounds pinned to [n]. *)

val card_add : card -> card -> card
val card_mul : card -> card -> card
(** Bound arithmetic; multiplication saturates to unbounded on
    overflow and keeps [lo = 0]. *)

val card_upto : card -> card
(** Drop the lower bound (selections, joins). *)

val card_min_hi : card -> int -> card
(** Clamp both bounds to at most [n] ([slice], [topn]). *)

val card_intersects : card -> card -> bool
(** Do two envelopes admit a common cardinality? *)

val is_empty : t -> bool
(** Statically known to produce no rows ([hi = Some 0]). *)

val swap : t -> t
(** Properties of [reverse]: head and tail columns exchanged. *)

val of_bat : Bat.t -> t
(** Exact properties of a materialised BAT (O(n) column scans) — the
    ground truth the checked executor compares inferred envelopes
    against. *)

val envelope_ok : inferred:t -> actual:t -> (unit, string) result
(** Is [actual] (typically {!of_bat} of a result) inside the
    [inferred] envelope?  [Error] carries a human-readable list of the
    violated guarantees. *)

val compatible : t -> t -> bool
(** Do two inferred envelopes agree on everything both know — equal
    known types and overlapping cardinality bounds?  The differential
    checker's notion of "same type/shape/cardinality envelope". *)

val pp : Format.formatter -> t -> unit
(** e.g. [[oid->int |0..4| dense-head]]. *)

val to_string : t -> string
