(** Static analysis of MIL plans.

    An abstract interpretation over {!Mil.t} in the domain of
    {!Milprop.t} envelopes: for every subplan the analyzer infers head
    and tail atom types, key/density/sortedness flags and cardinality
    bounds, and emits typed diagnostics for constructions that the BAT
    kernel would reject at runtime (type-mismatched [Calc2]/[Join]
    operands, misaligned head types, non-bool selections, unknown or
    mis-used [Foreign] operators, …) or that are statically suspicious
    (divisions by a constant zero, aggregates that raise on empty
    input, statically empty subplans).

    Three consumers are built on the same inference:
    {ul
    {- {!verify} — the plan verifier: errors reject the plan;}
    {- {!exec_checked} — a checked executor that runs {!Mil.exec} and
       compares each result BAT against the inferred envelope;}
    {- {!lint} — the smell pass: everything {!infer} reports, plus
       pattern smells the peephole optimiser should have removed.}}

    Bundle-level (shape-aware) wrappers and the differential checker
    live upstairs in [Plancheck] (mirror_core), which also knows how to
    build an {!env} from a storage manager and the extension
    registry. *)

type severity = Error | Warning | Hint

type diag = {
  severity : severity;
  path : string;
      (** Plan-path locus from the root, e.g. ["join:l/reverse/get"].
          Structurally shared subplans are reported at their first
          visit. *)
  op : string;  (** {!Mil.op_name} of the offending node. *)
  message : string;
}

type env = {
  get : string -> Milprop.t option;
      (** Properties of a catalog name; [None] marks it unbound (an
          error). *)
  foreign : string -> Milprop.foreign_sig option;
      (** Registry signature of a [Foreign] operator; [None] marks it
          unknown (an error). *)
}
(** The analyzer's view of the world outside the plan. *)

val env_of_catalog :
  ?foreign:(string -> Milprop.foreign_sig option) -> Catalog.t -> env
(** Environment whose [get] scans the catalog BAT for its exact
    properties ({!Milprop.of_bat}); [foreign] defaults to knowing no
    operators. *)

val infer : env -> Mil.t -> Milprop.t * diag list
(** Root envelope plus all diagnostics, in emission order.  Inference
    memoises structurally equal subplans, mirroring the executor's CSE,
    so analysis is linear in the number of distinct subplans. *)

val infer_table : env -> Mil.t list -> Milprop.t Mil.Tbl.t * diag list
(** Infer every plan in the bundle under one shared memo and return the
    whole memo table: an envelope for every distinct subplan of every
    root.  The raw material for DAG-shaped secondary analyses
    ([Boundcheck] builds its per-node cost model on top of it). *)

val verify : env -> Mil.t -> (Milprop.t, diag list) result
(** [Ok] with the root envelope when inference produced no [Error]
    diagnostics; [Error] with just the errors otherwise. *)

val lint : env -> Mil.t -> diag list
(** All inference diagnostics plus pattern smells: reverse/mirror
    chains, redundant [unique]s, self-semijoins, appends of empty
    literals, [Slice]-of-[SortTail] not fused to [TopN], selections
    over constant [Project] tails, and statically dead (provably
    empty) subplans. *)

val exec_checked : env -> Mil.session -> Mil.t -> Bat.t
(** Evaluate the plan and assert the result lies inside the inferred
    envelope — the executor debug mode.
    @raise Failure when the plan has verification errors or the result
    escapes its envelope (an analyzer or kernel bug: inference is meant
    to be sound). *)

val errors : diag list -> diag list
(** Just the [Error]-severity diagnostics. *)

val severity_name : severity -> string

val pp_diag : Format.formatter -> diag -> unit
(** ["error at join:l/get (get): unbound catalog name …"]. *)

val diag_to_string : diag -> string
