(** Expected-mutual-information association (the classic co-occurrence
    alternative to the pseudo-document thesaurus; van Rijsbergen 1979,
    as used by Jing & Croft).  Scores a (text term, concept) pair by
    the mutual information of their document-level presence
    indicators. *)

type t

val build : Assoc.evidence list -> t
(** Tabulate document-level co-occurrence counts. *)

val ndocs : t -> int
(** Documents contributing evidence (those with both text and visual
    content). *)

val score : t -> term:string -> concept:string -> float
(** EMIM of the pair; 0 when either side never occurs. *)

val top_concepts : t -> ?limit:int -> string -> (string * float) list
(** Concepts most associated with a term, best first (positive scores
    only).  [limit] defaults to 10. *)
