(** Cross-session thesaurus adaptation from relevance feedback.

    The paper closes with: "we are investigating machine learning
    techniques to adapt the thesaurus and the content representation,
    using the relevance feedback across query sessions".  This module
    implements that extension: a persistent multiplicative overlay on
    the (query term, concept) association strengths, reinforced when
    feedback confirms a concept and decayed when it refutes one. *)

type t

val create : ?gain:float -> ?floor:float -> ?ceiling:float -> unit -> t
(** Fresh overlay.  [gain] (default 1.25) is the multiplicative update;
    weights are clamped to [[floor, ceiling]] (defaults 0.1 and 10). *)

val pair_weight : t -> term:string -> concept:string -> float
(** Current multiplier for a pair (1.0 when never adapted). *)

val reinforce : t -> terms:string list -> concepts:string list -> good:bool -> unit
(** Strengthen ([good = true]) or weaken every (term, concept) pair in
    the cross product — called once per feedback judgement with the
    session's query terms and the concepts that drove the judged
    result. *)

val adjust : t -> terms:string list -> (string * float) list -> (string * float) list
(** Re-rank an association list: each concept's score is multiplied by
    the geometric mean of its learned pair weights against the query
    terms; the result is re-sorted best first. *)

val pairs_adapted : t -> int
(** Number of (term, concept) pairs carrying a non-default weight. *)
