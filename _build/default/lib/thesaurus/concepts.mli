(** Concept-as-pseudo-document association thesaurus.

    Following the observation the paper borrows from PhraseFinder
    [JC94]: "an association thesaurus can be seen as measuring the
    belief in a concept (instead of in a document) given the query".
    Each visual word (cluster) becomes a pseudo-document containing the
    annotation terms of the images it appears in (tf-weighted); ranking
    those pseudo-documents with the ordinary inference network yields
    the concepts relevant to a text query — which is exactly how the
    demo formulates image queries from initial textual queries. *)

type t

val build : Assoc.evidence list -> t
(** Construct the concept collection.  Only documents that carry both
    text and visual evidence contribute. *)

val concept_count : t -> int
(** Number of concepts with a non-empty pseudo-document. *)

val concepts : t -> string list
(** The concept (visual-word) names, in id order. *)

val associate : t -> ?limit:int -> Mirror_ir.Querynet.t -> (string * float) list
(** Concepts ranked by belief given the text query, best first; the
    paper's thesaurus lookup.  [limit] defaults to 10. *)

val formulate : t -> ?limit:int -> Mirror_ir.Querynet.t -> Mirror_ir.Querynet.t
(** Build the image-side query: a [#wsum] over the top associated
    concepts, weighted by their association beliefs.  An empty
    association yields an empty [#sum]. *)
