type t = {
  n : int;
  term_docs : (string, int) Hashtbl.t;  (* docs containing the term *)
  concept_docs : (string, int) Hashtbl.t;
  joint : (string * string, int) Hashtbl.t;  (* docs containing both *)
  concept_list : string list;
}

let build evidence =
  let evidence = List.filter (fun ev -> ev.Assoc.text <> [] && ev.Assoc.visual <> []) evidence in
  let term_docs = Hashtbl.create 256 in
  let concept_docs = Hashtbl.create 64 in
  let joint = Hashtbl.create 1024 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  List.iter
    (fun ev ->
      let terms = List.sort_uniq String.compare (List.map fst ev.Assoc.text) in
      let cs = List.sort_uniq String.compare (List.map fst ev.Assoc.visual) in
      List.iter (bump term_docs) terms;
      List.iter (bump concept_docs) cs;
      List.iter (fun w -> List.iter (fun c -> bump joint (w, c)) cs) terms)
    evidence;
  { n = List.length evidence; term_docs; concept_docs; joint; concept_list = Assoc.visual_vocabulary evidence }

let ndocs t = t.n

(* EMIM over the 2x2 presence table with add-nothing estimates; cells
   with zero probability contribute zero. *)
let score t ~term ~concept =
  if t.n = 0 then 0.0
  else begin
    let nw = Option.value ~default:0 (Hashtbl.find_opt t.term_docs term) in
    let nc = Option.value ~default:0 (Hashtbl.find_opt t.concept_docs concept) in
    if nw = 0 || nc = 0 then 0.0
    else begin
      let n11 = Option.value ~default:0 (Hashtbl.find_opt t.joint (term, concept)) in
      let n10 = nw - n11 and n01 = nc - n11 in
      let n00 = t.n - nw - nc + n11 in
      let nf = Float.of_int t.n in
      let cell nij ni nj =
        if nij <= 0 then 0.0
        else
          let pij = Float.of_int nij /. nf in
          let pi = Float.of_int ni /. nf and pj = Float.of_int nj /. nf in
          pij *. log (pij /. (pi *. pj))
      in
      cell n11 nw nc
      +. cell n10 nw (t.n - nc)
      +. cell n01 (t.n - nw) nc
      +. cell n00 (t.n - nw) (t.n - nc)
    end
  end

let top_concepts t ?(limit = 10) term =
  t.concept_list
  |> List.map (fun c -> (c, score t ~term ~concept:c))
  |> List.filter (fun (_, s) -> s > 0.0)
  |> List.sort (fun (c1, a) (c2, b) ->
         let r = Float.compare b a in
         if r <> 0 then r else String.compare c1 c2)
  |> List.filteri (fun i _ -> i < limit)
