type evidence = {
  doc : int;
  text : (string * float) list;
  visual : (string * float) list;
}

let of_caption ~doc ~caption ~visual =
  { doc; text = Mirror_ir.Tokenize.tf_bag caption; visual }

let vocabulary select evs =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      List.iter
        (fun (w, _) ->
          if not (Hashtbl.mem seen w) then begin
            Hashtbl.add seen w ();
            order := w :: !order
          end)
        (select ev))
    evs;
  List.rev !order

let text_vocabulary evs = vocabulary (fun ev -> ev.text) evs
let visual_vocabulary evs = vocabulary (fun ev -> ev.visual) evs
