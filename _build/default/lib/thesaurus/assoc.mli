(** Shared evidence representation for thesaurus construction.

    The thesaurus "associat[es] words in the textual annotations to the
    clusters in the image content representation".  Its input is, per
    document, the text term bag and the visual-word (cluster) bag. *)

type evidence = {
  doc : int;  (** Document (image) oid. *)
  text : (string * float) list;  (** Annotation terms with tf. *)
  visual : (string * float) list;  (** Visual words (clusters) with tf. *)
}

val of_caption :
  doc:int -> caption:string -> visual:(string * float) list -> evidence
(** Tokenise/stem/stop a raw caption into the text bag. *)

val text_vocabulary : evidence list -> string list
(** Distinct text terms over the evidence, in first-occurrence order. *)

val visual_vocabulary : evidence list -> string list
(** Distinct visual words over the evidence, in first-occurrence
    order. *)
