lib/thesaurus/emim.ml: Assoc Float Hashtbl List Option String
