lib/thesaurus/assoc.mli:
