lib/thesaurus/emim.mli: Assoc
