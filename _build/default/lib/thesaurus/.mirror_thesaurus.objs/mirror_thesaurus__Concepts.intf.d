lib/thesaurus/concepts.mli: Assoc Mirror_ir
