lib/thesaurus/assoc.ml: Hashtbl List Mirror_ir
