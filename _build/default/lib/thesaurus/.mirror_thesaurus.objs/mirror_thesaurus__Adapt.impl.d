lib/thesaurus/adapt.ml: Float Hashtbl List Option String
