lib/thesaurus/adapt.mli:
