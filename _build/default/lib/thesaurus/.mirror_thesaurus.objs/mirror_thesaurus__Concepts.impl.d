lib/thesaurus/concepts.ml: Array Assoc Hashtbl List Mirror_ir Option String
