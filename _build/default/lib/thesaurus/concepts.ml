module Index = Mirror_ir.Index
module Search = Mirror_ir.Search
module Querynet = Mirror_ir.Querynet

type t = {
  index : Index.t;  (** pseudo-document per concept; doc id = concept id *)
  names : string array;  (** concept id -> visual word *)
}

let build evidence =
  (* Accumulate, per visual word, the tf-weighted text terms of the
     documents it occurs in. *)
  let pseudo : (string, (string, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if ev.Assoc.text <> [] && ev.Assoc.visual <> [] then
        List.iter
          (fun (concept, ctf) ->
            let bag =
              match Hashtbl.find_opt pseudo concept with
              | Some b -> b
              | None ->
                let b = Hashtbl.create 16 in
                Hashtbl.add pseudo concept b;
                order := concept :: !order;
                b
            in
            List.iter
              (fun (term, ttf) ->
                let prev = Option.value ~default:0.0 (Hashtbl.find_opt bag term) in
                Hashtbl.replace bag term (prev +. (ctf *. ttf)))
              ev.Assoc.text)
          ev.Assoc.visual)
    evidence;
  let names = Array.of_list (List.rev !order) in
  let index = Index.create "thesaurus" in
  Array.iteri
    (fun cid concept ->
      let bag = Hashtbl.find pseudo concept in
      let terms = Hashtbl.fold (fun term tf acc -> (term, tf) :: acc) bag [] in
      (* Deterministic order for reproducibility. *)
      let terms = List.sort (fun (a, _) (b, _) -> String.compare a b) terms in
      Index.add_doc index ~doc:cid terms)
    names;
  { index; names }

let concept_count t = Array.length t.names
let concepts t = Array.to_list t.names

let associate t ?(limit = 10) query =
  Search.run_indexed t.index ~limit query
  |> List.map (fun h -> (t.names.(h.Search.doc), h.Search.score))

let formulate t ?(limit = 10) query =
  match associate t ~limit query with
  | [] -> Querynet.Sum []
  | ranked -> Querynet.Wsum (List.map (fun (c, w) -> (w, Querynet.Term (c, 1.0))) ranked)
