type t = {
  gain : float;
  floor : float;
  ceiling : float;
  weights : (string * string, float) Hashtbl.t;
}

let create ?(gain = 1.25) ?(floor = 0.1) ?(ceiling = 10.0) () =
  if gain <= 1.0 then invalid_arg "Adapt.create: gain must exceed 1";
  { gain; floor; ceiling; weights = Hashtbl.create 64 }

let pair_weight t ~term ~concept =
  Option.value ~default:1.0 (Hashtbl.find_opt t.weights (term, concept))

let reinforce t ~terms ~concepts ~good =
  let f = if good then t.gain else 1.0 /. t.gain in
  List.iter
    (fun term ->
      List.iter
        (fun concept ->
          let w = pair_weight t ~term ~concept *. f in
          let w = Float.min t.ceiling (Float.max t.floor w) in
          Hashtbl.replace t.weights (term, concept) w)
        concepts)
    terms

let adjust t ~terms ranked =
  let boost concept =
    match terms with
    | [] -> 1.0
    | _ ->
      let logs = List.map (fun term -> log (pair_weight t ~term ~concept)) terms in
      exp (List.fold_left ( +. ) 0.0 logs /. Float.of_int (List.length logs))
  in
  ranked
  |> List.map (fun (c, s) -> (c, s *. boost c))
  |> List.sort (fun (c1, a) (c2, b) ->
         let r = Float.compare b a in
         if r <> 0 then r else String.compare c1 c2)

let pairs_adapted t = Hashtbl.length t.weights
