type t =
  | Term of string * float
  | Sum of t list
  | Wsum of (float * t) list
  | And of t list
  | Or of t list
  | Not of t
  | Max of t list

let rec terms = function
  | Term (w, weight) -> [ (w, weight) ]
  | Sum ts | And ts | Or ts | Max ts -> List.concat_map terms ts
  | Wsum wts -> List.concat_map (fun (_, t) -> terms t) wts
  | Not t -> terms t

let rec eval oracle = function
  | Term (w, _) -> oracle w
  | Sum ts ->
    (* weights of direct Term children participate as a wsum *)
    Belief.Combine.wsum (List.map (fun t -> (weight_of t, eval oracle t)) ts)
  | Wsum wts -> Belief.Combine.wsum (List.map (fun (w, t) -> (w, eval oracle t)) wts)
  | And ts -> Belief.Combine.and_ (List.map (eval oracle) ts)
  | Or ts -> Belief.Combine.or_ (List.map (eval oracle) ts)
  | Not t -> Belief.Combine.not_ (eval oracle t)
  | Max ts -> Belief.Combine.max (List.map (eval oracle) ts)

and weight_of = function Term (_, w) -> w | _ -> 1.0

let flat words = Sum (List.map (fun w -> Term (w, 1.0)) words)

(* {1 Concrete syntax} *)

type token = Lparen | Rparen | Op of string | Word of string * float

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let err = ref None in
  let is_word_char c = Mirror_util.Stringx.is_alnum c || c = '_' || c = '.' || c = '-' in
  while !i < n && !err = None do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = ',' then incr i
    else if c = '(' then begin
      out := Lparen :: !out;
      incr i
    end
    else if c = ')' then begin
      out := Rparen :: !out;
      incr i
    end
    else if c = '#' then begin
      let j = ref (!i + 1) in
      while !j < n && Mirror_util.Stringx.is_alpha s.[!j] do
        incr j
      done;
      if !j = !i + 1 then err := Some "dangling #"
      else begin
        out := Op (String.sub s (!i + 1) (!j - !i - 1)) :: !out;
        i := !j
      end
    end
    else if is_word_char c then begin
      let j = ref !i in
      while !j < n && is_word_char s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      (* optional ^weight *)
      if !j < n && s.[!j] = '^' then begin
        let k = ref (!j + 1) in
        while
          !k < n && (Mirror_util.Stringx.is_digit s.[!k] || s.[!k] = '.' || s.[!k] = '-')
        do
          incr k
        done;
        match float_of_string_opt (String.sub s (!j + 1) (!k - !j - 1)) with
        | Some w ->
          out := Word (word, w) :: !out;
          i := !k
        | None -> err := Some (Printf.sprintf "bad weight after %S" word)
      end
      else begin
        out := Word (word, 1.0) :: !out;
        i := !j
      end
    end
    else err := Some (Printf.sprintf "unexpected character %C" c)
  done;
  match !err with Some e -> Error e | None -> Ok (List.rev !out)

let of_string s =
  match tokenize s with
  | Error e -> Error e
  | Ok tokens ->
    let rec parse_one = function
      | Word (w, weight) :: rest -> Ok (Term (w, weight), rest)
      | Op op :: Lparen :: rest -> (
        let rec children acc rest =
          match rest with
          | Rparen :: rest -> Ok (List.rev acc, rest)
          | [] -> Error "missing )"
          | _ -> (
            match parse_one rest with
            | Error e -> Error e
            | Ok (child, rest) -> children (child :: acc) rest)
        in
        match children [] rest with
        | Error e -> Error e
        | Ok (kids, rest) -> (
          match (op, kids) with
          | "sum", ks -> Ok (Sum ks, rest)
          | "wsum", ks ->
            (* child weights come from term weights *)
            Ok (Wsum (List.map (fun k -> (weight_of k, k)) ks), rest)
          | "and", ks -> Ok (And ks, rest)
          | "or", ks -> Ok (Or ks, rest)
          | "max", ks -> Ok (Max ks, rest)
          | "not", [ k ] -> Ok (Not k, rest)
          | "not", _ -> Error "#not takes exactly one child"
          | other, _ -> Error (Printf.sprintf "unknown operator #%s" other)))
      | Op op :: _ -> Error (Printf.sprintf "#%s must be followed by (" op)
      | Lparen :: _ -> Error "unexpected ("
      | Rparen :: _ -> Error "unexpected )"
      | [] -> Error "empty query"
    in
    let rec parse_many acc rest =
      match rest with
      | [] -> Ok (List.rev acc)
      | _ -> (
        match parse_one rest with
        | Error e -> Error e
        | Ok (t, rest) -> parse_many (t :: acc) rest)
    in
    (match parse_many [] tokens with
    | Error e -> Error e
    | Ok [] -> Error "empty query"
    | Ok [ t ] -> Ok t
    | Ok many -> Ok (Sum many))

let rec to_string = function
  | Term (w, 1.0) -> w
  | Term (w, weight) -> Printf.sprintf "%s^%g" w weight
  | Sum ts -> node "sum" ts
  | Wsum wts ->
    Printf.sprintf "#wsum( %s )"
      (String.concat " "
         (List.map (fun (w, t) -> Printf.sprintf "%s^%g" (strip t) w) wts))
  | And ts -> node "and" ts
  | Or ts -> node "or" ts
  | Not t -> Printf.sprintf "#not( %s )" (to_string t)
  | Max ts -> node "max" ts

and node name ts = Printf.sprintf "#%s( %s )" name (String.concat " " (List.map to_string ts))

and strip = function Term (w, _) -> w | t -> to_string t
