module Bat = Mirror_bat.Bat
module Atom = Mirror_bat.Atom

type posting = { doc : int; tf : float }

type t = {
  sp : Space.t;
  mutable postings : posting list array;  (* by term id, reversed *)
  mutable docs_rev : int list;
  doc_terms : (int, (int * float) list) Hashtbl.t;  (* doc -> (term id, tf) *)
}

let create name =
  { sp = Space.create name; postings = Array.make 256 []; docs_rev = []; doc_terms = Hashtbl.create 64 }

let space t = t.sp

let ensure t id =
  if id >= Array.length t.postings then begin
    let fresh = Array.make (max (2 * Array.length t.postings) (id + 1)) [] in
    Array.blit t.postings 0 fresh 0 (Array.length t.postings);
    t.postings <- fresh
  end

let add_doc t ~doc bag =
  let ids = Space.add_doc t.sp ~doc bag in
  t.docs_rev <- doc :: t.docs_rev;
  let with_ids = List.map2 (fun (_, tf) id -> (id, tf)) bag ids in
  Hashtbl.add t.doc_terms doc with_ids;
  List.iter
    (fun (id, tf) ->
      ensure t id;
      t.postings.(id) <- { doc; tf } :: t.postings.(id))
    with_ids

let postings t term =
  match Vocab.find (Space.vocab t.sp) term with
  | None -> []
  | Some id ->
    if id >= Array.length t.postings then []
    else List.rev_map (fun p -> (p.doc, p.tf)) t.postings.(id)

let doc_tf t ~doc ~term =
  match Vocab.find (Space.vocab t.sp) term with
  | None -> 0.0
  | Some id -> (
    match Hashtbl.find_opt t.doc_terms doc with
    | None -> 0.0
    | Some terms -> ( match List.assoc_opt id terms with Some tf -> tf | None -> 0.0))

let ndocs t = Space.ndocs t.sp
let docs t = List.rev t.docs_rev

let to_bats t ~base =
  let voc = Space.vocab t.sp in
  let ctx = Mirror_bat.Column.Builder.create Atom.TOid in
  let term = Mirror_bat.Column.Builder.create Atom.TStr in
  let tf = Mirror_bat.Column.Builder.create Atom.TFlt in
  let occ = Mirror_bat.Column.Builder.create Atom.TOid in
  let lctx = Mirror_bat.Column.Builder.create Atom.TOid in
  let llen = Mirror_bat.Column.Builder.create Atom.TFlt in
  let next = ref base in
  List.iter
    (fun doc ->
      let terms = Hashtbl.find t.doc_terms doc in
      List.iter
        (fun (id, f) ->
          Mirror_bat.Column.Builder.add_oid occ !next;
          incr next;
          Mirror_bat.Column.Builder.add_oid ctx doc;
          Mirror_bat.Column.Builder.add term (Atom.Str (Vocab.word voc id));
          Mirror_bat.Column.Builder.add_float tf f)
        terms;
      Mirror_bat.Column.Builder.add_oid lctx doc;
      Mirror_bat.Column.Builder.add_float llen (Space.doc_len t.sp doc))
    (docs t);
  let occ1 = Mirror_bat.Column.Builder.finish occ in
  ( Bat.make occ1 (Mirror_bat.Column.Builder.finish ctx),
    Bat.make occ1 (Mirror_bat.Column.Builder.finish term),
    Bat.make occ1 (Mirror_bat.Column.Builder.finish tf),
    Bat.make (Mirror_bat.Column.Builder.finish lctx) (Mirror_bat.Column.Builder.finish llen) )
