(** English stopword list used when indexing annotations. *)

val is_stopword : string -> bool
(** Case-insensitive membership in the built-in list. *)

val all : string list
(** The list itself (lower case, sorted). *)
