module Stringx = Mirror_util.Stringx

let words text =
  Stringx.split_on (fun c -> not (Stringx.is_alnum c)) (String.lowercase_ascii text)
  |> List.filter (fun w -> String.length w > 1)

let terms ?(stem = true) ?(stop = true) text =
  words text
  |> List.filter (fun w -> not (stop && Stopwords.is_stopword w))
  |> List.map (fun w -> if stem then Porter.stem w else w)

let bag_of_words ws =
  let counts = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun w ->
      match Hashtbl.find_opt counts w with
      | Some n -> Hashtbl.replace counts w (n +. 1.0)
      | None ->
        Hashtbl.add counts w 1.0;
        order := w :: !order)
    ws;
  List.rev_map (fun w -> (w, Hashtbl.find counts w)) !order

let tf_bag ?(stem = true) ?(stop = true) text = bag_of_words (terms ~stem ~stop text)
