(** The Porter stemming algorithm (Porter 1980), as used by InQuery-era
    text retrieval systems.  Words shorter than three characters are
    returned unchanged; input is lower-cased first. *)

val stem : string -> string
(** Stem of an English word, e.g. [stem "caresses" = "caress"],
    [stem "relational" = "relat"]. *)
