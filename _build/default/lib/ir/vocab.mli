(** Bidirectional term dictionary: term string <-> dense integer id.
    Each statistics space has one; the ids are what the physical BATs
    store in their term columns. *)

type t

val create : unit -> t
(** Empty vocabulary. *)

val intern : t -> string -> int
(** Id of the term, allocating the next dense id on first sight. *)

val find : t -> string -> int option
(** Id without interning. *)

val word : t -> int -> string
(** Term of an id. @raise Not_found for unknown ids. *)

val size : t -> int
(** Number of distinct terms. *)

val iter : (string -> int -> unit) -> t -> unit
(** Visit every (term, id) pair in id order. *)
