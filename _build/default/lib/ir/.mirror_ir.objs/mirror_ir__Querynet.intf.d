lib/ir/querynet.mli:
