lib/ir/space.mli: Hashtbl Vocab
