lib/ir/querynet.ml: Belief List Mirror_util Printf String
