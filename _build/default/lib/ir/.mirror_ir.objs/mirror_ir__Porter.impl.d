lib/ir/porter.ml: Bytes List String
