lib/ir/index.mli: Mirror_bat Space
