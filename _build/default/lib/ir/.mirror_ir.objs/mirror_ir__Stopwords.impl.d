lib/ir/stopwords.ml: Hashtbl Lazy List String
