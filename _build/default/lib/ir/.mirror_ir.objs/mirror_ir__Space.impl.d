lib/ir/space.ml: Array Belief Float Hashtbl List Option Printf Vocab
