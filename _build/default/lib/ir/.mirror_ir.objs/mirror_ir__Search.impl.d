lib/ir/search.ml: Array Belief Float Hashtbl Index Int Lazy List Mirror_bat Option Querynet Space Vocab
