lib/ir/belief.ml: Float List
