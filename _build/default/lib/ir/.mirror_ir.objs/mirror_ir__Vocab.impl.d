lib/ir/vocab.ml: Array Hashtbl
