lib/ir/search.mli: Index Mirror_bat Querynet Space
