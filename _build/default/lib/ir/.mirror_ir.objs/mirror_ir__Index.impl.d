lib/ir/index.ml: Array Hashtbl List Mirror_bat Space Vocab
