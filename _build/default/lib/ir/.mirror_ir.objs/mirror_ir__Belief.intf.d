lib/ir/belief.mli:
