lib/ir/porter.mli:
