lib/ir/tokenize.ml: Hashtbl List Mirror_util Porter Stopwords String
