lib/ir/tokenize.mli:
