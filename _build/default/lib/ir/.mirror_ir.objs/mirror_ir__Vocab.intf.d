lib/ir/vocab.mli:
