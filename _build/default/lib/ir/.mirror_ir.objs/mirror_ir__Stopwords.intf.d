lib/ir/stopwords.mli:
