(** The inference-network default belief function.

    These are the InQuery ranking formulae (Turtle & Croft; Broglio et
    al.) that the CONTREP structure's probabilistic operators implement
    at the physical level:

    {v
    tf_part  = tf / (tf + 0.5 + 1.5 * doclen / avg_doclen)
    idf_part = ln((N + 0.5) / df) / ln(N + 1)
    belief   = 0.4 + 0.6 * tf_part * idf_part
    v}

    Beliefs always lie in [default_belief, 1).  A term absent from the
    document (tf = 0), absent from the collection (df = 0) or queried
    against an empty collection contributes exactly [default_belief]. *)

val default_belief : float
(** 0.4. *)

val belief_weight : float
(** 0.6 (= 1 - default). *)

val tf_part : tf:float -> doclen:float -> avg_doclen:float -> float
(** Robertson-style tf normalisation in [0, 1). *)

val idf_part : df:int -> ndocs:int -> float
(** Scaled idf in [0, 1], clamped to 0 for over-frequent terms. *)

val belief : tf:float -> df:int -> ndocs:int -> doclen:float -> avg_doclen:float -> float
(** The full default belief. *)

(** Belief combination rules of the inference network's query
    operators; every input and output is a probability. *)
module Combine : sig
  val sum : float list -> float
  (** #sum — the mean ([default_belief] on empty input). *)

  val wsum : (float * float) list -> float
  (** #wsum — weighted mean of [(weight, belief)] pairs. *)

  val and_ : float list -> float
  (** #and — product. *)

  val or_ : float list -> float
  (** #or — complement of product of complements. *)

  val not_ : float -> float
  (** #not — complement. *)

  val max : float list -> float
  (** #max ([default_belief] on empty input). *)
end
