let all =
  [
    "a"; "about"; "above"; "after"; "again"; "all"; "am"; "an"; "and"; "any"; "are";
    "as"; "at"; "be"; "because"; "been"; "before"; "being"; "below"; "between"; "both";
    "but"; "by"; "can"; "did"; "do"; "does"; "doing"; "down"; "during"; "each"; "few";
    "for"; "from"; "further"; "had"; "has"; "have"; "having"; "he"; "her"; "here";
    "hers"; "him"; "his"; "how"; "i"; "if"; "in"; "into"; "is"; "it"; "its"; "just";
    "me"; "more"; "most"; "my"; "no"; "nor"; "not"; "now"; "of"; "off"; "on"; "once";
    "only"; "or"; "other"; "our"; "ours"; "out"; "over"; "own"; "same"; "she"; "so";
    "some"; "such"; "than"; "that"; "the"; "their"; "theirs"; "them"; "then"; "there";
    "these"; "they"; "this"; "those"; "through"; "to"; "too"; "under"; "until"; "up";
    "very"; "was"; "we"; "were"; "what"; "when"; "where"; "which"; "while"; "who";
    "whom"; "why"; "will"; "with"; "you"; "your"; "yours";
  ]

let table = lazy (
  let t = Hashtbl.create 128 in
  List.iter (fun w -> Hashtbl.replace t w ()) all;
  t)

let is_stopword w = Hashtbl.mem (Lazy.force table) (String.lowercase_ascii w)
